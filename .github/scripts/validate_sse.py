#!/usr/bin/env python3
"""Validate a captured /events SSE stream against the wire grammar.

Checks on every capture:
  * each frame uses only the id/event/data/retry SSE fields, and every
    data payload parses as one stream envelope {seq, type, t, data};
  * the envelope type is in the published taxonomy (hello, snapshot,
    delta, dip, stage, insight, span, result, job);
  * the frame's `event:` name matches the envelope type and its `id:`
    equals the envelope seq;
  * the first frame is the synthesized hello and a snapshot follows;
  * the id-carrying frames have strictly increasing sequence numbers
    (the bus's single total order, observed over the wire).

Options layer job-plane assertions on top:
  --job ID          the capture is a filtered /events?job=ID stream:
                    every envelope must be tagged with that job (no
                    foreign or untagged bus events forwarded) and at
                    least one `job` lifecycle event must appear.
  --expect-type T   type T appears at least once (repeatable).
  --result PATH     the final snapshot's summed conflict total equals
                    the summed per-trial conflicts of result.json at
                    PATH (the flush-at-solve-boundary guarantee).
  --job-result ID=PATH
                    same equality, restricted to snapshot series
                    labeled job="ID" — the per-job drain snapshot must
                    equal that job's own result.json.
"""

import argparse
import json
import sys

TYPES = ("hello", "snapshot", "delta", "dip", "stage", "insight",
         "span", "result", "job")

CONFLICTS = "dynunlock_sat_conflicts_total"


def parse_frames(path):
    frames, cur = [], {}
    for raw in open(path):
        line = raw.rstrip("\n").rstrip("\r")
        if line == "":
            if "data" in cur:
                frames.append(cur)
            cur = {}
            continue
        if line.startswith(":"):
            continue
        field, _, value = line.partition(":")
        value = value[1:] if value.startswith(" ") else value
        assert field in ("id", "event", "data", "retry"), \
            f"bad SSE field: {line!r}"
        cur[field] = cur.get(field, "") + value if field == "data" else value
    if "data" in cur:
        frames.append(cur)
    return frames


def snapshot_conflicts(snap, job=None):
    total = 0
    for k, v in snap["data"].items():
        if not (k == CONFLICTS or k.startswith(CONFLICTS + "{")):
            continue
        if job is not None and f'job="{job}"' not in k:
            continue
        total += v
    return int(total)


def result_conflicts(path):
    result = json.load(open(path))
    return sum(t["solver"]["conflicts"] for t in result["trials"])


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("capture")
    ap.add_argument("--job")
    ap.add_argument("--expect-type", action="append", default=[])
    ap.add_argument("--result")
    ap.add_argument("--job-result", action="append", default=[])
    args = ap.parse_args()

    frames = parse_frames(args.capture)
    assert frames, "no SSE frames captured"
    events, last_id = [], None
    for f in frames:
        ev = json.loads(f["data"])
        assert ev["type"] in TYPES, ev
        if f.get("event"):
            assert f["event"] == ev["type"], f
        if f.get("id"):
            assert int(f["id"]) == ev["seq"], f
            assert last_id is None or int(f["id"]) > last_id, \
                f"sequence not strictly increasing: {last_id} -> {f['id']}"
            last_id = int(f["id"])
        events.append(ev)
    assert events[0]["type"] == "hello", events[0]
    assert len(events) > 1 and events[1]["type"] == "snapshot", \
        "no connect snapshot after hello"
    snaps = [e for e in events if e["type"] == "snapshot"]

    if args.job:
        for ev, f in zip(events, frames):
            if f.get("id"):
                assert ev.get("job") == args.job, \
                    f"foreign event on filtered feed: {ev}"
        assert any(e["type"] == "job" for e in events), \
            "filtered feed carried no job lifecycle event"

    seen = {e["type"] for e in events}
    for t in args.expect_type:
        assert t in seen, f"expected a {t!r} event, saw {sorted(seen)}"

    if args.result:
        streamed = snapshot_conflicts(snaps[-1])
        recorded = result_conflicts(args.result)
        print(f"streamed={streamed} recorded={recorded}")
        assert streamed == recorded, (streamed, recorded)

    for spec in args.job_result:
        job, _, path = spec.partition("=")
        streamed = snapshot_conflicts(snaps[-1], job=job)
        recorded = result_conflicts(path)
        print(f"{job}: streamed={streamed} recorded={recorded}")
        assert streamed == recorded, (job, streamed, recorded)

    print(f"{args.capture}: {len(frames)} frames ok "
          f"({', '.join(sorted(seen))})")


if __name__ == "__main__":
    sys.exit(main())
