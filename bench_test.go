// Benchmark harness regenerating every table and figure of the paper.
//
// Each testing.B benchmark runs the full pipeline (lock → fabricate →
// attack) for one experimental condition and reports the paper's metrics
// as custom benchmark units (candidates, iterations) beside ns/op.
//
// Circuit and key sizes default to 1/16 of the paper's (minutes instead of
// hours on the from-scratch CDCL solver); set DYNUNLOCK_SCALE=1 for
// paper-scale runs:
//
//	go test -bench 'TableII' -benchmem                  # scaled
//	DYNUNLOCK_SCALE=1 go test -bench 'TableII' -timeout 24h
//
// cmd/tables prints the same data as paper-formatted tables.
package dynunlock

import (
	"os"
	"strconv"
	"testing"

	"dynunlock/internal/bench"
	"dynunlock/internal/core"
	"dynunlock/internal/scansat"
)

func scaleFactor() int {
	if s := os.Getenv("DYNUNLOCK_SCALE"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v >= 1 {
			return v
		}
	}
	return 16
}

func scaledKey(kb, scale int) int {
	if scale <= 1 {
		return kb
	}
	if kb /= scale; kb < 8 {
		return 8
	}
	return kb
}

// runAttack locks the benchmark, fabricates one chip per iteration, and
// attacks it, reporting candidates/iterations as benchmark metrics.
// Solver conflicts are reported too: unlike ns/op they are machine-speed
// independent, so perf regressions in the search itself stay visible.
func runAttack(b *testing.B, name string, keyBits int, policy Policy) {
	b.Helper()
	scale := scaleFactor()
	design, err := LockBenchmark(name, scaledKey(keyBits, scale), policy, scale)
	if err != nil {
		b.Fatal(err)
	}
	var cands, iters, successes, conflicts float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chip, err := Fabricate(design, int64(i)*7919+101)
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.Attack(chip, core.Options{EnumerateLimit: 256})
		if err != nil {
			b.Fatal(err)
		}
		cands += float64(len(res.SeedCandidates))
		iters += float64(res.Iterations)
		conflicts += float64(res.SolverStats.Conflicts)
		if core.ContainsSeed(res.SeedCandidates, chip.SecretSeed()) {
			successes++
		}
	}
	b.ReportMetric(cands/float64(b.N), "candidates")
	b.ReportMetric(iters/float64(b.N), "iterations")
	b.ReportMetric(successes/float64(b.N), "success")
	b.ReportMetric(conflicts/float64(b.N), "conflicts")
}

// --- Table I: evolution of scan locking -------------------------------

func BenchmarkTableI_EFF_vs_ScanSAT(b *testing.B) {
	scale := scaleFactor()
	design, err := LockBenchmark("s5378", scaledKey(128, scale), Static, scale)
	if err != nil {
		b.Fatal(err)
	}
	var successes float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chip, err := Fabricate(design, int64(i)+5)
		if err != nil {
			b.Fatal(err)
		}
		res, err := scansat.Attack(chip, scansat.Options{EnumerateLimit: 256})
		if err != nil {
			b.Fatal(err)
		}
		for _, k := range res.KeyCandidates {
			if k.Equal(chip.SecretSeed()) {
				successes++
			}
		}
	}
	b.ReportMetric(successes/float64(b.N), "success")
}

func BenchmarkTableI_DOS_vs_DynUnlock(b *testing.B) {
	runAttack(b, "s5378", 128, PerPattern)
}

func BenchmarkTableI_EFFDyn_vs_DynUnlock(b *testing.B) {
	runAttack(b, "s5378", 128, PerCycle)
}

// --- Table II: ten benchmarks, 128-bit dynamic keys -------------------

func BenchmarkTableII_s5378(b *testing.B)  { runAttack(b, "s5378", 128, PerCycle) }
func BenchmarkTableII_s13207(b *testing.B) { runAttack(b, "s13207", 128, PerCycle) }
func BenchmarkTableII_s15850(b *testing.B) { runAttack(b, "s15850", 128, PerCycle) }
func BenchmarkTableII_s38584(b *testing.B) { runAttack(b, "s38584", 128, PerCycle) }
func BenchmarkTableII_s38417(b *testing.B) { runAttack(b, "s38417", 128, PerCycle) }
func BenchmarkTableII_s35932(b *testing.B) { runAttack(b, "s35932", 128, PerCycle) }
func BenchmarkTableII_b20(b *testing.B)    { runAttack(b, "b20", 128, PerCycle) }
func BenchmarkTableII_b21(b *testing.B)    { runAttack(b, "b21", 128, PerCycle) }
func BenchmarkTableII_b22(b *testing.B)    { runAttack(b, "b22", 128, PerCycle) }
func BenchmarkTableII_b17(b *testing.B)    { runAttack(b, "b17", 128, PerCycle) }

// --- Concurrent sweep runner: Table II conditions in parallel ---------

// benchSweep runs the first four Table II conditions as independent
// experiments through the bench.Sweep worker pool. Workers <= 0 selects
// ParallelDefault() (DYNUNLOCK_PARALLEL or GOMAXPROCS); 1 is the
// sequential reference whose results are bit-identical by construction.
// On a multi-core host the parallel variant shows the sweep speedup; on a
// single-core host both variants measure the same work.
func benchSweep(b *testing.B, workers int) {
	b.Helper()
	scale := scaleFactor()
	conds := bench.Table2[:4]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results, err := bench.Sweep(workers, conds, func(j int, e bench.Entry) (*ExperimentResult, error) {
			return RunExperiment(ExperimentConfig{
				Benchmark: e.Name,
				KeyBits:   scaledKey(128, scale),
				Policy:    PerCycle,
				Scale:     scale,
				Trials:    1,
				SeedBase:  int64(j)*104729 + 13,
			})
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if !r.AllSucceeded() {
				b.Fatalf("%s: attack failed", r.Entry.Name)
			}
		}
	}
}

func BenchmarkSweep_TableII_Sequential(b *testing.B) { benchSweep(b, 1) }
func BenchmarkSweep_TableII_Parallel(b *testing.B)   { benchSweep(b, ParallelDefault()) }

// --- Table III: key-size sweep on the three largest benchmarks --------

func benchTableIII(b *testing.B, name string) {
	for kb := 144; kb <= 368; kb += 32 {
		kb := kb
		b.Run("K"+strconv.Itoa(kb), func(b *testing.B) {
			runAttack(b, name, kb, PerCycle)
		})
	}
}

func BenchmarkTableIII_s38584(b *testing.B) { benchTableIII(b, "s38584") }
func BenchmarkTableIII_s38417(b *testing.B) { benchTableIII(b, "s38417") }
func BenchmarkTableIII_s35932(b *testing.B) { benchTableIII(b, "s35932") }

// --- Fig. 1 / Fig. 4: the s208 walkthrough -----------------------------

// BenchmarkFig1_LockS208 measures applying EFF-Dyn locking to the 8-flop
// walkthrough circuit.
func BenchmarkFig1_LockS208(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := bench.S208F()
		if _, err := LockNetlist(n, 3, PerCycle); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4_ModelS208 measures Algorithm 1: unrolling the locked scan
// session into the combinational model with seed-bit key inputs.
func BenchmarkFig4_ModelS208(b *testing.B) {
	n := bench.S208F()
	design, err := LockNetlist(n, 3, PerCycle)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildModel(design, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3_AttackFlow measures the full Fig. 3 attack flow on the
// walkthrough circuit (model, SAT loop, seed recovery).
func BenchmarkFig3_AttackFlow(b *testing.B) {
	n := bench.S208F()
	design, err := LockNetlist(n, 3, PerCycle)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chip, err := Fabricate(design, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.Attack(chip, core.Options{EnumerateLimit: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fig. 2: authentication scheme overhead ----------------------------

// BenchmarkFig2_SessionDynamic measures one obfuscated scan session on the
// mismatching-test-key (PRNG) path.
func BenchmarkFig2_SessionDynamic(b *testing.B) {
	scale := scaleFactor()
	design, err := LockBenchmark("s5378", scaledKey(128, scale), PerCycle, scale)
	if err != nil {
		b.Fatal(err)
	}
	chip, err := Fabricate(design, 3)
	if err != nil {
		b.Fatal(err)
	}
	scanIn := make([]bool, design.Chain.Length)
	pi := make([]bool, design.View.NumPI)
	tk := make([]bool, design.Config.KeyBits)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chip.Reset()
		chip.Session(tk, scanIn, pi)
	}
}

// --- Ablations ----------------------------------------------------------

// BenchmarkAblation_ModeDirect and _ModeLinear compare the paper-faithful
// seed-space formulation with the linear mask-space formulation on an
// instance small enough for both (see DESIGN.md).
func BenchmarkAblation_ModeDirect(b *testing.B) { benchMode(b, ModeDirect) }

// BenchmarkAblation_ModeLinear is the linear-mode counterpart.
func BenchmarkAblation_ModeLinear(b *testing.B) { benchMode(b, ModeLinear) }

func benchMode(b *testing.B, mode Mode) {
	n, err := bench.Generate(bench.GenConfig{Name: "abl", PIs: 6, POs: 3, FFs: 16, Gates: 128, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	design, err := LockNetlist(n, 8, PerCycle)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		chip, err := Fabricate(design, int64(i)+1)
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.Attack(chip, core.Options{Mode: mode, EnumerateLimit: 256})
		if err != nil {
			b.Fatal(err)
		}
		if !core.ContainsSeed(res.SeedCandidates, chip.SecretSeed()) {
			b.Fatal("attack failed")
		}
	}
}
