// Command benchgen emits the synthetic benchmark circuits in ISCAS-89
// ".bench" format, either one named Table-II stand-in or a custom circuit.
//
// Usage:
//
//	benchgen -bench s5378 > s5378.bench
//	benchgen -ffs 64 -pis 8 -pos 4 -gates 400 -seed 7 > custom.bench
//	benchgen -all -dir out/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dynunlock/internal/bench"
	"dynunlock/internal/netlist"
)

func main() {
	var (
		benchName = flag.String("bench", "", "Table II benchmark name to generate")
		all       = flag.Bool("all", false, "generate every Table II benchmark")
		dir       = flag.String("dir", ".", "output directory for -all")
		variant   = flag.Int64("variant", 0, "structural variant index")
		scale     = flag.Int("scale", 1, "divide circuit size by this factor")
		ffs       = flag.Int("ffs", 0, "custom circuit: flip-flop count")
		pis       = flag.Int("pis", 8, "custom circuit: primary inputs")
		pos       = flag.Int("pos", 4, "custom circuit: primary outputs")
		gates     = flag.Int("gates", 0, "custom circuit: gate count (0 = 4x flops)")
		seed      = flag.Int64("seed", 1, "custom circuit: generator seed")
	)
	flag.Parse()

	switch {
	case *all:
		for _, e := range bench.Table2 {
			if *scale > 1 {
				e = e.Scaled(*scale)
			}
			n, err := e.Build(*variant)
			if err != nil {
				fatalf("%s: %v", e.Name, err)
			}
			name := filepath.Join(*dir, filepath.Base(e.Name)+".bench")
			if err := writeFile(name, n); err != nil {
				fatalf("%v", err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%v)\n", name, n.Stats())
		}
	case *benchName != "":
		e, ok := bench.ByName(*benchName)
		if !ok {
			fatalf("unknown benchmark %q", *benchName)
		}
		if *scale > 1 {
			e = e.Scaled(*scale)
		}
		n, err := e.Build(*variant)
		if err != nil {
			fatalf("%v", err)
		}
		if err := n.WriteBench(os.Stdout); err != nil {
			fatalf("%v", err)
		}
	case *ffs > 0:
		n, err := bench.Generate(bench.GenConfig{
			Name: "custom", PIs: *pis, POs: *pos, FFs: *ffs, Gates: *gates, Seed: *seed,
		})
		if err != nil {
			fatalf("%v", err)
		}
		if err := n.WriteBench(os.Stdout); err != nil {
			fatalf("%v", err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func writeFile(path string, n *netlist.Netlist) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return n.WriteBench(f)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "benchgen: "+format+"\n", args...)
	os.Exit(2)
}
