// Command dynunlock locks a benchmark circuit with dynamic scan locking,
// fabricates a chip with secret keys, and runs the DynUnlock attack,
// printing a Table-II-style result row.
//
// Usage:
//
//	dynunlock -bench s5378 -keybits 128 -trials 10
//	dynunlock -bench s35932 -keybits 240 -scale 8 -policy percycle -v
//	dynunlock -bench s5378 -keybits 64 -timeout 1s -trace run.jsonl
//
// -timeout bounds the whole experiment; when it fires, the run stops at the
// next solver check point and the partial result is reported (exit 0) with
// its stop reason. -trace streams span/progress/result events as JSON lines
// (see internal/trace.JSONLSink for the schema).
//
// -metrics-addr serves live Prometheus metrics at /metrics, an expvar-style
// JSON snapshot at /debug/vars, pprof profiles at /debug/pprof/, a live SSE
// event feed at /events (deltas, DIPs, insight updates, stage spans — see
// internal/stream), and an in-browser dashboard at /live while the attack
// runs; `runs watch ADDR` follows the same feed from a terminal.
// -progress[=interval] prints a one-line status snapshot to stderr
// (-progress=json swaps the line for a stream-schema delta event, one JSON
// object per line; with -trace the same snapshot is emitted as "snapshot"
// events). Neither flag changes attack behavior: with both unset the run is
// bit-identical to an uninstrumented one.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"dynunlock"
	"dynunlock/internal/bench"
	"dynunlock/internal/flight"
	"dynunlock/internal/metrics"
	"dynunlock/internal/report"
	"dynunlock/internal/stream"
	"dynunlock/internal/trace"
)

func main() {
	var (
		benchName = flag.String("bench", "s5378", "benchmark name (s5378 s13207 s15850 s38584 s38417 s35932 b20 b21 b22 b17, or affine for the linear reference core)")
		keyBits   = flag.Int("keybits", 128, "key register width")
		policyStr = flag.String("policy", "percycle", "key update policy: static | perpattern | percycle")
		period    = flag.Int("period", 1, "pattern period for -policy perpattern")
		scale     = flag.Int("scale", 1, "divide circuit size by this factor for quick runs")
		trials    = flag.Int("trials", 1, "number of secret seeds to attack (paper: 10)")
		mode      = flag.String("mode", "linear", "attack formulation: linear | direct")
		limit     = flag.Int("limit", 256, "seed candidate enumeration limit")
		seedBase  = flag.Int64("seed", 1, "base RNG seed for the chip secrets")
		timeout   = flag.Duration("timeout", 0, "wall-clock budget for the whole experiment (0 = unlimited)")
		maxIters  = flag.Int("max-iters", 0, "bound each trial's DIP loop (0 = unlimited)")
		nativeXor = flag.Bool("native-xor", true, "encode XOR gates as native GF(2) solver rows instead of Tseitin CNF")
		aigFlag   = flag.Bool("aig", true, "encode miter copies from a shared structurally-hashed AIG built once per attack")
		simplify  = flag.Bool("simplify", true, "run level-0 solver inprocessing between DIP iterations")
		analytic  = flag.Bool("analytic", false, "feed certified insight constraints back into the solver and short-circuit at full key rank")
		tracePath = flag.String("trace", "", "write a JSONL event trace to this path")
		recordDir = flag.String("record", "", "write a flight-recorder bundle (manifest, oracle/DIP transcripts, trace, metrics, result) to this directory")
		profile   = flag.Bool("profile", false, "capture CPU and heap pprof profiles into the -record bundle (requires -record)")
		verbose   = flag.Bool("v", false, "log attack progress")
		list      = flag.Bool("list", false, "list available benchmarks and exit")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, and /debug/pprof on this address while running")
		progress    metrics.ProgressFlag
	)
	flag.Var(&progress, "progress", "print periodic progress snapshots to stderr (-progress=500ms for cadence, -progress=json for stream-schema delta lines)")
	flag.Parse()

	if *list {
		tb := report.New("Available benchmarks (paper Table II + affine reference)", "Name", "Suite", "# Scan flops", "PIs", "POs")
		for _, e := range append(append([]bench.Entry(nil), bench.Table2...), bench.AffineRef) {
			tb.AddRow(e.Name, e.Suite, e.FFs, e.PIs, e.POs)
		}
		tb.Render(os.Stdout)
		return
	}

	cfg := dynunlock.ExperimentConfig{
		Benchmark:      *benchName,
		KeyBits:        *keyBits,
		Period:         *period,
		Scale:          *scale,
		Trials:         *trials,
		EnumerateLimit: *limit,
		MaxIterations:  *maxIters,
		SeedBase:       *seedBase,
		NativeXor:      *nativeXor,
		AIG:            *aigFlag,
		Simplify:       *simplify,
		Analytic:       *analytic,
	}
	switch strings.ToLower(*policyStr) {
	case "static":
		cfg.Policy = dynunlock.Static
	case "perpattern":
		cfg.Policy = dynunlock.PerPattern
	case "percycle":
		cfg.Policy = dynunlock.PerCycle
	default:
		fatalf("unknown policy %q", *policyStr)
	}
	switch strings.ToLower(*mode) {
	case "linear":
		cfg.Mode = dynunlock.ModeLinear
	case "direct":
		cfg.Mode = dynunlock.ModeDirect
	default:
		fatalf("unknown mode %q", *mode)
	}
	if *verbose {
		cfg.Log = os.Stderr
	} else {
		cfg.Log = io.Discard
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	collector := trace.NewCollector()
	sinks := []trace.Sink{collector}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		sinks = append(sinks, trace.NewJSONLSink(f))
	}
	var rec *flight.Recorder
	if *recordDir != "" {
		var err error
		rec, err = flight.Create(*recordDir)
		if err != nil {
			fatalf("%v", err)
		}
		rec.Tool = "dynunlock"
		cfg.Recorder = rec
		sinks = append(sinks, rec.TraceSink())
		if *profile {
			if err := rec.StartProfiles(); err != nil {
				fatalf("%v", err)
			}
		}
	} else if *profile {
		fatalf("-profile requires -record: profiles are stored inside the bundle")
	}
	// The event bus backs /events and /live; it only exists alongside a
	// metrics server, and an idle bus (no subscribers) costs one atomic
	// load per publish point.
	var bus *stream.Bus
	if *metricsAddr != "" {
		bus = stream.NewBus()
		cfg.Stream = bus
		sinks = append(sinks, trace.NewStreamSink(bus))
	}
	ctx = trace.With(ctx, trace.Multi(sinks...))

	// Metrics are opt-in: without -metrics-addr, -progress, or -record no
	// registry is installed and the attack runs the uninstrumented path.
	// Recording forces a registry so the bundle's metrics.json is populated.
	var reg *metrics.Registry
	if *metricsAddr != "" || progress.Interval > 0 || rec != nil {
		reg = metrics.NewRegistry()
		reg.SetBuildInfo(buildInfoLabels()...)
		ctx = metrics.With(ctx, reg)
		ctx = metrics.WithLabels(ctx, "benchmark", cfg.Benchmark)
	}
	if *metricsAddr != "" {
		srv, err := metrics.ServeBus(*metricsAddr, reg, bus)
		if err != nil {
			fatalf("%v", err)
		}
		// Drain in-flight scrapes on exit so a Prometheus poll racing the
		// end of the run still gets its sample; SSE streams flush their
		// buffered events plus one terminal snapshot before closing.
		defer srv.Shutdown(2 * time.Second)
		fmt.Fprintf(os.Stderr, "dynunlock: serving metrics on http://%s/metrics (live: /events, /live)\n", srv.Addr())
	}
	// With an event bus the periodic sampler always runs — it is the
	// feed's only "delta" source — writing to stderr only when -progress
	// asked for it.
	if progress.Interval > 0 || bus != nil {
		interval := progress.Interval
		if interval <= 0 {
			interval = metrics.DefaultProgressInterval
		}
		w := io.Writer(io.Discard)
		if progress.Interval > 0 {
			w = os.Stderr
		}
		p := metrics.NewProgress(reg, interval, w, trace.From(ctx))
		p.SetJSON(progress.JSON)
		p.AttachStream(bus)
		p.Start()
		defer p.Stop()
	}

	res, err := dynunlock.RunExperimentCtx(ctx, cfg)
	if err != nil {
		fatalf("%v", err)
	}
	if rec != nil {
		if err := rec.WriteMetrics(reg); err != nil {
			fatalf("%v", err)
		}
		if err := rec.Close(); err != nil {
			fatalf("%v", err)
		}
		fmt.Fprintf(os.Stderr, "dynunlock: recorded bundle to %s (attribution: runs explain %s)\n", rec.Dir(), rec.Dir())
	}
	tb := report.New(
		fmt.Sprintf("DynUnlock on %s (%d scan flops, %d-bit key, %v, %d trial(s), %s mode)",
			res.Entry.Name, res.Entry.FFs, cfg.KeyBits, cfg.Policy, len(res.Trials), cfg.Mode),
		"Benchmark", "# Scan flops", "# Key bits", "# Seed candidates", "# Iterations", "Execution time (secs)", "Broken")
	tb.AddRow(res.Entry.Name, res.Entry.FFs, cfg.KeyBits,
		res.AvgCandidates(), res.AvgIterations(), res.AvgSeconds(), res.AllSucceeded())
	tb.Render(os.Stdout)
	if spans := collector.Spans(); len(spans) > 0 {
		fmt.Println()
		report.StageTable("Per-stage timing (summed over trials)", spans).Render(os.Stdout)
	}
	if res.Stopped {
		// A bounded run is a successful partial run, not a failure: report
		// the reason and exit 0 so scripted short runs (CI) can assert on
		// the partial output.
		fmt.Printf("\nstopped early: %s (%d/%d trial(s) ran)\n",
			res.StopReason, len(res.Trials), cfg.Trials)
		return
	}
	if !res.AllSucceeded() {
		os.Exit(1)
	}
}

// buildInfoLabels describes this binary for the dynunlock_build_info
// gauge: toolchain and bundle-format versions plus the compiled-in
// defaults of the encode flags (what a bare invocation runs with).
func buildInfoLabels() []string {
	return []string{
		"goversion", runtime.Version(),
		"format", strconv.Itoa(flight.FormatVersion),
		"native_xor", flag.Lookup("native-xor").DefValue,
		"aig", flag.Lookup("aig").DefValue,
		"simplify", flag.Lookup("simplify").DefValue,
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dynunlock: "+format+"\n", args...)
	os.Exit(2)
}
