// Command dynunlock locks a benchmark circuit with dynamic scan locking,
// fabricates a chip with secret keys, and runs the DynUnlock attack,
// printing a Table-II-style result row.
//
// Usage:
//
//	dynunlock -bench s5378 -keybits 128 -trials 10
//	dynunlock -bench s35932 -keybits 240 -scale 8 -policy percycle -v
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dynunlock"
	"dynunlock/internal/bench"
	"dynunlock/internal/report"
)

func main() {
	var (
		benchName = flag.String("bench", "s5378", "benchmark name (s5378 s13207 s15850 s38584 s38417 s35932 b20 b21 b22 b17)")
		keyBits   = flag.Int("keybits", 128, "key register width")
		policyStr = flag.String("policy", "percycle", "key update policy: static | perpattern | percycle")
		period    = flag.Int("period", 1, "pattern period for -policy perpattern")
		scale     = flag.Int("scale", 1, "divide circuit size by this factor for quick runs")
		trials    = flag.Int("trials", 1, "number of secret seeds to attack (paper: 10)")
		mode      = flag.String("mode", "linear", "attack formulation: linear | direct")
		limit     = flag.Int("limit", 256, "seed candidate enumeration limit")
		seedBase  = flag.Int64("seed", 1, "base RNG seed for the chip secrets")
		verbose   = flag.Bool("v", false, "log attack progress")
		list      = flag.Bool("list", false, "list available benchmarks and exit")
	)
	flag.Parse()

	if *list {
		tb := report.New("Available benchmarks (paper Table II)", "Name", "Suite", "# Scan flops", "PIs", "POs")
		for _, e := range bench.Table2 {
			tb.AddRow(e.Name, e.Suite, e.FFs, e.PIs, e.POs)
		}
		tb.Render(os.Stdout)
		return
	}

	cfg := dynunlock.ExperimentConfig{
		Benchmark:      *benchName,
		KeyBits:        *keyBits,
		Period:         *period,
		Scale:          *scale,
		Trials:         *trials,
		EnumerateLimit: *limit,
		SeedBase:       *seedBase,
	}
	switch strings.ToLower(*policyStr) {
	case "static":
		cfg.Policy = dynunlock.Static
	case "perpattern":
		cfg.Policy = dynunlock.PerPattern
	case "percycle":
		cfg.Policy = dynunlock.PerCycle
	default:
		fatalf("unknown policy %q", *policyStr)
	}
	switch strings.ToLower(*mode) {
	case "linear":
		cfg.Mode = dynunlock.ModeLinear
	case "direct":
		cfg.Mode = dynunlock.ModeDirect
	default:
		fatalf("unknown mode %q", *mode)
	}
	if *verbose {
		cfg.Log = os.Stderr
	} else {
		cfg.Log = io.Discard
	}

	res, err := dynunlock.RunExperiment(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	tb := report.New(
		fmt.Sprintf("DynUnlock on %s (%d scan flops, %d-bit key, %v, %d trial(s), %s mode)",
			res.Entry.Name, res.Entry.FFs, cfg.KeyBits, cfg.Policy, len(res.Trials), cfg.Mode),
		"Benchmark", "# Scan flops", "# Key bits", "# Seed candidates", "# Iterations", "Execution time (secs)", "Broken")
	tb.AddRow(res.Entry.Name, res.Entry.FFs, cfg.KeyBits,
		res.AvgCandidates(), res.AvgIterations(), res.AvgSeconds(), res.AllSucceeded())
	tb.Render(os.Stdout)
	if !res.AllSucceeded() {
		os.Exit(1)
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "dynunlock: "+format+"\n", args...)
	os.Exit(2)
}
