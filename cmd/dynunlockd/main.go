// Command dynunlockd is the DynUnlock attack-as-a-service daemon: a
// long-running process that accepts attack jobs over a JSON HTTP API and
// runs them on a bounded worker pool, with one shared observability
// plane for every job.
//
// Usage:
//
//	dynunlockd -addr :9309 -data ./runs -workers 2
//
// Submit and follow a job:
//
//	curl -d '{"benchmark":"s5378","keyBits":128}' localhost:9309/jobs
//	curl localhost:9309/jobs/job-0001
//	runs watch -job job-0001 localhost:9309
//
// Endpoints on one listener:
//
//	POST/GET/DELETE /jobs[/{id}]   job API (submit, list, status, cancel)
//	/metrics                       Prometheus exposition; per-job series
//	                               carry a job="<id>" label and the pool
//	                               publishes dynunlockd_jobs_* families
//	/events[?job=ID]               SSE feed: aggregate or single-job
//	/live[?job=ID]                 in-browser dashboard over /events
//	/healthz /readyz               liveness / drain-aware readiness
//	/debug/vars /debug/pprof/      expvar snapshot and pprof profiles
//
// Every job records a durable flight bundle under -data/<job-id>/; a job
// cancelled or killed mid-run leaves a resumable prefix, and submitting
// {"resume":"<job-id>"} starts a new job that replays that prefix before
// continuing live.
//
// SIGTERM/SIGINT drains gracefully: /readyz flips to 503 and new
// submissions are rejected 503, queued jobs are evicted, running jobs
// finish, and live SSE clients receive their buffered events plus one
// final snapshot frame before the process exits.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dynunlock/internal/daemon"
	"dynunlock/internal/metrics"
)

func main() {
	var (
		addr    = flag.String("addr", ":9309", "listen address for the job API and observability plane")
		dataDir = flag.String("data", "dynunlockd-data", "directory for per-job flight bundles")
		workers = flag.Int("workers", 2, "attack worker pool size")
		queue   = flag.Int("queue", 8, "max queued jobs before submissions are rejected 503")
		sample  = flag.Duration("sample", metrics.DefaultProgressInterval, "per-job progress sampling interval for the event feed")
		grace   = flag.Duration("grace", 10*time.Second, "HTTP drain window after jobs finish on SIGTERM")
		verbose = flag.Bool("v", true, "log job lifecycle to stderr")
	)
	flag.Parse()

	log := os.Stderr
	if !*verbose {
		devnull, _ := os.Open(os.DevNull)
		log = devnull
	}
	d, err := daemon.New(daemon.Config{
		Addr:           *addr,
		DataDir:        *dataDir,
		Workers:        *workers,
		QueueDepth:     *queue,
		SampleInterval: *sample,
		Log:            log,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "dynunlockd: %v\n", err)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "dynunlockd: serving jobs on http://%s/jobs (metrics: /metrics, live: /events, /live)\n", d.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	s := <-sig
	fmt.Fprintf(os.Stderr, "dynunlockd: %v: draining (queued jobs evict, running jobs finish)\n", s)
	if err := d.Shutdown(*grace); err != nil {
		fmt.Fprintf(os.Stderr, "dynunlockd: drain incomplete: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "dynunlockd: drained")
}
