package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"dynunlock/internal/anatomy"
	"dynunlock/internal/flight"
	"dynunlock/internal/report"
	"dynunlock/internal/svgchart"
)

// cmdExplain renders the attribution report of one bundle: the wall-time
// split across the Fig. 3 stages (rows sum exactly to the recorded
// elapsedSeconds), the solver counter totals (exactly the sum of
// result.json's per-trial snapshots), the hottest stage, the hardest DIP
// iterations by difficulty score, and — when the bundle carries live
// search telemetry (anatomy.json, format v4) — the sampled LBD
// distribution and restart counts. Works on every bundle version: v1–v3
// bundles explain from their trace/DIP transcript alone. -json emits the
// report as machine-readable JSON for CI assertions.
func cmdExplain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("explain", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit the attribution report as JSON")
	top := fs.Int("top", 5, "number of hardest DIP iterations to list")
	if fs.Parse(args) != nil {
		return exitUsage
	}
	if fs.NArg() != 1 {
		return usage(stderr)
	}
	r, err := anatomy.FromDir(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "runs: %v\n", err)
		return exitCorrupt
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			fmt.Fprintf(stderr, "runs: %v\n", err)
			return exitCorrupt
		}
		return exitOK
	}
	renderExplain(stdout, r, *top)
	return exitOK
}

// renderExplain writes the deterministic text report.
func renderExplain(w io.Writer, r *anatomy.Report, top int) {
	fmt.Fprintf(w, "anatomy of %s\n", r.Dir)
	fmt.Fprintf(w, "wall time  %.3fs across %d DIP iteration(s)\n\n", r.TotalSeconds, len(r.DIPs))

	tb := report.New("Wall-time attribution (stages sum to the recorded wall time)",
		"Stage", "Seconds", "Share", "Calls")
	for _, s := range r.Stages {
		tb.AddRow(s.Name, fmt.Sprintf("%.4f", s.Seconds), fmt.Sprintf("%.1f%%", s.Share*100), s.Calls)
	}
	tb.AddRow("total", fmt.Sprintf("%.4f", r.TotalSeconds), "100.0%", "")
	tb.Render(w)

	hot := r.HottestStage()
	fmt.Fprintf(w, "\nhottest stage: %s (%.1f%% of wall time)\n", hot.Name, hot.Share*100)
	fmt.Fprintf(w, "solver: conflicts=%d propagations=%d decisions=%d restarts=%d learnt=%d xor_propagations=%d xor_conflicts=%d xor_share=%.1f%%\n",
		r.Solver.Conflicts, r.Solver.Propagations, r.Solver.Decisions, r.Solver.Restarts,
		r.Solver.Learnt, r.Solver.XorPropagations, r.Solver.XorConflicts, r.XorShare*100)

	if hard := r.Hardest(top); len(hard) > 0 {
		fmt.Fprintln(w)
		ht := report.New(fmt.Sprintf("Hardest DIP iterations (top %d by difficulty = conflicts + propagations/1024)", len(hard)),
			"Trial", "Iter", "Solve ms", "Conflicts", "Propagations", "Difficulty")
		for _, d := range hard {
			ht.AddRow(d.Trial, d.Iteration, fmt.Sprintf("%.3f", d.SolveMS),
				d.Delta.Conflicts, d.Delta.Propagations, fmt.Sprintf("%.1f", d.Difficulty))
		}
		ht.Render(w)
	}

	if r.Search != nil {
		fmt.Fprintln(w)
		renderSearch(w, r.Search)
	}
}

// renderSearch writes the live-captured telemetry section: the sampled
// learnt-clause LBD distribution (summed over trials) and restart totals.
func renderSearch(w io.Writer, doc *flight.AnatomyDoc) {
	var total flight.LBDHist
	var restarts, restartConflicts uint64
	counts := make([]uint64, len(doc.LBDBounds)+1)
	for _, t := range doc.Trials {
		for i, c := range t.LBD.Counts {
			if i < len(counts) {
				counts[i] += c
			}
		}
		total.Samples += t.LBD.Samples
		total.SumLBD += t.LBD.SumLBD
		total.SumSize += t.LBD.SumSize
		restarts += t.Restarts
		restartConflicts += t.RestartConflicts
	}
	fmt.Fprintf(w, "search telemetry (live-captured, %d trial(s)): lbd_samples=%d mean_lbd=%.2f restarts=%d restart_conflicts=%d\n",
		len(doc.Trials), total.Samples, total.MeanLBD(), restarts, restartConflicts)
	if total.Samples == 0 {
		return
	}
	var b strings.Builder
	b.WriteString("lbd distribution:")
	for i, c := range counts {
		if c == 0 {
			continue
		}
		label := "inf"
		if i < len(doc.LBDBounds) {
			label = fmt.Sprintf("%g", doc.LBDBounds[i])
		}
		fmt.Fprintf(&b, " <=%s:%d", label, c)
	}
	fmt.Fprintln(w, b.String())
}

// cmdCompare attributes a performance change between two bundles of the
// same experiment: per-stage wall-time movement, per-series solver counter
// movement, and the worst regression of each kind named explicitly. It is
// the explanatory sibling of `runs diff` — diff decides whether outcomes
// match, compare says where the time and search effort moved.
func cmdCompare(args []string, stdout, stderr io.Writer) int {
	if len(args) != 2 {
		return usage(stderr)
	}
	ra, err := anatomy.FromDir(args[0])
	if err != nil {
		fmt.Fprintf(stderr, "runs: %v\n", err)
		return exitCorrupt
	}
	rb, err := anatomy.FromDir(args[1])
	if err != nil {
		fmt.Fprintf(stderr, "runs: %v\n", err)
		return exitCorrupt
	}
	d := anatomy.Compare(ra, rb)

	st := report.New(fmt.Sprintf("Stage wall-time movement: %s -> %s", args[0], args[1]),
		"Stage", "A seconds", "B seconds", "Delta")
	for _, s := range d.Stages {
		st.AddRow(s.Name, fmt.Sprintf("%.4f", s.ASeconds), fmt.Sprintf("%.4f", s.BSeconds),
			fmt.Sprintf("%+.4f", s.BSeconds-s.ASeconds))
	}
	st.Render(stdout)

	fmt.Fprintln(stdout)
	ct := report.New("Solver series movement", "Series", "A", "B", "Ratio")
	for _, c := range d.Counters {
		ratio := "-"
		if c.A > 0 {
			ratio = fmt.Sprintf("%.2fx", float64(c.B)/float64(c.A))
		}
		ct.AddRow(c.Name, c.A, c.B, ratio)
	}
	ct.Render(stdout)

	fmt.Fprintln(stdout)
	if d.RegressedStage != "" {
		fmt.Fprintf(stdout, "regressed stage: %s (+%.4fs wall time)\n", d.RegressedStage, d.RegressedStageSeconds)
	} else {
		fmt.Fprintln(stdout, "regressed stage: none (no stage grew)")
	}
	if d.RegressedCounter != "" {
		fmt.Fprintf(stdout, "regressed solver series: %s (%.2fx)\n", d.RegressedCounter, d.RegressedCounterRatio)
	} else {
		fmt.Fprintln(stdout, "regressed solver series: none (no series grew)")
	}
	return exitOK
}

// cmdTrends renders a cross-run trend report over committed bundles (and
// optionally the benchmark ledger) as a self-contained HTML page of
// deterministic inline-SVG charts: per-stage wall time, solver work, and
// DIP difficulty across runs, plus the ledger's avg-seconds history when
// -bench is given. Re-rendering the same inputs is byte-identical (CI
// treats the output as a build artifact).
func cmdTrends(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("trends", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "write the HTML trend report to this file (default: stdout)")
	ledgerPath := fs.String("bench", "", "benchmark ledger for the cross-run history chart (e.g. BENCH_attack.json)")
	title := fs.String("title", "", "report title")
	if fs.Parse(args) != nil {
		return exitUsage
	}
	if fs.NArg() < 1 {
		return usage(stderr)
	}
	dirs, err := expandBundleDirs(fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "runs: %v\n", err)
		return exitCorrupt
	}
	var reports []*anatomy.Report
	for _, dir := range dirs {
		r, err := anatomy.FromDir(dir)
		if err != nil {
			fmt.Fprintf(stderr, "runs: %v\n", err)
			return exitCorrupt
		}
		reports = append(reports, r)
	}
	var ledger *flight.BenchFile
	if *ledgerPath != "" {
		if ledger, err = flight.ReadBenchFile(*ledgerPath); err != nil {
			fmt.Fprintf(stderr, "runs: %v\n", err)
			return exitCorrupt
		}
	}
	page := trendsHTML(reports, ledger, *ledgerPath, *title)
	if *out == "" {
		io.WriteString(stdout, page)
		return exitOK
	}
	if err := os.WriteFile(*out, []byte(page), 0o644); err != nil {
		fmt.Fprintf(stderr, "runs: %v\n", err)
		return exitCorrupt
	}
	fmt.Fprintf(stderr, "runs: wrote %s (%d bundle(s), %d bytes)\n", *out, len(reports), len(page))
	return exitOK
}

// trendsHTML builds the deterministic trend page. Runs index 0..n-1 on the
// x axis in the order given (expandBundleDirs sorts directory children, so
// committed sweeps render stably).
func trendsHTML(reports []*anatomy.Report, ledger *flight.BenchFile, ledgerPath, title string) string {
	if title == "" {
		title = fmt.Sprintf("DynUnlock trend report (%d run(s))", len(reports))
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>%s</title>
<style>
body{font-family:system-ui,sans-serif;margin:2em auto;max-width:72em;padding:0 1em;color:#1a1a1a}
h1{font-size:1.5em}h2{font-size:1.2em;border-bottom:1px solid #ccc;padding-bottom:.2em;margin-top:2em}
table{border-collapse:collapse;margin:.6em 0;font-size:.85em}
th,td{border:1px solid #ccc;padding:.25em .6em;text-align:right}
th{background:#f2f2f2}td:first-child,th:first-child{text-align:left}
figure.chart{margin:.8em 0;display:inline-block}
figcaption{font-size:.85em;font-weight:600;margin-bottom:.2em}
%s
</style>
</head>
<body>
<h1>%s</h1>
`, htmlEscape(title), svgchart.CSS, htmlEscape(title))

	// Index: which run is which.
	b.WriteString("<h2>Runs</h2>\n<table><tr><th>Run</th><th>Bundle</th><th>Wall s</th><th>Conflicts</th><th>DIPs</th></tr>\n")
	for i, r := range reports {
		fmt.Fprintf(&b, "<tr><td>%d</td><td>%s</td><td>%.3f</td><td>%d</td><td>%d</td></tr>\n",
			i, htmlEscape(filepath.Base(r.Dir)), r.TotalSeconds, r.Solver.Conflicts, len(r.DIPs))
	}
	b.WriteString("</table>\n")

	b.WriteString("<h2>Trends</h2>\n")
	b.WriteString(svgchart.LineChart("Per-stage wall time across runs", "run", "seconds", stageSeries(reports)))
	b.WriteString("\n")
	b.WriteString(svgchart.LineChart("Solver work across runs", "run", "count", workSeries(reports)))
	b.WriteString("\n")
	b.WriteString(svgchart.LineChart("DIP difficulty across runs", "run", "difficulty", difficultySeries(reports)))
	b.WriteString("\n")
	if ledger != nil && len(ledger.Rows) > 0 {
		fmt.Fprintf(&b, "<h2>Ledger history (%s)</h2>\n", htmlEscape(ledgerPath))
		b.WriteString(svgchart.LineChart("Avg attack seconds per ledger row", "row", "seconds", ledgerSeries(ledger)))
		b.WriteString("\n")
	}
	b.WriteString("</body>\n</html>\n")
	return b.String()
}

// stageSeries builds one series per stage that appears in any run, in the
// order reports list them (Fig. 3 order with "other" last).
func stageSeries(reports []*anatomy.Report) []svgchart.Series {
	var order []string
	seen := map[string]bool{}
	for _, r := range reports {
		for _, s := range r.Stages {
			if !seen[s.Name] {
				seen[s.Name] = true
				order = append(order, s.Name)
			}
		}
	}
	var out []svgchart.Series
	for _, name := range order {
		s := svgchart.Series{Name: name}
		for i, r := range reports {
			s.X = append(s.X, float64(i))
			s.Y = append(s.Y, r.StageSeconds(name))
		}
		out = append(out, s)
	}
	return out
}

// workSeries tracks the machine-independent solver effort across runs.
func workSeries(reports []*anatomy.Report) []svgchart.Series {
	conflicts := svgchart.Series{Name: "conflicts"}
	learnt := svgchart.Series{Name: "learnt"}
	restarts := svgchart.Series{Name: "restarts"}
	for i, r := range reports {
		x := float64(i)
		conflicts.X, conflicts.Y = append(conflicts.X, x), append(conflicts.Y, float64(r.Solver.Conflicts))
		learnt.X, learnt.Y = append(learnt.X, x), append(learnt.Y, float64(r.Solver.Learnt))
		restarts.X, restarts.Y = append(restarts.X, x), append(restarts.Y, float64(r.Solver.Restarts))
	}
	return []svgchart.Series{conflicts, learnt, restarts}
}

// difficultySeries tracks the mean and max per-DIP difficulty across runs.
func difficultySeries(reports []*anatomy.Report) []svgchart.Series {
	mean := svgchart.Series{Name: "mean"}
	max := svgchart.Series{Name: "max", Dashed: true}
	for i, r := range reports {
		var sum, top float64
		for _, d := range r.DIPs {
			sum += d.Difficulty
			if d.Difficulty > top {
				top = d.Difficulty
			}
		}
		m := 0.0
		if len(r.DIPs) > 0 {
			m = sum / float64(len(r.DIPs))
		}
		mean.X, mean.Y = append(mean.X, float64(i)), append(mean.Y, m)
		max.X, max.Y = append(max.X, float64(i)), append(max.Y, top)
	}
	return []svgchart.Series{mean, max}
}

// ledgerSeries builds one avg-seconds series per benchmark over the
// ledger's append order, in order of first appearance.
func ledgerSeries(ledger *flight.BenchFile) []svgchart.Series {
	var order []string
	byName := map[string]*svgchart.Series{}
	for i, row := range ledger.Rows {
		s, ok := byName[row.Benchmark]
		if !ok {
			order = append(order, row.Benchmark)
			s = &svgchart.Series{Name: row.Benchmark}
			byName[row.Benchmark] = s
		}
		s.X = append(s.X, float64(i))
		s.Y = append(s.Y, row.AvgSeconds)
	}
	out := make([]svgchart.Series, 0, len(order))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	return out
}

// htmlEscape is the minimal escaping the trend page needs (paths and
// titles).
func htmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
