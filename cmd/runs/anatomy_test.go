package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dynunlock"
	"dynunlock/internal/flight"
)

const xorBundle = "../../bench/bundles/table2_parallel1_xor/table2_s5378"

// explainJSON is the shape `explain -json` emits that the invariant checks
// need (a subset of anatomy.Report).
type explainJSON struct {
	TotalSeconds float64 `json:"totalSeconds"`
	Stages       []struct {
		Name    string  `json:"name"`
		Seconds float64 `json:"seconds"`
	} `json:"stages"`
	Solver flight.SolverStats `json:"solver"`
	DIPs   []struct {
		Difficulty float64 `json:"difficulty"`
	} `json:"dips"`
}

// TestExplainInvariantsOnCommittedBundles runs `explain -json` over every
// committed bundle and checks the acceptance invariants: per-stage seconds
// sum to the recorded wall time, and the solver counters exactly equal the
// sum of result.json's per-trial snapshots.
func TestExplainInvariantsOnCommittedBundles(t *testing.T) {
	dirs, err := expandBundleDirs([]string{bundleDir, "../../bench/bundles/table2_parallel1_xor",
		"../../bench/bundles/affine_cnf", "../../bench/bundles/affine_xor"})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no committed bundles found")
	}
	for _, dir := range dirs {
		code, out, errOut := runCLI(t, "explain", "-json", dir)
		if code != exitOK {
			t.Errorf("%s: explain -json exit %d\n%s", dir, code, errOut)
			continue
		}
		var r explainJSON
		if err := json.Unmarshal([]byte(out), &r); err != nil {
			t.Errorf("%s: bad JSON: %v", dir, err)
			continue
		}
		var sum float64
		for _, s := range r.Stages {
			sum += s.Seconds
		}
		if math.Abs(sum-r.TotalSeconds) > 1e-9 {
			t.Errorf("%s: stage seconds sum %v, want wall time %v", dir, sum, r.TotalSeconds)
		}
		b, err := flight.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		var want flight.SolverStats
		for _, tr := range b.Result.Trials {
			want.Conflicts += tr.Solver.Conflicts
			want.Propagations += tr.Solver.Propagations
			want.Decisions += tr.Solver.Decisions
			want.Restarts += tr.Solver.Restarts
			want.Learnt += tr.Solver.Learnt
			want.XorPropagations += tr.Solver.XorPropagations
			want.XorConflicts += tr.Solver.XorConflicts
		}
		got := r.Solver
		got.Removed, got.SimplifyCalls, got.SimplifyRemoved, got.SimplifyStrength = 0, 0, 0, 0
		want.Removed, want.SimplifyCalls, want.SimplifyRemoved, want.SimplifyStrength = 0, 0, 0, 0
		if got != want {
			t.Errorf("%s: explain solver totals %+v, want result.json sum %+v", dir, got, want)
		}
	}
}

// TestExplainDeterministicReport checks the text report renders identically
// across invocations and carries the headline attribution lines.
func TestExplainDeterministicReport(t *testing.T) {
	code, out1, errOut := runCLI(t, "explain", goodBundle)
	if code != exitOK {
		t.Fatalf("explain exit %d\n%s", code, errOut)
	}
	_, out2, _ := runCLI(t, "explain", goodBundle)
	if out1 != out2 {
		t.Error("explain rendered differently across two runs on the same bundle")
	}
	for _, want := range []string{
		"anatomy of " + goodBundle,
		"Wall-time attribution (stages sum to the recorded wall time)",
		"hottest stage: dip_loop",
		"solver: conflicts=",
		"Hardest DIP iterations",
	} {
		if !strings.Contains(out1, want) {
			t.Errorf("explain output missing %q:\n%s", want, out1)
		}
	}
	// Committed pre-v4 bundles carry no live telemetry section.
	if strings.Contains(out1, "search telemetry") {
		t.Errorf("pre-v4 bundle unexpectedly shows live search telemetry:\n%s", out1)
	}
}

// TestExplainFreshRecordingShowsSearchTelemetry records a fresh v4 bundle
// through the facade and checks explain surfaces the live-captured section:
// LBD samples and restart counts that no offline file records.
func TestExplainFreshRecordingShowsSearchTelemetry(t *testing.T) {
	dir := t.TempDir()
	rec, err := flight.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec.Tool = "test"
	cfg := dynunlock.ExperimentConfig{
		Benchmark: "s5378", KeyBits: 16, Policy: dynunlock.PerCycle,
		Scale: 16, Trials: 1, SeedBase: 7, Recorder: rec,
	}
	if _, err := dynunlock.RunExperimentCtx(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteMetrics(nil); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	code, out, errOut := runCLI(t, "explain", dir)
	if code != exitOK {
		t.Fatalf("explain exit %d\n%s", code, errOut)
	}
	if !strings.Contains(out, "search telemetry (live-captured, 1 trial(s))") {
		t.Errorf("fresh v4 bundle missing the live telemetry section:\n%s", out)
	}
	if !strings.Contains(out, "lbd distribution:") {
		t.Errorf("fresh v4 bundle missing the LBD distribution line:\n%s", out)
	}
}

// TestCompareAttributesSeededRegression pins the acceptance criterion on
// committed data: comparing the CNF sweep's s5378 run against the XOR
// variant must attribute the movement — the dip_loop stage grew and the
// xor_propagations series appeared from zero. Committed bundles are frozen
// files, so the attribution is fully deterministic.
func TestCompareAttributesSeededRegression(t *testing.T) {
	code, out, errOut := runCLI(t, "compare", goodBundle, xorBundle)
	if code != exitOK {
		t.Fatalf("compare exit %d\n%s", code, errOut)
	}
	for _, want := range []string{
		"Stage wall-time movement",
		"Solver series movement",
		"regressed stage: dip_loop (+",
		"regressed solver series: xor_propagations (16917.00x)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("compare output missing %q:\n%s", want, out)
		}
	}

	// Self-comparison regresses nothing.
	code, out, _ = runCLI(t, "compare", goodBundle, goodBundle)
	if code != exitOK {
		t.Fatalf("self-compare exit %d", code)
	}
	if !strings.Contains(out, "regressed stage: none (no stage grew)") ||
		!strings.Contains(out, "regressed solver series: none (no series grew)") {
		t.Errorf("self-compare should regress nothing:\n%s", out)
	}
}

// TestTrendsByteIdentical renders the trend report twice over the same
// committed sweep and requires byte-identical output — CI treats the page
// as a reproducible build artifact.
func TestTrendsByteIdentical(t *testing.T) {
	code, out1, errOut := runCLI(t, "trends", bundleDir)
	if code != exitOK {
		t.Fatalf("trends exit %d\n%s", code, errOut)
	}
	_, out2, _ := runCLI(t, "trends", bundleDir)
	if out1 != out2 {
		t.Error("trends rendered differently across two runs on the same bundles")
	}
	for _, want := range []string{
		"<h2>Runs</h2>", "Per-stage wall time across runs",
		"Solver work across runs", "DIP difficulty across runs", "<svg",
	} {
		if !strings.Contains(out1, want) {
			t.Errorf("trends page missing %q", want)
		}
	}

	// -o writes the same bytes to a file.
	outFile := filepath.Join(t.TempDir(), "trends.html")
	if code, _, errOut := runCLI(t, "trends", "-o", outFile, bundleDir); code != exitOK {
		t.Fatalf("trends -o exit %d\n%s", code, errOut)
	}
	written, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if string(written) != out1 {
		t.Error("trends -o wrote different bytes than stdout mode")
	}
}

// sseFrame serializes one minimal SSE frame for the fake servers below.
func sseFrame(seq uint64, typ, dataJSON string) string {
	id := ""
	if seq > 0 {
		id = fmt.Sprintf("id: %d\n", seq)
	}
	return fmt.Sprintf("%sevent: %s\ndata: {\"seq\":%d,\"type\":%q,\"data\":%s}\n\n",
		id, typ, seq, typ, dataJSON)
}

// TestWatchReconnectResumesFromLastSeq drops an established stream mid-run
// and checks the watcher reconnects with the SSE Last-Event-ID of the last
// event it saw, then follows the resumed stream to the terminal result.
func TestWatchReconnectResumesFromLastSeq(t *testing.T) {
	var conns atomic.Int32
	var resumeID atomic.Value
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := conns.Add(1)
		w.Header().Set("Content-Type", "text/event-stream")
		switch n {
		case 1:
			// Two sequenced events, then the connection drops (EOF).
			body := sseFrame(0, "hello", `{"proto":1,"last_seq":0}`) +
				sseFrame(1, "delta", `{"iterations":1}`) +
				sseFrame(2, "dip", `{"trial":0,"iteration":1,"conflicts":3,"solve_ms":0.5}`)
			w.Write([]byte(body))
		default:
			resumeID.Store(r.Header.Get("Last-Event-ID"))
			body := sseFrame(0, "hello", `{"proto":1,"last_seq":2}`) +
				sseFrame(3, "stage", `{"trial":0,"iteration":1,"difficulty":3.5,"lbd_mean":2.5,"restarts":1,"xor_share":0,"solve_ms":0.5}`) +
				sseFrame(4, "result", `{"scope":"experiment","trials_run":1,"succeeded":true,"stopped":false}`)
			w.Write([]byte(body))
		}
	}))
	defer srv.Close()

	var stdout, stderr strings.Builder
	var slept []time.Duration
	w := &watcher{
		url: srv.URL, retries: 3, wait: 10 * time.Millisecond,
		stdout: &stdout, stderr: &stderr,
		sleep: func(d time.Duration) { slept = append(slept, d) },
	}
	if code := w.run(); code != exitOK {
		t.Fatalf("watch exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if got := conns.Load(); got != 2 {
		t.Errorf("server saw %d connections, want 2", got)
	}
	if got, _ := resumeID.Load().(string); got != "2" {
		t.Errorf("reconnect sent Last-Event-ID %q, want \"2\" (last seq seen)", got)
	}
	if len(slept) != 1 || slept[0] != 10*time.Millisecond {
		t.Errorf("backoff sleeps %v, want one initial-wait sleep", slept)
	}
	if !strings.Contains(stderr.String(), "reconnecting in 10ms (attempt 1/3, resume after seq 2)") {
		t.Errorf("reconnect not announced:\n%s", stderr.String())
	}
	for _, want := range []string{
		"dip: trial=0 iter=1",
		"stage: trial=0 iter=1 difficulty=3.5 lbd=2.5 restarts=1",
		"result: experiment done trials=1 succeeded=true",
	} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("watch output missing %q:\n%s", want, stdout.String())
		}
	}
}

// TestWatchReconnectGivesUpAfterRetries bounds the retry loop: a stream
// that keeps dropping without progress exhausts -retries with exponential
// backoff and exits 3.
func TestWatchReconnectGivesUpAfterRetries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Write([]byte(sseFrame(0, "hello", `{"proto":1,"last_seq":0}`)))
	}))
	defer srv.Close()

	var stdout, stderr strings.Builder
	var slept []time.Duration
	w := &watcher{
		url: srv.URL, retries: 3, wait: time.Millisecond,
		stdout: &stdout, stderr: &stderr,
		sleep: func(d time.Duration) { slept = append(slept, d) },
	}
	if code := w.run(); code != exitCorrupt {
		t.Fatalf("watch exit %d, want %d", code, exitCorrupt)
	}
	// Hello frames carry no sequence number, so no connection "progressed":
	// the attempt counter never resets and backoff doubles each round.
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Errorf("backoff %d = %v, want %v", i, slept[i], want[i])
		}
	}
	if !strings.Contains(stderr.String(), "giving up after 3 reconnect attempt(s)") {
		t.Errorf("give-up not reported:\n%s", stderr.String())
	}
}

// TestWatchCorruptFrameNeverRetries pins the grammar-violation contract:
// a corrupt frame on an established stream exits 3 immediately —
// reconnecting cannot repair a stream that violates the wire grammar.
func TestWatchCorruptFrameNeverRetries(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Write([]byte(sseFrame(1, "delta", `{"iterations":1}`)))
		w.Write([]byte("bogus line without separator\n\n"))
	}))
	defer srv.Close()

	var stdout, stderr strings.Builder
	w := &watcher{
		url: srv.URL, retries: 5, wait: time.Millisecond,
		stdout: &stdout, stderr: &stderr,
		sleep: func(d time.Duration) { t.Errorf("slept %v on a corrupt stream", d) },
	}
	if code := w.run(); code != exitCorrupt {
		t.Fatalf("watch exit %d, want %d", code, exitCorrupt)
	}
}
