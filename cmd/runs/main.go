// Command runs inspects, validates, replays, and compares flight-recorder
// bundles (see internal/flight).
//
// Usage:
//
//	runs show <bundle>                  print a bundle summary and stage table
//	runs validate <bundle>              check the bundle files and manifest schema
//	runs replay <bundle>                re-run the attack from the transcript; exit 1 on divergence
//	runs diff <bundleA> <bundleB>       cross-run comparison of two bundles
//	runs bench [-out FILE] <bundle>...  append normalized rows to BENCH_attack.json
//	runs baseline [-bench FILE] <bundle>  compare a bundle to its ledger baseline row
//
// replay is the post-mortem tool: it rebuilds the locked design from the
// manifest, serves every oracle query from oracle.jsonl (no chip
// simulation), and compares the re-derived result to result.json. For
// sequentially recorded bundles the comparison is exact — any diff means
// the attack code changed behavior since the recording.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"dynunlock/internal/flight"
	"dynunlock/internal/report"
	"dynunlock/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "show":
		cmdShow(args)
	case "validate":
		cmdValidate(args)
	case "replay":
		cmdReplay(args)
	case "diff":
		cmdDiff(args)
	case "bench":
		cmdBench(args)
	case "baseline":
		cmdBaseline(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: runs <command> [args]

  show <bundle>                   print a bundle summary
  validate <bundle>               validate bundle files and manifest schema
  replay <bundle>                 replay the attack offline; exit 1 on divergence
  diff <bundleA> <bundleB>        compare two bundles
  bench [-out FILE] <bundle>...   append normalized rows to a benchmark ledger
  baseline [-bench FILE] <bundle> compare a bundle to its ledger baseline`)
	os.Exit(2)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "runs: "+format+"\n", args...)
	os.Exit(2)
}

func open(dir string) *flight.Bundle {
	b, err := flight.Open(dir)
	if err != nil {
		fatalf("%v", err)
	}
	return b
}

func cmdShow(args []string) {
	if len(args) != 1 {
		usage()
	}
	b := open(args[0])
	m := &b.Manifest
	fmt.Printf("bundle      %s\n", b.Dir)
	fmt.Printf("recorded    %s by %s (%s %s/%s, %d CPU, host %s)\n",
		m.CreatedAt, orDash(m.Tool), m.Fingerprint.GoVersion,
		m.Fingerprint.GOOS, m.Fingerprint.GOARCH, m.Fingerprint.NumCPU, orDash(m.Fingerprint.Host))
	if m.Fingerprint.GitCommit != "" {
		fmt.Printf("commit      %s\n", m.Fingerprint.GitCommit)
	}
	fmt.Printf("experiment  %s scale=%d keybits=%d policy=%s mode=%s portfolio=%d seed=%d\n",
		m.Benchmark, m.Scale, m.Lock.KeyBits, m.Lock.Policy, m.Mode, m.Portfolio, m.SeedBase)
	fmt.Printf("transcript  %d sessions, %d DIP iterations\n\n", len(b.Sessions), len(b.DIPs))

	tb := report.New(fmt.Sprintf("Trials (%d recorded)", len(b.Result.Trials)),
		"Trial", "Candidates", "Iterations", "Queries", "Seconds", "Conflicts", "Success")
	for _, t := range b.Result.Trials {
		tb.AddRow(t.Trial, len(t.SeedCandidates), t.Iterations, t.Queries,
			t.Seconds, t.Solver.Conflicts, t.Success)
	}
	tb.Render(os.Stdout)
	if b.Result.Stopped {
		fmt.Printf("\nstopped early: %s\n", b.Result.StopReason)
	}
	if spans, err := flight.ReadTrace(b.Dir); err == nil && len(spans) > 0 {
		fmt.Println()
		report.StageTable("Per-stage timing (summed over trials)", spans).Render(os.Stdout)
	}
}

func cmdValidate(args []string) {
	if len(args) != 1 {
		usage()
	}
	b := open(args[0]) // Open validates the manifest and parses every line
	if _, err := b.Design(); err != nil {
		fatalf("%v", err)
	}
	if _, err := flight.ReadTrace(b.Dir); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("runs: %s ok: %d trial(s), %d session(s), %d DIP(s)\n",
		args[0], len(b.Result.Trials), len(b.Sessions), len(b.DIPs))
}

func cmdReplay(args []string) {
	if len(args) != 1 {
		usage()
	}
	b := open(args[0])
	start := time.Now()
	replayed, err := b.Replay(context.Background())
	if err != nil {
		fatalf("%v", err)
	}
	diffs := flight.Compare(&b.Result, replayed)
	tb := report.New(fmt.Sprintf("Replay of %s (%d trial(s), %.2fs offline)",
		b.Dir, len(replayed.Trials), time.Since(start).Seconds()),
		"Trial", "Candidates", "Iterations", "Queries", "Match")
	for i, t := range replayed.Trials {
		match := i < len(b.Result.Trials) &&
			len(flight.Compare(
				&flight.ResultDoc{Trials: b.Result.Trials[i : i+1]},
				&flight.ResultDoc{Trials: replayed.Trials[i : i+1]})) == 0
		tb.AddRow(t.Trial, len(t.SeedCandidates), t.Iterations, t.Queries, match)
	}
	tb.Render(os.Stdout)
	if len(diffs) > 0 {
		fmt.Println("\nreplay diverged from the recording:")
		for _, d := range diffs {
			fmt.Printf("  %s\n", d)
		}
		os.Exit(1)
	}
	fmt.Println("\nreplay is bit-identical to the recording")
}

func cmdDiff(args []string) {
	if len(args) != 2 {
		usage()
	}
	a, b := open(args[0]), open(args[1])
	ra, rb := flight.BenchRowFrom(a), flight.BenchRowFrom(b)

	tb := report.New(fmt.Sprintf("Bundle diff: %s vs %s", args[0], args[1]),
		"Metric", "A", "B", "Delta")
	addNum := func(name string, va, vb float64) {
		tb.AddRow(name, va, vb, vb-va)
	}
	tb.AddRow("benchmark", ra.Benchmark, rb.Benchmark, "")
	tb.AddRow("config", cfgString(ra), cfgString(rb), "")
	tb.AddRow("recorded", ra.RecordedAt, rb.RecordedAt, "")
	tb.AddRow("commit", orDash(ra.GitCommit), orDash(rb.GitCommit), "")
	addNum("trials", float64(ra.Trials), float64(rb.Trials))
	addNum("avg iterations", ra.AvgIterations, rb.AvgIterations)
	addNum("avg queries", ra.AvgQueries, rb.AvgQueries)
	addNum("avg candidates", ra.AvgCandidates, rb.AvgCandidates)
	addNum("avg seconds", ra.AvgSeconds, rb.AvgSeconds)
	addNum("total conflicts", float64(ra.TotalConflicts), float64(rb.TotalConflicts))
	addNum("total propagations", float64(ra.TotalPropagations), float64(rb.TotalPropagations))
	tb.AddRow("broken", ra.Broken, rb.Broken, "")
	tb.Render(os.Stdout)

	sa, errA := flight.ReadTrace(a.Dir)
	sb, errB := flight.ReadTrace(b.Dir)
	if errA == nil && errB == nil && (len(sa) > 0 || len(sb) > 0) {
		fmt.Println()
		stageDiffTable(sa, sb).Render(os.Stdout)
	}
}

func cfgString(r flight.BenchRow) string {
	return fmt.Sprintf("scale=%d k=%d %s %s pf=%d", r.Scale, r.KeyBits, r.Policy, r.Mode, r.Portfolio)
}

// stageDiffTable sums span durations per stage for each bundle and lines
// them up in report.FigStages order (unknown stages follow, in order of
// first appearance).
func stageDiffTable(a, b []trace.SpanRecord) *report.Table {
	sum := func(spans []trace.SpanRecord) map[string]time.Duration {
		m := make(map[string]time.Duration)
		for _, s := range spans {
			m[s.Name] += s.Duration
		}
		return m
	}
	ma, mb := sum(a), sum(b)
	seen := map[string]bool{}
	var order []string
	for _, name := range report.FigStages {
		if ma[name] > 0 || mb[name] > 0 {
			order = append(order, name)
			seen[name] = true
		}
	}
	for _, spans := range [][]trace.SpanRecord{a, b} {
		for _, s := range spans {
			if !seen[s.Name] {
				order = append(order, s.Name)
				seen[s.Name] = true
			}
		}
	}
	tb := report.New("Per-stage timing diff (ms, summed over trials)",
		"Stage", "A", "B", "Delta")
	for _, name := range order {
		va := float64(ma[name]) / float64(time.Millisecond)
		vb := float64(mb[name]) / float64(time.Millisecond)
		tb.AddRow(name, va, vb, vb-va)
	}
	return tb
}

func cmdBench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	out := fs.String("out", "BENCH_attack.json", "benchmark ledger to append to")
	fs.Parse(args)
	if fs.NArg() < 1 {
		usage()
	}
	ledger, err := flight.ReadBenchFile(*out)
	if err != nil {
		fatalf("%v", err)
	}
	for _, dir := range fs.Args() {
		row := flight.BenchRowFrom(open(dir))
		ledger.Rows = append(ledger.Rows, row)
		fmt.Printf("runs: %s: %s %s avg_iters=%.1f avg_secs=%.3f conflicts=%d broken=%v\n",
			*out, row.Benchmark, cfgString(row), row.AvgIterations, row.AvgSeconds,
			row.TotalConflicts, row.Broken)
	}
	if err := ledger.Write(*out); err != nil {
		fatalf("%v", err)
	}
}

func cmdBaseline(args []string) {
	fs := flag.NewFlagSet("baseline", flag.ExitOnError)
	ledgerPath := fs.String("bench", "BENCH_attack.json", "benchmark ledger holding the baseline rows")
	fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	ledger, err := flight.ReadBenchFile(*ledgerPath)
	if err != nil {
		fatalf("%v", err)
	}
	row := flight.BenchRowFrom(open(fs.Arg(0)))
	base, ok := ledger.FindRow(row)
	if !ok {
		fatalf("no baseline row in %s for %s %s", *ledgerPath, row.Benchmark, cfgString(row))
	}
	tb := report.New(fmt.Sprintf("Baseline comparison: %s %s", row.Benchmark, cfgString(row)),
		"Metric", "Baseline", "Current", "Delta")
	num := func(name string, vb, vc float64) { tb.AddRow(name, vb, vc, vc-vb) }
	num("trials", float64(base.Trials), float64(row.Trials))
	num("avg iterations", base.AvgIterations, row.AvgIterations)
	num("avg queries", base.AvgQueries, row.AvgQueries)
	num("avg candidates", base.AvgCandidates, row.AvgCandidates)
	num("avg seconds", base.AvgSeconds, row.AvgSeconds)
	num("total conflicts", float64(base.TotalConflicts), float64(row.TotalConflicts))
	tb.AddRow("broken", base.Broken, row.Broken, "")
	tb.Render(os.Stdout)
	// The deterministic columns must match the baseline exactly; timing and
	// solver-effort columns are report-only (they vary across hosts).
	exact := base.Trials == row.Trials &&
		base.AvgIterations == row.AvgIterations &&
		base.AvgQueries == row.AvgQueries &&
		base.AvgCandidates == row.AvgCandidates &&
		base.Broken == row.Broken
	if !exact {
		fmt.Println("\nbaseline mismatch on deterministic columns")
		os.Exit(1)
	}
	fmt.Println("\nbaseline match on deterministic columns")
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
