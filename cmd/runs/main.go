// Command runs inspects, validates, replays, compares, and reports on
// flight-recorder bundles (see internal/flight).
//
// Usage:
//
//	runs show <bundle>                  print a bundle summary and stage table
//	runs validate <bundle>              check the bundle files and manifest schema
//	runs replay <bundle>                re-run the attack from the transcript
//	runs explain [-json] [-top N] <bundle>
//	                                    per-stage and per-DIP attribution report
//	runs diff <bundleA> <bundleB>       cross-run comparison of two bundles
//	runs compare <bundleA> <bundleB>    attribute a perf change: which stage and
//	                                    solver series regressed between two runs
//	runs bench [-out FILE] <bundle>...  append normalized rows to BENCH_attack.json
//	runs baseline [-bench FILE] <bundle>  compare a bundle to its ledger baseline row
//	runs report [-o FILE] [-bench FILE] [-title T] <bundle-or-dir>...
//	                                    render bundles into a self-contained HTML report
//	runs trends [-o FILE] [-bench FILE] [-title T] <bundle-or-dir>...
//	                                    render a cross-run trend report (SVG charts)
//	runs watch [-job ID] <addr>         follow a live run's /events feed in the terminal
//
// explain is the attribution tool (see internal/anatomy): wall time split
// across the Fig. 3 stages (rows sum exactly to the recorded wall time),
// solver counter totals (exactly the sum of result.json's per-trial
// snapshots), the hardest DIP iterations by difficulty score, and — on
// format-v4 bundles — the live-captured LBD distribution and restart
// telemetry. compare runs the same attribution over two bundles and names
// the stage and solver series that regressed, instead of only reporting
// that something differs.
//
// Exit codes are uniform across subcommands so scripts and CI can tell the
// failure classes apart:
//
//	0  success (validate: bundle ok; replay/diff/baseline: results match)
//	1  mismatch — replay diverged, diff found differing deterministic
//	   columns, or the baseline comparison failed
//	2  usage error
//	3  corrupt or unreadable bundle/ledger (malformed JSON, failed schema
//	   validation, missing files)
//
// replay is the post-mortem tool: it rebuilds the locked design from the
// manifest, serves every oracle query from oracle.jsonl (no chip
// simulation), and compares the re-derived result to result.json. For
// sequentially recorded bundles the comparison is exact — any diff means
// the attack code changed behavior since the recording.
//
// report renders one or more bundles (a directory of bundles expands to its
// sorted children) into one static HTML file with inline-SVG charts: the
// insight rank/seed-space curve, solve-time and oracle-cycle timelines,
// solver hotspots, and a cross-run comparison table. The output is
// deterministic: the same bundles render byte-identically.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dynunlock/internal/flight"
	"dynunlock/internal/report"
	"dynunlock/internal/trace"
)

// Exit codes (documented in the package comment; asserted in main_test.go).
const (
	exitOK       = 0
	exitMismatch = 1
	exitUsage    = 2
	exitCorrupt  = 3
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run dispatches a subcommand and returns the process exit code; main is a
// thin os.Exit wrapper so tests can drive the CLI in-process.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		return usage(stderr)
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "show":
		return cmdShow(rest, stdout, stderr)
	case "validate":
		return cmdValidate(rest, stdout, stderr)
	case "replay":
		return cmdReplay(rest, stdout, stderr)
	case "explain":
		return cmdExplain(rest, stdout, stderr)
	case "diff":
		return cmdDiff(rest, stdout, stderr)
	case "compare":
		return cmdCompare(rest, stdout, stderr)
	case "trends":
		return cmdTrends(rest, stdout, stderr)
	case "bench":
		return cmdBench(rest, stdout, stderr)
	case "baseline":
		return cmdBaseline(rest, stdout, stderr)
	case "report":
		return cmdReport(rest, stdout, stderr)
	case "watch":
		return cmdWatch(rest, stdout, stderr)
	}
	return usage(stderr)
}

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, `usage: runs <command> [args]

  show <bundle>                   print a bundle summary
  validate <bundle>               validate bundle files and manifest schema
  replay <bundle>                 replay the attack offline
  explain [-json] [-top N] <bundle>
                                  per-stage and per-DIP attribution report
  diff <bundleA> <bundleB>        compare two bundles
  compare <bundleA> <bundleB>     attribute a perf change between two bundles
  bench [-out FILE] <bundle>...   append normalized rows to a benchmark ledger
  baseline [-bench FILE] <bundle> compare a bundle to its ledger baseline
  report [-o FILE] [-bench FILE] [-title T] <bundle-or-dir>...
                                  render bundles into one self-contained HTML report
  trends [-o FILE] [-bench FILE] [-title T] <bundle-or-dir>...
                                  render a cross-run trend report (SVG charts)
  watch [-job ID] <addr>          follow a live run's /events feed in the terminal
                                  (-job filters to one dynunlockd job and exits at its terminal state)

exit codes: 0 ok/match · 1 mismatch (replay divergence, diff or baseline
mismatch) · 2 usage · 3 corrupt or unreadable bundle/ledger/event stream`)
	return exitUsage
}

// open loads a bundle; a load failure prints the fault and reports it as
// corrupt/unreadable (exit 3 at the caller).
func open(dir string, stderr io.Writer) (*flight.Bundle, bool) {
	b, err := flight.Open(dir)
	if err != nil {
		fmt.Fprintf(stderr, "runs: %v\n", err)
		return nil, false
	}
	return b, true
}

func cmdShow(args []string, stdout, stderr io.Writer) int {
	if len(args) != 1 {
		return usage(stderr)
	}
	b, ok := open(args[0], stderr)
	if !ok {
		return exitCorrupt
	}
	m := &b.Manifest
	fmt.Fprintf(stdout, "bundle      %s\n", b.Dir)
	fmt.Fprintf(stdout, "recorded    %s by %s (%s %s/%s, %d CPU, host %s)\n",
		m.CreatedAt, orDash(m.Tool), m.Fingerprint.GoVersion,
		m.Fingerprint.GOOS, m.Fingerprint.GOARCH, m.Fingerprint.NumCPU, orDash(m.Fingerprint.Host))
	if m.Fingerprint.GitCommit != "" {
		fmt.Fprintf(stdout, "commit      %s\n", m.Fingerprint.GitCommit)
	}
	fmt.Fprintf(stdout, "experiment  %s scale=%d keybits=%d policy=%s mode=%s portfolio=%d seed=%d nativexor=%v aig=%v simplify=%v analytic=%v\n",
		m.Benchmark, m.Scale, m.Lock.KeyBits, m.Lock.Policy, m.Mode, m.Portfolio, m.SeedBase, m.NativeXor, m.AIG, m.Simplify, m.Analytic)
	if len(m.Profiles) > 0 {
		fmt.Fprintf(stdout, "profiles    %v\n", m.Profiles)
	}
	fmt.Fprintf(stdout, "transcript  %d sessions, %d DIP iterations\n\n", len(b.Sessions), len(b.DIPs))

	tb := report.New(fmt.Sprintf("Trials (%d recorded)", len(b.Result.Trials)),
		"Trial", "Candidates", "Iterations", "Queries", "Seconds", "Conflicts", "Enc vars", "Enc clauses", "Success")
	for _, t := range b.Result.Trials {
		tb.AddRow(t.Trial, len(t.SeedCandidates), t.Iterations, t.Queries,
			t.Seconds, t.Solver.Conflicts, t.EncodeVars, t.EncodeClauses, t.Success)
	}
	tb.Render(stdout)
	if b.Result.Stopped {
		fmt.Fprintf(stdout, "\nstopped early: %s\n", b.Result.StopReason)
	}
	if spans, err := flight.ReadTrace(b.Dir); err == nil && len(spans) > 0 {
		fmt.Fprintln(stdout)
		report.StageTable("Per-stage timing (summed over trials)", spans).Render(stdout)
	}
	return exitOK
}

func cmdValidate(args []string, stdout, stderr io.Writer) int {
	if len(args) != 1 {
		return usage(stderr)
	}
	b, ok := open(args[0], stderr) // Open validates the manifest and parses every line
	if !ok {
		return exitCorrupt
	}
	if _, err := b.Design(); err != nil {
		fmt.Fprintf(stderr, "runs: %v\n", err)
		return exitCorrupt
	}
	if _, err := flight.ReadTrace(b.Dir); err != nil {
		fmt.Fprintf(stderr, "runs: %v\n", err)
		return exitCorrupt
	}
	fmt.Fprintf(stdout, "runs: %s ok: %d trial(s), %d session(s), %d DIP(s)\n",
		args[0], len(b.Result.Trials), len(b.Sessions), len(b.DIPs))
	return exitOK
}

func cmdReplay(args []string, stdout, stderr io.Writer) int {
	if len(args) != 1 {
		return usage(stderr)
	}
	b, ok := open(args[0], stderr)
	if !ok {
		return exitCorrupt
	}
	start := time.Now()
	replayed, err := b.Replay(context.Background())
	if err != nil {
		fmt.Fprintf(stderr, "runs: %v\n", err)
		return exitCorrupt
	}
	diffs := flight.Compare(&b.Result, replayed)
	tb := report.New(fmt.Sprintf("Replay of %s (%d trial(s), %.2fs offline)",
		b.Dir, len(replayed.Trials), time.Since(start).Seconds()),
		"Trial", "Candidates", "Iterations", "Queries", "Match")
	for i, t := range replayed.Trials {
		match := i < len(b.Result.Trials) &&
			len(flight.Compare(
				&flight.ResultDoc{Trials: b.Result.Trials[i : i+1]},
				&flight.ResultDoc{Trials: replayed.Trials[i : i+1]})) == 0
		tb.AddRow(t.Trial, len(t.SeedCandidates), t.Iterations, t.Queries, match)
	}
	tb.Render(stdout)
	if len(diffs) > 0 {
		fmt.Fprintln(stdout, "\nreplay diverged from the recording:")
		for _, d := range diffs {
			fmt.Fprintf(stdout, "  %s\n", d)
		}
		return exitMismatch
	}
	fmt.Fprintln(stdout, "\nreplay is bit-identical to the recording")
	return exitOK
}

// cmdDiff compares two bundles. The deterministic outcome columns (trials,
// iterations, queries, candidates, broken) decide the exit code: identical
// outcomes exit 0, differing ones exit 1; timing and solver-effort columns
// are report-only.
func cmdDiff(args []string, stdout, stderr io.Writer) int {
	if len(args) != 2 {
		return usage(stderr)
	}
	a, okA := open(args[0], stderr)
	if !okA {
		return exitCorrupt
	}
	b, okB := open(args[1], stderr)
	if !okB {
		return exitCorrupt
	}
	ra, rb := flight.BenchRowFrom(a), flight.BenchRowFrom(b)

	tb := report.New(fmt.Sprintf("Bundle diff: %s vs %s", args[0], args[1]),
		"Metric", "A", "B", "Delta")
	addNum := func(name string, va, vb float64) {
		tb.AddRow(name, va, vb, vb-va)
	}
	tb.AddRow("benchmark", ra.Benchmark, rb.Benchmark, "")
	tb.AddRow("config", cfgString(ra), cfgString(rb), "")
	tb.AddRow("recorded", ra.RecordedAt, rb.RecordedAt, "")
	tb.AddRow("commit", orDash(ra.GitCommit), orDash(rb.GitCommit), "")
	addNum("trials", float64(ra.Trials), float64(rb.Trials))
	addNum("avg iterations", ra.AvgIterations, rb.AvgIterations)
	addNum("avg queries", ra.AvgQueries, rb.AvgQueries)
	addNum("avg candidates", ra.AvgCandidates, rb.AvgCandidates)
	addNum("avg seconds", ra.AvgSeconds, rb.AvgSeconds)
	addNum("total conflicts", float64(ra.TotalConflicts), float64(rb.TotalConflicts))
	addNum("total propagations", float64(ra.TotalPropagations), float64(rb.TotalPropagations))
	tb.AddRow("broken", ra.Broken, rb.Broken, "")
	tb.Render(stdout)

	sa, errA := flight.ReadTrace(a.Dir)
	sb, errB := flight.ReadTrace(b.Dir)
	if errA == nil && errB == nil && (len(sa) > 0 || len(sb) > 0) {
		fmt.Fprintln(stdout)
		stageDiffTable(sa, sb).Render(stdout)
	}
	same := ra.Benchmark == rb.Benchmark &&
		ra.Trials == rb.Trials &&
		ra.AvgIterations == rb.AvgIterations &&
		ra.AvgQueries == rb.AvgQueries &&
		ra.AvgCandidates == rb.AvgCandidates &&
		ra.Broken == rb.Broken
	if !same {
		fmt.Fprintln(stdout, "\nbundles differ on deterministic columns")
		return exitMismatch
	}
	fmt.Fprintln(stdout, "\nbundles match on deterministic columns")
	return exitOK
}

func cfgString(r flight.BenchRow) string {
	s := fmt.Sprintf("scale=%d k=%d %s %s pf=%d", r.Scale, r.KeyBits, r.Policy, r.Mode, r.Portfolio)
	if r.NativeXor {
		s += " xor"
	}
	if r.AIG {
		s += " aig"
	}
	if r.Simplify {
		s += " simplify"
	}
	if r.Analytic {
		s += " analytic"
	}
	return s
}

// stageDiffTable sums span durations per stage for each bundle and lines
// them up in report.FigStages order (unknown stages follow, in order of
// first appearance).
func stageDiffTable(a, b []trace.SpanRecord) *report.Table {
	sum := func(spans []trace.SpanRecord) map[string]time.Duration {
		m := make(map[string]time.Duration)
		for _, s := range spans {
			m[s.Name] += s.Duration
		}
		return m
	}
	ma, mb := sum(a), sum(b)
	seen := map[string]bool{}
	var order []string
	for _, name := range report.FigStages {
		if ma[name] > 0 || mb[name] > 0 {
			order = append(order, name)
			seen[name] = true
		}
	}
	for _, spans := range [][]trace.SpanRecord{a, b} {
		for _, s := range spans {
			if !seen[s.Name] {
				order = append(order, s.Name)
				seen[s.Name] = true
			}
		}
	}
	tb := report.New("Per-stage timing diff (ms, summed over trials)",
		"Stage", "A", "B", "Delta")
	for _, name := range order {
		va := float64(ma[name]) / float64(time.Millisecond)
		vb := float64(mb[name]) / float64(time.Millisecond)
		tb.AddRow(name, va, vb, vb-va)
	}
	return tb
}

func cmdBench(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("out", "BENCH_attack.json", "benchmark ledger to append to")
	if fs.Parse(args) != nil {
		return exitUsage
	}
	if fs.NArg() < 1 {
		return usage(stderr)
	}
	ledger, err := flight.ReadBenchFile(*out)
	if err != nil {
		fmt.Fprintf(stderr, "runs: %v\n", err)
		return exitCorrupt
	}
	for _, dir := range fs.Args() {
		b, ok := open(dir, stderr)
		if !ok {
			return exitCorrupt
		}
		row := flight.BenchRowFrom(b)
		ledger.Rows = append(ledger.Rows, row)
		fmt.Fprintf(stdout, "runs: %s: %s %s avg_iters=%.1f avg_secs=%.3f conflicts=%d broken=%v\n",
			*out, row.Benchmark, cfgString(row), row.AvgIterations, row.AvgSeconds,
			row.TotalConflicts, row.Broken)
	}
	if err := ledger.Write(*out); err != nil {
		fmt.Fprintf(stderr, "runs: %v\n", err)
		return exitCorrupt
	}
	return exitOK
}

func cmdBaseline(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("baseline", flag.ContinueOnError)
	fs.SetOutput(stderr)
	ledgerPath := fs.String("bench", "BENCH_attack.json", "benchmark ledger holding the baseline rows")
	if fs.Parse(args) != nil {
		return exitUsage
	}
	if fs.NArg() != 1 {
		return usage(stderr)
	}
	ledger, err := flight.ReadBenchFile(*ledgerPath)
	if err != nil {
		fmt.Fprintf(stderr, "runs: %v\n", err)
		return exitCorrupt
	}
	b, ok := open(fs.Arg(0), stderr)
	if !ok {
		return exitCorrupt
	}
	row := flight.BenchRowFrom(b)
	base, found := ledger.FindRow(row)
	if !found {
		fmt.Fprintf(stderr, "runs: no baseline row in %s for %s %s\n", *ledgerPath, row.Benchmark, cfgString(row))
		return exitMismatch
	}
	tb := report.New(fmt.Sprintf("Baseline comparison: %s %s", row.Benchmark, cfgString(row)),
		"Metric", "Baseline", "Current", "Delta")
	num := func(name string, vb, vc float64) { tb.AddRow(name, vb, vc, vc-vb) }
	num("trials", float64(base.Trials), float64(row.Trials))
	num("avg iterations", base.AvgIterations, row.AvgIterations)
	num("avg queries", base.AvgQueries, row.AvgQueries)
	num("avg candidates", base.AvgCandidates, row.AvgCandidates)
	num("avg seconds", base.AvgSeconds, row.AvgSeconds)
	num("total conflicts", float64(base.TotalConflicts), float64(row.TotalConflicts))
	tb.AddRow("broken", base.Broken, row.Broken, "")
	tb.Render(stdout)
	// The deterministic columns must match the baseline exactly; timing and
	// solver-effort columns are report-only (they vary across hosts). On a
	// mismatch, every regressed series is named with its movement so the
	// failure is directly attributable (`runs compare` digs further into
	// which attack stage moved).
	var regressed []string
	mism := func(name string, vb, vc float64) {
		if vb != vc {
			regressed = append(regressed, fmt.Sprintf("%s: baseline %g, current %g (%+g)", name, vb, vc, vc-vb))
		}
	}
	mism("trials", float64(base.Trials), float64(row.Trials))
	mism("avg iterations", base.AvgIterations, row.AvgIterations)
	mism("avg queries", base.AvgQueries, row.AvgQueries)
	mism("avg candidates", base.AvgCandidates, row.AvgCandidates)
	if base.Broken != row.Broken {
		regressed = append(regressed, fmt.Sprintf("broken: baseline %v, current %v", base.Broken, row.Broken))
	}
	if len(regressed) > 0 {
		fmt.Fprintf(stdout, "\nbaseline mismatch: %d deterministic series moved\n", len(regressed))
		for _, s := range regressed {
			fmt.Fprintf(stdout, "  %s\n", s)
		}
		return exitMismatch
	}
	fmt.Fprintln(stdout, "\nbaseline match on deterministic columns")
	return exitOK
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
