package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const (
	goodBundle  = "../../bench/bundles/table2_parallel1/table2_s5378"
	otherBundle = "../../bench/bundles/table2_parallel1/table2_b20"
	bundleDir   = "../../bench/bundles/table2_parallel1"
)

// runCLI drives the command in-process and returns (exit code, stdout, stderr).
func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	code := run(args, &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

// corruptBundle writes a directory whose manifest.json is not JSON.
func corruptBundle(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, f := range []string{"manifest.json", "result.json", "oracle.jsonl", "dips.jsonl", "trace.jsonl"} {
		if err := os.WriteFile(filepath.Join(dir, f), []byte("{not json"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestExitCodes pins the documented contract: 0 ok, 1 mismatch, 2 usage,
// 3 corrupt/unreadable — so "the bundles differ" and "the bundle is
// damaged" are distinguishable to scripts without parsing output.
func TestExitCodes(t *testing.T) {
	if code, _, _ := runCLI(t); code != exitUsage {
		t.Errorf("no args: exit %d, want %d", code, exitUsage)
	}
	if code, _, _ := runCLI(t, "frobnicate"); code != exitUsage {
		t.Errorf("unknown command: exit %d, want %d", code, exitUsage)
	}

	if code, out, errOut := runCLI(t, "validate", goodBundle); code != exitOK {
		t.Errorf("validate good: exit %d, want %d\n%s%s", code, exitOK, out, errOut)
	}
	bad := corruptBundle(t)
	if code, _, errOut := runCLI(t, "validate", bad); code != exitCorrupt {
		t.Errorf("validate corrupt: exit %d, want %d\n%s", code, exitCorrupt, errOut)
	} else if !strings.Contains(errOut, "runs:") {
		t.Errorf("validate corrupt: fault not reported: %q", errOut)
	}
	if code, _, _ := runCLI(t, "validate", filepath.Join(bad, "absent")); code != exitCorrupt {
		t.Errorf("validate missing: want exit %d", exitCorrupt)
	}

	if code, out, _ := runCLI(t, "diff", goodBundle, goodBundle); code != exitOK {
		t.Errorf("diff self: exit %d, want %d\n%s", code, exitOK, out)
	}
	if code, out, _ := runCLI(t, "diff", goodBundle, otherBundle); code != exitMismatch {
		t.Errorf("diff distinct: exit %d, want %d\n%s", code, exitMismatch, out)
	}
	if code, _, _ := runCLI(t, "diff", goodBundle, bad); code != exitCorrupt {
		t.Errorf("diff corrupt: want exit %d", exitCorrupt)
	}
}

func TestReportCommand(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.html")
	code, _, errOut := runCLI(t, "report", "-o", out, bundleDir)
	if code != exitOK {
		t.Fatalf("report: exit %d\n%s", code, errOut)
	}
	html, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<svg", "Rank / seed-space curve", "Cross-run comparison"} {
		if !strings.Contains(string(html), want) {
			t.Errorf("report missing %q", want)
		}
	}
	// A parent directory expands to all child bundles.
	entries, err := os.ReadDir(bundleDir)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(string(html), `<td><a href="#bundle-`); got != len(entries) {
		t.Errorf("overview rows = %d, want one per bundle (%d)", got, len(entries))
	}
	if code, _, _ := runCLI(t, "report", "-o", filepath.Join(t.TempDir(), "r.html"), corruptBundle(t)); code != exitCorrupt {
		t.Errorf("report corrupt: want exit %d", exitCorrupt)
	}
	if code, _, _ := runCLI(t, "report"); code != exitUsage {
		t.Errorf("report no args: want exit %d", exitUsage)
	}
}
