package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"dynunlock/internal/flight"
	"dynunlock/internal/report"
)

// cmdReport renders one or more bundles into a single self-contained HTML
// report. Arguments are bundle directories or parents of bundles: a
// directory without a manifest.json expands to its immediate children that
// have one, in sorted order — so `runs report bench/bundles/table2_parallel1`
// reports every committed condition of that sweep.
func cmdReport(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	fs.SetOutput(stderr)
	out := fs.String("o", "", "write the HTML report to this file (default: stdout)")
	ledgerPath := fs.String("bench", "", "benchmark ledger for the cross-run comparison table (e.g. BENCH_attack.json)")
	title := fs.String("title", "", "report title")
	if fs.Parse(args) != nil {
		return exitUsage
	}
	if fs.NArg() < 1 {
		return usage(stderr)
	}

	dirs, err := expandBundleDirs(fs.Args())
	if err != nil {
		fmt.Fprintf(stderr, "runs: %v\n", err)
		return exitCorrupt
	}
	if len(dirs) == 0 {
		fmt.Fprintln(stderr, "runs: no bundles found under the given paths")
		return exitCorrupt
	}
	var bundles []*flight.Bundle
	for _, dir := range dirs {
		b, ok := open(dir, stderr)
		if !ok {
			return exitCorrupt
		}
		bundles = append(bundles, b)
	}

	opts := report.HTMLOptions{Title: *title}
	if *ledgerPath != "" {
		ledger, err := flight.ReadBenchFile(*ledgerPath)
		if err != nil {
			fmt.Fprintf(stderr, "runs: %v\n", err)
			return exitCorrupt
		}
		opts.Ledger = ledger
		opts.LedgerPath = *ledgerPath
	}
	if *out != "" {
		opts.OutDir = filepath.Dir(*out)
	}

	var buf bytes.Buffer
	if err := report.WriteHTML(&buf, bundles, opts); err != nil {
		fmt.Fprintf(stderr, "runs: %v\n", err)
		return exitCorrupt
	}
	if *out == "" {
		stdout.Write(buf.Bytes())
		return exitOK
	}
	if err := os.WriteFile(*out, buf.Bytes(), 0o644); err != nil {
		fmt.Fprintf(stderr, "runs: %v\n", err)
		return exitCorrupt
	}
	fmt.Fprintf(stderr, "runs: wrote %s (%d bundle(s), %d bytes)\n", *out, len(bundles), buf.Len())
	return exitOK
}

// expandBundleDirs resolves each argument to bundle directories: a path
// containing manifest.json is itself a bundle; otherwise its immediate
// children holding a manifest.json are used, sorted by name.
func expandBundleDirs(args []string) ([]string, error) {
	var out []string
	for _, arg := range args {
		if _, err := os.Stat(filepath.Join(arg, flight.ManifestFile)); err == nil {
			out = append(out, arg)
			continue
		}
		entries, err := os.ReadDir(arg)
		if err != nil {
			return nil, err
		}
		var kids []string
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			child := filepath.Join(arg, e.Name())
			if _, err := os.Stat(filepath.Join(child, flight.ManifestFile)); err == nil {
				kids = append(kids, child)
			}
		}
		if len(kids) == 0 {
			return nil, fmt.Errorf("%s: no bundle (manifest.json) found in it or its children", arg)
		}
		sort.Strings(kids)
		out = append(out, kids...)
	}
	return out, nil
}
