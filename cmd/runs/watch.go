package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"dynunlock/internal/metrics"
	"dynunlock/internal/stream"
)

// cmdWatch follows a live run's /events feed (see internal/stream and
// internal/metrics.ServeBus), rendering each event as one terminal line.
// It is the headless sibling of the /live dashboard: the delta lines are a
// superset of the -progress line (they add encode vars/clauses), and the
// stream's terminal "result" event with scope "experiment" ends the watch
// with exit 0. A connection failure, non-SSE response, corrupt frame, or a
// stream that ends before the run finishes exits 3 (corrupt), matching the
// bundle subcommands.
func cmdWatch(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("watch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	if fs.Parse(args) != nil {
		return exitUsage
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: runs watch <addr>  (e.g. 127.0.0.1:9090 or http://host:9090/events)")
		return exitUsage
	}
	url := watchURL(fs.Arg(0))

	resp, err := http.Get(url)
	if err != nil {
		fmt.Fprintf(stderr, "runs: watch %s: %v\n", url, err)
		return exitCorrupt
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(stderr, "runs: watch %s: %s\n", url, resp.Status)
		return exitCorrupt
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		fmt.Fprintf(stderr, "runs: watch %s: not an event stream (Content-Type %q)\n", url, ct)
		return exitCorrupt
	}
	return watchStream(resp.Body, stdout, stderr)
}

// watchStream renders a decoded event stream; split from cmdWatch so tests
// can drive it from a recorded stream without a server.
func watchStream(r io.Reader, stdout, stderr io.Writer) int {
	dec := stream.NewDecoder(r)
	for {
		ev, err := dec.Next()
		if err == io.EOF {
			fmt.Fprintln(stderr, "runs: watch: stream ended before the run finished")
			return exitCorrupt
		}
		if err != nil {
			fmt.Fprintf(stderr, "runs: watch: %v\n", err)
			return exitCorrupt
		}
		if done := renderEvent(stdout, ev); done {
			return exitOK
		}
	}
}

// renderEvent prints one line per event and reports whether the stream
// reached its terminal experiment result.
func renderEvent(w io.Writer, ev stream.Event) (done bool) {
	switch ev.Type {
	case stream.TypeHello:
		line := fmt.Sprintf("watch: connected proto=%v last_seq=%v", ev.Data["proto"], ev.Data["last_seq"])
		if gap, _ := ev.Data["gap"].(bool); gap {
			line += " (gap: ring evicted events before our resume point)"
		}
		fmt.Fprintln(w, line)
	case stream.TypeSnapshot:
		fmt.Fprintf(w, "snapshot: iters=%.0f conflicts=%.0f props=%.0f cycles=%.0f\n",
			sumFamily(ev.Data, metrics.MetricAttackDIPs),
			sumFamily(ev.Data, metrics.MetricSatConflicts),
			sumFamily(ev.Data, metrics.MetricSatPropagations),
			sumFamily(ev.Data, metrics.MetricOracleCycles))
	case stream.TypeDelta:
		fmt.Fprintln(w, deltaLine(ev.Data))
	case stream.TypeDIP:
		fmt.Fprintf(w, "dip: trial=%v iter=%v conflicts=%v solve_ms=%s\n",
			ev.Data["trial"], ev.Data["iteration"], ev.Data["conflicts"], numStr(ev.Data["solve_ms"]))
	case stream.TypeInsight:
		fmt.Fprintf(w, "insight: rank=%v/%v seeds=2^%v\n",
			ev.Data["rank"], ev.Data["rank_target"], ev.Data["seeds_log2"])
	case stream.TypeSpan:
		fmt.Fprintf(w, "span: %v %sms\n", ev.Data["span"], numStr(ev.Data["dur_ms"]))
	case stream.TypeResult:
		scope, _ := ev.Data["scope"].(string)
		if scope == "experiment" {
			fmt.Fprintf(w, "result: experiment done trials=%v succeeded=%v stopped=%v\n",
				ev.Data["trials_run"], ev.Data["succeeded"], ev.Data["stopped"])
			return true
		}
		fmt.Fprintf(w, "result: trial done iterations=%v candidates=%v converged=%v verified=%v\n",
			ev.Data["iterations"], ev.Data["candidates"], ev.Data["converged"], ev.Data["verified"])
	}
	return false
}

// deltaLine is the watch rendering of one periodic delta: a superset of
// the -progress stderr line that additionally shows encode growth.
func deltaLine(d map[string]any) string {
	var b strings.Builder
	b.WriteString("progress:")
	field := func(label, key, format string) {
		if v, ok := d[key].(float64); ok {
			fmt.Fprintf(&b, " "+label+"="+format, v)
		}
	}
	field("iters", "iterations", "%.0f")
	field("conflicts", "conflicts", "%.0f")
	field("conf/s", "conflicts_per_s", "%.0f")
	field("props", "propagations", "%.0f")
	field("props/s", "props_per_s", "%.0f")
	field("learnt", "learnt_db", "%.0f")
	field("cycles", "oracle_cycles", "%.0f")
	field("vars", "encode_vars", "%.0f")
	field("clauses", "encode_clauses", "%.0f")
	if rank, ok := d["rank"].(float64); ok {
		target, _ := d["rank_target"].(float64)
		fmt.Fprintf(&b, " rank=%.0f/%.0f", rank, target)
	}
	field("seeds", "seeds_log2", "2^%.0f")
	if eta, ok := d["eta_s"].(float64); ok {
		fmt.Fprintf(&b, " eta=%s", (time.Duration(eta * float64(time.Second))).Round(time.Second))
	}
	return b.String()
}

// sumFamily totals a snapshot metric family: the bare series name or any
// labeled child ("name{label=...}").
func sumFamily(data map[string]any, name string) float64 {
	var total float64
	for k, v := range data {
		if k != name && !strings.HasPrefix(k, name+"{") {
			continue
		}
		if f, ok := v.(float64); ok {
			total += f
		}
	}
	return total
}

// numStr renders a JSON number compactly; non-numbers render as "?".
func numStr(v any) string {
	f, ok := v.(float64)
	if !ok {
		return "?"
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.2f", f), "0"), ".")
}

// watchURL normalizes a watch target: a bare host:port gets the scheme and
// the /events path; explicit URLs pass through.
func watchURL(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	if !strings.HasSuffix(addr, "/events") {
		addr = strings.TrimRight(addr, "/") + "/events"
	}
	return addr
}
