package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"dynunlock/internal/metrics"
	"dynunlock/internal/stream"
)

// cmdWatch follows a live run's /events feed (see internal/stream and
// internal/metrics.ServeBus), rendering each event as one terminal line.
// It is the headless sibling of the /live dashboard: the delta lines are a
// superset of the -progress line (they add encode vars/clauses), and the
// stream's terminal "result" event with scope "experiment" ends the watch
// with exit 0. With -job the terminal condition is the dynunlockd job's
// own lifecycle instead: "done" exits 0, "failed"/"evicted" exit 1 — the
// experiment result is rendered but does not end the watch, since the
// job's bundle only closes (and its state only settles) afterwards.
//
// Transient disconnects of an established stream — a dropped connection,
// a proxy timeout, a server blip — auto-reconnect with bounded exponential
// backoff, resuming from the last seen sequence number via the SSE
// Last-Event-ID header (the bus replays from its resume ring; a "gap"
// hello flags evicted events). The first connection must succeed: a
// refused or non-SSE endpoint is a configuration error, and a genuinely
// corrupt frame always exits 3 immediately — reconnecting cannot repair a
// stream that violates the wire grammar.
func cmdWatch(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("watch", flag.ContinueOnError)
	fs.SetOutput(stderr)
	retries := fs.Int("retries", 5, "max consecutive reconnect attempts after a transient disconnect")
	wait := fs.Duration("retry-wait", 500*time.Millisecond, "initial reconnect backoff (doubles per consecutive attempt)")
	job := fs.String("job", "", "follow one dynunlockd job: filter the feed to its envelopes and exit when it reaches a terminal state")
	if fs.Parse(args) != nil {
		return exitUsage
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: runs watch [-retries N] [-retry-wait D] [-job ID] <addr>  (e.g. 127.0.0.1:9090 or http://host:9090/events)")
		return exitUsage
	}
	w := &watcher{
		url:     watchURL(fs.Arg(0)),
		job:     *job,
		retries: *retries,
		wait:    *wait,
		stdout:  stdout,
		stderr:  stderr,
		sleep:   time.Sleep,
	}
	if w.job != "" {
		sep := "?"
		if strings.Contains(w.url, "?") {
			sep = "&"
		}
		w.url += sep + "job=" + w.job
	}
	return w.run()
}

// watcher is the reconnecting /events client: it tracks the last
// bus-assigned sequence number across connections and resumes from it.
type watcher struct {
	url     string
	job     string // when set, a terminal job lifecycle event ends the watch
	retries int
	wait    time.Duration
	lastSeq uint64
	stdout  io.Writer
	stderr  io.Writer
	sleep   func(time.Duration) // test seam
}

func (w *watcher) run() int {
	attempt := 0
	connectedOnce := false
	for {
		body, code := w.connect()
		if body != nil {
			connectedOnce = true
			code2, retryable, progressed := w.follow(body)
			body.Close()
			if !retryable {
				return code2
			}
			if progressed {
				// The stream moved before breaking: treat the blip as fresh
				// rather than part of a consecutive failure run.
				attempt = 0
			}
		} else if !connectedOnce {
			// Nothing to resume — the endpoint was never a live stream.
			return code
		}
		attempt++
		if attempt > w.retries {
			fmt.Fprintf(w.stderr, "runs: watch: giving up after %d reconnect attempt(s)\n", w.retries)
			return exitCorrupt
		}
		delay := w.wait << uint(attempt-1)
		fmt.Fprintf(w.stderr, "runs: watch: stream interrupted; reconnecting in %s (attempt %d/%d, resume after seq %d)\n",
			delay, attempt, w.retries, w.lastSeq)
		w.sleep(delay)
	}
}

// connect opens one SSE connection, resuming from lastSeq when set. A nil
// body means the connection failed; code carries the exit classification.
func (w *watcher) connect() (io.ReadCloser, int) {
	req, err := http.NewRequest(http.MethodGet, w.url, nil)
	if err != nil {
		fmt.Fprintf(w.stderr, "runs: watch %s: %v\n", w.url, err)
		return nil, exitCorrupt
	}
	if w.lastSeq > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(w.lastSeq, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		fmt.Fprintf(w.stderr, "runs: watch %s: %v\n", w.url, err)
		return nil, exitCorrupt
	}
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(w.stderr, "runs: watch %s: %s\n", w.url, resp.Status)
		resp.Body.Close()
		return nil, exitCorrupt
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		fmt.Fprintf(w.stderr, "runs: watch %s: not an event stream (Content-Type %q)\n", w.url, ct)
		resp.Body.Close()
		return nil, exitCorrupt
	}
	return resp.Body, exitOK
}

// follow renders one connection's events until the terminal result, a
// broken read, or a corrupt frame. retryable distinguishes transient
// breaks (EOF before the run finished, network read errors) from grammar
// violations; progressed reports whether any sequenced event arrived.
func (w *watcher) follow(r io.Reader) (code int, retryable, progressed bool) {
	dec := stream.NewDecoder(r)
	for {
		ev, err := dec.Next()
		if err == io.EOF {
			fmt.Fprintln(w.stderr, "runs: watch: stream ended before the run finished")
			return exitCorrupt, true, progressed
		}
		if err != nil {
			fmt.Fprintf(w.stderr, "runs: watch: %v\n", err)
			return exitCorrupt, !errors.Is(err, stream.ErrCorrupt), progressed
		}
		if ev.Seq > 0 {
			w.lastSeq = ev.Seq
			progressed = true
		}
		// The experiment result ends a plain watch; in -job mode the job
		// is not terminal until the daemon says so (its bundle closes and
		// the lifecycle event lands after the result), so keep following.
		if done := renderEvent(w.stdout, ev); done && w.job == "" {
			return exitOK, false, progressed
		}
		// Watching one job, its lifecycle is the terminal condition: done
		// exits 0, failed/evicted exit 1 (a job evicted mid-run will not
		// produce its experiment result event).
		if w.job != "" && ev.Type == stream.TypeJob && ev.Job == w.job {
			switch state, _ := ev.Data["state"].(string); state {
			case "done":
				return exitOK, false, progressed
			case "failed", "evicted":
				fmt.Fprintf(w.stderr, "runs: watch: job %s %s\n", w.job, state)
				return exitMismatch, false, progressed
			}
		}
	}
}

// watchStream renders a decoded event stream in one shot (no reconnect);
// split from the watcher so tests can drive it from a recorded stream
// without a server.
func watchStream(r io.Reader, stdout, stderr io.Writer) int {
	w := &watcher{stdout: stdout, stderr: stderr}
	code, _, _ := w.follow(r)
	return code
}

// renderEvent prints one line per event and reports whether the stream
// reached its terminal experiment result.
func renderEvent(w io.Writer, ev stream.Event) (done bool) {
	switch ev.Type {
	case stream.TypeHello:
		line := fmt.Sprintf("watch: connected proto=%v last_seq=%v", ev.Data["proto"], ev.Data["last_seq"])
		if gap, _ := ev.Data["gap"].(bool); gap {
			line += " (gap: ring evicted events before our resume point)"
		}
		fmt.Fprintln(w, line)
	case stream.TypeSnapshot:
		fmt.Fprintf(w, "snapshot: iters=%.0f conflicts=%.0f props=%.0f cycles=%.0f\n",
			sumFamily(ev.Data, metrics.MetricAttackDIPs),
			sumFamily(ev.Data, metrics.MetricSatConflicts),
			sumFamily(ev.Data, metrics.MetricSatPropagations),
			sumFamily(ev.Data, metrics.MetricOracleCycles))
	case stream.TypeDelta:
		fmt.Fprintln(w, deltaLine(ev.Data))
	case stream.TypeDIP:
		fmt.Fprintf(w, "dip: trial=%v iter=%v conflicts=%v solve_ms=%s\n",
			ev.Data["trial"], ev.Data["iteration"], ev.Data["conflicts"], numStr(ev.Data["solve_ms"]))
	case stream.TypeStage:
		fmt.Fprintf(w, "stage: trial=%v iter=%v difficulty=%s lbd=%s restarts=%v xor=%s solve_ms=%s\n",
			ev.Data["trial"], ev.Data["iteration"], numStr(ev.Data["difficulty"]),
			numStr(ev.Data["lbd_mean"]), ev.Data["restarts"], numStr(ev.Data["xor_share"]),
			numStr(ev.Data["solve_ms"]))
	case stream.TypeInsight:
		fmt.Fprintf(w, "insight: rank=%v/%v seeds=2^%v\n",
			ev.Data["rank"], ev.Data["rank_target"], ev.Data["seeds_log2"])
	case stream.TypeSpan:
		fmt.Fprintf(w, "span: %v %sms\n", ev.Data["span"], numStr(ev.Data["dur_ms"]))
	case stream.TypeJob:
		line := fmt.Sprintf("job: %v state=%v", ev.Data["job"], ev.Data["state"])
		if rf, ok := ev.Data["resumed_from"].(string); ok && rf != "" {
			line += " resumed_from=" + rf
		}
		if msg, ok := ev.Data["error"].(string); ok && msg != "" {
			line += " error=" + strconv.Quote(msg)
		}
		fmt.Fprintln(w, line)
	case stream.TypeResult:
		scope, _ := ev.Data["scope"].(string)
		if scope == "experiment" {
			fmt.Fprintf(w, "result: experiment done trials=%v succeeded=%v stopped=%v\n",
				ev.Data["trials_run"], ev.Data["succeeded"], ev.Data["stopped"])
			return true
		}
		fmt.Fprintf(w, "result: trial done iterations=%v candidates=%v converged=%v verified=%v\n",
			ev.Data["iterations"], ev.Data["candidates"], ev.Data["converged"], ev.Data["verified"])
	}
	return false
}

// deltaLine is the watch rendering of one periodic delta: a superset of
// the -progress stderr line that additionally shows encode growth.
func deltaLine(d map[string]any) string {
	var b strings.Builder
	b.WriteString("progress:")
	field := func(label, key, format string) {
		if v, ok := d[key].(float64); ok {
			fmt.Fprintf(&b, " "+label+"="+format, v)
		}
	}
	field("iters", "iterations", "%.0f")
	field("conflicts", "conflicts", "%.0f")
	field("conf/s", "conflicts_per_s", "%.0f")
	field("props", "propagations", "%.0f")
	field("props/s", "props_per_s", "%.0f")
	field("learnt", "learnt_db", "%.0f")
	field("cycles", "oracle_cycles", "%.0f")
	field("vars", "encode_vars", "%.0f")
	field("clauses", "encode_clauses", "%.0f")
	if p50, ok := d["solve_p50_s"].(float64); ok {
		p95, _ := d["solve_p95_s"].(float64)
		p99, _ := d["solve_p99_s"].(float64)
		fmt.Fprintf(&b, " solve_p50=%s p95=%s p99=%s",
			time.Duration(p50*float64(time.Second)).Round(time.Microsecond),
			time.Duration(p95*float64(time.Second)).Round(time.Microsecond),
			time.Duration(p99*float64(time.Second)).Round(time.Microsecond))
	}
	if rank, ok := d["rank"].(float64); ok {
		target, _ := d["rank_target"].(float64)
		fmt.Fprintf(&b, " rank=%.0f/%.0f", rank, target)
	}
	field("seeds", "seeds_log2", "2^%.0f")
	if eta, ok := d["eta_s"].(float64); ok {
		fmt.Fprintf(&b, " eta=%s", (time.Duration(eta * float64(time.Second))).Round(time.Second))
	}
	return b.String()
}

// sumFamily totals a snapshot metric family: the bare series name or any
// labeled child ("name{label=...}").
func sumFamily(data map[string]any, name string) float64 {
	var total float64
	for k, v := range data {
		if k != name && !strings.HasPrefix(k, name+"{") {
			continue
		}
		if f, ok := v.(float64); ok {
			total += f
		}
	}
	return total
}

// numStr renders a JSON number compactly; non-numbers render as "?".
func numStr(v any) string {
	f, ok := v.(float64)
	if !ok {
		return "?"
	}
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.2f", f), "0"), ".")
}

// watchURL normalizes a watch target: a bare host:port gets the scheme and
// the /events path; explicit URLs pass through.
func watchURL(addr string) string {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	if !strings.HasSuffix(addr, "/events") {
		addr = strings.TrimRight(addr, "/") + "/events"
	}
	return addr
}
