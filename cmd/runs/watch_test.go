package main

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dynunlock/internal/metrics"
	"dynunlock/internal/stream"
)

func TestWatchFollowsLiveRunToCompletion(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter(metrics.MetricAttackDIPs, "engine", "sequential").Add(4)
	bus := stream.NewBus()
	srv, err := metrics.ServeBus("127.0.0.1:0", reg, bus)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Publish the run once the watcher has attached; Enabled flips when
	// its subscription lands.
	go func() {
		for !bus.Enabled() {
			time.Sleep(time.Millisecond)
		}
		bus.Publish(stream.TypeDelta, map[string]any{
			"iterations": 4.0, "conflicts": 120.0, "encode_vars": 900.0, "encode_clauses": 3100.0,
		})
		bus.Publish(stream.TypeDIP, map[string]any{
			"trial": 0, "iteration": 5, "conflicts": 17, "solve_ms": 1.25,
		})
		bus.Publish(stream.TypeInsight, map[string]any{
			"rank": 6.0, "rank_target": 8.0, "seeds_log2": 2.0,
		})
		bus.Publish(stream.TypeResult, map[string]any{
			"scope": "trial", "iterations": 5, "candidates": 1, "converged": true, "verified": true,
		})
		bus.Publish(stream.TypeResult, map[string]any{
			"scope": "experiment", "trials_run": 1, "succeeded": true, "stopped": false,
		})
	}()

	code, out, errOut := runCLI(t, "watch", srv.Addr())
	if code != exitOK {
		t.Fatalf("watch exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	for _, want := range []string{
		"watch: connected proto=1",
		"snapshot: iters=4",
		"vars=900 clauses=3100", // the superset over the -progress line
		"dip: trial=0 iter=5",
		"insight: rank=6/8 seeds=2^2",
		"result: trial done iterations=5 candidates=1 converged=true verified=true",
		"result: experiment done trials=1 succeeded=true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("watch output missing %q:\n%s", want, out)
		}
	}
}

func TestWatchExitCodes(t *testing.T) {
	// Usage: wrong arg count.
	if code, _, _ := runCLI(t, "watch"); code != exitUsage {
		t.Errorf("watch with no addr = %d, want %d", code, exitUsage)
	}
	// Connection refused: nothing listens on a fresh port.
	if code, _, errOut := runCLI(t, "watch", "127.0.0.1:1"); code != exitCorrupt {
		t.Errorf("watch refused connection = %d, want %d (%s)", code, exitCorrupt, errOut)
	}
	// A non-SSE endpoint (here /metrics) is not a watchable stream.
	srv, err := metrics.Serve("127.0.0.1:0", metrics.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if code, _, _ := runCLI(t, "watch", "http://"+srv.Addr()+"/metrics"); code != exitCorrupt {
		t.Errorf("watch on /metrics = %d, want %d", code, exitCorrupt)
	}
}

func TestWatchStreamCorruptAndTruncated(t *testing.T) {
	var out, errOut bytes.Buffer
	corrupt := "id: borked\nevent: delta\ndata: {\"seq\":1,\"type\":\"delta\",\"data\":{}}\n\n"
	if code := watchStream(strings.NewReader(corrupt), &out, &errOut); code != exitCorrupt {
		t.Errorf("corrupt frame exit = %d, want %d", code, exitCorrupt)
	}
	// A well-formed stream that ends before the experiment result is a
	// truncated run, not a success.
	frames := "event: hello\ndata: {\"type\":\"hello\",\"data\":{\"proto\":1}}\n\n"
	errOut.Reset()
	if code := watchStream(strings.NewReader(frames), &out, &errOut); code != exitCorrupt {
		t.Errorf("truncated stream exit = %d, want %d", code, exitCorrupt)
	}
	if !strings.Contains(errOut.String(), "ended before the run finished") {
		t.Errorf("truncation not reported: %s", errOut.String())
	}
}

func TestWatchURLNormalization(t *testing.T) {
	for in, want := range map[string]string{
		"127.0.0.1:9090":          "http://127.0.0.1:9090/events",
		"http://host:9090":        "http://host:9090/events",
		"http://host:9090/":       "http://host:9090/events",
		"http://host:9090/events": "http://host:9090/events",
		"localhost:1234":          "http://localhost:1234/events",
	} {
		if got := watchURL(in); got != want {
			t.Errorf("watchURL(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWatchJobFollowsOneJobToTerminalState drives `watch -job`: the feed
// filter keeps the other job's envelopes out, job lifecycle frames render
// as lines, and the watched job's terminal state ends the watch (done →
// exit 0).
func TestWatchJobFollowsOneJobToTerminalState(t *testing.T) {
	reg := metrics.NewRegistry()
	bus := stream.NewBus()
	srv, err := metrics.ServeBus("127.0.0.1:0", reg, bus)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	go func() {
		for !bus.Enabled() {
			time.Sleep(time.Millisecond)
		}
		j1, j2 := bus.WithJob("job-0001"), bus.WithJob("job-0002")
		j1.Publish(stream.TypeJob, map[string]any{"job": "job-0001", "state": "running"})
		j2.Publish(stream.TypeJob, map[string]any{"job": "job-0002", "state": "running"})
		j2.Publish(stream.TypeDIP, map[string]any{"trial": 0, "iteration": 1})
		j1.Publish(stream.TypeJob, map[string]any{"job": "job-0001", "state": "done"})
		j2.Publish(stream.TypeJob, map[string]any{"job": "job-0002", "state": "failed", "error": "boom"})
	}()

	code, out, errOut := runCLI(t, "watch", "-job", "job-0001", srv.Addr())
	if code != exitOK {
		t.Fatalf("watch -job exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	for _, want := range []string{
		"job: job-0001 state=running",
		"job: job-0001 state=done",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("watch output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "job-0002") {
		t.Errorf("watch leaked the other job's events:\n%s", out)
	}
}

// TestWatchJobTerminalFailureExitsMismatch: a watched job ending failed
// or evicted exits 1 — it will never emit its experiment result event.
func TestWatchJobTerminalFailureExitsMismatch(t *testing.T) {
	reg := metrics.NewRegistry()
	bus := stream.NewBus()
	srv, err := metrics.ServeBus("127.0.0.1:0", reg, bus)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	go func() {
		for !bus.Enabled() {
			time.Sleep(time.Millisecond)
		}
		j := bus.WithJob("job-0009")
		j.Publish(stream.TypeJob, map[string]any{"job": "job-0009", "state": "running"})
		j.Publish(stream.TypeJob, map[string]any{"job": "job-0009", "state": "evicted", "error": "cancelled mid-run"})
	}()

	code, out, errOut := runCLI(t, "watch", "-job", "job-0009", srv.Addr())
	if code != exitMismatch {
		t.Fatalf("watch -job (evicted) exit = %d, want %d\nstdout:\n%s\nstderr:\n%s",
			code, exitMismatch, out, errOut)
	}
	if !strings.Contains(out, `state=evicted error="cancelled mid-run"`) {
		t.Errorf("eviction line missing from output:\n%s", out)
	}
}
