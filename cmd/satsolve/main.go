// Command satsolve runs the built-in CDCL solver on a DIMACS CNF file and
// prints the verdict in SAT-competition output format (s/v lines). It is a
// standalone exerciser for internal/sat — the solver substrate the whole
// attack stands on — and doubles as a consumer for the per-iteration CNF
// dumps that satattack.Options.DumpCNF produces.
//
// Input may contain cryptominisat-style XOR clauses ("x 1 -2 3 0" asserts
// x1 ⊕ ¬x2 ⊕ x3 = 1); they are solved by the native GF(2) propagator
// rather than a CNF expansion.
//
// Usage:
//
//	satsolve formula.cnf
//	satsolve -budget 100000 formula.cnf     # bounded: may print UNKNOWN
//	benchgen ... | scanlock ... ; satsolve -stats dump_iter3.cnf
package main

import (
	"flag"
	"fmt"
	"os"

	"dynunlock/internal/cnf"
	"dynunlock/internal/sat"
)

func main() {
	var (
		budget = flag.Int64("budget", 0, "conflict budget (0 = unlimited)")
		stats  = flag.Bool("stats", false, "print solver statistics to stderr")
		model  = flag.Bool("model", true, "print the model (v lines) on SAT")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: satsolve [-budget N] [-stats] file.cnf")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatalf("%v", err)
	}
	formula, err := cnf.ParseDimacs(f)
	f.Close()
	if err != nil {
		fatalf("%v", err)
	}

	s := sat.New()
	s.ConflictBudget = *budget
	s.AddFormula(formula)
	st := s.Solve()
	if *stats {
		fmt.Fprintf(os.Stderr, "c vars=%d clauses=%d xors=%d conflicts=%d decisions=%d propagations=%d restarts=%d xor-propagations=%d xor-conflicts=%d\n",
			formula.NumVars, len(formula.Clauses), len(formula.Xors), s.Stats.Conflicts,
			s.Stats.Decisions, s.Stats.Propagations, s.Stats.Restarts,
			s.Stats.XorPropagations, s.Stats.XorConflicts)
	}
	switch st {
	case sat.Sat:
		fmt.Println("s SATISFIABLE")
		if *model {
			printModel(s, formula.NumVars)
		}
		// Sanity: the model must satisfy the formula we parsed.
		if !formula.Eval(s.Model()[:formula.NumVars]) {
			fatalf("internal error: model does not satisfy formula")
		}
	case sat.Unsat:
		fmt.Println("s UNSATISFIABLE")
		os.Exit(20)
	default:
		fmt.Println("s UNKNOWN")
		os.Exit(30)
	}
	os.Exit(10)
}

func printModel(s *sat.Solver, numVars int) {
	line := "v"
	for v := 0; v < numVars; v++ {
		lit := v + 1
		if !s.Value(v) {
			lit = -lit
		}
		tok := fmt.Sprintf(" %d", lit)
		if len(line)+len(tok) > 76 {
			fmt.Println(line)
			line = "v"
		}
		line += tok
	}
	fmt.Println(line + " 0")
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "satsolve: "+format+"\n", args...)
	os.Exit(2)
}
