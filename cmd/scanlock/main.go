// Command scanlock applies scan locking to a ".bench" netlist and reports
// the resulting obfuscation structure. With -model it also emits the
// attacker's combinational model (Fig. 4 of the paper) as a ".bench" file
// whose key inputs are the LFSR seed bits.
//
// Usage:
//
//	scanlock -in circuit.bench -keybits 128 -policy percycle
//	scanlock -in circuit.bench -keybits 8 -model model.bench
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dynunlock/internal/core"
	"dynunlock/internal/lock"
	"dynunlock/internal/netlist"
	"dynunlock/internal/scan"
)

func main() {
	var (
		in        = flag.String("in", "", "input .bench netlist (required)")
		keyBits   = flag.Int("keybits", 128, "key register width")
		policyStr = flag.String("policy", "percycle", "static | perpattern | percycle")
		period    = flag.Int("period", 1, "pattern period for perpattern")
		placement = flag.Int64("placement", 0, "random key-gate placement seed (0 = evenly spread)")
		modelOut  = flag.String("model", "", "write the DynUnlock combinational model to this .bench file")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*in)
	if err != nil {
		fatalf("%v", err)
	}
	n, err := netlist.ParseBench(f, strings.TrimSuffix(*in, ".bench"))
	f.Close()
	if err != nil {
		fatalf("parse: %v", err)
	}

	var policy scan.Policy
	switch strings.ToLower(*policyStr) {
	case "static":
		policy = scan.Static
	case "perpattern":
		policy = scan.PerPattern
	case "percycle":
		policy = scan.PerCycle
	default:
		fatalf("unknown policy %q", *policyStr)
	}

	d, err := lock.Lock(n, lock.Config{
		KeyBits: *keyBits, Policy: policy, Period: *period, PlacementSeed: *placement,
	})
	if err != nil {
		fatalf("lock: %v", err)
	}
	fmt.Println(d.Describe())
	fmt.Printf("LFSR polynomial: width %d, taps %v\n", d.Config.Poly.N, d.Config.Poly.Taps)
	fmt.Printf("key gates (link <- key bit):")
	for i, g := range d.Chain.Gates {
		if i%8 == 0 {
			fmt.Printf("\n  ")
		}
		fmt.Printf("%4d<-k%-4d", g.Link, g.KeyBit)
	}
	fmt.Println()

	if *modelOut != "" {
		m, err := core.BuildModel(d, 0)
		if err != nil {
			fatalf("model: %v", err)
		}
		out, err := os.Create(*modelOut)
		if err != nil {
			fatalf("%v", err)
		}
		if err := m.Netlist.WriteBench(out); err != nil {
			fatalf("%v", err)
		}
		out.Close()
		fmt.Printf("combinational model written to %s (%v); rank[A;B]=%d, predicted seed candidates=2^%d\n",
			*modelOut, m.Netlist.Stats(), m.Rank(), m.PredictedCandidatesLog2())
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "scanlock: "+format+"\n", args...)
	os.Exit(2)
}
