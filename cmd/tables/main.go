// Command tables regenerates the paper's Tables I, II, and III end to end:
// it locks each benchmark, fabricates chips with secret seeds, runs the
// attack, and prints rows in the paper's format.
//
// Independent table conditions (benchmark × keyBits × policy) run on a
// worker pool sized by -parallel (default: DYNUNLOCK_PARALLEL or
// GOMAXPROCS), so regeneration scales with cores; -parallel 1 reproduces
// the sequential reference run bit for bit. Within a trial, -portfolio N
// races N diversified CDCL instances per SAT call.
//
// Paper-scale runs (-scale 1 -trials 10) take a while on the from-scratch
// CDCL solver; -scale 8 reproduces the qualitative shape in seconds.
//
// Usage:
//
//	tables -table 2 -scale 8 -trials 3
//	tables -table 3 -scale 8 -parallel 4 -json table3.json
//	tables -table 1
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"time"

	"dynunlock"
	"dynunlock/internal/bench"
	"dynunlock/internal/core"
	"dynunlock/internal/flight"
	"dynunlock/internal/metrics"
	"dynunlock/internal/oracle"
	"dynunlock/internal/report"
	"dynunlock/internal/scansat"
	"dynunlock/internal/stream"
	"dynunlock/internal/trace"
)

func main() {
	var (
		table     = flag.Int("table", 2, "which table to regenerate: 1, 2, or 3")
		scale     = flag.Int("scale", 1, "divide circuit sizes by this factor")
		trials    = flag.Int("trials", 10, "secret seeds per benchmark (paper: 10)")
		kbits     = flag.Int("keybits", 128, "key width for Table II (paper: 128)")
		parallel  = flag.Int("parallel", 0, "worker pool size for table conditions (0 = DYNUNLOCK_PARALLEL or GOMAXPROCS)")
		portfolio = flag.Int("portfolio", 1, "diversified solver instances racing each SAT call")
		timeout   = flag.Duration("timeout", 0, "wall-clock budget shared by the whole table sweep (0 = unlimited); completed conditions are still rendered")
		maxIters  = flag.Int("max-iters", 0, "bound each trial's DIP loop (0 = unlimited)")
		nativeXor = flag.Bool("native-xor", true, "encode XOR gates as native GF(2) solver rows instead of Tseitin CNF")
		aigFlag   = flag.Bool("aig", true, "encode miter copies from a shared structurally-hashed AIG built once per attack")
		simplify  = flag.Bool("simplify", true, "run level-0 solver inprocessing between DIP iterations")
		analytic  = flag.Bool("analytic", false, "feed certified insight constraints back into the solver and short-circuit at full key rank")
		tracePath = flag.String("trace", "", "write a JSONL event trace to this path")
		recordDir = flag.String("record", "", "write one flight-recorder bundle per table condition under this directory (tables 2 and 3)")
		profile   = flag.Bool("profile", false, "capture CPU and heap pprof profiles into each condition's bundle (requires -record and -parallel 1)")
		jsonPath  = flag.String("json", "", "also write machine-readable results to this path")
		v         = flag.Bool("v", false, "log per-trial progress to stderr")

		metricsAddr = flag.String("metrics-addr", "", "serve /metrics, /debug/vars, and /debug/pprof on this address while running")
		progress    metrics.ProgressFlag
	)
	flag.Var(&progress, "progress", "print periodic progress snapshots to stderr (-progress=500ms for cadence, -progress=json for stream-schema delta lines)")
	flag.Parse()
	var logw io.Writer
	if *v {
		logw = os.Stderr
	}
	workers := *parallel
	if workers <= 0 {
		workers = dynunlock.ParallelDefault()
	}
	if logw != nil && workers > 1 {
		// Interleaved per-trial logs from concurrent conditions are useless.
		fmt.Fprintln(os.Stderr, "tables: -v with -parallel > 1 interleaves condition logs")
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// The event bus backs /events and /live; it only exists alongside a
	// metrics server, and an idle bus is one atomic load per publish point.
	var bus *stream.Bus
	if *metricsAddr != "" {
		bus = stream.NewBus()
	}
	var sinks []trace.Sink
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		sinks = append(sinks, trace.NewJSONLSink(f))
	}
	sinks = append(sinks, trace.NewStreamSink(bus)) // nil bus drops to nil sink
	ctx = trace.With(ctx, trace.Multi(sinks...))

	// Metrics are opt-in; the sweep closures add a per-benchmark label so
	// every downstream series is tagged with its table condition. Recording
	// forces a registry so each bundle's metrics.json is populated.
	var reg *metrics.Registry
	if *metricsAddr != "" || progress.Interval > 0 || *recordDir != "" {
		reg = metrics.NewRegistry()
		reg.SetBuildInfo(buildInfoLabels()...)
		ctx = metrics.With(ctx, reg)
	}
	if *metricsAddr != "" {
		srv, err := metrics.ServeBus(*metricsAddr, reg, bus)
		if err != nil {
			fatalf("%v", err)
		}
		// Drain in-flight scrapes on exit so a Prometheus poll racing the
		// end of the run still gets its sample; SSE streams flush their
		// buffered events plus one terminal snapshot before closing.
		defer srv.Shutdown(2 * time.Second)
		fmt.Fprintf(os.Stderr, "tables: serving metrics on http://%s/metrics (live: /events, /live)\n", srv.Addr())
	}
	// With an event bus the periodic sampler always runs — it is the
	// feed's only "delta" source — writing to stderr only when -progress
	// asked for it.
	if progress.Interval > 0 || bus != nil {
		interval := progress.Interval
		if interval <= 0 {
			interval = metrics.DefaultProgressInterval
		}
		w := io.Writer(io.Discard)
		if progress.Interval > 0 {
			w = os.Stderr
		}
		p := metrics.NewProgress(reg, interval, w, trace.From(ctx))
		p.SetJSON(progress.JSON)
		p.AttachStream(bus)
		p.Start()
		defer p.Stop()
	}

	if *recordDir != "" && *table == 1 {
		// Table 1 rows are one-shot attack demos, not experiments; there is
		// no per-trial result to bundle.
		fmt.Fprintln(os.Stderr, "tables: -record applies to tables 2 and 3 only; ignoring for table 1")
	}
	if *profile {
		// The runtime allows one CPU profile per process, so per-condition
		// capture needs the sequential pool.
		if *recordDir == "" {
			fatalf("-profile requires -record: profiles are stored inside the bundles")
		}
		if workers != 1 {
			fatalf("-profile requires -parallel 1 (one CPU profile per process)")
		}
	}
	start := time.Now()
	var rows []condRow
	var err error
	variant := attackVariant{nativeXor: *nativeXor, aig: *aigFlag, simplify: *simplify, analytic: *analytic}
	switch *table {
	case 1:
		rows, err = table1(ctx, *scale, *portfolio, workers, variant, logw)
	case 2:
		rows, err = table2(ctx, *scale, *trials, *kbits, *portfolio, *maxIters, workers, *recordDir, *profile, variant, reg, bus, logw)
	case 3:
		rows, err = table3(ctx, *scale, *trials, *portfolio, *maxIters, workers, *recordDir, *profile, variant, reg, bus, logw)
	default:
		fmt.Fprintf(os.Stderr, "tables: no table %d in the paper\n", *table)
		os.Exit(2)
	}
	stopped := err != nil && (errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled))
	if err != nil && !stopped {
		fatalf("%v", err)
	}
	if stopped {
		fmt.Printf("\nstopped early (%v): %d condition(s) completed before the bound\n", err, len(rows))
	}
	if *recordDir != "" {
		fmt.Fprintf(os.Stderr, "tables: recorded bundles under %s (attribution: runs explain <bundle>, trends: runs trends %s)\n",
			*recordDir, *recordDir)
	}
	if *jsonPath != "" {
		rep := jsonReport{
			Table:          *table,
			Scale:          *scale,
			Trials:         *trials,
			Parallel:       workers,
			Portfolio:      *portfolio,
			GOMAXPROCS:     runtime.GOMAXPROCS(0),
			NumCPU:         runtime.NumCPU(),
			ElapsedSeconds: time.Since(start).Seconds(),
			Conditions:     rows,
		}
		if err := writeJSON(*jsonPath, &rep); err != nil {
			fatalf("%v", err)
		}
	}
}

// condRow is one table condition in machine-readable form (the -json
// output; BENCH_*.json perf trajectories are populated from these).
type condRow struct {
	Table         string  `json:"table"`
	Benchmark     string  `json:"benchmark"`
	Suite         string  `json:"suite,omitempty"`
	Defense       string  `json:"defense,omitempty"`
	Attack        string  `json:"attack,omitempty"`
	KeyBits       int     `json:"keyBits"`
	Policy        string  `json:"policy"`
	ScanFlops     int     `json:"scanFlops,omitempty"`
	Trials        int     `json:"trials"`
	AvgCandidates float64 `json:"avgCandidates"`
	AvgIterations float64 `json:"avgIterations"`
	AvgQueries    float64 `json:"avgQueries,omitempty"`
	AvgSeconds    float64 `json:"avgSeconds"`
	Broken        bool    `json:"broken"`
	Stopped       bool    `json:"stopped,omitempty"`
	StopReason    string  `json:"stopReason,omitempty"`
	Conflicts     uint64  `json:"conflicts"`
	Decisions     uint64  `json:"decisions"`
	Propagations  uint64  `json:"propagations"`
	ElapsedSecs   float64 `json:"elapsedSeconds"`
}

type jsonReport struct {
	Table          int       `json:"table"`
	Scale          int       `json:"scale"`
	Trials         int       `json:"trials"`
	Parallel       int       `json:"parallel"`
	Portfolio      int       `json:"portfolio"`
	GOMAXPROCS     int       `json:"gomaxprocs"`
	NumCPU         int       `json:"numCPU"`
	ElapsedSeconds float64   `json:"elapsedSeconds"`
	Conditions     []condRow `json:"conditions"`
}

func writeJSON(path string, rep *jsonReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// attackVariant carries the solver-encoding selection (-native-xor, -aig,
// -simplify, -analytic) into every table condition.
type attackVariant struct {
	nativeXor bool
	aig       bool
	simplify  bool
	analytic  bool
}

func policyName(p dynunlock.Policy) string {
	switch p {
	case dynunlock.Static:
		return "static"
	case dynunlock.PerPattern:
		return "per-pattern"
	default:
		return "per-cycle"
	}
}

// rowFromExperiment converts an experiment into the machine-readable row.
func rowFromExperiment(table string, res *dynunlock.ExperimentResult, elapsed time.Duration) condRow {
	var queries float64
	var dec, prop uint64
	for _, t := range res.Trials {
		queries += float64(t.Queries)
		dec += t.SolverStats.Decisions
		prop += t.SolverStats.Propagations
	}
	n := float64(len(res.Trials))
	return condRow{
		Table:         table,
		Benchmark:     res.Entry.Name,
		Suite:         res.Entry.Suite,
		KeyBits:       res.Config.KeyBits,
		Policy:        policyName(res.Config.Policy),
		ScanFlops:     res.Entry.FFs,
		Trials:        len(res.Trials),
		AvgCandidates: res.AvgCandidates(),
		AvgIterations: res.AvgIterations(),
		AvgQueries:    queries / n,
		AvgSeconds:    res.AvgSeconds(),
		Broken:        res.AllSucceeded(),
		Stopped:       res.Stopped,
		StopReason:    string(res.StopReason),
		Conflicts:     res.TotalConflicts(),
		Decisions:     dec,
		Propagations:  prop,
		ElapsedSecs:   elapsed.Seconds(),
	}
}

// table1 reproduces the evolution table: each defense family attacked by
// the technique that broke it, demonstrated live on one mid-size circuit.
func table1(ctx context.Context, scale, portfolio, workers int, variant attackVariant, logw io.Writer) ([]condRow, error) {
	type cond struct {
		defense, obfType, attackName string
		policy                       dynunlock.Policy
		attack                       func(ctx context.Context, chip *oracle.Chip) (broken bool, cands, iters int, err error)
	}

	scanSAT := func(ctx context.Context, chip *oracle.Chip) (bool, int, int, error) {
		res, err := scansat.AttackCtx(ctx, chip, scansat.Options{EnumerateLimit: 256})
		if err != nil {
			return false, 0, 0, err
		}
		ok := false
		for _, k := range res.KeyCandidates {
			if k.Equal(chip.SecretSeed()) {
				ok = true
			}
		}
		return ok && res.Converged, len(res.KeyCandidates), res.Iterations, nil
	}
	dynUnlock := func(ctx context.Context, chip *oracle.Chip) (bool, int, int, error) {
		res, err := core.AttackCtx(ctx, chip, core.Options{
			Portfolio: portfolio, EnumerateLimit: 256, NativeXor: variant.nativeXor,
			AIG: variant.aig, Simplify: variant.simplify, Log: logw})
		if err != nil {
			return false, 0, 0, err
		}
		return res.Converged && core.ContainsSeed(res.SeedCandidates, chip.SecretSeed()),
			len(res.SeedCandidates), res.Iterations, nil
	}

	conds := []cond{
		{"EFF [10]", "Static", "ScanSAT [14]", dynunlock.Static, scanSAT},
		{"DOS [12] (p=1)", "Dynamic", "DynUnlock (this work)", dynunlock.PerPattern, dynUnlock},
		{"EFF-Dyn [13]", "Dynamic", "DynUnlock (this work)", dynunlock.PerCycle, dynUnlock},
	}

	type row struct {
		c            cond
		done         bool
		broken       bool
		cands, iters int
		keyBits      int
		elapsed      time.Duration
	}
	rows, err := bench.SweepCtx(ctx, workers, conds, func(ctx context.Context, i int, c cond) (row, error) {
		ctx = metrics.WithLabels(ctx, "benchmark", "s5378", "policy", policyName(c.policy))
		condStart := time.Now()
		// Key width scales with the circuit so the mask rank can cover the
		// key space (the paper's regime: k <= 2n).
		d, err := dynunlock.LockBenchmark("s5378", scaleKey(64, max(scale, 8)), c.policy, max(scale, 8))
		if err != nil {
			return row{}, err
		}
		chip, err := dynunlock.Fabricate(d, 1)
		if err != nil {
			return row{}, err
		}
		broken, cands, iters, err := c.attack(ctx, chip)
		if err != nil {
			return row{}, err
		}
		return row{c: c, done: true, broken: broken, cands: cands, iters: iters,
			keyBits: d.Config.KeyBits, elapsed: time.Since(condStart)}, nil
	})

	tb := report.New("Table I: Evolution of scan locking (each defense attacked live)",
		"Defense", "Obfuscation type", "Attack", "Broken", "Candidates", "Iterations")
	var out []condRow
	for _, r := range rows {
		if !r.done { // never ran: the sweep's deadline fired first
			continue
		}
		tb.AddRow(r.c.defense, r.c.obfType, r.c.attackName, r.broken, r.cands, r.iters)
		out = append(out, condRow{
			Table:         "I",
			Benchmark:     "s5378",
			Defense:       r.c.defense,
			Attack:        r.c.attackName,
			KeyBits:       r.keyBits,
			Policy:        policyName(r.c.policy),
			Trials:        1,
			AvgCandidates: float64(r.cands),
			AvgIterations: float64(r.iters),
			AvgSeconds:    r.elapsed.Seconds(),
			Broken:        r.broken,
			ElapsedSecs:   r.elapsed.Seconds(),
		})
	}
	tb.Render(os.Stdout)
	return out, err
}

// recordCondition opens a per-condition flight-recorder bundle under dir,
// attaches it to cfg, and layers the bundle's trace sink over any sink ctx
// already carries (so -trace and -record coexist). The returned finish
// func writes the terminal metrics snapshot and closes the bundle; call it
// after the experiment.
func recordCondition(ctx context.Context, dir, name string, profile bool, reg *metrics.Registry, cfg *dynunlock.ExperimentConfig) (context.Context, func() error, error) {
	rec, err := flight.Create(filepath.Join(dir, name))
	if err != nil {
		return ctx, nil, err
	}
	rec.Tool = "tables"
	cfg.Recorder = rec
	if profile {
		if err := rec.StartProfiles(); err != nil {
			rec.Close()
			return ctx, nil, err
		}
	}
	sinks := []trace.Sink{rec.TraceSink()}
	if parent := trace.From(ctx).Sink(); parent != nil {
		sinks = append(sinks, parent)
	}
	ctx = trace.With(ctx, trace.Multi(sinks...))
	finish := func() error {
		if err := rec.WriteMetrics(reg); err != nil {
			rec.Close()
			return err
		}
		return rec.Close()
	}
	return ctx, finish, nil
}

// table2 reproduces Table II: ten benchmarks, 128-bit dynamic keys.
func table2(ctx context.Context, scale, trials, keyBits, portfolio, maxIters, workers int, recordDir string, profile bool, variant attackVariant, reg *metrics.Registry, bus *stream.Bus, logw io.Writer) ([]condRow, error) {
	title := fmt.Sprintf("Table II: scan locked circuits with %d-bit dynamic keys (EFF-Dyn, %d trial(s)", keyBits, trials)
	if scale > 1 {
		title += fmt.Sprintf(", circuits and keys scaled 1/%d", scale)
	}
	title += ")"
	type outcome struct {
		res     *dynunlock.ExperimentResult
		elapsed time.Duration
	}
	outs, err := bench.SweepCtx(ctx, workers, bench.Table2, func(ctx context.Context, i int, e bench.Entry) (outcome, error) {
		ctx = metrics.WithLabels(ctx, "benchmark", e.Name)
		condStart := time.Now()
		cfg := dynunlock.ExperimentConfig{
			Benchmark:     e.Name,
			KeyBits:       scaleKey(keyBits, scale),
			Policy:        dynunlock.PerCycle,
			Scale:         scale,
			Trials:        trials,
			Portfolio:     portfolio,
			MaxIterations: maxIters,
			SeedBase:      100,
			NativeXor:     variant.nativeXor,
			AIG:           variant.aig,
			Simplify:      variant.simplify,
			Analytic:      variant.analytic,
			Stream:        bus,
			Log:           logw,
		}
		var finish func() error
		if recordDir != "" {
			var err error
			ctx, finish, err = recordCondition(ctx, recordDir, "table2_"+e.Name, profile, reg, &cfg)
			if err != nil {
				return outcome{}, err
			}
		}
		res, err := dynunlock.RunExperimentCtx(ctx, cfg)
		if finish != nil {
			if ferr := finish(); ferr != nil && err == nil {
				err = ferr
			}
		}
		if err != nil {
			return outcome{}, err
		}
		return outcome{res: res, elapsed: time.Since(condStart)}, nil
	})

	tb := report.New(title,
		"Benchmark", "# Scan flops", "# Key bits", "# Seed candidates", "# Iterations", "Execution time (secs)", "Broken")
	var rows []condRow
	for _, o := range outs {
		res := o.res
		if res == nil { // never ran: the sweep's deadline fired first
			continue
		}
		tb.AddRow(res.Entry.Name, res.Entry.FFs, res.Config.KeyBits,
			res.AvgCandidates(), res.AvgIterations(), res.AvgSeconds(), res.AllSucceeded())
		rows = append(rows, rowFromExperiment("II", res, o.elapsed))
	}
	tb.Render(os.Stdout)
	return rows, err
}

// table3 reproduces Table III: key-size sweep on the three largest
// benchmarks.
func table3(ctx context.Context, scale, trials, portfolio, maxIters, workers int, recordDir string, profile bool, variant attackVariant, reg *metrics.Registry, bus *stream.Bus, logw io.Writer) ([]condRow, error) {
	benches := []string{"s38584", "s38417", "s35932"}
	title := "Table III: larger keys on the three largest benchmarks"
	if scale > 1 {
		title += fmt.Sprintf(" (circuits scaled 1/%d)", scale)
	}
	type cond struct {
		kb   int
		name string
	}
	var conds []cond
	for kb := 144; kb <= 368; kb += 16 {
		for _, name := range benches {
			conds = append(conds, cond{kb, name})
		}
	}
	type outcome struct {
		res     *dynunlock.ExperimentResult
		elapsed time.Duration
	}
	outs, err := bench.SweepCtx(ctx, workers, conds, func(ctx context.Context, i int, c cond) (outcome, error) {
		ctx = metrics.WithLabels(ctx, "benchmark", c.name)
		condStart := time.Now()
		cfg := dynunlock.ExperimentConfig{
			Benchmark:     c.name,
			KeyBits:       scaleKey(c.kb, scale),
			Policy:        dynunlock.PerCycle,
			Scale:         scale,
			Trials:        trials,
			Portfolio:     portfolio,
			MaxIterations: maxIters,
			SeedBase:      int64(c.kb),
			NativeXor:     variant.nativeXor,
			AIG:           variant.aig,
			Simplify:      variant.simplify,
			Analytic:      variant.analytic,
			Stream:        bus,
			Log:           logw,
		}
		var finish func() error
		if recordDir != "" {
			var err error
			ctx, finish, err = recordCondition(ctx, recordDir, fmt.Sprintf("table3_%s_k%d", c.name, c.kb), profile, reg, &cfg)
			if err != nil {
				return outcome{}, err
			}
		}
		res, err := dynunlock.RunExperimentCtx(ctx, cfg)
		if finish != nil {
			if ferr := finish(); ferr != nil && err == nil {
				err = ferr
			}
		}
		if err != nil {
			return outcome{}, err
		}
		return outcome{res: res, elapsed: time.Since(condStart)}, nil
	})

	tb := report.New(title,
		"Key bits", "Benchmark", "# Seed candidates", "# Iterations", "Execution time (secs)", "Broken")
	var rows []condRow
	for _, o := range outs {
		res := o.res
		if res == nil { // never ran: the sweep's deadline fired first
			continue
		}
		tb.AddRow(res.Config.KeyBits, res.Entry.Name, res.AvgCandidates(), res.AvgIterations(),
			res.AvgSeconds(), res.AllSucceeded())
		rows = append(rows, rowFromExperiment("III", res, o.elapsed))
	}
	tb.Render(os.Stdout)
	return rows, err
}

// scaleKey shrinks the key width along with the circuit, keeping the
// paper's k <= 2n regime so the seed stays exactly recoverable.
func scaleKey(kb, scale int) int {
	if scale <= 1 {
		return kb
	}
	out := kb / scale
	if out < 8 {
		out = 8
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// buildInfoLabels describes this binary for the dynunlock_build_info
// gauge: toolchain and bundle-format versions plus the compiled-in
// defaults of the encode flags (what a bare invocation runs with).
func buildInfoLabels() []string {
	return []string{
		"goversion", runtime.Version(),
		"format", strconv.Itoa(flight.FormatVersion),
		"native_xor", flag.Lookup("native-xor").DefValue,
		"aig", flag.Lookup("aig").DefValue,
		"simplify", flag.Lookup("simplify").DefValue,
	}
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "tables: "+format+"\n", args...)
	os.Exit(1)
}
