// Command tables regenerates the paper's Tables I, II, and III end to end:
// it locks each benchmark, fabricates chips with secret seeds, runs the
// attack, and prints rows in the paper's format.
//
// Paper-scale runs (-scale 1 -trials 10) take a while on the from-scratch
// CDCL solver; -scale 8 reproduces the qualitative shape in seconds.
//
// Usage:
//
//	tables -table 2 -scale 8 -trials 3
//	tables -table 3 -scale 8
//	tables -table 1
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dynunlock"
	"dynunlock/internal/bench"
	"dynunlock/internal/core"
	"dynunlock/internal/oracle"
	"dynunlock/internal/report"
	"dynunlock/internal/scansat"
)

func main() {
	var (
		table  = flag.Int("table", 2, "which table to regenerate: 1, 2, or 3")
		scale  = flag.Int("scale", 1, "divide circuit sizes by this factor")
		trials = flag.Int("trials", 10, "secret seeds per benchmark (paper: 10)")
		kbits  = flag.Int("keybits", 128, "key width for Table II (paper: 128)")
		v      = flag.Bool("v", false, "log per-trial progress to stderr")
	)
	flag.Parse()
	var logw io.Writer
	if *v {
		logw = os.Stderr
	}

	switch *table {
	case 1:
		table1(*scale, logw)
	case 2:
		table2(*scale, *trials, *kbits, logw)
	case 3:
		table3(*scale, *trials, logw)
	default:
		fmt.Fprintf(os.Stderr, "tables: no table %d in the paper\n", *table)
		os.Exit(2)
	}
}

// table1 reproduces the evolution table: each defense family attacked by
// the technique that broke it, demonstrated live on one mid-size circuit.
func table1(scale int, logw io.Writer) {
	tb := report.New("Table I: Evolution of scan locking (each defense attacked live)",
		"Defense", "Obfuscation type", "Attack", "Broken", "Candidates", "Iterations")
	run := func(defense, obfType, attackName string, policy dynunlock.Policy, attack func(chip *oracle.Chip) (broken bool, cands, iters int)) {
		// Key width scales with the circuit so the mask rank can cover the
		// key space (the paper's regime: k <= 2n).
		d, err := dynunlock.LockBenchmark("s5378", scaleKey(64, max(scale, 8)), policy, max(scale, 8))
		if err != nil {
			fatalf("%v", err)
		}
		chip, err := dynunlock.Fabricate(d, 1)
		if err != nil {
			fatalf("%v", err)
		}
		broken, cands, iters := attack(chip)
		tb.AddRow(defense, obfType, attackName, broken, cands, iters)
	}

	scanSAT := func(chip *oracle.Chip) (bool, int, int) {
		res, err := scansat.Attack(chip, scansat.Options{EnumerateLimit: 256})
		if err != nil {
			fatalf("%v", err)
		}
		ok := false
		for _, k := range res.KeyCandidates {
			if k.Equal(chip.SecretSeed()) {
				ok = true
			}
		}
		return ok && res.Converged, len(res.KeyCandidates), res.Iterations
	}
	dynUnlock := func(chip *oracle.Chip) (bool, int, int) {
		res, err := core.Attack(chip, core.Options{EnumerateLimit: 256, Log: logw})
		if err != nil {
			fatalf("%v", err)
		}
		return res.Converged && core.ContainsSeed(res.SeedCandidates, chip.SecretSeed()),
			len(res.SeedCandidates), res.Iterations
	}

	run("EFF [10]", "Static", "ScanSAT [14]", dynunlock.Static, scanSAT)
	run("DOS [12] (p=1)", "Dynamic", "DynUnlock (this work)", dynunlock.PerPattern, dynUnlock)
	run("EFF-Dyn [13]", "Dynamic", "DynUnlock (this work)", dynunlock.PerCycle, dynUnlock)
	tb.Render(os.Stdout)
}

// table2 reproduces Table II: ten benchmarks, 128-bit dynamic keys.
func table2(scale, trials, keyBits int, logw io.Writer) {
	title := fmt.Sprintf("Table II: scan locked circuits with %d-bit dynamic keys (EFF-Dyn, %d trial(s)", keyBits, trials)
	if scale > 1 {
		title += fmt.Sprintf(", circuits and keys scaled 1/%d", scale)
	}
	title += ")"
	tb := report.New(title,
		"Benchmark", "# Scan flops", "# Key bits", "# Seed candidates", "# Iterations", "Execution time (secs)", "Broken")
	for _, e := range bench.Table2 {
		res, err := dynunlock.RunExperiment(dynunlock.ExperimentConfig{
			Benchmark: e.Name,
			KeyBits:   scaleKey(keyBits, scale),
			Policy:    dynunlock.PerCycle,
			Scale:     scale,
			Trials:    trials,
			SeedBase:  100,
			Log:       logw,
		})
		if err != nil {
			fatalf("%v", err)
		}
		tb.AddRow(e.Name, res.Entry.FFs, scaleKey(keyBits, scale),
			res.AvgCandidates(), res.AvgIterations(), res.AvgSeconds(), res.AllSucceeded())
	}
	tb.Render(os.Stdout)
}

// table3 reproduces Table III: key-size sweep on the three largest
// benchmarks.
func table3(scale, trials int, logw io.Writer) {
	benches := []string{"s38584", "s38417", "s35932"}
	title := "Table III: larger keys on the three largest benchmarks"
	if scale > 1 {
		title += fmt.Sprintf(" (circuits scaled 1/%d)", scale)
	}
	tb := report.New(title,
		"Key bits", "Benchmark", "# Seed candidates", "# Iterations", "Execution time (secs)", "Broken")
	for kb := 144; kb <= 368; kb += 16 {
		for _, name := range benches {
			res, err := dynunlock.RunExperiment(dynunlock.ExperimentConfig{
				Benchmark: name,
				KeyBits:   scaleKey(kb, scale),
				Policy:    dynunlock.PerCycle,
				Scale:     scale,
				Trials:    trials,
				SeedBase:  int64(kb),
				Log:       logw,
			})
			if err != nil {
				fatalf("%v", err)
			}
			tb.AddRow(scaleKey(kb, scale), name, res.AvgCandidates(), res.AvgIterations(), res.AvgSeconds(), res.AllSucceeded())
		}
	}
	tb.Render(os.Stdout)
}

// scaleKey shrinks the key width along with the circuit, keeping the
// paper's k <= 2n regime so the seed stays exactly recoverable.
func scaleKey(kb, scale int) int {
	if scale <= 1 {
		return kb
	}
	out := kb / scale
	if out < 8 {
		out = 8
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "tables: "+format+"\n", args...)
	os.Exit(1)
}
