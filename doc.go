// Package dynunlock is a from-scratch reproduction of "DynUnlock: Unlocking
// Scan Chains Obfuscated using Dynamic Keys" (Limaye & Sinanoglu, DATE
// 2020): a SAT-based attack that breaks dynamic scan locking defenses such
// as EFF-Dyn by unrolling the obfuscated scan session into a combinational
// locked circuit whose key inputs are the PRNG seed bits.
//
// The module is self-contained (stdlib only) and builds every substrate
// the attack needs:
//
//   - internal/sat      — a CDCL SAT solver (MiniSat lineage)
//   - internal/netlist  — gate-level circuits + ISCAS-89 .bench I/O
//   - internal/sim      — bit-parallel logic simulation
//   - internal/gf2      — GF(2) linear algebra
//   - internal/lfsr     — concrete + symbolic LFSRs
//   - internal/scan     — scan-chain geometry and cycle timing
//   - internal/lock     — EFF / DOS / EFF-Dyn scan locking
//   - internal/oracle   — the attacker-owned chip (Fig. 2 authentication)
//   - internal/encode   — Tseitin CNF encoding and miters
//   - internal/satattack— the classic oracle-guided SAT attack
//   - internal/core     — DynUnlock itself (Algorithm 1 + attack loop)
//   - internal/scansat  — the ScanSAT static baseline
//
// This root package is the high-level facade used by the command-line
// tools, the examples, and the benchmark harness: it locks a benchmark
// circuit, fabricates a chip with secret keys, runs the attack, and
// aggregates multi-trial experiment statistics in the shape of the paper's
// Tables I–III.
package dynunlock
