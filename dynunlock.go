package dynunlock

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"time"

	"dynunlock/internal/anatomy"
	"dynunlock/internal/bench"
	"dynunlock/internal/core"
	"dynunlock/internal/flight"
	"dynunlock/internal/gf2"
	"dynunlock/internal/insight"
	"dynunlock/internal/lock"
	"dynunlock/internal/metrics"
	"dynunlock/internal/netlist"
	"dynunlock/internal/oracle"
	"dynunlock/internal/sat"
	"dynunlock/internal/satattack"
	"dynunlock/internal/scan"
	"dynunlock/internal/stream"
	"dynunlock/internal/trace"
)

// Policy re-exports the key-update policies for facade users.
type Policy = scan.Policy

// Key-update policies (see internal/scan).
const (
	Static     = scan.Static
	PerPattern = scan.PerPattern
	PerCycle   = scan.PerCycle
)

// Mode re-exports the attack formulation selector.
type Mode = core.Mode

// Attack formulations (see internal/core).
const (
	ModeLinear = core.ModeLinear
	ModeDirect = core.ModeDirect
)

// ExperimentConfig describes one paper-style experiment: a benchmark locked
// with a key of the given width and policy, attacked over several secret
// seeds.
type ExperimentConfig struct {
	// Benchmark is a Table II benchmark name (s5378 … b17).
	Benchmark string
	// KeyBits is the key width (128 in Table II; 144–368 in Table III).
	KeyBits int
	// Policy is the defense family (PerCycle = EFF-Dyn, the paper's
	// target). The zero value is Static; Table II/III use PerCycle.
	Policy Policy
	// Period is the per-pattern update period (PerPattern only).
	Period int
	// Scale divides the circuit size for quick runs (1 or 0 = paper scale).
	Scale int
	// Trials is the number of secret seeds (the paper averages over 10).
	// 0 selects 1.
	Trials int
	// Mode selects the attack formulation (default ModeLinear).
	Mode Mode
	// Portfolio is the number of diversified SAT solver instances racing
	// each SAT call within a trial (<= 1 = sequential).
	Portfolio int
	// EnumerateLimit bounds seed-candidate enumeration (0 = 256).
	EnumerateLimit int
	// MaxIterations bounds each trial's DIP loop (0 = unlimited); extraction
	// and enumeration still run on the accumulated constraints.
	MaxIterations int
	// SeedBase derives the per-trial secrets; experiments with the same
	// base are reproducible.
	SeedBase int64
	// NativeXor encodes XOR gates as native GF(2) solver rows instead of
	// Tseitin CNF (see core.Options.NativeXor). The CLIs default it on;
	// the zero value keeps the pure-CNF encoding so bundles recorded
	// before the XOR layer replay bit-identically.
	NativeXor bool
	// AIG builds the structurally-hashed AIG once per attack and encodes
	// every miter copy from it (see core.Options.AIG). The CLIs default it
	// on; the zero value keeps the direct netlist→CNF encoding so older
	// bundles replay bit-identically.
	AIG bool
	// Simplify runs level-0 solver inprocessing between DIP iterations (see
	// core.Options.Simplify). Same default discipline as AIG.
	Simplify bool
	// Analytic closes the insight feedback loop: the tracker's certified
	// seed constraints are injected into the SAT solver after each DIP and
	// the attack short-circuits analytically once they reach full key rank
	// (see core.Options.Insight). Implies running the insight tracker even
	// without metrics or tracing sinks.
	Analytic bool
	// Recorder, when non-nil, captures the experiment as a flight-recorder
	// bundle: the manifest is written from the resolved design, every scan
	// session and DIP iteration streams into the bundle, and each trial's
	// outcome is appended to result.json. Nil costs nothing — the attack
	// path is untouched.
	Recorder *flight.Recorder
	// ChipWrapper, when non-nil, wraps each trial's fabricated chip before
	// the attack (and before the Recorder's own wrapping, so a recorder
	// sees the wrapped chip's answers). The resume path uses this to chain
	// a transcript replay in front of the live chip; success scoring still
	// reads the secret seed from the unwrapped oracle.
	ChipWrapper func(trial int, chip core.Chip) core.Chip
	// Stream, when non-nil, publishes live attack events to the bus: one
	// "dip" event per DIP iteration and a terminal "result" via the trace
	// layer. With no subscribers attached the publish path is a single
	// atomic load and allocates nothing, so an idle bus never perturbs the
	// attack (pinned by TestStreamDoesNotPerturbAttack).
	Stream *stream.Bus
	// Log, when non-nil, receives progress lines.
	Log io.Writer
}

// TrialResult is the outcome of one attack run.
type TrialResult struct {
	Candidates int
	Iterations int
	Queries    int
	Seconds    float64
	Rank       int
	Exact      bool
	Converged  bool
	Verified   bool
	// Analytic reports the trial ended via the insight rank-k short-circuit
	// rather than SAT convergence (see core.Result.Analytic).
	Analytic bool
	// Success is the paper's criterion: the programmed secret seed is in
	// the recovered candidate set.
	Success bool
	// Stopped and StopReason report a deadline/cancellation/budget bound on
	// this trial (see core.Result); the trial's counters stay valid.
	Stopped    bool
	StopReason core.StopReason
	// SolverStats snapshots the CDCL solver counters for the trial (summed
	// over portfolio instances), making perf trajectories comparable across
	// machines: conflicts don't depend on clock speed.
	SolverStats sat.Stats
}

// ExperimentResult aggregates an experiment's trials.
type ExperimentResult struct {
	Entry  bench.Entry
	Config ExperimentConfig
	Trials []TrialResult
	// Stopped is true when a deadline, cancellation, or budget cut the
	// experiment short: the trial that hit the bound is the last entry and
	// later trials never ran. StopReason classifies the bound.
	Stopped    bool
	StopReason core.StopReason
}

// AvgCandidates returns the mean candidate count across trials.
func (r *ExperimentResult) AvgCandidates() float64 {
	return r.avg(func(t TrialResult) float64 { return float64(t.Candidates) })
}

// AvgIterations returns the mean SAT-attack iteration count.
func (r *ExperimentResult) AvgIterations() float64 {
	return r.avg(func(t TrialResult) float64 { return float64(t.Iterations) })
}

// AvgSeconds returns the mean attack wall time in seconds.
func (r *ExperimentResult) AvgSeconds() float64 {
	return r.avg(func(t TrialResult) float64 { return t.Seconds })
}

// TotalConflicts sums solver conflicts across trials: a machine-independent
// work measure for perf trajectories.
func (r *ExperimentResult) TotalConflicts() uint64 {
	var sum uint64
	for _, t := range r.Trials {
		sum += t.SolverStats.Conflicts
	}
	return sum
}

// AllSucceeded reports whether every trial recovered the secret seed.
func (r *ExperimentResult) AllSucceeded() bool {
	for _, t := range r.Trials {
		if !t.Success {
			return false
		}
	}
	return len(r.Trials) > 0
}

func (r *ExperimentResult) avg(f func(TrialResult) float64) float64 {
	if len(r.Trials) == 0 {
		return 0
	}
	sum := 0.0
	for _, t := range r.Trials {
		sum += f(t)
	}
	return sum / float64(len(r.Trials))
}

// ParallelDefault returns the worker count for concurrent sweeps: the
// DYNUNLOCK_PARALLEL environment variable when set to a positive integer,
// otherwise runtime.GOMAXPROCS(0). A value of 1 forces the sequential
// reference path everywhere.
func ParallelDefault() int {
	if s := os.Getenv("DYNUNLOCK_PARALLEL"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v >= 1 {
			return v
		}
	}
	return runtime.GOMAXPROCS(0)
}

// LockBenchmark builds the synthetic stand-in for a named benchmark,
// applies scan locking, and returns the attacker-visible design.
func LockBenchmark(name string, keyBits int, policy Policy, scale int) (*lock.Design, error) {
	entry, ok := bench.ByName(name)
	if !ok {
		return nil, fmt.Errorf("dynunlock: unknown benchmark %q", name)
	}
	if scale > 1 {
		entry = entry.Scaled(scale)
	}
	n, err := entry.Build(0)
	if err != nil {
		return nil, err
	}
	return lock.Lock(n, lock.Config{KeyBits: keyBits, Policy: policy})
}

// LockNetlist applies scan locking to a user-provided netlist.
func LockNetlist(n *netlist.Netlist, keyBits int, policy Policy) (*lock.Design, error) {
	return lock.Lock(n, lock.Config{KeyBits: keyBits, Policy: policy})
}

// Fabricate programs a design into a chip with the given secrets. A nil
// secretSeed or authKey is drawn from rngSeed.
func Fabricate(d *lock.Design, rngSeed int64) (*oracle.Chip, error) {
	rng := rand.New(rand.NewSource(rngSeed))
	k := d.Config.KeyBits
	seed := gf2.NewVec(k)
	for i := 0; i < k; i++ {
		if rng.Intn(2) == 1 {
			seed.Set(i, true)
		}
	}
	if seed.IsZero() {
		seed.Set(rng.Intn(k), true)
	}
	authKey := make([]bool, k)
	for i := range authKey {
		authKey[i] = rng.Intn(2) == 1
	}
	// The attacker's arbitrary test key defaults to all zeros; keep the
	// authentication secret distinct so the PRNG path is exercised.
	authKey[0] = true
	return oracle.New(d, seed, authKey)
}

// Unlock attacks a chip and returns the attack result (see core.Result).
// The chip may be a fabricated simulator (*oracle.Chip) or any other
// core.Chip implementation, e.g. a flight-recorder replay oracle. Unlock is
// UnlockCtx under context.Background().
func Unlock(chip core.Chip, opts core.Options) (*core.Result, error) {
	return UnlockCtx(context.Background(), chip, opts)
}

// UnlockCtx is Unlock with cancellation and tracing (see core.AttackCtx).
func UnlockCtx(ctx context.Context, chip core.Chip, opts core.Options) (*core.Result, error) {
	return core.AttackCtx(ctx, chip, opts)
}

// RunExperiment locks the configured benchmark once and attacks it across
// Trials independently drawn secret seeds, as in the paper's evaluation
// ("run for 10 different LFSR seeds … averaged over these 10 runs").
// RunExperiment is RunExperimentCtx under context.Background().
func RunExperiment(cfg ExperimentConfig) (*ExperimentResult, error) {
	return RunExperimentCtx(context.Background(), cfg)
}

// ctxStop maps a context error to the core stop classification for bounds
// that fire between trials (inside a trial, core.AttackCtx classifies).
func ctxStop(ctx context.Context) core.StopReason {
	if ctx.Err() == context.DeadlineExceeded {
		return core.StopDeadline
	}
	return core.StopCancelled
}

// RunExperimentCtx is RunExperiment with cancellation and tracing. A
// deadline, cancellation, or budget stops the experiment at the bound: the
// trial in flight returns its partial result (recorded with Stopped set)
// and later trials never start. The partial ExperimentResult is returned
// with Stopped set — never an error. A trace sink on ctx observes every
// trial's stage spans and "result" events plus one final "experiment"
// event summarizing the run.
func RunExperimentCtx(ctx context.Context, cfg ExperimentConfig) (*ExperimentResult, error) {
	tr := trace.From(ctx)
	entry, ok := bench.ByName(cfg.Benchmark)
	if !ok {
		return nil, fmt.Errorf("dynunlock: unknown benchmark %q", cfg.Benchmark)
	}
	if cfg.Scale > 1 {
		entry = entry.Scaled(cfg.Scale)
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 1
	}
	n, err := entry.Build(0)
	if err != nil {
		return nil, err
	}
	design, err := lock.Lock(n, lock.Config{
		KeyBits: cfg.KeyBits,
		Policy:  cfg.Policy,
		Period:  cfg.Period,
	})
	if err != nil {
		return nil, err
	}
	res := &ExperimentResult{Entry: entry, Config: cfg}
	// Anatomy capture rides the same "telemetry is live" gate as the other
	// observers: a recorder persists it as anatomy.json, a stream bus
	// publishes "stage" events from it, and a metrics registry surfaces it
	// as dynunlock_anatomy_* series. With none of the three the capture is
	// never built and the solver stays hook-free.
	mh := metrics.From(ctx)
	var cap *anatomy.Capture
	if cfg.Recorder != nil || cfg.Stream != nil || mh != nil {
		cap = anatomy.NewCapture()
	}
	if cfg.Recorder != nil {
		if err := cfg.Recorder.WriteManifest(flight.Manifest{
			Tool:           cfg.Recorder.Tool,
			Benchmark:      cfg.Benchmark,
			Scale:          cfg.Scale,
			Trials:         cfg.Trials,
			Mode:           cfg.Mode.String(),
			Portfolio:      cfg.Portfolio,
			EnumerateLimit: cfg.EnumerateLimit,
			MaxIterations:  cfg.MaxIterations,
			SeedBase:       cfg.SeedBase,
			NativeXor:      cfg.NativeXor,
			AIG:            cfg.AIG,
			Simplify:       cfg.Simplify,
			Analytic:       cfg.Analytic,
			Anatomy:        cap != nil,
			Lock:           flight.LockInfoFor(design),
			Fingerprint:    flight.NewFingerprint(),
		}); err != nil {
			return nil, err
		}
	}
	for trial := 0; trial < cfg.Trials; trial++ {
		if ctx.Err() != nil {
			res.Stopped, res.StopReason = true, ctxStop(ctx)
			break
		}
		chip, err := Fabricate(design, cfg.SeedBase+int64(trial)*7919+1)
		if err != nil {
			return nil, err
		}
		opts := core.Options{
			Mode:           cfg.Mode,
			Portfolio:      cfg.Portfolio,
			EnumerateLimit: cfg.EnumerateLimit,
			MaxIterations:  cfg.MaxIterations,
			NativeXor:      cfg.NativeXor,
			AIG:            cfg.AIG,
			Simplify:       cfg.Simplify,
			Log:            cfg.Log,
		}
		var atkChip core.Chip = chip
		if cfg.ChipWrapper != nil {
			atkChip = cfg.ChipWrapper(trial, atkChip)
		}
		if cfg.Recorder != nil {
			atkChip = cfg.Recorder.WrapChip(trial, atkChip)
			opts.OnDIP = cfg.Recorder.DIPHook(trial)
		}
		if cap != nil {
			cap.StartTrial(trial)
			opts.Search = cap
			opts.OnDIP = satattack.ChainObservers(opts.OnDIP, cap.ObserveDIP)
			opts.OnDIP = satattack.ChainObservers(opts.OnDIP, stagePublisher(cfg.Stream, mh, cap, trial))
		}
		// Seed-space insight rides the same OnDIP hook whenever telemetry
		// is live: a registry or trace sink on ctx turns the tracker on, no
		// sinks leaves the hot loop untouched. Analytic mode forces the
		// tracker on and additionally feeds its certified rows back into
		// the solver. A tracker setup failure (e.g. a nonlinear PRNG the
		// linear model refuses) degrades to an untracked (and non-analytic)
		// run rather than failing the attack.
		if mh != nil || tr.Enabled() || cfg.Analytic {
			if tk, err := insight.New(design, insight.Options{Metrics: mh, Tracer: tr}); err == nil {
				opts.OnDIP = satattack.ChainObservers(opts.OnDIP, tk.DIPObserver())
				if cfg.Analytic {
					opts.Insight = tk
				}
			} else if cfg.Log != nil {
				fmt.Fprintf(cfg.Log, "insight tracker disabled: %v\n", err)
			}
		}
		if cfg.Stream != nil {
			opts.OnDIP = satattack.ChainObservers(opts.OnDIP, dipPublisher(cfg.Stream, trial))
		}
		start := time.Now()
		atk, err := core.AttackCtx(ctx, atkChip, opts)
		if cap != nil {
			cap.EndTrial()
		}
		if err != nil {
			return nil, fmt.Errorf("dynunlock: %s trial %d: %w", entry.Name, trial, err)
		}
		res.Trials = append(res.Trials, TrialResult{
			Candidates:  len(atk.SeedCandidates),
			Iterations:  atk.Iterations,
			Queries:     atk.Queries,
			Seconds:     time.Since(start).Seconds(),
			Rank:        atk.Rank,
			Exact:       atk.Exact,
			Converged:   atk.Converged,
			Verified:    atk.Verified,
			Analytic:    atk.Analytic,
			Success:     core.ContainsSeed(atk.SeedCandidates, chip.SecretSeed()),
			SolverStats: atk.SolverStats,
			Stopped:     atk.Stopped,
			StopReason:  atk.StopReason,
		})
		if cfg.Recorder != nil {
			t := res.Trials[len(res.Trials)-1]
			cfg.Recorder.RecordTrial(flight.TrialFromResult(
				trial, chip.SecretSeed(), atk, t.Seconds, t.Success))
		}
		if cfg.Log != nil {
			t := res.Trials[len(res.Trials)-1]
			fmt.Fprintf(cfg.Log, "%s k=%d trial %d: candidates=%d iters=%d %.2fs success=%v\n",
				entry.Name, cfg.KeyBits, trial, t.Candidates, t.Iterations, t.Seconds, t.Success)
		}
		// An iteration bound is per trial; every other bound ends the
		// experiment where it stands.
		if atk.Stopped && atk.StopReason != core.StopIterations {
			res.Stopped, res.StopReason = true, atk.StopReason
			break
		}
	}
	if cfg.Recorder != nil && res.Stopped {
		cfg.Recorder.SetStopped(true, string(res.StopReason))
	}
	if cfg.Recorder != nil && cap != nil {
		if err := cfg.Recorder.WriteAnatomy(cap.Doc()); err != nil {
			return nil, err
		}
	}
	var itersTotal, queriesTotal int
	var conflictsTotal, propsTotal uint64
	for _, t := range res.Trials {
		itersTotal += t.Iterations
		queriesTotal += t.Queries
		conflictsTotal += t.SolverStats.Conflicts
		propsTotal += t.SolverStats.Propagations
	}
	tr.Emit(trace.Event{Type: "experiment", Fields: map[string]any{
		"benchmark":    entry.Name,
		"key_bits":     cfg.KeyBits,
		"policy":       cfg.Policy.String(),
		"trials_run":   len(res.Trials),
		"trials_want":  cfg.Trials,
		"stopped":      res.Stopped,
		"stop_reason":  string(res.StopReason),
		"succeeded":    res.AllSucceeded(),
		"iterations":   itersTotal,
		"queries":      queriesTotal,
		"conflicts":    conflictsTotal,
		"propagations": propsTotal,
	}})
	return res, nil
}

// stagePublisher surfaces the anatomy capture live at each DIP boundary:
// one "stage" stream event (trial, iteration, per-iteration solve time and
// difficulty, cumulative sampled LBD mean, restarts, XOR share) and the
// dynunlock_anatomy_* metrics series. The bus path is gated on Enabled so
// an idle bus costs one atomic load; the metrics handle is nil-safe.
func stagePublisher(bus *stream.Bus, mh *metrics.Handle, cap *anatomy.Capture, trial int) satattack.DIPObserver {
	var prev sat.Stats
	return func(iter int, _, _ []bool, stats sat.Stats, solveTime time.Duration) {
		delta := flight.SolverStats{
			Conflicts:    stats.Conflicts - prev.Conflicts,
			Propagations: stats.Propagations - prev.Propagations,
		}
		prev = stats
		difficulty := anatomy.Difficulty(delta)
		xorShare := 0.0
		if stats.Propagations > 0 {
			xorShare = float64(stats.XorPropagations) / float64(stats.Propagations)
		}
		if mh != nil {
			meanLBD, _, restarts := cap.Live()
			mh.Gauge(metrics.MetricAnatomySolveSeconds).Add(solveTime.Seconds())
			mh.Gauge(metrics.MetricAnatomyLBDMean).Set(meanLBD)
			mh.Gauge(metrics.MetricAnatomyRestarts).Set(float64(restarts))
			mh.Gauge(metrics.MetricAnatomyDifficulty).Set(difficulty)
			mh.Gauge(metrics.MetricAnatomyXorShare).Set(xorShare)
		}
		if bus != nil && bus.Enabled() {
			meanLBD, samples, restarts := cap.Live()
			bus.Publish(stream.TypeStage, map[string]any{
				"trial":       trial,
				"iteration":   iter,
				"solve_ms":    float64(solveTime) / float64(time.Millisecond),
				"difficulty":  difficulty,
				"lbd_mean":    meanLBD,
				"lbd_samples": samples,
				"restarts":    restarts,
				"xor_share":   xorShare,
			})
		}
	}
}

// dipPublisher adapts a DIP iteration into one "dip" stream event. The
// Enabled check keeps the no-subscriber path allocation-free: the maps and
// bit strings below are only built when someone is listening.
func dipPublisher(bus *stream.Bus, trial int) satattack.DIPObserver {
	return func(iter int, dip, resp []bool, stats sat.Stats, solveTime time.Duration) {
		if !bus.Enabled() {
			return
		}
		bus.Publish(stream.TypeDIP, map[string]any{
			"trial":        trial,
			"iteration":    iter,
			"dip":          flight.BitString(dip),
			"response":     flight.BitString(resp),
			"conflicts":    stats.Conflicts,
			"propagations": stats.Propagations,
			"learnt":       stats.Learnt,
			"solve_ms":     float64(solveTime) / float64(time.Millisecond),
		})
	}
}
