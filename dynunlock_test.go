package dynunlock

import (
	"bytes"
	"testing"

	"dynunlock/internal/core"
)

func TestRunExperimentSmall(t *testing.T) {
	var log bytes.Buffer
	res, err := RunExperiment(ExperimentConfig{
		Benchmark: "s5378",
		KeyBits:   8,
		Policy:    PerCycle,
		Scale:     16,
		Trials:    3,
		SeedBase:  11,
		Log:       &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trials) != 3 {
		t.Fatalf("trials = %d", len(res.Trials))
	}
	if !res.AllSucceeded() {
		t.Fatalf("not all trials succeeded: %+v", res.Trials)
	}
	if res.AvgCandidates() < 1 {
		t.Fatal("no candidates")
	}
	if res.AvgIterations() <= 0 || res.AvgSeconds() <= 0 {
		t.Fatal("averages not recorded")
	}
	for _, tr := range res.Trials {
		if !tr.Converged || !tr.Verified || !tr.Exact {
			t.Fatalf("trial flags: %+v", tr)
		}
		if tr.Queries < tr.Iterations {
			t.Fatal("query accounting")
		}
	}
	if log.Len() == 0 {
		t.Fatal("log empty")
	}
	if res.Entry.FFs != 10 { // 160/16
		t.Fatalf("scaled entry FFs = %d", res.Entry.FFs)
	}
}

func TestRunExperimentUnknownBenchmark(t *testing.T) {
	if _, err := RunExperiment(ExperimentConfig{Benchmark: "s9999", KeyBits: 8}); err == nil {
		t.Fatal("want error")
	}
	if _, err := LockBenchmark("s9999", 8, PerCycle, 1); err == nil {
		t.Fatal("want error")
	}
}

func TestFacadeLockAndUnlock(t *testing.T) {
	design, err := LockBenchmark("b20", 8, PerCycle, 32)
	if err != nil {
		t.Fatal(err)
	}
	chip, err := Fabricate(design, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Unlock(chip, core.Options{EnumerateLimit: 256})
	if err != nil {
		t.Fatal(err)
	}
	if !core.ContainsSeed(res.SeedCandidates, chip.SecretSeed()) {
		t.Fatal("facade attack failed")
	}
}

func TestExperimentResultEmptyAggregates(t *testing.T) {
	r := &ExperimentResult{}
	if r.AvgCandidates() != 0 || r.AllSucceeded() {
		t.Fatal("empty aggregates wrong")
	}
}
