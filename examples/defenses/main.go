// Defense-side demo: the test authentication scheme of the paper's Fig. 2,
// and the Table I evolution — every scan-locking family falling to the
// attack that historically broke it, reproduced live.
//
//	go run ./examples/defenses
package main

import (
	"fmt"
	"log"
	"os"

	"dynunlock"
	"dynunlock/internal/core"
	"dynunlock/internal/oracle"
	"dynunlock/internal/report"
	"dynunlock/internal/scansat"
)

func main() {
	// A mid-size EFF-Dyn locked chip.
	design, err := dynunlock.LockBenchmark("s5378", 16, dynunlock.PerCycle, 8)
	if err != nil {
		log.Fatal(err)
	}
	chip, err := dynunlock.Fabricate(design, 99)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("--- Fig. 2: test authentication scheme ---")
	n := design.Chain.Length
	scanIn := make([]bool, n)
	scanIn[0], scanIn[3] = true, true
	pi := make([]bool, design.View.NumPI)

	// A mismatching test key leaves the PRNG in control: responses are
	// scrambled dynamically, and the same session after reset reproduces
	// (the PRNG restarts from the secret seed).
	wrongKey := make([]bool, design.Config.KeyBits)
	chip.Reset()
	outWrong1, _ := chip.Session(wrongKey, scanIn, pi)
	chip.Reset()
	outWrong2, _ := chip.Session(wrongKey, scanIn, pi)
	fmt.Printf("mismatched test key: scan-out %s\n", bits(outWrong1))
	fmt.Printf("after reset, again:  scan-out %s (reproducible: %v)\n", bits(outWrong2), eq(outWrong1, outWrong2))

	// The trusted tester knows SK: with a matching key the gates carry a
	// known static key, so the tester can compensate deterministically.
	fmt.Println("(a matching secret test key would pin the gates to a known static key — trusted-tester path)")

	fmt.Println("\n--- Table I: evolution of scan locking, attacked live ---")
	tb := report.New("", "Defense", "Type", "Attack", "Broken", "Candidates", "Iterations")
	attackRow := func(label, typ, attackName string, policy dynunlock.Policy) {
		d, err := dynunlock.LockBenchmark("s5378", 16, policy, 8)
		if err != nil {
			log.Fatal(err)
		}
		c, err := dynunlock.Fabricate(d, 7)
		if err != nil {
			log.Fatal(err)
		}
		var broken bool
		var cands, iters int
		if policy == dynunlock.Static {
			res, err := scansat.Attack(c, scansat.Options{EnumerateLimit: 64})
			if err != nil {
				log.Fatal(err)
			}
			for _, k := range res.KeyCandidates {
				if k.Equal(c.SecretSeed()) {
					broken = true
				}
			}
			cands, iters = len(res.KeyCandidates), res.Iterations
		} else {
			res, err := core.Attack(c, core.Options{EnumerateLimit: 64})
			if err != nil {
				log.Fatal(err)
			}
			broken = core.ContainsSeed(res.SeedCandidates, c.SecretSeed())
			cands, iters = len(res.SeedCandidates), res.Iterations
		}
		tb.AddRow(label, typ, attackName, broken, cands, iters)
	}
	attackRow("EFF (Jan 2018)", "Static", "ScanSAT", dynunlock.Static)
	attackRow("DOS (Sept 2018, p=1)", "Dynamic", "DynUnlock", dynunlock.PerPattern)
	attackRow("EFF-Dyn (May 2019)", "Dynamic", "DynUnlock", dynunlock.PerCycle)
	tb.Render(os.Stdout)

	fmt.Println("\nThe per-cycle dynamic key (EFF-Dyn) defeats the classic SAT attack, but")
	fmt.Println("DynUnlock's scan-session unrolling reduces it to a combinational problem.")
	_ = oracle.Stats{}
}

func bits(bs []bool) string {
	out := make([]byte, len(bs))
	for i, b := range bs {
		if b {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	if len(out) > 48 {
		return string(out[:45]) + "..."
	}
	return string(out)
}

func eq(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
