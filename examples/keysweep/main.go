// Key-size sweep in the style of the paper's Table III: a fixed circuit,
// increasing LFSR widths. While the key fits inside the constraints the
// scan session exposes (rank[A;B]), the unique seed is recovered; once it
// outgrows them the candidate class grows as 2^(k−rank) — exactly the
// paper's observation that s38417 reaches 16 candidates at k ≥ 288 while
// larger-rank circuits stay at 1. Every class still contains the secret
// and every member unlocks the chain.
//
//	go run ./examples/keysweep
//	go run ./examples/keysweep -ffs 24 -kmax 40
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"dynunlock"
	"dynunlock/internal/bench"
	"dynunlock/internal/core"
	"dynunlock/internal/report"
)

func main() {
	var (
		ffs  = flag.Int("ffs", 10, "scan flops in the swept circuit")
		kmin = flag.Int("kmin", 6, "smallest key width")
		kmax = flag.Int("kmax", 30, "largest key width")
		step = flag.Int("step", 4, "key width step")
	)
	flag.Parse()

	n, err := bench.Generate(bench.GenConfig{
		Name: "sweep", PIs: 6, POs: 3, FFs: *ffs, Gates: 8 * *ffs, Seed: 31,
	})
	if err != nil {
		log.Fatal(err)
	}

	tb := report.New(
		fmt.Sprintf("Key-size sweep on a %d-flop circuit — Table III shape", *ffs),
		"Key bits", "Rank[A;B]", "Predicted", "# Seed candidates", "# Iterations", "Secret in class", "Time (s)")

	for kb := *kmin; kb <= *kmax; kb += *step {
		design, err := dynunlock.LockNetlist(n, kb, dynunlock.PerCycle)
		if err != nil {
			log.Fatal(err)
		}
		chip, err := dynunlock.Fabricate(design, int64(kb)*13+1)
		if err != nil {
			log.Fatal(err)
		}
		res, err := dynunlock.Unlock(chip, core.Options{EnumerateLimit: 1 << 14})
		if err != nil {
			log.Fatal(err)
		}
		tb.AddRow(kb, res.Rank, fmt.Sprintf("2^%d", res.PredictedLog2),
			len(res.SeedCandidates), res.Iterations,
			core.ContainsSeed(res.SeedCandidates, chip.SecretSeed()),
			res.Elapsed.Seconds())
	}
	tb.Render(os.Stdout)
	fmt.Println("\nAs in the paper: with one capture cycle the attack always returns the")
	fmt.Println("full candidate class; when it grows beyond brute-force reach, a second")
	fmt.Println("capture cycle adds independent constraints (core.AttackMulti).")
}
