// Quickstart: lock a circuit with EFF-Dyn dynamic scan locking, fabricate
// a chip with a secret LFSR seed, break it with DynUnlock, and use the
// recovered seed to drive the scan chain at will.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"dynunlock"
	"dynunlock/internal/bench"
	"dynunlock/internal/core"
)

func main() {
	// 1. A victim design: a synthetic 64-flop sequential circuit.
	n, err := bench.Generate(bench.GenConfig{
		Name: "victim", PIs: 8, POs: 4, FFs: 64, Gates: 400, Seed: 2024,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("victim circuit:", n.Stats())

	// 2. The designer locks the scan chain: 32 XOR key gates driven by a
	//    32-bit LFSR that steps EVERY clock cycle (EFF-Dyn).
	design, err := dynunlock.LockNetlist(n, 32, dynunlock.PerCycle)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("locked:", design.Describe())

	// 3. The foundry fabricates a chip; the secret seed and test key are
	//    programmed into tamper-proof memory.
	chip, err := dynunlock.Fabricate(design, 7)
	if err != nil {
		log.Fatal(err)
	}

	// 4. The attacker owns the chip and the reverse-engineered netlist but
	//    not the secrets. DynUnlock models one scan session as a
	//    combinational circuit keyed by the seed (Algorithm 1 / Fig. 3) and
	//    runs the oracle-guided SAT attack.
	fmt.Println("\n--- DynUnlock attack (Fig. 3 flow) ---")
	res, err := dynunlock.Unlock(chip, core.Options{Log: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged=%v iterations=%d scan sessions=%d elapsed=%v\n",
		res.Converged, res.Iterations, res.Queries, res.Elapsed.Round(1000000))
	fmt.Printf("seed candidates=%d (exact=%v, analytic prediction=2^%d)\n",
		len(res.SeedCandidates), res.Exact, res.PredictedLog2)
	fmt.Printf("probe verification passed=%v\n", res.Verified)
	fmt.Printf("recovered seed: %s\n", res.SeedCandidates[0])
	fmt.Printf("actual   seed: %s\n", chip.SecretSeed())
	if !core.ContainsSeed(res.SeedCandidates, chip.SecretSeed()) {
		log.Fatal("attack failed to recover the seed")
	}

	// 5. Scan access unlocked: the attacker can now deliver chosen states
	//    and decode captured responses despite the dynamic obfuscation.
	v, err := core.NewVerifier(design)
	if err != nil {
		log.Fatal(err)
	}
	encodeIn, decodeOut := v.Unlock(res.SeedCandidates[0])
	want := make([]bool, 64)
	want[0], want[13], want[40] = true, true, true
	pi := make([]bool, 8)
	chip.Reset()
	raw, _ := chip.Session(make([]bool, 32), encodeIn(want), pi)
	got := decodeOut(raw)
	fmt.Printf("\nchosen state delivered through the locked chain; decoded response has %d bits\n", len(got))
	fmt.Println("scan access unlocked — the defense is broken.")
}
