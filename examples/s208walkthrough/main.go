// The paper's worked example (Figs. 1 and 4, Algorithm 1): an 8-flop
// s208-style circuit locked with three key bits whose gates sit after scan
// flops 1, 2, and 5, obfuscated by a 3-bit LFSR that steps every cycle.
//
// The program prints the locked chain (Fig. 1), the per-cycle LFSR key
// expressions over the seed bits s0..s2, the closed-form scan-in/scan-out
// masks of Algorithm 1, the combinational model netlist (Fig. 4), and then
// runs DynUnlock to recover the seed.
//
//	go run ./examples/s208walkthrough
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"dynunlock/internal/bench"
	"dynunlock/internal/core"
	"dynunlock/internal/gf2"
	"dynunlock/internal/lfsr"
	"dynunlock/internal/lock"
	"dynunlock/internal/oracle"
	"dynunlock/internal/scan"
)

func main() {
	n := bench.S208F()
	fmt.Println("circuit:", n.Stats())

	design, err := lock.Lock(n, lock.Config{KeyBits: 3, Policy: scan.PerCycle})
	if err != nil {
		log.Fatal(err)
	}
	// Fig. 1 placement: key gates after flops 1, 2, and 5.
	design.Chain.Gates = []scan.KeyGate{
		{Link: 1, KeyBit: 0}, {Link: 2, KeyBit: 1}, {Link: 5, KeyBit: 2},
	}

	fmt.Println("\n--- Fig. 1: obfuscated scan chain ---")
	fmt.Println(chainDiagram(design.Chain))

	fmt.Println("--- LFSR key schedule (seed bits s0, s1, s2) ---")
	fmt.Printf("polynomial: width %d, taps %v\n", design.Config.Poly.N, design.Config.Poly.Taps)
	states, err := lfsr.UnrollStates(design.Config.Poly, 6)
	if err != nil {
		log.Fatal(err)
	}
	for t, m := range states {
		terms := make([]string, 3)
		for b := 0; b < 3; b++ {
			terms[b] = seedExpr(m.Row(b))
		}
		fmt.Printf("cycle %d: k0=%-10s k1=%-10s k2=%s\n", t, terms[0], terms[1], terms[2])
	}

	fmt.Println("\n--- Algorithm 1: closed-form masks ---")
	model, err := core.BuildModel(design, 0)
	if err != nil {
		log.Fatal(err)
	}
	for j := 0; j < design.Chain.Length; j++ {
		fmt.Printf("a'%d = a%d ^ (%s)    b%d = b'%d ^ (%s)\n",
			j, j, seedExpr(model.A.Row(j)), j, j, seedExpr(model.B.Row(j)))
	}
	fmt.Printf("rank[A;B] = %d of %d seed bits -> predicted candidates = 2^%d\n",
		model.Rank(), 3, model.PredictedCandidatesLog2())

	fmt.Println("\n--- Fig. 4: combinational locked model (.bench) ---")
	if err := model.Netlist.WriteBench(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Fabricate with the walkthrough seed 101 and attack.
	seed := gf2.FromBools([]bool{true, false, true})
	chip, err := oracle.New(design, seed, []bool{true, true, false})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- DynUnlock attack ---")
	res, err := core.Attack(chip, core.Options{EnumerateLimit: 8, Log: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("iterations=%d candidates=%d exact=%v\n", res.Iterations, len(res.SeedCandidates), res.Exact)
	for _, c := range res.SeedCandidates {
		marker := ""
		if c.Equal(seed) {
			marker = "   <- the programmed secret"
		}
		fmt.Printf("  candidate seed %s%s\n", c, marker)
	}
}

// chainDiagram draws the scan chain with its key gates.
func chainDiagram(c scan.Chain) string {
	gate := map[int]int{}
	for _, g := range c.Gates {
		gate[g.Link] = g.KeyBit
	}
	var sb strings.Builder
	sb.WriteString("SI")
	for j := 0; j < c.Length; j++ {
		if kb, ok := gate[j]; ok {
			fmt.Fprintf(&sb, " -(^k%d)-", kb)
		} else {
			sb.WriteString(" ----")
		}
		fmt.Fprintf(&sb, "[FF%d]", j)
	}
	sb.WriteString(" ---- SO")
	return sb.String()
}

// seedExpr renders a GF(2) seed-combination row like "s0^s2", or "0".
func seedExpr(row gf2.Vec) string {
	ones := row.Ones()
	if len(ones) == 0 {
		return "0"
	}
	terms := make([]string, len(ones))
	for i, b := range ones {
		terms[i] = fmt.Sprintf("s%d", b)
	}
	return strings.Join(terms, "^")
}
