// Test-access demo: what scan locking defends and what DynUnlock takes
// back. Stuck-at test patterns are generated with SAT-based ATPG; applying
// them requires working scan access.
//
//   - A trusted tester (knows SK) reaches full stuck-at coverage.
//
//   - An untrusted tester shifting through the dynamically obfuscated
//     chain gets scrambled responses: coverage collapses.
//
//   - After DynUnlock recovers the LFSR seed, the attacker compensates the
//     masks and reaches the trusted tester's coverage — full structural
//     test (and hence IP piracy / overproduction capability) restored.
//
//     go run ./examples/testaccess
package main

import (
	"fmt"
	"log"

	"dynunlock"
	"dynunlock/internal/atpg"
	"dynunlock/internal/bench"
	"dynunlock/internal/core"
	"dynunlock/internal/fault"
	"dynunlock/internal/netlist"
	"dynunlock/internal/sim"
)

func main() {
	// Victim: a 24-flop circuit.
	n, err := bench.Generate(bench.GenConfig{Name: "dut", PIs: 6, POs: 3, FFs: 24, Gates: 160, Seed: 77})
	if err != nil {
		log.Fatal(err)
	}
	v, err := netlist.NewCombView(n)
	if err != nil {
		log.Fatal(err)
	}

	// ATPG on the combinational view (inputs = PIs + state, as scan allows).
	faults := fault.AllFaults(v)
	campaign := atpg.GeneratePatterns(v, faults, atpg.Options{RandomPatterns: 32, Seed: 5})
	fmt.Printf("ATPG: %d faults, %d detected (%d via random patterns), %d redundant; %d patterns, coverage %.1f%%\n",
		campaign.Total, campaign.Detected, campaign.RandomHits, campaign.Redundant,
		len(campaign.Patterns), 100*campaign.Coverage())

	// Lock the scan chain with a 16-bit EFF-Dyn key and fabricate.
	design, err := dynunlock.LockNetlist(n, 16, dynunlock.PerCycle)
	if err != nil {
		log.Fatal(err)
	}
	chip, err := dynunlock.Fabricate(design, 13)
	if err != nil {
		log.Fatal(err)
	}

	// A test pattern = (pi, state); detection is checked by comparing the
	// chip's captured response to the fault-free expectation.
	apply := func(encodeIn func([]bool) []bool, decodeOut func([]bool) []bool) int {
		sim := fault.NewSimulator(v)
		detected := 0
		for _, f := range faults {
			hit := false
			for _, pat := range campaign.Patterns {
				pi, st := pat[:6], pat[6:]
				// Expected faulty-vs-good difference from the fault simulator.
				packed := fault.PackPatterns([][]bool{pat}, len(v.Inputs))
				if sim.Detects(f, packed)&1 != 1 {
					continue // this pattern cannot detect f anyway
				}
				// Deliver via the (possibly compensated) scan chain.
				chip.Reset()
				raw, _ := chip.Session(make([]bool, 16), encodeIn(st), pi)
				got := decodeOut(raw)
				// The good response:
				want := goodNextState(v, pi, st)
				diff := false
				for i := range want {
					if got[i] != want[i] {
						diff = true
					}
				}
				// With working access got==want (fault-free chip); a real
				// faulty part would differ exactly when the simulator says.
				// Detection capability therefore requires got==want here.
				if !diff {
					hit = true
					break
				}
			}
			if hit {
				detected++
			}
		}
		return detected
	}

	testable := campaign.Detected // redundant faults are untestable by definition
	identity := func(b []bool) []bool { return b }
	fmt.Println("\nuntrusted tester, wrong key, raw obfuscated chain:")
	rawDet := apply(identity, identity)
	fmt.Printf("  effective coverage %d/%d testable faults (%.1f%%) — scrambled responses\n",
		rawDet, testable, 100*float64(rawDet)/float64(testable))

	fmt.Println("\nDynUnlock attack...")
	res, err := dynunlock.Unlock(chip, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  seed recovered in %d iterations (%d candidates)\n", res.Iterations, len(res.SeedCandidates))
	verifier, err := core.NewVerifier(design)
	if err != nil {
		log.Fatal(err)
	}
	encodeIn, decodeOut := verifier.Unlock(res.SeedCandidates[0])

	fmt.Println("\nattacker with recovered seed, compensated chain:")
	unlockedDet := apply(encodeIn, decodeOut)
	fmt.Printf("  effective coverage %d/%d testable faults (%.1f%%) — full scan access restored\n",
		unlockedDet, testable, 100*float64(unlockedDet)/float64(testable))
}

// goodNextState computes the fault-free captured state for (pi, st).
func goodNextState(v *netlist.CombView, pi, st []bool) []bool {
	in := make([]bool, len(v.Inputs))
	copy(in, pi)
	copy(in[len(pi):], st)
	out := sim.NewComb(v).EvalBits(in)
	return out[v.NumPO:]
}
