module dynunlock

go 1.22
