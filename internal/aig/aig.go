// Package aig provides an arena-backed And-Inverter Graph: a compact
// structural representation of combinational logic built once per attack
// from a netlist.CombView and shared across every CNF copy the attack
// emits.
//
// Nodes live in one flat slice (the arena); edges are literals packed as
// node<<1|complement, so inversion is free and never allocates a node.
// Construction applies structural hashing (identical (op,a,b) nodes are
// created once) and constant folding, and FromCombView walks only the cone
// of influence of the view's outputs — dead logic in the source netlist
// never reaches the graph. The result is a canonical, deduplicated
// structure that the encoder can replay per circuit copy with nothing more
// than a substitution map over the inputs (see encode.EncodeAIG), and that
// Eval64 can simulate 64 patterns at a time without touching the netlist.
//
// Gate decomposition: n-ary AND/OR/NAND/NOR chains become balanced trees of
// AND nodes (OR via De Morgan on complemented edges); XOR/XNOR chains
// become XOR nodes, kept native — rather than expanded into four ANDs — so
// downstream GF(2) reasoning (sat.Solver native XOR rows) survives the
// round trip; MUX decomposes into its AND/OR form. BUF and NOT are pure
// edge operations and never allocate.
package aig

import (
	"fmt"

	"dynunlock/internal/netlist"
)

// Lit is an edge: a node index shifted left once, with the low bit set when
// the edge is complemented. The constant-false node has index 0, so
// ConstFalse == Lit(0) and ConstTrue == Lit(1).
type Lit uint32

// Constant edges. Node 0 is the constant-false node present in every graph.
const (
	ConstFalse Lit = 0
	ConstTrue  Lit = 1
)

// Node returns the node index the literal points at.
func (l Lit) Node() uint32 { return uint32(l >> 1) }

// Sign reports whether the edge is complemented.
func (l Lit) Sign() bool { return l&1 == 1 }

// Not returns the complemented edge.
func (l Lit) Not() Lit { return l ^ 1 }

// IsConst reports whether the literal is one of the two constants.
func (l Lit) IsConst() bool { return l.Node() == 0 }

// String renders the literal for debugging.
func (l Lit) String() string {
	switch l {
	case ConstFalse:
		return "0"
	case ConstTrue:
		return "1"
	}
	if l.Sign() {
		return fmt.Sprintf("!n%d", l.Node())
	}
	return fmt.Sprintf("n%d", l.Node())
}

// Kind discriminates node types in the arena.
type Kind uint8

// Node kinds. The constant node and inputs are leaves; And and Xor are the
// only internal operators (inversion lives on edges).
const (
	KindConst Kind = iota
	KindInput
	KindAnd
	KindXor
)

// node is one arena entry. Leaves (const, input) have zero operands; And
// and Xor nodes reference strictly earlier nodes, so arena index order is a
// topological order by construction.
type node struct {
	a, b Lit
	kind Kind
}

type strashKey struct {
	a, b Lit
	kind Kind
}

// Graph is an arena-backed AIG over a fixed set of ordered inputs.
type Graph struct {
	nodes  []node
	strash map[strashKey]uint32
	inputs []Lit // input i's (uncomplemented) edge
	outs   []Lit

	numAnd, numXor int
	folded         int // constructor calls answered without allocating
}

// New returns an empty graph with n inputs (node 0 is the constant).
func New(n int) *Graph {
	g := &Graph{
		nodes:  make([]node, 1, 1+n),
		strash: make(map[strashKey]uint32),
		inputs: make([]Lit, n),
	}
	for i := 0; i < n; i++ {
		g.nodes = append(g.nodes, node{kind: KindInput})
		g.inputs[i] = Lit(uint32(len(g.nodes)-1) << 1)
	}
	return g
}

// NumInputs returns the number of input nodes.
func (g *Graph) NumInputs() int { return len(g.inputs) }

// NumNodes returns the total node count including the constant and inputs.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumAnds returns the number of AND nodes.
func (g *Graph) NumAnds() int { return g.numAnd }

// NumXors returns the number of XOR nodes.
func (g *Graph) NumXors() int { return g.numXor }

// Folded returns how many constructor calls were satisfied by constant
// folding or structural hashing instead of allocating a node.
func (g *Graph) Folded() int { return g.folded }

// Input returns the edge for input i.
func (g *Graph) Input(i int) Lit { return g.inputs[i] }

// Outputs returns the output edges registered with AddOutput (aliases
// internal storage).
func (g *Graph) Outputs() []Lit { return g.outs }

// AddOutput registers l as the next output of the graph.
func (g *Graph) AddOutput(l Lit) { g.outs = append(g.outs, l) }

// NodeAt exposes node i's kind and operand edges (operands are
// meaningful only for And and Xor kinds). Used by the encoder walk.
func (g *Graph) NodeAt(i int) (kind Kind, a, b Lit) {
	n := g.nodes[i]
	return n.kind, n.a, n.b
}

// And returns an edge equivalent to a AND b, folding constants and
// duplicate or complementary operands, and structurally hashing the rest.
func (g *Graph) And(a, b Lit) Lit {
	// Constant and trivial folds.
	switch {
	case a == ConstFalse || b == ConstFalse || a == b.Not():
		g.folded++
		return ConstFalse
	case a == ConstTrue:
		g.folded++
		return b
	case b == ConstTrue || a == b:
		g.folded++
		return a
	}
	if a > b {
		a, b = b, a
	}
	return g.mk(KindAnd, a, b)
}

// Or returns an edge equivalent to a OR b (De Morgan over And).
func (g *Graph) Or(a, b Lit) Lit { return g.And(a.Not(), b.Not()).Not() }

// Xor returns an edge equivalent to a XOR b. The result is canonicalized:
// operand complements are hoisted onto the output edge so that structurally
// equal XORs hash together regardless of input polarity.
func (g *Graph) Xor(a, b Lit) Lit {
	out := a.Sign() != b.Sign()
	a &^= 1
	b &^= 1
	switch {
	case a == b:
		g.folded++
		return constOf(out)
	case a == ConstFalse: // a was a constant; b XOR const = b (polarity in out)
		g.folded++
		return b.xorSign(out)
	case b == ConstFalse:
		g.folded++
		return a.xorSign(out)
	}
	if a > b {
		a, b = b, a
	}
	return g.mk(KindXor, a, b).xorSign(out)
}

// Mux returns sel ? d1 : d0, decomposed into AND/OR structure.
func (g *Graph) Mux(sel, d0, d1 Lit) Lit {
	switch {
	case sel == ConstFalse:
		g.folded++
		return d0
	case sel == ConstTrue:
		g.folded++
		return d1
	case d0 == d1:
		g.folded++
		return d0
	}
	if d0 == d1.Not() {
		return g.Xor(sel, d0)
	}
	return g.Or(g.And(sel, d1), g.And(sel.Not(), d0))
}

func (l Lit) xorSign(s bool) Lit {
	if s {
		return l.Not()
	}
	return l
}

func constOf(v bool) Lit {
	if v {
		return ConstTrue
	}
	return ConstFalse
}

func (g *Graph) mk(kind Kind, a, b Lit) Lit {
	key := strashKey{kind: kind, a: a, b: b}
	if id, ok := g.strash[key]; ok {
		g.folded++
		return Lit(id << 1)
	}
	id := uint32(len(g.nodes))
	g.nodes = append(g.nodes, node{kind: kind, a: a, b: b})
	g.strash[key] = id
	if kind == KindAnd {
		g.numAnd++
	} else {
		g.numXor++
	}
	return Lit(id << 1)
}

// reduce folds a slice of operands into a balanced tree via op. The slice
// must be non-empty.
func reduce(lits []Lit, op func(a, b Lit) Lit) Lit {
	for len(lits) > 1 {
		w := 0
		for i := 0; i < len(lits); i += 2 {
			if i+1 < len(lits) {
				lits[w] = op(lits[i], lits[i+1])
			} else {
				lits[w] = lits[i]
			}
			w++
		}
		lits = lits[:w]
	}
	return lits[0]
}

// FromCombView compiles the combinational view into a fresh graph. Inputs
// map positionally: graph input i corresponds to v.Inputs[i], and graph
// output j to v.Outputs[j]. Only gates in the cone of influence of
// v.Outputs are visited, so logic that feeds no output (common in the
// synthetic benchmarks, where only a random subset of the gate pool is
// tapped) is skipped entirely.
func FromCombView(v *netlist.CombView) (*Graph, error) {
	g := New(len(v.Inputs))
	n := v.N

	lits := make([]Lit, n.NumSignals())
	have := make([]bool, n.NumSignals())
	for i, s := range v.Inputs {
		lits[s] = g.Input(i)
		have[s] = true
	}

	// Mark the cone of influence of the outputs with a reverse sweep.
	inCone := make([]bool, n.NumSignals())
	stack := make([]netlist.SignalID, 0, len(v.Outputs))
	for _, o := range v.Outputs {
		if !inCone[o] {
			inCone[o] = true
			stack = append(stack, o)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if have[id] {
			continue // comb-view source: fanin belongs to the sequential frame
		}
		for _, f := range n.Fanin(id) {
			if !inCone[f] {
				inCone[f] = true
				stack = append(stack, f)
			}
		}
	}

	eval := func(id netlist.SignalID) (Lit, error) {
		gate := n.Gate(id)
		ops := make([]Lit, len(gate.Fanin))
		for i, f := range gate.Fanin {
			if !have[f] {
				return 0, fmt.Errorf("aig: signal %q used before definition", n.SignalName(f))
			}
			ops[i] = lits[f]
		}
		switch gate.Type {
		case netlist.Const0:
			return ConstFalse, nil
		case netlist.Const1:
			return ConstTrue, nil
		case netlist.Buf:
			return ops[0], nil
		case netlist.Not:
			return ops[0].Not(), nil
		case netlist.And:
			return reduce(ops, g.And), nil
		case netlist.Nand:
			return reduce(ops, g.And).Not(), nil
		case netlist.Or:
			return reduce(ops, g.Or), nil
		case netlist.Nor:
			return reduce(ops, g.Or).Not(), nil
		case netlist.Xor:
			return reduce(ops, g.Xor), nil
		case netlist.Xnor:
			return reduce(ops, g.Xor).Not(), nil
		case netlist.Mux:
			return g.Mux(ops[0], ops[1], ops[2]), nil
		default:
			return 0, fmt.Errorf("aig: unsupported gate type %v for %q", gate.Type, n.SignalName(id))
		}
	}

	// Constants can sit outside Order; define any in the cone up front.
	for id := 0; id < n.NumSignals(); id++ {
		sid := netlist.SignalID(id)
		if !inCone[sid] || have[sid] {
			continue
		}
		switch n.Type(sid) {
		case netlist.Const0:
			lits[sid], have[sid] = ConstFalse, true
		case netlist.Const1:
			lits[sid], have[sid] = ConstTrue, true
		}
	}
	for _, id := range v.Order {
		if !inCone[id] || have[id] {
			continue
		}
		l, err := eval(id)
		if err != nil {
			return nil, err
		}
		lits[id] = l
		have[id] = true
	}
	for _, o := range v.Outputs {
		if !have[o] {
			return nil, fmt.Errorf("aig: output %q never defined", n.SignalName(o))
		}
		g.AddOutput(lits[o])
	}
	return g, nil
}

// Sim is a reusable bit-parallel evaluator over a finished graph. The
// graph itself stays read-only, so one graph can back many Sims (e.g. one
// per portfolio instance) concurrently; each Sim carries its own value
// buffer and is not goroutine-safe.
type Sim struct {
	g   *Graph
	val []uint64
}

// NewSim builds an evaluator for g.
func NewSim(g *Graph) *Sim {
	return &Sim{g: g, val: make([]uint64, len(g.nodes))}
}

// Eval evaluates 64 patterns at once: in holds one word per graph input,
// and the result — owned by the caller — one word per output. Arena index
// order is topological, so a single forward sweep suffices.
func (s *Sim) Eval(in []uint64) []uint64 {
	g := s.g
	if len(in) != len(g.inputs) {
		panic(fmt.Sprintf("aig: Eval got %d input words, graph has %d inputs", len(in), len(g.inputs)))
	}
	val := s.val
	val[0] = 0
	for i, l := range g.inputs {
		val[l.Node()] = in[i]
	}
	word := func(l Lit) uint64 {
		v := val[l.Node()]
		if l.Sign() {
			v = ^v
		}
		return v
	}
	for i := range g.nodes {
		nd := &g.nodes[i]
		switch nd.kind {
		case KindAnd:
			val[i] = word(nd.a) & word(nd.b)
		case KindXor:
			val[i] = word(nd.a) ^ word(nd.b)
		}
	}
	out := make([]uint64, len(g.outs))
	for i, l := range g.outs {
		out[i] = word(l)
	}
	return out
}
