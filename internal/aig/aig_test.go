package aig_test

import (
	"math/rand"
	"testing"

	// Dot-imported so the tests read like in-package tests; the external
	// test package breaks the aig -> sim -> aig test import cycle.
	. "dynunlock/internal/aig"
	"dynunlock/internal/bench"
	"dynunlock/internal/netlist"
	"dynunlock/internal/sim"
)

func TestLit(t *testing.T) {
	if ConstFalse.Not() != ConstTrue || ConstTrue.Not() != ConstFalse {
		t.Fatal("constant complement broken")
	}
	l := Lit(7<<1 | 1)
	if l.Node() != 7 || !l.Sign() || l.Not().Sign() {
		t.Fatalf("lit accessors broken: %v", l)
	}
}

func TestConstantFolding(t *testing.T) {
	g := New(2)
	a, b := g.Input(0), g.Input(1)
	cases := []struct {
		name string
		got  Lit
		want Lit
	}{
		{"and false", g.And(a, ConstFalse), ConstFalse},
		{"and true", g.And(a, ConstTrue), a},
		{"and self", g.And(a, a), a},
		{"and compl", g.And(a, a.Not()), ConstFalse},
		{"or true", g.Or(a, ConstTrue), ConstTrue},
		{"or false", g.Or(a, ConstFalse), a},
		{"xor self", g.Xor(a, a), ConstFalse},
		{"xor compl", g.Xor(a, a.Not()), ConstTrue},
		{"xor false", g.Xor(a, ConstFalse), a},
		{"xor true", g.Xor(a, ConstTrue), a.Not()},
		{"mux same", g.Mux(b, a, a), a},
		{"mux const sel 0", g.Mux(ConstFalse, a, b), a},
		{"mux const sel 1", g.Mux(ConstTrue, a, b), b},
	}
	for _, tc := range cases {
		if tc.got != tc.want {
			t.Errorf("%s: got %v want %v", tc.name, tc.got, tc.want)
		}
	}
	if g.NumNodes() != 3 { // const + 2 inputs, nothing allocated
		t.Errorf("folding allocated nodes: %d", g.NumNodes())
	}
}

func TestStructuralHashing(t *testing.T) {
	g := New(3)
	a, b, c := g.Input(0), g.Input(1), g.Input(2)
	if g.And(a, b) != g.And(b, a) {
		t.Error("AND not commutative under strash")
	}
	if g.Xor(a, b) != g.Xor(b, a) {
		t.Error("XOR not commutative under strash")
	}
	// Polarity canonicalization: complement moves to the output edge.
	if g.Xor(a.Not(), b) != g.Xor(a, b).Not() {
		t.Error("XOR polarity not canonicalized")
	}
	if g.Xor(a.Not(), b.Not()) != g.Xor(a, b) {
		t.Error("double complement should cancel")
	}
	before := g.NumNodes()
	g.And(a, c)
	g.And(a, c)
	if g.NumNodes() != before+1 {
		t.Errorf("duplicate AND allocated twice: %d -> %d", before, g.NumNodes())
	}
	if g.Folded() == 0 {
		t.Error("fold counter never incremented")
	}
}

func TestMuxAsXor(t *testing.T) {
	g := New(2)
	s, d := g.Input(0), g.Input(1)
	if g.Mux(s, d, d.Not()) != g.Xor(s, d) {
		t.Error("mux with complementary branches should fold to XOR")
	}
}

// TestConeOfInfluence builds a netlist with logic that feeds no output and
// checks the dead gates never reach the graph.
func TestConeOfInfluence(t *testing.T) {
	n := netlist.New("coi")
	a, _ := n.AddInput("a")
	b, _ := n.AddInput("b")
	live, _ := n.AddGate("live", netlist.And, a, b)
	dead, _ := n.AddGate("dead0", netlist.Or, a, b)
	n.AddGate("dead1", netlist.Xor, dead, b)
	n.MarkOutput(live)
	v, err := netlist.NewCombView(n)
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromCombView(v)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumAnds() != 1 || g.NumXors() != 0 {
		t.Errorf("cone restriction failed: %d ANDs, %d XORs", g.NumAnds(), g.NumXors())
	}
}

// TestEvalMatchesSim cross-checks the AIG evaluator against the gate-level
// simulator on scaled paper benchmarks and random netlists.
func TestEvalMatchesSim(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var views []*netlist.CombView
	for _, e := range bench.Table2[:4] {
		n, err := e.Scaled(16).Build(0)
		if err != nil {
			t.Fatal(err)
		}
		v, err := netlist.NewCombView(n)
		if err != nil {
			t.Fatal(err)
		}
		views = append(views, v)
	}
	for seed := int64(0); seed < 6; seed++ {
		n, err := bench.Generate(bench.GenConfig{
			Name: "rnd", PIs: 5, POs: 4, FFs: 8, Gates: 60, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		v, err := netlist.NewCombView(n)
		if err != nil {
			t.Fatal(err)
		}
		views = append(views, v)
	}

	for _, v := range views {
		g, err := FromCombView(v)
		if err != nil {
			t.Fatalf("%s: %v", v.N.Name, err)
		}
		c := sim.NewComb(v)
		ev := NewSim(g)
		in := make([]uint64, len(v.Inputs))
		for trial := 0; trial < 8; trial++ {
			for i := range in {
				in[i] = rng.Uint64()
			}
			want := c.Eval(in)
			out := ev.Eval(in)
			for i := range want {
				if out[i] != want[i] {
					t.Fatalf("%s: output %d mismatch: aig %x sim %x", v.N.Name, i, out[i], want[i])
				}
			}
		}
	}
}

// TestCompaction: the same netlist built twice shares every node; and the
// synthetic benchmarks carry dead logic that the cone walk skips, so the
// graph is smaller than the raw gate count.
func TestCompaction(t *testing.T) {
	e := bench.Table2[0].Scaled(8)
	n, err := e.Build(0)
	if err != nil {
		t.Fatal(err)
	}
	v, err := netlist.NewCombView(n)
	if err != nil {
		t.Fatal(err)
	}
	g, err := FromCombView(v)
	if err != nil {
		t.Fatal(err)
	}
	stats := n.Stats()
	if g.NumAnds()+g.NumXors() >= stats.Gates {
		t.Errorf("no compaction: %d AIG ops vs %d gates", g.NumAnds()+g.NumXors(), stats.Gates)
	}
	t.Logf("%s: %d gates -> %d AIG ops (%d folded)", e.Name, stats.Gates, g.NumAnds()+g.NumXors(), g.Folded())
}
