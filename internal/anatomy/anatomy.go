// Package anatomy is the attack's attribution layer: it turns a recorded
// (or live) run into a structured breakdown of where the attack spent its
// effort — wall time split across the Fig. 3 stages, per-DIP solver
// counter deltas and difficulty scores, XOR-vs-CNF propagation share, and
// (when the live capture ran) sampled LBD histograms and restart
// telemetry per DIP.
//
// Two sources feed it:
//
//   - Derivation (Derive/FromDir): everything computable offline from any
//     bundle version — trace spans give the stage split, consecutive
//     dips.jsonl solver snapshots difference into per-DIP deltas, and
//     result.json anchors the wall time and counter totals. This is why
//     `runs explain` works on every committed v1–v3 bundle.
//   - Live capture (Capture, capture.go): sampled learnt-clause LBD and
//     restart telemetry from the solver hook, which no offline file
//     records. It persists as anatomy.json (bundle format v4) and merges
//     into the derived report when present.
package anatomy

import (
	"sort"

	"dynunlock/internal/flight"
	"dynunlock/internal/report"
	"dynunlock/internal/trace"
)

// Report is the full attribution of one attack run. Per-stage seconds sum
// exactly to TotalSeconds: the trailing "other" stage is computed as the
// residual (non-Fig.3 spans plus un-spanned time such as lock
// construction and chip fabrication), so nothing is dropped.
type Report struct {
	// Dir is the source bundle directory ("" for in-memory reports).
	Dir string `json:"dir,omitempty"`
	// TotalSeconds is the recorded wall time (result.json elapsedSeconds).
	TotalSeconds float64 `json:"totalSeconds"`
	// Stages is the wall-time split in Fig. 3 pipeline order (stages that
	// never ran are omitted) with "other" last. Seconds sum to
	// TotalSeconds by construction.
	Stages []Stage `json:"stages"`
	// Solver totals the per-trial solver counters of result.json — by
	// definition equal to the bundle's recorded sat.Stats.
	Solver flight.SolverStats `json:"solver"`
	// XorShare is the fraction of propagations handled by the native
	// GF(2) XOR layer (0 on pure-CNF runs).
	XorShare float64 `json:"xorShare"`
	// DIPs lists every SAT-attack iteration across all trials in record
	// order, with per-iteration counter deltas and difficulty scores.
	DIPs []DIP `json:"dips,omitempty"`
	// Search is the live-captured telemetry (anatomy.json); nil on
	// bundles recorded without the capture.
	Search *flight.AnatomyDoc `json:"search,omitempty"`
}

// Stage is one row of the wall-time split.
type Stage struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
	// Share is the fraction of TotalSeconds (0 when TotalSeconds is 0).
	Share    float64           `json:"share"`
	Calls    int               `json:"calls"`
	Counters map[string]uint64 `json:"counters,omitempty"`
}

// DIP is one SAT-attack iteration's attribution.
type DIP struct {
	Trial     int     `json:"trial"`
	Iteration int     `json:"iteration"` // 1-based within the trial
	SolveMS   float64 `json:"solveMS"`
	// Delta is the solver counter growth this iteration caused (the
	// difference of consecutive cumulative snapshots; the first iteration
	// of each trial differences against zero — each trial has a fresh
	// solver).
	Delta flight.SolverStats `json:"delta"`
	// Difficulty scores the iteration's search effort (see Difficulty).
	Difficulty float64 `json:"difficulty"`
}

// Difficulty scores one iteration's solver work machine-independently:
// conflicts dominate (each is a full analyze/backjump cycle), and
// propagations add fine grain at 1/1024 weight so conflict-free but
// propagation-heavy iterations still register. Defined in DESIGN.md §3k;
// comparable across hosts because no wall time enters.
func Difficulty(d flight.SolverStats) float64 {
	return float64(d.Conflicts) + float64(d.Propagations)/1024
}

// Derive computes the offline attribution of a loaded bundle from its
// trace spans. It never fails: missing spans yield a single "other" stage
// covering the whole wall time, and an empty DIP transcript yields no DIP
// rows. Attach live telemetry (flight.ReadAnatomy) to Report.Search
// separately, or use FromDir which does both.
func Derive(b *flight.Bundle, spans []trace.SpanRecord) *Report {
	r := &Report{
		Dir:          b.Dir,
		TotalSeconds: b.Result.ElapsedSeconds,
	}
	for _, t := range b.Result.Trials {
		r.Solver = addStats(r.Solver, t.Solver)
	}
	if r.Solver.Propagations > 0 {
		r.XorShare = float64(r.Solver.XorPropagations) / float64(r.Solver.Propagations)
	}
	r.Stages = stageSplit(spans, r.TotalSeconds)

	// Per-DIP deltas: dips.jsonl snapshots are cumulative within a trial
	// (fresh solver per trial), so consecutive differences attribute the
	// growth to each iteration.
	prev := map[int]flight.SolverStats{}
	for _, d := range b.DIPs {
		delta := subStats(d.Solver, prev[d.Trial])
		prev[d.Trial] = d.Solver
		r.DIPs = append(r.DIPs, DIP{
			Trial:      d.Trial,
			Iteration:  d.Iteration,
			SolveMS:    d.SolveMS,
			Delta:      delta,
			Difficulty: Difficulty(delta),
		})
	}
	return r
}

// FromDir loads a bundle and derives its full report, merging the live
// anatomy.json telemetry when the bundle has one.
func FromDir(dir string) (*Report, error) {
	b, err := flight.Open(dir)
	if err != nil {
		return nil, err
	}
	spans, err := flight.ReadTrace(dir)
	if err != nil {
		return nil, err
	}
	r := Derive(b, spans)
	if r.Search, err = flight.ReadAnatomy(dir); err != nil {
		return nil, err
	}
	return r, nil
}

// Hardest returns the n highest-difficulty DIPs, hardest first (ties
// break on record order, so the result is deterministic).
func (r *Report) Hardest(n int) []DIP {
	idx := make([]int, len(r.DIPs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return r.DIPs[idx[a]].Difficulty > r.DIPs[idx[b]].Difficulty
	})
	if n > len(idx) {
		n = len(idx)
	}
	out := make([]DIP, n)
	for i := 0; i < n; i++ {
		out[i] = r.DIPs[idx[i]]
	}
	return out
}

// HottestStage returns the stage with the largest wall-time share
// (including "other"); the zero Stage when the report is empty.
func (r *Report) HottestStage() Stage {
	var hot Stage
	for _, s := range r.Stages {
		if s.Seconds > hot.Seconds {
			hot = s
		}
	}
	return hot
}

// StageSeconds returns the named stage's seconds (0 when absent).
func (r *Report) StageSeconds(name string) float64 {
	for _, s := range r.Stages {
		if s.Name == name {
			return s.Seconds
		}
	}
	return 0
}

// stageSplit aggregates spans into the Fig. 3 stage rows plus the exact
// "other" residual so the rows sum to total.
func stageSplit(spans []trace.SpanRecord, total float64) []Stage {
	known := map[string]bool{}
	for _, name := range report.FigStages {
		known[name] = true
	}
	agg := map[string]*Stage{}
	for _, sp := range spans {
		name := sp.Name
		if !known[name] {
			name = "other"
		}
		s, ok := agg[name]
		if !ok {
			s = &Stage{Name: name, Counters: map[string]uint64{}}
			agg[name] = s
		}
		s.Calls++
		s.Seconds += sp.Duration.Seconds()
		for k, v := range sp.Counters {
			s.Counters[k] += v
		}
	}
	var out []Stage
	spanned := 0.0
	for _, name := range report.FigStages {
		if s, ok := agg[name]; ok {
			spanned += s.Seconds
			out = append(out, *s)
		}
	}
	other := Stage{Name: "other", Counters: map[string]uint64{}}
	if s, ok := agg["other"]; ok {
		other = *s
		spanned += s.Seconds
	}
	// The residual absorbs un-spanned time (lock build, fabrication,
	// recorder I/O); computing it by subtraction makes the rows sum to the
	// recorded wall time exactly.
	other.Seconds += total - spanned
	out = append(out, other)
	if total > 0 {
		for i := range out {
			out[i].Share = out[i].Seconds / total
		}
	}
	return out
}

func addStats(a, b flight.SolverStats) flight.SolverStats {
	return flight.SolverStats{
		Decisions:        a.Decisions + b.Decisions,
		Propagations:     a.Propagations + b.Propagations,
		Conflicts:        a.Conflicts + b.Conflicts,
		Restarts:         a.Restarts + b.Restarts,
		Learnt:           a.Learnt + b.Learnt,
		Removed:          a.Removed + b.Removed,
		XorPropagations:  a.XorPropagations + b.XorPropagations,
		XorConflicts:     a.XorConflicts + b.XorConflicts,
		SimplifyCalls:    a.SimplifyCalls + b.SimplifyCalls,
		SimplifyRemoved:  a.SimplifyRemoved + b.SimplifyRemoved,
		SimplifyStrength: a.SimplifyStrength + b.SimplifyStrength,
	}
}

// subStats differences cumulative snapshots; counters are monotone within
// a trial, so saturating subtraction only guards damaged inputs.
func subStats(cur, prev flight.SolverStats) flight.SolverStats {
	sub := func(a, b uint64) uint64 {
		if a < b {
			return 0
		}
		return a - b
	}
	return flight.SolverStats{
		Decisions:        sub(cur.Decisions, prev.Decisions),
		Propagations:     sub(cur.Propagations, prev.Propagations),
		Conflicts:        sub(cur.Conflicts, prev.Conflicts),
		Restarts:         sub(cur.Restarts, prev.Restarts),
		Learnt:           sub(cur.Learnt, prev.Learnt),
		Removed:          sub(cur.Removed, prev.Removed),
		XorPropagations:  sub(cur.XorPropagations, prev.XorPropagations),
		XorConflicts:     sub(cur.XorConflicts, prev.XorConflicts),
		SimplifyCalls:    sub(cur.SimplifyCalls, prev.SimplifyCalls),
		SimplifyRemoved:  sub(cur.SimplifyRemoved, prev.SimplifyRemoved),
		SimplifyStrength: sub(cur.SimplifyStrength, prev.SimplifyStrength),
	}
}
