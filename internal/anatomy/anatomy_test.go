package anatomy

import (
	"math"
	"testing"
	"time"

	"dynunlock/internal/flight"
	"dynunlock/internal/sat"
	"dynunlock/internal/trace"
)

const committedBundle = "../../bench/bundles/table2_parallel1/table2_s5378"

// TestDeriveCommittedBundleInvariants pins the two acceptance invariants of
// the attribution layer on a committed (pre-anatomy, v1-era) bundle: the
// stage rows sum exactly to the recorded wall time, and the solver counter
// totals equal the sum of result.json's per-trial counters.
func TestDeriveCommittedBundleInvariants(t *testing.T) {
	r, err := FromDir(committedBundle)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalSeconds <= 0 {
		t.Fatalf("committed bundle reports %v total seconds", r.TotalSeconds)
	}
	var sum float64
	for _, s := range r.Stages {
		sum += s.Seconds
	}
	if math.Abs(sum-r.TotalSeconds) > 1e-9 {
		t.Errorf("stage seconds sum %v, want recorded wall time %v", sum, r.TotalSeconds)
	}
	if last := r.Stages[len(r.Stages)-1]; last.Name != "other" {
		t.Errorf("last stage is %q, want the trailing \"other\" residual", last.Name)
	}

	b, err := flight.Open(committedBundle)
	if err != nil {
		t.Fatal(err)
	}
	var want flight.SolverStats
	for _, tr := range b.Result.Trials {
		want = addStats(want, tr.Solver)
	}
	if r.Solver != want {
		t.Errorf("report solver totals %+v, want result.json sum %+v", r.Solver, want)
	}

	// dips.jsonl snapshots are cumulative per trial: the summed deltas must
	// reproduce each trial's last snapshot, and never exceed the trial total
	// (extraction/enumeration work lands after the last DIP).
	lastSnap := map[int]flight.SolverStats{}
	for _, d := range b.DIPs {
		lastSnap[d.Trial] = d.Solver
	}
	deltaSum := map[int]flight.SolverStats{}
	for _, d := range r.DIPs {
		deltaSum[d.Trial] = addStats(deltaSum[d.Trial], d.Delta)
	}
	for trial, snap := range lastSnap {
		if deltaSum[trial] != snap {
			t.Errorf("trial %d: DIP deltas sum to %+v, want last snapshot %+v", trial, deltaSum[trial], snap)
		}
	}
	if len(r.DIPs) != len(b.DIPs) {
		t.Errorf("report has %d DIP rows, bundle transcript has %d", len(r.DIPs), len(b.DIPs))
	}

	// A v1-v3 bundle carries no live capture.
	if r.Search != nil {
		t.Errorf("committed pre-v4 bundle unexpectedly has search telemetry: %+v", r.Search)
	}
}

// TestStageSplitResidual checks the exact-residual construction on a
// synthetic span set: known Fig. 3 spans keep their time, unknown spans fold
// into "other", and "other" additionally absorbs the un-spanned remainder.
func TestStageSplitResidual(t *testing.T) {
	spans := []trace.SpanRecord{
		{Name: "encode", Duration: secs(0.25)},
		{Name: "dip_loop", Duration: secs(1.5)},
		{Name: "encode", Duration: secs(0.25)},
		{Name: "fabricate", Duration: secs(0.1)}, // not a Fig. 3 stage
	}
	stages := stageSplit(spans, 3.0)
	bySec := map[string]float64{}
	byCalls := map[string]int{}
	var sum float64
	for _, s := range stages {
		bySec[s.Name] = s.Seconds
		byCalls[s.Name] = s.Calls
		sum += s.Seconds
	}
	if math.Abs(sum-3.0) > 1e-12 {
		t.Errorf("stages sum to %v, want 3.0", sum)
	}
	if math.Abs(bySec["encode"]-0.5) > 1e-12 || byCalls["encode"] != 2 {
		t.Errorf("encode = %vs over %d calls, want 0.5s over 2", bySec["encode"], byCalls["encode"])
	}
	// other = 0.1s spanned (fabricate) + 0.9s un-spanned residual.
	if math.Abs(bySec["other"]-1.0) > 1e-12 {
		t.Errorf("other = %vs, want 1.0 (0.1 folded + 0.9 residual)", bySec["other"])
	}
	if stages[len(stages)-1].Name != "other" {
		t.Errorf("other is not the last stage: %+v", stages)
	}
}

// TestCaptureSegmentsAtDIPBoundaries drives the live capture by hand and
// checks segmentation: per-DIP segments carry only their window's samples,
// trial-wide totals include the post-DIP tail (extraction/enumeration), and
// LBD samples land in the right buckets.
func TestCaptureSegmentsAtDIPBoundaries(t *testing.T) {
	c := NewCapture()

	// Observations before any trial are dropped, not crashed on.
	c.SearchLearnt(0, 5, 10)
	c.SearchRestart(0, 3)

	c.StartTrial(1)
	c.SearchLearnt(0, 2, 4)  // glue clause → bucket <=2
	c.SearchLearnt(0, 7, 12) // → bucket <=8
	c.SearchRestart(0, 100)
	c.ObserveDIP(1, nil, nil, sat.Stats{}, 0)
	c.SearchLearnt(0, 100, 50) // beyond the last bound → overflow bucket
	c.ObserveDIP(2, nil, nil, sat.Stats{}, 0)
	c.SearchLearnt(0, 3, 3) // after the last DIP: trial-wide only
	c.SearchRestart(0, 7)
	c.EndTrial()

	doc := c.Doc()
	if doc.FormatVersion != flight.AnatomyDocVersion {
		t.Errorf("doc version %d, want %d", doc.FormatVersion, flight.AnatomyDocVersion)
	}
	if len(doc.Trials) != 1 {
		t.Fatalf("doc has %d trials, want 1", len(doc.Trials))
	}
	tr := doc.Trials[0]
	if tr.Trial != 1 {
		t.Errorf("trial number %d, want 1", tr.Trial)
	}
	if tr.LBD.Samples != 4 || tr.Restarts != 2 || tr.RestartConflicts != 107 {
		t.Errorf("trial totals samples=%d restarts=%d restartConflicts=%d, want 4/2/107",
			tr.LBD.Samples, tr.Restarts, tr.RestartConflicts)
	}
	if got, want := tr.LBD.MeanLBD(), float64(2+7+100+3)/4; got != want {
		t.Errorf("mean LBD %v, want %v", got, want)
	}
	if len(tr.DIPs) != 2 {
		t.Fatalf("trial has %d DIP segments, want 2", len(tr.DIPs))
	}
	d1, d2 := tr.DIPs[0], tr.DIPs[1]
	if d1.Iteration != 1 || d1.LBD.Samples != 2 || d1.Restarts != 1 {
		t.Errorf("DIP 1 segment = %+v, want iteration 1, 2 samples, 1 restart", d1)
	}
	if d2.Iteration != 2 || d2.LBD.Samples != 1 || d2.Restarts != 0 {
		t.Errorf("DIP 2 segment = %+v, want iteration 2, 1 sample, 0 restarts", d2)
	}

	// Bucket placement: bounds are {1,2,3,4,6,8,...}; lbd=2 → index 1,
	// lbd=7 → index 5 (<=8), lbd=100 → overflow (last index).
	if len(d1.LBD.Counts) != len(LBDBounds)+1 {
		t.Fatalf("histogram has %d buckets, want %d", len(d1.LBD.Counts), len(LBDBounds)+1)
	}
	if d1.LBD.Counts[1] != 1 || d1.LBD.Counts[5] != 1 {
		t.Errorf("DIP 1 bucket counts %v: want lbd=2 in bucket 1 and lbd=7 in bucket 5", d1.LBD.Counts)
	}
	if d2.LBD.Counts[len(LBDBounds)] != 1 {
		t.Errorf("DIP 2 bucket counts %v: want lbd=100 in the overflow bucket", d2.LBD.Counts)
	}
}

// TestCompareNamesSeededRegression seeds a known regression between two
// synthetic reports and checks Compare attributes it: the stage with the
// largest absolute wall-time growth and the counter with the largest
// relative growth are named.
func TestCompareNamesSeededRegression(t *testing.T) {
	a := &Report{
		TotalSeconds: 2,
		Stages: []Stage{
			{Name: "encode", Seconds: 0.5},
			{Name: "dip_loop", Seconds: 1.0},
			{Name: "other", Seconds: 0.5},
		},
		Solver: flight.SolverStats{Conflicts: 100, Propagations: 1000, Restarts: 2},
	}
	b := &Report{
		TotalSeconds: 4,
		Stages: []Stage{
			{Name: "encode", Seconds: 0.4}, // improved
			{Name: "dip_loop", Seconds: 3.0},
			{Name: "other", Seconds: 0.6},
		},
		Solver: flight.SolverStats{Conflicts: 150, Propagations: 8000, Restarts: 2},
	}
	d := Compare(a, b)
	if d.RegressedStage != "dip_loop" {
		t.Errorf("regressed stage %q, want dip_loop", d.RegressedStage)
	}
	if math.Abs(d.RegressedStageSeconds-2.0) > 1e-12 {
		t.Errorf("regressed stage growth %v, want 2.0", d.RegressedStageSeconds)
	}
	if d.RegressedCounter != "propagations" {
		t.Errorf("regressed counter %q, want propagations (8x vs conflicts 1.5x)", d.RegressedCounter)
	}
	if d.RegressedCounterRatio != 8 {
		t.Errorf("regressed counter ratio %v, want 8", d.RegressedCounterRatio)
	}

	// The reverse comparison is an improvement in dip_loop but a regression
	// in encode — the only stage that grew.
	rev := Compare(b, a)
	if rev.RegressedStage != "encode" {
		t.Errorf("reverse regressed stage %q, want encode", rev.RegressedStage)
	}
	if rev.RegressedCounter != "" {
		t.Errorf("reverse regressed counter %q, want none (nothing grew)", rev.RegressedCounter)
	}

	// Identical reports regress nothing.
	same := Compare(a, a)
	if same.RegressedStage != "" || same.RegressedCounter != "" {
		t.Errorf("self-comparison regressed %q / %q, want neither", same.RegressedStage, same.RegressedCounter)
	}
}

// TestCompareCounterFromZero pins the B-when-A-is-zero ratio convention:
// a series appearing from nothing (e.g. XOR propagations after switching
// encodings) ranks by its absolute value.
func TestCompareCounterFromZero(t *testing.T) {
	a := &Report{Solver: flight.SolverStats{Conflicts: 100}}
	b := &Report{Solver: flight.SolverStats{Conflicts: 100, XorPropagations: 5000}}
	d := Compare(a, b)
	if d.RegressedCounter != "xor_propagations" || d.RegressedCounterRatio != 5000 {
		t.Errorf("got %q ratio %v, want xor_propagations ratio 5000 (B when A==0)",
			d.RegressedCounter, d.RegressedCounterRatio)
	}
}

// TestHardestDeterministic checks the top-N selection is stable: ordered by
// difficulty descending with ties kept in record order.
func TestHardestDeterministic(t *testing.T) {
	r := &Report{DIPs: []DIP{
		{Trial: 1, Iteration: 1, Difficulty: 5},
		{Trial: 1, Iteration: 2, Difficulty: 9},
		{Trial: 2, Iteration: 1, Difficulty: 9},
		{Trial: 2, Iteration: 2, Difficulty: 1},
	}}
	got := r.Hardest(3)
	if len(got) != 3 {
		t.Fatalf("Hardest(3) returned %d rows", len(got))
	}
	// The two 9s tie: record order keeps trial 1 first.
	if got[0].Trial != 1 || got[0].Iteration != 2 || got[1].Trial != 2 || got[1].Iteration != 1 {
		t.Errorf("tie broken out of record order: %+v", got[:2])
	}
	if got[2].Difficulty != 5 {
		t.Errorf("third row difficulty %v, want 5", got[2].Difficulty)
	}
	if over := r.Hardest(10); len(over) != 4 {
		t.Errorf("Hardest(10) returned %d rows, want all 4", len(over))
	}
}

// TestDifficultyWeighting pins the score definition from DESIGN.md §3k.
func TestDifficultyWeighting(t *testing.T) {
	d := Difficulty(flight.SolverStats{Conflicts: 10, Propagations: 2048})
	if d != 12 {
		t.Errorf("Difficulty(10 conflicts, 2048 props) = %v, want 12", d)
	}
}

func secs(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
