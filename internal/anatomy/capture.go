package anatomy

import (
	"sync"
	"time"

	"dynunlock/internal/flight"
	"dynunlock/internal/sat"
)

// LBDBounds are the capture's LBD histogram bucket upper bounds: glue
// clauses (<=2) up to the long tail XOR-heavy instances produce. They
// mirror the live metrics histogram so the two views bin identically.
var LBDBounds = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}

// Capture accumulates live solver search telemetry for one experiment:
// sampled learnt-clause LBD/size observations and restarts, segmented at
// DIP boundaries. It implements satattack.SearchObserver (SearchLearnt,
// SearchRestart), and ObserveDIP matches satattack.DIPObserver so it
// chains onto the existing OnDIP hook. All methods are mutex-serialized:
// portfolio instances report concurrently and the capture aggregates
// across them.
//
// Usage per trial: StartTrial, attack (hooks fire), EndTrial. Doc seals
// the accumulated trials into the anatomy.json document.
type Capture struct {
	mu     sync.Mutex
	trials []flight.TrialAnatomy
	cur    *trialCapture
}

// trialCapture is the in-flight state of one trial: trial-wide totals
// plus the open segment since the last DIP boundary.
type trialCapture struct {
	rec flight.TrialAnatomy
	seg flight.DIPSearchRecord
}

// NewCapture returns an empty capture.
func NewCapture() *Capture { return &Capture{} }

// StartTrial opens a trial segment; an unfinished previous trial is
// sealed first (defensive — callers pair StartTrial/EndTrial).
func (c *Capture) StartTrial(trial int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sealLocked()
	c.cur = &trialCapture{rec: flight.TrialAnatomy{Trial: trial}}
}

// EndTrial seals the in-flight trial into the document.
func (c *Capture) EndTrial() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sealLocked()
}

func (c *Capture) sealLocked() {
	if c.cur == nil {
		return
	}
	// Search work after the last DIP boundary (extraction, enumeration)
	// stays in the trial-wide totals; the open segment is not a DIP.
	c.trials = append(c.trials, c.cur.rec)
	c.cur = nil
}

// SearchLearnt implements satattack.SearchObserver: one sampled learnt
// clause. Instances aggregate together.
func (c *Capture) SearchLearnt(_ int, lbd int32, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur == nil {
		return
	}
	observeLBD(&c.cur.rec.LBD, lbd, size)
	observeLBD(&c.cur.seg.LBD, lbd, size)
}

// SearchRestart implements satattack.SearchObserver: one solver restart
// with its segment conflict count.
func (c *Capture) SearchRestart(_ int, conflicts uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur == nil {
		return
	}
	c.cur.rec.Restarts++
	c.cur.rec.RestartConflicts += conflicts
	c.cur.seg.Restarts++
}

// ObserveDIP matches satattack.DIPObserver: a DIP boundary seals the open
// telemetry segment as that iteration's record.
func (c *Capture) ObserveDIP(iteration int, _, _ []bool, _ sat.Stats, _ time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur == nil {
		return
	}
	seg := c.cur.seg
	seg.Iteration = iteration
	c.cur.rec.DIPs = append(c.cur.rec.DIPs, seg)
	c.cur.seg = flight.DIPSearchRecord{}
}

// Live snapshots the in-flight trial's cumulative telemetry for live
// publication: mean sampled LBD, sample count, and restarts so far.
// Zeroes outside a trial.
func (c *Capture) Live() (meanLBD float64, samples, restarts uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cur == nil {
		return 0, 0, 0
	}
	return c.cur.rec.LBD.MeanLBD(), c.cur.rec.LBD.Samples, c.cur.rec.Restarts
}

// Doc seals any in-flight trial and returns the anatomy.json document.
func (c *Capture) Doc() *flight.AnatomyDoc {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sealLocked()
	return &flight.AnatomyDoc{
		FormatVersion: flight.AnatomyDocVersion,
		LBDBounds:     append([]float64(nil), LBDBounds...),
		Trials:        append([]flight.TrialAnatomy(nil), c.trials...),
	}
}

// observeLBD bins one sample into a fixed-bucket LBD histogram
// (allocating the count slice lazily so empty histograms serialize
// compactly).
func observeLBD(h *flight.LBDHist, lbd int32, size int) {
	if h.Counts == nil {
		h.Counts = make([]uint64, len(LBDBounds)+1)
	}
	i := 0
	for i < len(LBDBounds) && float64(lbd) > LBDBounds[i] {
		i++
	}
	h.Counts[i]++
	h.Samples++
	h.SumLBD += uint64(lbd)
	h.SumSize += uint64(size)
}
