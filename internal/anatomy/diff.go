package anatomy

import "dynunlock/internal/flight"

// CounterNames lists the machine-independent solver series a Diff ranks,
// in severity-report order.
var CounterNames = []string{
	"conflicts", "propagations", "decisions", "restarts", "learnt",
	"xor_propagations", "xor_conflicts",
}

// Diff attributes a performance change between two runs of the same
// configuration: per-stage wall-time movement and per-series solver
// counter movement, with the worst regression of each kind named.
type Diff struct {
	Stages   []StageDelta
	Counters []CounterDelta
	// RegressedStage names the stage whose wall time grew the most from A
	// to B ("" when nothing grew); RegressedStageSeconds is that growth.
	RegressedStage        string
	RegressedStageSeconds float64
	// RegressedCounter names the solver series with the largest relative
	// growth ("" when nothing grew); RegressedCounterRatio is B/A for it
	// (B when A is zero).
	RegressedCounter      string
	RegressedCounterRatio float64
}

// StageDelta is one stage's wall-time movement.
type StageDelta struct {
	Name     string
	ASeconds float64
	BSeconds float64
}

// CounterDelta is one solver series' movement.
type CounterDelta struct {
	Name string
	A    uint64
	B    uint64
}

// Compare attributes the change from report a to report b. Stage rows
// follow a's order with b-only stages appended; counter rows follow
// CounterNames.
func Compare(a, b *Report) *Diff {
	d := &Diff{}
	seen := map[string]bool{}
	for _, s := range a.Stages {
		seen[s.Name] = true
		d.Stages = append(d.Stages, StageDelta{Name: s.Name, ASeconds: s.Seconds, BSeconds: b.StageSeconds(s.Name)})
	}
	for _, s := range b.Stages {
		if !seen[s.Name] {
			d.Stages = append(d.Stages, StageDelta{Name: s.Name, BSeconds: s.Seconds})
		}
	}
	for _, sd := range d.Stages {
		if grow := sd.BSeconds - sd.ASeconds; grow > d.RegressedStageSeconds {
			d.RegressedStage = sd.Name
			d.RegressedStageSeconds = grow
		}
	}
	av, bv := counterValues(a.Solver), counterValues(b.Solver)
	for i, name := range CounterNames {
		cd := CounterDelta{Name: name, A: av[i], B: bv[i]}
		d.Counters = append(d.Counters, cd)
		if cd.B <= cd.A {
			continue
		}
		ratio := float64(cd.B)
		if cd.A > 0 {
			ratio = float64(cd.B) / float64(cd.A)
		}
		if ratio > d.RegressedCounterRatio {
			d.RegressedCounter = name
			d.RegressedCounterRatio = ratio
		}
	}
	return d
}

// counterValues orders a stats snapshot like CounterNames.
func counterValues(s flight.SolverStats) [7]uint64 {
	return [7]uint64{
		s.Conflicts, s.Propagations, s.Decisions, s.Restarts, s.Learnt,
		s.XorPropagations, s.XorConflicts,
	}
}
