// Package atpg generates test patterns for single stuck-at faults with a
// SAT formulation: a miter between the fault-free circuit and a copy with
// the faulty signal forced, satisfied exactly by detecting patterns.
// Redundant (untestable) faults are proven so by UNSAT.
//
// Together with internal/fault it provides the workload that motivates
// scan design — and therefore scan locking and this paper's attack: a
// tester without working scan access cannot apply these patterns.
package atpg

import (
	"fmt"
	"math/rand"

	"dynunlock/internal/cnf"
	"dynunlock/internal/encode"
	"dynunlock/internal/fault"
	"dynunlock/internal/netlist"
	"dynunlock/internal/sat"
)

// Result classifies one fault after test generation.
type Result int8

// Fault classifications.
const (
	// Detected: a test pattern was found.
	Detected Result = iota
	// Redundant: proven untestable (the fault never changes any output).
	Redundant
	// Aborted: the solver budget expired before a verdict.
	Aborted
)

// String names the classification.
func (r Result) String() string {
	switch r {
	case Detected:
		return "detected"
	case Redundant:
		return "redundant"
	default:
		return "aborted"
	}
}

// GenerateTest finds an input pattern detecting fault f on view v, or
// proves the fault redundant. conflictBudget 0 means unlimited.
func GenerateTest(v *netlist.CombView, f fault.Fault, conflictBudget int64) ([]bool, Result, error) {
	s := sat.New()
	s.ConflictBudget = conflictBudget
	e := encode.New(s)
	in := e.FreshVec(len(v.Inputs))
	good := e.EncodeComb(v, in)
	bad, err := encodeFaulty(e, v, in, f)
	if err != nil {
		return nil, Aborted, err
	}
	act := e.Miter(good, bad)
	switch s.Solve(act) {
	case sat.Sat:
		return e.ModelBits(in), Detected, nil
	case sat.Unsat:
		return nil, Redundant, nil
	default:
		return nil, Aborted, nil
	}
}

// encodeFaulty encodes a copy of v with f.Signal replaced by its stuck
// value everywhere it is read.
func encodeFaulty(e *encode.Encoder, v *netlist.CombView, in []cnf.Lit, f fault.Fault) ([]cnf.Lit, error) {
	n := v.N
	lits := make([]cnf.Lit, n.NumSignals())
	have := make([]bool, n.NumSignals())
	for i, sig := range v.Inputs {
		lits[sig] = in[i]
		have[sig] = true
	}
	for id := 0; id < n.NumSignals(); id++ {
		switch n.Type(netlist.SignalID(id)) {
		case netlist.Const0:
			lits[id] = e.False()
			have[id] = true
		case netlist.Const1:
			lits[id] = e.True()
			have[id] = true
		}
	}
	force := func(id netlist.SignalID) {
		lits[id] = e.Const(f.StuckAt)
		have[id] = true
	}
	if have[f.Signal] {
		force(f.Signal)
	}
	for _, id := range v.Order {
		if id == f.Signal {
			force(id)
			continue
		}
		g := n.Gate(id)
		fan := make([]cnf.Lit, len(g.Fanin))
		for i, fi := range g.Fanin {
			if !have[fi] {
				return nil, fmt.Errorf("atpg: signal %q unresolved", n.SignalName(fi))
			}
			fan[i] = lits[fi]
		}
		lits[id] = encodeGate(e, g.Type, fan)
		have[id] = true
	}
	out := make([]cnf.Lit, len(v.Outputs))
	for i, sig := range v.Outputs {
		out[i] = lits[sig]
	}
	return out, nil
}

func encodeGate(e *encode.Encoder, t netlist.GateType, fan []cnf.Lit) cnf.Lit {
	switch t {
	case netlist.Buf:
		return fan[0]
	case netlist.Not:
		return fan[0].Not()
	case netlist.And:
		return e.And(fan...)
	case netlist.Nand:
		return e.And(fan...).Not()
	case netlist.Or:
		return e.Or(fan...)
	case netlist.Nor:
		return e.Or(fan...).Not()
	case netlist.Xor:
		return e.XorN(fan...)
	case netlist.Xnor:
		return e.XorN(fan...).Not()
	case netlist.Mux:
		return e.Mux(fan[0], fan[1], fan[2])
	default:
		panic(fmt.Sprintf("atpg: cannot encode %v", t))
	}
}

// Options tunes a pattern-generation campaign.
type Options struct {
	// RandomPatterns seeds the campaign with this many random patterns
	// before deterministic generation (0 selects 64). Random-pattern fault
	// dropping is what makes full campaigns cheap.
	RandomPatterns int
	// ConflictBudget bounds each SAT call (0 = unlimited).
	ConflictBudget int64
	// Seed drives random-pattern generation.
	Seed int64
}

// CampaignResult summarizes test generation for a fault universe.
type CampaignResult struct {
	Patterns   [][]bool
	Detected   int
	Redundant  int
	Aborted    int
	Total      int
	RandomHits int // faults dropped by the random phase
}

// Coverage returns detected / (total - redundant): redundant faults are
// untestable by definition and excluded, per standard practice.
func (c CampaignResult) Coverage() float64 {
	testable := c.Total - c.Redundant
	if testable <= 0 {
		return 1
	}
	return float64(c.Detected) / float64(testable)
}

// GeneratePatterns runs a full campaign: random patterns with fault
// dropping, then SAT-based generation for the survivors.
func GeneratePatterns(v *netlist.CombView, faults []fault.Fault, opts Options) CampaignResult {
	if opts.RandomPatterns == 0 {
		opts.RandomPatterns = 64
	}
	rng := rand.New(rand.NewSource(opts.Seed + 1))
	res := CampaignResult{Total: len(faults)}

	var patterns [][]bool
	for p := 0; p < opts.RandomPatterns; p++ {
		pat := make([]bool, len(v.Inputs))
		for i := range pat {
			pat[i] = rng.Intn(2) == 1
		}
		patterns = append(patterns, pat)
	}
	camp := fault.Campaign(v, faults, patterns)
	res.RandomHits = camp.Detected
	res.Detected = camp.Detected

	sim := fault.NewSimulator(v)
	remaining := camp.Undetected
	for len(remaining) > 0 {
		f := remaining[0]
		remaining = remaining[1:]
		pat, verdict, err := GenerateTest(v, f, opts.ConflictBudget)
		if err != nil {
			res.Aborted++
			continue
		}
		switch verdict {
		case Redundant:
			res.Redundant++
		case Aborted:
			res.Aborted++
		case Detected:
			res.Detected++
			patterns = append(patterns, pat)
			// Fault dropping: the new pattern may detect later survivors.
			packed := fault.PackPatterns([][]bool{pat}, len(v.Inputs))
			kept := remaining[:0]
			for _, g := range remaining {
				if sim.Detects(g, packed)&1 == 1 {
					res.Detected++
				} else {
					kept = append(kept, g)
				}
			}
			remaining = kept
		}
	}
	res.Patterns = patterns
	return res
}
