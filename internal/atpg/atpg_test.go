package atpg

import (
	"strings"
	"testing"

	"dynunlock/internal/bench"
	"dynunlock/internal/fault"
	"dynunlock/internal/netlist"
)

func view(t testing.TB, src string) *netlist.CombView {
	t.Helper()
	n, err := netlist.ParseBench(strings.NewReader(src), "t")
	if err != nil {
		t.Fatal(err)
	}
	v, err := netlist.NewCombView(n)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestGenerateTestAND(t *testing.T) {
	v := view(t, `
INPUT(a)
INPUT(b)
OUTPUT(z)
z = AND(a, b)
`)
	z, _ := v.N.Lookup("z")
	pat, verdict, err := GenerateTest(v, fault.Fault{Signal: z, StuckAt: false}, 0)
	if err != nil || verdict != Detected {
		t.Fatalf("verdict %v err %v", verdict, err)
	}
	// Only (1,1) detects z/s-a-0.
	if !pat[0] || !pat[1] {
		t.Fatalf("pattern %v does not detect z/s-a-0", pat)
	}
	// Cross-validate with the fault simulator.
	s := fault.NewSimulator(v)
	if s.Detects(fault.Fault{Signal: z, StuckAt: false}, fault.PackPatterns([][]bool{pat}, 2))&1 != 1 {
		t.Fatal("fault simulator disagrees with ATPG")
	}
}

func TestGenerateTestRedundant(t *testing.T) {
	v := view(t, `
INPUT(a)
OUTPUT(z)
na = NOT(a)
z = OR(a, na)
`)
	z, _ := v.N.Lookup("z")
	_, verdict, err := GenerateTest(v, fault.Fault{Signal: z, StuckAt: true}, 0)
	if err != nil || verdict != Redundant {
		t.Fatalf("verdict %v err %v, want redundant", verdict, err)
	}
	if verdict.String() != "redundant" {
		t.Fatal("Result.String wrong")
	}
}

// Every ATPG-generated pattern must be confirmed by the independent fault
// simulator, on a generated sequential circuit's combinational view.
func TestCampaignCrossValidated(t *testing.T) {
	n, err := bench.Generate(bench.GenConfig{Name: "atpg", PIs: 6, POs: 3, FFs: 10, Gates: 80, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	v, err := netlist.NewCombView(n)
	if err != nil {
		t.Fatal(err)
	}
	faults := fault.AllFaults(v)
	res := GeneratePatterns(v, faults, Options{RandomPatterns: 32, Seed: 3})
	if res.Aborted != 0 {
		t.Fatalf("%d aborted faults", res.Aborted)
	}
	if res.Coverage() < 0.999 {
		t.Fatalf("coverage %.3f, want ~1 (SAT ATPG is complete)", res.Coverage())
	}
	if res.Detected+res.Redundant != res.Total {
		t.Fatalf("accounting: %+v", res)
	}
	// The final pattern set must reach the same coverage under pure fault
	// simulation.
	camp := fault.Campaign(v, faults, res.Patterns)
	if camp.Detected < res.Detected {
		t.Fatalf("fault simulation confirms only %d of %d", camp.Detected, res.Detected)
	}
	if res.RandomHits == 0 {
		t.Fatal("random phase detected nothing (suspicious)")
	}
}

func TestCoverageAllRedundant(t *testing.T) {
	c := CampaignResult{Total: 2, Redundant: 2}
	if c.Coverage() != 1 {
		t.Fatal("all-redundant coverage must be 1")
	}
}

func TestGenerateTestInputFault(t *testing.T) {
	v := view(t, `
INPUT(a)
INPUT(b)
OUTPUT(z)
z = XOR(a, b)
`)
	a, _ := v.N.Lookup("a")
	pat, verdict, err := GenerateTest(v, fault.Fault{Signal: a, StuckAt: true}, 0)
	if err != nil || verdict != Detected {
		t.Fatalf("verdict %v err %v", verdict, err)
	}
	if pat[0] != false {
		t.Fatalf("a/s-a-1 requires a=0, got %v", pat)
	}
}
