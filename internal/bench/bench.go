// Package bench provides the benchmark circuits for the experiments.
//
// The paper evaluates on six ISCAS-89 and four ITC-99 netlists synthesized
// with Synopsys Design Compiler. Those netlist files are not
// redistributable and the build environment is offline, so this package
// generates deterministic synthetic circuits with the same post-synthesis
// scan-flop counts the paper reports (Table II, footnote 2) and
// representative PI/PO/gate counts. The scan-obfuscation layer — and
// therefore the attack's iteration and seed-candidate behavior — depends on
// the chain length, key size, gate placement, and LFSR, not on the
// particular combinational logic, so generic random logic preserves the
// phenomena under study (see DESIGN.md §3).
package bench

import (
	"fmt"
	"math/rand"

	"dynunlock/internal/netlist"
)

// GenConfig parameterizes synthetic circuit generation.
type GenConfig struct {
	Name  string
	PIs   int
	POs   int
	FFs   int
	Gates int   // combinational gate count
	Seed  int64 // generator seed; same seed, same circuit
}

// Generate builds a random sequential netlist: a pool of 2-input gates over
// the primary inputs and flip-flop outputs, with every flip-flop's
// next-state and every primary output drawn from the pool. The result
// always validates.
func Generate(cfg GenConfig) (*netlist.Netlist, error) {
	if cfg.PIs < 1 || cfg.POs < 1 || cfg.FFs < 2 {
		return nil, fmt.Errorf("bench: need >=1 PI, >=1 PO, >=2 FFs, got %d/%d/%d", cfg.PIs, cfg.POs, cfg.FFs)
	}
	if cfg.Gates < cfg.FFs {
		cfg.Gates = 4 * cfg.FFs
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := netlist.New(cfg.Name)

	sources := make([]netlist.SignalID, 0, cfg.PIs+cfg.FFs)
	for i := 0; i < cfg.PIs; i++ {
		id, err := n.AddInput(fmt.Sprintf("pi%d", i))
		if err != nil {
			return nil, err
		}
		sources = append(sources, id)
	}
	// Flip-flops are declared first with forward-referenced D inputs so that
	// gates can read present state.
	dNames := make([]string, cfg.FFs)
	for i := 0; i < cfg.FFs; i++ {
		dNames[i] = fmt.Sprintf("d%d", i)
		d := n.Ref(dNames[i])
		q, err := n.AddDFF(fmt.Sprintf("q%d", i), d)
		if err != nil {
			return nil, err
		}
		sources = append(sources, q)
	}

	types := []netlist.GateType{
		netlist.And, netlist.Nand, netlist.Or, netlist.Nor, netlist.Xor, netlist.Xnor,
	}
	pool := append([]netlist.SignalID(nil), sources...)
	gates := make([]netlist.SignalID, 0, cfg.Gates)
	for i := 0; i < cfg.Gates; i++ {
		t := types[rng.Intn(len(types))]
		// Bias one fanin toward recent signals to get non-trivial depth.
		a := pool[rng.Intn(len(pool))]
		b := pool[len(pool)-1-rng.Intn(min(len(pool), 8+len(pool)/4))]
		if a == b {
			b = pool[rng.Intn(len(pool))]
		}
		id, err := n.AddGate(fmt.Sprintf("g%d", i), t, a, b)
		if err != nil {
			return nil, err
		}
		pool = append(pool, id)
		gates = append(gates, id)
	}

	// Next-state functions: mix state and fresh logic so that the delivered
	// scan content visibly drives the captured response. The state taps go
	// through a non-linear gate: a purely linear tap (d = g XOR q) would
	// make pairs of scan masks compensate each other exactly, a structure
	// synthesized netlists do not exhibit.
	for i := 0; i < cfg.FFs; i++ {
		src := gates[rng.Intn(len(gates))]
		q1 := sources[cfg.PIs+(i+1)%cfg.FFs]
		q2 := sources[cfg.PIs+(i+2)%cfg.FFs]
		mixT := netlist.Nand
		if i%2 == 1 {
			mixT = netlist.Nor
		}
		mix, err := n.AddGate(fmt.Sprintf("mix%d", i), mixT, q1, q2)
		if err != nil {
			return nil, err
		}
		if _, err := n.AddGate(dNames[i], netlist.Xor, src, mix); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.POs; i++ {
		n.MarkOutput(gates[rng.Intn(len(gates))])
	}
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("bench: generated netlist invalid: %w", err)
	}
	return n, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// GenerateAffine builds a purely linear sequential netlist: every
// combinational gate is XOR, XNOR, or NOT, so each flip-flop next-state and
// each primary output is an affine function of the present state and
// inputs. This is the XOR-dominated extreme of the DynUnlock threat model —
// hardware whose scan responses stay affine in the LFSR seed — and the
// reference point where GF(2)-native solving should collapse the attack to
// linear algebra (insight rank saturates, the analytic short-circuit
// fires). Layout mirrors Generate: a gate pool over PIs and flop outputs,
// next-states and outputs drawn from the pool.
func GenerateAffine(cfg GenConfig) (*netlist.Netlist, error) {
	if cfg.PIs < 1 || cfg.POs < 1 || cfg.FFs < 2 {
		return nil, fmt.Errorf("bench: need >=1 PI, >=1 PO, >=2 FFs, got %d/%d/%d", cfg.PIs, cfg.POs, cfg.FFs)
	}
	if cfg.Gates < cfg.FFs {
		cfg.Gates = 4 * cfg.FFs
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := netlist.New(cfg.Name)

	sources := make([]netlist.SignalID, 0, cfg.PIs+cfg.FFs)
	for i := 0; i < cfg.PIs; i++ {
		id, err := n.AddInput(fmt.Sprintf("pi%d", i))
		if err != nil {
			return nil, err
		}
		sources = append(sources, id)
	}
	dNames := make([]string, cfg.FFs)
	for i := 0; i < cfg.FFs; i++ {
		dNames[i] = fmt.Sprintf("d%d", i)
		d := n.Ref(dNames[i])
		q, err := n.AddDFF(fmt.Sprintf("q%d", i), d)
		if err != nil {
			return nil, err
		}
		sources = append(sources, q)
	}

	pool := append([]netlist.SignalID(nil), sources...)
	gates := make([]netlist.SignalID, 0, cfg.Gates)
	for i := 0; i < cfg.Gates; i++ {
		a := pool[rng.Intn(len(pool))]
		var (
			id  netlist.SignalID
			err error
		)
		if i%7 == 6 {
			id, err = n.AddGate(fmt.Sprintf("g%d", i), netlist.Not, a)
		} else {
			t := netlist.Xor
			if i%3 == 1 {
				t = netlist.Xnor
			}
			b := pool[len(pool)-1-rng.Intn(min(len(pool), 8+len(pool)/4))]
			if a == b {
				b = pool[rng.Intn(len(pool))]
			}
			id, err = n.AddGate(fmt.Sprintf("g%d", i), t, a, b)
		}
		if err != nil {
			return nil, err
		}
		pool = append(pool, id)
		gates = append(gates, id)
	}

	// Purely linear next-state taps: d = g XOR q. Generate deliberately
	// avoids this shape so the paper benchmarks stay non-linear; here the
	// linearity is the point under study.
	for i := 0; i < cfg.FFs; i++ {
		src := gates[rng.Intn(len(gates))]
		q := sources[cfg.PIs+(i+1)%cfg.FFs]
		if _, err := n.AddGate(dNames[i], netlist.Xor, src, q); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.POs; i++ {
		n.MarkOutput(gates[rng.Intn(len(gates))])
	}
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("bench: generated affine netlist invalid: %w", err)
	}
	return n, nil
}

// Entry describes one paper benchmark and the synthetic stand-in
// configuration used to reproduce it.
type Entry struct {
	Name  string
	Suite string // "ISCAS-89", "ITC-99", or "affine" for the linear reference core
	FFs   int    // post-synthesis scan flops, from Table II
	PIs   int
	POs   int
	Gates int
	// Affine selects the purely linear generator (GenerateAffine); the
	// entry then models XOR-dominated hardware rather than a Table II
	// netlist.
	Affine bool
}

// Table2 lists the ten benchmarks of the paper's Table II with their
// reported post-synthesis scan-flop counts.
var Table2 = []Entry{
	{Name: "s5378", Suite: "ISCAS-89", FFs: 160, PIs: 35, POs: 49, Gates: 1200},
	{Name: "s13207", Suite: "ISCAS-89", FFs: 202, PIs: 62, POs: 152, Gates: 1600},
	{Name: "s15850", Suite: "ISCAS-89", FFs: 442, PIs: 77, POs: 150, Gates: 3200},
	{Name: "s38584", Suite: "ISCAS-89", FFs: 1233, PIs: 38, POs: 304, Gates: 9000},
	{Name: "s38417", Suite: "ISCAS-89", FFs: 1564, PIs: 28, POs: 106, Gates: 11000},
	{Name: "s35932", Suite: "ISCAS-89", FFs: 1728, PIs: 35, POs: 320, Gates: 12000},
	{Name: "b20", Suite: "ITC-99", FFs: 429, PIs: 32, POs: 22, Gates: 3400},
	{Name: "b21", Suite: "ITC-99", FFs: 429, PIs: 32, POs: 22, Gates: 3400},
	{Name: "b22", Suite: "ITC-99", FFs: 611, PIs: 32, POs: 22, Gates: 4800},
	{Name: "b17", Suite: "ITC-99", FFs: 864, PIs: 37, POs: 97, Gates: 6800},
}

// AffineRef is the linear reference core: an XOR/XNOR-only netlist sized
// like the smaller Table II circuits. It is not a paper benchmark — it is
// the XOR-dominated limit case of the threat model, used to demonstrate
// the CNF-vs-native-GF(2) crossover in the benchmark ledger.
var AffineRef = Entry{
	Name: "affine", Suite: "affine", FFs: 160, PIs: 35, POs: 49, Gates: 1200, Affine: true,
}

// ByName returns the Table II entry — or the affine reference core — with
// the given name.
func ByName(name string) (Entry, bool) {
	for _, e := range Table2 {
		if e.Name == name {
			return e, true
		}
	}
	if name == AffineRef.Name {
		return AffineRef, true
	}
	return Entry{}, false
}

// Build instantiates the synthetic stand-in for a Table II entry. The
// circuit is deterministic per (entry, variant): variant selects among
// structurally different instances for multi-trial averaging.
func (e Entry) Build(variant int64) (*netlist.Netlist, error) {
	cfg := GenConfig{
		Name:  e.Name,
		PIs:   e.PIs,
		POs:   e.POs,
		FFs:   e.FFs,
		Gates: e.Gates,
		Seed:  hashSeed(e.Name) + variant,
	}
	if e.Affine {
		return GenerateAffine(cfg)
	}
	return Generate(cfg)
}

func hashSeed(name string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range name {
		h ^= int64(c)
		h *= 1099511628211
	}
	if h < 0 {
		h = -h
	}
	return h
}

// Scaled returns a copy of the entry with flop and gate counts divided by
// factor (minimum 8 flops), for fast CI-scale runs of the paper's
// experiments. PI/PO counts are reduced proportionally but kept >= 4.
func (e Entry) Scaled(factor int) Entry {
	if factor <= 1 {
		return e
	}
	s := e
	s.Name = fmt.Sprintf("%s/%d", e.Name, factor)
	s.FFs = max(8, e.FFs/factor)
	s.Gates = max(32, e.Gates/factor)
	s.PIs = max(4, e.PIs/factor)
	s.POs = max(4, e.POs/factor)
	return s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
