package bench

import (
	"testing"

	"dynunlock/internal/netlist"
	"dynunlock/internal/sim"
)

func TestGenerateValidates(t *testing.T) {
	for _, cfg := range []GenConfig{
		{Name: "tiny", PIs: 2, POs: 1, FFs: 4, Gates: 10, Seed: 1},
		{Name: "mid", PIs: 8, POs: 4, FFs: 32, Gates: 200, Seed: 2},
		{Name: "defaultgates", PIs: 4, POs: 2, FFs: 16, Seed: 3},
	} {
		n, err := Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", cfg.Name, err)
		}
		st := n.Stats()
		if st.PIs != cfg.PIs || st.POs != cfg.POs || st.DFFs != cfg.FFs {
			t.Fatalf("%s: stats %+v", cfg.Name, st)
		}
		if cfg.Gates > 0 && st.Gates < cfg.Gates {
			t.Fatalf("%s: only %d gates", cfg.Name, st.Gates)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := GenConfig{Name: "d", PIs: 4, POs: 2, FFs: 8, Gates: 40, Seed: 7}
	a, _ := Generate(cfg)
	b, _ := Generate(cfg)
	va, _ := netlist.NewCombView(a)
	vb, _ := netlist.NewCombView(b)
	sa, sb := sim.NewComb(va), sim.NewComb(vb)
	in := make([]uint64, len(va.Inputs))
	for i := range in {
		in[i] = uint64(i) * 0x9e3779b97f4a7c15
	}
	oa, ob := sa.Eval(in), sb.Eval(in)
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatal("same seed produced different circuits")
		}
	}
	c, _ := Generate(GenConfig{Name: "d", PIs: 4, POs: 2, FFs: 8, Gates: 40, Seed: 8})
	vc, _ := netlist.NewCombView(c)
	sc := sim.NewComb(vc)
	oc := sc.Eval(in)
	same := true
	for i := range oa {
		if oa[i] != oc[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical behavior (suspicious)")
	}
}

func TestGenerateRejectsDegenerate(t *testing.T) {
	if _, err := Generate(GenConfig{PIs: 0, POs: 1, FFs: 4}); err == nil {
		t.Fatal("want error")
	}
	if _, err := Generate(GenConfig{PIs: 1, POs: 1, FFs: 1}); err == nil {
		t.Fatal("want error")
	}
}

func TestTable2Registry(t *testing.T) {
	if len(Table2) != 10 {
		t.Fatalf("Table2 has %d entries", len(Table2))
	}
	wantFFs := map[string]int{
		"s5378": 160, "s13207": 202, "s15850": 442, "s38584": 1233,
		"s38417": 1564, "s35932": 1728, "b20": 429, "b21": 429,
		"b22": 611, "b17": 864,
	}
	for name, ffs := range wantFFs {
		e, ok := ByName(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		if e.FFs != ffs {
			t.Fatalf("%s: FFs = %d, want %d (paper Table II)", name, e.FFs, ffs)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName should miss")
	}
}

func TestEntryBuild(t *testing.T) {
	e, _ := ByName("s5378")
	n, err := e.Build(0)
	if err != nil {
		t.Fatal(err)
	}
	if n.Stats().DFFs != 160 {
		t.Fatalf("DFFs = %d", n.Stats().DFFs)
	}
	n2, err := e.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	if n2.Stats().DFFs != 160 {
		t.Fatal("variant changed flop count")
	}
}

func TestEntryScaled(t *testing.T) {
	e, _ := ByName("s38417")
	s := e.Scaled(16)
	if s.FFs != 1564/16 {
		t.Fatalf("scaled FFs = %d", s.FFs)
	}
	if s.PIs < 4 || s.POs < 4 {
		t.Fatal("PI/PO floor violated")
	}
	if e.Scaled(1).Name != e.Name {
		t.Fatal("factor 1 must be identity")
	}
	n, err := s.Build(0)
	if err != nil {
		t.Fatal(err)
	}
	if n.Stats().DFFs != s.FFs {
		t.Fatal("scaled build wrong")
	}
}

func TestS208F(t *testing.T) {
	n := S208F()
	st := n.Stats()
	if st.DFFs != 8 {
		t.Fatalf("s208f has %d flops, want 8", st.DFFs)
	}
	if st.PIs != 10 || st.POs != 2 {
		t.Fatalf("s208f PI/PO = %d/%d", st.PIs, st.POs)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateAffineIsLinear(t *testing.T) {
	n, err := GenerateAffine(GenConfig{Name: "aff", PIs: 4, POs: 4, FFs: 16, Gates: 80, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	st := n.Stats()
	if st.PIs != 4 || st.POs != 4 || st.DFFs != 16 {
		t.Fatalf("stats %+v", st)
	}
	// Every combinational gate must be GF(2)-affine: the whole point of the
	// affine reference core is that scan responses stay linear in the seed.
	for id := 0; id < n.NumSignals(); id++ {
		switch tp := n.Type(netlist.SignalID(id)); tp {
		case netlist.Input, netlist.DFF, netlist.Const0, netlist.Const1,
			netlist.Buf, netlist.Not, netlist.Xor, netlist.Xnor:
		default:
			t.Fatalf("non-affine gate %s (%v)", n.SignalName(netlist.SignalID(id)), tp)
		}
	}
}

func TestByNameAffineRef(t *testing.T) {
	e, ok := ByName("affine")
	if !ok || !e.Affine {
		t.Fatalf("affine reference not resolvable: %+v ok=%v", e, ok)
	}
	if _, err := e.Scaled(16).Build(0); err != nil {
		t.Fatalf("scaled affine build: %v", err)
	}
}
