package bench

import (
	"strings"

	"dynunlock/internal/netlist"
)

// s208fSrc is a hand-written 8-flop sequential circuit in the spirit of the
// ISCAS-89 s208 benchmark used in the paper's Fig. 1 walkthrough: 8 scan
// flops, a handful of primary inputs, and a small next-state cone per flop.
// It is small enough to verify the combinational modeling (Fig. 4) by hand
// and exhaustively in tests.
const s208fSrc = `
# s208f: 8-flop walkthrough circuit (Fig. 1 stand-in)
INPUT(p0)
INPUT(p1)
INPUT(p2)
INPUT(p3)
INPUT(p4)
INPUT(p5)
INPUT(p6)
INPUT(p7)
INPUT(p8)
INPUT(p9)
OUTPUT(y0)
OUTPUT(y1)
q0 = DFF(d0)
q1 = DFF(d1)
q2 = DFF(d2)
q3 = DFF(d3)
q4 = DFF(d4)
q5 = DFF(d5)
q6 = DFF(d6)
q7 = DFF(d7)
t0 = AND(p0, q1)
t1 = XOR(q0, p1)
t2 = NOR(q2, p2)
t3 = NAND(q3, p3)
t4 = OR(q4, p4)
t5 = XNOR(q5, p5)
t6 = AND(q6, p6)
t7 = XOR(q7, p7)
u0 = XOR(t0, t7)
u1 = NAND(t1, p8)
u2 = OR(t2, t5)
u3 = AND(t3, p9)
d0 = XOR(u0, q7)
d1 = AND(u1, t4)
d2 = XOR(u2, q1)
d3 = NOR(u3, t6)
d4 = XOR(t4, q3)
d5 = NAND(t5, q0)
d6 = OR(t6, u0)
d7 = XOR(t7, u1)
y0 = XOR(u0, u3)
y1 = NAND(u2, t1)
`

// S208F returns the 8-flop walkthrough circuit.
func S208F() *netlist.Netlist {
	n, err := netlist.ParseBench(strings.NewReader(s208fSrc), "s208f")
	if err != nil {
		panic("bench: embedded s208f invalid: " + err.Error())
	}
	return n
}
