package bench

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"dynunlock/internal/metrics"
)

// Sweep runs fn over every item on a fixed-size worker pool and returns the
// results in item order. Table conditions (benchmark × keyBits × policy)
// are independent — every condition derives its own RNG seeds — so the
// sweep scales with cores while staying deterministic per condition: the
// only thing concurrency changes is which condition runs when.
//
// workers <= 0 selects runtime.GOMAXPROCS(0); workers == 1 degenerates to a
// plain sequential loop over items (no goroutines), which is the reference
// behavior parallel runs are checked against.
//
// On error the sweep stops handing out new items, waits for in-flight
// items, and returns the error with the lowest item index (deterministic
// regardless of scheduling). Results for items that never ran are zero
// values. Sweep is SweepCtx under context.Background().
func Sweep[T, R any](workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	return SweepCtx(context.Background(), workers, items,
		func(_ context.Context, i int, item T) (R, error) { return fn(i, item) })
}

// SweepCtx is Sweep with cancellation. The context is checked before each
// item is handed out: a cancelled context counts as an error at the index
// of the first item that did not run, wrapped so errors.Is sees the context
// error, and it participates in the lowest-index-error rule like any fn
// error. In-flight items are waited for, never abandoned; fn receives ctx
// so long-running items (attacks) can observe the same cancellation.
func SweepCtx[T, R any](ctx context.Context, workers int, items []T, fn func(ctx context.Context, i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Live sweep accounting; all instruments are nil (no-op) without a
	// registry on ctx.
	mh := metrics.From(ctx)
	inflight := mh.Gauge(metrics.MetricSweepInflight)
	okItems := mh.Counter(metrics.MetricSweepItems, "status", "ok")
	errItems := mh.Counter(metrics.MetricSweepItems, "status", "error")
	run := func(ctx context.Context, i int, it T) (R, error) {
		inflight.Add(1)
		r, err := fn(ctx, i, it)
		inflight.Add(-1)
		if err != nil {
			errItems.Inc()
		} else {
			okItems.Inc()
		}
		return r, err
	}
	if workers == 1 {
		for i, it := range items {
			if err := ctx.Err(); err != nil {
				return out, fmt.Errorf("item %d: %w", i, err)
			}
			r, err := run(ctx, i, it)
			if err != nil {
				return out, err
			}
			out[i] = r
		}
		return out, nil
	}
	if workers > len(items) {
		workers = len(items)
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		wg     sync.WaitGroup
	)
	errIdx := len(items)
	var firstErr error
	record := func(i int, err error) {
		failed.Store(true)
		mu.Lock()
		if i < errIdx {
			errIdx, firstErr = i, err
		}
		mu.Unlock()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) || failed.Load() {
					return
				}
				if err := ctx.Err(); err != nil {
					record(i, fmt.Errorf("item %d: %w", i, err))
					return
				}
				r, err := run(ctx, i, items[i])
				if err != nil {
					record(i, err)
					return
				}
				out[i] = r
			}
		}()
	}
	wg.Wait()
	return out, firstErr
}
