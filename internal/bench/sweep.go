package bench

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Sweep runs fn over every item on a fixed-size worker pool and returns the
// results in item order. Table conditions (benchmark × keyBits × policy)
// are independent — every condition derives its own RNG seeds — so the
// sweep scales with cores while staying deterministic per condition: the
// only thing concurrency changes is which condition runs when.
//
// workers <= 0 selects runtime.GOMAXPROCS(0); workers == 1 degenerates to a
// plain sequential loop over items (no goroutines), which is the reference
// behavior parallel runs are checked against.
//
// On error the sweep stops handing out new items, waits for in-flight
// items, and returns the error with the lowest item index (deterministic
// regardless of scheduling). Results for items that never ran are zero
// values.
func Sweep[T, R any](workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		for i, it := range items {
			r, err := fn(i, it)
			if err != nil {
				return out, err
			}
			out[i] = r
		}
		return out, nil
	}
	if workers > len(items) {
		workers = len(items)
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		wg     sync.WaitGroup
	)
	errIdx := len(items)
	var firstErr error
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) || failed.Load() {
					return
				}
				r, err := fn(i, items[i])
				if err != nil {
					failed.Store(true)
					mu.Lock()
					if i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
					return
				}
				out[i] = r
			}
		}()
	}
	wg.Wait()
	return out, firstErr
}
