package bench

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestSweepOrderAndResults(t *testing.T) {
	items := make([]int, 37)
	for i := range items {
		items[i] = i * 3
	}
	for _, workers := range []int{0, 1, 2, 8, 64} {
		got, err := Sweep(workers, items, func(i, item int) (int, error) {
			return item + i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range items {
			if got[i] != i*4 {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, got[i], i*4)
			}
		}
	}
}

func TestSweepEmpty(t *testing.T) {
	got, err := Sweep(4, nil, func(i, item int) (int, error) { return 0, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

func TestSweepFirstErrorByIndex(t *testing.T) {
	items := make([]int, 20)
	wantErr := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := Sweep(workers, items, func(i, item int) (int, error) {
			if i == 3 || i == 7 {
				return 0, fmt.Errorf("item %d: %w", i, wantErr)
			}
			return i, nil
		})
		if err == nil || !errors.Is(err, wantErr) {
			t.Fatalf("workers=%d: err = %v", workers, err)
		}
		// With one worker the error is necessarily item 3's; with more
		// workers it must still be the lowest-index error that ran.
		if workers == 1 && err.Error() != "item 3: boom" {
			t.Fatalf("sequential error = %v", err)
		}
	}
}

func TestSweepStopsAfterError(t *testing.T) {
	var ran atomic.Int64
	items := make([]int, 1000)
	_, err := Sweep(2, items, func(i, item int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, errors.New("early")
		}
		return 0, nil
	})
	if err == nil {
		t.Fatal("want error")
	}
	if n := ran.Load(); n >= int64(len(items)) {
		t.Fatalf("sweep did not stop early: ran %d items", n)
	}
}

func TestSweepCtxCancelBetweenItems(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	items := make([]int, 10)
	var ran atomic.Int64
	got, err := SweepCtx(ctx, 1, items, func(ctx context.Context, i, item int) (int, error) {
		ran.Add(1)
		if i == 2 {
			cancel() // next hand-out sees the cancelled context
		}
		return i + 1, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	// Sequential: exactly items 0..2 ran, and the error names item 3, the
	// first item that never started.
	if n := ran.Load(); n != 3 {
		t.Fatalf("ran %d items", n)
	}
	if err.Error() != "item 3: context canceled" {
		t.Fatalf("error = %v", err)
	}
	if got[2] != 3 || got[3] != 0 {
		t.Fatalf("results = %v", got)
	}
}

func TestSweepCtxCancelParallel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	items := make([]int, 100)
	var ran atomic.Int64
	_, err := SweepCtx(ctx, 4, items, func(ctx context.Context, i, item int) (int, error) {
		if ran.Add(1) == 5 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n >= int64(len(items)) {
		t.Fatalf("sweep did not stop early: ran %d items", n)
	}
}

// A ctx cancellation detected at a low index must beat an fn error at a
// higher index, like any other error under the lowest-index rule.
func TestSweepCtxErrorIndexRule(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SweepCtx(ctx, 1, make([]int, 4), func(ctx context.Context, i, item int) (int, error) {
		return 0, errors.New("fn must not run under a pre-cancelled context")
	})
	if !errors.Is(err, context.Canceled) || err.Error() != "item 0: context canceled" {
		t.Fatalf("err = %v", err)
	}
}

func TestSweepCtxBackgroundMatchesSweep(t *testing.T) {
	items := []int{5, 6, 7}
	a, errA := Sweep(1, items, func(i, item int) (int, error) { return item * 2, nil })
	b, errB := SweepCtx(context.Background(), 1, items, func(_ context.Context, i, item int) (int, error) { return item * 2, nil })
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSweepActuallyConcurrent(t *testing.T) {
	// Two workers must be able to hold two items in flight at once.
	gate := make(chan struct{})
	items := []int{0, 1}
	_, err := Sweep(2, items, func(i, item int) (int, error) {
		if i == 0 {
			<-gate // blocks until item 1 releases it
		} else {
			close(gate)
		}
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
