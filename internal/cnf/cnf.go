// Package cnf defines propositional literals, clauses, and CNF formulas,
// with DIMACS import/export. It is the interchange layer between the
// Tseitin encoder and the SAT solver.
package cnf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Lit is a literal in MiniSat encoding: variable v (0-based) appears
// positively as v<<1 and negatively as v<<1|1.
type Lit int32

// MkLit builds a literal for variable v with the given polarity
// (neg=false → positive).
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the 0-based variable index of l.
func (l Lit) Var() int { return int(l >> 1) }

// Sign reports whether l is negated.
func (l Lit) Sign() bool { return l&1 == 1 }

// Not returns the complement of l.
func (l Lit) Not() Lit { return l ^ 1 }

// Dimacs returns the 1-based signed DIMACS integer for l.
func (l Lit) Dimacs() int {
	d := l.Var() + 1
	if l.Sign() {
		return -d
	}
	return d
}

// FromDimacs converts a signed DIMACS integer (non-zero) to a Lit.
func FromDimacs(d int) Lit {
	if d == 0 {
		panic("cnf: DIMACS literal 0")
	}
	if d < 0 {
		return MkLit(-d-1, true)
	}
	return MkLit(d-1, false)
}

// String renders the literal in DIMACS form.
func (l Lit) String() string { return strconv.Itoa(l.Dimacs()) }

// Clause is a disjunction of literals.
type Clause []Lit

// XorClause is a parity constraint: the XOR of the literal values must be
// true. Negating a literal flips the constraint's parity, matching the
// cryptominisat "x ..." DIMACS extension — `x 1 2 0` means x1 ⊕ x2 = 1 and
// `x -1 2 0` means x1 ⊕ x2 = 0.
type XorClause []Lit

// Formula is a CNF-XOR formula: a conjunction of clauses and parity
// constraints over NumVars variables.
type Formula struct {
	NumVars int
	Clauses []Clause
	Xors    []XorClause
}

// NewVar allocates a fresh variable and returns its index.
func (f *Formula) NewVar() int {
	v := f.NumVars
	f.NumVars++
	return v
}

// Add appends a clause (copying the literals) and grows NumVars as needed.
func (f *Formula) Add(lits ...Lit) {
	c := make(Clause, len(lits))
	copy(c, lits)
	for _, l := range lits {
		if l.Var() >= f.NumVars {
			f.NumVars = l.Var() + 1
		}
	}
	f.Clauses = append(f.Clauses, c)
}

// AddXor appends a parity constraint (copying the literals) and grows
// NumVars as needed.
func (f *Formula) AddXor(lits ...Lit) {
	x := make(XorClause, len(lits))
	copy(x, lits)
	for _, l := range lits {
		if l.Var() >= f.NumVars {
			f.NumVars = l.Var() + 1
		}
	}
	f.Xors = append(f.Xors, x)
}

// Eval reports whether assignment (indexed by variable) satisfies f.
func (f *Formula) Eval(assign []bool) bool {
	for _, c := range f.Clauses {
		sat := false
		for _, l := range c {
			if assign[l.Var()] != l.Sign() {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	for _, x := range f.Xors {
		parity := false
		for _, l := range x {
			if assign[l.Var()] != l.Sign() {
				parity = !parity
			}
		}
		if !parity {
			return false
		}
	}
	return true
}

// WriteDimacs emits the formula in DIMACS CNF format. Parity constraints
// are emitted as cryptominisat "x ..." lines and counted in the problem
// line's clause total, matching that solver's convention.
func (f *Formula) WriteDimacs(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p cnf %d %d\n", f.NumVars, len(f.Clauses)+len(f.Xors))
	for _, c := range f.Clauses {
		for _, l := range c {
			fmt.Fprintf(bw, "%d ", l.Dimacs())
		}
		fmt.Fprintln(bw, 0)
	}
	for _, x := range f.Xors {
		bw.WriteString("x")
		for _, l := range x {
			fmt.Fprintf(bw, " %d", l.Dimacs())
		}
		fmt.Fprintln(bw, " 0")
	}
	return bw.Flush()
}

// ParseDimacs reads a DIMACS CNF file. Comment lines (c …) and the problem
// line are handled; %-terminated files (some SATLIB archives) are accepted.
// Lines starting with "x" carry cryptominisat-style XOR clauses ("x 1 2 0",
// with "x1 2 0" also tolerated) and populate Formula.Xors.
func ParseDimacs(r io.Reader) (*Formula, error) {
	f := &Formula{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	declaredVars, declaredClauses := -1, -1
	var cur Clause
	inXor := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "%") {
			break
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("dimacs:%d: bad problem line %q", lineNo, line)
			}
			var err1, err2 error
			declaredVars, err1 = strconv.Atoi(fields[2])
			declaredClauses, err2 = strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("dimacs:%d: bad problem line %q", lineNo, line)
			}
			continue
		}
		if strings.HasPrefix(line, "x") {
			if len(cur) > 0 {
				return nil, fmt.Errorf("dimacs:%d: xor line inside an open clause", lineNo)
			}
			inXor = true
			line = strings.TrimSpace(line[1:])
			if line == "" {
				continue
			}
		}
		for _, tok := range strings.Fields(line) {
			v, err := strconv.Atoi(tok)
			if err != nil {
				return nil, fmt.Errorf("dimacs:%d: bad literal %q", lineNo, tok)
			}
			if v == 0 {
				if inXor {
					f.AddXor(cur...)
					inXor = false
				} else {
					f.Add(cur...)
				}
				cur = cur[:0]
				continue
			}
			cur = append(cur, FromDimacs(v))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dimacs: read: %w", err)
	}
	if len(cur) > 0 {
		if inXor {
			f.AddXor(cur...)
		} else {
			f.Add(cur...)
		}
	}
	if declaredVars > f.NumVars {
		f.NumVars = declaredVars
	}
	if declaredClauses >= 0 && declaredClauses != len(f.Clauses) {
		// Tolerated: many files in the wild miscount. Not an error.
		_ = declaredClauses
	}
	return f, nil
}
