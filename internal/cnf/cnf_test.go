package cnf

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestLitEncoding(t *testing.T) {
	for v := 0; v < 100; v++ {
		for _, neg := range []bool{false, true} {
			l := MkLit(v, neg)
			if l.Var() != v || l.Sign() != neg {
				t.Fatalf("MkLit(%d,%v) round trip failed", v, neg)
			}
			if l.Not().Var() != v || l.Not().Sign() == neg {
				t.Fatal("Not broken")
			}
			if FromDimacs(l.Dimacs()) != l {
				t.Fatal("DIMACS round trip failed")
			}
		}
	}
}

func TestLitDimacsQuick(t *testing.T) {
	f := func(d int16) bool {
		if d == 0 {
			return true
		}
		return FromDimacs(int(d)).Dimacs() == int(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromDimacsZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	FromDimacs(0)
}

func TestFormulaAddGrowsVars(t *testing.T) {
	var f Formula
	f.Add(MkLit(4, false), MkLit(2, true))
	if f.NumVars != 5 {
		t.Fatalf("NumVars = %d", f.NumVars)
	}
	v := f.NewVar()
	if v != 5 || f.NumVars != 6 {
		t.Fatalf("NewVar = %d, NumVars = %d", v, f.NumVars)
	}
}

func TestFormulaEval(t *testing.T) {
	var f Formula
	// (x0 | !x1) & (x1 | x2)
	f.Add(MkLit(0, false), MkLit(1, true))
	f.Add(MkLit(1, false), MkLit(2, false))
	cases := []struct {
		a    []bool
		want bool
	}{
		{[]bool{true, true, false}, true},
		{[]bool{false, false, true}, true},
		{[]bool{false, true, false}, false},
		{[]bool{true, false, false}, false},
	}
	for _, tc := range cases {
		if got := f.Eval(tc.a); got != tc.want {
			t.Errorf("Eval(%v) = %v", tc.a, got)
		}
	}
}

func TestDimacsRoundTrip(t *testing.T) {
	var f Formula
	f.Add(MkLit(0, false), MkLit(1, true), MkLit(2, false))
	f.Add(MkLit(1, false))
	f.Add() // empty clause is representable
	var buf bytes.Buffer
	if err := f.WriteDimacs(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ParseDimacs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVars != f.NumVars || len(g.Clauses) != len(f.Clauses) {
		t.Fatalf("round trip: %d/%d vs %d/%d", g.NumVars, len(g.Clauses), f.NumVars, len(f.Clauses))
	}
	for i := range f.Clauses {
		if len(f.Clauses[i]) != len(g.Clauses[i]) {
			t.Fatalf("clause %d length changed", i)
		}
		for j := range f.Clauses[i] {
			if f.Clauses[i][j] != g.Clauses[i][j] {
				t.Fatalf("clause %d literal %d changed", i, j)
			}
		}
	}
}

func TestParseDimacsFormats(t *testing.T) {
	src := `c a comment
p cnf 3 2
1 -2 0
c interleaved
-1 2
3 0
%
0
`
	f, err := ParseDimacs(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumVars != 3 || len(f.Clauses) != 2 {
		t.Fatalf("got %d vars %d clauses", f.NumVars, len(f.Clauses))
	}
	if len(f.Clauses[1]) != 3 {
		t.Fatal("multi-line clause not joined")
	}
}

func TestParseDimacsErrors(t *testing.T) {
	for _, src := range []string{
		"p cnf x 2\n1 0\n",
		"p dnf 1 1\n1 0\n",
		"p cnf 1 1\none 0\n",
	} {
		if _, err := ParseDimacs(strings.NewReader(src)); err == nil {
			t.Errorf("want error for %q", src)
		}
	}
}
