package core

import (
	"math/rand"
	"sort"
	"testing"

	"dynunlock/internal/bench"
	"dynunlock/internal/gf2"
	"dynunlock/internal/lock"
	"dynunlock/internal/oracle"
	"dynunlock/internal/scan"
)

// seedSet renders a result's seed candidates as a sorted string set.
func seedSet(t *testing.T, res *Result) []string {
	t.Helper()
	if !res.Converged {
		t.Fatal("attack did not converge")
	}
	out := make([]string, len(res.SeedCandidates))
	for i, c := range res.SeedCandidates {
		out[i] = c.String()
	}
	sort.Strings(out)
	return out
}

// The full attack pipeline over every committed Table II benchmark: the AIG
// encode path with inprocessing must recover exactly the seed class the
// direct netlist→CNF path recovers. Circuits are scaled down so all ten
// benchmarks run in test time; the encode layers under test are identical
// at every scale.
func TestAIGCandidatesMatchDirectOnBenchmarks(t *testing.T) {
	const scale = 16
	for _, e := range bench.Table2 {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			entry := e.Scaled(scale)
			n, err := entry.Build(0)
			if err != nil {
				t.Fatal(err)
			}
			d, err := lock.Lock(n, lock.Config{KeyBits: 16, Policy: scan.PerCycle})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(len(e.Name)) * 131))
			seed := gf2.NewVec(16)
			for i := 0; i < 16; i++ {
				if rng.Intn(2) == 1 {
					seed.Set(i, true)
				}
			}
			if seed.IsZero() {
				seed.Set(0, true)
			}
			authKey := make([]bool, 16)
			authKey[0] = true
			newChip := func() *oracle.Chip {
				chip, err := oracle.New(d, seed, authKey)
				if err != nil {
					t.Fatal(err)
				}
				return chip
			}
			direct, err := Attack(newChip(), Options{EnumerateLimit: 256})
			if err != nil {
				t.Fatal(err)
			}
			want := seedSet(t, direct)
			aig, err := Attack(newChip(), Options{EnumerateLimit: 256, AIG: true, Simplify: true, NativeXor: true})
			if err != nil {
				t.Fatal(err)
			}
			got := seedSet(t, aig)
			if len(want) != len(got) {
				t.Fatalf("candidate count diverged: direct %d, aig %d", len(want), len(got))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("candidate %d diverged: direct %s, aig %s", i, want[i], got[i])
				}
			}
			if !ContainsSeed(aig.SeedCandidates, seed) {
				t.Fatal("aig path lost the programmed secret seed")
			}
			if aig.EncodeClauses == 0 {
				t.Fatal("aig path reported no encode clauses")
			}
			if direct.EncodeClauses == 0 {
				t.Fatal("direct path reported no encode clauses")
			}
			t.Logf("%s: %d candidates; encode clauses direct=%d aig=%d (%.2fx)",
				e.Name, len(got), direct.EncodeClauses, aig.EncodeClauses,
				float64(direct.EncodeClauses)/float64(aig.EncodeClauses))
		})
	}
}
