package core

import (
	"context"
	"fmt"
	"io"
	"time"

	"dynunlock/internal/gf2"
	"dynunlock/internal/lock"
	"dynunlock/internal/metrics"
	"dynunlock/internal/sat"
	"dynunlock/internal/satattack"
	"dynunlock/internal/sim"
	"dynunlock/internal/trace"
)

// StopReason re-exports the satattack stop classification so callers of the
// core API need not import the engine package.
type StopReason = satattack.StopReason

// Stop reasons (see satattack).
const (
	StopNone       = satattack.StopNone
	StopDeadline   = satattack.StopDeadline
	StopCancelled  = satattack.StopCancelled
	StopBudget     = satattack.StopBudget
	StopIterations = satattack.StopIterations
)

// Chip is the oracle-side interface the attack layers consume: the chip
// the attacker owns, reduced to exactly the operations the attack issues.
// The fabricated simulator (*oracle.Chip) implements it, and so does the
// flight recorder's offline replay oracle (internal/flight.Replay), which
// serves recorded sessions with no chip simulation at all. Everything the
// attack observes flows through these five methods, so swapping the
// implementation swaps the physical oracle without touching the attack.
type Chip interface {
	// Design returns the attacker-visible structural description.
	Design() *lock.Design
	// Reset asserts the chip reset (PRNG reload, counters restart).
	Reset()
	// Session runs one scan test session (see oracle.Chip.Session).
	Session(testKey, scanIn, pi []bool) (scanOut, po []bool)
	// SessionN runs a multi-capture session (see oracle.Chip.SessionN).
	SessionN(testKey, scanIn []bool, pis [][]bool) (scanOut []bool, pos [][]bool)
	// SetSessionHook installs a per-session cycle-accounting hook and
	// returns the previous one so observers chain and restore.
	SetSessionHook(h func(cycles uint64)) (prev func(cycles uint64))
}

// Options configures the DynUnlock attack.
type Options struct {
	// Mode selects the seed search-space formulation (see Mode). The zero
	// value is ModeLinear.
	Mode Mode
	// TestKey is the (arbitrary, almost surely mismatching) external test
	// key the attacker applies so the PRNG drives the key gates. Nil means
	// all zeros.
	TestKey []bool
	// EnumerateLimit bounds seed-candidate enumeration after convergence.
	// 0 selects the paper's practical bound of 256 (Table II observes at
	// most 128 candidates).
	EnumerateLimit int
	// MaxIterations bounds the DIP loop (0 = unlimited).
	MaxIterations int
	// ConflictBudget bounds total SAT conflicts (0 = unlimited; applied per
	// portfolio instance).
	ConflictBudget int64
	// Portfolio is the number of diversified solver instances racing each
	// SAT call (<= 1 = sequential; see satattack portfolio engine).
	Portfolio int
	// VerifyProbes is the number of random probe sessions used to check
	// each recovered seed against the chip (attacker-side validation).
	// 0 selects 8.
	VerifyProbes int
	// Log receives progress lines when non-nil.
	Log io.Writer
	// OnDIP, when non-nil, observes every DIP iteration (see
	// satattack.Options.OnDIP). The flight recorder installs it to persist
	// the per-iteration transcript; nil keeps the hot loop untouched.
	OnDIP satattack.DIPObserver
	// Search, when non-nil, taps per-instance solver search telemetry (see
	// satattack.Options.Search); the anatomy capture layer installs it.
	Search satattack.SearchObserver
	// NativeXor encodes XOR gates as native GF(2) solver rows instead of
	// Tseitin clauses (see satattack.Options.NativeXor). Off by default so
	// committed flight bundles replay bit-identically.
	NativeXor bool
	// AIG routes encoding through the shared structurally-hashed AIG built
	// once from the unrolled netlist (see satattack.Options.AIG). Off by
	// default for the same replay-compatibility reason; the CLIs enable it.
	AIG bool
	// Simplify runs level-0 solver inprocessing between DIP iterations (see
	// satattack.Options.Simplify). Off by default; the CLIs enable it.
	Simplify bool
	// Insight, when non-nil, is a seed-space constraint source (the
	// internal/insight tracker) whose certified rows are fed back into the
	// solver after each DIP and which arms the analytic rank-k
	// short-circuit (see satattack.Options.Insight). The source must
	// address seed bits: ModeDirect passes it through unchanged, ModeLinear
	// translates its rows into the mask key space. It must also be wired
	// into OnDIP (satattack.ChainObservers with the tracker's DIPObserver)
	// so it actually observes the responses.
	Insight satattack.InsightSource
}

// Result reports a DynUnlock run.
type Result struct {
	// Mode is the formulation that produced this result.
	Mode Mode
	// SeedCandidates are the recovered seeds; the set is the full
	// indistinguishability class when Exact.
	SeedCandidates []gf2.Vec
	// Exact reports whether enumeration completed below the limit.
	Exact bool
	// Iterations is the number of SAT-attack iterations (DIPs).
	Iterations int
	// Queries is the number of scan sessions issued to the chip.
	Queries int
	// Converged reports miter-UNSAT convergence.
	Converged bool
	// Analytic reports that the insight feedback loop reached full key rank
	// and the key was recovered by GF(2) back-substitution, short-circuiting
	// the remaining SAT iterations (see satattack.Result.Analytic).
	Analytic bool
	// Rank is rank([A;B]); PredictedLog2 = keyBits − Rank is the analytic
	// candidate-count exponent.
	Rank          int
	PredictedLog2 int
	// Verified reports that every candidate reproduced the chip's behavior
	// on the random probe sessions (attacker-side check).
	Verified bool
	// Elapsed is total attack wall time.
	Elapsed time.Duration
	// SolverStats snapshots the CDCL solver counters (summed over portfolio
	// instances when Options.Portfolio > 1).
	SolverStats sat.Stats
	// InstanceStats and InstanceWins report per-solver-instance counters
	// and race wins (one entry for sequential runs).
	InstanceStats []sat.Stats
	InstanceWins  []int
	// Stopped is true when a deadline, cancellation, or budget bounded the
	// attack (see satattack.Result.Stopped); counters and any recovered
	// candidates remain valid, but the set may be incomplete.
	Stopped bool
	// StopReason classifies the bound that fired when Stopped is true.
	StopReason StopReason
	// EncodeVars and EncodeClauses count solver variables and emitted
	// clauses (including native XOR rows) attributable to circuit encoding,
	// summed over the initial miter and every DIP-constrained copy pair
	// (instance 0 under a portfolio). The AIG path exists to shrink these.
	EncodeVars    uint64
	EncodeClauses uint64
}

// ChipOracle adapts a scan session on the real chip to the combinational
// model's I/O interface: model inputs (pi, a) map to one reset + session;
// model outputs are (po, observed scan-out).
type ChipOracle struct {
	Chip    Chip
	TestKey []bool
	// Sessions counts queries issued through this adapter.
	Sessions int
}

// NewChipOracle builds the adapter; nil testKey selects all zeros.
func NewChipOracle(chip Chip, testKey []bool) *ChipOracle {
	if testKey == nil {
		testKey = make([]bool, chip.Design().Config.KeyBits)
	}
	return &ChipOracle{Chip: chip, TestKey: testKey}
}

// Query implements satattack.Oracle.
func (o *ChipOracle) Query(in []bool) []bool {
	d := o.Chip.Design()
	numPI := d.View.NumPI
	pi := in[:numPI]
	a := in[numPI:]
	o.Chip.Reset()
	scanOut, po := o.Chip.Session(o.TestKey, a, pi)
	o.Sessions++
	return append(append([]bool(nil), po...), scanOut...)
}

// Attack runs DynUnlock end to end against a chip the attacker owns:
// model construction (Algorithm 1), the SAT attack loop (Fig. 3), seed
// enumeration, and probe-based verification. Attack is AttackCtx under
// context.Background().
func Attack(chip Chip, opts Options) (*Result, error) {
	return AttackCtx(context.Background(), chip, opts)
}

// AttackCtx is Attack with cancellation and tracing. Cancelling ctx or
// exceeding its deadline stops the attack at the next solver check point and
// returns a partial Result with Stopped set — never an error, a hang, or a
// panic. A trace sink installed on ctx (trace.With) observes one span per
// Fig. 3 stage: unroll, encode, dip_loop, extract, enumerate, refine,
// verify. With a background context and no sink, behavior is bit-identical
// to the unbounded sequential attack.
func AttackCtx(ctx context.Context, chip Chip, opts Options) (*Result, error) {
	tr := trace.From(ctx)
	start := time.Now()
	d := chip.Design()
	if opts.EnumerateLimit == 0 {
		opts.EnumerateLimit = 256
	}
	if opts.VerifyProbes == 0 {
		opts.VerifyProbes = 8
	}

	// Tester-time accounting: every scan session reports its cycle cost.
	// The previous hook is chained and restored so nested attacks compose.
	// The metrics instruments are nil (no-op) without a registry on ctx.
	mh := metrics.From(ctx)
	sessCtr := mh.Counter(metrics.MetricOracleSessions)
	cycleCtr := mh.Counter(metrics.MetricOracleCycles)
	var oracleSessions, oracleCycles uint64
	prevHook := chip.SetSessionHook(nil)
	chip.SetSessionHook(func(cycles uint64) {
		oracleSessions++
		oracleCycles += cycles
		sessCtr.Inc()
		cycleCtr.Add(cycles)
		if prevHook != nil {
			prevHook(cycles)
		}
	})
	defer chip.SetSessionHook(prevHook)

	adapter := NewChipOracle(chip, opts.TestKey)
	saOpts := satattack.Options{
		Portfolio:      opts.Portfolio,
		MaxIterations:  opts.MaxIterations,
		EnumerateLimit: opts.EnumerateLimit,
		ConflictBudget: opts.ConflictBudget,
		Log:            opts.Log,
		OnDIP:          opts.OnDIP,
		Search:         opts.Search,
		NativeXor:      opts.NativeXor,
		AIG:            opts.AIG,
		Simplify:       opts.Simplify,
	}

	res := &Result{Mode: opts.Mode}
	switch opts.Mode {
	case ModeDirect:
		unroll := tr.Start("unroll")
		model, err := BuildModel(d, 0)
		if err != nil {
			unroll.End()
			return nil, err
		}
		res.Rank = model.Rank()
		res.PredictedLog2 = model.PredictedCandidatesLog2()
		unroll.Add("key_bits", uint64(d.Config.KeyBits))
		unroll.Add("rank", uint64(res.Rank))
		unroll.End()
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "direct model: %s; rank[A;B]=%d predicted candidates=2^%d\n",
				model.Netlist.Stats(), res.Rank, res.PredictedLog2)
		}
		// Direct mode searches the seed space itself: the tracker's
		// seed-bit constraints are key-bit constraints verbatim.
		saOpts.Insight = opts.Insight
		saRes, err := satattack.RunCtx(ctx, model.Locked, adapter, saOpts)
		if err != nil {
			return nil, err
		}
		res.Iterations = saRes.Iterations
		res.Converged = saRes.Converged
		res.Analytic = saRes.Analytic
		res.Exact = saRes.CandidatesExact
		res.SolverStats = saRes.SolverStats
		res.InstanceStats = saRes.InstanceStats
		res.InstanceWins = saRes.InstanceWins
		res.Stopped = saRes.Stopped
		res.StopReason = saRes.StopReason
		res.EncodeVars = saRes.EncodeVars
		res.EncodeClauses = saRes.EncodeClauses
		for _, c := range saRes.Candidates {
			res.SeedCandidates = append(res.SeedCandidates, gf2.FromBools(c))
		}
		if len(res.SeedCandidates) == 0 && saRes.Key != nil {
			res.SeedCandidates = []gf2.Vec{gf2.FromBools(saRes.Key)}
		}

	default: // ModeLinear
		unroll := tr.Start("unroll")
		mm, err := BuildMaskModel(d, 0)
		if err != nil {
			unroll.End()
			return nil, err
		}
		stacked := gf2.VStack(mm.A, mm.B)
		res.Rank = gf2.Rank(stacked)
		res.PredictedLog2 = d.Config.KeyBits - res.Rank
		unroll.Add("key_bits", uint64(d.Config.KeyBits))
		unroll.Add("rank", uint64(res.Rank))
		unroll.End()
		if opts.Log != nil {
			fmt.Fprintf(opts.Log, "mask model: %s; rank[A;B]=%d predicted candidates=2^%d\n",
				mm.Netlist.Stats(), res.Rank, res.PredictedLog2)
		}
		// Linear mode searches the mask space, so the tracker's seed-bit
		// rows must be re-expressed over the mask key bits first.
		if opts.Insight != nil {
			saOpts.Insight = newMaskInsight(mm, opts.Insight)
		}
		saRes, err := satattack.RunCtx(ctx, mm.Locked, adapter, saOpts)
		if err != nil {
			return nil, err
		}
		res.Iterations = saRes.Iterations
		res.Converged = saRes.Converged
		res.Analytic = saRes.Analytic
		res.SolverStats = saRes.SolverStats
		res.InstanceStats = saRes.InstanceStats
		res.InstanceWins = saRes.InstanceWins
		res.Stopped = saRes.Stopped
		res.StopReason = saRes.StopReason
		res.EncodeVars = saRes.EncodeVars
		res.EncodeClauses = saRes.EncodeClauses
		masks := saRes.Candidates
		if len(masks) == 0 && saRes.Key != nil {
			masks = [][]bool{saRes.Key}
		}
		res.Exact = saRes.CandidatesExact
		refine := tr.Start("refine")
		members := make([]gf2.Vec, len(masks))
		for i, mk := range masks {
			members[i] = mm.MaskVector(mk)
		}
		seeds := mm.SeedsForMaskCoset(members, opts.EnumerateLimit+1)
		if len(seeds) > opts.EnumerateLimit {
			seeds = seeds[:opts.EnumerateLimit]
			res.Exact = false
		}
		res.SeedCandidates = seeds
		refine.Add("mask_candidates", uint64(len(masks)))
		refine.Add("seed_candidates", uint64(len(seeds)))
		refine.End()
	}

	res.Queries = adapter.Sessions

	// Attacker-side verification: every candidate must reproduce the chip
	// on fresh random sessions. A partial candidate set from a stopped run
	// is still verified — the probes are closed-form, not SAT work.
	verify := tr.Start("verify")
	v, err := NewVerifier(d)
	if err != nil {
		verify.End()
		return nil, err
	}
	res.Verified = len(res.SeedCandidates) > 0
	rngProbe := newSplitMix(0x9e3779b97f4a7c15)
	probes := 0
	for p := 0; p < opts.VerifyProbes && res.Verified; p++ {
		scanIn := randomBits(rngProbe, d.Chain.Length)
		pi := randomBits(rngProbe, d.View.NumPI)
		chip.Reset()
		gotOut, gotPO := chip.Session(adapter.TestKey, scanIn, pi)
		probes++
		for _, seed := range res.SeedCandidates {
			wantOut, wantPO := v.Session(seed, scanIn, pi)
			if !eqBits(gotOut, wantOut) || !eqBits(gotPO, wantPO) {
				res.Verified = false
				break
			}
		}
	}
	verify.Add("probes", uint64(probes))
	verify.Add("candidates", uint64(len(res.SeedCandidates)))
	verify.End()
	res.Elapsed = time.Since(start)
	tr.Emit(trace.Event{Type: "result", Fields: map[string]any{
		"mode":            res.Mode.String(),
		"stopped":         res.Stopped,
		"stop_reason":     string(res.StopReason),
		"iterations":      res.Iterations,
		"queries":         res.Queries,
		"candidates":      len(res.SeedCandidates),
		"exact":           res.Exact,
		"converged":       res.Converged,
		"analytic":        res.Analytic,
		"verified":        res.Verified,
		"rank":            res.Rank,
		"oracle_sessions": oracleSessions,
		"oracle_cycles":   oracleCycles,
		"conflicts":       res.SolverStats.Conflicts,
		"elapsed_ms":      res.Elapsed.Milliseconds(),
	}})
	return res, nil
}

// Verifier replays scan sessions in closed form for a hypothesized seed —
// what the attacker does once a seed is recovered to drive the chain at
// will (and what the probe check uses).
type Verifier struct {
	d    *lock.Design
	seq  *sim.Seq
	a, b *gf2.Mat
}

// NewVerifier builds a verifier for the design, precomputing the session-0
// mask matrices. The sequential core runs on the AIG fast path (bit-identical
// to the gate-level stepper), falling back to it only if compilation fails.
func NewVerifier(d *lock.Design) (*Verifier, error) {
	A, B, err := maskMatrices(d, 0)
	if err != nil {
		return nil, err
	}
	seq, err := sim.NewSeqAIG(d.View)
	if err != nil {
		seq = sim.NewSeq(d.View)
	}
	return &Verifier{d: d, seq: seq, a: A, b: B}, nil
}

// Session predicts (scanOut, po) of a session-0 scan session under the
// given seed, using the closed-form masks.
func (v *Verifier) Session(seed gf2.Vec, scanIn, pi []bool) (scanOut, po []bool) {
	n := v.d.Chain.Length
	aMask := v.a.MulVec(seed)
	bMask := v.b.MulVec(seed)
	aPrime := make([]bool, n)
	for j := 0; j < n; j++ {
		aPrime[j] = scanIn[j] != aMask.Get(j)
	}
	v.seq.SetState(aPrime)
	po = v.seq.Step(pi)
	bPrime := v.seq.State()
	scanOut = make([]bool, n)
	for j := 0; j < n; j++ {
		scanOut[j] = bPrime[j] != bMask.Get(j)
	}
	return scanOut, po
}

// Unlock returns the de-obfuscation transform for a recovered seed: given
// an intended state a to deliver, the scan-in vector to apply, and given an
// observed scan-out, the true captured response. This is "gaining scan
// access" in the paper's sense.
func (v *Verifier) Unlock(seed gf2.Vec) (encodeIn func(a []bool) []bool, decodeOut func(b []bool) []bool) {
	aMask := v.a.MulVec(seed)
	bMask := v.b.MulVec(seed)
	n := v.d.Chain.Length
	encodeIn = func(a []bool) []bool {
		out := make([]bool, n)
		for j := range out {
			out[j] = a[j] != aMask.Get(j)
		}
		return out
	}
	decodeOut = func(b []bool) []bool {
		out := make([]bool, n)
		for j := range out {
			out[j] = b[j] != bMask.Get(j)
		}
		return out
	}
	return encodeIn, decodeOut
}

// ContainsSeed reports whether the candidate set includes the given seed.
// Experiments use this with the chip's programmed secret to score success.
func ContainsSeed(candidates []gf2.Vec, seed gf2.Vec) bool {
	for _, c := range candidates {
		if c.Equal(seed) {
			return true
		}
	}
	return false
}

// splitMix is a tiny deterministic PRNG for probe generation (keeps the
// package free of math/rand state in library code paths).
type splitMix struct{ state uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{state: seed} }

func (s *splitMix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func randomBits(r *splitMix, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = r.next()&1 == 1
	}
	return out
}

func eqBits(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
