package core

import (
	"math/rand"
	"testing"

	"dynunlock/internal/bench"
	"dynunlock/internal/gf2"
	"dynunlock/internal/lock"
	"dynunlock/internal/oracle"
	"dynunlock/internal/scan"
	"dynunlock/internal/sim"
)

func lockedChip(t testing.TB, ffs, keyBits int, policy scan.Policy, circuitSeed, secretSeedSrc int64) (*lock.Design, *oracle.Chip) {
	t.Helper()
	n, err := bench.Generate(bench.GenConfig{Name: "t", PIs: 6, POs: 3, FFs: ffs, Gates: 8 * ffs, Seed: circuitSeed})
	if err != nil {
		t.Fatal(err)
	}
	d, err := lock.Lock(n, lock.Config{KeyBits: keyBits, Policy: policy, PlacementSeed: circuitSeed + 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(secretSeedSrc))
	seed := gf2.NewVec(keyBits)
	for i := 0; i < keyBits; i++ {
		if rng.Intn(2) == 1 {
			seed.Set(i, true)
		}
	}
	if seed.IsZero() {
		seed.Set(0, true)
	}
	authKey := make([]bool, keyBits)
	for i := range authKey {
		authKey[i] = rng.Intn(2) == 1
	}
	authKey[0] = true // never collides with the all-zero attacker test key
	chip, err := oracle.New(d, seed, authKey)
	if err != nil {
		t.Fatal(err)
	}
	return d, chip
}

// The combinational model must agree with the chip on random sessions for
// every seed value: simulate the model netlist with (pi, a, s) and compare
// to the chip session with that programmed seed.
func TestModelMatchesChip(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, policy := range []scan.Policy{scan.Static, scan.PerPattern, scan.PerCycle} {
		for trial := 0; trial < 4; trial++ {
			ffs := 5 + rng.Intn(12)
			keyBits := 3 + rng.Intn(8)
			d, chip := lockedChip(t, ffs, keyBits, policy, rng.Int63n(1<<40)+1, rng.Int63n(1<<40)+1)
			model, err := BuildModel(d, 0)
			if err != nil {
				t.Fatal(err)
			}
			view, err := model.Locked.View, error(nil)
			if err != nil {
				t.Fatal(err)
			}
			simulator := sim.NewComb(view)
			seed := chip.SecretSeed()

			for q := 0; q < 5; q++ {
				scanIn := randBools(rng, ffs)
				pi := randBools(rng, 6)
				chip.Reset()
				scanOut, po := chip.Session(make([]bool, keyBits), scanIn, pi)

				in := make([]bool, len(view.Inputs))
				copy(in, pi)
				copy(in[6:], scanIn)
				copy(in[6+ffs:], seed.Bools())
				out := simulator.EvalBits(in)
				for i := range po {
					if out[i] != po[i] {
						t.Fatalf("%v ffs=%d k=%d: PO %d mismatch", policy, ffs, keyBits, i)
					}
				}
				for j := 0; j < ffs; j++ {
					if out[len(po)+j] != scanOut[j] {
						t.Fatalf("%v ffs=%d k=%d: scan-out %d mismatch", policy, ffs, keyBits, j)
					}
				}
			}
		}
	}
}

func randBools(rng *rand.Rand, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = rng.Intn(2) == 1
	}
	return out
}

// End-to-end DynUnlock on small dynamic designs: the candidate set must be
// exact, contain the programmed secret seed, match the analytic 2^(k-rank)
// prediction, and verify against the chip.
func TestAttackRecoversSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, policy := range []scan.Policy{scan.PerCycle, scan.PerPattern, scan.Static} {
		for trial := 0; trial < 3; trial++ {
			ffs := 6 + rng.Intn(10)
			keyBits := 3 + rng.Intn(6)
			d, chip := lockedChip(t, ffs, keyBits, policy, rng.Int63n(1<<40)+1, rng.Int63n(1<<40)+1)
			res, err := Attack(chip, Options{EnumerateLimit: 1 << uint(keyBits)})
			if err != nil {
				t.Fatalf("%v trial %d: %v", policy, trial, err)
			}
			if !res.Converged {
				t.Fatalf("%v trial %d: not converged", policy, trial)
			}
			if !res.Exact {
				t.Fatalf("%v trial %d: enumeration not exact", policy, trial)
			}
			if !ContainsSeed(res.SeedCandidates, chip.SecretSeed()) {
				t.Fatalf("%v trial %d: secret seed not among %d candidates",
					policy, trial, len(res.SeedCandidates))
			}
			if !res.Verified {
				t.Fatalf("%v trial %d: probe verification failed", policy, trial)
			}
			if want := 1 << uint(res.PredictedLog2); len(res.SeedCandidates) != want {
				t.Fatalf("%v trial %d (ffs=%d k=%d): %d candidates, predicted %d (rank %d)",
					policy, trial, ffs, keyBits, len(res.SeedCandidates), want, res.Rank)
			}
			_ = d
		}
	}
}

// With more key bits than the chain can expose, the candidate class grows
// but must still contain the secret — the paper's s5378/s13207 situation.
func TestAttackRankDeficient(t *testing.T) {
	// 4 flops, 8 key bits: at most 2*4=8 mask rows, typically rank < 8.
	d, chip := lockedChip(t, 4, 8, scan.PerCycle, 5, 6)
	model, err := BuildModel(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	if model.Rank() >= 8 {
		t.Skip("masks unexpectedly full rank; nothing to test")
	}
	res, err := Attack(chip, Options{EnumerateLimit: 512})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SeedCandidates) < 2 {
		t.Fatalf("expected multiple candidates, got %d", len(res.SeedCandidates))
	}
	if !ContainsSeed(res.SeedCandidates, chip.SecretSeed()) {
		t.Fatal("secret missing from candidate class")
	}
	if !res.Exact || len(res.SeedCandidates) != 1<<uint(res.PredictedLog2) {
		t.Fatalf("candidates %d, predicted 2^%d", len(res.SeedCandidates), res.PredictedLog2)
	}
}

// Unlock must hand back working scan access: encode/decode through the
// recovered seed reproduces plain scan semantics.
func TestUnlockGrantsScanAccess(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	d, chip := lockedChip(t, 9, 5, scan.PerCycle, 7, 8)
	res, err := Attack(chip, Options{EnumerateLimit: 64})
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewVerifier(d)
	if err != nil {
		t.Fatal(err)
	}
	encodeIn, decodeOut := v.Unlock(res.SeedCandidates[0])
	for trial := 0; trial < 10; trial++ {
		want := randBools(rng, 9) // state the attacker wants delivered
		pi := randBools(rng, 6)
		chip.Reset()
		rawOut, _ := chip.Session(make([]bool, 5), encodeIn(want), pi)
		got := decodeOut(rawOut)
		// Expected: capture of next-state from `want`.
		seq := sim.NewSeq(d.View)
		seq.SetState(want)
		seq.Step(pi)
		expected := seq.State()
		for j := range expected {
			if got[j] != expected[j] {
				t.Fatalf("trial %d: unlocked scan access wrong at flop %d", trial, j)
			}
		}
	}
}

// The SAT enumeration must equal the linear-algebra class exactly: every
// candidate differs from the secret by a nullspace vector of [A;B].
func TestCandidatesAreMaskNullspaceCoset(t *testing.T) {
	d, chip := lockedChip(t, 5, 7, scan.PerCycle, 9, 10)
	model, err := BuildModel(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Attack(chip, Options{EnumerateLimit: 512})
	if err != nil {
		t.Fatal(err)
	}
	stacked := gf2.VStack(model.A, model.B)
	secret := chip.SecretSeed()
	for _, c := range res.SeedCandidates {
		diff := c.XorInto(secret)
		if !stacked.MulVec(diff).IsZero() {
			t.Fatal("candidate not in the secret's mask coset")
		}
	}
}

func TestBuildModelErrors(t *testing.T) {
	d, _ := lockedChip(t, 6, 4, scan.PerCycle, 11, 12)
	if _, err := BuildModel(d, -1); err == nil {
		t.Fatal("want error for negative pattern index")
	}
}

func TestChipOracleDefaults(t *testing.T) {
	_, chip := lockedChip(t, 6, 4, scan.PerCycle, 13, 14)
	o := NewChipOracle(chip, nil)
	if len(o.TestKey) != 4 {
		t.Fatalf("default test key width %d", len(o.TestKey))
	}
	in := make([]bool, 6+6)
	out := o.Query(in)
	if len(out) != 3+6 {
		t.Fatalf("oracle output width %d", len(out))
	}
	if o.Sessions != 1 {
		t.Fatal("session count")
	}
}

func TestContainsSeed(t *testing.T) {
	a, b := gf2.Unit(4, 1), gf2.Unit(4, 2)
	if !ContainsSeed([]gf2.Vec{a, b}, b) || ContainsSeed([]gf2.Vec{a}, b) {
		t.Fatal("ContainsSeed wrong")
	}
}

// The paper's Fig. 1/Fig. 4 walkthrough: s208f with 3 key bits after flops
// 1, 2, 5, attacked end to end.
func TestS208Walkthrough(t *testing.T) {
	n := bench.S208F()
	d, err := lock.Lock(n, lock.Config{KeyBits: 3, Policy: scan.PerCycle})
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 1 placement: gates after flops 1, 2, 5.
	d.Chain.Gates = []scan.KeyGate{{Link: 1, KeyBit: 0}, {Link: 2, KeyBit: 1}, {Link: 5, KeyBit: 2}}
	seed := gf2.FromBools([]bool{true, false, true})
	chip, err := oracle.New(d, seed, []bool{true, true, false})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Attack(chip, Options{EnumerateLimit: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || !res.Exact {
		t.Fatal("walkthrough did not converge exactly")
	}
	if !ContainsSeed(res.SeedCandidates, seed) {
		t.Fatal("walkthrough failed to recover the seed")
	}
}
