package core

import (
	"context"
	"testing"
	"time"

	"dynunlock/internal/scan"
	"dynunlock/internal/trace"
)

// Acceptance criterion of the ctx refactor: a background context with no
// sink — and equally a never-expiring deadline or an attached sink — must
// produce the exact candidate set and DIP sequence of the plain Attack.
func TestAttackCtxDeterminism(t *testing.T) {
	type variant struct {
		name string
		call func() (*Result, error)
	}
	variants := []variant{
		{"plain", func() (*Result, error) {
			_, chip := lockedChip(t, 24, 16, scan.PerCycle, 7, 8)
			return Attack(chip, Options{EnumerateLimit: 64})
		}},
		{"background", func() (*Result, error) {
			_, chip := lockedChip(t, 24, 16, scan.PerCycle, 7, 8)
			return AttackCtx(context.Background(), chip, Options{EnumerateLimit: 64})
		}},
		{"far-deadline", func() (*Result, error) {
			_, chip := lockedChip(t, 24, 16, scan.PerCycle, 7, 8)
			ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
			defer cancel()
			return AttackCtx(ctx, chip, Options{EnumerateLimit: 64})
		}},
		{"with-sink", func() (*Result, error) {
			_, chip := lockedChip(t, 24, 16, scan.PerCycle, 7, 8)
			ctx := trace.With(context.Background(), trace.NewCollector())
			return AttackCtx(ctx, chip, Options{EnumerateLimit: 64})
		}},
	}
	ref, err := variants[0].call()
	if err != nil {
		t.Fatal(err)
	}
	if len(ref.SeedCandidates) == 0 || !ref.Verified {
		t.Fatalf("reference run: candidates=%d verified=%v", len(ref.SeedCandidates), ref.Verified)
	}
	for _, v := range variants[1:] {
		got, err := v.call()
		if err != nil {
			t.Fatalf("%s: %v", v.name, err)
		}
		if got.Iterations != ref.Iterations || got.Queries != ref.Queries {
			t.Fatalf("%s: iterations %d/%d queries %d/%d",
				v.name, got.Iterations, ref.Iterations, got.Queries, ref.Queries)
		}
		if len(got.SeedCandidates) != len(ref.SeedCandidates) {
			t.Fatalf("%s: %d candidates, want %d", v.name, len(got.SeedCandidates), len(ref.SeedCandidates))
		}
		for i := range ref.SeedCandidates {
			if !got.SeedCandidates[i].Equal(ref.SeedCandidates[i]) {
				t.Fatalf("%s: candidate %d differs", v.name, i)
			}
		}
	}
	// The deadline variant must not disturb solver work either: it takes the
	// watcher path, yet the interrupt never fires.
	far, err := variants[2].call()
	if err != nil {
		t.Fatal(err)
	}
	if far.SolverStats != ref.SolverStats {
		t.Fatalf("far-deadline stats diverge:\n%+v\n%+v", far.SolverStats, ref.SolverStats)
	}
}

func TestAttackCtxDeadlinePartial(t *testing.T) {
	_, chip := lockedChip(t, 48, 32, scan.PerCycle, 9, 10)
	ctx, cancel := context.WithTimeout(context.Background(), 1)
	defer cancel()
	time.Sleep(time.Millisecond) // the deadline is already behind us
	res, err := AttackCtx(ctx, chip, Options{EnumerateLimit: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped || res.StopReason != StopDeadline {
		t.Fatalf("stopped=%v reason=%q", res.Stopped, res.StopReason)
	}
	if res.Rank == 0 {
		t.Fatal("partial result must still carry the model analysis")
	}
}

// The full stage-span sequence must appear on the sink, and the final
// "result" event must report the run, including oracle session accounting
// from the chip hook.
func TestAttackCtxTraceResult(t *testing.T) {
	_, chip := lockedChip(t, 24, 16, scan.PerCycle, 7, 8)
	c := trace.NewCollector()
	ctx := trace.With(context.Background(), c)
	res, err := AttackCtx(ctx, chip, Options{EnumerateLimit: 64})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"unroll": false, "encode": false, "dip_loop": false,
		"extract": false, "enumerate": false, "refine": false, "verify": false,
	}
	for _, sp := range c.Spans() {
		if _, ok := want[sp.Name]; ok {
			want[sp.Name] = true
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("missing stage span %q", name)
		}
	}
	var result *trace.Event
	for _, ev := range c.Events() {
		if ev.Type == "result" {
			ev := ev
			result = &ev
		}
	}
	if result == nil {
		t.Fatal("no result event emitted")
	}
	f := result.Fields
	if f["stopped"] != false || f["iterations"] != res.Iterations {
		t.Fatalf("result fields = %v", f)
	}
	sessions, ok := f["oracle_sessions"].(uint64)
	if !ok || sessions == 0 {
		t.Fatalf("oracle_sessions = %v", f["oracle_sessions"])
	}
	cycles, ok := f["oracle_cycles"].(uint64)
	if !ok || cycles == 0 {
		t.Fatalf("oracle_cycles = %v", f["oracle_cycles"])
	}
}

// The session hook installed by AttackCtx must chain and restore any
// caller-installed hook.
func TestAttackCtxSessionHookChains(t *testing.T) {
	_, chip := lockedChip(t, 24, 16, scan.PerCycle, 7, 8)
	var outer uint64
	mine := func(cycles uint64) { outer += cycles }
	chip.SessionHook = mine
	if _, err := AttackCtx(context.Background(), chip, Options{EnumerateLimit: 8}); err != nil {
		t.Fatal(err)
	}
	if outer == 0 {
		t.Fatal("caller hook not chained")
	}
	if chip.SessionHook == nil {
		t.Fatal("caller hook not restored")
	}
	before := outer
	chip.Reset()
	chip.Session(make([]bool, 16), make([]bool, chip.Design().Chain.Length), make([]bool, chip.Design().View.NumPI))
	if outer <= before {
		t.Fatal("restored hook inactive")
	}
}
