package core

import (
	"testing"

	"dynunlock/internal/equiv"
	"dynunlock/internal/scan"
)

// Formal counterpart of probe verification: every recovered seed candidate
// must be PROVEN equivalent to the secret seed on the combinational model
// (miter UNSAT), and a non-candidate seed must be distinguished.
func TestCandidatesFormallyEquivalent(t *testing.T) {
	d, chip := lockedChip(t, 6, 5, scan.PerCycle, 71, 72)
	model, err := BuildModel(d, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Attack(chip, Options{EnumerateLimit: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatal("need the exact class for this test")
	}
	secret := chip.SecretSeed().Bools()
	for _, c := range res.SeedCandidates {
		r, err := equiv.CheckKeyed(model.Locked.View, model.Locked.KeyIdx, secret, c.Bools(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Equivalent {
			t.Fatalf("candidate %s not formally equivalent to the secret", c)
		}
	}
	// A seed outside the class must be distinguishable.
	outside := chip.SecretSeed().Clone()
	for i := 0; i < outside.Len(); i++ {
		flipped := outside.Clone()
		flipped.Flip(i)
		if ContainsSeed(res.SeedCandidates, flipped) {
			continue
		}
		r, err := equiv.CheckKeyed(model.Locked.View, model.Locked.KeyIdx, secret, flipped.Bools(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if r.Equivalent {
			t.Fatalf("non-candidate seed %s proven equivalent — class incomplete", flipped)
		}
		return // one negative case suffices
	}
	t.Skip("every single-bit flip landed inside the class")
}
