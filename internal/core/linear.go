package core

import (
	"fmt"

	"dynunlock/internal/gf2"
	"dynunlock/internal/lock"
	"dynunlock/internal/netlist"
	"dynunlock/internal/satattack"
)

// Mode selects how the seed search space is presented to the SAT engine.
type Mode int8

// Attack modes.
const (
	// ModeLinear (default) runs the SAT attack over the mask space
	// (u, v) = (A·s, B·s) — structurally the static-obfuscation model of
	// ScanSAT — and then back-solves the LFSR seed(s) with Gaussian
	// elimination. This hoists the linear reasoning that the paper's
	// lingeling performs by clause resolution ("the SAT attack sometimes
	// resolves only these [LFSR] clauses", Sec. IV) into explicit GF(2)
	// algebra, which plain CDCL cannot do efficiently. The recovered
	// candidate set is provably identical to ModeDirect's: s is consistent
	// with the oracle iff (A·s, B·s) lies in the recovered mask class.
	ModeLinear Mode = iota
	// ModeDirect feeds the seed-parameterized circuit (Fig. 4) to the SAT
	// attack exactly as the paper describes. Faithful but embeds a dense
	// GF(2) system in CNF, which is resolution-hard: practical only for
	// small key sizes with this repository's from-scratch CDCL solver.
	ModeDirect
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeLinear:
		return "linear"
	case ModeDirect:
		return "direct"
	default:
		return fmt.Sprintf("Mode(%d)", int8(m))
	}
}

// MaskModel is the mask-space combinational model: the key inputs are the
// structurally used mask bits of (u, v) = (A·s, B·s) rather than the k seed
// bits. Mask bits whose rows are zero (flops before the first key gate on
// the way in, after the last on the way out) are hard-wired to zero and
// excluded from the key space.
type MaskModel struct {
	Design *lock.Design
	PatIdx int
	A, B   *gf2.Mat
	// UPos and VPos list the flop indices whose u (resp. v) mask bit is a
	// key input, in key-vector order: the key vector is
	// u[UPos[0]], …, u[UPos[last]], v[VPos[0]], …, v[VPos[last]].
	UPos, VPos []int
	// Netlist inputs: PIs, a0…a(n-1), then the used mask bits.
	Netlist *netlist.Netlist
	Locked  *satattack.Locked
}

// BuildMaskModel constructs the mask-space model for one capture session.
func BuildMaskModel(d *lock.Design, patIdx int) (*MaskModel, error) {
	if patIdx < 0 {
		return nil, fmt.Errorf("core: negative pattern index")
	}
	A, B, err := maskMatrices(d, patIdx)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	n := d.Chain.Length
	src := d.View
	mm := &MaskModel{Design: d, PatIdx: patIdx, A: A, B: B}

	m := netlist.New(fmt.Sprintf("%s-mask-model", d.Netlist.Name))
	piIDs := make([]netlist.SignalID, src.NumPI)
	for i := range piIDs {
		piIDs[i], err = m.AddInput(fmt.Sprintf("pi%d", i))
		if err != nil {
			return nil, err
		}
	}
	aIDs := make([]netlist.SignalID, n)
	for j := range aIDs {
		aIDs[j], err = m.AddInput(fmt.Sprintf("a%d", j))
		if err != nil {
			return nil, err
		}
	}
	uIDs := make(map[int]netlist.SignalID)
	for j := 0; j < n; j++ {
		if !A.Row(j).IsZero() {
			id, err := m.AddInput(fmt.Sprintf("u%d", j))
			if err != nil {
				return nil, err
			}
			uIDs[j] = id
			mm.UPos = append(mm.UPos, j)
		}
	}
	vIDs := make(map[int]netlist.SignalID)
	for j := 0; j < n; j++ {
		if !B.Row(j).IsZero() {
			id, err := m.AddInput(fmt.Sprintf("v%d", j))
			if err != nil {
				return nil, err
			}
			vIDs[j] = id
			mm.VPos = append(mm.VPos, j)
		}
	}

	aPrime := make([]netlist.SignalID, n)
	for j := 0; j < n; j++ {
		if id, ok := uIDs[j]; ok {
			ap, err := m.AddGate(fmt.Sprintf("ap%d", j), netlist.Xor, aIDs[j], id)
			if err != nil {
				return nil, err
			}
			aPrime[j] = ap
		} else {
			aPrime[j] = aIDs[j]
		}
	}
	coreIn := make([]netlist.SignalID, len(src.Inputs))
	copy(coreIn, piIDs)
	copy(coreIn[src.NumPI:], aPrime)
	coreOut, err := appendComb(m, src, coreIn)
	if err != nil {
		return nil, err
	}
	for _, po := range coreOut[:src.NumPO] {
		m.MarkOutput(po)
	}
	bPrime := coreOut[src.NumPO:]
	for j := 0; j < n; j++ {
		if id, ok := vIDs[j]; ok {
			b, err := m.AddGate(fmt.Sprintf("b%d", j), netlist.Xor, bPrime[j], id)
			if err != nil {
				return nil, err
			}
			m.MarkOutput(b)
		} else {
			m.MarkOutput(bPrime[j])
		}
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("core: mask model invalid: %w", err)
	}
	view, err := netlist.NewCombView(m)
	if err != nil {
		return nil, err
	}
	nonKey := src.NumPI + n
	locked := satattack.NewLocked(view, func(i int, _ netlist.SignalID) bool { return i >= nonKey })
	if err := locked.Validate(); err != nil {
		return nil, err
	}
	mm.Netlist = m
	mm.Locked = locked
	return mm, nil
}

// MaskVector expands a SAT key assignment (ordered per UPos then VPos) into
// the full 2n-bit (u‖v) vector with structural zeros filled in.
func (mm *MaskModel) MaskVector(key []bool) gf2.Vec {
	n := mm.Design.Chain.Length
	if len(key) != len(mm.UPos)+len(mm.VPos) {
		panic(fmt.Sprintf("core: mask key length %d, want %d", len(key), len(mm.UPos)+len(mm.VPos)))
	}
	uv := gf2.NewVec(2 * n)
	for i, j := range mm.UPos {
		uv.Set(j, key[i])
	}
	for i, j := range mm.VPos {
		uv.Set(n+j, key[len(mm.UPos)+i])
	}
	return uv
}

// SeedsForMask solves [A;B]·s = (u‖v) for the seeds consistent with one
// recovered mask assignment, up to limit seeds. ok=false means the system
// is inconsistent: the SAT equivalence class contained a mask outside the
// LFSR-reachable space, and that candidate is pruned.
func (mm *MaskModel) SeedsForMask(uv gf2.Vec, limit int) (seeds []gf2.Vec, ok bool) {
	stacked := gf2.VStack(mm.A, mm.B)
	return gf2.EnumerateSolutions(stacked, uv, limit)
}

// SeedsForMaskCoset recovers every seed whose mask lies in the coset
// spanned by the recovered mask-class members: the class of functionally
// equivalent masks is always m0 ⊕ V for a linear subspace V (mask
// differences compose under XOR), so the seeds solve the augmented system
//
//	[A;B]·s ⊕ F·t = m0
//
// where F is an echelon basis of the observed member differences. If the
// member list is the complete class (exact enumeration), the result is the
// complete seed-candidate set; a partial member list yields a sound subset.
func (mm *MaskModel) SeedsForMaskCoset(members []gf2.Vec, limit int) []gf2.Vec {
	if len(members) == 0 {
		return nil
	}
	m0 := members[0]
	// Basis of the difference space V: row-reduce the member differences.
	diffs := gf2.NewMat(0, m0.Len())
	for _, m := range members[1:] {
		diffs.AppendRow(m.XorInto(m0))
	}
	var basis []gf2.Vec
	if diffs.Rows() > 0 {
		ech := gf2.Reduce(diffs)
		for i := 0; i < ech.Rank(); i++ {
			basis = append(basis, ech.R.Row(i))
		}
	}
	// Augmented system: columns of [A;B] for s, columns of basis for t.
	k := mm.Design.Config.KeyBits
	rows := 2 * mm.Design.Chain.Length
	aug := gf2.NewMat(rows, k+len(basis))
	for r := 0; r < mm.Design.Chain.Length; r++ {
		for _, c := range mm.A.Row(r).Ones() {
			aug.Set(r, c, true)
		}
		for _, c := range mm.B.Row(r).Ones() {
			aug.Set(mm.Design.Chain.Length+r, c, true)
		}
	}
	for ti, b := range basis {
		for _, r := range b.Ones() {
			aug.Set(r, k+ti, true)
		}
	}
	sols, ok := gf2.EnumerateSolutions(aug, m0, limit)
	if !ok {
		return nil
	}
	// Project to s and dedupe (distinct (s,t) pairs can share s only if F
	// had dependent columns, which the echelon construction rules out; the
	// dedupe guards against future basis changes).
	seen := make(map[string]bool, len(sols))
	var seeds []gf2.Vec
	for _, st := range sols {
		s := gf2.NewVec(k)
		for _, one := range st.Ones() {
			if one < k {
				s.Set(one, true)
			}
		}
		if key := s.String(); !seen[key] {
			seen[key] = true
			seeds = append(seeds, s)
		}
	}
	return seeds
}

// maskInsight adapts a seed-space InsightSource (the insight tracker) to
// the mask key space of a MaskModel. Each mask key bit j is the linear form
// mrows[j]·s of the seed, so a certified seed constraint r·s = c translates
// to the key constraint Σ_{j∈J} key[j] = c for any J with Σ_{j∈J} mrows[j]
// = r — found by solving Mᵀ·y = r for the selection vector y. Rows outside
// the mask row space carry seed information the mask model cannot express
// and are skipped (sound: fewer injected constraints never shrinks the
// candidate set below the true class). SolveKey fires as soon as every mask
// key bit is determined by the certified basis, which can happen before
// full seed rank when the masks span less than the whole seed space.
//
// The adapter is only touched from the attack's injection point (one
// goroutine), so it carries no lock of its own; the wrapped source does its
// own locking.
type maskInsight struct {
	src   satattack.InsightSource
	k     int       // seed bits
	mrows []gf2.Vec // per key bit: the seed-space row computing that bit
	mt    *gf2.Mat  // k × numKey: column j is mrows[j]
	basis *gf2.Basis
}

// newMaskInsight wraps a seed-space source for one mask model.
func newMaskInsight(mm *MaskModel, src satattack.InsightSource) *maskInsight {
	k := mm.Design.Config.KeyBits
	var mrows []gf2.Vec
	for _, j := range mm.UPos {
		mrows = append(mrows, mm.A.Row(j))
	}
	for _, j := range mm.VPos {
		mrows = append(mrows, mm.B.Row(j))
	}
	mt := gf2.NewMat(k, len(mrows))
	for j, r := range mrows {
		for _, c := range r.Ones() {
			mt.Set(c, j, true)
		}
	}
	return &maskInsight{src: src, k: k, mrows: mrows, mt: mt, basis: gf2.NewBasis(k)}
}

// ConstraintsSince implements satattack.InsightSource: it drains the wrapped
// seed-space source, folds every row into its own basis (for SolveKey), and
// returns the translatable ones re-indexed over the mask key bits. The
// cursor is the wrapped source's cursor, passed through.
func (mi *maskInsight) ConstraintsSince(from int) ([]satattack.KeyConstraint, int) {
	inner, next := mi.src.ConstraintsSince(from)
	var out []satattack.KeyConstraint
	for _, c := range inner {
		row := gf2.NewVec(mi.k)
		for _, i := range c.Idx {
			if i >= mi.k {
				row = gf2.Vec{}
				break
			}
			row.Set(i, true)
		}
		if row.Len() == 0 {
			continue // malformed row from a foreign source; drop it
		}
		mi.basis.Insert(row, c.RHS)
		y, ok := gf2.Solve(mi.mt, row)
		if !ok {
			continue // outside the mask row space: inexpressible here
		}
		out = append(out, satattack.KeyConstraint{Idx: y.Ones(), RHS: c.RHS})
	}
	return out, next
}

// SolveKey implements satattack.InsightSource: the mask key is determined
// once every key bit's seed row projects onto the certified basis.
func (mi *maskInsight) SolveKey() ([]bool, bool) {
	if mi.basis.Inconsistent() {
		return nil, false
	}
	key := make([]bool, len(mi.mrows))
	for j, r := range mi.mrows {
		rhs, determined := mi.basis.Project(r)
		if !determined {
			return nil, false
		}
		key[j] = rhs
	}
	return key, true
}
