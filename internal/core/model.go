// Package core implements the DynUnlock attack (paper Sec. III).
//
// The attack turns a dynamically scan-locked sequential circuit into a
// combinational locked circuit whose key inputs are the PRNG seed bits
// (Algorithm 1 / Fig. 4):
//
//	a'  =  a  ⊕  A·s        (scan-in masks)
//	(b', po) = C(a', pi)    (one capture of the combinational core)
//	b   =  b' ⊕  B·s        (scan-out masks)
//
// where s is the seed, and A, B are GF(2) matrices obtained by unrolling
// the LFSR across the scan session's clock cycles. The model is exact: the
// oracle chip's cycle-accurate simulation and this closed form agree bit
// for bit (tested in this package and in internal/oracle).
//
// The modeled circuit is then handed to the classic SAT attack
// (internal/satattack); every distinguishing input is applied to the real
// chip through the obfuscated scan chain, and on convergence the surviving
// seed assignments are enumerated. The linear-algebraic structure also
// yields an analytic prediction: the number of indistinguishable seeds is
// 2^(k − rank[A;B]), which the experiments cross-check against the SAT
// enumeration.
package core

import (
	"fmt"

	"dynunlock/internal/gf2"
	"dynunlock/internal/lfsr"
	"dynunlock/internal/lock"
	"dynunlock/internal/netlist"
	"dynunlock/internal/satattack"
	"dynunlock/internal/scan"
)

// Model is the combinational locked model of a scan-locked design.
type Model struct {
	// Design is the locked design being modeled.
	Design *lock.Design
	// PatIdx is the pattern index modeled (0 unless studying PerPattern
	// epochs beyond the first).
	PatIdx int
	// A and B are the scan-in and scan-out seed-mask matrices (n×k).
	A, B *gf2.Mat
	// Netlist is the combinational model circuit. Inputs are ordered:
	// original PIs, chain bits a0…a(n-1), seed bits s0…s(k-1). Outputs are
	// ordered: original POs, observed scan-out b0…b(n-1).
	Netlist *netlist.Netlist
	// Locked is the model packaged for the SAT attack: seed bits are the
	// key inputs.
	Locked *satattack.Locked
}

// maskMatrices computes A and B for the design at the given pattern index
// (single capture).
func maskMatrices(d *lock.Design, patIdx int) (A, B *gf2.Mat, err error) {
	return maskMatricesN(d, patIdx, 1)
}

// MaskMatrices returns the session mask matrices (A, B) for one capture
// session at the given pattern index: scan-in bit j is XOR-masked by
// A.Row(j)·seed on the way in and scan-out bit j by B.Row(j)·seed on the
// way out. Observability layers (internal/insight) use them to linearize
// oracle responses over the seed without rebuilding the SAT model.
func MaskMatrices(d *lock.Design, patIdx int) (A, B *gf2.Mat, err error) {
	return maskMatrices(d, patIdx)
}

// registerStates returns the symbolic key-register states for step counts
// 0..maxSteps: states[t]·seed is the register value after t steps.
func registerStates(d *lock.Design, maxSteps int) ([]*gf2.Mat, error) {
	if d.Config.Policy == scan.Static {
		states := make([]*gf2.Mat, maxSteps+1)
		id := gf2.Identity(d.Config.KeyBits)
		for i := range states {
			states[i] = id
		}
		return states, nil
	}
	return lfsr.UnrollStates(d.Config.Poly, maxSteps+1)
}

// BuildModel constructs the combinational locked model for one capture
// session of the design (Algorithm 1).
func BuildModel(d *lock.Design, patIdx int) (*Model, error) {
	if patIdx < 0 {
		return nil, fmt.Errorf("core: negative pattern index")
	}
	A, B, err := maskMatrices(d, patIdx)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	n := d.Chain.Length
	k := d.Config.KeyBits
	src := d.View

	m := netlist.New(fmt.Sprintf("%s-dynunlock-model", d.Netlist.Name))
	piIDs := make([]netlist.SignalID, src.NumPI)
	for i := range piIDs {
		id, err := m.AddInput(fmt.Sprintf("pi%d", i))
		if err != nil {
			return nil, err
		}
		piIDs[i] = id
	}
	aIDs := make([]netlist.SignalID, n)
	for j := range aIDs {
		id, err := m.AddInput(fmt.Sprintf("a%d", j))
		if err != nil {
			return nil, err
		}
		aIDs[j] = id
	}
	sIDs := make([]netlist.SignalID, k)
	for b := range sIDs {
		id, err := m.AddInput(fmt.Sprintf("s%d", b))
		if err != nil {
			return nil, err
		}
		sIDs[b] = id
	}

	// maskXor builds (XOR of seed bits in row) ⊕ base. The seed sub-chain
	// is built first so that CNF structural hashing shares it across the
	// per-DIP constraint copies, where `base` is a constant.
	maskXor := func(name string, row gf2.Vec, base netlist.SignalID) (netlist.SignalID, error) {
		ones := row.Ones()
		if len(ones) == 0 {
			return base, nil
		}
		acc := sIDs[ones[0]]
		for _, b := range ones[1:] {
			id, err := m.AddGate("", netlist.Xor, acc, sIDs[b])
			if err != nil {
				return 0, err
			}
			acc = id
		}
		return m.AddGate(name, netlist.Xor, acc, base)
	}

	aPrime := make([]netlist.SignalID, n)
	for j := 0; j < n; j++ {
		id, err := maskXor(fmt.Sprintf("ap%d", j), A.Row(j), aIDs[j])
		if err != nil {
			return nil, err
		}
		aPrime[j] = id
	}

	// Instantiate the combinational core with PIs mapped to pi and present
	// state mapped to a'.
	coreIn := make([]netlist.SignalID, len(src.Inputs))
	copy(coreIn, piIDs)
	copy(coreIn[src.NumPI:], aPrime)
	coreOut, err := appendComb(m, src, coreIn)
	if err != nil {
		return nil, err
	}
	poIDs := coreOut[:src.NumPO]
	bPrime := coreOut[src.NumPO:]

	for _, po := range poIDs {
		m.MarkOutput(po)
	}
	for j := 0; j < n; j++ {
		id, err := maskXor(fmt.Sprintf("b%d", j), B.Row(j), bPrime[j])
		if err != nil {
			return nil, err
		}
		m.MarkOutput(id)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("core: model netlist invalid: %w", err)
	}
	view, err := netlist.NewCombView(m)
	if err != nil {
		return nil, err
	}
	nonKey := src.NumPI + n
	locked := satattack.NewLocked(view, func(i int, _ netlist.SignalID) bool { return i >= nonKey })
	if err := locked.Validate(); err != nil {
		return nil, err
	}
	return &Model{Design: d, PatIdx: patIdx, A: A, B: B, Netlist: m, Locked: locked}, nil
}

// appendComb clones the combinational logic of src into dst, substituting
// inMap[i] for src.Inputs[i]. It returns the dst signals corresponding to
// src.Outputs.
func appendComb(dst *netlist.Netlist, src *netlist.CombView, inMap []netlist.SignalID) ([]netlist.SignalID, error) {
	if len(inMap) != len(src.Inputs) {
		return nil, fmt.Errorf("core: input map length %d, want %d", len(inMap), len(src.Inputs))
	}
	n := src.N
	sub := make([]netlist.SignalID, n.NumSignals())
	have := make([]bool, n.NumSignals())
	for i, s := range src.Inputs {
		sub[s] = inMap[i]
		have[s] = true
	}
	for id := 0; id < n.NumSignals(); id++ {
		sid := netlist.SignalID(id)
		switch n.Type(sid) {
		case netlist.Const0, netlist.Const1:
			c, err := dst.AddConst("", n.Type(sid) == netlist.Const1)
			if err != nil {
				return nil, err
			}
			sub[sid] = c
			have[sid] = true
		}
	}
	for _, id := range src.Order {
		g := n.Gate(id)
		fan := make([]netlist.SignalID, len(g.Fanin))
		for i, f := range g.Fanin {
			if !have[f] {
				return nil, fmt.Errorf("core: signal %q used before mapped", n.SignalName(f))
			}
			fan[i] = sub[f]
		}
		nid, err := dst.AddGate("", g.Type, fan...)
		if err != nil {
			return nil, err
		}
		sub[id] = nid
		have[id] = true
	}
	out := make([]netlist.SignalID, len(src.Outputs))
	for i, s := range src.Outputs {
		if !have[s] {
			return nil, fmt.Errorf("core: output %q not produced", n.SignalName(s))
		}
		out[i] = sub[s]
	}
	return out, nil
}

// Rank returns rank([A;B]), the number of independent GF(2) constraints the
// scan obfuscation layer exposes about the seed.
func (m *Model) Rank() int {
	return gf2.Rank(gf2.VStack(m.A, m.B))
}

// PredictedCandidatesLog2 returns log2 of the analytically predicted number
// of indistinguishable seeds: k − rank([A;B]). The SAT enumeration must
// agree for non-degenerate cores (verified in tests).
func (m *Model) PredictedCandidatesLog2() int {
	return m.Design.Config.KeyBits - m.Rank()
}
