package core

import (
	"math/rand"
	"sort"
	"testing"

	"dynunlock/internal/bench"
	"dynunlock/internal/gf2"
	"dynunlock/internal/lock"
	"dynunlock/internal/oracle"
	"dynunlock/internal/scan"
)

// ModeDirect (the paper's seed-parameterized formulation) and ModeLinear
// (mask-space SAT attack + GF(2) back-substitution) must recover identical
// candidate sets — the equivalence DESIGN.md claims.
func TestModesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for _, policy := range []scan.Policy{scan.PerCycle, scan.Static} {
		for trial := 0; trial < 3; trial++ {
			ffs := 5 + rng.Intn(8)
			keyBits := 3 + rng.Intn(4)
			_, chip := lockedChip(t, ffs, keyBits, policy, rng.Int63n(1<<40)+1, rng.Int63n(1<<40)+1)

			direct, err := Attack(chip, Options{Mode: ModeDirect, EnumerateLimit: 1 << uint(keyBits)})
			if err != nil {
				t.Fatalf("direct: %v", err)
			}
			linear, err := Attack(chip, Options{Mode: ModeLinear, EnumerateLimit: 1 << uint(keyBits)})
			if err != nil {
				t.Fatalf("linear: %v", err)
			}
			if !direct.Exact || !linear.Exact {
				t.Fatalf("%v ffs=%d k=%d: inexact (direct=%v linear=%v)", policy, ffs, keyBits, direct.Exact, linear.Exact)
			}
			a, b := seedsSorted(direct), seedsSorted(linear)
			if len(a) != len(b) {
				t.Fatalf("%v ffs=%d k=%d: candidate counts differ: direct=%d linear=%d",
					policy, ffs, keyBits, len(a), len(b))
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%v ffs=%d k=%d: candidate sets differ", policy, ffs, keyBits)
				}
			}
			if !ContainsSeed(direct.SeedCandidates, chip.SecretSeed()) {
				t.Fatal("secret missing")
			}
		}
	}
}

func seedsSorted(r *Result) []string {
	out := make([]string, len(r.SeedCandidates))
	for i, s := range r.SeedCandidates {
		out[i] = s.String()
	}
	sort.Strings(out)
	return out
}

func TestModeString(t *testing.T) {
	if ModeLinear.String() != "linear" || ModeDirect.String() != "direct" {
		t.Fatal("Mode.String wrong")
	}
}

// DOS-style locking with an update period greater than one: the session-0
// model still applies (the register holds the seed for the whole first
// epoch), and the attack recovers the seed.
func TestAttackDOSPeriodGreaterThanOne(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	n, err := bench.Generate(bench.GenConfig{Name: "dos", PIs: 6, POs: 3, FFs: 10, Gates: 80, Seed: 91})
	if err != nil {
		t.Fatal(err)
	}
	d, err := lock.Lock(n, lock.Config{KeyBits: 6, Policy: scan.PerPattern, Period: 3})
	if err != nil {
		t.Fatal(err)
	}
	seed := gf2.NewVec(6)
	for i := 0; i < 6; i++ {
		if rng.Intn(2) == 1 {
			seed.Set(i, true)
		}
	}
	seed.Set(0, true)
	auth := make([]bool, 6)
	auth[1] = true
	chip, err := oracle.New(d, seed, auth)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Attack(chip, Options{EnumerateLimit: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || !ContainsSeed(res.SeedCandidates, seed) {
		t.Fatalf("DOS p=3 attack failed: converged=%v candidates=%d", res.Converged, len(res.SeedCandidates))
	}
}
