package core

import (
	"context"
	"fmt"

	"dynunlock/internal/gf2"
	"dynunlock/internal/lock"
	"dynunlock/internal/netlist"
	"dynunlock/internal/satattack"
	"dynunlock/internal/scan"
	"dynunlock/internal/trace"
)

// maskMatricesN computes the scan-in matrix A and the scan-out matrix B
// for a session with the given number of consecutive captures. A is
// capture-count independent; B's term cycles shift with extra captures, so
// stacking single- and multi-capture constraints can raise the total rank —
// the paper's "carry over the seed information recovered from previous
// capture cycles" refinement.
func maskMatricesN(d *lock.Design, patIdx, captures int) (A, B *gf2.Mat, err error) {
	if captures < 1 {
		return nil, nil, fmt.Errorf("core: captures %d must be >= 1", captures)
	}
	if d.Nonlinear() {
		return nil, nil, fmt.Errorf("core: key register has nonlinear feedback; DynUnlock cannot model it (paper Sec. V)")
	}
	k := d.Config.KeyBits
	n := d.Chain.Length
	maxSteps := 0
	for cycle := 0; cycle <= d.Chain.SessionCyclesN(captures); cycle++ {
		if s := d.Config.Policy.Steps(patIdx, cycle, d.Config.Period); s > maxSteps {
			maxSteps = s
		}
	}
	states, err := registerStates(d, maxSteps)
	if err != nil {
		return nil, nil, err
	}
	row := func(terms []scan.Term) gf2.Vec {
		v := gf2.NewVec(k)
		for _, t := range terms {
			steps := d.Config.Policy.Steps(patIdx, t.Cycle, d.Config.Period)
			v.Xor(states[steps].Row(t.KeyBit))
		}
		return v
	}
	A, B = gf2.NewMat(n, k), gf2.NewMat(n, k)
	for j := 0; j < n; j++ {
		A.SetRow(j, row(d.Chain.InMaskTerms(j)))
		B.SetRow(j, row(d.Chain.OutMaskTermsN(j, captures)))
	}
	return A, B, nil
}

// MultiModel is the combinational model of a session with several
// consecutive capture cycles: the core function is unrolled once per
// capture.
type MultiModel struct {
	Design   *lock.Design
	PatIdx   int
	Captures int
	A, B     *gf2.Mat
	// Netlist inputs: pi(0)…pi(captures-1) blocks, then a, then the used
	// mask bits (mask-space form). Outputs: POs of each capture, then b.
	Netlist *netlist.Netlist
	Locked  *satattack.Locked
	uPos    []int
	vPos    []int
}

// BuildMaskModelN constructs the mask-space model for a multi-capture
// session.
func BuildMaskModelN(d *lock.Design, patIdx, captures int) (*MultiModel, error) {
	if patIdx < 0 {
		return nil, fmt.Errorf("core: negative pattern index")
	}
	A, B, err := maskMatricesN(d, patIdx, captures)
	if err != nil {
		return nil, err
	}
	n := d.Chain.Length
	src := d.View
	mm := &MultiModel{Design: d, PatIdx: patIdx, Captures: captures, A: A, B: B}

	m := netlist.New(fmt.Sprintf("%s-mask-model-x%d", d.Netlist.Name, captures))
	piIDs := make([][]netlist.SignalID, captures)
	for c := 0; c < captures; c++ {
		piIDs[c] = make([]netlist.SignalID, src.NumPI)
		for i := range piIDs[c] {
			piIDs[c][i], err = m.AddInput(fmt.Sprintf("pi%d_%d", c, i))
			if err != nil {
				return nil, err
			}
		}
	}
	aIDs := make([]netlist.SignalID, n)
	for j := range aIDs {
		aIDs[j], err = m.AddInput(fmt.Sprintf("a%d", j))
		if err != nil {
			return nil, err
		}
	}
	uIDs := make(map[int]netlist.SignalID)
	for j := 0; j < n; j++ {
		if !A.Row(j).IsZero() {
			id, err := m.AddInput(fmt.Sprintf("u%d", j))
			if err != nil {
				return nil, err
			}
			uIDs[j] = id
			mm.uPos = append(mm.uPos, j)
		}
	}
	vIDs := make(map[int]netlist.SignalID)
	for j := 0; j < n; j++ {
		if !B.Row(j).IsZero() {
			id, err := m.AddInput(fmt.Sprintf("v%d", j))
			if err != nil {
				return nil, err
			}
			vIDs[j] = id
			mm.vPos = append(mm.vPos, j)
		}
	}

	state := make([]netlist.SignalID, n)
	for j := 0; j < n; j++ {
		if id, ok := uIDs[j]; ok {
			ap, err := m.AddGate(fmt.Sprintf("ap%d", j), netlist.Xor, aIDs[j], id)
			if err != nil {
				return nil, err
			}
			state[j] = ap
		} else {
			state[j] = aIDs[j]
		}
	}
	for c := 0; c < captures; c++ {
		coreIn := make([]netlist.SignalID, len(src.Inputs))
		copy(coreIn, piIDs[c])
		copy(coreIn[src.NumPI:], state)
		coreOut, err := appendComb(m, src, coreIn)
		if err != nil {
			return nil, err
		}
		for _, po := range coreOut[:src.NumPO] {
			m.MarkOutput(po)
		}
		copy(state, coreOut[src.NumPO:])
	}
	for j := 0; j < n; j++ {
		if id, ok := vIDs[j]; ok {
			b, err := m.AddGate(fmt.Sprintf("b%d", j), netlist.Xor, state[j], id)
			if err != nil {
				return nil, err
			}
			m.MarkOutput(b)
		} else {
			m.MarkOutput(state[j])
		}
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("core: multi-capture model invalid: %w", err)
	}
	view, err := netlist.NewCombView(m)
	if err != nil {
		return nil, err
	}
	nonKey := captures*src.NumPI + n
	locked := satattack.NewLocked(view, func(i int, _ netlist.SignalID) bool { return i >= nonKey })
	if err := locked.Validate(); err != nil {
		return nil, err
	}
	mm.Netlist = m
	mm.Locked = locked
	return mm, nil
}

// MaskVector expands a SAT key assignment into the full (u‖v) vector.
func (mm *MultiModel) MaskVector(key []bool) gf2.Vec {
	n := mm.Design.Chain.Length
	uv := gf2.NewVec(2 * n)
	for i, j := range mm.uPos {
		uv.Set(j, key[i])
	}
	for i, j := range mm.vPos {
		uv.Set(n+j, key[len(mm.uPos)+i])
	}
	return uv
}

// multiChipOracle adapts multi-capture sessions to the model's interface.
type multiChipOracle struct {
	chip     Chip
	testKey  []bool
	captures int
	sessions int
}

// Query implements satattack.Oracle for the multi-capture model: the input
// is captures PI blocks followed by the scan-in vector.
func (o *multiChipOracle) Query(in []bool) []bool {
	d := o.chip.Design()
	numPI := d.View.NumPI
	pis := make([][]bool, o.captures)
	for c := 0; c < o.captures; c++ {
		pis[c] = in[c*numPI : (c+1)*numPI]
	}
	a := in[o.captures*numPI:]
	o.chip.Reset()
	scanOut, pos := o.chip.SessionN(o.testKey, a, pis)
	o.sessions++
	var out []bool
	for _, po := range pos {
		out = append(out, po...)
	}
	return append(out, scanOut...)
}

// AttackMulti runs the DynUnlock attack with a multi-capture session model
// and combines its linear constraints with those of the single-capture
// masks: the seed candidates must satisfy every recovered mask under both
// B matrices, which prunes rank-deficient cases exactly as the paper's
// "second capture" refinement describes. AttackMulti is AttackMultiCtx
// under context.Background().
func AttackMulti(chip Chip, captures int, opts Options) (*Result, error) {
	return AttackMultiCtx(context.Background(), chip, captures, opts)
}

// AttackMultiCtx is AttackMulti with cancellation and tracing, with the
// same partial-result semantics as AttackCtx.
func AttackMultiCtx(ctx context.Context, chip Chip, captures int, opts Options) (*Result, error) {
	if captures < 2 {
		return AttackCtx(ctx, chip, opts)
	}
	tr := trace.From(ctx)
	d := chip.Design()
	if opts.EnumerateLimit == 0 {
		opts.EnumerateLimit = 256
	}
	unroll := tr.Start("unroll")
	mm, err := BuildMaskModelN(d, 0, captures)
	if err != nil {
		unroll.End()
		return nil, err
	}
	unroll.Add("captures", uint64(captures))
	unroll.Add("key_bits", uint64(d.Config.KeyBits))
	unroll.End()
	if opts.TestKey == nil {
		opts.TestKey = make([]bool, d.Config.KeyBits)
	}
	adapter := &multiChipOracle{chip: chip, testKey: opts.TestKey, captures: captures}
	saRes, err := satattack.RunCtx(ctx, mm.Locked, adapter, satattack.Options{
		Portfolio:      opts.Portfolio,
		MaxIterations:  opts.MaxIterations,
		EnumerateLimit: opts.EnumerateLimit,
		ConflictBudget: opts.ConflictBudget,
		Log:            opts.Log,
		OnDIP:          opts.OnDIP,
		Search:         opts.Search,
	})
	if err != nil {
		return nil, err
	}
	res := &Result{
		Mode:       ModeLinear,
		Iterations: saRes.Iterations,
		Queries:    adapter.sessions,
		Converged:  saRes.Converged,
		Exact:      saRes.CandidatesExact,
		Stopped:    saRes.Stopped,
		StopReason: saRes.StopReason,
	}
	stacked := gf2.VStack(mm.A, mm.B)
	res.Rank = gf2.Rank(stacked)
	res.PredictedLog2 = d.Config.KeyBits - res.Rank
	res.SolverStats = saRes.SolverStats
	res.InstanceStats = saRes.InstanceStats
	res.InstanceWins = saRes.InstanceWins

	masks := saRes.Candidates
	if len(masks) == 0 && saRes.Key != nil {
		masks = [][]bool{saRes.Key}
	}
	refine := tr.Start("refine")
	members := make([]gf2.Vec, len(masks))
	for i, mk := range masks {
		members[i] = mm.MaskVector(mk)
	}
	single := &MaskModel{Design: d, A: mm.A, B: mm.B}
	seeds := single.SeedsForMaskCoset(members, opts.EnumerateLimit+1)
	if len(seeds) > opts.EnumerateLimit {
		seeds = seeds[:opts.EnumerateLimit]
		res.Exact = false
	}
	res.SeedCandidates = seeds
	refine.Add("mask_candidates", uint64(len(masks)))
	refine.Add("seed_candidates", uint64(len(seeds)))
	refine.End()
	res.Verified = len(seeds) > 0 // probe verification is the caller's via Verifier if needed
	return res, nil
}
