package core

import (
	"math/rand"
	"testing"

	"dynunlock/internal/gf2"
	"dynunlock/internal/scan"
	"dynunlock/internal/sim"
)

// The multi-capture model must match the chip's multi-capture sessions bit
// for bit, as the single-capture model does.
func TestMultiCaptureModelMatchesChip(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for _, captures := range []int{2, 3} {
		for trial := 0; trial < 3; trial++ {
			ffs := 5 + rng.Intn(10)
			keyBits := 3 + rng.Intn(6)
			d, chip := lockedChip(t, ffs, keyBits, scan.PerCycle, rng.Int63n(1<<40)+1, rng.Int63n(1<<40)+1)
			mm, err := BuildMaskModelN(d, 0, captures)
			if err != nil {
				t.Fatal(err)
			}
			simulator := sim.NewComb(mm.Locked.View)
			seed := chip.SecretSeed()
			uv := gf2.VStack(mm.A, mm.B).MulVec(seed)

			for q := 0; q < 4; q++ {
				scanIn := randBools(rng, ffs)
				pis := make([][]bool, captures)
				for c := range pis {
					pis[c] = randBools(rng, 6)
				}
				chip.Reset()
				scanOut, pos := chip.SessionN(make([]bool, keyBits), scanIn, pis)

				in := make([]bool, len(mm.Locked.View.Inputs))
				off := 0
				for _, pi := range pis {
					copy(in[off:], pi)
					off += len(pi)
				}
				copy(in[off:], scanIn)
				off += ffs
				for _, j := range mm.uPos {
					in[off] = uv.Get(j)
					off++
				}
				for _, j := range mm.vPos {
					in[off] = uv.Get(ffs + j)
					off++
				}
				out := simulator.EvalBits(in)
				idx := 0
				for _, po := range pos {
					for _, b := range po {
						if out[idx] != b {
							t.Fatalf("captures=%d: PO %d mismatch", captures, idx)
						}
						idx++
					}
				}
				for j := 0; j < ffs; j++ {
					if out[idx+j] != scanOut[j] {
						t.Fatalf("captures=%d: scan-out %d mismatch", captures, j)
					}
				}
			}
		}
	}
}

// AttackMulti must recover the seed end to end.
func TestAttackMultiRecoversSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	_, chip := lockedChip(t, 9, 5, scan.PerCycle, rng.Int63n(1<<40)+1, rng.Int63n(1<<40)+1)
	res, err := AttackMulti(chip, 2, Options{EnumerateLimit: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || !ContainsSeed(res.SeedCandidates, chip.SecretSeed()) {
		t.Fatalf("multi-capture attack failed: converged=%v candidates=%d",
			res.Converged, len(res.SeedCandidates))
	}
	// captures < 2 falls back to the standard attack.
	res1, err := AttackMulti(chip, 1, Options{EnumerateLimit: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !ContainsSeed(res1.SeedCandidates, chip.SecretSeed()) {
		t.Fatal("fallback failed")
	}
}

// The paper's refinement claim: when the single-capture masks are rank
// deficient (more key bits than the session exposes), a second capture adds
// independent linear constraints and shrinks the candidate class.
func TestSecondCaptureShrinksCandidates(t *testing.T) {
	// Few flops, many key bits: rank([A;B]) < k for one capture.
	found := false
	for attempt := int64(0); attempt < 6 && !found; attempt++ {
		d, chip := lockedChip(t, 4, 10, scan.PerCycle, 100+attempt, 200+attempt)
		A1, B1, err := maskMatricesN(d, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		r1 := gf2.Rank(gf2.VStack(A1, B1))
		A2, B2, err := maskMatricesN(d, 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		combined := gf2.VStack(gf2.VStack(A1, B1), gf2.VStack(A2, B2))
		r12 := gf2.Rank(combined)
		if r1 >= 10 || r12 <= r1 {
			continue // this placement doesn't exhibit the deficiency; try another
		}
		found = true

		res1, err := Attack(chip, Options{EnumerateLimit: 2048})
		if err != nil {
			t.Fatal(err)
		}
		res2, err := AttackMulti(chip, 2, Options{EnumerateLimit: 2048})
		if err != nil {
			t.Fatal(err)
		}
		if !ContainsSeed(res1.SeedCandidates, chip.SecretSeed()) ||
			!ContainsSeed(res2.SeedCandidates, chip.SecretSeed()) {
			t.Fatal("seed lost")
		}
		// Intersecting both candidate sets realizes the combined rank.
		inter := 0
		for _, s2 := range res2.SeedCandidates {
			if ContainsSeed(res1.SeedCandidates, s2) {
				inter++
			}
		}
		if inter >= len(res1.SeedCandidates) && len(res1.SeedCandidates) > 1 {
			t.Fatalf("second capture did not prune: %d -> %d (ranks %d -> %d)",
				len(res1.SeedCandidates), inter, r1, r12)
		}
	}
	if !found {
		t.Skip("no rank-deficient placement found in attempts")
	}
}

func TestMaskMatricesNValidation(t *testing.T) {
	d, _ := lockedChip(t, 6, 4, scan.PerCycle, 300, 301)
	if _, _, err := maskMatricesN(d, 0, 0); err == nil {
		t.Fatal("want error for captures=0")
	}
	if _, err := BuildMaskModelN(d, -1, 1); err == nil {
		t.Fatal("want error for negative pattern index")
	}
}
