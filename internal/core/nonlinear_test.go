package core

import (
	"strings"
	"testing"

	"dynunlock/internal/bench"
	"dynunlock/internal/gf2"
	"dynunlock/internal/lock"
	"dynunlock/internal/oracle"
	"dynunlock/internal/scan"
)

// The paper's Discussion section: defenses whose dynamic key comes from a
// nonlinear (crypto-style) generator are outside DynUnlock's reach because
// the key stream is not a GF(2)-linear function of the seed. The library
// must refuse to build the linear model rather than silently produce a
// wrong one.
func TestNonlinearDefenseRejected(t *testing.T) {
	n, err := bench.Generate(bench.GenConfig{Name: "nl", PIs: 4, POs: 2, FFs: 8, Gates: 64, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	d, err := lock.Lock(n, lock.Config{
		KeyBits:        6,
		Policy:         scan.PerCycle,
		NonlinearPairs: [][2]int{{0, 3}, {2, 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Nonlinear() {
		t.Fatal("design should report nonlinear")
	}
	chip, err := oracle.New(d, gf2.Unit(6, 1), []bool{true, false, false, false, false, false})
	if err != nil {
		t.Fatal(err)
	}
	// The chip itself works: sessions complete and are reproducible.
	scanIn := make([]bool, 8)
	pi := make([]bool, 4)
	chip.Reset()
	out1, _ := chip.Session(make([]bool, 6), scanIn, pi)
	chip.Reset()
	out2, _ := chip.Session(make([]bool, 6), scanIn, pi)
	for i := range out1 {
		if out1[i] != out2[i] {
			t.Fatal("nonlinear chip not reproducible across resets")
		}
	}
	// But the attack must refuse with a clear diagnostic.
	if _, err := BuildModel(d, 0); err == nil || !strings.Contains(err.Error(), "nonlinear") {
		t.Fatalf("BuildModel error = %v, want nonlinear rejection", err)
	}
	if _, err := BuildMaskModel(d, 0); err == nil {
		t.Fatal("BuildMaskModel must also refuse")
	}
	if _, err := Attack(chip, Options{}); err == nil {
		t.Fatal("Attack must refuse nonlinear designs")
	}
	if _, err := NewVerifier(d); err == nil {
		t.Fatal("NewVerifier must refuse nonlinear designs")
	}
}

// The nonlinear register genuinely changes the scrambling: the same chip
// configuration with and without AND pairs produces different scan-outs.
func TestNonlinearChangesObfuscation(t *testing.T) {
	n, err := bench.Generate(bench.GenConfig{Name: "nl2", PIs: 4, POs: 2, FFs: 8, Gates: 64, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(pairs [][2]int) []bool {
		d, err := lock.Lock(n, lock.Config{KeyBits: 6, Policy: scan.PerCycle, NonlinearPairs: pairs})
		if err != nil {
			t.Fatal(err)
		}
		seed := gf2.FromBools([]bool{true, true, false, true, false, true})
		chip, err := oracle.New(d, seed, []bool{true, false, false, false, false, false})
		if err != nil {
			t.Fatal(err)
		}
		chip.Reset()
		out, _ := chip.Session(make([]bool, 6), make([]bool, 8), make([]bool, 4))
		return out
	}
	linear := mk(nil)
	nonlinear := mk([][2]int{{1, 4}})
	same := true
	for i := range linear {
		if linear[i] != nonlinear[i] {
			same = false
		}
	}
	if same {
		t.Fatal("AND pair had no effect on the key stream")
	}
}
