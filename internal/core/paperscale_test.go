package core

import (
	"context"
	"os"
	"testing"
	"time"

	"dynunlock/internal/scan"
	"dynunlock/internal/trace"
)

// Paper-scale attack runs (full flop counts, 128-bit keys). Opt in with
//
//	DYNUNLOCK_PAPERSCALE=1 go test ./internal/core -run TestPaperScale -v -timeout 24h
//
// Measured results are recorded in EXPERIMENTS.md. The largest circuits
// (s38584/s38417/s35932, 1233–1728 flops) take tens of minutes to hours
// per trial on the built-in solver. Progress streams through a trace
// TextSink onto stderr (visible under -v), and per-stage timings come from
// the span records — no raw prints from library or test code.
func TestPaperScale(t *testing.T) {
	if os.Getenv("DYNUNLOCK_PAPERSCALE") == "" {
		t.Skip("set DYNUNLOCK_PAPERSCALE=1 for paper-scale runs")
	}
	cases := []struct {
		name   string
		ffs, k int
	}{
		{"s5378", 160, 128},
		{"s13207", 202, 128},
		{"s15850", 442, 128},
		{"b20", 429, 128},
		{"b21", 429, 128},
		{"b22", 611, 128},
		{"b17", 864, 128},
		{"s38584", 1233, 128},
		{"s38417", 1564, 128},
		{"s35932", 1728, 128},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			start := time.Now()
			_, chip := lockedChip(t, tc.ffs, tc.k, scan.PerCycle, 42, 43)
			collector := trace.NewCollector()
			ctx := trace.With(context.Background(), trace.Multi(collector, trace.NewTextSink(os.Stderr)))
			res, err := AttackCtx(ctx, chip, Options{EnumerateLimit: 256})
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("RESULT %s ffs=%d k=%d: %v iters=%d cands=%d exact=%v rank=%d verified=%v conflicts=%d",
				tc.name, tc.ffs, tc.k, time.Since(start).Round(time.Millisecond),
				res.Iterations, len(res.SeedCandidates), res.Exact, res.Rank,
				res.Verified, res.SolverStats.Conflicts)
			for _, sp := range collector.Spans() {
				t.Logf("STAGE %s %s: %v", tc.name, sp.Name, sp.Duration.Round(time.Millisecond))
			}
			if !ContainsSeed(res.SeedCandidates, chip.SecretSeed()) {
				t.Error("secret not recovered")
			}
		})
	}
}
