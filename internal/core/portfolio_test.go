package core

import (
	"sort"
	"testing"

	"dynunlock/internal/bench"
	"dynunlock/internal/gf2"
	"dynunlock/internal/lock"
	"dynunlock/internal/oracle"
	"dynunlock/internal/scan"
)

// The portfolio engine must recover exactly the sequential engine's seed
// equivalence class on the paper's s208 walkthrough, for every portfolio
// size. The chip is re-fabricated per run so each engine sees a fresh
// oracle with identical secrets.
func TestS208WalkthroughPortfolioMatchesSequential(t *testing.T) {
	run := func(portfolio int) []string {
		n := bench.S208F()
		d, err := lock.Lock(n, lock.Config{KeyBits: 3, Policy: scan.PerCycle})
		if err != nil {
			t.Fatal(err)
		}
		d.Chain.Gates = []scan.KeyGate{{Link: 1, KeyBit: 0}, {Link: 2, KeyBit: 1}, {Link: 5, KeyBit: 2}}
		seed := gf2.FromBools([]bool{true, false, true})
		chip, err := oracle.New(d, seed, []bool{true, true, false})
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []Mode{ModeLinear, ModeDirect} {
			res, err := Attack(chip, Options{Mode: mode, Portfolio: portfolio, EnumerateLimit: 8})
			if err != nil {
				t.Fatalf("portfolio %d mode %v: %v", portfolio, mode, err)
			}
			if !res.Converged || !res.Exact {
				t.Fatalf("portfolio %d mode %v: not exactly converged", portfolio, mode)
			}
			if !ContainsSeed(res.SeedCandidates, seed) {
				t.Fatalf("portfolio %d mode %v: secret seed missing", portfolio, mode)
			}
			if !res.Verified {
				t.Fatalf("portfolio %d mode %v: probe verification failed", portfolio, mode)
			}
			if mode == ModeLinear {
				out := make([]string, len(res.SeedCandidates))
				for i, c := range res.SeedCandidates {
					out[i] = c.String()
				}
				sort.Strings(out)
				return out
			}
		}
		panic("unreachable")
	}

	ref := run(1)
	for _, n := range []int{2, 4} {
		got := run(n)
		if len(got) != len(ref) {
			t.Fatalf("portfolio %d: %d candidates, want %d", n, len(got), len(ref))
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("portfolio %d: candidate %d = %s, want %s", n, i, got[i], ref[i])
			}
		}
	}
}

// A mid-size locked circuit attacked with a portfolio must still satisfy
// the analytic candidate-count prediction 2^(k - rank[A;B]).
func TestPortfolioMatchesAnalyticPrediction(t *testing.T) {
	_, chip := lockedChip(t, 12, 6, scan.PerCycle, 31, 77)
	res, err := Attack(chip, Options{Portfolio: 3, EnumerateLimit: 256})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || !res.Exact {
		t.Fatal("portfolio attack not exactly converged")
	}
	if got, want := len(res.SeedCandidates), 1<<uint(res.PredictedLog2); got != want {
		t.Fatalf("candidates = %d, predicted %d", got, want)
	}
	if !ContainsSeed(res.SeedCandidates, chip.SecretSeed()) {
		t.Fatal("secret seed not recovered")
	}
}
