// Package daemon is the attack-as-a-service core behind cmd/dynunlockd:
// a long-running process that accepts DynUnlock attack jobs over a JSON
// HTTP API, runs them on a bounded worker pool with admission control,
// and exposes one shared observability plane — Prometheus metrics with
// per-job label scoping, a multiplexed SSE event feed with per-job
// filtering, and a flight-recorder bundle per job that a crashed or
// evicted job can later be resumed from.
//
// One registry, one bus, one listener serve every job:
//
//   - Every dynunlock_* series a job publishes carries a job="<id>"
//     label via the registry's label-scoped handle view
//     (metrics.Registry.WithLabels) — no instrumentation call site knows
//     about jobs.
//   - Every stream event a job publishes is stamped with its job ID via
//     the bus's job view (stream.Bus.WithJob); /events aggregates all
//     jobs under one strictly increasing sequence and /events?job=<id>
//     filters down to one.
//   - Job lifecycle transitions (queued → admitted → running →
//     done/failed/evicted, plus draining during shutdown) are published
//     as typed "job" stream events and mirrored in dynunlockd_jobs_*
//     gauges and counters.
package daemon

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"dynunlock/internal/metrics"
	"dynunlock/internal/stream"
)

// Daemon-plane metric families, alongside the dynunlock_* attack series.
const (
	// MetricJobsQueueDepth is the number of jobs admitted to the queue
	// and not yet picked up by a worker.
	MetricJobsQueueDepth = "dynunlockd_jobs_queue_depth"
	// MetricJobsInflight is the number of jobs currently executing.
	MetricJobsInflight = "dynunlockd_jobs_inflight"
	// MetricJobsSubmitted counts accepted submissions.
	MetricJobsSubmitted = "dynunlockd_jobs_submitted_total"
	// MetricJobsRejected counts submissions refused by admission control,
	// labeled reason="queue_full" | "draining" | "invalid".
	MetricJobsRejected = "dynunlockd_jobs_rejected_total"
	// MetricJobsCompleted counts finished jobs labeled
	// status="done" | "failed" | "evicted".
	MetricJobsCompleted = "dynunlockd_jobs_completed_total"
	// MetricJobsReplayedSessions counts oracle sessions answered from a
	// resumed job's transcript prefix instead of live simulation.
	MetricJobsReplayedSessions = "dynunlockd_jobs_replayed_sessions_total"
)

// Admission errors; the HTTP layer maps both to 503.
var (
	ErrQueueFull = errors.New("daemon: job queue full")
	ErrDraining  = errors.New("daemon: draining, not accepting jobs")
)

// Config sizes the daemon.
type Config struct {
	// Addr is the listen address of the combined API + observability
	// plane (e.g. ":9309", "127.0.0.1:0").
	Addr string
	// DataDir is where per-job flight bundles live (DataDir/<job-id>/).
	DataDir string
	// Workers is the attack worker pool size (default 2).
	Workers int
	// QueueDepth bounds jobs waiting for a worker; submissions beyond it
	// are rejected with 503 (default 8).
	QueueDepth int
	// SampleInterval is the per-job progress sampler cadence feeding
	// "delta" stream events (default metrics.DefaultProgressInterval).
	SampleInterval time.Duration
	// Log, when non-nil, receives daemon progress lines.
	Log io.Writer
}

// Daemon owns the worker pool, the job table, and the shared
// observability plane. Create with New, stop with Shutdown.
type Daemon struct {
	cfg Config
	reg *metrics.Registry
	bus *stream.Bus
	srv *metrics.Server
	log io.Writer

	queue chan *Job
	stop  chan struct{}
	wg    sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	nextID   int
	queued   int
	draining bool
}

// New builds and starts a daemon: the data directory is created, the
// registry and event bus come up, the HTTP plane binds cfg.Addr (with
// the /jobs API registered on the same mux as /metrics, /events, /live,
// /healthz, /readyz), and the worker pool starts pulling jobs.
func New(cfg Config) (*Daemon, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = metrics.DefaultProgressInterval
	}
	if cfg.DataDir == "" {
		cfg.DataDir = "dynunlockd-data"
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
		return nil, fmt.Errorf("daemon: data dir: %w", err)
	}
	d := &Daemon{
		cfg:   cfg,
		reg:   metrics.NewRegistry(),
		bus:   stream.NewBus(),
		log:   cfg.Log,
		queue: make(chan *Job, cfg.QueueDepth),
		stop:  make(chan struct{}),
		jobs:  make(map[string]*Job),
	}
	// Pre-create the daemon-plane families so a scrape before the first
	// job still shows them at zero.
	d.reg.Gauge(MetricJobsQueueDepth).Set(0)
	d.reg.Gauge(MetricJobsInflight).Set(0)
	d.reg.Counter(MetricJobsSubmitted)
	srv, err := metrics.ServeBus(cfg.Addr, d.reg, d.bus)
	if err != nil {
		return nil, err
	}
	d.srv = srv
	srv.Handle("POST /jobs", http.HandlerFunc(d.handleSubmit))
	srv.Handle("GET /jobs", http.HandlerFunc(d.handleList))
	srv.Handle("GET /jobs/{id}", http.HandlerFunc(d.handleGet))
	srv.Handle("DELETE /jobs/{id}", http.HandlerFunc(d.handleCancel))
	for i := 0; i < cfg.Workers; i++ {
		d.wg.Add(1)
		go d.worker()
	}
	return d, nil
}

// Addr returns the bound listen address (useful with ":0").
func (d *Daemon) Addr() string { return d.srv.Addr() }

// Registry exposes the shared registry (tests assert on it directly).
func (d *Daemon) Registry() *metrics.Registry { return d.reg }

// Submit validates spec, assigns a job ID, and enqueues the job. It
// returns ErrDraining once shutdown has begun and ErrQueueFull when the
// queue is at capacity — admission control instead of unbounded buffering.
func (d *Daemon) Submit(spec JobSpec) (*Job, error) {
	spec, resumedFrom, err := d.resolveSpec(spec)
	if err != nil {
		d.reg.Counter(MetricJobsRejected, "reason", "invalid").Inc()
		return nil, err
	}
	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		d.reg.Counter(MetricJobsRejected, "reason", "draining").Inc()
		return nil, ErrDraining
	}
	if d.queued >= d.cfg.QueueDepth {
		d.mu.Unlock()
		d.reg.Counter(MetricJobsRejected, "reason", "queue_full").Inc()
		return nil, ErrQueueFull
	}
	d.nextID++
	j := &Job{
		ID:          fmt.Sprintf("job-%04d", d.nextID),
		Spec:        spec,
		ResumedFrom: resumedFrom,
		state:       StateQueued,
		created:     time.Now(),
	}
	d.jobs[j.ID] = j
	d.order = append(d.order, j.ID)
	d.queued++
	d.mu.Unlock()

	d.reg.Counter(MetricJobsSubmitted).Inc()
	d.reg.Gauge(MetricJobsQueueDepth).Add(1)
	d.publishState(j, StateQueued, nil)
	fmt.Fprintf(d.log, "dynunlockd: %s queued (%s k=%d)\n", j.ID, spec.Benchmark, spec.KeyBits)
	// The send cannot block: queued (guarded above) bounds channel
	// occupancy, and the queue channel is never closed.
	d.queue <- j
	return j, nil
}

// Job returns the job with the given ID, or nil.
func (d *Daemon) Job(id string) *Job {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.jobs[id]
}

// Jobs returns every job in submission order.
func (d *Daemon) Jobs() []*Job {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]*Job, 0, len(d.order))
	for _, id := range d.order {
		out = append(out, d.jobs[id])
	}
	return out
}

// Cancel evicts a queued job or cancels a running one (which then
// finishes as evicted at the solver's next checkpoint). Terminal jobs
// return an error; unknown IDs return os.ErrNotExist.
func (d *Daemon) Cancel(id string) error {
	j := d.Job(id)
	if j == nil {
		return os.ErrNotExist
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued, StateAdmitted:
		j.cancelled = true
		j.mu.Unlock()
		return nil
	case StateRunning, StateDraining:
		j.cancelled = true
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return nil
	default:
		state := j.state
		j.mu.Unlock()
		return fmt.Errorf("daemon: job %s already %s", id, state)
	}
}

// worker pulls jobs until Shutdown closes the stop channel.
func (d *Daemon) worker() {
	defer d.wg.Done()
	for {
		select {
		case j := <-d.queue:
			d.dequeued()
			d.runJob(j)
		case <-d.stop:
			return
		}
	}
}

// dequeued moves the queue-depth accounting when a job leaves the queue.
func (d *Daemon) dequeued() {
	d.mu.Lock()
	d.queued--
	d.mu.Unlock()
	d.reg.Gauge(MetricJobsQueueDepth).Add(-1)
}

// evictQueued empties the queue, finishing every waiting job as evicted.
func (d *Daemon) evictQueued() {
	for {
		select {
		case j := <-d.queue:
			d.dequeued()
			d.finishJob(j, StateEvicted, "evicted at shutdown")
		default:
			return
		}
	}
}

// Shutdown drains the daemon gracefully, in the order a load balancer
// expects: admission closes first (/readyz flips to 503, POST /jobs
// rejects with 503), queued jobs are evicted, running jobs are marked
// draining and allowed to finish, and finally the HTTP plane shuts down
// via metrics.Server.Shutdown so live SSE clients get their buffered
// events plus one terminal snapshot frame before the streams end.
func (d *Daemon) Shutdown(grace time.Duration) error {
	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		return nil
	}
	d.draining = true
	d.mu.Unlock()
	d.srv.SetDraining()
	fmt.Fprintf(d.log, "dynunlockd: draining\n")

	// Evict everything still waiting for a worker.
	d.evictQueued()
	// Mark in-flight jobs draining (they run to completion).
	for _, j := range d.Jobs() {
		j.mu.Lock()
		running := j.state == StateRunning
		if running {
			j.state = StateDraining
		}
		j.mu.Unlock()
		if running {
			d.publishState(j, StateDraining, nil)
		}
	}
	close(d.stop)
	d.wg.Wait()
	// A submission that passed the draining check concurrently with this
	// shutdown may have landed in the queue after the first sweep, with
	// no worker left to pick it up; evict the stragglers too.
	d.evictQueued()
	fmt.Fprintf(d.log, "dynunlockd: jobs drained, closing HTTP plane\n")
	return d.srv.Shutdown(grace)
}

// Close tears the daemon down immediately: running jobs are cancelled
// and the listener closes without the SSE drain. Prefer Shutdown.
func (d *Daemon) Close() error {
	d.mu.Lock()
	d.draining = true
	d.mu.Unlock()
	for _, j := range d.Jobs() {
		d.Cancel(j.ID)
	}
	select {
	case <-d.stop:
	default:
		close(d.stop)
	}
	d.wg.Wait()
	return d.srv.Close()
}
