package daemon_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dynunlock"
	"dynunlock/internal/daemon"
	"dynunlock/internal/flight"
	"dynunlock/internal/stream"
)

// quickSpec is a sub-second 16-bit job every e2e test can afford.
func quickSpec() daemon.JobSpec {
	return daemon.JobSpec{Benchmark: "s5378", KeyBits: 16, Policy: "percycle",
		Scale: 16, Trials: 1, Seed: 7}
}

func startDaemon(t *testing.T, cfg daemon.Config) *daemon.Daemon {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	if cfg.SampleInterval == 0 {
		cfg.SampleInterval = 50 * time.Millisecond
	}
	d, err := daemon.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func submit(t *testing.T, addr string, spec daemon.JobSpec) daemon.JobStatus {
	t.Helper()
	st, code := submitRaw(t, addr, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	return st
}

func submitRaw(t *testing.T, addr string, spec daemon.JobSpec) (daemon.JobStatus, int) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post("http://"+addr+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		// The listener may already be gone (shutdown races); callers
		// that care assert on the returned code.
		return daemon.JobStatus{}, 0
	}
	defer resp.Body.Close()
	var st daemon.JobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

func waitTerminal(t *testing.T, addr, id string) daemon.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get("http://" + addr + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st daemon.JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch st.State {
		case daemon.StateDone, daemon.StateFailed, daemon.StateEvicted:
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return daemon.JobStatus{}
}

// TestDaemonJobMatchesCLIAttack is the determinism satellite: the same
// attack submitted through the daemon and run directly through the
// facade must produce bundles whose deterministic columns — recovered
// candidate set, secret seed, iteration and query counts — are
// identical.
func TestDaemonJobMatchesCLIAttack(t *testing.T) {
	d := startDaemon(t, daemon.Config{})
	st := submit(t, d.Addr(), quickSpec())
	fin := waitTerminal(t, d.Addr(), st.ID)
	if fin.State != daemon.StateDone {
		t.Fatalf("job finished %s (%s)", fin.State, fin.Error)
	}
	if fin.Result == nil || !fin.Result.Succeeded {
		t.Fatalf("job did not recover the seed: %+v", fin.Result)
	}

	// Reference: the identical config recorded via the facade, as
	// cmd/dynunlock would run it.
	refDir := t.TempDir()
	rec, err := flight.Create(refDir)
	if err != nil {
		t.Fatal(err)
	}
	rec.Tool = "test"
	cfg := quickSpec().Config()
	cfg.Recorder = rec
	if _, err := dynunlock.RunExperimentCtx(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteMetrics(nil); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	jobBundle, err := flight.Open(fin.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	refBundle, err := flight.Open(refDir)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := flight.Compare(&refBundle.Result, &jobBundle.Result); len(diffs) != 0 {
		t.Fatalf("daemon attack diverged from direct attack:\n  %s", strings.Join(diffs, "\n  "))
	}
	for i := range refBundle.Result.Trials {
		a, b := refBundle.Result.Trials[i], jobBundle.Result.Trials[i]
		if a.SecretSeed != b.SecretSeed {
			t.Fatalf("trial %d: secret seed %q != %q", i, a.SecretSeed, b.SecretSeed)
		}
		if strings.Join(a.SeedCandidates, ",") != strings.Join(b.SeedCandidates, ",") {
			t.Fatalf("trial %d: candidate sets differ", i)
		}
	}
	// The daemon bundle replays bit-identically like any CLI bundle.
	replayed, err := jobBundle.Replay(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if diffs := flight.Compare(&jobBundle.Result, replayed); len(diffs) != 0 {
		t.Fatalf("daemon bundle replay diverged:\n  %s", strings.Join(diffs, "\n  "))
	}
}

// TestJobLifecycleEventsOnFilteredFeed subscribes to /events?job=<id>
// before submitting and asserts the lifecycle frames arrive in order,
// tagged with the job, with strictly increasing sequence numbers.
func TestJobLifecycleEventsOnFilteredFeed(t *testing.T) {
	d := startDaemon(t, daemon.Config{})

	// The job ID is allocated at submit; subscribe to the aggregate feed
	// and filter client-side for the first job's ID, then verify the
	// server-side filter with a second, post-terminal connection check.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", "http://"+d.Addr()+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	dec := stream.NewDecoder(bufio.NewReader(resp.Body))

	st := submit(t, d.Addr(), quickSpec())
	waitTerminal(t, d.Addr(), st.ID)

	var states []string
	var lastSeq uint64
	deadline := time.After(30 * time.Second)
	for len(states) == 0 || states[len(states)-1] != daemon.StateDone {
		select {
		case <-deadline:
			t.Fatalf("terminal lifecycle event never arrived; saw %v", states)
		default:
		}
		ev, err := dec.Next()
		if err != nil {
			t.Fatalf("feed ended early (saw %v): %v", states, err)
		}
		if ev.Seq != 0 {
			if ev.Seq <= lastSeq {
				t.Fatalf("sequence not strictly increasing: %d after %d", ev.Seq, lastSeq)
			}
			lastSeq = ev.Seq
		}
		if ev.Type != stream.TypeJob {
			continue
		}
		if ev.Job != st.ID {
			t.Fatalf("job event tagged %q, want %q", ev.Job, st.ID)
		}
		state, _ := ev.Data["state"].(string)
		states = append(states, state)
	}
	want := []string{daemon.StateQueued, daemon.StateAdmitted, daemon.StateRunning, daemon.StateDone}
	got := strings.Join(states, ",")
	// The queued event can be published before this subscriber's
	// connection is registered; accept the suffix.
	if got != strings.Join(want, ",") && got != strings.Join(want[1:], ",") {
		t.Fatalf("lifecycle states %v, want %v (or its tail)", states, want)
	}
}

// TestEventsJobParamFiltersOtherJobs runs two jobs and asserts the
// filtered feed for one never carries envelopes of the other.
func TestEventsJobParamFiltersOtherJobs(t *testing.T) {
	d := startDaemon(t, daemon.Config{Workers: 2})

	// Hold a subscriber open so lifecycle publishes are retained.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", "http://"+d.Addr()+"/events", nil)
	agg, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer agg.Body.Close()

	a := submit(t, d.Addr(), quickSpec())
	spec2 := quickSpec()
	spec2.Seed = 11
	b := submit(t, d.Addr(), spec2)
	waitTerminal(t, d.Addr(), a.ID)
	waitTerminal(t, d.Addr(), b.ID)

	// Now attach a filtered subscriber and replay the ring: resume from
	// the start so retained events are re-delivered through the filter.
	fctx, fcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer fcancel()
	freq, _ := http.NewRequestWithContext(fctx, "GET",
		"http://"+d.Addr()+"/events?job="+a.ID+"&last-event-id=1", nil)
	fresp, err := http.DefaultClient.Do(freq)
	if err != nil {
		t.Fatal(err)
	}
	defer fresp.Body.Close()
	dec := stream.NewDecoder(bufio.NewReader(fresp.Body))
	sawJobA := false
	for {
		ev, err := dec.Next()
		if err != nil {
			break
		}
		if ev.Type == stream.TypeHello || ev.Type == stream.TypeSnapshot {
			continue
		}
		if ev.Job != a.ID {
			t.Fatalf("filtered feed leaked event for job %q: %+v", ev.Job, ev)
		}
		if ev.Type == stream.TypeJob {
			sawJobA = true
		}
		if state, _ := ev.Data["state"].(string); state == daemon.StateDone {
			break
		}
	}
	if !sawJobA {
		t.Fatal("filtered feed never delivered job A's lifecycle events")
	}
}

// TestQueueBackpressureRejects503 fills the queue and asserts admission
// control: the overflow submission is rejected 503 and counted.
func TestQueueBackpressureRejects503(t *testing.T) {
	d := startDaemon(t, daemon.Config{Workers: 1, QueueDepth: 1})
	// Worker 1 busy with the first job; the second occupies the queue
	// slot; the third must bounce. A long job keeps the worker busy:
	// trials inflate duration deterministically.
	long := quickSpec()
	long.Trials = 60
	first := submit(t, d.Addr(), long)
	submit(t, d.Addr(), quickSpec())
	var rejected bool
	for i := 0; i < 3; i++ {
		if _, code := submitRaw(t, d.Addr(), quickSpec()); code == http.StatusServiceUnavailable {
			rejected = true
			break
		}
	}
	if !rejected {
		t.Fatal("queue overflow was never rejected with 503")
	}
	if v, ok := d.Registry().Sum(daemon.MetricJobsRejected); !ok || v < 1 {
		t.Fatalf("rejected counter = %v (ok=%v), want >= 1", v, ok)
	}
	waitTerminal(t, d.Addr(), first.ID)
}

// TestCancelQueuedJobEvicts cancels a job stuck behind a busy worker.
func TestCancelQueuedJobEvicts(t *testing.T) {
	d := startDaemon(t, daemon.Config{Workers: 1, QueueDepth: 4})
	long := quickSpec()
	long.Trials = 60
	submit(t, d.Addr(), long)
	victim := submit(t, d.Addr(), quickSpec())
	req, _ := http.NewRequest("DELETE", "http://"+d.Addr()+"/jobs/"+victim.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}
	fin := waitTerminal(t, d.Addr(), victim.ID)
	if fin.State != daemon.StateEvicted {
		t.Fatalf("cancelled queued job finished %s, want evicted", fin.State)
	}
}

// TestResumeFromPartialBundleMatchesUninterrupted is the in-process
// crash-resume round trip: run a job to completion, forge the partial
// bundle a killed job would have left (transcript prefix, torn tail, no
// result.json), resume it, and require the resumed job's outcome to be
// identical to the uninterrupted one.
func TestResumeFromPartialBundleMatchesUninterrupted(t *testing.T) {
	dataDir := t.TempDir()
	d := startDaemon(t, daemon.Config{DataDir: dataDir})
	st := submit(t, d.Addr(), quickSpec())
	fin := waitTerminal(t, d.Addr(), st.ID)
	if fin.State != daemon.StateDone {
		t.Fatalf("job finished %s (%s)", fin.State, fin.Error)
	}
	full, err := flight.Open(fin.Bundle)
	if err != nil {
		t.Fatal(err)
	}

	// Forge the crash artifact under a job-like name the daemon can
	// resolve relative to its data dir.
	dead := filepath.Join(dataDir, "job-dead")
	if err := os.MkdirAll(dead, 0o755); err != nil {
		t.Fatal(err)
	}
	copyFile(t, filepath.Join(fin.Bundle, flight.ManifestFile), filepath.Join(dead, flight.ManifestFile))
	keepPrefixLines(t, filepath.Join(fin.Bundle, flight.OracleFile),
		filepath.Join(dead, flight.OracleFile), len(full.Sessions)/2)
	keepPrefixLines(t, filepath.Join(fin.Bundle, flight.DIPsFile),
		filepath.Join(dead, flight.DIPsFile), len(full.DIPs)/2)
	// Torn tail: half a JSON line, as a SIGKILL mid-write leaves it.
	f, err := os.OpenFile(filepath.Join(dead, flight.DIPsFile), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprint(f, `{"trial":0,"iterat`)
	f.Close()

	resumed := submit(t, d.Addr(), daemon.JobSpec{Resume: "job-dead"})
	rfin := waitTerminal(t, d.Addr(), resumed.ID)
	if rfin.State != daemon.StateDone {
		t.Fatalf("resumed job finished %s (%s)", rfin.State, rfin.Error)
	}
	if rfin.ReplayedSessions == 0 {
		t.Fatal("resumed job replayed nothing from the dead job's transcript")
	}
	rb, err := flight.Open(rfin.Bundle)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := flight.Compare(&full.Result, &rb.Result); len(diffs) != 0 {
		t.Fatalf("resumed run diverged from uninterrupted run:\n  %s", strings.Join(diffs, "\n  "))
	}
}

// TestShutdownDrainsGracefully verifies the SIGTERM sequence: readyz
// flips 503, new submissions bounce 503, queued jobs evict, running
// jobs finish with valid bundles.
func TestShutdownDrainsGracefully(t *testing.T) {
	d := startDaemon(t, daemon.Config{Workers: 1, QueueDepth: 4})
	long := quickSpec()
	long.Trials = 60
	running := submit(t, d.Addr(), long)
	queued := submit(t, d.Addr(), quickSpec())

	done := make(chan error, 1)
	go func() { done <- d.Shutdown(5 * time.Second) }()

	// During the drain window new submissions must bounce 503. Shutdown
	// flips draining before it waits for jobs, so poll briefly.
	rejected := false
	for i := 0; i < 200 && !rejected; i++ {
		if _, code := submitRaw(t, d.Addr(), quickSpec()); code == http.StatusServiceUnavailable {
			rejected = true
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !rejected {
		t.Error("submissions during drain were never rejected 503")
	}
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	if st := d.Job(queued.ID).State(); st != daemon.StateEvicted && st != daemon.StateDone {
		t.Fatalf("queued job state after drain: %s", st)
	}
	rj := d.Job(running.ID)
	if st := rj.State(); st != daemon.StateDone {
		t.Fatalf("running job state after drain: %s", st)
	}
	// The drained job's bundle is complete and valid.
	if _, err := flight.Open(rj.BundleDir()); err != nil {
		t.Fatalf("drained job bundle: %v", err)
	}
	// And the plane is down.
	if _, err := http.Get("http://" + d.Addr() + "/healthz"); err == nil {
		t.Fatal("HTTP plane still answering after shutdown")
	}
}

// TestJobScopedMetricsOnExposition asserts the shared registry carries
// job-labeled attack series plus the daemon-plane families.
func TestJobScopedMetricsOnExposition(t *testing.T) {
	d := startDaemon(t, daemon.Config{})
	st := submit(t, d.Addr(), quickSpec())
	waitTerminal(t, d.Addr(), st.ID)
	resp, err := http.Get("http://" + d.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, want := range []string{
		`job="` + st.ID + `"`,
		"dynunlockd_jobs_queue_depth",
		"dynunlockd_jobs_inflight",
		"dynunlockd_jobs_submitted_total",
		"dynunlockd_jobs_completed_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// The bundle's metrics.json is scoped: every dynunlock_* series in it
	// belongs to this job.
	var snap map[string]any
	data, err := os.ReadFile(filepath.Join(d.Job(st.ID).BundleDir(), flight.MetricsFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap) == 0 {
		t.Fatal("job metrics.json is empty")
	}
	for key := range snap {
		if strings.Contains(key, "{") && !strings.Contains(key, `job="`+st.ID+`"`) {
			t.Fatalf("job metrics.json leaked foreign series %q", key)
		}
	}
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func keepPrefixLines(t *testing.T, src, dst string, n int) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if n > len(lines) {
		n = len(lines)
	}
	if err := os.WriteFile(dst, []byte(strings.Join(lines[:n], "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
}
