package daemon

import (
	"encoding/json"
	"errors"
	"net/http"
	"os"
)

// The /jobs API rides the observability server's mux (metrics.Server
// .Handle), so one listener serves attack jobs and their telemetry:
//
//	POST   /jobs        submit a JobSpec    → 202 JobStatus
//	GET    /jobs        list jobs           → 200 {"jobs": [JobStatus]}
//	GET    /jobs/{id}   one job             → 200 JobStatus
//	DELETE /jobs/{id}   cancel/evict        → 202 JobStatus
//
// Admission failures (queue full, draining) return 503 so submitters
// can back off and retry against another instance; malformed specs 400;
// unknown IDs 404; cancelling a terminal job 409.

// maxSpecBytes bounds the POST body; specs are a handful of scalars.
const maxSpecBytes = 1 << 20

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (d *Daemon) handleSubmit(w http.ResponseWriter, req *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		d.reg.Counter(MetricJobsRejected, "reason", "invalid").Inc()
		writeError(w, http.StatusBadRequest, err)
		return
	}
	j, err := d.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (d *Daemon) handleList(w http.ResponseWriter, _ *http.Request) {
	jobs := d.Jobs()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (d *Daemon) handleGet(w http.ResponseWriter, req *http.Request) {
	j := d.Job(req.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, errors.New("daemon: no such job"))
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (d *Daemon) handleCancel(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	err := d.Cancel(id)
	switch {
	case errors.Is(err, os.ErrNotExist):
		writeError(w, http.StatusNotFound, errors.New("daemon: no such job"))
		return
	case err != nil:
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusAccepted, d.Job(id).Status())
}
