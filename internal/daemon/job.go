package daemon

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"dynunlock"
	"dynunlock/internal/core"
	"dynunlock/internal/flight"
	"dynunlock/internal/metrics"
	"dynunlock/internal/stream"
	"dynunlock/internal/trace"
)

// Job lifecycle states. The machine is linear with three exits:
//
//	queued → admitted → running → done
//	                            → failed
//	         (cancel)           → evicted
//	running → draining → done|failed|evicted   (shutdown window)
//
// A cancel against a queued/admitted job evicts it before any work
// happens; against a running job it cancels the attack context, and the
// job finishes as evicted at the solver's next checkpoint with its
// partial bundle on disk (resumable).
const (
	StateQueued   = "queued"
	StateAdmitted = "admitted"
	StateRunning  = "running"
	StateDraining = "draining"
	StateDone     = "done"
	StateFailed   = "failed"
	StateEvicted  = "evicted"
)

// JobSpec is the POST /jobs request body. The three encode flags default
// to true (the CLI's defaults) when omitted — pointer fields distinguish
// "absent" from "false". Resume names a previous job whose partial
// bundle seeds this one: every other field is then taken from that
// bundle's manifest and the recorded transcript prefix is replayed
// before the attack touches silicon.
type JobSpec struct {
	Benchmark string `json:"benchmark,omitempty"`
	KeyBits   int    `json:"keyBits,omitempty"`
	Policy    string `json:"policy,omitempty"` // static | perpattern | percycle (default)
	Period    int    `json:"period,omitempty"`
	Scale     int    `json:"scale,omitempty"`
	Trials    int    `json:"trials,omitempty"`
	Mode      string `json:"mode,omitempty"` // linear (default) | direct
	Limit     int    `json:"limit,omitempty"`
	MaxIters  int    `json:"maxIters,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
	NativeXor *bool  `json:"nativeXor,omitempty"`
	AIG       *bool  `json:"aig,omitempty"`
	Simplify  *bool  `json:"simplify,omitempty"`
	Analytic  bool   `json:"analytic,omitempty"`
	Resume    string `json:"resume,omitempty"`
}

// Job is one submitted attack with its lifecycle state.
type Job struct {
	ID   string
	Spec JobSpec
	// ResumedFrom is the source job ID when this job resumes a partial
	// bundle.
	ResumedFrom string

	mu        sync.Mutex
	state     string
	errMsg    string
	created   time.Time
	started   time.Time
	finished  time.Time
	cancel    context.CancelFunc
	cancelled bool
	bundle    string
	replayed  uint64
	result    *dynunlock.ExperimentResult
}

// State returns the job's current lifecycle state.
func (j *Job) State() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the experiment result once the job is done (nil before).
func (j *Job) Result() *dynunlock.ExperimentResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// BundleDir returns the job's flight bundle directory ("" until admitted).
func (j *Job) BundleDir() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.bundle
}

// JobStatus is the GET /jobs/{id} response body.
type JobStatus struct {
	ID               string         `json:"id"`
	State            string         `json:"state"`
	Spec             JobSpec        `json:"spec"`
	Error            string         `json:"error,omitempty"`
	Bundle           string         `json:"bundle,omitempty"`
	ResumedFrom      string         `json:"resumedFrom,omitempty"`
	ReplayedSessions uint64         `json:"replayedSessions,omitempty"`
	CreatedAt        string         `json:"createdAt"`
	StartedAt        string         `json:"startedAt,omitempty"`
	FinishedAt       string         `json:"finishedAt,omitempty"`
	Result           *JobResultView `json:"result,omitempty"`
}

// JobResultView summarizes a finished job's experiment result; the full
// per-trial record lives in the bundle's result.json.
type JobResultView struct {
	Trials     int     `json:"trials"`
	Candidates float64 `json:"avgCandidates"`
	Iterations float64 `json:"avgIterations"`
	Seconds    float64 `json:"avgSeconds"`
	Succeeded  bool    `json:"succeeded"`
	Stopped    bool    `json:"stopped,omitempty"`
	StopReason string  `json:"stopReason,omitempty"`
}

// Status snapshots the job for the HTTP API.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:               j.ID,
		State:            j.state,
		Spec:             j.Spec,
		Error:            j.errMsg,
		Bundle:           j.bundle,
		ResumedFrom:      j.ResumedFrom,
		ReplayedSessions: j.replayed,
		CreatedAt:        j.created.Format(time.RFC3339Nano),
	}
	if !j.started.IsZero() {
		st.StartedAt = j.started.Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		st.FinishedAt = j.finished.Format(time.RFC3339Nano)
	}
	if j.result != nil {
		st.Result = &JobResultView{
			Trials:     len(j.result.Trials),
			Candidates: j.result.AvgCandidates(),
			Iterations: j.result.AvgIterations(),
			Seconds:    j.result.AvgSeconds(),
			Succeeded:  j.result.AllSucceeded(),
			Stopped:    j.result.Stopped,
			StopReason: string(j.result.StopReason),
		}
	}
	return st
}

// parsePolicy accepts both the JSON spellings and the LockInfo render
// ("per-cycle(EFF-Dyn)") so resume specs round-trip through manifests.
func parsePolicy(s string) (dynunlock.Policy, error) {
	switch t := strings.ToLower(strings.TrimSpace(s)); {
	case t == "" || strings.HasPrefix(t, "percycle") || strings.HasPrefix(t, "per-cycle"):
		return dynunlock.PerCycle, nil
	case strings.HasPrefix(t, "perpattern") || strings.HasPrefix(t, "per-pattern"):
		return dynunlock.PerPattern, nil
	case strings.HasPrefix(t, "static"):
		return dynunlock.Static, nil
	default:
		return dynunlock.PerCycle, fmt.Errorf("daemon: unknown policy %q", s)
	}
}

func parseMode(s string) (dynunlock.Mode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "linear":
		return dynunlock.ModeLinear, nil
	case "direct":
		return dynunlock.ModeDirect, nil
	default:
		return dynunlock.ModeLinear, fmt.Errorf("daemon: unknown mode %q", s)
	}
}

func boolOr(p *bool, def bool) bool {
	if p == nil {
		return def
	}
	return *p
}

// resolveSpec validates a submission. A resume spec is rehydrated from
// the source job's manifest so the resumed attack re-runs the exact
// recorded configuration; explicit fields alongside "resume" are
// rejected rather than silently ignored.
func (d *Daemon) resolveSpec(spec JobSpec) (JobSpec, string, error) {
	if spec.Resume != "" {
		if spec.Benchmark != "" || spec.KeyBits != 0 {
			return spec, "", fmt.Errorf("daemon: a resume spec must not also set benchmark/keyBits")
		}
		src := spec.Resume
		part, err := flight.OpenPartial(filepath.Join(d.cfg.DataDir, src))
		if err != nil {
			return spec, "", fmt.Errorf("daemon: resume %s: %w", src, err)
		}
		m := &part.Manifest
		t, f := true, false
		b := func(v bool) *bool {
			if v {
				return &t
			}
			return &f
		}
		out := JobSpec{
			Benchmark: m.Benchmark,
			KeyBits:   m.Lock.KeyBits,
			Policy:    m.Lock.Policy,
			Period:    m.Lock.Period,
			Scale:     m.Scale,
			Trials:    m.Trials,
			Mode:      m.Mode,
			Limit:     m.EnumerateLimit,
			MaxIters:  m.MaxIterations,
			Seed:      m.SeedBase,
			NativeXor: b(m.NativeXor),
			AIG:       b(m.AIG),
			Simplify:  b(m.Simplify),
			Analytic:  m.Analytic,
			Resume:    src,
		}
		return out, src, nil
	}
	if spec.Benchmark == "" {
		return spec, "", fmt.Errorf("daemon: benchmark is required")
	}
	if spec.KeyBits <= 0 {
		return spec, "", fmt.Errorf("daemon: keyBits must be positive")
	}
	if _, err := parsePolicy(spec.Policy); err != nil {
		return spec, "", err
	}
	if _, err := parseMode(spec.Mode); err != nil {
		return spec, "", err
	}
	return spec, "", nil
}

// Config expands a resolved spec into the facade configuration.
func (s JobSpec) Config() dynunlock.ExperimentConfig {
	policy, _ := parsePolicy(s.Policy)
	mode, _ := parseMode(s.Mode)
	limit := s.Limit
	if limit <= 0 {
		limit = 256
	}
	return dynunlock.ExperimentConfig{
		Benchmark:      s.Benchmark,
		KeyBits:        s.KeyBits,
		Policy:         policy,
		Period:         s.Period,
		Scale:          s.Scale,
		Trials:         s.Trials,
		Mode:           mode,
		EnumerateLimit: limit,
		MaxIterations:  s.MaxIters,
		SeedBase:       s.Seed,
		NativeXor:      boolOr(s.NativeXor, true),
		AIG:            boolOr(s.AIG, true),
		Simplify:       boolOr(s.Simplify, true),
		Analytic:       s.Analytic,
	}
}

// publishState emits one job lifecycle event on the job-tagged bus view,
// so /events?job=<id> carries the job's own lifecycle and the aggregate
// feed interleaves all of them.
func (d *Daemon) publishState(j *Job, state string, extra map[string]any) {
	data := map[string]any{
		"job":       j.ID,
		"state":     state,
		"benchmark": j.Spec.Benchmark,
		"key_bits":  j.Spec.KeyBits,
	}
	if j.ResumedFrom != "" {
		data["resumed_from"] = j.ResumedFrom
	}
	for k, v := range extra {
		data[k] = v
	}
	d.bus.WithJob(j.ID).Publish(stream.TypeJob, data)
}

// finishJob moves a job to a terminal state and updates the completion
// accounting.
func (d *Daemon) finishJob(j *Job, state, errMsg string) {
	j.mu.Lock()
	j.state = state
	j.errMsg = errMsg
	j.finished = time.Now()
	j.mu.Unlock()
	d.reg.Counter(MetricJobsCompleted, "status", state).Inc()
	extra := map[string]any{}
	if errMsg != "" {
		extra["error"] = errMsg
	}
	d.publishState(j, state, extra)
	fmt.Fprintf(d.log, "dynunlockd: %s %s%s\n", j.ID, state, suffixIf(errMsg))
}

func suffixIf(msg string) string {
	if msg == "" {
		return ""
	}
	return ": " + msg
}

// runJob executes one job on the calling worker goroutine: admission,
// per-job observability wiring (label-scoped metrics handle, job-tagged
// bus view, durable flight recorder, scoped progress sampler), the
// attack itself, and terminal-state accounting.
func (d *Daemon) runJob(j *Job) {
	j.mu.Lock()
	if j.cancelled {
		j.mu.Unlock()
		d.finishJob(j, StateEvicted, "cancelled while queued")
		return
	}
	j.state = StateAdmitted
	j.started = time.Now()
	ctx, cancel := context.WithCancel(context.Background())
	j.cancel = cancel
	dir := filepath.Join(d.cfg.DataDir, j.ID)
	j.bundle = dir
	j.mu.Unlock()
	defer cancel()
	d.publishState(j, StateAdmitted, nil)
	d.reg.Gauge(MetricJobsInflight).Add(1)
	defer d.reg.Gauge(MetricJobsInflight).Add(-1)

	rec, err := flight.Create(dir)
	if err != nil {
		d.finishJob(j, StateFailed, err.Error())
		return
	}
	rec.Tool = "dynunlockd"
	// Durable transcripts are what make eviction and crash recoverable:
	// every oracle session and DIP lands on disk before the next solver
	// call, so a killed job leaves a resumable prefix.
	rec.SetDurable(true)

	cfg := j.Spec.Config()
	cfg.Recorder = rec
	cfg.Log = io.Discard
	jobBus := d.bus.WithJob(j.ID)
	cfg.Stream = jobBus

	// Resume: chain the source bundle's transcript prefix in front of
	// each trial's live chip. The sequential engine re-asks the recorded
	// queries verbatim, so the replayed prefix rebuilds the interrupted
	// solver state and the live chip only answers what the dead job
	// never got to ask. The re-recording recorder sits outside the
	// resume chip, so the new bundle is complete on its own.
	var resumeChips []*flight.ResumeChip
	var resumeMu sync.Mutex
	if j.Spec.Resume != "" {
		part, err := flight.OpenPartial(filepath.Join(d.cfg.DataDir, j.Spec.Resume))
		if err != nil {
			d.finishJob(j, StateFailed, err.Error())
			return
		}
		byTrial := make(map[int][]*flight.SessionRecord)
		for i := range part.Sessions {
			s := &part.Sessions[i]
			byTrial[s.Trial] = append(byTrial[s.Trial], s)
		}
		cfg.ChipWrapper = func(trial int, chip core.Chip) core.Chip {
			recs := byTrial[trial]
			if len(recs) == 0 {
				return chip
			}
			rc := flight.NewResumeChip(flight.NewReplay(chip.Design(), recs), chip)
			resumeMu.Lock()
			resumeChips = append(resumeChips, rc)
			resumeMu.Unlock()
			return rc
		}
	}

	// One registry serves every job; the handle view stamps job="<id>"
	// (plus the benchmark) onto each series this job publishes, and the
	// progress sampler sums only within that scope so concurrent jobs
	// never bleed into each other's delta events.
	ctx = metrics.WithHandle(ctx, d.reg.WithLabels("job", j.ID, "benchmark", cfg.Benchmark))
	ctx = trace.With(ctx, trace.Multi(rec.TraceSink(), trace.NewStreamSink(jobBus)))
	p := metrics.NewProgress(d.reg, d.cfg.SampleInterval, io.Discard, trace.From(ctx))
	p.SetScope("job", j.ID)
	p.AttachStream(jobBus)
	p.Start()

	j.mu.Lock()
	interrupted := j.state != StateAdmitted // shutdown flipped it to draining
	if !interrupted {
		j.state = StateRunning
	}
	j.mu.Unlock()
	if !interrupted {
		d.publishState(j, StateRunning, map[string]any{"bundle": dir})
	}
	fmt.Fprintf(d.log, "dynunlockd: %s running (%s)\n", j.ID, dir)

	res, runErr := dynunlock.RunExperimentCtx(ctx, cfg)
	p.Stop()

	var replayed uint64
	resumeMu.Lock()
	for _, rc := range resumeChips {
		replayed += rc.ServedFromTranscript()
	}
	resumeMu.Unlock()
	if replayed > 0 {
		d.reg.Counter(MetricJobsReplayedSessions).Add(replayed)
	}
	j.mu.Lock()
	j.replayed = replayed
	j.result = res
	j.mu.Unlock()

	// The bundle's metrics.json is scoped to this job's series, so its
	// totals equal what /events?job=<id> reported — one source of truth
	// per job even though the registry is shared.
	if err := rec.WriteMetricsSnapshot(d.reg.SnapshotLabeled("job", j.ID)); err != nil && runErr == nil {
		runErr = err
	}
	if err := rec.Close(); err != nil && runErr == nil {
		runErr = err
	}

	switch {
	case runErr != nil:
		d.finishJob(j, StateFailed, runErr.Error())
	case res != nil && res.Stopped && res.StopReason == core.StopCancelled:
		d.finishJob(j, StateEvicted, "cancelled mid-run; bundle is resumable")
	default:
		extra := ""
		if res != nil && !res.AllSucceeded() {
			extra = "finished without recovering the seed"
		}
		d.finishJob(j, StateDone, extra)
	}
}
