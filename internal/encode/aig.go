package encode

import (
	"fmt"

	"dynunlock/internal/aig"
	"dynunlock/internal/cnf"
)

// EncodeAIG instantiates one copy of the compacted graph g with the given
// input literals (one per graph input, possibly constants) and returns one
// literal per graph output. This is the second stage of the two-stage
// pipeline: the netlist is compiled to an AIG once per attack
// (aig.FromCombView), and each circuit copy — the two fresh-key copies, and
// one constant-input copy per DIP — replays the arena through a per-copy
// substitution map.
//
// Constants propagate through the copy before any clause is emitted: a
// node whose operand maps to the constant literal folds inside And/Xor, and
// the fold result shadows the node for every consumer. A backward
// liveness sweep over the arena additionally skips nodes whose fanout was
// entirely folded away, so DIP-constrained copies collapse to the residual
// key-dependent cone instead of re-emitting the full circuit.
func (e *Encoder) EncodeAIG(g *aig.Graph, inputs []cnf.Lit) []cnf.Lit {
	if len(inputs) != g.NumInputs() {
		panic(fmt.Sprintf("encode: got %d input literals, graph has %d inputs", len(inputs), g.NumInputs()))
	}
	n := g.NumNodes()
	need := make([]bool, n)
	for _, o := range g.Outputs() {
		need[o.Node()] = true
	}
	for i := n - 1; i >= 1; i-- {
		if !need[i] {
			continue
		}
		kind, a, b := g.NodeAt(i)
		if kind == aig.KindAnd || kind == aig.KindXor {
			need[a.Node()] = true
			need[b.Node()] = true
		}
	}

	// The substitution map: arena node -> CNF literal for this copy.
	lits := make([]cnf.Lit, n)
	lits[0] = e.False()
	for i := 0; i < g.NumInputs(); i++ {
		lits[g.Input(i).Node()] = inputs[i]
	}
	cl := func(l aig.Lit) cnf.Lit {
		v := lits[l.Node()]
		if l.Sign() {
			return v.Not()
		}
		return v
	}
	// Arena index order is topological, so one forward sweep defines every
	// live node. And/Xor fold constants and hit the encoder's structural
	// cache, so copies sharing input literals share clauses too.
	for i := 1; i < n; i++ {
		if !need[i] {
			continue
		}
		kind, a, b := g.NodeAt(i)
		switch kind {
		case aig.KindAnd:
			lits[i] = e.And(cl(a), cl(b))
		case aig.KindXor:
			lits[i] = e.Xor(cl(a), cl(b))
		}
	}
	out := make([]cnf.Lit, len(g.Outputs()))
	for i, o := range g.Outputs() {
		out[i] = cl(o)
	}
	return out
}
