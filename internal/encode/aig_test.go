package encode

import (
	"math/rand"
	"testing"

	"dynunlock/internal/aig"
	"dynunlock/internal/bench"
	"dynunlock/internal/cnf"
	"dynunlock/internal/netlist"
	"dynunlock/internal/sat"
	"dynunlock/internal/sim"
)

func graphFor(t testing.TB, v *netlist.CombView) *aig.Graph {
	t.Helper()
	g, err := aig.FromCombView(v)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// The AIG pipeline must agree with the simulator on every input pattern,
// under both the pure-CNF and native-XOR encodings.
func TestEncodeAIGMatchesSimulatorExhaustive(t *testing.T) {
	for _, cfg := range []Config{{}, {NativeXor: true}} {
		rng := rand.New(rand.NewSource(41))
		for trial := 0; trial < 25; trial++ {
			nIn := 2 + rng.Intn(5)
			v := randomCircuit(rng, nIn, 3+rng.Intn(25))
			g := graphFor(t, v)
			simulator := sim.NewComb(v)
			s := sat.New()
			e := NewWithConfig(s, cfg)
			inLits := e.FreshVec(len(v.Inputs))
			outLits := e.EncodeAIG(g, inLits)
			for pat := 0; pat < 1<<uint(nIn); pat++ {
				in := make([]bool, nIn)
				assumptions := make([]cnf.Lit, nIn)
				for i := range in {
					in[i] = pat>>uint(i)&1 == 1
					assumptions[i] = inLits[i]
					if !in[i] {
						assumptions[i] = inLits[i].Not()
					}
				}
				if s.Solve(assumptions...) != sat.Sat {
					t.Fatalf("cfg %+v trial %d pat %d: UNSAT", cfg, trial, pat)
				}
				got := e.ModelBits(outLits)
				want := simulator.EvalBits(in)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("cfg %+v trial %d pat %d out %d: aig=%v sim=%v", cfg, trial, pat, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// An AIG copy and a direct copy of the same circuit over shared inputs can
// never differ: the cross-pipeline miter must be UNSAT.
func TestEncodeAIGEquivalentToDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		v := randomCircuit(rng, 4, 24)
		g := graphFor(t, v)
		s := sat.New()
		e := New(s)
		in := e.FreshVec(len(v.Inputs))
		y1 := e.EncodeComb(v, in)
		y2 := e.EncodeAIG(g, in)
		act := e.Miter(y1, y2)
		if s.Solve(act) != sat.Unsat {
			t.Fatalf("trial %d: AIG copy differs from direct copy", trial)
		}
		if s.Solve() != sat.Sat {
			t.Fatalf("trial %d: solver unusable after miter", trial)
		}
	}
}

// A fully constant-input copy must collapse to constants without emitting a
// single clause, and a DIP-style copy (constant non-key inputs, shared key
// literals) must emit far fewer clauses than a direct re-encode.
func TestEncodeAIGConstantCollapse(t *testing.T) {
	e2 := bench.Table2[0].Scaled(16)
	n, err := e2.Build(0)
	if err != nil {
		t.Fatal(err)
	}
	v, err := netlist.NewCombView(n)
	if err != nil {
		t.Fatal(err)
	}
	g := graphFor(t, v)

	s := sat.New()
	e := New(s)
	consts := make([]cnf.Lit, len(v.Inputs))
	vals := make([]bool, len(v.Inputs))
	rng := rand.New(rand.NewSource(7))
	for i := range consts {
		vals[i] = rng.Intn(2) == 1
		consts[i] = e.Const(vals[i])
	}
	before := s.NumClauses()
	out := e.EncodeAIG(g, consts)
	if d := s.NumClauses() - before; d != 0 {
		t.Fatalf("constant copy emitted %d clauses", d)
	}
	want := sim.NewComb(v).EvalBits(vals)
	for i, l := range out {
		if got := l == e.True(); got != want[i] {
			t.Fatalf("constant output %d: aig=%v sim=%v", i, got, want[i])
		}
	}

	// DIP-style copy: half the inputs constant, half shared fresh literals.
	half := len(v.Inputs) / 2
	mixed := make([]cnf.Lit, len(v.Inputs))
	free := e.FreshVec(len(v.Inputs) - half)
	for i := range mixed {
		if i < half {
			mixed[i] = consts[i]
		} else {
			mixed[i] = free[i-half]
		}
	}
	before = s.NumClauses()
	e.EncodeAIG(g, mixed)
	aigDelta := s.NumClauses() - before

	s2 := sat.New()
	e2e := New(s2)
	mixed2 := make([]cnf.Lit, len(v.Inputs))
	free2 := e2e.FreshVec(len(v.Inputs) - half)
	for i := range mixed2 {
		if i < half {
			mixed2[i] = e2e.Const(vals[i])
		} else {
			mixed2[i] = free2[i-half]
		}
	}
	before = s2.NumClauses()
	e2e.EncodeComb(v, mixed2)
	directDelta := s2.NumClauses() - before

	if aigDelta > directDelta {
		t.Errorf("AIG copy emitted more clauses than direct: %d vs %d", aigDelta, directDelta)
	}
	t.Logf("DIP-style copy: aig %d clauses vs direct %d (%.1fx)", aigDelta, directDelta, float64(directDelta)/float64(aigDelta+1))
}
