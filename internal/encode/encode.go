// Package encode translates gate-level netlists into CNF (Tseitin
// encoding) on top of an incremental sat.Solver, and builds the miter
// structures used by oracle-guided attacks.
//
// The encoder works on netlist.CombView functions: the caller supplies one
// literal per view input (possibly constants), and receives one literal per
// view output. Multiple copies of the same circuit — the two key copies of
// the SAT attack, plus one copy per distinguishing input — are created by
// repeated Encode calls sharing whatever input literals the construction
// requires.
package encode

import (
	"fmt"

	"dynunlock/internal/cnf"
	"dynunlock/internal/netlist"
	"dynunlock/internal/sat"
)

// Encoder owns the mapping onto a shared SAT solver. Two-input gates are
// structurally hashed: encoding the same (op, a, b) twice returns the same
// literal without new clauses. This makes repeated EncodeComb calls over
// the same netlist cheap wherever subcircuits (such as the DynUnlock seed-
// mask XOR ladders) depend only on shared literals.
type Encoder struct {
	S       *sat.Solver
	cfg     Config
	trueLit cnf.Lit
	cache   map[gateKey]cnf.Lit
}

// Config tunes the encoding. The zero value is the classic pure-CNF
// Tseitin encoding, which keeps committed flight bundles replayable
// bit-identically; CLIs opt into the native path explicitly.
type Config struct {
	// NativeXor emits XOR/XNOR gates (and therefore the DynUnlock
	// seed-mask ladders) as native solver XOR rows via sat.Solver.AddXor
	// instead of 4-clause Tseitin expansions, letting the GF(2) layer
	// propagate parity by Gaussian elimination instead of CDCL search.
	NativeXor bool
}

type gateKey struct {
	op      uint8
	a, b, c cnf.Lit // c is litNone for two-input ops
}

// litNone marks an absent operand in gateKey; cnf.Lit 0 is a valid literal
// (variable 0, positive), so the sentinel must be out of range.
const litNone cnf.Lit = -1

const (
	opAnd uint8 = iota
	opOr
	opXor
	opMux
)

// New returns an encoder bound to s, allocating the constant-true variable.
func New(s *sat.Solver) *Encoder { return NewWithConfig(s, Config{}) }

// NewWithConfig returns an encoder bound to s with the given configuration,
// allocating the constant-true variable.
func NewWithConfig(s *sat.Solver, cfg Config) *Encoder {
	v := s.NewVar()
	t := cnf.MkLit(v, false)
	s.AddClause(t)
	return &Encoder{S: s, cfg: cfg, trueLit: t, cache: make(map[gateKey]cnf.Lit)}
}

func key(op uint8, a, b cnf.Lit) gateKey {
	if a > b {
		a, b = b, a
	}
	return gateKey{op, a, b, litNone}
}

// True returns the always-true literal.
func (e *Encoder) True() cnf.Lit { return e.trueLit }

// False returns the always-false literal.
func (e *Encoder) False() cnf.Lit { return e.trueLit.Not() }

// Const returns the literal for a boolean constant.
func (e *Encoder) Const(b bool) cnf.Lit {
	if b {
		return e.trueLit
	}
	return e.trueLit.Not()
}

// Fresh allocates a fresh variable and returns its positive literal.
func (e *Encoder) Fresh() cnf.Lit { return cnf.MkLit(e.S.NewVar(), false) }

// FreshVec allocates n fresh literals.
func (e *Encoder) FreshVec(n int) []cnf.Lit {
	out := make([]cnf.Lit, n)
	for i := range out {
		out[i] = e.Fresh()
	}
	return out
}

// EncodeComb instantiates one copy of the combinational function v with the
// given input literals (one per v.Inputs) and returns the output literals
// (one per v.Outputs).
func (e *Encoder) EncodeComb(v *netlist.CombView, inputs []cnf.Lit) []cnf.Lit {
	if len(inputs) != len(v.Inputs) {
		panic(fmt.Sprintf("encode: got %d input literals, want %d", len(inputs), len(v.Inputs)))
	}
	n := v.N
	lits := make([]cnf.Lit, n.NumSignals())
	assigned := make([]bool, n.NumSignals())
	for i, s := range v.Inputs {
		lits[s] = inputs[i]
		assigned[s] = true
	}
	for id := 0; id < n.NumSignals(); id++ {
		switch n.Type(netlist.SignalID(id)) {
		case netlist.Const0:
			lits[id] = e.False()
			assigned[id] = true
		case netlist.Const1:
			lits[id] = e.True()
			assigned[id] = true
		}
	}
	for _, id := range v.Order {
		g := n.Gate(id)
		fan := make([]cnf.Lit, len(g.Fanin))
		for i, f := range g.Fanin {
			if !assigned[f] {
				panic(fmt.Sprintf("encode: signal %q used before definition", n.SignalName(f)))
			}
			fan[i] = lits[f]
		}
		lits[id] = e.encodeGate(g.Type, fan)
		assigned[id] = true
	}
	out := make([]cnf.Lit, len(v.Outputs))
	for i, s := range v.Outputs {
		if !assigned[s] {
			panic(fmt.Sprintf("encode: output %q undefined", n.SignalName(s)))
		}
		out[i] = lits[s]
	}
	return out
}

func (e *Encoder) encodeGate(t netlist.GateType, fan []cnf.Lit) cnf.Lit {
	switch t {
	case netlist.Buf:
		return fan[0]
	case netlist.Not:
		return fan[0].Not()
	case netlist.And:
		return e.And(fan...)
	case netlist.Nand:
		return e.And(fan...).Not()
	case netlist.Or:
		return e.Or(fan...)
	case netlist.Nor:
		return e.Or(fan...).Not()
	case netlist.Xor:
		return e.XorN(fan...)
	case netlist.Xnor:
		return e.XorN(fan...).Not()
	case netlist.Mux:
		return e.Mux(fan[0], fan[1], fan[2])
	default:
		panic(fmt.Sprintf("encode: cannot encode gate type %v", t))
	}
}

// And returns a literal equivalent to the conjunction of the inputs, with
// constant folding and structural hashing.
func (e *Encoder) And(ins ...cnf.Lit) cnf.Lit {
	kept := make([]cnf.Lit, 0, len(ins))
	for _, a := range ins {
		switch {
		case a == e.False():
			return e.False()
		case a == e.True():
			continue
		}
		dup := false
		for _, k := range kept {
			if k == a {
				dup = true
			}
			if k == a.Not() {
				return e.False()
			}
		}
		if !dup {
			kept = append(kept, a)
		}
	}
	switch len(kept) {
	case 0:
		return e.True()
	case 1:
		return kept[0]
	case 2:
		k := key(opAnd, kept[0], kept[1])
		if z, ok := e.cache[k]; ok {
			return z
		}
		z := e.and(kept)
		e.cache[k] = z
		return z
	}
	return e.and(kept)
}

func (e *Encoder) and(ins []cnf.Lit) cnf.Lit {
	z := e.Fresh()
	long := make([]cnf.Lit, 0, len(ins)+1)
	long = append(long, z)
	for _, a := range ins {
		e.S.AddClause(z.Not(), a)
		long = append(long, a.Not())
	}
	e.S.AddClause(long...)
	return z
}

// Or returns a literal equivalent to the disjunction of the inputs, with
// constant folding and structural hashing (via De Morgan on And).
func (e *Encoder) Or(ins ...cnf.Lit) cnf.Lit {
	neg := make([]cnf.Lit, len(ins))
	for i, a := range ins {
		neg[i] = a.Not()
	}
	return e.And(neg...).Not()
}

// Xor returns a literal equivalent to a XOR b.
func (e *Encoder) Xor(a, b cnf.Lit) cnf.Lit {
	// Constant folding keeps the seed-mask XOR ladders compact.
	switch {
	case a == e.False():
		return b
	case a == e.True():
		return b.Not()
	case b == e.False():
		return a
	case b == e.True():
		return a.Not()
	case a == b:
		return e.False()
	case a == b.Not():
		return e.True()
	}
	// Canonical polarity: XOR with both inputs positive; negations fold
	// into the result, maximizing cache hits.
	flip := false
	if a.Sign() {
		a, flip = a.Not(), !flip
	}
	if b.Sign() {
		b, flip = b.Not(), !flip
	}
	k := key(opXor, a, b)
	z, ok := e.cache[k]
	if !ok {
		z = e.Fresh()
		if e.cfg.NativeXor {
			// z = a ⊕ b as one GF(2) row: z ⊕ a ⊕ b = 0.
			e.S.AddXor([]cnf.Lit{z, a, b}, false)
		} else {
			e.S.AddClause(z.Not(), a, b)
			e.S.AddClause(z.Not(), a.Not(), b.Not())
			e.S.AddClause(z, a.Not(), b)
			e.S.AddClause(z, a, b.Not())
		}
		e.cache[k] = z
	}
	if flip {
		return z.Not()
	}
	return z
}

// XorN chains Xor over the inputs.
func (e *Encoder) XorN(ins ...cnf.Lit) cnf.Lit {
	acc := ins[0]
	for _, l := range ins[1:] {
		acc = e.Xor(acc, l)
	}
	return acc
}

// Mux returns d1 if sel else d0, folding constant selectors, constant and
// coincident data inputs, and structurally hashing the residual node. The
// data-input folds matter for re-encoding under constant input vectors (the
// per-DIP copies of the attack loop): a mux whose branches collapsed to
// constants reduces to an AND/OR/passthrough instead of four dead clauses.
func (e *Encoder) Mux(sel, d0, d1 cnf.Lit) cnf.Lit {
	switch {
	case sel == e.True():
		return d1
	case sel == e.False():
		return d0
	case d0 == d1:
		return d0
	case d0 == d1.Not():
		return e.Xor(sel, d0)
	case d1 == e.True() || d1 == sel:
		return e.Or(sel, d0)
	case d1 == e.False() || d1 == sel.Not():
		return e.And(sel.Not(), d0)
	case d0 == e.True() || d0 == sel.Not():
		return e.Or(sel.Not(), d1)
	case d0 == e.False() || d0 == sel:
		return e.And(sel, d1)
	}
	// Canonical polarity: positive selector (swapping branches), so
	// Mux(¬s,a,b) and Mux(s,b,a) share one node.
	if sel.Sign() {
		sel, d0, d1 = sel.Not(), d1, d0
	}
	k := gateKey{opMux, sel, d0, d1}
	if z, ok := e.cache[k]; ok {
		return z
	}
	z := e.Fresh()
	e.S.AddClause(sel.Not(), d1.Not(), z)
	e.S.AddClause(sel.Not(), d1, z.Not())
	e.S.AddClause(sel, d0.Not(), z)
	e.S.AddClause(sel, d0, z.Not())
	e.cache[k] = z
	return z
}

// Miter adds a relaxable output-difference constraint between two equal-
// length output vectors: the returned activation literal, when assumed,
// forces ys1 != ys2 in at least one position. Without the assumption the
// constraint is inert, which lets the attack loop retire the miter after
// convergence without rebuilding the solver.
func (e *Encoder) Miter(ys1, ys2 []cnf.Lit) cnf.Lit {
	if len(ys1) != len(ys2) {
		panic(fmt.Sprintf("encode: miter arity %d vs %d", len(ys1), len(ys2)))
	}
	act := e.Fresh()
	clause := make([]cnf.Lit, 0, len(ys1)+1)
	clause = append(clause, act.Not())
	for i := range ys1 {
		clause = append(clause, e.Xor(ys1[i], ys2[i]))
	}
	e.S.AddClause(clause...)
	return act
}

// AssertEqualConst constrains each literal to the given constant value.
func (e *Encoder) AssertEqualConst(lits []cnf.Lit, vals []bool) {
	if len(lits) != len(vals) {
		panic(fmt.Sprintf("encode: assert arity %d vs %d", len(lits), len(vals)))
	}
	for i, l := range lits {
		if vals[i] {
			e.S.AddClause(l)
		} else {
			e.S.AddClause(l.Not())
		}
	}
}

// ConstVec converts a bool vector into constant literals.
func (e *Encoder) ConstVec(vals []bool) []cnf.Lit {
	out := make([]cnf.Lit, len(vals))
	for i, b := range vals {
		out[i] = e.Const(b)
	}
	return out
}

// ModelBits reads the solved values of the given literals from the last SAT
// model.
func (e *Encoder) ModelBits(lits []cnf.Lit) []bool {
	out := make([]bool, len(lits))
	for i, l := range lits {
		out[i] = e.S.Value(l.Var()) != l.Sign()
	}
	return out
}
