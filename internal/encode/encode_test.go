package encode

import (
	"math/rand"
	"strings"
	"testing"

	"dynunlock/internal/cnf"
	"dynunlock/internal/netlist"
	"dynunlock/internal/sat"
	"dynunlock/internal/sim"
)

func view(t testing.TB, src string) *netlist.CombView {
	t.Helper()
	n, err := netlist.ParseBench(strings.NewReader(src), "t")
	if err != nil {
		t.Fatal(err)
	}
	v, err := netlist.NewCombView(n)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// randomCircuit builds a random combinational netlist with nIn inputs and
// nGates gates; every gate type is exercised.
func randomCircuit(rng *rand.Rand, nIn, nGates int) *netlist.CombView {
	n := netlist.New("rand")
	sigs := make([]netlist.SignalID, 0, nIn+nGates)
	for i := 0; i < nIn; i++ {
		id, _ := n.AddInput("")
		sigs = append(sigs, id)
	}
	z, _ := n.AddConst("c0", false)
	o, _ := n.AddConst("c1", true)
	sigs = append(sigs, z, o)
	types := []netlist.GateType{
		netlist.And, netlist.Nand, netlist.Or, netlist.Nor,
		netlist.Xor, netlist.Xnor, netlist.Not, netlist.Buf, netlist.Mux,
	}
	for i := 0; i < nGates; i++ {
		t := types[rng.Intn(len(types))]
		var fan []netlist.SignalID
		switch t {
		case netlist.Not, netlist.Buf:
			fan = []netlist.SignalID{sigs[rng.Intn(len(sigs))]}
		case netlist.Mux:
			fan = []netlist.SignalID{sigs[rng.Intn(len(sigs))], sigs[rng.Intn(len(sigs))], sigs[rng.Intn(len(sigs))]}
		default:
			k := 2 + rng.Intn(2)
			for j := 0; j < k; j++ {
				fan = append(fan, sigs[rng.Intn(len(sigs))])
			}
		}
		id, err := n.AddGate("", t, fan...)
		if err != nil {
			panic(err)
		}
		sigs = append(sigs, id)
	}
	// Last few gates become outputs.
	for i := 0; i < 4 && i < len(sigs); i++ {
		n.MarkOutput(sigs[len(sigs)-1-i])
	}
	v, err := netlist.NewCombView(n)
	if err != nil {
		panic(err)
	}
	return v
}

// The CNF encoding must agree with the simulator on every input pattern.
func TestEncodingMatchesSimulatorExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		nIn := 2 + rng.Intn(5)
		v := randomCircuit(rng, nIn, 3+rng.Intn(25))
		simulator := sim.NewComb(v)
		s := sat.New()
		e := New(s)
		inLits := e.FreshVec(len(v.Inputs))
		outLits := e.EncodeComb(v, inLits)
		for pat := 0; pat < 1<<uint(nIn); pat++ {
			in := make([]bool, nIn)
			assumptions := make([]cnf.Lit, nIn)
			for i := range in {
				in[i] = pat>>uint(i)&1 == 1
				assumptions[i] = inLits[i]
				if !in[i] {
					assumptions[i] = inLits[i].Not()
				}
			}
			if s.Solve(assumptions...) != sat.Sat {
				t.Fatalf("trial %d pat %d: UNSAT", trial, pat)
			}
			got := e.ModelBits(outLits)
			want := simulator.EvalBits(in)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d pat %d out %d: cnf=%v sim=%v", trial, pat, i, got[i], want[i])
				}
			}
		}
	}
}

// Two copies of the same circuit with shared inputs can never differ: the
// miter must be UNSAT under its activation literal.
func TestMiterSelfEquivalenceUnsat(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 20; trial++ {
		v := randomCircuit(rng, 4, 20)
		s := sat.New()
		e := New(s)
		in := e.FreshVec(len(v.Inputs))
		y1 := e.EncodeComb(v, in)
		y2 := e.EncodeComb(v, in)
		act := e.Miter(y1, y2)
		if s.Solve(act) != sat.Unsat {
			t.Fatalf("trial %d: self-miter SAT", trial)
		}
		if s.Solve() != sat.Sat {
			t.Fatalf("trial %d: solver unusable after miter", trial)
		}
	}
}

// A miter between a circuit and its negation must be SAT on every input, and
// deactivating the miter must keep the solver satisfiable.
func TestMiterDetectsDifference(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(z)
z = AND(a, b)
`
	src2 := `
INPUT(a)
INPUT(b)
OUTPUT(z)
z = NAND(a, b)
`
	v1, v2 := view(t, src), view(t, src2)
	s := sat.New()
	e := New(s)
	in := e.FreshVec(2)
	y1 := e.EncodeComb(v1, in)
	y2 := e.EncodeComb(v2, in)
	act := e.Miter(y1, y2)
	if s.Solve(act) != sat.Sat {
		t.Fatal("differing circuits: miter must be SAT")
	}
}

func TestXorConstantFolding(t *testing.T) {
	s := sat.New()
	e := New(s)
	a := e.Fresh()
	if e.Xor(a, e.False()) != a {
		t.Fatal("x^0 != x")
	}
	if e.Xor(a, e.True()) != a.Not() {
		t.Fatal("x^1 != !x")
	}
	if e.Xor(a, a) != e.False() {
		t.Fatal("x^x != 0")
	}
	if e.Xor(a, a.Not()) != e.True() {
		t.Fatal("x^!x != 1")
	}
	if e.Xor(e.True(), e.True()) != e.False() {
		t.Fatal("1^1 != 0")
	}
}

func TestAssertEqualConst(t *testing.T) {
	s := sat.New()
	e := New(s)
	lits := e.FreshVec(3)
	e.AssertEqualConst(lits, []bool{true, false, true})
	if s.Solve() != sat.Sat {
		t.Fatal("UNSAT")
	}
	got := e.ModelBits(lits)
	if !got[0] || got[1] || !got[2] {
		t.Fatalf("got %v", got)
	}
}

func TestConstVec(t *testing.T) {
	s := sat.New()
	e := New(s)
	cv := e.ConstVec([]bool{true, false})
	if cv[0] != e.True() || cv[1] != e.False() {
		t.Fatal("ConstVec wrong")
	}
}

func TestEncodeSequentialView(t *testing.T) {
	// Sequential circuit: next-state outputs must be encoded too.
	src := `
INPUT(en)
OUTPUT(q)
q = DFF(d)
d = XOR(q, en)
`
	v := view(t, src)
	s := sat.New()
	e := New(s)
	in := e.FreshVec(2) // en, q
	out := e.EncodeComb(v, in)
	if len(out) != 2 { // q (PO), d (next state)
		t.Fatalf("got %d outputs", len(out))
	}
	// d = q ^ en: force q=1, en=1 -> d=0
	e.AssertEqualConst(in, []bool{true, true})
	if s.Solve() != sat.Sat {
		t.Fatal("UNSAT")
	}
	bits := e.ModelBits(out)
	if bits[0] != true || bits[1] != false {
		t.Fatalf("got %v", bits)
	}
}

func TestMiterArityPanics(t *testing.T) {
	s := sat.New()
	e := New(s)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	e.Miter(e.FreshVec(2), e.FreshVec(3))
}

// Structural hashing: re-encoding the same subcircuit must not add clauses.
func TestStructuralHashing(t *testing.T) {
	s := sat.New()
	e := New(s)
	a, b := e.Fresh(), e.Fresh()
	x1 := e.Xor(a, b)
	n := s.NumClauses()
	x2 := e.Xor(a, b)
	if x1 != x2 || s.NumClauses() != n {
		t.Fatal("Xor not hash-consed")
	}
	if e.Xor(b, a) != x1 {
		t.Fatal("Xor cache not symmetric")
	}
	if e.Xor(a.Not(), b) != x1.Not() {
		t.Fatal("Xor polarity canonicalization broken")
	}
	if e.Xor(a.Not(), b.Not()) != x1 {
		t.Fatal("double negation must cancel")
	}
	a1 := e.And(a, b)
	n = s.NumClauses()
	if e.And(b, a) != a1 || s.NumClauses() != n {
		t.Fatal("And not hash-consed")
	}
	if e.Or(a, b) != e.Or(a, b) {
		t.Fatal("Or not hash-consed")
	}
}

func TestAndOrConstantFolding(t *testing.T) {
	s := sat.New()
	e := New(s)
	a := e.Fresh()
	if e.And(a, e.True()) != a || e.And(a, e.False()) != e.False() {
		t.Fatal("And folding broken")
	}
	if e.And(a, a) != a || e.And(a, a.Not()) != e.False() {
		t.Fatal("And idempotence/contradiction broken")
	}
	if e.Or(a, e.False()) != a || e.Or(a, e.True()) != e.True() {
		t.Fatal("Or folding broken")
	}
	if e.And(e.True(), e.True()) != e.True() {
		t.Fatal("And of constants broken")
	}
	if e.Mux(e.True(), a, a.Not()) != a.Not() || e.Mux(e.False(), a, a.Not()) != a {
		t.Fatal("Mux folding broken")
	}
	b := e.Fresh()
	if e.Mux(b, a, a) != a {
		t.Fatal("Mux equal branches broken")
	}
}

func TestMuxDataConstantFolding(t *testing.T) {
	s := sat.New()
	e := New(s)
	sel, d := e.Fresh(), e.Fresh()
	cases := []struct {
		got, want cnf.Lit
		name      string
	}{
		{e.Mux(sel, d, d.Not()), e.Xor(sel, d), "mux(s,d,!d) != s^d"},
		{e.Mux(sel, d, e.True()), e.Or(sel, d), "mux(s,d,1) != s|d"},
		{e.Mux(sel, d, e.False()), e.And(sel.Not(), d), "mux(s,d,0) != !s&d"},
		{e.Mux(sel, e.True(), d), e.Or(sel.Not(), d), "mux(s,1,d) != !s|d"},
		{e.Mux(sel, e.False(), d), e.And(sel, d), "mux(s,0,d) != s&d"},
		{e.Mux(sel, d, sel), e.Or(sel, d), "mux(s,d,s) != s|d"},
		{e.Mux(sel, sel, d), e.And(sel, d), "mux(s,s,d) != s&d"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Fatal(c.name)
		}
	}
	// Fully constant mux folds to a constant with zero clauses.
	n := s.NumClauses()
	if e.Mux(sel, e.False(), e.True()) != sel || s.NumClauses() != n {
		t.Fatal("mux(s,0,1) must fold to s without clauses")
	}
}

func TestMuxStructuralHashing(t *testing.T) {
	s := sat.New()
	e := New(s)
	sel, d0, d1 := e.Fresh(), e.Fresh(), e.Fresh()
	z := e.Mux(sel, d0, d1)
	n := s.NumClauses()
	if e.Mux(sel, d0, d1) != z || s.NumClauses() != n {
		t.Fatal("Mux not hash-consed")
	}
	if e.Mux(sel.Not(), d1, d0) != z || s.NumClauses() != n {
		t.Fatal("Mux selector-polarity canonicalization broken")
	}
}

// Re-encoding a circuit under a constant input vector — what the attack
// loop does for every distinguishing-input copy — must emit strictly fewer
// clauses than the free-input encoding: constants propagate through the
// gate folds instead of producing dead Tseitin nodes.
func TestConstantInputEncodingCheaper(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		v := randomCircuit(rng, 6, 40)
		s := sat.New()
		e := New(s)

		before := s.NumClauses()
		e.EncodeComb(v, e.FreshVec(len(v.Inputs)))
		freeClauses := s.NumClauses() - before

		consts := make([]cnf.Lit, len(v.Inputs))
		for i := range consts {
			consts[i] = e.Const(rng.Intn(2) == 1)
		}
		before = s.NumClauses()
		outs := e.EncodeComb(v, consts)
		constClauses := s.NumClauses() - before

		if constClauses >= freeClauses {
			t.Fatalf("trial %d: constant-input encoding emitted %d clauses, free encoding %d",
				trial, constClauses, freeClauses)
		}
		// Under all-constant inputs every output must itself be constant.
		for i, o := range outs {
			if o != e.True() && o != e.False() {
				t.Fatalf("trial %d: output %d not folded to a constant", trial, i)
			}
		}
	}
}
