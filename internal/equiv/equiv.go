// Package equiv provides SAT-based combinational equivalence checking:
// a miter between two circuits (or two keyed instances of one circuit)
// that is UNSAT exactly when they agree on every input.
//
// The attack pipeline uses it as the *formal* counterpart of probe-based
// verification: for tractable sizes, a recovered seed can be proven — not
// just sampled — to reproduce the locked chip's scan-session function.
package equiv

import (
	"fmt"

	"dynunlock/internal/cnf"
	"dynunlock/internal/encode"
	"dynunlock/internal/netlist"
	"dynunlock/internal/sat"
)

// Result reports an equivalence check.
type Result struct {
	// Equivalent is true when the miter was proven UNSAT.
	Equivalent bool
	// Counterexample is an input assignment on which the circuits differ
	// (nil when Equivalent or Unknown).
	Counterexample []bool
	// Unknown is true when the solver budget expired before a verdict.
	Unknown bool
}

// Check decides whether two combinational views compute the same function.
// The views must have the same input and output arity; inputs are paired
// positionally. conflictBudget 0 means unlimited.
func Check(a, b *netlist.CombView, conflictBudget int64) (Result, error) {
	if len(a.Inputs) != len(b.Inputs) {
		return Result{}, fmt.Errorf("equiv: input arity %d vs %d", len(a.Inputs), len(b.Inputs))
	}
	if len(a.Outputs) != len(b.Outputs) {
		return Result{}, fmt.Errorf("equiv: output arity %d vs %d", len(a.Outputs), len(b.Outputs))
	}
	s := sat.New()
	s.ConflictBudget = conflictBudget
	e := encode.New(s)
	in := e.FreshVec(len(a.Inputs))
	ya := e.EncodeComb(a, in)
	yb := e.EncodeComb(b, in)
	return decide(s, e, in, ya, yb)
}

// CheckKeyed decides whether one locked view under key1 computes the same
// function (over the non-key inputs) as the same view under key2. keyIdx
// lists the positions in view.Inputs that are key inputs, ordered like
// key1/key2.
func CheckKeyed(view *netlist.CombView, keyIdx []int, key1, key2 []bool, conflictBudget int64) (Result, error) {
	if len(key1) != len(keyIdx) || len(key2) != len(keyIdx) {
		return Result{}, fmt.Errorf("equiv: key length %d/%d, want %d", len(key1), len(key2), len(keyIdx))
	}
	isKey := make(map[int]bool, len(keyIdx))
	for _, i := range keyIdx {
		if i < 0 || i >= len(view.Inputs) {
			return Result{}, fmt.Errorf("equiv: key index %d out of range", i)
		}
		if isKey[i] {
			return Result{}, fmt.Errorf("equiv: duplicate key index %d", i)
		}
		isKey[i] = true
	}
	s := sat.New()
	s.ConflictBudget = conflictBudget
	e := encode.New(s)

	var free []cnf.Lit
	full1 := make([]cnf.Lit, len(view.Inputs))
	full2 := make([]cnf.Lit, len(view.Inputs))
	for i := range view.Inputs {
		if !isKey[i] {
			l := e.Fresh()
			free = append(free, l)
			full1[i] = l
			full2[i] = l
		}
	}
	for ki, i := range keyIdx {
		full1[i] = e.Const(key1[ki])
		full2[i] = e.Const(key2[ki])
	}
	y1 := e.EncodeComb(view, full1)
	y2 := e.EncodeComb(view, full2)
	return decide(s, e, free, y1, y2)
}

func decide(s *sat.Solver, e *encode.Encoder, in, ya, yb []cnf.Lit) (Result, error) {
	act := e.Miter(ya, yb)
	switch s.Solve(act) {
	case sat.Unsat:
		return Result{Equivalent: true}, nil
	case sat.Sat:
		return Result{Counterexample: e.ModelBits(in)}, nil
	default:
		return Result{Unknown: true}, nil
	}
}
