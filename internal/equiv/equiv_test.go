package equiv

import (
	"strings"
	"testing"

	"dynunlock/internal/netlist"
	"dynunlock/internal/sim"
)

func view(t testing.TB, src string) *netlist.CombView {
	t.Helper()
	n, err := netlist.ParseBench(strings.NewReader(src), "t")
	if err != nil {
		t.Fatal(err)
	}
	v, err := netlist.NewCombView(n)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestCheckEquivalentByDeMorgan(t *testing.T) {
	a := view(t, `
INPUT(x)
INPUT(y)
OUTPUT(z)
z = NAND(x, y)
`)
	b := view(t, `
INPUT(x)
INPUT(y)
OUTPUT(z)
nx = NOT(x)
ny = NOT(y)
z = OR(nx, ny)
`)
	res, err := Check(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent || res.Counterexample != nil || res.Unknown {
		t.Fatalf("De Morgan pair not proven equivalent: %+v", res)
	}
}

func TestCheckCounterexample(t *testing.T) {
	a := view(t, "INPUT(x)\nINPUT(y)\nOUTPUT(z)\nz = AND(x, y)\n")
	b := view(t, "INPUT(x)\nINPUT(y)\nOUTPUT(z)\nz = OR(x, y)\n")
	res, err := Check(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent || res.Counterexample == nil {
		t.Fatalf("differing circuits not distinguished: %+v", res)
	}
	// The counterexample must actually distinguish them.
	ga := sim.NewComb(a).EvalBits(res.Counterexample)
	gb := sim.NewComb(b).EvalBits(res.Counterexample)
	if ga[0] == gb[0] {
		t.Fatal("counterexample does not distinguish the circuits")
	}
}

func TestCheckArityErrors(t *testing.T) {
	a := view(t, "INPUT(x)\nOUTPUT(z)\nz = NOT(x)\n")
	b := view(t, "INPUT(x)\nINPUT(y)\nOUTPUT(z)\nz = AND(x, y)\n")
	if _, err := Check(a, b, 0); err == nil {
		t.Fatal("want input-arity error")
	}
	c := view(t, "INPUT(x)\nOUTPUT(z)\nOUTPUT(w)\nz = NOT(x)\nw = BUFF(x)\n")
	if _, err := Check(a, c, 0); err == nil {
		t.Fatal("want output-arity error")
	}
}

const keyedSrc = `
INPUT(x)
INPUT(k0)
INPUT(k1)
OUTPUT(z)
t = XOR(x, k0)
z = XOR(t, k1)
`

func TestCheckKeyedEquivalentKeys(t *testing.T) {
	v := view(t, keyedSrc)
	// z = x ^ k0 ^ k1: keys 01 and 10 are functionally identical.
	res, err := CheckKeyed(v, []int{1, 2}, []bool{false, true}, []bool{true, false}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equivalent {
		t.Fatalf("XOR-parity-equal keys not proven equivalent: %+v", res)
	}
	// Keys 00 and 01 differ (identity vs inverter).
	res, err = CheckKeyed(v, []int{1, 2}, []bool{false, false}, []bool{false, true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Equivalent || res.Counterexample == nil {
		t.Fatalf("differing keys not distinguished: %+v", res)
	}
}

func TestCheckKeyedValidation(t *testing.T) {
	v := view(t, keyedSrc)
	if _, err := CheckKeyed(v, []int{1, 2}, []bool{true}, []bool{true, false}, 0); err == nil {
		t.Fatal("want key-length error")
	}
	if _, err := CheckKeyed(v, []int{1, 1}, []bool{true, true}, []bool{true, false}, 0); err == nil {
		t.Fatal("want duplicate-index error")
	}
	if _, err := CheckKeyed(v, []int{1, 99}, []bool{true, true}, []bool{true, false}, 0); err == nil {
		t.Fatal("want range error")
	}
}

func TestCheckUnknownUnderBudget(t *testing.T) {
	// Two large random-ish XOR trees that are equivalent but need real
	// work: with a 1-conflict budget the solver may give up. (If it solves
	// within budget the test still passes — Unknown is permitted, not
	// required.)
	a := view(t, `
INPUT(x0)
INPUT(x1)
INPUT(x2)
INPUT(x3)
OUTPUT(z)
t0 = XOR(x0, x1)
t1 = XOR(x2, x3)
z = XOR(t0, t1)
`)
	b := view(t, `
INPUT(x0)
INPUT(x1)
INPUT(x2)
INPUT(x3)
OUTPUT(z)
t0 = XOR(x0, x2)
t1 = XOR(x1, x3)
z = XOR(t0, t1)
`)
	res, err := Check(a, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counterexample != nil {
		t.Fatal("equivalent circuits must not yield a counterexample")
	}
}
