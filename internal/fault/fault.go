// Package fault implements the single stuck-at fault model and a 64-way
// parallel-pattern fault simulator for combinational views.
//
// Scan chains exist to make sequential circuits testable for exactly these
// faults; scan locking deliberately breaks that access for untrusted
// testers. The fault machinery quantifies what is at stake: with scan
// access (or after DynUnlock recovers it) stuck-at coverage is high; through
// an obfuscated chain driven by an unknown dynamic key it collapses.
package fault

import (
	"fmt"

	"dynunlock/internal/netlist"
	"dynunlock/internal/sim"
)

// Fault is a single stuck-at fault on a signal (gate output, primary
// input, or state line in a combinational view).
type Fault struct {
	Signal  netlist.SignalID
	StuckAt bool // faulty value: false = stuck-at-0, true = stuck-at-1
}

// String renders the fault in conventional notation.
func (f Fault) String() string {
	v := 0
	if f.StuckAt {
		v = 1
	}
	return fmt.Sprintf("s-a-%d@%d", v, f.Signal)
}

// Name renders the fault with the signal's name.
func (f Fault) Name(n *netlist.Netlist) string {
	v := 0
	if f.StuckAt {
		v = 1
	}
	return fmt.Sprintf("%s/s-a-%d", n.SignalName(f.Signal), v)
}

// AllFaults enumerates both stuck-at faults on every input and gate output
// signal of the view (the collapsed "output stuck" fault universe).
func AllFaults(v *netlist.CombView) []Fault {
	var out []Fault
	add := func(id netlist.SignalID) {
		out = append(out, Fault{Signal: id, StuckAt: false}, Fault{Signal: id, StuckAt: true})
	}
	for _, s := range v.Inputs {
		add(s)
	}
	for _, s := range v.Order {
		add(s)
	}
	return out
}

// Simulator runs fault-free and faulty evaluations over a combinational
// view with 64 patterns in parallel.
type Simulator struct {
	view *netlist.CombView
	good *sim.Comb
	vals []uint64
}

// NewSimulator builds a fault simulator for the view.
func NewSimulator(v *netlist.CombView) *Simulator {
	return &Simulator{view: v, good: sim.NewComb(v), vals: make([]uint64, v.N.NumSignals())}
}

// Detects returns a bitmask of which of the 64 parallel patterns detect
// fault f: the faulty circuit's outputs differ from the fault-free ones.
func (s *Simulator) Detects(f Fault, inputs []uint64) uint64 {
	goodOut := s.good.Eval(inputs)
	badOut := s.evalFaulty(f, inputs)
	var detected uint64
	for i := range goodOut {
		detected |= goodOut[i] ^ badOut[i]
	}
	return detected
}

// evalFaulty evaluates the circuit with signal f.Signal forced to the
// stuck value.
func (s *Simulator) evalFaulty(f Fault, inputs []uint64) []uint64 {
	n := s.view.N
	forced := uint64(0)
	if f.StuckAt {
		forced = ^uint64(0)
	}
	for i, sig := range s.view.Inputs {
		s.vals[sig] = inputs[i]
	}
	for id := 0; id < n.NumSignals(); id++ {
		switch n.Type(netlist.SignalID(id)) {
		case netlist.Const0:
			s.vals[id] = 0
		case netlist.Const1:
			s.vals[id] = ^uint64(0)
		}
	}
	if int(f.Signal) < len(s.vals) {
		s.vals[f.Signal] = forced
	}
	for _, id := range s.view.Order {
		if id == f.Signal {
			s.vals[id] = forced
			continue
		}
		s.vals[id] = evalWordGate(n.Gate(id), s.vals)
	}
	out := make([]uint64, len(s.view.Outputs))
	for i, sig := range s.view.Outputs {
		out[i] = s.vals[sig]
	}
	return out
}

func evalWordGate(g netlist.Gate, vals []uint64) uint64 {
	switch g.Type {
	case netlist.Buf:
		return vals[g.Fanin[0]]
	case netlist.Not:
		return ^vals[g.Fanin[0]]
	case netlist.And, netlist.Nand:
		acc := ^uint64(0)
		for _, f := range g.Fanin {
			acc &= vals[f]
		}
		if g.Type == netlist.Nand {
			return ^acc
		}
		return acc
	case netlist.Or, netlist.Nor:
		var acc uint64
		for _, f := range g.Fanin {
			acc |= vals[f]
		}
		if g.Type == netlist.Nor {
			return ^acc
		}
		return acc
	case netlist.Xor, netlist.Xnor:
		var acc uint64
		for _, f := range g.Fanin {
			acc ^= vals[f]
		}
		if g.Type == netlist.Xnor {
			return ^acc
		}
		return acc
	case netlist.Mux:
		sel, d0, d1 := vals[g.Fanin[0]], vals[g.Fanin[1]], vals[g.Fanin[2]]
		return (d0 &^ sel) | (d1 & sel)
	default:
		panic(fmt.Sprintf("fault: cannot evaluate %v", g.Type))
	}
}

// PackPatterns packs up to 64 bool patterns (each of view-input length)
// into word-parallel form.
func PackPatterns(patterns [][]bool, numInputs int) []uint64 {
	if len(patterns) > 64 {
		panic("fault: more than 64 patterns per word")
	}
	words := make([]uint64, numInputs)
	for p, pat := range patterns {
		if len(pat) != numInputs {
			panic(fmt.Sprintf("fault: pattern %d has %d inputs, want %d", p, len(pat), numInputs))
		}
		for i, b := range pat {
			if b {
				words[i] |= 1 << uint(p)
			}
		}
	}
	return words
}

// CoverageResult summarizes a fault-simulation campaign.
type CoverageResult struct {
	Total    int
	Detected int
	// Undetected lists the faults no pattern detected.
	Undetected []Fault
}

// Coverage returns the fraction of faults detected.
func (c CoverageResult) Coverage() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.Detected) / float64(c.Total)
}

// Campaign fault-simulates all patterns against all faults.
func Campaign(v *netlist.CombView, faults []Fault, patterns [][]bool) CoverageResult {
	s := NewSimulator(v)
	res := CoverageResult{Total: len(faults)}
	// Pack pattern blocks once.
	var blocks [][]uint64
	var blockLens []int
	for start := 0; start < len(patterns); start += 64 {
		end := start + 64
		if end > len(patterns) {
			end = len(patterns)
		}
		blocks = append(blocks, PackPatterns(patterns[start:end], len(v.Inputs)))
		blockLens = append(blockLens, end-start)
	}
	for _, f := range faults {
		detected := false
		for bi, blk := range blocks {
			mask := s.Detects(f, blk)
			if blockLens[bi] < 64 {
				mask &= (1 << uint(blockLens[bi])) - 1
			}
			if mask != 0 {
				detected = true
				break
			}
		}
		if detected {
			res.Detected++
		} else {
			res.Undetected = append(res.Undetected, f)
		}
	}
	return res
}
