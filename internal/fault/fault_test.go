package fault

import (
	"math/rand"
	"strings"
	"testing"

	"dynunlock/internal/netlist"
)

func view(t testing.TB, src string) *netlist.CombView {
	t.Helper()
	n, err := netlist.ParseBench(strings.NewReader(src), "t")
	if err != nil {
		t.Fatal(err)
	}
	v, err := netlist.NewCombView(n)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

const andSrc = `
INPUT(a)
INPUT(b)
OUTPUT(z)
z = AND(a, b)
`

func TestDetectsANDFaults(t *testing.T) {
	v := view(t, andSrc)
	s := NewSimulator(v)
	z, _ := v.N.Lookup("z")
	a, _ := v.N.Lookup("a")

	// Patterns: (a,b) = 00, 01, 10, 11 in bits 0..3.
	in := PackPatterns([][]bool{{false, false}, {false, true}, {true, false}, {true, true}}, 2)

	// z stuck-at-0 detected only by pattern 11 (bit 3).
	if got := s.Detects(Fault{z, false}, in) & 0xF; got != 0x8 {
		t.Fatalf("z/s-a-0 detected by %04b, want 1000", got)
	}
	// z stuck-at-1 detected by 00, 01, 10.
	if got := s.Detects(Fault{z, true}, in) & 0xF; got != 0x7 {
		t.Fatalf("z/s-a-1 detected by %04b, want 0111", got)
	}
	// a stuck-at-0 detected by 11 only.
	if got := s.Detects(Fault{a, false}, in) & 0xF; got != 0x8 {
		t.Fatalf("a/s-a-0 detected by %04b", got)
	}
	// a stuck-at-1 detected by 01 (a=0,b=1 -> good 0, faulty 1).
	if got := s.Detects(Fault{a, true}, in) & 0xF; got != 0x2 {
		t.Fatalf("a/s-a-1 detected by %04b", got)
	}
}

func TestAllFaultsUniverse(t *testing.T) {
	v := view(t, andSrc)
	fs := AllFaults(v)
	// signals: a, b, z -> 6 faults.
	if len(fs) != 6 {
		t.Fatalf("got %d faults", len(fs))
	}
	if fs[0].String() == "" || fs[1].Name(v.N) == "" {
		t.Fatal("naming broken")
	}
}

func TestCampaignFullCoverage(t *testing.T) {
	v := view(t, andSrc)
	// Exhaustive patterns give 100% coverage on an AND gate.
	patterns := [][]bool{{false, false}, {false, true}, {true, false}, {true, true}}
	res := Campaign(v, AllFaults(v), patterns)
	if res.Coverage() != 1.0 {
		t.Fatalf("coverage %.2f, undetected %v", res.Coverage(), res.Undetected)
	}
	if res.Detected != res.Total || len(res.Undetected) != 0 {
		t.Fatalf("campaign accounting: %+v", res)
	}
}

func TestCampaignRedundantFault(t *testing.T) {
	// z = OR(a, NOT(a)) is constant 1: the s-a-1 fault on z is redundant.
	src := `
INPUT(a)
OUTPUT(z)
na = NOT(a)
z = OR(a, na)
`
	v := view(t, src)
	z, _ := v.N.Lookup("z")
	res := Campaign(v, []Fault{{z, true}}, [][]bool{{false}, {true}})
	if res.Detected != 0 || len(res.Undetected) != 1 {
		t.Fatalf("redundant fault detected: %+v", res)
	}
	if res.Coverage() != 0 {
		t.Fatal("coverage should be 0")
	}
}

// Serial single-pattern checks agree with the 64-way parallel mask for a
// random circuit and random faults.
func TestParallelAgreesWithSerial(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(x)
OUTPUT(y)
t1 = NAND(a, b)
t2 = XOR(t1, c)
t3 = NOR(b, d)
t4 = MUX(t2, t3, t1)
x = AND(t4, t2)
y = XNOR(t3, a)
`
	v := view(t, src)
	s := NewSimulator(v)
	rng := rand.New(rand.NewSource(4))
	var patterns [][]bool
	for p := 0; p < 64; p++ {
		pat := make([]bool, 4)
		for i := range pat {
			pat[i] = rng.Intn(2) == 1
		}
		patterns = append(patterns, pat)
	}
	packed := PackPatterns(patterns, 4)
	for _, f := range AllFaults(v) {
		mask := s.Detects(f, packed)
		for p := 0; p < 64; p++ {
			single := PackPatterns(patterns[p:p+1], 4)
			want := s.Detects(f, single)&1 == 1
			got := mask>>uint(p)&1 == 1
			if got != want {
				t.Fatalf("fault %v pattern %d: parallel=%v serial=%v", f, p, got, want)
			}
		}
	}
}

func TestPackPatternsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	PackPatterns([][]bool{{true}}, 2)
}

func TestCoverageEmpty(t *testing.T) {
	if (CoverageResult{}).Coverage() != 0 {
		t.Fatal("empty coverage")
	}
}
