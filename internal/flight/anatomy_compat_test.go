package flight_test

// Forward-compat tests for the format v4 (anatomy) bump: the reader must
// accept every committed v1–v3 bundle unchanged, and fresh recordings must
// carry a live-captured anatomy.json whose telemetry cross-checks against
// the solver counters in result.json.

import (
	"os"
	"path/filepath"
	"testing"

	"dynunlock/internal/flight"
)

// committedBundleDirs walks bench/bundles for every directory holding a
// manifest.json (bundles may be nested one level under suite directories).
func committedBundleDirs(t *testing.T) []string {
	t.Helper()
	root := filepath.Join("..", "..", "bench", "bundles")
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && d.Name() == flight.ManifestFile {
			dirs = append(dirs, filepath.Dir(path))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no committed bundles found under bench/bundles")
	}
	return dirs
}

// TestV4ReaderAcceptsCommittedBundles opens every committed bundle with the
// v4 reader: all are older formats (v1–v3), must open cleanly, and must
// report no anatomy telemetry — ReadAnatomy returns (nil, nil) when the
// file is absent rather than failing.
func TestV4ReaderAcceptsCommittedBundles(t *testing.T) {
	for _, dir := range committedBundleDirs(t) {
		b, err := flight.Open(dir)
		if err != nil {
			t.Errorf("%s: open: %v", dir, err)
			continue
		}
		v := b.Manifest.FormatVersion
		if v < flight.MinFormatVersion || v > flight.FormatVersion {
			t.Errorf("%s: formatVersion %d outside accepted range [%d, %d]",
				dir, v, flight.MinFormatVersion, flight.FormatVersion)
		}
		if v < flight.FormatVersion && b.Manifest.Anatomy {
			t.Errorf("%s: pre-v4 bundle claims anatomy telemetry", dir)
		}
		doc, err := flight.ReadAnatomy(dir)
		if err != nil {
			t.Errorf("%s: ReadAnatomy: %v", dir, err)
		}
		if !b.Manifest.Anatomy && doc != nil {
			t.Errorf("%s: anatomy doc present but manifest does not declare it", dir)
		}
	}
}

// TestFreshRecordingCarriesAnatomy records an experiment through the public
// facade (the recorder implies the live capture) and checks the v4 surface:
// the manifest declares the telemetry, anatomy.json reads back, and its
// restart counts exactly match the solver counters in result.json — the
// capture hook and sat.Stats count the same events.
func TestFreshRecordingCarriesAnatomy(t *testing.T) {
	for name, cfg := range roundTripConfigs() {
		t.Run(name, func(t *testing.T) {
			dir, res := recordExperiment(t, cfg)
			b, err := flight.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if b.Manifest.FormatVersion != flight.FormatVersion {
				t.Errorf("fresh recording formatVersion %d, want %d",
					b.Manifest.FormatVersion, flight.FormatVersion)
			}
			if !b.Manifest.Anatomy {
				t.Error("fresh recording does not declare anatomy telemetry")
			}
			doc, err := flight.ReadAnatomy(dir)
			if err != nil {
				t.Fatal(err)
			}
			if doc == nil {
				t.Fatal("fresh recording has no anatomy.json")
			}
			if doc.FormatVersion != flight.AnatomyDocVersion {
				t.Errorf("anatomy doc version %d, want %d", doc.FormatVersion, flight.AnatomyDocVersion)
			}
			if len(doc.Trials) != len(res.Trials) {
				t.Fatalf("anatomy records %d trials, result has %d", len(doc.Trials), len(res.Trials))
			}
			for i, ta := range doc.Trials {
				tr := b.Result.Trials[i]
				if ta.Trial != tr.Trial {
					t.Errorf("anatomy trial %d numbered %d, result says %d", i, ta.Trial, tr.Trial)
				}
				// The restart callback fires exactly where Stats.Restarts
				// increments, so the live capture must agree with the
				// recorded counter.
				if ta.Restarts != tr.Solver.Restarts {
					t.Errorf("trial %d: anatomy restarts %d, result.json solver restarts %d",
						ta.Trial, ta.Restarts, tr.Solver.Restarts)
				}
				if ta.LBD.Samples > tr.Solver.Learnt {
					t.Errorf("trial %d: %d LBD samples exceed %d learnt clauses",
						ta.Trial, ta.LBD.Samples, tr.Solver.Learnt)
				}
				// Per-DIP segments cover the DIP loop; their totals are
				// bounded by the trial-wide accumulators.
				var segRestarts, segSamples uint64
				for _, d := range ta.DIPs {
					segRestarts += d.Restarts
					segSamples += d.LBD.Samples
				}
				if segRestarts > ta.Restarts || segSamples > ta.LBD.Samples {
					t.Errorf("trial %d: DIP segments (%d restarts, %d samples) exceed trial totals (%d, %d)",
						ta.Trial, segRestarts, segSamples, ta.Restarts, ta.LBD.Samples)
				}
				if len(ta.DIPs) > tr.Iterations {
					t.Errorf("trial %d: %d DIP segments but only %d iterations",
						ta.Trial, len(ta.DIPs), tr.Iterations)
				}
			}
		})
	}
}
