package flight

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
)

// BenchRow is one normalized benchmark ledger entry: the cross-run
// comparison record cmd/runs appends to BENCH_attack.json. Averages follow
// the paper's Table II convention (mean over trials); conflict and
// propagation totals are the machine-independent work measures.
type BenchRow struct {
	RecordedAt        string  `json:"recordedAt"`
	Bundle            string  `json:"bundle"`
	Tool              string  `json:"tool,omitempty"`
	Benchmark         string  `json:"benchmark"`
	Scale             int     `json:"scale"`
	KeyBits           int     `json:"keyBits"`
	Policy            string  `json:"policy"`
	Mode              string  `json:"mode"`
	Portfolio         int     `json:"portfolio"`
	NativeXor         bool    `json:"nativeXor,omitempty"`
	Analytic          bool    `json:"analytic,omitempty"`
	AIG               bool    `json:"aig,omitempty"`
	Simplify          bool    `json:"simplify,omitempty"`
	Trials            int     `json:"trials"`
	AvgCandidates     float64 `json:"avgCandidates"`
	AvgIterations     float64 `json:"avgIterations"`
	AvgQueries        float64 `json:"avgQueries"`
	AvgSeconds        float64 `json:"avgSeconds"`
	TotalConflicts    uint64  `json:"totalConflicts"`
	TotalPropagations uint64  `json:"totalPropagations"`
	// TotalEncodeClauses sums the per-trial encode clause counters: the
	// measure the AIG path is meant to shrink. Zero on pre-v3 bundles.
	TotalEncodeClauses uint64 `json:"totalEncodeClauses,omitempty"`
	Broken             bool   `json:"broken"`
	GoVersion          string `json:"goVersion"`
	Host               string `json:"host,omitempty"`
	GitCommit          string `json:"gitCommit,omitempty"`
}

// BenchFile is the BENCH_attack.json document: an append-only ledger of
// normalized rows.
type BenchFile struct {
	FormatVersion int        `json:"formatVersion"`
	Rows          []BenchRow `json:"rows"`
}

// BenchRowFrom normalizes a bundle into a ledger row.
func BenchRowFrom(b *Bundle) BenchRow {
	m := &b.Manifest
	row := BenchRow{
		RecordedAt: m.CreatedAt,
		Bundle:     filepath.Base(b.Dir),
		Tool:       m.Tool,
		Benchmark:  m.Benchmark,
		Scale:      m.Scale,
		KeyBits:    m.Lock.KeyBits,
		Policy:     m.Lock.Policy,
		Mode:       m.Mode,
		Portfolio:  m.Portfolio,
		NativeXor:  m.NativeXor,
		Analytic:   m.Analytic,
		AIG:        m.AIG,
		Simplify:   m.Simplify,
		Trials:     len(b.Result.Trials),
		GoVersion:  m.Fingerprint.GoVersion,
		Host:       m.Fingerprint.Host,
		GitCommit:  m.Fingerprint.GitCommit,
	}
	if len(b.Result.Trials) == 0 {
		return row
	}
	row.Broken = true
	for _, t := range b.Result.Trials {
		row.AvgCandidates += float64(len(t.SeedCandidates))
		row.AvgIterations += float64(t.Iterations)
		row.AvgQueries += float64(t.Queries)
		row.AvgSeconds += t.Seconds
		row.TotalConflicts += t.Solver.Conflicts
		row.TotalPropagations += t.Solver.Propagations
		row.TotalEncodeClauses += t.EncodeClauses
		if !t.Success {
			row.Broken = false
		}
	}
	n := float64(len(b.Result.Trials))
	row.AvgCandidates /= n
	row.AvgIterations /= n
	row.AvgQueries /= n
	row.AvgSeconds /= n
	return row
}

// ReadBenchFile loads a ledger; a missing file yields an empty ledger so
// the first append creates it.
func ReadBenchFile(path string) (*BenchFile, error) {
	var f BenchFile
	err := readJSONFile(path, &f)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return &BenchFile{FormatVersion: BenchFormatVersion}, nil
		}
		return nil, err
	}
	if f.FormatVersion != BenchFormatVersion {
		return nil, &BundleError{Path: path, Err: fmt.Errorf("%w: formatVersion %d, want %d", ErrCorrupt, f.FormatVersion, BenchFormatVersion)}
	}
	return &f, nil
}

// Write persists the ledger (indented, trailing newline — diff-friendly for
// a committed file).
func (f *BenchFile) Write(path string) error {
	f.FormatVersion = BenchFormatVersion
	return writeJSONFile(path, f)
}

// FindRow returns the ledger row matching a bundle's configuration
// (benchmark, scale, key width, policy, mode, portfolio, encoding
// variant), for baseline comparisons; ok is false when no row matches.
// The encoding variant (nativeXor, analytic, aig, simplify) is part of the
// key so runs of the same benchmark under different encode paths keep
// separate baselines.
func (f *BenchFile) FindRow(row BenchRow) (BenchRow, bool) {
	for i := len(f.Rows) - 1; i >= 0; i-- {
		r := f.Rows[i]
		if r.Benchmark == row.Benchmark && r.Scale == row.Scale &&
			r.KeyBits == row.KeyBits && r.Policy == row.Policy &&
			r.Mode == row.Mode && r.Portfolio == row.Portfolio &&
			r.NativeXor == row.NativeXor && r.Analytic == row.Analytic &&
			r.AIG == row.AIG && r.Simplify == row.Simplify {
			return r, true
		}
	}
	return BenchRow{}, false
}
