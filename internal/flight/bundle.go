package flight

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"dynunlock/internal/bench"
	"dynunlock/internal/lock"
	"dynunlock/internal/trace"
)

// ErrCorrupt marks a bundle file that failed to parse — a malformed or
// truncated JSONL line, an unreadable manifest. Every parse failure is
// reported as a *BundleError wrapping ErrCorrupt, never a panic, so
// tooling can distinguish "damaged bundle" from I/O errors.
var ErrCorrupt = errors.New("flight: corrupt or truncated bundle file")

// ErrOracleMiss marks a replay that requested a session the recorded
// transcript does not contain (a truncated oracle.jsonl, or a bundle
// replayed under a different configuration than it was recorded with).
var ErrOracleMiss = errors.New("flight: oracle transcript exhausted or mismatched")

// BundleError locates a bundle fault in a file (and line, when line-
// oriented). It wraps the underlying cause; errors.Is sees ErrCorrupt for
// parse faults.
type BundleError struct {
	Path string
	Line int // 1-based; 0 when not line-oriented
	Err  error
}

func (e *BundleError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("flight: %s:%d: %v", e.Path, e.Line, e.Err)
	}
	return fmt.Sprintf("flight: %s: %v", e.Path, e.Err)
}

func (e *BundleError) Unwrap() error { return e.Err }

// Bundle is a loaded run bundle: the manifest, the recorded result, and
// the full oracle and DIP transcripts.
type Bundle struct {
	Dir      string
	Manifest Manifest
	Result   ResultDoc
	Sessions []SessionRecord
	DIPs     []DIPRecord
}

// Open loads a bundle from dir. Damaged files return a *BundleError
// wrapping ErrCorrupt; a missing required file surfaces the fs error.
// result.json and dips.jsonl are required (every recorder writes them);
// metrics.json and trace.jsonl are not parsed here (ReadTrace reads the
// trace on demand).
func Open(dir string) (*Bundle, error) {
	b := &Bundle{Dir: dir}
	if err := readJSONFile(filepath.Join(dir, ManifestFile), &b.Manifest); err != nil {
		return nil, err
	}
	if err := ValidateManifest(&b.Manifest); err != nil {
		return nil, &BundleError{Path: filepath.Join(dir, ManifestFile), Err: fmt.Errorf("%w: %v", ErrCorrupt, err)}
	}
	if err := readJSONFile(filepath.Join(dir, ResultFile), &b.Result); err != nil {
		return nil, err
	}
	if err := readJSONL(filepath.Join(dir, OracleFile), func() any { return &SessionRecord{} }, func(v any) {
		b.Sessions = append(b.Sessions, *v.(*SessionRecord))
	}); err != nil {
		return nil, err
	}
	if err := readJSONL(filepath.Join(dir, DIPsFile), func() any { return &DIPRecord{} }, func(v any) {
		b.DIPs = append(b.DIPs, *v.(*DIPRecord))
	}); err != nil {
		return nil, err
	}
	return b, nil
}

// ValidateManifest checks a manifest against the schema contract
// (docs/manifest.schema.json): required fields present, widths consistent,
// gate positions in range. cmd/runs validate and Open both enforce it.
func ValidateManifest(m *Manifest) error {
	if m.FormatVersion < MinFormatVersion || m.FormatVersion > FormatVersion {
		return fmt.Errorf("formatVersion %d, want %d..%d", m.FormatVersion, MinFormatVersion, FormatVersion)
	}
	for i, p := range m.Profiles {
		if p == "" || p != filepath.Base(p) {
			return fmt.Errorf("profiles[%d] %q: want a bare file name inside the bundle", i, p)
		}
	}
	if m.CreatedAt == "" {
		return errors.New("createdAt missing")
	}
	if _, err := time.Parse(time.RFC3339, m.CreatedAt); err != nil {
		return fmt.Errorf("createdAt: %v", err)
	}
	if m.Benchmark == "" {
		return errors.New("benchmark missing")
	}
	if m.Trials < 1 {
		return fmt.Errorf("trials %d, want >= 1", m.Trials)
	}
	if m.Mode != "linear" && m.Mode != "direct" {
		return fmt.Errorf("mode %q, want linear|direct", m.Mode)
	}
	li := &m.Lock
	if li.KeyBits < 1 {
		return fmt.Errorf("lock.keyBits %d, want >= 1", li.KeyBits)
	}
	if li.ChainLength < 2 {
		return fmt.Errorf("lock.chainLength %d, want >= 2", li.ChainLength)
	}
	pol, err := ParsePolicy(li.Policy)
	if err != nil {
		return err
	}
	if li.Policy != "static" {
		if li.PolyN != li.KeyBits {
			return fmt.Errorf("lock.polyN %d != keyBits %d", li.PolyN, li.KeyBits)
		}
		if len(li.PolyTaps) == 0 {
			return errors.New("lock.polyTaps missing for dynamic policy")
		}
		for _, t := range li.PolyTaps {
			if t < 1 || t > li.PolyN {
				return fmt.Errorf("lock.polyTaps: tap %d out of range [1,%d]", t, li.PolyN)
			}
		}
	}
	_ = pol
	if len(li.Gates) == 0 {
		return errors.New("lock.gates missing")
	}
	for i, g := range li.Gates {
		if g.Link < 1 || g.Link >= li.ChainLength {
			return fmt.Errorf("lock.gates[%d].link %d out of range [1,%d)", i, g.Link, li.ChainLength)
		}
		if g.KeyBit < 0 || g.KeyBit >= li.KeyBits {
			return fmt.Errorf("lock.gates[%d].keyBit %d out of range [0,%d)", i, g.KeyBit, li.KeyBits)
		}
	}
	if m.Fingerprint.GoVersion == "" {
		return errors.New("fingerprint.goVersion missing")
	}
	return nil
}

// Design rebuilds the recorded locked design from the manifest: the same
// benchmark build and lock.Lock call the recording run made, with the
// resolved parameters pinned. The rebuilt key-gate placement is checked
// against the manifest's recorded gates, so a drifted generator surfaces
// as a typed error instead of a silently different circuit.
func (b *Bundle) Design() (*lock.Design, error) {
	m := &b.Manifest
	entry, ok := bench.ByName(m.Benchmark)
	if !ok {
		return nil, fmt.Errorf("flight: manifest benchmark %q unknown", m.Benchmark)
	}
	if m.Scale > 1 {
		entry = entry.Scaled(m.Scale)
	}
	n, err := entry.Build(0)
	if err != nil {
		return nil, fmt.Errorf("flight: rebuild %s: %w", m.Benchmark, err)
	}
	pol, err := ParsePolicy(m.Lock.Policy)
	if err != nil {
		return nil, err
	}
	cfg := lock.Config{
		KeyBits:       m.Lock.KeyBits,
		NumGates:      m.Lock.NumGates,
		Policy:        pol,
		Period:        m.Lock.Period,
		PlacementSeed: m.Lock.PlacementSeed,
	}
	if m.Lock.Policy != "static" {
		cfg.Poly.N = m.Lock.PolyN
		cfg.Poly.Taps = append([]int(nil), m.Lock.PolyTaps...)
	}
	d, err := lock.Lock(n, cfg)
	if err != nil {
		return nil, fmt.Errorf("flight: relock %s: %w", m.Benchmark, err)
	}
	if d.Chain.Length != m.Lock.ChainLength || len(d.Chain.Gates) != len(m.Lock.Gates) {
		return nil, fmt.Errorf("flight: rebuilt design disagrees with manifest: chain %d/%d gates vs recorded %d/%d",
			d.Chain.Length, len(d.Chain.Gates), m.Lock.ChainLength, len(m.Lock.Gates))
	}
	for i, g := range d.Chain.Gates {
		if g.Link != m.Lock.Gates[i].Link || g.KeyBit != m.Lock.Gates[i].KeyBit {
			return nil, fmt.Errorf("flight: rebuilt key gate %d is (link %d, bit %d), manifest records (link %d, bit %d)",
				i, g.Link, g.KeyBit, m.Lock.Gates[i].Link, m.Lock.Gates[i].KeyBit)
		}
	}
	return d, nil
}

// ReadAnatomy loads a bundle's anatomy.json. Bundles recorded without the
// anatomy capture (all v1–v3 bundles and v4 runs with the capture off)
// have no such file: that returns (nil, nil), never an error, so readers
// degrade to the derivable attribution alone.
func ReadAnatomy(dir string) (*AnatomyDoc, error) {
	path := filepath.Join(dir, AnatomyFile)
	if _, err := os.Stat(path); err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("flight: %w", err)
	}
	var doc AnatomyDoc
	if err := readJSONFile(path, &doc); err != nil {
		return nil, err
	}
	return &doc, nil
}

// ReadTrace parses a bundle's trace.jsonl into completed span records (the
// same shape trace.Collector retains), for stage-table rendering and
// cross-bundle span diffs.
func ReadTrace(dir string) ([]trace.SpanRecord, error) {
	type line struct {
		Ev       string            `json:"ev"`
		Span     string            `json:"span"`
		DurMS    float64           `json:"dur_ms"`
		Counters map[string]uint64 `json:"counters"`
	}
	var spans []trace.SpanRecord
	err := readJSONL(filepath.Join(dir, TraceFile), func() any { return &line{} }, func(v any) {
		l := v.(*line)
		if l.Ev == "span_end" {
			spans = append(spans, trace.SpanRecord{
				Name:     l.Span,
				Duration: time.Duration(l.DurMS * float64(time.Millisecond)),
				Counters: l.Counters,
			})
		}
	})
	return spans, err
}

// readJSONL parses one JSON document per line, allocating each record via
// mk and delivering it via add. Any unparseable line — including a
// truncated final line — returns a *BundleError wrapping ErrCorrupt.
func readJSONL(path string, mk func() any, add func(v any)) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("flight: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		v := mk()
		if err := json.Unmarshal(text, v); err != nil {
			return &BundleError{Path: path, Line: lineNo, Err: fmt.Errorf("%w: %v", ErrCorrupt, err)}
		}
		add(v)
	}
	if err := sc.Err(); err != nil {
		return &BundleError{Path: path, Line: lineNo, Err: fmt.Errorf("%w: %v", ErrCorrupt, err)}
	}
	return nil
}

func readJSONFile(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("flight: %w", err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return &BundleError{Path: path, Err: fmt.Errorf("%w: %v", ErrCorrupt, err)}
	}
	return nil
}
