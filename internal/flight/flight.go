// Package flight is the attack stack's flight recorder: it persists a run
// as a self-contained, replayable bundle of artifacts and replays recorded
// runs offline with no chip simulation.
//
// A bundle is a directory:
//
//	manifest.json   run configuration, resolved lock parameters (LFSR
//	                polynomial, key-gate positions), seed of record, and a
//	                host/toolchain fingerprint (schema: docs/manifest.schema.json)
//	oracle.jsonl    every scan session the attack issued: test key,
//	                scan-in, PIs, scan-out, POs, cycle count — one JSON
//	                line per session, in issue order
//	dips.jsonl      one line per SAT-attack iteration: the DIP, the
//	                oracle response, a solver-counter snapshot, wall time
//	trace.jsonl     the structured trace stream (internal/trace JSONL schema)
//	metrics.json    terminal snapshot of the live-metrics registry
//	result.json     per-trial outcomes: seed candidates, counters, stop
//	                reason, solver stats
//
// Recording is strictly additive: a Recorder taps the existing extension
// points (the core.Chip oracle interface, satattack.Options.OnDIP, a
// trace.Sink) and never changes what the attack computes; with no recorder
// installed the attack path is bit-identical to an unrecorded run.
//
// Replay inverts the capture: Bundle.ReplayChip returns a core.Chip that
// serves recorded sessions instead of simulating silicon, so a recorded
// attack re-runs anywhere — the post-mortem discipline the oracle-guided
// SAT attack needs when runs diverge between hosts or commits — and
// Bundle.Replay re-executes whole experiments with a test-enforced
// bit-identical result.
package flight

import (
	"fmt"
	"os"
	"runtime"
	"runtime/debug"

	"dynunlock/internal/lock"
	"dynunlock/internal/sat"
	"dynunlock/internal/scan"
)

// FormatVersion identifies the bundle layout; bump on incompatible change.
// Version history:
//
//	1  initial layout (manifest, oracle/DIP transcripts, trace, metrics, result)
//	2  adds Manifest.Profiles: optional pprof captures stored in the bundle
//	3  adds Manifest.AIG/Simplify (encode-path provenance) and the trial
//	   encode counters EncodeVars/EncodeClauses
//	4  adds anatomy.json (live-captured solver search telemetry: LBD
//	   histograms and restart counts per DIP) and Manifest.Anatomy
//
// Readers accept any version in [MinFormatVersion, FormatVersion]: each
// version is a strict superset of the previous, so older bundles load
// unchanged (absent fields mean the corresponding feature was off).
const (
	FormatVersion    = 4
	MinFormatVersion = 1
)

// BenchFormatVersion identifies the BENCH_attack.json ledger layout. The
// ledger is a separate committed artifact with its own (unchanged) schema;
// it does not track the bundle FormatVersion.
const BenchFormatVersion = 1

// Manifest is the bundle's self-description: everything needed to rebuild
// the locked design and re-run the attack, plus a provenance fingerprint.
type Manifest struct {
	FormatVersion int    `json:"formatVersion"`
	CreatedAt     string `json:"createdAt"` // RFC3339
	Tool          string `json:"tool"`      // recording command, e.g. "dynunlock", "tables"

	// Experiment configuration (mirrors dynunlock.ExperimentConfig).
	Benchmark      string `json:"benchmark"` // base benchmark name (pre-scaling)
	Scale          int    `json:"scale"`
	Trials         int    `json:"trials"`
	Mode           string `json:"mode"` // "linear" | "direct"
	Portfolio      int    `json:"portfolio"`
	EnumerateLimit int    `json:"enumerateLimit"`
	MaxIterations  int    `json:"maxIterations"`
	// SeedBase is the seed of record: every per-trial chip secret derives
	// from it, so the whole experiment is reproducible from this one value.
	SeedBase int64 `json:"seedBase"`
	// NativeXor records that XOR gates were encoded as native GF(2) solver
	// rows; Analytic that the insight feedback loop was armed. Both are
	// optional additions within format version 2 — absent (older bundles)
	// means off, and replay then reproduces the pure-CNF attack exactly.
	NativeXor bool `json:"nativeXor,omitempty"`
	Analytic  bool `json:"analytic,omitempty"`
	// AIG records that miter copies were encoded from the shared
	// structurally-hashed AIG; Simplify that level-0 solver inprocessing ran
	// between DIP iterations. Both are format-version-3 additions with the
	// same discipline as NativeXor: absent means off, and replay arms the
	// exact encode path the bundle was recorded with.
	AIG      bool `json:"aig,omitempty"`
	Simplify bool `json:"simplify,omitempty"`
	// Anatomy records that live solver search telemetry was captured into
	// anatomy.json (format version 4). Absent means the capture was off;
	// the attribution derivable from the other files (stage wall-time
	// split, per-DIP counter deltas) is unaffected either way.
	Anatomy bool `json:"anatomy,omitempty"`

	Lock        LockInfo    `json:"lock"`
	Fingerprint Fingerprint `json:"fingerprint"`

	// Profiles lists pprof capture files stored in the bundle directory
	// (e.g. "cpu.pprof", "heap.pprof"), recorded when the run was started
	// with -profile. Empty on unprofiled runs and on v1 bundles (new in
	// format version 2).
	Profiles []string `json:"profiles,omitempty"`
}

// LockInfo is the resolved locking configuration of the recorded design:
// the attacker-visible structure under the paper's threat model.
type LockInfo struct {
	KeyBits       int        `json:"keyBits"`
	NumGates      int        `json:"numGates"`
	Policy        string     `json:"policy"` // "static" | "per-pattern" | "per-cycle"
	Period        int        `json:"period,omitempty"`
	PolyN         int        `json:"polyN,omitempty"`
	PolyTaps      []int      `json:"polyTaps,omitempty"`
	PlacementSeed int64      `json:"placementSeed,omitempty"`
	ChainLength   int        `json:"chainLength"`
	Gates         []GateInfo `json:"gates"`
}

// GateInfo is one key gate's position and key-register binding.
type GateInfo struct {
	Link   int `json:"link"`
	KeyBit int `json:"keyBit"`
}

// Fingerprint records where and with what the bundle was produced.
type Fingerprint struct {
	GoVersion string `json:"goVersion"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"numCPU"`
	Host      string `json:"host,omitempty"`
	GitCommit string `json:"gitCommit,omitempty"`
}

// SessionRecord is one oracle.jsonl line: a complete scan session
// transcript. Bit vectors are rendered as "01" strings, index 0 first
// (the gf2.Vec.String convention).
type SessionRecord struct {
	Trial   int      `json:"trial"`
	Seq     int      `json:"seq"` // global issue order across the bundle
	TestKey string   `json:"testKey"`
	ScanIn  string   `json:"scanIn"`
	PIs     []string `json:"pis"`
	ScanOut string   `json:"scanOut"`
	POs     []string `json:"pos"`
	Cycles  uint64   `json:"cycles"`
}

// DIPRecord is one dips.jsonl line: a SAT-attack iteration.
type DIPRecord struct {
	Trial     int         `json:"trial"`
	Iteration int         `json:"iteration"` // 1-based within the trial
	DIP       string      `json:"dip"`
	Response  string      `json:"response"`
	Solver    SolverStats `json:"solver"`  // counter snapshot after the iteration
	SolveMS   float64     `json:"solveMS"` // wall time of the producing SAT call
}

// SolverStats mirrors sat.Stats with stable lowercase JSON names. The XOR
// counters are zero (and omitted) on pure-CNF runs and on bundles recorded
// before the native XOR layer existed; likewise the simplify counters on
// runs without inprocessing (pre-v3 bundles or -simplify=false).
type SolverStats struct {
	Decisions        uint64 `json:"decisions"`
	Propagations     uint64 `json:"propagations"`
	Conflicts        uint64 `json:"conflicts"`
	Restarts         uint64 `json:"restarts"`
	Learnt           uint64 `json:"learnt"`
	Removed          uint64 `json:"removed"`
	XorPropagations  uint64 `json:"xorPropagations,omitempty"`
	XorConflicts     uint64 `json:"xorConflicts,omitempty"`
	SimplifyCalls    uint64 `json:"simplifyCalls,omitempty"`
	SimplifyRemoved  uint64 `json:"simplifyRemoved,omitempty"`
	SimplifyStrength uint64 `json:"simplifyStrengthened,omitempty"`
}

// FromSatStats converts solver counters to the serialized form.
func FromSatStats(s sat.Stats) SolverStats {
	return SolverStats{
		Decisions:        s.Decisions,
		Propagations:     s.Propagations,
		Conflicts:        s.Conflicts,
		Restarts:         s.Restarts,
		Learnt:           s.Learnt,
		Removed:          s.Removed,
		XorPropagations:  s.XorPropagations,
		XorConflicts:     s.XorConflicts,
		SimplifyCalls:    s.SimplifyCalls,
		SimplifyRemoved:  s.SimplifyRemoved,
		SimplifyStrength: s.SimplifyStrengthened,
	}
}

// ResultDoc is result.json: the terminal outcome of the recorded run.
type ResultDoc struct {
	FormatVersion  int           `json:"formatVersion"`
	Trials         []TrialRecord `json:"trials"`
	Stopped        bool          `json:"stopped,omitempty"`
	StopReason     string        `json:"stopReason,omitempty"`
	ElapsedSeconds float64       `json:"elapsedSeconds"`
}

// TrialRecord is one trial's normalized outcome. SeedCandidates are bit
// strings sorted lexicographically so recorded and replayed sets compare
// bytewise.
type TrialRecord struct {
	Trial          int         `json:"trial"`
	SecretSeed     string      `json:"secretSeed"` // ground truth, for success scoring
	SeedCandidates []string    `json:"seedCandidates"`
	Exact          bool        `json:"exact"`
	Converged      bool        `json:"converged"`
	Analytic       bool        `json:"analytic,omitempty"`
	Verified       bool        `json:"verified"`
	Success        bool        `json:"success"`
	Iterations     int         `json:"iterations"`
	Queries        int         `json:"queries"`
	Rank           int         `json:"rank"`
	Stopped        bool        `json:"stopped,omitempty"`
	StopReason     string      `json:"stopReason,omitempty"`
	Seconds        float64     `json:"seconds"`
	Solver         SolverStats `json:"solver"`
	// EncodeVars/EncodeClauses count solver variables and emitted clauses
	// (including native XOR rows) attributable to circuit encoding across
	// the whole DIP loop (format version 3; zero and omitted before that).
	EncodeVars    uint64 `json:"encodeVars,omitempty"`
	EncodeClauses uint64 `json:"encodeClauses,omitempty"`
}

// AnatomyDoc is anatomy.json (bundle format version 4): live-captured
// solver search telemetry that cannot be derived from the other bundle
// files — sampled learnt-clause LBD histograms and restart telemetry,
// attack-wide and per DIP. The stage wall-time attribution and per-DIP
// counter deltas are NOT stored here: internal/anatomy derives them from
// trace.jsonl, dips.jsonl, and result.json on any bundle version.
type AnatomyDoc struct {
	FormatVersion int `json:"formatVersion"` // the doc's own version, 1
	// LBDBounds are the upper bucket bounds of every LBDHist in the doc;
	// each histogram has len(LBDBounds)+1 counts (last = overflow).
	LBDBounds []float64      `json:"lbdBounds"`
	Trials    []TrialAnatomy `json:"trials"`
}

// AnatomyDocVersion is the anatomy.json document version written by the
// capture layer.
const AnatomyDocVersion = 1

// TrialAnatomy is one trial's live search telemetry.
type TrialAnatomy struct {
	Trial int `json:"trial"`
	// LBD is the trial-wide sampled learnt-clause histogram.
	LBD LBDHist `json:"lbd"`
	// Restarts counts solver restarts; RestartConflicts sums the conflict
	// counts of the restarted search segments.
	Restarts         uint64 `json:"restarts"`
	RestartConflicts uint64 `json:"restartConflicts"`
	// DIPs holds the per-iteration telemetry segments, in iteration order.
	DIPs []DIPSearchRecord `json:"dips,omitempty"`
}

// LBDHist is a fixed-bucket histogram of sampled learnt-clause LBDs with
// summed LBD and clause-size accumulators (the mean sources).
type LBDHist struct {
	Counts  []uint64 `json:"counts,omitempty"` // len(bounds)+1; empty when no samples
	Samples uint64   `json:"samples"`
	SumLBD  uint64   `json:"sumLBD"`
	SumSize uint64   `json:"sumSize"`
}

// MeanLBD returns the mean sampled LBD (0 with no samples).
func (h LBDHist) MeanLBD() float64 {
	if h.Samples == 0 {
		return 0
	}
	return float64(h.SumLBD) / float64(h.Samples)
}

// DIPSearchRecord is one DIP iteration's slice of the search telemetry:
// what the solver's sampled hooks observed between the previous iteration
// boundary and this one.
type DIPSearchRecord struct {
	Iteration int     `json:"iteration"` // 1-based within the trial
	LBD       LBDHist `json:"lbd"`
	Restarts  uint64  `json:"restarts"`
}

// LockInfoFor extracts the serialized locking description from a design.
func LockInfoFor(d *lock.Design) LockInfo {
	li := LockInfo{
		KeyBits:       d.Config.KeyBits,
		NumGates:      d.Config.NumGates,
		Policy:        policyToken(d.Config.Policy),
		Period:        d.Config.Period,
		PlacementSeed: d.Config.PlacementSeed,
		ChainLength:   d.Chain.Length,
	}
	if d.Config.Policy != scan.Static {
		li.PolyN = d.Config.Poly.N
		li.PolyTaps = append([]int(nil), d.Config.Poly.Taps...)
	}
	for _, g := range d.Chain.Gates {
		li.Gates = append(li.Gates, GateInfo{Link: g.Link, KeyBit: g.KeyBit})
	}
	return li
}

// policyToken renders a policy as the stable manifest token (Policy.String
// carries paper annotations like "per-cycle(EFF-Dyn)" that do not belong in
// a machine-read schema).
func policyToken(p scan.Policy) string {
	switch p {
	case scan.Static:
		return "static"
	case scan.PerPattern:
		return "per-pattern"
	default:
		return "per-cycle"
	}
}

// ParsePolicy inverts policyToken.
func ParsePolicy(s string) (scan.Policy, error) {
	switch s {
	case "static":
		return scan.Static, nil
	case "per-pattern":
		return scan.PerPattern, nil
	case "per-cycle":
		return scan.PerCycle, nil
	}
	return 0, fmt.Errorf("flight: unknown policy %q", s)
}

// NewFingerprint samples the current process environment. The git commit
// comes from the binary's embedded VCS build info when present (builds from
// a clean checkout); it is empty otherwise.
func NewFingerprint() Fingerprint {
	fp := Fingerprint{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	if h, err := os.Hostname(); err == nil {
		fp.Host = h
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				fp.GitCommit = s.Value
			}
		}
	}
	return fp
}

// BitString renders a bit vector "01…", index 0 first.
func BitString(bs []bool) string {
	out := make([]byte, len(bs))
	for i, b := range bs {
		if b {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	return string(out)
}

// ParseBits inverts BitString.
func ParseBits(s string) ([]bool, error) {
	out := make([]bool, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '0':
		case '1':
			out[i] = true
		default:
			return nil, fmt.Errorf("flight: bit string %q: byte %d is %q, want '0' or '1'", s, i, s[i])
		}
	}
	return out, nil
}
