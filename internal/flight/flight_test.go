package flight

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"dynunlock/internal/sat"
	"dynunlock/internal/scan"
)

func TestBitStringRoundTrip(t *testing.T) {
	cases := [][]bool{{}, {true}, {false}, {true, false, true, true, false}}
	for _, bs := range cases {
		s := BitString(bs)
		got, err := ParseBits(s)
		if err != nil {
			t.Fatalf("ParseBits(%q): %v", s, err)
		}
		if len(got) != len(bs) {
			t.Fatalf("round trip length %d != %d", len(got), len(bs))
		}
		for i := range bs {
			if got[i] != bs[i] {
				t.Fatalf("round trip of %q differs at %d", s, i)
			}
		}
	}
	if _, err := ParseBits("01x"); err == nil {
		t.Error("ParseBits accepted a non-bit byte")
	}
}

func TestPolicyTokenRoundTrip(t *testing.T) {
	for _, p := range []scan.Policy{scan.Static, scan.PerPattern, scan.PerCycle} {
		got, err := ParsePolicy(policyToken(p))
		if err != nil {
			t.Fatalf("ParsePolicy(policyToken(%v)): %v", p, err)
		}
		if got != p {
			t.Errorf("policy round trip: %v -> %q -> %v", p, policyToken(p), got)
		}
	}
	if _, err := ParsePolicy("per-cycle(EFF-Dyn)"); err == nil {
		t.Error("ParsePolicy accepted an annotated display name")
	}
}

func validManifest() Manifest {
	return Manifest{
		FormatVersion: FormatVersion,
		CreatedAt:     "2026-08-05T00:00:00Z",
		Benchmark:     "s5378",
		Scale:         16,
		Trials:        1,
		Mode:          "linear",
		Lock: LockInfo{
			KeyBits:     8,
			NumGates:    8,
			Policy:      "per-cycle",
			PolyN:       8,
			PolyTaps:    []int{8, 6, 5, 4},
			ChainLength: 10,
			Gates:       []GateInfo{{Link: 1, KeyBit: 0}, {Link: 2, KeyBit: 1}},
		},
		Fingerprint: Fingerprint{GoVersion: "go1.24.0"},
	}
}

func TestValidateManifest(t *testing.T) {
	m := validManifest()
	if err := ValidateManifest(&m); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
	breakers := map[string]func(*Manifest){
		"formatVersion": func(m *Manifest) { m.FormatVersion = 99 },
		"createdAt":     func(m *Manifest) { m.CreatedAt = "yesterday" },
		"benchmark":     func(m *Manifest) { m.Benchmark = "" },
		"trials":        func(m *Manifest) { m.Trials = 0 },
		"mode":          func(m *Manifest) { m.Mode = "quantum" },
		"policy":        func(m *Manifest) { m.Lock.Policy = "per-cycle(EFF-Dyn)" },
		"polyN":         func(m *Manifest) { m.Lock.PolyN = 4 },
		"tap range":     func(m *Manifest) { m.Lock.PolyTaps = []int{99} },
		"gate link":     func(m *Manifest) { m.Lock.Gates[0].Link = 10 },
		"gate keyBit":   func(m *Manifest) { m.Lock.Gates[0].KeyBit = 8 },
		"no gates":      func(m *Manifest) { m.Lock.Gates = nil },
		"fingerprint":   func(m *Manifest) { m.Fingerprint.GoVersion = "" },
	}
	for name, breaker := range breakers {
		m := validManifest()
		breaker(&m)
		if err := ValidateManifest(&m); err == nil {
			t.Errorf("%s: invalid manifest accepted", name)
		}
	}
}

// writeBundleFixture materializes a minimal on-disk bundle for Open tests.
func writeBundleFixture(t *testing.T, dir string) {
	t.Helper()
	rec, err := Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteManifest(validManifest()); err != nil {
		t.Fatal(err)
	}
	rec.RecordTrial(TrialRecord{Trial: 0, SecretSeed: "10000000", Iterations: 1, Queries: 1})
	hook := rec.DIPHook(0)
	hook(1, []bool{true, false}, []bool{false}, sat.Stats{Conflicts: 7}, 0)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	// One hand-written session line (WrapChip needs a live chip; Open only
	// needs the file).
	line := `{"trial":0,"seq":0,"testKey":"00000000","scanIn":"0000000000","pis":["00"],"scanOut":"0000000000","pos":["0"],"cycles":21}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, OracleFile), []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestOpenParsesFixture(t *testing.T) {
	dir := t.TempDir()
	writeBundleFixture(t, dir)
	b, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Sessions) != 1 || len(b.DIPs) != 1 || len(b.Result.Trials) != 1 {
		t.Fatalf("fixture parse: %d sessions, %d dips, %d trials",
			len(b.Sessions), len(b.DIPs), len(b.Result.Trials))
	}
	if b.Sessions[0].Cycles != 21 || b.DIPs[0].DIP != "10" {
		t.Errorf("fixture content wrong: %+v %+v", b.Sessions[0], b.DIPs[0])
	}
}

func TestOpenCorruptOracleIsTypedError(t *testing.T) {
	dir := t.TempDir()
	writeBundleFixture(t, dir)
	path := filepath.Join(dir, OracleFile)
	if err := os.WriteFile(path, []byte("{\"trial\":0,\n not json at all\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(dir)
	if err == nil {
		t.Fatal("Open accepted a corrupt oracle.jsonl")
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt oracle error = %v, want errors.Is(_, ErrCorrupt)", err)
	}
	var be *BundleError
	if !errors.As(err, &be) {
		t.Fatalf("corrupt oracle error %T does not unwrap to *BundleError", err)
	}
	if be.Line != 1 {
		t.Errorf("BundleError.Line = %d, want 1", be.Line)
	}
}

func TestOpenTruncatedOracleIsTypedError(t *testing.T) {
	dir := t.TempDir()
	writeBundleFixture(t, dir)
	path := filepath.Join(dir, OracleFile)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut mid-line, as a crashed recorder would leave it.
	if err := os.WriteFile(path, full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated oracle error = %v, want errors.Is(_, ErrCorrupt)", err)
	}
}

func TestOpenCorruptManifestIsTypedError(t *testing.T) {
	dir := t.TempDir()
	writeBundleFixture(t, dir)
	m := validManifest()
	m.Lock.Gates[0].Link = 99 // schema violation, not a JSON parse error
	if err := writeJSONFile(filepath.Join(dir, ManifestFile), &m); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("schema-violating manifest error = %v, want errors.Is(_, ErrCorrupt)", err)
	}
}

func TestBenchFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_attack.json")
	f, err := ReadBenchFile(path)
	if err != nil {
		t.Fatalf("missing ledger should read as empty: %v", err)
	}
	row := BenchRow{Benchmark: "s5378", Scale: 16, KeyBits: 8, Policy: "per-cycle",
		Mode: "linear", Trials: 2, AvgIterations: 3, Broken: true}
	f.Rows = append(f.Rows, row)
	if err := f.Write(path); err != nil {
		t.Fatal(err)
	}
	g, err := ReadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Rows) != 1 || g.Rows[0] != row {
		t.Fatalf("ledger round trip: %+v", g.Rows)
	}
	if got, ok := g.FindRow(BenchRow{Benchmark: "s5378", Scale: 16, KeyBits: 8,
		Policy: "per-cycle", Mode: "linear"}); !ok || got.AvgIterations != 3 {
		t.Errorf("FindRow: %+v %v", got, ok)
	}
	if _, ok := g.FindRow(BenchRow{Benchmark: "b17"}); ok {
		t.Error("FindRow matched a different configuration")
	}
}
