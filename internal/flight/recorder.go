package flight

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"dynunlock/internal/core"
	"dynunlock/internal/gf2"
	"dynunlock/internal/metrics"
	"dynunlock/internal/sat"
	"dynunlock/internal/satattack"
	"dynunlock/internal/trace"
)

// Bundle file names.
const (
	ManifestFile = "manifest.json"
	OracleFile   = "oracle.jsonl"
	DIPsFile     = "dips.jsonl"
	TraceFile    = "trace.jsonl"
	MetricsFile  = "metrics.json"
	ResultFile   = "result.json"

	// AnatomyFile holds live-captured solver search telemetry (format
	// version 4, anatomy-enabled runs only).
	AnatomyFile = "anatomy.json"

	// Profile capture files (format version 2, -profile runs only).
	CPUProfileFile  = "cpu.pprof"
	HeapProfileFile = "heap.pprof"
)

// Recorder writes a run bundle. It is safe for concurrent use: condition
// sweeps record trials from worker goroutines, and all appends are
// serialized under one mutex. Create it, install its taps (WrapChip,
// DIPHook, TraceSink), feed it trial results, and Close it to finalize
// result.json.
type Recorder struct {
	// Tool names the recording command ("dynunlock", "tables"); it is
	// stamped into the manifest when the experiment layer writes it.
	Tool string

	dir string

	mu       sync.Mutex
	oracleF  *os.File
	oracleW  *bufio.Writer
	dipsF    *os.File
	dipsW    *bufio.Writer
	traceF   *os.File
	sink     trace.Sink
	seq      int
	result   ResultDoc
	start    time.Time
	closed   bool
	durable  bool
	cpuF     *os.File
	profiles []string
}

// SetDurable switches the transcript writers to flush-per-record: every
// oracle.jsonl and dips.jsonl append reaches the file before the attack
// proceeds, so a killed process leaves a loadable prefix (at worst one
// torn final line, which OpenPartial drops). The daemon records every
// job durably — resumability is what makes its bundles trustworthy;
// single-run CLIs keep the buffered default (flush at Close).
func (r *Recorder) SetDurable(on bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.durable = on
}

// Create opens a new bundle directory (making it if needed) and the
// streaming record files. The manifest is written separately by
// WriteManifest once the recording layer has resolved the design.
func Create(dir string) (*Recorder, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("flight: create bundle: %w", err)
	}
	r := &Recorder{dir: dir, start: time.Now()}
	r.result.FormatVersion = FormatVersion
	var err error
	if r.oracleF, err = os.Create(filepath.Join(dir, OracleFile)); err != nil {
		return nil, fmt.Errorf("flight: %w", err)
	}
	r.oracleW = bufio.NewWriter(r.oracleF)
	if r.dipsF, err = os.Create(filepath.Join(dir, DIPsFile)); err != nil {
		r.oracleF.Close()
		return nil, fmt.Errorf("flight: %w", err)
	}
	r.dipsW = bufio.NewWriter(r.dipsF)
	if r.traceF, err = os.Create(filepath.Join(dir, TraceFile)); err != nil {
		r.oracleF.Close()
		r.dipsF.Close()
		return nil, fmt.Errorf("flight: %w", err)
	}
	r.sink = trace.NewJSONLSink(r.traceF)
	return r, nil
}

// Dir returns the bundle directory.
func (r *Recorder) Dir() string { return r.dir }

// WriteManifest writes manifest.json. A zero CreatedAt/FormatVersion is
// stamped here so callers only fill the run description; the recorder's
// active profile captures are stamped when the caller leaves Profiles empty.
func (r *Recorder) WriteManifest(m Manifest) error {
	if m.FormatVersion == 0 {
		m.FormatVersion = FormatVersion
	}
	if m.CreatedAt == "" {
		m.CreatedAt = time.Now().UTC().Format(time.RFC3339)
	}
	if len(m.Profiles) == 0 {
		m.Profiles = r.Profiles()
	}
	return writeJSONFile(filepath.Join(r.dir, ManifestFile), &m)
}

// StartProfiles begins per-run pprof capture into the bundle: a CPU profile
// streams to cpu.pprof immediately, and Close writes a terminal heap
// profile to heap.pprof. Both names are stamped into the manifest (format
// version 2). Fails if another CPU profile is already active in the
// process.
func (r *Recorder) StartProfiles() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cpuF != nil {
		return fmt.Errorf("flight: profiles already started")
	}
	f, err := os.Create(filepath.Join(r.dir, CPUProfileFile))
	if err != nil {
		return fmt.Errorf("flight: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		os.Remove(f.Name())
		return fmt.Errorf("flight: %w", err)
	}
	r.cpuF = f
	r.profiles = []string{CPUProfileFile, HeapProfileFile}
	return nil
}

// Profiles returns the profile file names this recorder is capturing (nil
// when StartProfiles was never called).
func (r *Recorder) Profiles() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.profiles...)
}

// stopProfiles finalizes an active capture: stops the CPU profile and
// writes the heap profile. Called under r.mu from Close; a no-op when
// StartProfiles was never called.
func (r *Recorder) stopProfiles() error {
	if r.cpuF == nil {
		return nil
	}
	pprof.StopCPUProfile()
	err := r.cpuF.Close()
	r.cpuF = nil
	hf, herr := os.Create(filepath.Join(r.dir, HeapProfileFile))
	if herr != nil {
		if err == nil {
			err = herr
		}
		return err
	}
	runtime.GC() // settle the heap so the profile reflects live objects
	if werr := pprof.Lookup("heap").WriteTo(hf, 0); werr != nil && err == nil {
		err = werr
	}
	if cerr := hf.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// TraceSink returns a sink that streams the run's trace events into the
// bundle's trace.jsonl; add it to the CLI's sink list.
func (r *Recorder) TraceSink() trace.Sink { return r.sink }

// DIPHook returns a satattack.DIPObserver that appends dips.jsonl lines
// tagged with the given trial.
func (r *Recorder) DIPHook(trial int) satattack.DIPObserver {
	return func(iter int, dip, resp []bool, stats sat.Stats, solveTime time.Duration) {
		rec := DIPRecord{
			Trial:     trial,
			Iteration: iter,
			DIP:       BitString(dip),
			Response:  BitString(resp),
			Solver:    FromSatStats(stats),
			SolveMS:   float64(solveTime) / float64(time.Millisecond),
		}
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.closed {
			return
		}
		appendJSONL(r.dipsW, &rec)
		if r.durable {
			r.dipsW.Flush()
		}
	}
}

// WrapChip decorates a chip so every scan session it serves is appended to
// oracle.jsonl, tagged with the given trial. The decorator is transparent:
// all calls forward to the inner chip, session hooks installed on the
// wrapper chain onto the inner chip's hook list, and the session outputs
// are untouched — a recorded attack computes exactly what an unrecorded
// one does.
func (r *Recorder) WrapChip(trial int, inner core.Chip) core.Chip {
	rc := &recordingChip{Chip: inner, rec: r, trial: trial}
	// Cycle accounting rides the existing SessionHook chain: the recorder's
	// hook stashes the session's cycle cost for the record line and forwards
	// to whatever was installed before.
	var prev func(uint64)
	prev = inner.SetSessionHook(func(cycles uint64) {
		rc.lastCycles = cycles
		if prev != nil {
			prev(cycles)
		}
	})
	return rc
}

// recordingChip is the capture decorator returned by WrapChip.
type recordingChip struct {
	core.Chip // inner oracle; Design/Reset/SetSessionHook forward directly
	rec       *Recorder
	trial     int
	// lastCycles is the cycle cost of the most recent session, set by the
	// recorder's session hook before SessionN returns. Attack layers issue
	// sessions sequentially (DIP queries and probes are serialized even
	// under a portfolio), so a single slot suffices.
	lastCycles uint64
}

func (c *recordingChip) Session(testKey, scanIn, pi []bool) (scanOut, po []bool) {
	out, pos := c.SessionN(testKey, scanIn, [][]bool{pi})
	return out, pos[0]
}

func (c *recordingChip) SessionN(testKey, scanIn []bool, pis [][]bool) (scanOut []bool, pos [][]bool) {
	scanOut, pos = c.Chip.SessionN(testKey, scanIn, pis)
	rec := SessionRecord{
		Trial:   c.trial,
		TestKey: BitString(testKey),
		ScanIn:  BitString(scanIn),
		ScanOut: BitString(scanOut),
		Cycles:  c.lastCycles,
	}
	for _, pi := range pis {
		rec.PIs = append(rec.PIs, BitString(pi))
	}
	for _, po := range pos {
		rec.POs = append(rec.POs, BitString(po))
	}
	c.rec.mu.Lock()
	defer c.rec.mu.Unlock()
	if c.rec.closed {
		return scanOut, pos
	}
	rec.Seq = c.rec.seq
	c.rec.seq++
	appendJSONL(c.rec.oracleW, &rec)
	if c.rec.durable {
		c.rec.oracleW.Flush()
	}
	return scanOut, pos
}

// TrialFromResult normalizes one attack result into the serialized trial
// record. Candidates are sorted so record and replay compare bytewise.
func TrialFromResult(trial int, secretSeed gf2.Vec, res *core.Result, seconds float64, success bool) TrialRecord {
	t := TrialRecord{
		Trial:      trial,
		SecretSeed: secretSeed.String(),
		Exact:      res.Exact,
		Converged:  res.Converged,
		Analytic:   res.Analytic,
		Verified:   res.Verified,
		Success:    success,
		Iterations: res.Iterations,
		Queries:    res.Queries,
		Rank:       res.Rank,
		Stopped:    res.Stopped,
		StopReason: string(res.StopReason),
		Seconds:    seconds,
		Solver:     FromSatStats(res.SolverStats),

		EncodeVars:    res.EncodeVars,
		EncodeClauses: res.EncodeClauses,
	}
	for _, c := range res.SeedCandidates {
		t.SeedCandidates = append(t.SeedCandidates, c.String())
	}
	sort.Strings(t.SeedCandidates)
	return t
}

// RecordTrial appends a trial outcome to result.json's trial list.
func (r *Recorder) RecordTrial(t TrialRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.result.Trials = append(r.result.Trials, t)
}

// SetStopped records that a bound ended the run early.
func (r *Recorder) SetStopped(stopped bool, reason string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.result.Stopped = stopped
	r.result.StopReason = reason
}

// WriteAnatomy writes anatomy.json: the live-captured search telemetry
// document (see AnatomyDoc). A zero FormatVersion is stamped here. Call it
// before Close, once the capture layer has sealed every trial.
func (r *Recorder) WriteAnatomy(doc *AnatomyDoc) error {
	if doc.FormatVersion == 0 {
		doc.FormatVersion = AnatomyDocVersion
	}
	return writeJSONFile(filepath.Join(r.dir, AnatomyFile), doc)
}

// WriteMetrics writes metrics.json: the terminal snapshot of the live
// registry. A nil registry writes an empty document so the bundle layout
// stays uniform.
func (r *Recorder) WriteMetrics(reg *metrics.Registry) error {
	return r.WriteMetricsSnapshot(reg.Snapshot())
}

// WriteMetricsSnapshot writes metrics.json from a prebuilt snapshot map
// — the daemon scopes a shared registry down to one job's series
// (Registry.SnapshotLabeled) before recording it, so a job's bundle
// carries only its own totals.
func (r *Recorder) WriteMetricsSnapshot(snap map[string]any) error {
	if snap == nil {
		snap = map[string]any{}
	}
	return writeJSONFile(filepath.Join(r.dir, MetricsFile), snap)
}

// Close flushes the streaming files and writes result.json. Idempotent;
// the first call wins.
func (r *Recorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil
	}
	r.closed = true
	r.result.ElapsedSeconds = time.Since(r.start).Seconds()
	var firstErr error
	keep := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	keep(r.stopProfiles())
	keep(r.oracleW.Flush())
	keep(r.oracleF.Close())
	keep(r.dipsW.Flush())
	keep(r.dipsF.Close())
	keep(r.traceF.Close())
	keep(writeJSONFile(filepath.Join(r.dir, ResultFile), &r.result))
	return firstErr
}

// appendJSONL writes v as one JSON line; marshal errors are impossible for
// the record types (plain strings and integers), encode errors surface at
// Flush via the writer's sticky error.
func appendJSONL(w *bufio.Writer, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	w.Write(b)
	w.WriteByte('\n')
}

func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("flight: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return fmt.Errorf("flight: write %s: %w", filepath.Base(path), err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("flight: write %s: %w", filepath.Base(path), err)
	}
	return nil
}
