package flight

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"dynunlock/internal/core"
	"dynunlock/internal/gf2"
	"dynunlock/internal/insight"
	"dynunlock/internal/lock"
	"dynunlock/internal/satattack"
)

// Replay is an oracle that answers scan sessions from a recorded transcript
// instead of simulating silicon. It implements core.Chip, so it drops into
// core.AttackCtx / scansat.AttackCtx wherever a fabricated *oracle.Chip
// would go — the attack re-runs offline with no chip model at all.
//
// Sessions match by content, not order: each (testKey, scanIn, PIs) triple
// keys a FIFO of recorded responses, so a replay stays exact as long as the
// attack asks the same questions, even if scheduling reorders them. A query
// the transcript cannot answer never panics: the first miss is latched and
// returned by Err, and the session gets correctly-sized zero outputs so the
// attack can wind down.
//
// Bit-identical replay is guaranteed for sequentially recorded bundles
// (portfolio 1): the sequential engine is deterministic, so the replayed
// attack issues exactly the recorded queries and reproduces the recorded
// result. Portfolio-recorded bundles replay best-effort — the recorded
// transcript covers one race schedule, and a replay that diverges from it
// reports ErrOracleMiss rather than inventing responses.
type Replay struct {
	design *lock.Design

	mu     sync.Mutex
	queues map[string][]*SessionRecord
	pend   int // records not yet served
	hook   func(cycles uint64)
	err    error
}

// NewReplay builds a replay oracle over a session transcript for the given
// design. Records are queued in slice order (recording order).
func NewReplay(design *lock.Design, sessions []*SessionRecord) *Replay {
	r := &Replay{design: design, queues: make(map[string][]*SessionRecord)}
	for _, s := range sessions {
		k := sessionKey(s.TestKey, s.ScanIn, s.PIs)
		r.queues[k] = append(r.queues[k], s)
		r.pend++
	}
	return r
}

// ReplayChip returns a replay oracle for one recorded trial, with the
// design rebuilt from the manifest.
func (b *Bundle) ReplayChip(trial int) (*Replay, error) {
	d, err := b.Design()
	if err != nil {
		return nil, err
	}
	var recs []*SessionRecord
	for i := range b.Sessions {
		if b.Sessions[i].Trial == trial {
			recs = append(recs, &b.Sessions[i])
		}
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("%w: bundle has no sessions for trial %d", ErrOracleMiss, trial)
	}
	return NewReplay(d, recs), nil
}

func sessionKey(testKey, scanIn string, pis []string) string {
	return testKey + "|" + scanIn + "|" + strings.Join(pis, ",")
}

// Design returns the locked design the transcript was recorded against.
func (r *Replay) Design() *lock.Design { return r.design }

// Reset is a no-op: the transcript already embeds the chip's state
// evolution, and the attack resets only at session boundaries.
func (r *Replay) Reset() {}

// SetSessionHook installs the cycle-accounting hook; recorded cycle counts
// are replayed into it, so trace counters match the original run.
func (r *Replay) SetSessionHook(h func(cycles uint64)) (prev func(cycles uint64)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	prev = r.hook
	r.hook = h
	return prev
}

// Err returns the first transcript miss, or nil when every session so far
// was answered from the recording. A non-nil Err means the replayed result
// is not trustworthy (the attack saw fabricated zero responses).
func (r *Replay) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Remaining returns the number of recorded sessions not yet served.
func (r *Replay) Remaining() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pend
}

// Session replays a single-capture session.
func (r *Replay) Session(testKey, scanIn, pi []bool) (scanOut, po []bool) {
	out, pos := r.SessionN(testKey, scanIn, [][]bool{pi})
	return out, pos[0]
}

// SessionN replays a multi-capture session from the transcript.
func (r *Replay) SessionN(testKey, scanIn []bool, pis [][]bool) (scanOut []bool, pos [][]bool) {
	piStrs := make([]string, len(pis))
	for i, pi := range pis {
		piStrs[i] = BitString(pi)
	}
	k := sessionKey(BitString(testKey), BitString(scanIn), piStrs)

	r.mu.Lock()
	q := r.queues[k]
	if len(q) == 0 {
		if r.err == nil {
			r.err = fmt.Errorf("%w: no recorded response for session testKey=%s scanIn=%s pis=%d",
				ErrOracleMiss, BitString(testKey), BitString(scanIn), len(pis))
		}
		r.mu.Unlock()
		// Fabricate correctly-sized zero outputs so the caller can finish
		// its iteration and observe Err instead of crashing mid-attack.
		scanOut = make([]bool, r.design.Chain.Length)
		pos = make([][]bool, len(pis))
		for i := range pos {
			pos[i] = make([]bool, r.design.View.NumPO)
		}
		return scanOut, pos
	}
	rec := q[0]
	r.queues[k] = q[1:]
	r.pend--
	hook := r.hook
	r.mu.Unlock()

	scanOut, err := ParseBits(rec.ScanOut)
	if err != nil {
		scanOut = make([]bool, r.design.Chain.Length)
	}
	pos = make([][]bool, len(rec.POs))
	for i, s := range rec.POs {
		po, err := ParseBits(s)
		if err != nil {
			po = make([]bool, r.design.View.NumPO)
		}
		pos[i] = po
	}
	if hook != nil {
		hook(rec.Cycles)
	}
	return scanOut, pos
}

// Replay re-runs the recorded experiment offline: every trial in
// result.json is re-attacked through a replay oracle built from
// oracle.jsonl, under the manifest's attack options. The engine is forced
// sequential regardless of the recorded portfolio width — replay has no
// silicon to race for, and the sequential engine is what makes the re-run
// bit-identical. Success is scored against the recorded secret seed.
func (b *Bundle) Replay(ctx context.Context) (*ResultDoc, error) {
	mode := core.ModeLinear
	if b.Manifest.Mode == "direct" {
		mode = core.ModeDirect
	}
	out := &ResultDoc{FormatVersion: FormatVersion}
	start := time.Now()
	for _, rt := range b.Result.Trials {
		chip, err := b.ReplayChip(rt.Trial)
		if err != nil {
			return nil, err
		}
		opts := core.Options{
			Mode:           mode,
			EnumerateLimit: b.Manifest.EnumerateLimit,
			MaxIterations:  b.Manifest.MaxIterations,
			NativeXor:      b.Manifest.NativeXor,
			AIG:            b.Manifest.AIG,
			Simplify:       b.Manifest.Simplify,
		}
		// An analytic recording ran with the insight feedback loop armed;
		// rebuild the same tracker so the replay short-circuits at the same
		// iteration. A tracker setup failure degrades exactly like the
		// recording side (dynunlock.RunExperimentCtx): untracked attack.
		if b.Manifest.Analytic {
			if tk, terr := insight.New(chip.Design(), insight.Options{}); terr == nil {
				opts.OnDIP = satattack.ChainObservers(opts.OnDIP, tk.DIPObserver())
				opts.Insight = tk
			}
		}
		t0 := time.Now()
		res, err := core.AttackCtx(ctx, chip, opts)
		if err != nil {
			return nil, fmt.Errorf("flight: replay trial %d: %w", rt.Trial, err)
		}
		if rerr := chip.Err(); rerr != nil {
			return nil, fmt.Errorf("flight: replay trial %d: %w", rt.Trial, rerr)
		}
		seedBits, err := ParseBits(rt.SecretSeed)
		if err != nil {
			return nil, &BundleError{Path: ResultFile, Err: fmt.Errorf("%w: trial %d secretSeed: %v", ErrCorrupt, rt.Trial, err)}
		}
		seed := gf2.FromBools(seedBits)
		success := core.ContainsSeed(res.SeedCandidates, seed)
		out.Trials = append(out.Trials,
			TrialFromResult(rt.Trial, seed, res, time.Since(t0).Seconds(), success))
	}
	out.Stopped = b.Result.Stopped
	out.StopReason = b.Result.StopReason
	out.ElapsedSeconds = time.Since(start).Seconds()
	return out, nil
}

// Compare diffs the deterministic fields of a recorded and a replayed
// result: per-trial seed-candidate sets, iteration and query counts, and
// the exact/converged/success flags. Wall times and solver counters are
// excluded — they legitimately vary across hosts. An empty slice means the
// replay is bit-identical on everything the attack computes.
func Compare(recorded, replayed *ResultDoc) []string {
	var diffs []string
	if len(recorded.Trials) != len(replayed.Trials) {
		return []string{fmt.Sprintf("trial count: recorded %d, replayed %d",
			len(recorded.Trials), len(replayed.Trials))}
	}
	for i := range recorded.Trials {
		a, b := &recorded.Trials[i], &replayed.Trials[i]
		pfx := fmt.Sprintf("trial %d: ", a.Trial)
		if a.Iterations != b.Iterations {
			diffs = append(diffs, fmt.Sprintf("%siterations %d != %d", pfx, a.Iterations, b.Iterations))
		}
		if a.Queries != b.Queries {
			diffs = append(diffs, fmt.Sprintf("%squeries %d != %d", pfx, a.Queries, b.Queries))
		}
		if a.Exact != b.Exact {
			diffs = append(diffs, fmt.Sprintf("%sexact %v != %v", pfx, a.Exact, b.Exact))
		}
		if a.Converged != b.Converged {
			diffs = append(diffs, fmt.Sprintf("%sconverged %v != %v", pfx, a.Converged, b.Converged))
		}
		if a.Analytic != b.Analytic {
			diffs = append(diffs, fmt.Sprintf("%sanalytic %v != %v", pfx, a.Analytic, b.Analytic))
		}
		if a.Success != b.Success {
			diffs = append(diffs, fmt.Sprintf("%ssuccess %v != %v", pfx, a.Success, b.Success))
		}
		if len(a.SeedCandidates) != len(b.SeedCandidates) {
			diffs = append(diffs, fmt.Sprintf("%scandidates %d != %d",
				pfx, len(a.SeedCandidates), len(b.SeedCandidates)))
			continue
		}
		for j := range a.SeedCandidates {
			if a.SeedCandidates[j] != b.SeedCandidates[j] {
				diffs = append(diffs, fmt.Sprintf("%scandidate %d: %s != %s",
					pfx, j, a.SeedCandidates[j], b.SeedCandidates[j]))
				break
			}
		}
	}
	return diffs
}
