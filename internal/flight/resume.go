package flight

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"dynunlock/internal/core"
	"dynunlock/internal/lock"
)

// Resume support: a job that died mid-attack (crash, eviction, SIGKILL)
// leaves a partial bundle behind — manifest.json plus whatever prefix of
// oracle.jsonl / dips.jsonl the durable recorder flushed, usually with
// no result.json. OpenPartial loads that prefix leniently, and
// NewResumeChip chains a Replay over it in front of a live chip: the
// resumed attack re-derives its solver state by replaying the recorded
// queries (the sequential engine re-asks exactly the same questions),
// then transparently continues on silicon where the transcript ends.

// OpenPartial loads a possibly-incomplete bundle: the manifest is
// required and validated, result.json is optional (absent on a crashed
// run, partial on an evicted one), and a torn final line in either
// transcript — the half-written record of the instant the process died —
// is dropped instead of failing the load. Corruption anywhere except the
// final line still returns a *BundleError wrapping ErrCorrupt.
func OpenPartial(dir string) (*Bundle, error) {
	b := &Bundle{Dir: dir}
	if err := readJSONFile(filepath.Join(dir, ManifestFile), &b.Manifest); err != nil {
		return nil, err
	}
	if err := ValidateManifest(&b.Manifest); err != nil {
		return nil, &BundleError{Path: filepath.Join(dir, ManifestFile), Err: fmt.Errorf("%w: %v", ErrCorrupt, err)}
	}
	if _, err := os.Stat(filepath.Join(dir, ResultFile)); err == nil {
		if err := readJSONFile(filepath.Join(dir, ResultFile), &b.Result); err != nil {
			return nil, err
		}
	}
	if err := readJSONLTornTail(filepath.Join(dir, OracleFile), func() any { return &SessionRecord{} }, func(v any) {
		b.Sessions = append(b.Sessions, *v.(*SessionRecord))
	}); err != nil {
		return nil, err
	}
	if err := readJSONLTornTail(filepath.Join(dir, DIPsFile), func() any { return &DIPRecord{} }, func(v any) {
		b.DIPs = append(b.DIPs, *v.(*DIPRecord))
	}); err != nil {
		return nil, err
	}
	return b, nil
}

// readJSONLTornTail is readJSONL tolerating exactly one unparseable
// final line (a write torn by process death). A missing file yields an
// empty prefix, not an error — the run may have died before its first
// flush.
func readJSONLTornTail(path string, mk func() any, add func(v any)) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("flight: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	var torn *BundleError
	for sc.Scan() {
		lineNo++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		if torn != nil {
			// The bad line was not the last one: genuine corruption.
			return torn
		}
		v := mk()
		if err := json.Unmarshal(text, v); err != nil {
			torn = &BundleError{Path: path, Line: lineNo, Err: fmt.Errorf("%w: %v", ErrCorrupt, err)}
			continue
		}
		add(v)
	}
	if err := sc.Err(); err != nil {
		return &BundleError{Path: path, Line: lineNo, Err: fmt.Errorf("%w: %v", ErrCorrupt, err)}
	}
	return nil
}

// TryServe answers one session from the transcript if a matching record
// is queued, without latching an error on miss — the fallback probe
// behind ResumeChip. The session hook fires with the recorded cycle
// count on a hit, exactly like SessionN.
func (r *Replay) TryServe(testKey, scanIn []bool, pis [][]bool) (scanOut []bool, pos [][]bool, ok bool) {
	piStrs := make([]string, len(pis))
	for i, pi := range pis {
		piStrs[i] = BitString(pi)
	}
	k := sessionKey(BitString(testKey), BitString(scanIn), piStrs)

	r.mu.Lock()
	q := r.queues[k]
	if len(q) == 0 {
		r.mu.Unlock()
		return nil, nil, false
	}
	rec := q[0]
	r.queues[k] = q[1:]
	r.pend--
	hook := r.hook
	r.mu.Unlock()

	scanOut, err := ParseBits(rec.ScanOut)
	if err != nil {
		return nil, nil, false
	}
	pos = make([][]bool, len(rec.POs))
	for i, s := range rec.POs {
		po, perr := ParseBits(s)
		if perr != nil {
			return nil, nil, false
		}
		pos[i] = po
	}
	if hook != nil {
		hook(rec.Cycles)
	}
	return scanOut, pos, true
}

// ResumeChip serves scan sessions from a recorded transcript prefix
// while it lasts and from a live chip afterwards. Because scan sessions
// are pure functions of (testKey, scanIn, PIs) — the dynamic key
// schedule restarts at every session load — a deterministic sequential
// attack re-asks the recorded prefix verbatim, reconstructs the same
// solver state, and then continues live with no seam: the resumed run's
// result is identical to an uninterrupted one.
type ResumeChip struct {
	replay *Replay
	live   core.Chip
	served atomic.Uint64
}

// NewResumeChip chains replay in front of live. The live chip must be
// fabricated with the same secrets the transcript was recorded against
// (same design, same seed derivation) or the post-prefix sessions will
// answer from a different key stream.
func NewResumeChip(replay *Replay, live core.Chip) *ResumeChip {
	return &ResumeChip{replay: replay, live: live}
}

// Design returns the live chip's design (identical to the replay's by
// construction).
func (c *ResumeChip) Design() *lock.Design { return c.live.Design() }

// Reset forwards to the live chip; the replay side is stateless.
func (c *ResumeChip) Reset() { c.live.Reset() }

// SetSessionHook installs h on both sides so cycle accounting is
// continuous across the transcript/live seam: replayed sessions report
// their recorded cycle counts, live sessions their simulated ones.
func (c *ResumeChip) SetSessionHook(h func(cycles uint64)) (prev func(cycles uint64)) {
	prev = c.live.SetSessionHook(h)
	c.replay.SetSessionHook(h)
	return prev
}

// Session serves a single-capture session.
func (c *ResumeChip) Session(testKey, scanIn, pi []bool) (scanOut, po []bool) {
	out, pos := c.SessionN(testKey, scanIn, [][]bool{pi})
	return out, pos[0]
}

// SessionN serves from the transcript when it can, silicon when it
// cannot.
func (c *ResumeChip) SessionN(testKey, scanIn []bool, pis [][]bool) (scanOut []bool, pos [][]bool) {
	if out, p, ok := c.replay.TryServe(testKey, scanIn, pis); ok {
		c.served.Add(1)
		return out, p
	}
	return c.live.SessionN(testKey, scanIn, pis)
}

// ServedFromTranscript returns how many sessions were answered from the
// recorded prefix — observability for resume: a resumed job reports how
// much history it replayed before touching silicon.
func (c *ResumeChip) ServedFromTranscript() uint64 { return c.served.Load() }
