package flight_test

// Resume tests: a job killed mid-attack leaves a partial bundle (manifest
// plus a transcript prefix, usually no result.json). OpenPartial must load
// that prefix leniently, and a ResumeChip chained in front of a freshly
// fabricated live chip must reconstruct the interrupted attack exactly —
// same candidate set, same iteration count — because the sequential engine
// re-asks the recorded prefix verbatim.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dynunlock"
	"dynunlock/internal/core"
	"dynunlock/internal/flight"
)

func TestOpenPartialCompleteBundleMatchesOpen(t *testing.T) {
	cfg := roundTripConfigs()["s5378"]
	dir, _ := recordExperiment(t, cfg)
	full, err := flight.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	part, err := flight.OpenPartial(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(part.Sessions) != len(full.Sessions) || len(part.DIPs) != len(full.DIPs) {
		t.Fatalf("partial load saw %d sessions / %d dips, strict load %d / %d",
			len(part.Sessions), len(part.DIPs), len(full.Sessions), len(full.DIPs))
	}
	if len(part.Result.Trials) != len(full.Result.Trials) {
		t.Fatalf("partial load saw %d result trials, strict load %d",
			len(part.Result.Trials), len(full.Result.Trials))
	}
}

func TestOpenPartialToleratesCrashArtifacts(t *testing.T) {
	cfg := roundTripConfigs()["s5378"]
	dir, _ := recordExperiment(t, cfg)
	full, err := flight.Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	// A crashed run has no result.json and a torn final transcript line.
	if err := os.Remove(filepath.Join(dir, flight.ResultFile)); err != nil {
		t.Fatal(err)
	}
	dips := filepath.Join(dir, flight.DIPsFile)
	f, err := os.OpenFile(dips, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"trial":0,"iter`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	part, err := flight.OpenPartial(dir)
	if err != nil {
		t.Fatalf("OpenPartial on crash artifacts: %v", err)
	}
	if len(part.Result.Trials) != 0 {
		t.Fatalf("expected empty result, got %d trials", len(part.Result.Trials))
	}
	if len(part.DIPs) != len(full.DIPs) {
		t.Fatalf("torn tail changed DIP count: %d != %d", len(part.DIPs), len(full.DIPs))
	}
	if _, err := flight.Open(dir); err == nil {
		t.Fatal("strict Open accepted a bundle with no result.json")
	}
}

func TestOpenPartialRejectsMidFileCorruption(t *testing.T) {
	cfg := roundTripConfigs()["s5378"]
	dir, _ := recordExperiment(t, cfg)
	oracle := filepath.Join(dir, flight.OracleFile)
	data, err := os.ReadFile(oracle)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("need >=3 oracle lines, have %d", len(lines))
	}
	lines[1] = `{"broken`
	if err := os.WriteFile(oracle, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = flight.OpenPartial(dir)
	if !errors.Is(err, flight.ErrCorrupt) {
		t.Fatalf("mid-file corruption: got %v, want ErrCorrupt", err)
	}
}

func TestOpenPartialMissingTranscriptsIsEmptyPrefix(t *testing.T) {
	cfg := roundTripConfigs()["s5378"]
	dir, _ := recordExperiment(t, cfg)
	for _, name := range []string{flight.OracleFile, flight.DIPsFile, flight.ResultFile} {
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			t.Fatal(err)
		}
	}
	part, err := flight.OpenPartial(dir)
	if err != nil {
		t.Fatalf("OpenPartial with missing transcripts: %v", err)
	}
	if len(part.Sessions) != 0 || len(part.DIPs) != 0 {
		t.Fatalf("expected empty prefix, got %d sessions / %d dips", len(part.Sessions), len(part.DIPs))
	}
}

// truncateJSONL keeps the first n lines of a JSONL file.
func truncateJSONL(t *testing.T, path string, n int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if n > len(lines) {
		n = len(lines)
	}
	if err := os.WriteFile(path, []byte(strings.Join(lines[:n], "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestResumeChipReconstructsInterruptedRun is the crash-resume round trip:
// record a complete run, keep only a prefix of its transcripts (as a killed
// durable recorder would), then re-run the same config with a ResumeChip
// chained in front of a freshly fabricated live chip. The resumed result
// must be identical to the uninterrupted one, and part of the work must
// actually have been served from the transcript.
func TestResumeChipReconstructsInterruptedRun(t *testing.T) {
	cfg := dynunlock.ExperimentConfig{Benchmark: "s5378", KeyBits: 16,
		Policy: dynunlock.PerCycle, Scale: 16, Trials: 1, SeedBase: 7}
	dir, uninterrupted := recordExperiment(t, cfg)
	full, err := flight.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Sessions) < 4 {
		t.Fatalf("need >=4 sessions to truncate meaningfully, have %d", len(full.Sessions))
	}

	// Simulate the crash: keep half the oracle transcript, a third of the
	// DIP log, drop the result.
	truncateJSONL(t, filepath.Join(dir, flight.OracleFile), len(full.Sessions)/2)
	truncateJSONL(t, filepath.Join(dir, flight.DIPsFile), len(full.DIPs)/3+1)
	if err := os.Remove(filepath.Join(dir, flight.ResultFile)); err != nil {
		t.Fatal(err)
	}

	part, err := flight.OpenPartial(dir)
	if err != nil {
		t.Fatal(err)
	}
	design, err := part.Design()
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]*flight.SessionRecord, 0, len(part.Sessions))
	for i := range part.Sessions {
		if part.Sessions[i].Trial == 0 {
			recs = append(recs, &part.Sessions[i])
		}
	}
	replay := flight.NewReplay(design, recs)

	var resumeChip *flight.ResumeChip
	resumed := cfg
	resumed.ChipWrapper = func(trial int, chip core.Chip) core.Chip {
		if trial != 0 {
			return chip
		}
		resumeChip = flight.NewResumeChip(replay, chip)
		return resumeChip
	}
	res, err := dynunlock.RunExperimentCtx(context.Background(), resumed)
	if err != nil {
		t.Fatal(err)
	}
	if resumeChip == nil {
		t.Fatal("ChipWrapper never invoked")
	}
	if got := resumeChip.ServedFromTranscript(); got == 0 {
		t.Fatal("resume served nothing from the transcript prefix")
	}
	want, got := uninterrupted.Trials[0], res.Trials[0]
	if got.Candidates != want.Candidates || got.Iterations != want.Iterations ||
		got.Queries != want.Queries || got.Success != want.Success {
		t.Fatalf("resumed run diverged: candidates/iters/queries/success %d/%d/%d/%v != %d/%d/%d/%v",
			got.Candidates, got.Iterations, got.Queries, got.Success,
			want.Candidates, want.Iterations, want.Queries, want.Success)
	}
}

// TestDurableRecorderLeavesLoadablePrefix pins the crash-safety contract a
// resume depends on: with SetDurable the transcripts are flushed record by
// record, so a process killed before Close still leaves the full prefix on
// disk. We model the kill by loading the bundle before Close.
func TestDurableRecorderLeavesLoadablePrefix(t *testing.T) {
	cfg := dynunlock.ExperimentConfig{Benchmark: "s5378", KeyBits: 16,
		Policy: dynunlock.PerCycle, Scale: 16, Trials: 1, SeedBase: 7}
	dir := t.TempDir()
	rec, err := flight.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec.Tool = "test"
	rec.SetDurable(true)
	cfg.Recorder = rec
	res, err := dynunlock.RunExperimentCtx(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}

	// "Kill" happens here: nothing has been Closed or flushed explicitly.
	part, err := flight.OpenPartial(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Sessions cover DIP queries plus verification/enumeration probes, so
	// the durable prefix must hold at least the query count.
	if len(part.Sessions) < res.Trials[0].Queries || len(part.Sessions) == 0 {
		t.Fatalf("durable prefix has %d sessions, live run made %d queries",
			len(part.Sessions), res.Trials[0].Queries)
	}
	if len(part.DIPs) != res.Trials[0].Iterations {
		t.Fatalf("durable prefix has %d dips, live run had %d iterations",
			len(part.DIPs), res.Trials[0].Iterations)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
}
