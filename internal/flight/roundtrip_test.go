package flight_test

// Round-trip tests: record an experiment through the public facade, then
// replay it offline from the bundle alone. The replay path constructs no
// oracle.Chip — flight does not even import internal/oracle — so a passing
// round trip proves the bundle is self-contained: the attack re-derives the
// identical result with the chip simulator fully absent.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dynunlock"
	"dynunlock/internal/flight"
)

// recordExperiment runs cfg with a recorder attached and returns the bundle
// directory and the live experiment result.
func recordExperiment(t *testing.T, cfg dynunlock.ExperimentConfig) (string, *dynunlock.ExperimentResult) {
	t.Helper()
	dir := t.TempDir()
	rec, err := flight.Create(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec.Tool = "test"
	cfg.Recorder = rec
	res, err := dynunlock.RunExperimentCtx(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteMetrics(nil); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, res
}

func roundTripConfigs() map[string]dynunlock.ExperimentConfig {
	return map[string]dynunlock.ExperimentConfig{
		"s5378": {Benchmark: "s5378", KeyBits: 16, Policy: dynunlock.PerCycle,
			Scale: 16, Trials: 2, SeedBase: 7},
		"b17": {Benchmark: "b17", KeyBits: 12, Policy: dynunlock.PerCycle,
			Scale: 16, Trials: 1, SeedBase: 3},
	}
}

func TestRecordReplayBitIdentical(t *testing.T) {
	for name, cfg := range roundTripConfigs() {
		t.Run(name, func(t *testing.T) {
			dir, live := recordExperiment(t, cfg)
			b, err := flight.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(b.Result.Trials) != len(live.Trials) {
				t.Fatalf("bundle has %d trials, live run had %d", len(b.Result.Trials), len(live.Trials))
			}
			// The recorded trials must mirror the live result exactly.
			for i, lt := range live.Trials {
				rt := b.Result.Trials[i]
				if rt.Iterations != lt.Iterations || rt.Queries != lt.Queries ||
					len(rt.SeedCandidates) != lt.Candidates || rt.Success != lt.Success {
					t.Fatalf("trial %d: recorded %+v != live %+v", i, rt, lt)
				}
			}

			replayed, err := b.Replay(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if diffs := flight.Compare(&b.Result, replayed); len(diffs) != 0 {
				t.Fatalf("replay diverged:\n  %s", strings.Join(diffs, "\n  "))
			}
			// Spot-check the bit-identical fields the issue pins down.
			for i := range replayed.Trials {
				a, c := b.Result.Trials[i], replayed.Trials[i]
				if a.Iterations != c.Iterations || a.Queries != c.Queries {
					t.Errorf("trial %d: iterations/queries %d/%d != %d/%d",
						i, a.Iterations, a.Queries, c.Iterations, c.Queries)
				}
				if len(a.SeedCandidates) != len(c.SeedCandidates) {
					t.Fatalf("trial %d: candidate count %d != %d",
						i, len(a.SeedCandidates), len(c.SeedCandidates))
				}
				for j := range a.SeedCandidates {
					if a.SeedCandidates[j] != c.SeedCandidates[j] {
						t.Fatalf("trial %d candidate %d: %s != %s",
							i, j, a.SeedCandidates[j], c.SeedCandidates[j])
					}
				}
			}
		})
	}
}

func TestRecordingDoesNotPerturbAttack(t *testing.T) {
	cfg := roundTripConfigs()["s5378"]
	_, recorded := recordExperiment(t, cfg)
	plain, err := dynunlock.RunExperimentCtx(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(recorded.Trials) != len(plain.Trials) {
		t.Fatalf("trial counts differ: %d vs %d", len(recorded.Trials), len(plain.Trials))
	}
	for i := range plain.Trials {
		r, p := recorded.Trials[i], plain.Trials[i]
		if r.Candidates != p.Candidates || r.Iterations != p.Iterations ||
			r.Queries != p.Queries || r.Rank != p.Rank ||
			r.Exact != p.Exact || r.Converged != p.Converged || r.Success != p.Success {
			t.Errorf("trial %d: recorded run %+v != plain run %+v", i, r, p)
		}
	}
}

func TestReplayWithMissingSessionsFailsTyped(t *testing.T) {
	cfg := roundTripConfigs()["s5378"]
	dir, _ := recordExperiment(t, cfg)
	// Drop the last transcript line (a whole, valid line — the file still
	// parses; the replay runs out of answers instead).
	path := filepath.Join(dir, flight.OracleFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("fixture too small: %d transcript lines", len(lines))
	}
	trimmed := strings.Join(lines[:len(lines)-1], "\n") + "\n"
	if err := os.WriteFile(path, []byte(trimmed), 0o644); err != nil {
		t.Fatal(err)
	}

	b, err := flight.Open(dir)
	if err != nil {
		t.Fatalf("a shortened-but-valid transcript must still open: %v", err)
	}
	_, err = b.Replay(context.Background())
	if err == nil {
		t.Fatal("replay succeeded with sessions missing from the transcript")
	}
	if !errors.Is(err, flight.ErrOracleMiss) {
		t.Fatalf("replay error = %v, want errors.Is(_, ErrOracleMiss)", err)
	}
}

func TestReplayChipServesNoInventedSessions(t *testing.T) {
	cfg := roundTripConfigs()["b17"]
	dir, _ := recordExperiment(t, cfg)
	b, err := flight.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	chip, err := b.ReplayChip(0)
	if err != nil {
		t.Fatal(err)
	}
	d := chip.Design()
	// A query the recording never issued: correctly-sized zeros come back,
	// no panic, and Err latches.
	bogusKey := make([]bool, d.Config.KeyBits)
	bogusIn := make([]bool, d.Chain.Length)
	bogusIn[0] = true
	pi := make([]bool, d.View.NumPI)
	out, po := chip.Session(bogusKey, bogusIn, pi)
	if len(out) != d.Chain.Length || len(po) != d.View.NumPO {
		t.Errorf("miss response sized %d/%d, want %d/%d",
			len(out), len(po), d.Chain.Length, d.View.NumPO)
	}
	if chip.Err() == nil {
		t.Fatal("transcript miss did not latch an error")
	}
	if !errors.Is(chip.Err(), flight.ErrOracleMiss) {
		t.Fatalf("miss error = %v, want errors.Is(_, ErrOracleMiss)", chip.Err())
	}
}
