package gf2

import "fmt"

// Basis is an incremental row-echelon basis over GF(2) with an attached
// right-hand side: a streaming counterpart to Reduce for consumers that
// receive constraint rows one at a time (one oracle DIP at a time) and
// want the running rank after each insertion without re-eliminating the
// whole system.
//
// Each stored row is kept with its pivot (lowest set bit after reduction
// against earlier rows), so Insert is O(rank · words) and the final rank
// is independent of insertion order — the row space determines the basis
// size, not the arrival sequence.
type Basis struct {
	cols   int
	rows   []Vec  // reduced rows, one per pivot
	rhs    []bool // right-hand side bit per stored row
	pivot  []int  // pivot column per stored row (ascending not required)
	incons bool   // an inserted row reduced to 0 = 1
}

// NewBasis returns an empty basis over vectors of length cols.
func NewBasis(cols int) *Basis {
	if cols < 0 {
		panic("gf2: negative basis width")
	}
	return &Basis{cols: cols}
}

// Cols returns the vector length the basis was created with.
func (b *Basis) Cols() int { return b.cols }

// Rank returns the number of linearly independent rows inserted so far.
func (b *Basis) Rank() int { return len(b.rows) }

// Inconsistent reports whether some inserted row reduced to the
// impossible constraint 0 = 1 (the affine system has no solution).
func (b *Basis) Inconsistent() bool { return b.incons }

// Insert adds the constraint row·x = rhs to the system. It returns
// (true, _) when the row was linearly independent of the basis (rank
// grew by one) and (_, true) when the row was consistent with the
// system. A dependent row with a conflicting right-hand side marks the
// whole basis inconsistent. row is not modified.
func (b *Basis) Insert(row Vec, rhs bool) (grew, consistent bool) {
	if row.Len() != b.cols {
		panic(fmt.Sprintf("gf2: row length %d, want %d", row.Len(), b.cols))
	}
	r := row.Clone()
	for i, br := range b.rows {
		p := b.pivot[i]
		if r.Get(p) {
			r.Xor(br)
			if b.rhs[i] {
				rhs = !rhs
			}
		}
	}
	p := r.FirstSet()
	if p < 0 {
		if rhs {
			b.incons = true
			return false, false
		}
		return false, true
	}
	b.rows = append(b.rows, r)
	b.rhs = append(b.rhs, rhs)
	b.pivot = append(b.pivot, p)
	return true, true
}

// Solve returns one solution of the accumulated system (free variables
// zero), or ok=false when the basis is inconsistent. The basis rows are
// only forward-reduced, so Solve back-substitutes through a full
// Gauss-Jordan pass on a copy.
func (b *Basis) Solve() (x Vec, ok bool) {
	if b.incons {
		return Vec{}, false
	}
	m := NewMat(0, b.cols)
	rhs := NewVec(len(b.rows))
	for i, r := range b.rows {
		m.AppendRow(r)
		rhs.Set(i, b.rhs[i])
	}
	return Solve(m, rhs)
}
