package gf2

import "fmt"

// Basis is an incremental row-echelon basis over GF(2) with an attached
// right-hand side: a streaming counterpart to Reduce for consumers that
// receive constraint rows one at a time (one oracle DIP at a time) and
// want the running rank after each insertion without re-eliminating the
// whole system.
//
// Each stored row is kept with its pivot (lowest set bit after reduction
// against earlier rows), so Insert is O(rank · words) and the final rank
// is independent of insertion order — the row space determines the basis
// size, not the arrival sequence.
type Basis struct {
	cols   int
	rows   []Vec  // reduced rows, one per pivot
	rhs    []bool // right-hand side bit per stored row
	pivot  []int  // pivot column per stored row (ascending not required)
	incons bool   // an inserted row reduced to 0 = 1
}

// NewBasis returns an empty basis over vectors of length cols.
func NewBasis(cols int) *Basis {
	if cols < 0 {
		panic("gf2: negative basis width")
	}
	return &Basis{cols: cols}
}

// Cols returns the vector length the basis was created with.
func (b *Basis) Cols() int { return b.cols }

// Rank returns the number of linearly independent rows inserted so far.
func (b *Basis) Rank() int { return len(b.rows) }

// Inconsistent reports whether some inserted row reduced to the
// impossible constraint 0 = 1 (the affine system has no solution).
func (b *Basis) Inconsistent() bool { return b.incons }

// Insert adds the constraint row·x = rhs to the system. It returns
// (true, _) when the row was linearly independent of the basis (rank
// grew by one) and (_, true) when the row was consistent with the
// system. A dependent row with a conflicting right-hand side marks the
// whole basis inconsistent. row is not modified.
func (b *Basis) Insert(row Vec, rhs bool) (grew, consistent bool) {
	if row.Len() != b.cols {
		panic(fmt.Sprintf("gf2: row length %d, want %d", row.Len(), b.cols))
	}
	r := row.Clone()
	for i, br := range b.rows {
		p := b.pivot[i]
		if r.Get(p) {
			r.Xor(br)
			if b.rhs[i] {
				rhs = !rhs
			}
		}
	}
	p := r.FirstSet()
	if p < 0 {
		if rhs {
			b.incons = true
			return false, false
		}
		return false, true
	}
	b.rows = append(b.rows, r)
	b.rhs = append(b.rhs, rhs)
	b.pivot = append(b.pivot, p)
	return true, true
}

// Solve returns one solution of the accumulated system (free variables
// zero), or ok=false when the basis is inconsistent. When Rank() equals
// Cols() the solution is unique — the analytic short-circuit of the attack
// relies on exactly that case. Each stored row was reduced only against
// rows inserted before it, so it can still contain pivots of later rows;
// back-substituting from the last row to the first visits every pivot
// after the pivots it depends on, with no matrix copy.
func (b *Basis) Solve() (x Vec, ok bool) {
	if b.incons {
		return Vec{}, false
	}
	x = NewVec(b.cols)
	for i := len(b.rows) - 1; i >= 0; i-- {
		v := b.rhs[i]
		if b.rows[i].Dot(x) {
			v = !v
		}
		// rows[i].Dot(x) included pivot[i]·x[pivot[i]], but x[pivot[i]] is
		// still zero here, so v is rhs ⊕ Σ over the other columns.
		x.Set(b.pivot[i], v)
	}
	return x, true
}

// FreeCols returns the columns not covered by any pivot, in ascending
// order: the witness of under-determination. It is empty exactly when
// Rank() == Cols(), i.e. when Solve's solution is unique.
func (b *Basis) FreeCols() []int {
	isPivot := make([]bool, b.cols)
	for _, p := range b.pivot {
		isPivot[p] = true
	}
	var free []int
	for c := 0; c < b.cols; c++ {
		if !isPivot[c] {
			free = append(free, c)
		}
	}
	return free
}

// Project reduces row against the basis without storing anything:
// determined is true when row lies in the basis row space, and rhs is
// then the value row·x takes for every solution x of the system. The
// linear-mode attack uses it to decide which mask (key) bits the
// certified seed constraints already pin down.
func (b *Basis) Project(row Vec) (rhs, determined bool) {
	if row.Len() != b.cols {
		panic(fmt.Sprintf("gf2: row length %d, want %d", row.Len(), b.cols))
	}
	r := row.Clone()
	for i, br := range b.rows {
		if r.Get(b.pivot[i]) {
			r.Xor(br)
			if b.rhs[i] {
				rhs = !rhs
			}
		}
	}
	if r.FirstSet() >= 0 {
		return false, false
	}
	return rhs, true
}

// Row returns stored row i (0 ≤ i < Rank()) in insertion order. The
// returned vector aliases basis storage and must not be modified. Rows are
// append-only, so an index observed once stays valid — consumers that
// stream new constraints out of the basis (the insight→solver feedback
// loop) rely on this.
func (b *Basis) Row(i int) Vec { return b.rows[i] }

// RHS returns the right-hand side of stored row i.
func (b *Basis) RHS(i int) bool { return b.rhs[i] }
