package gf2

import (
	"math/rand"
	"testing"
)

// The incremental basis must agree with batch Gaussian elimination on
// rank, consistency, and solutions, for random systems, at every prefix.
func TestBasisMatchesBatchReduce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		cols := 1 + rng.Intn(12)
		nrows := rng.Intn(2 * cols)
		// Half the trials use a consistent system (rhs derived from a
		// planted solution), half use random rhs that may conflict.
		var planted Vec
		consistentOnly := trial%2 == 0
		if consistentOnly {
			planted = NewVec(cols)
			for i := 0; i < cols; i++ {
				planted.Set(i, rng.Intn(2) == 1)
			}
		}

		b := NewBasis(cols)
		m := NewMat(0, cols)
		rhs := NewVec(nrows)
		for r := 0; r < nrows; r++ {
			row := NewVec(cols)
			for i := 0; i < cols; i++ {
				row.Set(i, rng.Intn(2) == 1)
			}
			var bit bool
			if consistentOnly {
				bit = row.Dot(planted)
			} else {
				bit = rng.Intn(2) == 1
			}
			prevRank := b.Rank()
			b.Insert(row, bit)
			m.AppendRow(row)
			rhs.Set(r, bit)

			wantRank := Rank(m)
			if b.Rank() != wantRank {
				t.Fatalf("trial %d row %d: incremental rank %d, batch rank %d", trial, r, b.Rank(), wantRank)
			}
			if b.Rank() < prevRank {
				t.Fatalf("trial %d row %d: rank decreased", trial, r)
			}
			_, wantOK := Solve(m, rhsPrefix(rhs, r+1))
			if b.Inconsistent() == wantOK {
				t.Fatalf("trial %d row %d: incremental inconsistent=%v, batch consistent=%v", trial, r, b.Inconsistent(), wantOK)
			}
		}

		if x, ok := b.Solve(); ok {
			got := m.MulVec(x)
			if !got.Equal(rhsPrefix(rhs, nrows)) {
				t.Fatalf("trial %d: Basis.Solve returned a non-solution", trial)
			}
		} else if !b.Inconsistent() {
			t.Fatalf("trial %d: Solve failed on a consistent basis", trial)
		}
	}
}

// Rank after inserting a fixed row multiset must not depend on order.
func TestBasisRankOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cols := 10
	rows := make([]Vec, 15)
	for i := range rows {
		rows[i] = NewVec(cols)
		for j := 0; j < cols; j++ {
			rows[i].Set(j, rng.Intn(2) == 1)
		}
	}
	ref := -1
	for perm := 0; perm < 20; perm++ {
		order := rng.Perm(len(rows))
		b := NewBasis(cols)
		for _, i := range order {
			b.Insert(rows[i], false)
		}
		if ref < 0 {
			ref = b.Rank()
		} else if b.Rank() != ref {
			t.Fatalf("perm %d: rank %d, want %d", perm, b.Rank(), ref)
		}
	}
}

func TestBasisInconsistent(t *testing.T) {
	b := NewBasis(3)
	row := FromBools([]bool{true, true, false})
	if grew, ok := b.Insert(row, true); !grew || !ok {
		t.Fatalf("first insert: grew=%v ok=%v", grew, ok)
	}
	// Same row, opposite rhs: dependent and conflicting.
	if grew, ok := b.Insert(row, false); grew || ok {
		t.Fatalf("conflicting insert: grew=%v ok=%v, want false,false", grew, ok)
	}
	if !b.Inconsistent() {
		t.Fatal("basis should be inconsistent")
	}
	if _, ok := b.Solve(); ok {
		t.Fatal("Solve on inconsistent basis should fail")
	}
}

func rhsPrefix(rhs Vec, n int) Vec {
	out := NewVec(n)
	for i := 0; i < n; i++ {
		out.Set(i, rhs.Get(i))
	}
	return out
}
