package gf2

import (
	"math/rand"
	"testing"
)

// The incremental basis must agree with batch Gaussian elimination on
// rank, consistency, and solutions, for random systems, at every prefix.
func TestBasisMatchesBatchReduce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		cols := 1 + rng.Intn(12)
		nrows := rng.Intn(2 * cols)
		// Half the trials use a consistent system (rhs derived from a
		// planted solution), half use random rhs that may conflict.
		var planted Vec
		consistentOnly := trial%2 == 0
		if consistentOnly {
			planted = NewVec(cols)
			for i := 0; i < cols; i++ {
				planted.Set(i, rng.Intn(2) == 1)
			}
		}

		b := NewBasis(cols)
		m := NewMat(0, cols)
		rhs := NewVec(nrows)
		for r := 0; r < nrows; r++ {
			row := NewVec(cols)
			for i := 0; i < cols; i++ {
				row.Set(i, rng.Intn(2) == 1)
			}
			var bit bool
			if consistentOnly {
				bit = row.Dot(planted)
			} else {
				bit = rng.Intn(2) == 1
			}
			prevRank := b.Rank()
			b.Insert(row, bit)
			m.AppendRow(row)
			rhs.Set(r, bit)

			wantRank := Rank(m)
			if b.Rank() != wantRank {
				t.Fatalf("trial %d row %d: incremental rank %d, batch rank %d", trial, r, b.Rank(), wantRank)
			}
			if b.Rank() < prevRank {
				t.Fatalf("trial %d row %d: rank decreased", trial, r)
			}
			_, wantOK := Solve(m, rhsPrefix(rhs, r+1))
			if b.Inconsistent() == wantOK {
				t.Fatalf("trial %d row %d: incremental inconsistent=%v, batch consistent=%v", trial, r, b.Inconsistent(), wantOK)
			}
		}

		if x, ok := b.Solve(); ok {
			got := m.MulVec(x)
			if !got.Equal(rhsPrefix(rhs, nrows)) {
				t.Fatalf("trial %d: Basis.Solve returned a non-solution", trial)
			}
		} else if !b.Inconsistent() {
			t.Fatalf("trial %d: Solve failed on a consistent basis", trial)
		}
	}
}

// Rank after inserting a fixed row multiset must not depend on order.
func TestBasisRankOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cols := 10
	rows := make([]Vec, 15)
	for i := range rows {
		rows[i] = NewVec(cols)
		for j := 0; j < cols; j++ {
			rows[i].Set(j, rng.Intn(2) == 1)
		}
	}
	ref := -1
	for perm := 0; perm < 20; perm++ {
		order := rng.Perm(len(rows))
		b := NewBasis(cols)
		for _, i := range order {
			b.Insert(rows[i], false)
		}
		if ref < 0 {
			ref = b.Rank()
		} else if b.Rank() != ref {
			t.Fatalf("perm %d: rank %d, want %d", perm, b.Rank(), ref)
		}
	}
}

func TestBasisInconsistent(t *testing.T) {
	b := NewBasis(3)
	row := FromBools([]bool{true, true, false})
	if grew, ok := b.Insert(row, true); !grew || !ok {
		t.Fatalf("first insert: grew=%v ok=%v", grew, ok)
	}
	// Same row, opposite rhs: dependent and conflicting.
	if grew, ok := b.Insert(row, false); grew || ok {
		t.Fatalf("conflicting insert: grew=%v ok=%v, want false,false", grew, ok)
	}
	if !b.Inconsistent() {
		t.Fatal("basis should be inconsistent")
	}
	if _, ok := b.Solve(); ok {
		t.Fatal("Solve on inconsistent basis should fail")
	}
}

// At full rank the system has exactly one solution, so back-substitution
// must recover the planted vector and report no free columns.
func TestBasisSolveFullRankUnique(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		cols := 1 + rng.Intn(40)
		planted := NewVec(cols)
		for i := 0; i < cols; i++ {
			planted.Set(i, rng.Intn(2) == 1)
		}
		b := NewBasis(cols)
		for b.Rank() < cols {
			row := NewVec(cols)
			for i := 0; i < cols; i++ {
				row.Set(i, rng.Intn(2) == 1)
			}
			b.Insert(row, row.Dot(planted))
		}
		if free := b.FreeCols(); len(free) != 0 {
			t.Fatalf("trial %d: full-rank basis has free cols %v", trial, free)
		}
		x, ok := b.Solve()
		if !ok {
			t.Fatalf("trial %d: Solve failed at full rank", trial)
		}
		if !x.Equal(planted) {
			t.Fatalf("trial %d: Solve = %v, want %v", trial, x, planted)
		}
	}
}

// Below full rank, FreeCols witnesses the under-determination: it lists
// exactly the non-pivot columns, and Solve leaves those columns zero.
func TestBasisFreeCols(t *testing.T) {
	b := NewBasis(4)
	b.Insert(FromBools([]bool{true, true, false, false}), true)  // x0⊕x1 = 1
	b.Insert(FromBools([]bool{false, false, true, false}), true) // x2 = 1
	free := b.FreeCols()
	if len(free) != 2 || free[0] != 1 || free[1] != 3 {
		t.Fatalf("FreeCols = %v, want [1 3]", free)
	}
	x, ok := b.Solve()
	if !ok {
		t.Fatal("Solve failed")
	}
	for _, c := range free {
		if x.Get(c) {
			t.Fatalf("free column %d nonzero in Solve result", c)
		}
	}
	if !x.Get(0) || !x.Get(2) {
		t.Fatalf("Solve = %v, want x0=1 x2=1", x)
	}
}

// Row/RHS expose stored rows by insertion index; indices must stay stable
// as the basis grows (the insight→solver streaming contract).
func TestBasisRowAccessors(t *testing.T) {
	b := NewBasis(3)
	r0 := FromBools([]bool{true, false, true})
	b.Insert(r0, true)
	if !b.Row(0).Equal(r0) || !b.RHS(0) {
		t.Fatal("Row(0)/RHS(0) mismatch after first insert")
	}
	b.Insert(FromBools([]bool{true, true, true}), false)
	if !b.Row(0).Equal(r0) || !b.RHS(0) {
		t.Fatal("Row(0) changed after later insert")
	}
	if b.Rank() != 2 {
		t.Fatalf("rank %d, want 2", b.Rank())
	}
	// Row 1 is stored reduced against row 0: x0 cancelled.
	if b.Row(1).Get(0) {
		t.Fatal("Row(1) not reduced against the earlier pivot")
	}
}

func rhsPrefix(rhs Vec, n int) Vec {
	out := NewVec(n)
	for i := 0; i < n; i++ {
		out.Set(i, rhs.Get(i))
	}
	return out
}
