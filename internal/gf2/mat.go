package gf2

import (
	"fmt"
	"strings"
)

// Mat is a dense GF(2) matrix stored as a slice of row vectors.
type Mat struct {
	rows, cols int
	data       []Vec
}

// NewMat returns an all-zero rows×cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic("gf2: negative matrix dimension")
	}
	m := &Mat{rows: rows, cols: cols, data: make([]Vec, rows)}
	for i := range m.data {
		m.data[i] = NewVec(cols)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, true)
	}
	return m
}

// FromRows builds a matrix from row vectors, which must share a length.
// The rows are cloned; the matrix does not alias its arguments.
func FromRows(rows []Vec) *Mat {
	if len(rows) == 0 {
		return NewMat(0, 0)
	}
	cols := rows[0].Len()
	m := &Mat{rows: len(rows), cols: cols, data: make([]Vec, len(rows))}
	for i, r := range rows {
		if r.Len() != cols {
			panic(fmt.Sprintf("gf2: ragged rows: row %d has %d cols, want %d", i, r.Len(), cols))
		}
		m.data[i] = r.Clone()
	}
	return m
}

// Rows returns the number of rows.
func (m *Mat) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Mat) Cols() int { return m.cols }

// Get returns element (i, j).
func (m *Mat) Get(i, j int) bool { return m.data[i].Get(j) }

// Set assigns element (i, j).
func (m *Mat) Set(i, j int, b bool) { m.data[i].Set(j, b) }

// Row returns row i. The returned vector aliases the matrix storage.
func (m *Mat) Row(i int) Vec { return m.data[i] }

// SetRow replaces row i with a clone of v.
func (m *Mat) SetRow(i int, v Vec) {
	if v.Len() != m.cols {
		panic(fmt.Sprintf("gf2: row length %d, want %d", v.Len(), m.cols))
	}
	m.data[i] = v.Clone()
}

// AppendRow grows the matrix by one row (cloned).
func (m *Mat) AppendRow(v Vec) {
	if m.rows == 0 && m.cols == 0 && len(m.data) == 0 {
		m.cols = v.Len()
	}
	if v.Len() != m.cols {
		panic(fmt.Sprintf("gf2: row length %d, want %d", v.Len(), m.cols))
	}
	m.data = append(m.data, v.Clone())
	m.rows++
}

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	c := &Mat{rows: m.rows, cols: m.cols, data: make([]Vec, m.rows)}
	for i, r := range m.data {
		c.data[i] = r.Clone()
	}
	return c
}

// MulVec returns m·x over GF(2). x must have length Cols().
func (m *Mat) MulVec(x Vec) Vec {
	if x.Len() != m.cols {
		panic(fmt.Sprintf("gf2: vector length %d, want %d", x.Len(), m.cols))
	}
	out := NewVec(m.rows)
	for i, r := range m.data {
		if r.Dot(x) {
			out.Set(i, true)
		}
	}
	return out
}

// Mul returns m·b over GF(2).
func (m *Mat) Mul(b *Mat) *Mat {
	if m.cols != b.rows {
		panic(fmt.Sprintf("gf2: dimension mismatch %dx%d · %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewMat(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		orow := out.data[i]
		for _, j := range m.data[i].Ones() {
			orow.Xor(b.data[j])
		}
	}
	return out
}

// Transpose returns mᵀ.
func (m *Mat) Transpose() *Mat {
	t := NewMat(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for _, j := range m.data[i].Ones() {
			t.Set(j, i, true)
		}
	}
	return t
}

// VStack returns the matrix [m; b] (rows of m followed by rows of b).
func VStack(m, b *Mat) *Mat {
	if m.cols != b.cols && m.rows != 0 && b.rows != 0 {
		panic(fmt.Sprintf("gf2: vstack column mismatch %d vs %d", m.cols, b.cols))
	}
	cols := m.cols
	if m.rows == 0 {
		cols = b.cols
	}
	out := &Mat{rows: 0, cols: cols}
	for _, r := range m.data {
		out.AppendRow(r)
	}
	for _, r := range b.data {
		out.AppendRow(r)
	}
	return out
}

// String renders the matrix, one row per line.
func (m *Mat) String() string {
	var sb strings.Builder
	for i, r := range m.data {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(r.String())
	}
	return sb.String()
}
