package gf2

import "fmt"

// Echelon holds the result of Gaussian elimination on a matrix (optionally
// augmented with a right-hand side).
type Echelon struct {
	// R is the reduced row-echelon form of the input matrix.
	R *Mat
	// RHS is the correspondingly reduced right-hand side (nil if none given).
	RHS Vec
	// Pivots maps echelon row -> pivot column, ascending.
	Pivots []int
	// FreeCols lists the non-pivot columns, ascending.
	FreeCols []int
}

// Rank returns the rank of the reduced matrix.
func (e *Echelon) Rank() int { return len(e.Pivots) }

// Reduce computes the reduced row-echelon form of m. m is not modified.
func Reduce(m *Mat) *Echelon {
	e, _ := reduce(m, Vec{}, false)
	return e
}

// reduce performs Gauss-Jordan elimination. If withRHS is true, rhs is
// carried along and the second return reports whether the system m·x = rhs
// is consistent.
func reduce(m *Mat, rhs Vec, withRHS bool) (*Echelon, bool) {
	r := m.Clone()
	var b Vec
	if withRHS {
		if rhs.Len() != m.rows {
			panic(fmt.Sprintf("gf2: rhs length %d, want %d", rhs.Len(), m.rows))
		}
		b = rhs.Clone()
	}
	pivots := make([]int, 0, min(r.rows, r.cols))
	row := 0
	for col := 0; col < r.cols && row < r.rows; col++ {
		// Find a pivot in this column at or below `row`.
		sel := -1
		for i := row; i < r.rows; i++ {
			if r.data[i].Get(col) {
				sel = i
				break
			}
		}
		if sel < 0 {
			continue
		}
		r.data[row], r.data[sel] = r.data[sel], r.data[row]
		if withRHS {
			vr, vs := b.Get(row), b.Get(sel)
			b.Set(row, vs)
			b.Set(sel, vr)
		}
		// Eliminate the column everywhere else (Gauss-Jordan).
		for i := 0; i < r.rows; i++ {
			if i != row && r.data[i].Get(col) {
				r.data[i].Xor(r.data[row])
				if withRHS && b.Get(row) {
					b.Flip(i)
				}
			}
		}
		pivots = append(pivots, col)
		row++
	}
	consistent := true
	if withRHS {
		for i := row; i < r.rows; i++ {
			if b.Get(i) {
				consistent = false
				break
			}
		}
	}
	isPivot := make(map[int]bool, len(pivots))
	for _, p := range pivots {
		isPivot[p] = true
	}
	free := make([]int, 0, r.cols-len(pivots))
	for c := 0; c < r.cols; c++ {
		if !isPivot[c] {
			free = append(free, c)
		}
	}
	e := &Echelon{R: r, Pivots: pivots, FreeCols: free}
	if withRHS {
		e.RHS = b
	}
	return e, consistent
}

// Rank returns the GF(2) rank of m.
func Rank(m *Mat) int { return Reduce(m).Rank() }

// Solve finds one solution x of m·x = rhs, returning ok=false if the system
// is inconsistent. Free variables are set to zero.
func Solve(m *Mat, rhs Vec) (x Vec, ok bool) {
	e, consistent := reduce(m, rhs, true)
	if !consistent {
		return Vec{}, false
	}
	x = NewVec(m.cols)
	for i, p := range e.Pivots {
		if e.RHS.Get(i) {
			x.Set(p, true)
		}
	}
	return x, true
}

// NullspaceBasis returns a basis for the kernel {x : m·x = 0}. The returned
// slice has length Cols(m) - Rank(m).
func NullspaceBasis(m *Mat) []Vec {
	e := Reduce(m)
	basis := make([]Vec, 0, len(e.FreeCols))
	for _, fc := range e.FreeCols {
		v := NewVec(m.cols)
		v.Set(fc, true)
		// For each pivot row, the pivot variable equals the XOR of the free
		// variables present in that row.
		for i, p := range e.Pivots {
			if e.R.data[i].Get(fc) {
				v.Set(p, true)
			}
		}
		basis = append(basis, v)
	}
	return basis
}

// SolutionCount returns the number of solutions of m·x = rhs as
// (count = 2^log2Count, ok). ok is false when the system is inconsistent,
// in which case log2Count is -1.
func SolutionCount(m *Mat, rhs Vec) (log2Count int, ok bool) {
	e, consistent := reduce(m, rhs, true)
	if !consistent {
		return -1, false
	}
	return m.cols - e.Rank(), true
}

// EnumerateSolutions returns all solutions of m·x = rhs up to limit entries
// (limit <= 0 means unlimited — beware exponential blowup). The boolean
// reports consistency.
func EnumerateSolutions(m *Mat, rhs Vec, limit int) ([]Vec, bool) {
	x0, ok := Solve(m, rhs)
	if !ok {
		return nil, false
	}
	basis := NullspaceBasis(m)
	sols := []Vec{x0}
	for _, bv := range basis {
		cur := len(sols)
		for i := 0; i < cur; i++ {
			if limit > 0 && len(sols) >= limit {
				return sols, true
			}
			sols = append(sols, sols[i].XorInto(bv))
		}
	}
	return sols, true
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
