package gf2

import (
	"math/rand"
	"testing"
)

func randMat(rng *rand.Rand, rows, cols int) *Mat {
	m := NewMat(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Intn(2) == 1 {
				m.Set(i, j, true)
			}
		}
	}
	return m
}

func TestIdentityRank(t *testing.T) {
	for _, n := range []int{1, 2, 17, 64, 65} {
		if r := Rank(Identity(n)); r != n {
			t.Errorf("rank(I_%d) = %d", n, r)
		}
	}
}

func TestRankZeroMatrix(t *testing.T) {
	if r := Rank(NewMat(5, 7)); r != 0 {
		t.Errorf("rank(0) = %d", r)
	}
}

func TestMulVecAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		rows, cols := 1+rng.Intn(30), 1+rng.Intn(30)
		m := randMat(rng, rows, cols)
		x := randVec(rng, cols)
		y := m.MulVec(x)
		for i := 0; i < rows; i++ {
			want := false
			for j := 0; j < cols; j++ {
				if m.Get(i, j) && x.Get(j) {
					want = !want
				}
			}
			if y.Get(i) != want {
				t.Fatalf("MulVec row %d mismatch", i)
			}
		}
	}
}

func TestMatMulAssociativeWithVec(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		a := randMat(rng, 1+rng.Intn(15), 1+rng.Intn(15))
		b := randMat(rng, a.Cols(), 1+rng.Intn(15))
		x := randVec(rng, b.Cols())
		lhs := a.Mul(b).MulVec(x)
		rhs := a.MulVec(b.MulVec(x))
		if !lhs.Equal(rhs) {
			t.Fatal("(AB)x != A(Bx)")
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randMat(rng, 13, 29)
	tt := m.Transpose().Transpose()
	for i := 0; i < m.Rows(); i++ {
		if !m.Row(i).Equal(tt.Row(i)) {
			t.Fatal("transpose not involutive")
		}
	}
}

// Solve on a consistent system must return a genuine solution.
func TestSolveConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		rows, cols := 1+rng.Intn(40), 1+rng.Intn(40)
		m := randMat(rng, rows, cols)
		secret := randVec(rng, cols)
		rhs := m.MulVec(secret)
		x, ok := Solve(m, rhs)
		if !ok {
			t.Fatal("consistent system reported inconsistent")
		}
		if !m.MulVec(x).Equal(rhs) {
			t.Fatal("Solve returned a non-solution")
		}
	}
}

func TestSolveInconsistent(t *testing.T) {
	// x0 = 0 and x0 = 1 simultaneously.
	m := NewMat(2, 1)
	m.Set(0, 0, true)
	m.Set(1, 0, true)
	rhs := NewVec(2)
	rhs.Set(1, true)
	if _, ok := Solve(m, rhs); ok {
		t.Fatal("inconsistent system reported solvable")
	}
	if lg, ok := SolutionCount(m, rhs); ok || lg != -1 {
		t.Fatalf("SolutionCount = %d,%v", lg, ok)
	}
}

// Every nullspace basis vector must satisfy m·v = 0, be nonzero, and the
// basis must have dimension cols - rank.
func TestNullspaceBasis(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 100; trial++ {
		rows, cols := 1+rng.Intn(30), 1+rng.Intn(30)
		m := randMat(rng, rows, cols)
		basis := NullspaceBasis(m)
		if len(basis) != cols-Rank(m) {
			t.Fatalf("basis dim %d, want %d", len(basis), cols-Rank(m))
		}
		for _, v := range basis {
			if v.IsZero() {
				t.Fatal("zero vector in basis")
			}
			if !m.MulVec(v).IsZero() {
				t.Fatal("basis vector not in kernel")
			}
		}
		// Linear independence: the basis matrix must have full rank.
		if len(basis) > 0 && Rank(FromRows(basis)) != len(basis) {
			t.Fatal("basis not independent")
		}
	}
}

func TestSolutionCountMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		rows, cols := 1+rng.Intn(8), 1+rng.Intn(8)
		m := randMat(rng, rows, cols)
		secret := randVec(rng, cols)
		rhs := m.MulVec(secret)
		lg, ok := SolutionCount(m, rhs)
		if !ok {
			t.Fatal("consistent system inconsistent")
		}
		sols, ok := EnumerateSolutions(m, rhs, 0)
		if !ok {
			t.Fatal("enumeration failed")
		}
		if len(sols) != 1<<lg {
			t.Fatalf("got %d solutions, want 2^%d", len(sols), lg)
		}
		seen := map[string]bool{}
		foundSecret := false
		for _, s := range sols {
			if !m.MulVec(s).Equal(rhs) {
				t.Fatal("enumerated non-solution")
			}
			key := s.String()
			if seen[key] {
				t.Fatal("duplicate solution")
			}
			seen[key] = true
			if s.Equal(secret) {
				foundSecret = true
			}
		}
		if !foundSecret {
			t.Fatal("secret not among enumerated solutions")
		}
	}
}

func TestEnumerateSolutionsLimit(t *testing.T) {
	m := NewMat(1, 6) // rank 1 -> 2^5 solutions
	m.Set(0, 0, true)
	sols, ok := EnumerateSolutions(m, NewVec(1), 7)
	if !ok || len(sols) != 7 {
		t.Fatalf("limit: got %d,%v", len(sols), ok)
	}
}

func TestVStack(t *testing.T) {
	a := Identity(2)
	b := NewMat(1, 2)
	b.Set(0, 0, true)
	b.Set(0, 1, true)
	s := VStack(a, b)
	if s.Rows() != 3 || s.Cols() != 2 {
		t.Fatalf("vstack dims %dx%d", s.Rows(), s.Cols())
	}
	if Rank(s) != 2 {
		t.Fatalf("rank = %d, want 2", Rank(s))
	}
}

func TestReducePivotsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := randMat(rng, 20, 20)
	e := Reduce(m)
	for i := 1; i < len(e.Pivots); i++ {
		if e.Pivots[i] <= e.Pivots[i-1] {
			t.Fatal("pivots not strictly increasing")
		}
	}
	if len(e.Pivots)+len(e.FreeCols) != m.Cols() {
		t.Fatal("pivot + free columns != cols")
	}
}

func BenchmarkRank256(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	m := randMat(rng, 256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Rank(m)
	}
}
