// Package gf2 implements linear algebra over GF(2): packed bit vectors,
// dense boolean matrices, Gaussian elimination, rank, nullspace bases, and
// linear-system solving.
//
// DynUnlock relies on the fact that a dynamically obfuscated scan session is
// affine over GF(2) in the LFSR seed. This package provides the machinery to
// express every dynamic key bit, every scan-in mask, and every scan-out mask
// as a GF(2) linear combination of seed bits, and to predict the number of
// indistinguishable seed candidates as 2^(k - rank).
package gf2

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vec is a packed bit vector over GF(2). The zero value is an empty vector.
// Bit i of the vector is stored in word i/64 at position i%64.
type Vec struct {
	n     int
	words []uint64
}

// NewVec returns an all-zero vector of length n.
func NewVec(n int) Vec {
	if n < 0 {
		panic("gf2: negative vector length")
	}
	return Vec{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromBools builds a vector from a bool slice.
func FromBools(bs []bool) Vec {
	v := NewVec(len(bs))
	for i, b := range bs {
		if b {
			v.Set(i, true)
		}
	}
	return v
}

// Unit returns the length-n vector with only bit i set.
func Unit(n, i int) Vec {
	v := NewVec(n)
	v.Set(i, true)
	return v
}

// Len returns the number of bits in v.
func (v Vec) Len() int { return v.n }

// Get returns bit i.
func (v Vec) Get(i int) bool {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("gf2: index %d out of range [0,%d)", i, v.n))
	}
	return v.words[i/wordBits]>>(uint(i)%wordBits)&1 == 1
}

// Set sets bit i to b.
func (v Vec) Set(i int, b bool) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("gf2: index %d out of range [0,%d)", i, v.n))
	}
	mask := uint64(1) << (uint(i) % wordBits)
	if b {
		v.words[i/wordBits] |= mask
	} else {
		v.words[i/wordBits] &^= mask
	}
}

// Flip toggles bit i.
func (v Vec) Flip(i int) { v.Set(i, !v.Get(i)) }

// Clone returns an independent copy of v.
func (v Vec) Clone() Vec {
	w := Vec{n: v.n, words: make([]uint64, len(v.words))}
	copy(w.words, v.words)
	return w
}

// Xor sets v ^= w in place. Both vectors must have the same length.
func (v Vec) Xor(w Vec) {
	if v.n != w.n {
		panic(fmt.Sprintf("gf2: length mismatch %d vs %d", v.n, w.n))
	}
	for i := range v.words {
		v.words[i] ^= w.words[i]
	}
}

// XorInto returns a fresh vector equal to v ^ w.
func (v Vec) XorInto(w Vec) Vec {
	out := v.Clone()
	out.Xor(w)
	return out
}

// And sets v &= w in place.
func (v Vec) And(w Vec) {
	if v.n != w.n {
		panic(fmt.Sprintf("gf2: length mismatch %d vs %d", v.n, w.n))
	}
	for i := range v.words {
		v.words[i] &= w.words[i]
	}
}

// IsZero reports whether every bit of v is zero.
func (v Vec) IsZero() bool {
	for _, w := range v.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether v and w have identical length and contents.
func (v Vec) Equal(w Vec) bool {
	if v.n != w.n {
		return false
	}
	for i := range v.words {
		if v.words[i] != w.words[i] {
			return false
		}
	}
	return true
}

// PopCount returns the number of set bits.
func (v Vec) PopCount() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Dot returns the GF(2) inner product of v and w (parity of v AND w).
func (v Vec) Dot(w Vec) bool {
	if v.n != w.n {
		panic(fmt.Sprintf("gf2: length mismatch %d vs %d", v.n, w.n))
	}
	var acc uint64
	for i := range v.words {
		acc ^= v.words[i] & w.words[i]
	}
	return bits.OnesCount64(acc)%2 == 1
}

// FirstSet returns the index of the lowest set bit, or -1 if v is zero.
func (v Vec) FirstSet() int {
	for i, w := range v.words {
		if w != 0 {
			idx := i*wordBits + bits.TrailingZeros64(w)
			if idx < v.n {
				return idx
			}
			return -1
		}
	}
	return -1
}

// Ones returns the indices of all set bits in ascending order.
func (v Vec) Ones() []int {
	out := make([]int, 0, v.PopCount())
	for i, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			idx := i*wordBits + b
			if idx < v.n {
				out = append(out, idx)
			}
			w &= w - 1
		}
	}
	return out
}

// Bools expands v into a bool slice.
func (v Vec) Bools() []bool {
	out := make([]bool, v.n)
	for i := range out {
		out[i] = v.Get(i)
	}
	return out
}

// String renders the vector as a bit string, LSB (index 0) first.
func (v Vec) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}
