package gf2

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(rng *rand.Rand, n int) Vec {
	v := NewVec(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 1 {
			v.Set(i, true)
		}
	}
	return v
}

func TestVecSetGet(t *testing.T) {
	v := NewVec(130)
	idx := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, i := range idx {
		v.Set(i, true)
	}
	for i := 0; i < 130; i++ {
		want := false
		for _, j := range idx {
			if i == j {
				want = true
			}
		}
		if v.Get(i) != want {
			t.Errorf("bit %d = %v, want %v", i, v.Get(i), want)
		}
	}
	if got := v.PopCount(); got != len(idx) {
		t.Errorf("PopCount = %d, want %d", got, len(idx))
	}
	v.Set(64, false)
	if v.Get(64) {
		t.Error("clearing bit 64 failed")
	}
}

func TestVecOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range Get")
		}
	}()
	NewVec(10).Get(10)
}

func TestVecXorSelfInverse(t *testing.T) {
	f := func(a, b []bool) bool {
		if len(a) > len(b) {
			a = a[:len(b)]
		} else {
			b = b[:len(a)]
		}
		va, vb := FromBools(a), FromBools(b)
		w := va.XorInto(vb)
		w.Xor(vb)
		return w.Equal(va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVecDotLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(200)
		a, b, c := randVec(rng, n), randVec(rng, n), randVec(rng, n)
		// (a^b)·c == a·c ^ b·c
		lhs := a.XorInto(b).Dot(c)
		rhs := a.Dot(c) != b.Dot(c)
		if lhs != rhs {
			t.Fatalf("n=%d: dot not linear", n)
		}
	}
}

func TestVecOnesAndFirstSet(t *testing.T) {
	v := NewVec(200)
	for _, i := range []int{3, 64, 199} {
		v.Set(i, true)
	}
	ones := v.Ones()
	if len(ones) != 3 || ones[0] != 3 || ones[1] != 64 || ones[2] != 199 {
		t.Errorf("Ones = %v", ones)
	}
	if v.FirstSet() != 3 {
		t.Errorf("FirstSet = %d, want 3", v.FirstSet())
	}
	if NewVec(77).FirstSet() != -1 {
		t.Error("FirstSet of zero vector should be -1")
	}
}

func TestVecBoolsRoundTrip(t *testing.T) {
	f := func(bs []bool) bool {
		v := FromBools(bs)
		got := v.Bools()
		if len(got) != len(bs) {
			return false
		}
		for i := range bs {
			if got[i] != bs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVecString(t *testing.T) {
	v := NewVec(5)
	v.Set(1, true)
	v.Set(4, true)
	if got := v.String(); got != "01001" {
		t.Errorf("String = %q, want 01001", got)
	}
}

func TestVecCloneIndependent(t *testing.T) {
	v := NewVec(70)
	v.Set(69, true)
	w := v.Clone()
	w.Set(0, true)
	if v.Get(0) {
		t.Error("Clone aliases original")
	}
	if !w.Get(69) {
		t.Error("Clone lost bit")
	}
}

func TestVecAnd(t *testing.T) {
	a := FromBools([]bool{true, true, false, false})
	b := FromBools([]bool{true, false, true, false})
	a.And(b)
	if a.String() != "1000" {
		t.Errorf("And = %s, want 1000", a.String())
	}
}
