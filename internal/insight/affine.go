package insight

import (
	"fmt"

	"dynunlock/internal/gf2"
	"dynunlock/internal/netlist"
)

// form is the affine abstract value of one signal during symbolic
// simulation: the function lin·s ⊕ c of the seed s, or ⊤ ("top") when
// the signal's seed dependence is not certifiably affine. A zero-length
// lin means "no seed dependence" (plain constant), so constants never
// allocate. Forms are immutable once stored: operations build fresh
// vectors, so aliasing mask-matrix rows is safe.
type form struct {
	top bool
	c   bool
	lin gf2.Vec
}

func (f form) isConst() bool { return !f.top && f.lin.Len() == 0 }

func (f form) equal(g form) bool {
	if f.top || g.top {
		return false
	}
	if f.c != g.c {
		return false
	}
	switch {
	case f.lin.Len() == 0 && g.lin.Len() == 0:
		return true
	case f.lin.Len() == 0:
		return g.lin.IsZero()
	case g.lin.Len() == 0:
		return f.lin.IsZero()
	default:
		return f.lin.Equal(g.lin)
	}
}

var formTop = form{top: true}

// xor2 returns f ⊕ g, exact whenever both operands are affine.
func xor2(f, g form) form {
	if f.top || g.top {
		return formTop
	}
	out := form{c: f.c != g.c}
	switch {
	case f.lin.Len() == 0:
		out.lin = g.lin
	case g.lin.Len() == 0:
		out.lin = f.lin
	default:
		v := f.lin.XorInto(g.lin)
		if !v.IsZero() {
			out.lin = v
		}
	}
	return out
}

func not(f form) form {
	if f.top {
		return formTop
	}
	f.c = !f.c
	return f
}

// andAll folds AND over fanin forms with constant absorption: a
// constant-0 operand forces 0 even past ⊤, constant-1 operands vanish,
// a single surviving non-constant operand passes through, and identical
// survivors collapse (AND(f,f) = f). Two distinct non-constant
// survivors are genuinely nonlinear → ⊤.
func andAll(fs []form) form {
	var surv []form
	for _, f := range fs {
		if f.isConst() {
			if !f.c {
				return form{}
			}
			continue
		}
		surv = append(surv, f)
	}
	return collapse(surv, true)
}

// orAll is the dual: constant-1 absorbs, constant-0 vanishes.
func orAll(fs []form) form {
	var surv []form
	for _, f := range fs {
		if f.isConst() {
			if f.c {
				return form{c: true}
			}
			continue
		}
		surv = append(surv, f)
	}
	return collapse(surv, false)
}

// collapse resolves the non-constant survivors of an AND (identity
// true) or OR (identity false).
func collapse(surv []form, identity bool) form {
	switch len(surv) {
	case 0:
		return form{c: identity}
	case 1:
		return surv[0]
	}
	for _, f := range surv[1:] {
		if !f.equal(surv[0]) {
			return formTop
		}
	}
	return surv[0]
}

// simulate runs the affine symbolic simulation of the core circuit for
// one DIP, filling t.forms for every signal. Caller holds t.mu.
func (t *Tracker) simulate(dip []bool) {
	v := t.view
	nl := v.N
	// Inputs: primary inputs are DIP constants; present-state bit j sees
	// a_j ⊕ A.Row(j)·s through the scan-in mask.
	for i, sid := range v.Inputs {
		if i < v.NumPI {
			t.forms[sid] = form{c: dip[i]}
			continue
		}
		j := i - v.NumPI
		f := form{c: dip[i]}
		if row := t.a.Row(j); !row.IsZero() {
			f.lin = row
		}
		t.forms[sid] = f
	}
	for id := 0; id < nl.NumSignals(); id++ {
		sid := netlist.SignalID(id)
		switch nl.Type(sid) {
		case netlist.Const0:
			t.forms[sid] = form{}
		case netlist.Const1:
			t.forms[sid] = form{c: true}
		}
	}
	fanins := make([]form, 0, 8)
	for _, sid := range v.Order {
		g := nl.Gate(sid)
		fanins = fanins[:0]
		for _, f := range g.Fanin {
			fanins = append(fanins, t.forms[f])
		}
		t.forms[sid] = evalAffine(g.Type, fanins)
	}
}

// evalAffine applies one gate to affine operands.
func evalAffine(gt netlist.GateType, fs []form) form {
	switch gt {
	case netlist.Input, netlist.Const0, netlist.Const1:
		// Sources are assigned before the topological walk; reaching one
		// here means the walk order included it redundantly.
		panic(fmt.Sprintf("insight: source gate %v in topological order", gt))
	case netlist.Buf:
		return fs[0]
	case netlist.Not:
		return not(fs[0])
	case netlist.And:
		return andAll(fs)
	case netlist.Nand:
		return not(andAll(fs))
	case netlist.Or:
		return orAll(fs)
	case netlist.Nor:
		return not(orAll(fs))
	case netlist.Xor, netlist.Xnor:
		acc := form{}
		for _, f := range fs {
			acc = xor2(acc, f)
		}
		if gt == netlist.Xnor {
			acc = not(acc)
		}
		return acc
	case netlist.Mux:
		sel, d0, d1 := fs[0], fs[1], fs[2]
		if sel.isConst() {
			if sel.c {
				return d1
			}
			return d0
		}
		if d0.equal(d1) {
			return d0
		}
		return formTop
	default:
		panic(fmt.Sprintf("insight: cannot evaluate gate type %v", gt))
	}
}
