// Package insight answers the operator's mid-run question — how close is
// the attack to the seed? — by turning every oracle DIP into certified
// GF(2) knowledge about the LFSR seed.
//
// DynUnlock's obfuscation is affine over GF(2) in the seed s (paper
// §III): a scan session computes (po, b') = C(pi, a ⊕ A·s) and observes
// b' ⊕ B·s. The tracker symbolically simulates the core circuit C on
// each DIP with every signal carrying either an affine form ℓ(s) ⊕ c
// over the seed bits or the "nonlinear" marker ⊤: XOR/XNOR/NOT/BUF
// preserve affine forms exactly, AND/OR partially evaluate against
// constant operands (AND(f,0)=0, AND(f,1)=f, …), and anything genuinely
// nonlinear collapses to ⊤. Every non-⊤ output bit then yields one
// sound linear constraint row over s, which feeds an incremental
// row-echelon basis (gf2.Basis). The running rank r bounds the
// surviving seed space at exactly 2^(k−r) *for the constraints
// certified so far*; on affine cores (XOR-dominated circuits, and the
// lock layer itself is always XOR) the tracker captures all information
// a DIP reveals, and the bound matches brute-force enumeration bit for
// bit (pinned by tests against core.Verifier).
//
// Rank is capped by rank([A;B]) — every certified row lies in the row
// space of the session masks — so that cap is the published target and
// the base of the DIP-rate ETA. Progress is published three ways:
// metrics gauges (dynunlock_insight_*), "insight" trace events, and the
// extended -progress line (internal/metrics.Progress picks the gauges
// up). The tracker is safe for concurrent Observe calls (portfolio
// engines) and its final rank is insertion-order independent.
package insight

import (
	"fmt"
	"sync"
	"time"

	"dynunlock/internal/core"
	"dynunlock/internal/gf2"
	"dynunlock/internal/lock"
	"dynunlock/internal/metrics"
	"dynunlock/internal/netlist"
	"dynunlock/internal/sat"
	"dynunlock/internal/satattack"
	"dynunlock/internal/trace"
)

// Options configures a Tracker's publication sinks. The zero value is a
// silent tracker (state queries only), which the offline report
// generator uses to replay recorded DIP transcripts.
type Options struct {
	// Metrics, when non-nil, receives the insight gauges.
	Metrics *metrics.Handle
	// Tracer, when non-nil, receives one "insight" event per DIP.
	Tracer *trace.Tracer
	// Now overrides the clock used for the ETA estimate (tests).
	Now func() time.Time
}

// Point is one sample of the seed-space trajectory: the certified rank
// and surviving-seed exponent after a DIP was absorbed.
type Point struct {
	// DIP is the 1-based count of observations absorbed so far.
	DIP int
	// Rank is the certified constraint rank after this DIP.
	Rank int
	// SeedsLog2 is k − Rank: log2 of the seed candidates the certified
	// constraints still admit.
	SeedsLog2 int
}

// Snapshot is the tracker's current state.
type Snapshot struct {
	DIPs       int
	Rank       int
	TargetRank int
	KeyBits    int
	// SeedsLog2 = KeyBits − Rank.
	SeedsLog2 int
	// Rows counts certified constraint rows inserted (including
	// dependent ones); Skipped counts response bits that simulated to ⊤
	// and carried no certifiable linear information.
	Rows, Skipped int
	// Inconsistent is true when a certified constraint contradicted an
	// earlier one — impossible against a faithful oracle, so it flags a
	// model/oracle mismatch.
	Inconsistent bool
	// ETA estimates the time until Rank reaches TargetRank from the
	// average rank gain per unit time so far; negative when no rank has
	// been learned yet (unknown).
	ETA time.Duration
}

// Tracker accumulates certified seed constraints across the DIPs of one
// attack trial. All methods are safe for concurrent use.
type Tracker struct {
	d      *lock.Design
	view   *netlist.CombView
	a, b   *gf2.Mat
	k      int
	target int

	h  *metrics.Handle
	tr *trace.Tracer

	mu      sync.Mutex
	basis   *gf2.Basis
	dips    int
	rows    int
	skipped int
	points  []Point
	start   time.Time
	now     func() time.Time
	started bool
	forms   []form // per-signal scratch, reused across Observe calls
}

// New builds a tracker for one trial against the given locked design.
func New(d *lock.Design, opts Options) (*Tracker, error) {
	A, B, err := core.MaskMatrices(d, 0)
	if err != nil {
		return nil, fmt.Errorf("insight: %w", err)
	}
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	k := d.Config.KeyBits
	t := &Tracker{
		d:      d,
		view:   d.View,
		a:      A,
		b:      B,
		k:      k,
		target: gf2.Rank(gf2.VStack(A, B)),
		h:      opts.Metrics,
		tr:     opts.Tracer,
		basis:  gf2.NewBasis(k),
		now:    now,
		forms:  make([]form, d.Netlist.NumSignals()),
	}
	if t.h != nil {
		t.h.Gauge(metrics.MetricInsightRankTarget).Set(float64(t.target))
		t.h.Gauge(metrics.MetricInsightRank).Set(0)
		t.h.Gauge(metrics.MetricInsightSeedsLog2).Set(float64(k))
	}
	return t, nil
}

// TargetRank returns rank([A;B]): the ceiling on the certifiable rank
// and the analytic constraint count the attack converges to.
func (t *Tracker) TargetRank() int { return t.target }

// Observe absorbs one DIP: dip is the model input vector (primary
// inputs followed by the scan-in vector, as delivered by the OnDIP
// hook) and resp the oracle response (primary outputs followed by the
// observed scan-out). Vectors of the wrong length are ignored.
func (t *Tracker) Observe(dip, resp []bool) {
	numPI, numPO := t.view.NumPI, t.view.NumPO
	n := t.d.Chain.Length
	if len(dip) != numPI+n || len(resp) != numPO+n {
		return
	}
	t.mu.Lock()
	if !t.started {
		t.started = true
		t.start = t.now()
	}
	prevRank := t.basis.Rank()
	t.simulate(dip)
	for j := 0; j < numPO; j++ {
		t.insert(t.forms[t.view.Outputs[j]], gf2.Vec{}, resp[j])
	}
	for j := 0; j < n; j++ {
		t.insert(t.forms[t.view.Outputs[numPO+j]], t.b.Row(j), resp[numPO+j])
	}
	t.dips++
	rank := t.basis.Rank()
	learned := rank - prevRank
	pt := Point{DIP: t.dips, Rank: rank, SeedsLog2: t.k - rank}
	t.points = append(t.points, pt)
	snap := t.snapshotLocked()
	t.mu.Unlock()
	t.publish(snap, learned)
}

// insert certifies one response bit: a non-⊤ form f plus an optional
// extra mask row (the scan-out B row) gives the constraint
// (lin(f) ⊕ mask)·s = observed ⊕ const(f).
func (t *Tracker) insert(f form, mask gf2.Vec, observed bool) {
	if f.top {
		t.skipped++
		return
	}
	row := f.lin
	if row.Len() == 0 {
		if mask.Len() == 0 {
			// Fully constant bit: no seed information (and against a
			// faithful oracle, always consistent).
			if f.c != observed {
				t.basis.Insert(gf2.NewVec(t.k), true)
				t.rows++
			}
			return
		}
		row = mask
	} else if mask.Len() != 0 {
		row = row.XorInto(mask)
	}
	t.rows++
	t.basis.Insert(row, observed != f.c)
}

func (t *Tracker) snapshotLocked() Snapshot {
	rank := t.basis.Rank()
	s := Snapshot{
		DIPs:         t.dips,
		Rank:         rank,
		TargetRank:   t.target,
		KeyBits:      t.k,
		SeedsLog2:    t.k - rank,
		Rows:         t.rows,
		Skipped:      t.skipped,
		Inconsistent: t.basis.Inconsistent(),
		ETA:          -1,
	}
	if rank >= t.target {
		s.ETA = 0
	} else if rank > 0 && t.started {
		elapsed := t.now().Sub(t.start)
		if elapsed > 0 {
			s.ETA = time.Duration(float64(elapsed) * float64(t.target-rank) / float64(rank))
		}
	}
	return s
}

// Snapshot returns the tracker's current state.
func (t *Tracker) Snapshot() Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.snapshotLocked()
}

// History returns a copy of the per-DIP trajectory in observation order.
func (t *Tracker) History() []Point {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Point(nil), t.points...)
}

// publish pushes a snapshot to the metrics gauges and the trace sink.
func (t *Tracker) publish(s Snapshot, learned int) {
	if t.h != nil {
		t.h.Gauge(metrics.MetricInsightRank).Set(float64(s.Rank))
		t.h.Gauge(metrics.MetricInsightRankTarget).Set(float64(s.TargetRank))
		t.h.Gauge(metrics.MetricInsightSeedsLog2).Set(float64(s.SeedsLog2))
		t.h.Counter(metrics.MetricInsightBits).Add(uint64(learned))
		if s.ETA >= 0 {
			t.h.Gauge(metrics.MetricInsightETA).Set(s.ETA.Seconds())
		}
	}
	t.tr.Emit(trace.Event{Type: "insight", Fields: map[string]any{
		"dips":           s.DIPs,
		"rank":           s.Rank,
		"rank_target":    s.TargetRank,
		"bits_learned":   s.Rank,
		"seeds_log2":     s.SeedsLog2,
		"rows_certified": s.Rows,
		"bits_skipped":   s.Skipped,
		"eta_ms":         s.ETA.Milliseconds(),
		"inconsistent":   s.Inconsistent,
	}})
}

// DIPObserver adapts the tracker to the satattack OnDIP hook. Chain it
// with other observers via satattack.ChainObservers.
func (t *Tracker) DIPObserver() satattack.DIPObserver {
	return func(_ int, dip, resp []bool, _ sat.Stats, _ time.Duration) {
		t.Observe(dip, resp)
	}
}

// ConstraintsSince implements satattack.InsightSource over the seed bits:
// it streams the certified basis rows by insertion index. Rows are
// append-only, so a cursor observed once stays valid. In seed-keyed
// (direct-mode) attacks the seed bits are the key bits and the tracker is
// the insight source itself; linear-mode attacks wrap it (core.Options).
func (t *Tracker) ConstraintsSince(from int) ([]satattack.KeyConstraint, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	rank := t.basis.Rank()
	var cs []satattack.KeyConstraint
	for i := from; i < rank; i++ {
		cs = append(cs, satattack.KeyConstraint{
			Idx: t.basis.Row(i).Ones(),
			RHS: t.basis.RHS(i),
		})
	}
	return cs, rank
}

// SolveKey implements satattack.InsightSource: once the certified system
// reaches full seed rank the unique seed follows by back-substitution.
func (t *Tracker) SolveKey() ([]bool, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.basis.Inconsistent() || t.basis.Rank() < t.k {
		return nil, false
	}
	x, ok := t.basis.Solve()
	if !ok {
		return nil, false
	}
	return x.Bools(), true
}
