package insight

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"context"

	"dynunlock/internal/core"
	"dynunlock/internal/gf2"
	"dynunlock/internal/lock"
	"dynunlock/internal/metrics"
	"dynunlock/internal/netlist"
	"dynunlock/internal/oracle"
	"dynunlock/internal/sat"
	"dynunlock/internal/scan"
	"dynunlock/internal/trace"
)

// xorBench is an XOR-only sequential core: every gate preserves affine
// seed dependence, so the tracker certifies *all* information each DIP
// reveals and its 2^(k−rank) bound must match brute force exactly.
const xorBench = `
INPUT(p0)
INPUT(p1)
OUTPUT(o0)
OUTPUT(o1)
f0 = DFF(n0)
f1 = DFF(n1)
f2 = DFF(n2)
f3 = DFF(n3)
f4 = DFF(n4)
f5 = DFF(n5)
n0 = XOR(f1, p0)
n1 = XNOR(f2, f0)
n2 = XOR(f3, p1)
n3 = XOR(f4, f1)
n4 = NOT(f5)
n5 = XOR(f0, f2)
o0 = XOR(f0, f3)
o1 = XNOR(f2, f5)
`

// nonlinBench mixes in AND/OR/MUX so some response bits go nonlinear in
// the seed: the tracker must stay sound (never overcount rank) while
// still certifying the affine slice.
const nonlinBench = `
INPUT(p0)
OUTPUT(o0)
f0 = DFF(n0)
f1 = DFF(n1)
f2 = DFF(n2)
f3 = DFF(n3)
n0 = AND(f1, f2)
n1 = XOR(f2, p0)
n2 = OR(f3, f0)
n3 = XOR(f0, f1)
o0 = MUX(f0, f1, f3)
`

func lockedDesign(t *testing.T, benchSrc string, keyBits int) *lock.Design {
	t.Helper()
	n, err := netlist.ParseBench(strings.NewReader(benchSrc), "insight-test")
	if err != nil {
		t.Fatal(err)
	}
	d, err := lock.Lock(n, lock.Config{KeyBits: keyBits, Policy: scan.PerCycle})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func fabricate(t *testing.T, d *lock.Design, rngSeed int64) *oracle.Chip {
	t.Helper()
	rng := rand.New(rand.NewSource(rngSeed))
	k := d.Config.KeyBits
	seed := gf2.NewVec(k)
	for i := 0; i < k; i++ {
		seed.Set(i, rng.Intn(2) == 1)
	}
	if seed.IsZero() {
		seed.Set(0, true)
	}
	authKey := make([]bool, k)
	for i := range authKey {
		authKey[i] = rng.Intn(2) == 1
	}
	chip, err := oracle.New(d, seed, authKey)
	if err != nil {
		t.Fatal(err)
	}
	return chip
}

// bruteForceSurvivors counts the seeds in the full 2^k space whose
// closed-form session predictions match every recorded (dip, resp) pair.
func bruteForceSurvivors(t *testing.T, d *lock.Design, dips, resps [][]bool) int {
	t.Helper()
	v, err := core.NewVerifier(d)
	if err != nil {
		t.Fatal(err)
	}
	k := d.Config.KeyBits
	numPI := d.View.NumPI
	count := 0
	for s := 0; s < 1<<k; s++ {
		seed := gf2.NewVec(k)
		for b := 0; b < k; b++ {
			seed.Set(b, s>>b&1 == 1)
		}
		ok := true
		for i := range dips {
			pi, a := dips[i][:numPI], dips[i][numPI:]
			scanOut, po := v.Session(seed, a, pi)
			want := append(append([]bool(nil), po...), scanOut...)
			for j := range want {
				if want[j] != resps[i][j] {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			count++
		}
	}
	return count
}

// TestRankMatchesBruteForceXOROnly is the acceptance pin: on an affine
// core with a small (≤16-bit) LFSR, the tracker's 2^(k−rank) bound after
// every DIP equals brute-force seed enumeration exactly, and the final
// count equals the attack's enumerated candidate set.
func TestRankMatchesBruteForceXOROnly(t *testing.T) {
	for _, mode := range []core.Mode{core.ModeLinear, core.ModeDirect} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			const k = 8
			d := lockedDesign(t, xorBench, k)
			chip := fabricate(t, d, 42)
			tracker, err := New(d, Options{})
			if err != nil {
				t.Fatal(err)
			}
			// Record the transcript alongside the tracker so every prefix
			// can be brute-forced (the OnDIP slices are only valid for the
			// duration of the call — copy them).
			var dips, resps [][]bool
			res, err := core.Attack(chip, core.Options{
				Mode:           mode,
				EnumerateLimit: 1 << (k + 1),
				OnDIP: func(_ int, dip, resp []bool, _ sat.Stats, _ time.Duration) {
					dip = append([]bool(nil), dip...)
					resp = append([]bool(nil), resp...)
					dips = append(dips, dip)
					resps = append(resps, resp)
					tracker.Observe(dip, resp)
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged || !res.Exact {
				t.Fatalf("attack did not converge exactly: converged=%v exact=%v", res.Converged, res.Exact)
			}

			hist := tracker.History()
			if len(hist) != len(dips) || len(hist) != res.Iterations {
				t.Fatalf("tracker saw %d DIPs, transcript %d, attack %d", len(hist), len(dips), res.Iterations)
			}
			// Exactness at every iteration: 2^(k−rank) after DIPs 1..i
			// equals brute force over the full seed space.
			for i := range hist {
				brute := bruteForceSurvivors(t, d, dips[:i+1], resps[:i+1])
				if bound := 1 << hist[i].SeedsLog2; bound != brute {
					t.Fatalf("after DIP %d: certified 2^%d = %d, brute force %d",
						i+1, hist[i].SeedsLog2, bound, brute)
				}
			}
			snap := tracker.Snapshot()
			if snap.Inconsistent {
				t.Fatal("tracker went inconsistent on faithful oracle data")
			}
			if snap.Skipped != 0 {
				t.Fatalf("affine core must certify every bit, skipped %d", snap.Skipped)
			}
			// Final count equals the attack's enumerated candidate set.
			if want := 1 << snap.SeedsLog2; len(res.SeedCandidates) != want {
				t.Fatalf("attack enumerated %d candidates, tracker certifies 2^%d = %d",
					len(res.SeedCandidates), snap.SeedsLog2, want)
			}
			if !core.ContainsSeed(res.SeedCandidates, chip.SecretSeed()) {
				t.Fatal("candidate set lost the programmed secret")
			}
			if snap.ETA != 0 && snap.Rank == snap.TargetRank {
				t.Fatalf("ETA should be 0 at target rank, got %v", snap.ETA)
			}
		})
	}
}

// TestObserveConcurrentOrderIndependent covers portfolio-mode delivery:
// concurrent Observe calls must be race-free and the final rank must not
// depend on arrival order.
func TestObserveConcurrentOrderIndependent(t *testing.T) {
	const k = 10
	d := lockedDesign(t, xorBench, k)
	chip := fabricate(t, d, 7)
	adapter := core.NewChipOracle(chip, nil)
	numPI := d.View.NumPI
	n := d.Chain.Length
	rng := rand.New(rand.NewSource(11))
	var dips, resps [][]bool
	for i := 0; i < 24; i++ {
		dip := make([]bool, numPI+n)
		for j := range dip {
			dip[j] = rng.Intn(2) == 1
		}
		dips = append(dips, dip)
		resps = append(resps, adapter.Query(dip))
	}

	ref := -1
	for round := 0; round < 6; round++ {
		tracker, err := New(d, Options{})
		if err != nil {
			t.Fatal(err)
		}
		order := rng.Perm(len(dips))
		var wg sync.WaitGroup
		for _, i := range order {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				tracker.Observe(dips[i], resps[i])
			}()
		}
		wg.Wait()
		snap := tracker.Snapshot()
		if snap.Inconsistent {
			t.Fatal("tracker went inconsistent on faithful oracle data")
		}
		if snap.DIPs != len(dips) {
			t.Fatalf("round %d: observed %d DIPs, want %d", round, snap.DIPs, len(dips))
		}
		if ref < 0 {
			ref = snap.Rank
		} else if snap.Rank != ref {
			t.Fatalf("round %d: rank %d, want order-independent %d", round, snap.Rank, ref)
		}
	}
	if ref <= 0 {
		t.Fatal("expected a positive final rank")
	}
}

// TestSoundOnNonlinearCore: on a core with AND/OR/MUX gates the tracker
// may under-certify but must never overcount: its surviving-seed bound
// is always ≥ the brute-force survivor count, rank never exceeds the
// target, and it stays consistent.
func TestSoundOnNonlinearCore(t *testing.T) {
	const k = 8
	d := lockedDesign(t, nonlinBench, k)
	chip := fabricate(t, d, 13)
	adapter := core.NewChipOracle(chip, nil)
	tracker, err := New(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	numPI := d.View.NumPI
	n := d.Chain.Length
	rng := rand.New(rand.NewSource(3))
	var dips, resps [][]bool
	for i := 0; i < 12; i++ {
		dip := make([]bool, numPI+n)
		for j := range dip {
			dip[j] = rng.Intn(2) == 1
		}
		resp := adapter.Query(dip)
		dips = append(dips, dip)
		resps = append(resps, resp)
		tracker.Observe(dip, resp)

		snap := tracker.Snapshot()
		if snap.Inconsistent {
			t.Fatal("tracker went inconsistent on faithful oracle data")
		}
		if snap.Rank > snap.TargetRank {
			t.Fatalf("rank %d exceeds target %d", snap.Rank, snap.TargetRank)
		}
		brute := bruteForceSurvivors(t, d, dips, resps)
		if bound := 1 << snap.SeedsLog2; bound < brute {
			t.Fatalf("after %d DIPs: certified bound 2^%d = %d < brute-force %d (unsound)",
				len(dips), snap.SeedsLog2, bound, brute)
		}
	}
}

// TestTrackerPublishes checks the metrics gauges and trace events.
func TestTrackerPublishes(t *testing.T) {
	const k = 8
	d := lockedDesign(t, xorBench, k)
	chip := fabricate(t, d, 5)
	adapter := core.NewChipOracle(chip, nil)

	reg := metrics.NewRegistry()
	h := metrics.From(metrics.With(context.Background(), reg))
	col := trace.NewCollector()
	fake := time.Unix(1000, 0)
	tracker, err := New(d, Options{
		Metrics: h,
		Tracer:  trace.New(col),
		Now: func() time.Time {
			fake = fake.Add(time.Second)
			return fake
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	numPI := d.View.NumPI
	n := d.Chain.Length
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 8; i++ {
		dip := make([]bool, numPI+n)
		for j := range dip {
			dip[j] = rng.Intn(2) == 1
		}
		tracker.Observe(dip, adapter.Query(dip))
	}
	snap := tracker.Snapshot()
	if snap.Rank <= 0 {
		t.Fatal("no rank learned")
	}
	if v, ok := reg.Sum("dynunlock_insight_rank"); !ok || int(v) != snap.Rank {
		t.Fatalf("rank gauge = %v (ok=%v), want %d", v, ok, snap.Rank)
	}
	if v, ok := reg.Sum("dynunlock_insight_seeds_remaining_log2"); !ok || int(v) != snap.SeedsLog2 {
		t.Fatalf("seeds gauge = %v (ok=%v), want %d", v, ok, snap.SeedsLog2)
	}
	if v, ok := reg.Sum("dynunlock_insight_rank_target"); !ok || int(v) != snap.TargetRank {
		t.Fatalf("target gauge = %v (ok=%v), want %d", v, ok, snap.TargetRank)
	}
	if v, ok := reg.Sum("dynunlock_insight_bits_learned_total"); !ok || int(v) != snap.Rank {
		t.Fatalf("bits counter = %v (ok=%v), want %d", v, ok, snap.Rank)
	}
	if snap.Rank < snap.TargetRank {
		if _, ok := reg.Sum("dynunlock_insight_eta_seconds"); !ok {
			t.Fatal("eta gauge missing despite learned rank")
		}
	}
	events := col.Events()
	insightEvents := 0
	for _, ev := range events {
		if ev.Type == "insight" {
			insightEvents++
			if ev.Fields["rank"] == nil || ev.Fields["seeds_log2"] == nil {
				t.Fatalf("insight event missing fields: %v", ev.Fields)
			}
		}
	}
	if insightEvents != 8 {
		t.Fatalf("got %d insight events, want 8", insightEvents)
	}
	// History matches the last point.
	hist := tracker.History()
	if len(hist) != 8 || hist[7].Rank != snap.Rank {
		t.Fatalf("history = %v, want 8 points ending at rank %d", hist, snap.Rank)
	}
}
