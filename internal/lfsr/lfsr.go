// Package lfsr models the Fibonacci linear feedback shift registers that
// dynamic scan locking defenses (DOS, EFF-Dyn) use as their PRNG.
//
// Two views of the same register are provided and kept consistent by
// construction:
//
//   - a concrete LFSR that steps a bit state (what the chip does), and
//   - a symbolic LFSR that steps GF(2) linear expressions over the seed
//     bits (what the attacker models, paper Fig. 4 / Algorithm 1).
//
// The attacker is assumed to know the feedback polynomial — it is read off
// the reverse-engineered netlist — but not the seed stored in tamper-proof
// memory.
package lfsr

import (
	"fmt"
	"sort"

	"dynunlock/internal/gf2"
)

// Poly describes a Fibonacci LFSR feedback polynomial by its tap positions,
// 1-indexed: tap t refers to state bit t-1. On every step the feedback bit
// (XOR of all tapped bits) is shifted into position 0 while every other bit
// moves one position up.
type Poly struct {
	N    int   // register width in bits
	Taps []int // 1-indexed tap positions, each in [1, N]
}

// Validate checks structural sanity of the polynomial.
func (p Poly) Validate() error {
	if p.N <= 0 {
		return fmt.Errorf("lfsr: width %d must be positive", p.N)
	}
	if len(p.Taps) == 0 {
		return fmt.Errorf("lfsr: no taps")
	}
	seen := make(map[int]bool, len(p.Taps))
	hasLast := false
	for _, t := range p.Taps {
		if t < 1 || t > p.N {
			return fmt.Errorf("lfsr: tap %d out of range [1,%d]", t, p.N)
		}
		if seen[t] {
			return fmt.Errorf("lfsr: duplicate tap %d", t)
		}
		seen[t] = true
		if t == p.N {
			hasLast = true
		}
	}
	if !hasLast {
		// Without a tap on the last bit the register is not a permutation of
		// its state space (the transition matrix is singular) and the
		// effective width is smaller than N.
		return fmt.Errorf("lfsr: taps must include position N=%d", p.N)
	}
	return nil
}

// xapp052 lists maximal-length tap sets for selected widths (Fibonacci
// form), following the well-known Xilinx XAPP052 table. Widths not present
// fall back to deterministic synthetic taps; the DynUnlock attack does not
// require maximal length, only linearity and an invertible transition.
var xapp052 = map[int][]int{
	2: {2, 1}, 3: {3, 2}, 4: {4, 3}, 5: {5, 3}, 6: {6, 5}, 7: {7, 6},
	8: {8, 6, 5, 4}, 9: {9, 5}, 10: {10, 7}, 11: {11, 9}, 12: {12, 6, 4, 1},
	13: {13, 4, 3, 1}, 14: {14, 5, 3, 1}, 15: {15, 14}, 16: {16, 15, 13, 4},
	17: {17, 14}, 18: {18, 11}, 19: {19, 6, 2, 1}, 20: {20, 17},
	21: {21, 19}, 22: {22, 21}, 23: {23, 18}, 24: {24, 23, 22, 17},
	25: {25, 22}, 26: {26, 6, 2, 1}, 27: {27, 5, 2, 1}, 28: {28, 25},
	29: {29, 27}, 30: {30, 6, 4, 1}, 31: {31, 28}, 32: {32, 22, 2, 1},
	33: {33, 20}, 40: {40, 38, 21, 19}, 48: {48, 47, 21, 20},
	64: {64, 63, 61, 60}, 96: {96, 94, 49, 47}, 128: {128, 126, 101, 99},
}

// DefaultPoly returns a feedback polynomial for width n: a published
// maximal-length tap set when one is tabulated, otherwise a deterministic
// four-tap fallback (always including taps n and 1, so the transition matrix
// is invertible). The choice is stable across runs.
func DefaultPoly(n int) Poly {
	if taps, ok := xapp052[n]; ok {
		t := append([]int(nil), taps...)
		sort.Sort(sort.Reverse(sort.IntSlice(t)))
		return Poly{N: n, Taps: t}
	}
	if n == 1 {
		return Poly{N: 1, Taps: []int{1}}
	}
	// Deterministic fallback: n, two interior taps spread by a width-derived
	// stride, and 1. Duplicates are collapsed.
	a := 1 + (n*5)/8
	b := 1 + (n*3)/8
	set := map[int]bool{n: true, 1: true, a: true, b: true}
	taps := make([]int, 0, len(set))
	for t := range set {
		taps = append(taps, t)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(taps)))
	return Poly{N: n, Taps: taps}
}

// LFSR is a concrete Fibonacci LFSR instance.
type LFSR struct {
	poly  Poly
	state gf2.Vec
}

// New creates an LFSR with the given polynomial, seeded to all zeros.
// Note the all-zero seed is a fixed point for XOR feedback; callers locking
// a design should seed with a nonzero value (see Seed).
func New(p Poly) (*LFSR, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &LFSR{poly: p, state: gf2.NewVec(p.N)}, nil
}

// MustNew is New, panicking on an invalid polynomial. Intended for
// table-driven construction with known-good polynomials.
func MustNew(p Poly) *LFSR {
	l, err := New(p)
	if err != nil {
		panic(err)
	}
	return l
}

// Poly returns the feedback polynomial.
func (l *LFSR) Poly() Poly { return l.poly }

// N returns the register width.
func (l *LFSR) N() int { return l.poly.N }

// Seed resets the register state to the given seed. The seed length must
// equal the register width.
func (l *LFSR) Seed(seed gf2.Vec) {
	if seed.Len() != l.poly.N {
		panic(fmt.Sprintf("lfsr: seed length %d, want %d", seed.Len(), l.poly.N))
	}
	l.state = seed.Clone()
}

// State returns a copy of the current register state.
func (l *LFSR) State() gf2.Vec { return l.state.Clone() }

// Bit returns state bit i without stepping.
func (l *LFSR) Bit(i int) bool { return l.state.Get(i) }

// Step advances the register by one clock cycle.
func (l *LFSR) Step() {
	fb := false
	for _, t := range l.poly.Taps {
		if l.state.Get(t - 1) {
			fb = !fb
		}
	}
	for i := l.poly.N - 1; i > 0; i-- {
		l.state.Set(i, l.state.Get(i-1))
	}
	l.state.Set(0, fb)
}

// StepN advances the register by n cycles.
func (l *LFSR) StepN(n int) {
	for i := 0; i < n; i++ {
		l.Step()
	}
}

// TransitionMatrix returns the N×N matrix L with state(t+1) = L·state(t).
func (p Poly) TransitionMatrix() *gf2.Mat {
	m := gf2.NewMat(p.N, p.N)
	for _, t := range p.Taps {
		m.Set(0, t-1, true)
	}
	for i := 1; i < p.N; i++ {
		m.Set(i, i-1, true)
	}
	return m
}

// Symbolic steps the register symbolically: each state bit is a GF(2)
// linear combination of the seed bits. At construction, bit i equals seed
// bit i (the identity).
type Symbolic struct {
	poly Poly
	rows []gf2.Vec // rows[i] = expression of state bit i over the seed
}

// NewSymbolic returns a symbolic register initialized to the seed identity.
func NewSymbolic(p Poly) (*Symbolic, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	s := &Symbolic{poly: p, rows: make([]gf2.Vec, p.N)}
	for i := range s.rows {
		s.rows[i] = gf2.Unit(p.N, i)
	}
	return s, nil
}

// Step advances the symbolic state by one cycle.
func (s *Symbolic) Step() {
	fb := gf2.NewVec(s.poly.N)
	for _, t := range s.poly.Taps {
		fb.Xor(s.rows[t-1])
	}
	copy(s.rows[1:], s.rows[:len(s.rows)-1])
	s.rows[0] = fb
}

// Row returns the seed-expression of state bit i at the current cycle.
// The returned vector is a copy.
func (s *Symbolic) Row(i int) gf2.Vec { return s.rows[i].Clone() }

// StateMatrix returns the current state as a matrix M with
// state(t) = M·seed. Row i is the expression of bit i.
func (s *Symbolic) StateMatrix() *gf2.Mat {
	return gf2.FromRows(s.rows)
}

// UnrollStates returns the symbolic state matrices for cycles 0..cycles-1:
// out[t]·seed = register state during cycle t (out[0] = identity).
func UnrollStates(p Poly, cycles int) ([]*gf2.Mat, error) {
	s, err := NewSymbolic(p)
	if err != nil {
		return nil, err
	}
	out := make([]*gf2.Mat, cycles)
	for t := 0; t < cycles; t++ {
		out[t] = s.StateMatrix()
		s.Step()
	}
	return out, nil
}
