package lfsr

import (
	"math/rand"
	"testing"

	"dynunlock/internal/gf2"
)

func randSeed(rng *rand.Rand, n int) gf2.Vec {
	v := gf2.NewVec(n)
	any := false
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 1 {
			v.Set(i, true)
			any = true
		}
	}
	if !any {
		v.Set(rng.Intn(n), true)
	}
	return v
}

func TestPolyValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Poly
		ok   bool
	}{
		{"good", Poly{N: 4, Taps: []int{4, 3}}, true},
		{"zero width", Poly{N: 0, Taps: []int{1}}, false},
		{"no taps", Poly{N: 4}, false},
		{"tap out of range", Poly{N: 4, Taps: []int{5, 4}}, false},
		{"tap below range", Poly{N: 4, Taps: []int{0, 4}}, false},
		{"duplicate tap", Poly{N: 4, Taps: []int{4, 4}}, false},
		{"missing last tap", Poly{N: 4, Taps: []int{3, 2}}, false},
	}
	for _, tc := range cases {
		if err := tc.p.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() err = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestDefaultPolyAlwaysValid(t *testing.T) {
	for n := 1; n <= 400; n++ {
		p := DefaultPoly(n)
		if err := p.Validate(); err != nil {
			t.Fatalf("width %d: %v", n, err)
		}
		if p.N != n {
			t.Fatalf("width %d: got N=%d", n, p.N)
		}
	}
}

// Tabulated polynomials must reach the maximal period 2^n - 1 for the small
// widths where exhaustive cycling is cheap.
func TestMaximalPeriodSmallWidths(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16} {
		l := MustNew(DefaultPoly(n))
		seed := gf2.Unit(n, 0)
		l.Seed(seed)
		period := 0
		for {
			l.Step()
			period++
			if l.State().Equal(seed) {
				break
			}
			if period > 1<<uint(n) {
				t.Fatalf("width %d: period exceeds state space", n)
			}
		}
		if period != 1<<uint(n)-1 {
			t.Errorf("width %d: period %d, want %d", n, period, 1<<uint(n)-1)
		}
	}
}

func TestZeroStateFixedPoint(t *testing.T) {
	l := MustNew(DefaultPoly(8))
	l.StepN(5)
	if !l.State().IsZero() {
		t.Fatal("zero state must be a fixed point of XOR feedback")
	}
}

// The symbolic register must agree with the concrete register for every
// cycle and every seed: state(t) = M(t)·seed.
func TestSymbolicMatchesConcrete(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{3, 8, 16, 37, 128} {
		p := DefaultPoly(n)
		mats, err := UnrollStates(p, 3*n+5)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 5; trial++ {
			seed := randSeed(rng, n)
			l := MustNew(p)
			l.Seed(seed)
			for tcyc, m := range mats {
				want := l.State()
				got := m.MulVec(seed)
				if !got.Equal(want) {
					t.Fatalf("n=%d cycle=%d: symbolic %s != concrete %s", n, tcyc, got, want)
				}
				l.Step()
			}
		}
	}
}

// The transition matrix must be invertible (bijective state update) and
// must reproduce single-step evolution.
func TestTransitionMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, n := range []int{4, 16, 128, 144, 368} {
		p := DefaultPoly(n)
		L := p.TransitionMatrix()
		if gf2.Rank(L) != n {
			t.Fatalf("width %d: transition matrix singular", n)
		}
		seed := randSeed(rng, n)
		l := MustNew(p)
		l.Seed(seed)
		l.Step()
		if !L.MulVec(seed).Equal(l.State()) {
			t.Fatalf("width %d: L·s != step(s)", n)
		}
	}
}

// M(t) must equal L^t for all t, tying the two symbolic views together.
func TestUnrollMatchesMatrixPower(t *testing.T) {
	p := DefaultPoly(16)
	L := p.TransitionMatrix()
	mats, err := UnrollStates(p, 40)
	if err != nil {
		t.Fatal(err)
	}
	power := gf2.Identity(16)
	for tcyc, m := range mats {
		for i := 0; i < 16; i++ {
			if !m.Row(i).Equal(power.Row(i)) {
				t.Fatalf("cycle %d row %d: M(t) != L^t", tcyc, i)
			}
		}
		power = L.Mul(power)
	}
}

func TestSeedLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	MustNew(DefaultPoly(8)).Seed(gf2.NewVec(7))
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New(Poly{N: 3, Taps: []int{2}}); err == nil {
		t.Fatal("want error")
	}
}

// For the paper's key widths, the first 2n unrolled states must together
// have full rank n: every seed bit influences the key stream, which is the
// property that lets larger circuits pin down the unique seed.
func TestUnrolledStatesFullRank(t *testing.T) {
	for _, n := range []int{128, 144, 256, 368} {
		p := DefaultPoly(n)
		mats, err := UnrollStates(p, 2)
		if err != nil {
			t.Fatal(err)
		}
		stacked := gf2.VStack(mats[0], mats[1])
		if gf2.Rank(stacked) != n {
			t.Errorf("width %d: unrolled states rank-deficient", n)
		}
	}
}

func BenchmarkStep128(b *testing.B) {
	l := MustNew(DefaultPoly(128))
	l.Seed(gf2.Unit(128, 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Step()
	}
}

func BenchmarkUnroll128x3500(b *testing.B) {
	p := DefaultPoly(128)
	for i := 0; i < b.N; i++ {
		if _, err := UnrollStates(p, 3500); err != nil {
			b.Fatal(err)
		}
	}
}

func TestNLFSRBasics(t *testing.T) {
	if _, err := NewNLFSR(DefaultPoly(8), nil); err == nil {
		t.Fatal("want error for no AND pairs")
	}
	if _, err := NewNLFSR(DefaultPoly(8), [][2]int{{0, 8}}); err == nil {
		t.Fatal("want error for out-of-range AND tap")
	}
	if _, err := DefaultNLFSR(2); err == nil {
		t.Fatal("want error for tiny width")
	}
	r, err := DefaultNLFSR(8)
	if err != nil {
		t.Fatal(err)
	}
	if r.N() != 8 || len(r.AndPairs()) == 0 || r.Poly().N != 8 {
		t.Fatal("accessors wrong")
	}
}

// The NLFSR key stream must NOT be linear in the seed: superposition must
// fail for some seed pair, unlike the LFSR where it always holds.
func TestNLFSRIsNonlinear(t *testing.T) {
	n := 8
	r, err := DefaultNLFSR(n)
	if err != nil {
		t.Fatal(err)
	}
	stream := func(reg Register, seed gf2.Vec, cycles int) []gf2.Vec {
		reg.Seed(seed)
		var out []gf2.Vec
		for c := 0; c < cycles; c++ {
			out = append(out, reg.State())
			reg.Step()
		}
		return out
	}
	rng := rand.New(rand.NewSource(77))
	linearEverywhere := true
	for trial := 0; trial < 50 && linearEverywhere; trial++ {
		s1, s2 := randSeed(rng, n), randSeed(rng, n)
		sum := s1.XorInto(s2)
		a := stream(r, s1, 20)
		b := stream(r, s2, 20)
		c := stream(r, sum, 20)
		for i := range a {
			if !a[i].XorInto(b[i]).Equal(c[i]) {
				linearEverywhere = false
				break
			}
		}
	}
	if linearEverywhere {
		t.Fatal("NLFSR stream is linear; AND terms ineffective")
	}
	// Control: the LFSR must satisfy superposition everywhere.
	l := MustNew(DefaultPoly(n))
	for trial := 0; trial < 20; trial++ {
		s1, s2 := randSeed(rng, n), randSeed(rng, n)
		sum := s1.XorInto(s2)
		a := stream(l, s1, 20)
		b := stream(l, s2, 20)
		c := stream(l, sum, 20)
		for i := range a {
			if !a[i].XorInto(b[i]).Equal(c[i]) {
				t.Fatal("LFSR failed superposition")
			}
		}
	}
}

func TestNLFSRSeedPanics(t *testing.T) {
	r, _ := DefaultNLFSR(8)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	r.Seed(gf2.NewVec(7))
}
