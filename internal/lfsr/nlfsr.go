package lfsr

import (
	"fmt"

	"dynunlock/internal/gf2"
)

// Register abstracts the PRNG driving a dynamic scan locking defense: both
// the linear LFSR the paper attacks and the nonlinear registers its
// Discussion section identifies as out of the attack's reach.
type Register interface {
	// Seed resets the state.
	Seed(gf2.Vec)
	// Step advances one clock cycle.
	Step()
	// State returns a copy of the current state.
	State() gf2.Vec
	// N returns the register width.
	N() int
}

// LFSR implements Register.
var _ Register = (*LFSR)(nil)

// NLFSR is a nonlinear feedback shift register: the feedback bit is the
// XOR of the linear taps plus AND terms over state-bit pairs, in the style
// of Grain-family stream ciphers. Its key stream is NOT a GF(2)-linear
// function of the seed, which defeats DynUnlock's combinational modeling
// (paper Sec. V: "Our attack cannot model such modules into their
// combinational logic equivalent").
type NLFSR struct {
	poly     Poly
	andPairs [][2]int // 0-indexed state-bit pairs ANDed into the feedback
	state    gf2.Vec
}

// NewNLFSR builds a nonlinear register from a linear base polynomial and a
// set of AND pairs (each index in [0, N)).
func NewNLFSR(p Poly, andPairs [][2]int) (*NLFSR, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(andPairs) == 0 {
		return nil, fmt.Errorf("lfsr: NLFSR needs at least one AND pair (use LFSR otherwise)")
	}
	for _, pr := range andPairs {
		for _, idx := range pr {
			if idx < 0 || idx >= p.N {
				return nil, fmt.Errorf("lfsr: AND tap %d out of range [0,%d)", idx, p.N)
			}
		}
	}
	pairs := make([][2]int, len(andPairs))
	copy(pairs, andPairs)
	return &NLFSR{poly: p, andPairs: pairs, state: gf2.NewVec(p.N)}, nil
}

// DefaultNLFSR returns a width-n nonlinear register with the default
// linear taps and two deterministic AND pairs.
func DefaultNLFSR(n int) (*NLFSR, error) {
	if n < 3 {
		return nil, fmt.Errorf("lfsr: NLFSR width %d too small", n)
	}
	return NewNLFSR(DefaultPoly(n), [][2]int{{0, n / 2}, {n / 3, n - 1}})
}

// N returns the register width.
func (r *NLFSR) N() int { return r.poly.N }

// Poly returns the linear part of the feedback.
func (r *NLFSR) Poly() Poly { return r.poly }

// AndPairs returns the nonlinear feedback taps.
func (r *NLFSR) AndPairs() [][2]int {
	out := make([][2]int, len(r.andPairs))
	copy(out, r.andPairs)
	return out
}

// Seed resets the state.
func (r *NLFSR) Seed(seed gf2.Vec) {
	if seed.Len() != r.poly.N {
		panic(fmt.Sprintf("lfsr: seed length %d, want %d", seed.Len(), r.poly.N))
	}
	r.state = seed.Clone()
}

// State returns a copy of the current state.
func (r *NLFSR) State() gf2.Vec { return r.state.Clone() }

// Step advances one cycle.
func (r *NLFSR) Step() {
	fb := false
	for _, t := range r.poly.Taps {
		if r.state.Get(t - 1) {
			fb = !fb
		}
	}
	for _, pr := range r.andPairs {
		if r.state.Get(pr[0]) && r.state.Get(pr[1]) {
			fb = !fb
		}
	}
	for i := r.poly.N - 1; i > 0; i-- {
		r.state.Set(i, r.state.Get(i-1))
	}
	r.state.Set(0, fb)
}
