// Package lock applies scan locking to a sequential netlist, covering the
// three defense families in the paper's Table I:
//
//   - EFF (static): XOR key gates on the scan path driven by a fixed
//     secret key.
//   - DOS-style (per-pattern dynamic): key gates driven by an LFSR that
//     steps once every `Period` patterns.
//   - EFF-Dyn (per-cycle dynamic): key gates driven by an LFSR that steps
//     every clock cycle — the paper's target defense.
//
// A locked Design carries everything the *attacker* is assumed to know
// under the paper's threat model: the netlist, the scan chain order, the
// key-gate locations and register-bit bindings, the key-update policy, and
// the LFSR feedback polynomial. The secrets — the LFSR seed and the test
// authentication key — live in the oracle package's Chip, not here.
package lock

import (
	"fmt"
	"math/rand"

	"dynunlock/internal/gf2"
	"dynunlock/internal/lfsr"
	"dynunlock/internal/netlist"
	"dynunlock/internal/scan"
)

// Config selects locking parameters.
type Config struct {
	// KeyBits is the width k of the key register (the LFSR for dynamic
	// policies; the secret key itself for Static). The paper uses 128 in
	// Table II and 144…368 in Table III.
	KeyBits int
	// NumGates is the number of XOR key gates inserted on the scan path.
	// Zero means one gate per key bit (the paper's configuration).
	NumGates int
	// Policy is the key-update policy.
	Policy scan.Policy
	// Period is the per-pattern update period (PerPattern policy only).
	Period int
	// Poly is the LFSR feedback polynomial; zero value selects
	// lfsr.DefaultPoly(KeyBits). Ignored for Static.
	Poly lfsr.Poly
	// PlacementSeed randomizes key-gate placement; 0 selects the
	// deterministic evenly-spread placement.
	PlacementSeed int64
	// NonlinearPairs, when non-empty, upgrades the PRNG to a nonlinear
	// feedback register (AND terms over the given state-bit pairs). This
	// models the crypto-style defenses of the paper's Discussion section,
	// which DynUnlock cannot break: internal/core refuses to model them.
	NonlinearPairs [][2]int
}

// Design is a scan-locked circuit: the structural information an attacker
// recovers by reverse engineering (paper Sec. III threat model).
type Design struct {
	Netlist *netlist.Netlist
	View    *netlist.CombView
	Chain   scan.Chain
	Config  Config
}

// Lock applies scan locking to n according to cfg. The netlist itself is
// not rewritten — key gates live on the scan path, which the netlist's
// functional view does not include — but the returned Design fixes the
// chain order (netlist DFF order) and the gate placement.
func Lock(n *netlist.Netlist, cfg Config) (*Design, error) {
	if err := n.Validate(); err != nil {
		return nil, fmt.Errorf("lock: %w", err)
	}
	nFF := len(n.DFFs())
	if nFF < 2 {
		return nil, fmt.Errorf("lock: need at least 2 scan flops, have %d", nFF)
	}
	if cfg.KeyBits <= 0 {
		return nil, fmt.Errorf("lock: KeyBits %d must be positive", cfg.KeyBits)
	}
	if cfg.NumGates == 0 {
		cfg.NumGates = cfg.KeyBits
	}
	if cfg.Policy != scan.Static && cfg.Poly.N == 0 {
		cfg.Poly = lfsr.DefaultPoly(cfg.KeyBits)
	}
	if cfg.Policy != scan.Static {
		if cfg.Poly.N != cfg.KeyBits {
			return nil, fmt.Errorf("lock: polynomial width %d != KeyBits %d", cfg.Poly.N, cfg.KeyBits)
		}
		if err := cfg.Poly.Validate(); err != nil {
			return nil, fmt.Errorf("lock: %w", err)
		}
	}
	if cfg.Policy == scan.PerPattern && cfg.Period <= 0 {
		cfg.Period = 1
	}
	if len(cfg.NonlinearPairs) > 0 {
		if cfg.Policy == scan.Static {
			return nil, fmt.Errorf("lock: nonlinear feedback requires a dynamic policy")
		}
		if _, err := lfsr.NewNLFSR(cfg.Poly, cfg.NonlinearPairs); err != nil {
			return nil, fmt.Errorf("lock: %w", err)
		}
	}

	var gates []scan.KeyGate
	if cfg.PlacementSeed != 0 {
		gates = randomGates(nFF, cfg.NumGates, cfg.KeyBits, cfg.PlacementSeed)
	} else {
		gates = scan.SpreadGates(nFF, cfg.NumGates, cfg.KeyBits)
	}
	chain := scan.Chain{Length: nFF, Gates: gates}
	if err := chain.Validate(cfg.KeyBits); err != nil {
		return nil, fmt.Errorf("lock: %w", err)
	}
	view, err := netlist.NewCombView(n)
	if err != nil {
		return nil, fmt.Errorf("lock: %w", err)
	}
	return &Design{Netlist: n, View: view, Chain: chain, Config: cfg}, nil
}

// randomGates places count gates on random distinct links (until links are
// exhausted, then reuses links), deterministically from seed.
func randomGates(length, count, keyBits int, seed int64) []scan.KeyGate {
	rng := rand.New(rand.NewSource(seed))
	links := length - 1
	perm := rng.Perm(links)
	gates := make([]scan.KeyGate, count)
	for i := range gates {
		gates[i] = scan.KeyGate{Link: 1 + perm[i%links], KeyBit: i % keyBits}
	}
	return gates
}

// NewLFSR instantiates the design's PRNG (dynamic policies only).
func (d *Design) NewLFSR() (*lfsr.LFSR, error) {
	if d.Config.Policy == scan.Static {
		return nil, fmt.Errorf("lock: static policy has no LFSR")
	}
	return lfsr.New(d.Config.Poly)
}

// NewRegister instantiates the design's key register: an LFSR, or a
// nonlinear register when NonlinearPairs is set.
func (d *Design) NewRegister() (lfsr.Register, error) {
	if d.Config.Policy == scan.Static {
		return nil, fmt.Errorf("lock: static policy has no PRNG")
	}
	if len(d.Config.NonlinearPairs) > 0 {
		return lfsr.NewNLFSR(d.Config.Poly, d.Config.NonlinearPairs)
	}
	return lfsr.New(d.Config.Poly)
}

// Nonlinear reports whether the key register has nonlinear feedback.
func (d *Design) Nonlinear() bool { return len(d.Config.NonlinearPairs) > 0 }

// KeyRegisterAt returns, for dynamic policies, the symbolic key register
// value at the given pattern/cycle as a matrix M with register = M·seed.
// For Static it returns the identity (register = secret key).
func (d *Design) KeyRegisterAt(patIdx, cycle int) (*gf2.Mat, error) {
	steps := d.Config.Policy.Steps(patIdx, cycle, d.Config.Period)
	if d.Config.Policy == scan.Static {
		return gf2.Identity(d.Config.KeyBits), nil
	}
	mats, err := lfsr.UnrollStates(d.Config.Poly, steps+1)
	if err != nil {
		return nil, err
	}
	return mats[steps], nil
}

// Describe renders a human-readable summary of the locked design, in the
// spirit of the paper's Fig. 1 schematic.
func (d *Design) Describe() string {
	s := fmt.Sprintf("%s locked with %d key bits (%v", d.Netlist.Stats(), d.Config.KeyBits, d.Config.Policy)
	if d.Config.Policy == scan.PerPattern {
		s += fmt.Sprintf(", p=%d", d.Config.Period)
	}
	s += fmt.Sprintf("), %d key gates on a %d-flop chain", len(d.Chain.Gates), d.Chain.Length)
	return s
}
