package lock

import (
	"testing"

	"dynunlock/internal/bench"
	"dynunlock/internal/gf2"
	"dynunlock/internal/lfsr"
	"dynunlock/internal/scan"
)

func testCircuit(t *testing.T, ffs int) *Design {
	t.Helper()
	n, err := bench.Generate(bench.GenConfig{Name: "t", PIs: 4, POs: 2, FFs: ffs, Gates: 6 * ffs, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	d, err := Lock(n, Config{KeyBits: 8, Policy: scan.PerCycle})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestLockDefaults(t *testing.T) {
	d := testCircuit(t, 16)
	if len(d.Chain.Gates) != 8 {
		t.Fatalf("gates = %d, want KeyBits", len(d.Chain.Gates))
	}
	if d.Config.Poly.N != 8 {
		t.Fatalf("poly width = %d", d.Config.Poly.N)
	}
	if d.Chain.Length != 16 {
		t.Fatalf("chain length = %d", d.Chain.Length)
	}
	if d.Describe() == "" {
		t.Fatal("Describe empty")
	}
}

func TestLockErrors(t *testing.T) {
	n, _ := bench.Generate(bench.GenConfig{Name: "t", PIs: 2, POs: 1, FFs: 4, Gates: 16, Seed: 1})
	cases := []Config{
		{KeyBits: 0, Policy: scan.PerCycle},
		{KeyBits: -3, Policy: scan.Static},
		{KeyBits: 8, Policy: scan.PerCycle, Poly: lfsr.Poly{N: 7, Taps: []int{7, 1}}}, // width mismatch
		{KeyBits: 8, Policy: scan.PerCycle, Poly: lfsr.Poly{N: 8, Taps: []int{3, 1}}}, // invalid taps
	}
	for i, cfg := range cases {
		if _, err := Lock(n, cfg); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
	// Too few flops.
	small, _ := bench.Generate(bench.GenConfig{Name: "t", PIs: 2, POs: 1, FFs: 2, Gates: 8, Seed: 1})
	_ = small
	one := bench.S208F()
	_ = one
}

func TestLockStaticNoPoly(t *testing.T) {
	n, _ := bench.Generate(bench.GenConfig{Name: "t", PIs: 2, POs: 1, FFs: 8, Gates: 32, Seed: 2})
	d, err := Lock(n, Config{KeyBits: 4, Policy: scan.Static})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.NewLFSR(); err == nil {
		t.Fatal("static design must have no LFSR")
	}
	m, err := d.KeyRegisterAt(3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if gf2.Rank(m) != 4 {
		t.Fatal("static key register must be identity")
	}
	for i := 0; i < 4; i++ {
		if !m.Get(i, i) {
			t.Fatal("static key register must be identity")
		}
	}
}

func TestLockPerPatternPeriodDefault(t *testing.T) {
	n, _ := bench.Generate(bench.GenConfig{Name: "t", PIs: 2, POs: 1, FFs: 8, Gates: 32, Seed: 3})
	d, err := Lock(n, Config{KeyBits: 4, Policy: scan.PerPattern})
	if err != nil {
		t.Fatal(err)
	}
	if d.Config.Period != 1 {
		t.Fatalf("period = %d", d.Config.Period)
	}
}

func TestKeyRegisterAtMatchesLFSR(t *testing.T) {
	d := testCircuit(t, 12)
	reg, err := d.NewLFSR()
	if err != nil {
		t.Fatal(err)
	}
	seed := gf2.Unit(8, 3)
	seed.Set(5, true)
	reg.Seed(seed)
	for cycle := 0; cycle < 30; cycle++ {
		m, err := d.KeyRegisterAt(0, cycle)
		if err != nil {
			t.Fatal(err)
		}
		if !m.MulVec(seed).Equal(reg.State()) {
			t.Fatalf("cycle %d: symbolic register mismatch", cycle)
		}
		reg.Step()
	}
}

func TestRandomPlacement(t *testing.T) {
	n, _ := bench.Generate(bench.GenConfig{Name: "t", PIs: 4, POs: 2, FFs: 32, Gates: 128, Seed: 4})
	d1, err := Lock(n, Config{KeyBits: 16, Policy: scan.PerCycle, PlacementSeed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Chain.Validate(16); err != nil {
		t.Fatal(err)
	}
	d2, _ := Lock(n, Config{KeyBits: 16, Policy: scan.PerCycle, PlacementSeed: 11})
	for i := range d1.Chain.Gates {
		if d1.Chain.Gates[i] != d2.Chain.Gates[i] {
			t.Fatal("placement not deterministic per seed")
		}
	}
	d3, _ := Lock(n, Config{KeyBits: 16, Policy: scan.PerCycle, PlacementSeed: 12})
	diff := false
	for i := range d1.Chain.Gates {
		if d1.Chain.Gates[i] != d3.Chain.Gates[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds gave identical placement")
	}
	// Links must be distinct when gates <= links.
	seen := map[int]bool{}
	for _, g := range d1.Chain.Gates {
		if seen[g.Link] {
			t.Fatal("duplicate link in random placement")
		}
		seen[g.Link] = true
	}
}

func TestLockMoreGatesThanLinks(t *testing.T) {
	n, _ := bench.Generate(bench.GenConfig{Name: "t", PIs: 2, POs: 1, FFs: 5, Gates: 20, Seed: 6})
	d, err := Lock(n, Config{KeyBits: 12, Policy: scan.PerCycle, PlacementSeed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Chain.Gates) != 12 {
		t.Fatalf("gates = %d", len(d.Chain.Gates))
	}
	if err := d.Chain.Validate(12); err != nil {
		t.Fatal(err)
	}
}
