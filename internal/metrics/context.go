package metrics

import "context"

type ctxKey struct{}

// Handle is a registry plus a set of base labels, as carried by a
// context. Instrument constructors merge the base labels into every
// series they create, so a sweep can tag all metrics published below it
// (e.g. with the benchmark name) without threading label arguments
// through the attack APIs. The nil handle is the disabled-telemetry
// no-op: every constructor returns the nil instrument.
type Handle struct {
	reg  *Registry
	base []string // alternating key, value
}

// With returns a context carrying the registry. Attack layers below
// retrieve it with From; a nil registry returns ctx unchanged.
func With(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, &Handle{reg: r})
}

// WithLabels returns a context whose handle carries additional base
// labels (alternating key/value pairs) merged into every instrument
// created below. Without a registry on ctx it is a no-op, so label
// tagging costs nothing on the disabled path.
func WithLabels(ctx context.Context, labelPairs ...string) context.Context {
	h := From(ctx)
	if h == nil || len(labelPairs) == 0 {
		return ctx
	}
	if len(labelPairs)%2 != 0 {
		panic("metrics: odd number of label pair elements")
	}
	return context.WithValue(ctx, ctxKey{}, &Handle{
		reg:  h.reg,
		base: mergePairs(h.base, labelPairs),
	})
}

// WithLabels returns a Handle on r whose base labels are merged into
// every instrument created through it — a label-scoped view of the
// registry. The daemon gives each job the view WithLabels("job", id)
// (installed on the job's context via WithHandle) so every dynunlock_*
// series the attack publishes carries the job label without any
// instrumentation call site changing. A nil registry returns the nil
// no-op handle; no label pairs returns an unscoped handle.
func (r *Registry) WithLabels(labelPairs ...string) *Handle {
	if r == nil {
		return nil
	}
	if len(labelPairs)%2 != 0 {
		panic("metrics: odd number of label pair elements")
	}
	return &Handle{reg: r, base: labelPairs}
}

// WithHandle returns a context carrying h verbatim — how a prebuilt
// label-scoped view (Registry.WithLabels) is installed for the layers
// below. A nil handle returns ctx unchanged.
func WithHandle(ctx context.Context, h *Handle) context.Context {
	if h == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, h)
}

// From returns the handle carried by ctx, or nil when telemetry is
// disabled. All Handle methods are nil-safe, so callers never branch on
// the result — but hot paths may check for nil once to skip timing work.
func From(ctx context.Context) *Handle {
	if ctx == nil {
		return nil
	}
	if h, ok := ctx.Value(ctxKey{}).(*Handle); ok {
		return h
	}
	return nil
}

// Registry returns the underlying registry (nil on the nil handle).
func (h *Handle) Registry() *Registry {
	if h == nil {
		return nil
	}
	return h.reg
}

// Counter returns a counter with the handle's base labels merged in.
func (h *Handle) Counter(name string, labelPairs ...string) *Counter {
	if h == nil {
		return nil
	}
	return h.reg.Counter(name, mergePairs(h.base, labelPairs)...)
}

// Gauge returns a gauge with the handle's base labels merged in.
func (h *Handle) Gauge(name string, labelPairs ...string) *Gauge {
	if h == nil {
		return nil
	}
	return h.reg.Gauge(name, mergePairs(h.base, labelPairs)...)
}

// Histogram returns a histogram with the handle's base labels merged in.
func (h *Handle) Histogram(name string, bounds []float64, labelPairs ...string) *Histogram {
	if h == nil {
		return nil
	}
	return h.reg.Histogram(name, bounds, mergePairs(h.base, labelPairs)...)
}
