package metrics

import "context"

type ctxKey struct{}

// Handle is a registry plus a set of base labels, as carried by a
// context. Instrument constructors merge the base labels into every
// series they create, so a sweep can tag all metrics published below it
// (e.g. with the benchmark name) without threading label arguments
// through the attack APIs. The nil handle is the disabled-telemetry
// no-op: every constructor returns the nil instrument.
type Handle struct {
	reg  *Registry
	base []string // alternating key, value
}

// With returns a context carrying the registry. Attack layers below
// retrieve it with From; a nil registry returns ctx unchanged.
func With(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, &Handle{reg: r})
}

// WithLabels returns a context whose handle carries additional base
// labels (alternating key/value pairs) merged into every instrument
// created below. Without a registry on ctx it is a no-op, so label
// tagging costs nothing on the disabled path.
func WithLabels(ctx context.Context, labelPairs ...string) context.Context {
	h := From(ctx)
	if h == nil || len(labelPairs) == 0 {
		return ctx
	}
	if len(labelPairs)%2 != 0 {
		panic("metrics: odd number of label pair elements")
	}
	return context.WithValue(ctx, ctxKey{}, &Handle{
		reg:  h.reg,
		base: mergePairs(h.base, labelPairs),
	})
}

// From returns the handle carried by ctx, or nil when telemetry is
// disabled. All Handle methods are nil-safe, so callers never branch on
// the result — but hot paths may check for nil once to skip timing work.
func From(ctx context.Context) *Handle {
	if ctx == nil {
		return nil
	}
	if h, ok := ctx.Value(ctxKey{}).(*Handle); ok {
		return h
	}
	return nil
}

// Registry returns the underlying registry (nil on the nil handle).
func (h *Handle) Registry() *Registry {
	if h == nil {
		return nil
	}
	return h.reg
}

// Counter returns a counter with the handle's base labels merged in.
func (h *Handle) Counter(name string, labelPairs ...string) *Counter {
	if h == nil {
		return nil
	}
	return h.reg.Counter(name, mergePairs(h.base, labelPairs)...)
}

// Gauge returns a gauge with the handle's base labels merged in.
func (h *Handle) Gauge(name string, labelPairs ...string) *Gauge {
	if h == nil {
		return nil
	}
	return h.reg.Gauge(name, mergePairs(h.base, labelPairs)...)
}

// Histogram returns a histogram with the handle's base labels merged in.
func (h *Handle) Histogram(name string, bounds []float64, labelPairs ...string) *Histogram {
	if h == nil {
		return nil
	}
	return h.reg.Histogram(name, bounds, mergePairs(h.base, labelPairs)...)
}
