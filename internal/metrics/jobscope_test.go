package metrics

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"dynunlock/internal/stream"
)

func TestRegistryLabeledViewsAndScopedReads(t *testing.T) {
	r := NewRegistry()
	j1 := r.WithLabels("job", "j1")
	j2 := r.WithLabels("job", "j2")
	j1.Counter(MetricAttackDIPs, "engine", "sequential").Add(3)
	j2.Counter(MetricAttackDIPs, "engine", "sequential").Add(5)
	r.Counter(MetricAttackDIPs, "engine", "sequential").Add(7) // unscoped

	if got, ok := r.SumLabeled(MetricAttackDIPs, "job", "j1"); !ok || got != 3 {
		t.Fatalf("SumLabeled j1 = %v,%v want 3,true", got, ok)
	}
	if got, ok := r.SumLabeled(MetricAttackDIPs, "job", "j2"); !ok || got != 5 {
		t.Fatalf("SumLabeled j2 = %v,%v want 5,true", got, ok)
	}
	if got, _ := r.Sum(MetricAttackDIPs); got != 15 {
		t.Fatalf("unfiltered Sum = %v, want 15", got)
	}

	snap := r.SnapshotLabeled("job", "j1")
	if len(snap) != 1 {
		t.Fatalf("SnapshotLabeled j1 has %d series, want 1: %v", len(snap), snap)
	}
	for k, v := range snap {
		if !strings.Contains(k, `job="j1"`) || v.(float64) != 3 {
			t.Fatalf("scoped snapshot wrong series %q=%v", k, v)
		}
	}
	// Scoped histograms merge only matching children.
	bounds := []float64{0.1, 1, 10}
	j1.Histogram(MetricAttackDIPSolveSec, bounds).Observe(0.05)
	j2.Histogram(MetricAttackDIPSolveSec, bounds).Observe(5)
	if q, ok := r.QuantileOfLabeled(MetricAttackDIPSolveSec, 0.5, "job", "j2"); !ok || q <= 1 {
		t.Fatalf("QuantileOfLabeled j2 = %v,%v want >1", q, ok)
	}
	// Nil and empty-pair views degrade to unscoped behavior.
	var nr *Registry
	if nr.WithLabels("job", "x") != nil {
		t.Fatal("nil registry WithLabels should return nil handle")
	}
	if got, ok := r.SumLabeled(MetricAttackDIPs); !ok || got != 15 {
		t.Fatalf("SumLabeled with no pairs = %v,%v want unfiltered 15,true", got, ok)
	}
}

func TestUnlabeledExpositionUnchangedByJobViews(t *testing.T) {
	// The zero-cost pin: instrumenting through an empty Registry.WithLabels
	// view must be byte-identical to instrumenting the registry directly,
	// and the existence of labeled views elsewhere must not alter the
	// unlabeled series' rendering.
	build := func(via func(r *Registry) *Handle) string {
		r := NewRegistry()
		h := via(r)
		h.Counter(MetricAttackDIPs, "engine", "sequential").Add(42)
		h.Gauge(MetricSatLearntDB, "instance", "i0").Set(9)
		h.Histogram(MetricAttackDIPSolveSec, []float64{0.1, 1}).Observe(0.5)
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	direct := build(func(r *Registry) *Handle { return r.WithLabels() })
	viaCtx := build(func(r *Registry) *Handle {
		ctx := With(context.Background(), r)
		return From(ctx)
	})
	if direct != viaCtx {
		t.Fatalf("empty view exposition diverged:\n--- direct ---\n%s--- ctx ---\n%s", direct, viaCtx)
	}
	// Golden pin of the unlabeled rendering so any future scoping change
	// that touches the default path fails loudly.
	want := "# TYPE dynunlock_attack_dips_total counter\n" +
		"dynunlock_attack_dips_total{engine=\"sequential\"} 42\n"
	if !strings.Contains(direct, want) {
		t.Fatalf("unlabeled exposition drifted; want to contain:\n%s\ngot:\n%s", want, direct)
	}
	if strings.Contains(direct, "job=") {
		t.Fatalf("unlabeled exposition grew a job label:\n%s", direct)
	}
}

func TestUptimeAndGoroutinesGauges(t *testing.T) {
	r := NewRegistry()
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	time.Sleep(10 * time.Millisecond) // let uptime become nonzero
	metricsBody := get("/metrics")
	for _, name := range []string{MetricProcessUptime, MetricGoroutinesBare, MetricGoroutines} {
		if !strings.Contains(metricsBody, name+" ") {
			t.Fatalf("/metrics missing %s:\n%s", name, metricsBody)
		}
	}
	if up, ok := r.Sum(MetricProcessUptime); !ok || up <= 0 {
		t.Fatalf("uptime gauge = %v,%v want > 0", up, ok)
	}
	if n, ok := r.Sum(MetricGoroutinesBare); !ok || n < 1 {
		t.Fatalf("goroutines gauge = %v,%v want >= 1", n, ok)
	}
	varsBody := get("/debug/vars")
	var doc struct {
		Dynunlock map[string]any `json:"dynunlock"`
	}
	if err := json.Unmarshal([]byte(varsBody), &doc); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := doc.Dynunlock[MetricProcessUptime]; !ok {
		t.Fatalf("/debug/vars missing %s", MetricProcessUptime)
	}
	if _, ok := doc.Dynunlock[MetricGoroutinesBare]; !ok {
		t.Fatalf("/debug/vars missing %s", MetricGoroutinesBare)
	}
}

func TestServerHandleAndHealthEndpoints(t *testing.T) {
	r := NewRegistry()
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.Handle("/jobs", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "jobs here")
	}))
	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}
	if code, body := get("/jobs"); code != http.StatusOK || body != "jobs here" {
		t.Fatalf("extended handler: %d %q", code, body)
	}
	if code, body := get("/healthz"); code != http.StatusOK || !strings.HasPrefix(body, "ok") {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	if code, body := get("/readyz"); code != http.StatusOK || !strings.HasPrefix(body, "ready") {
		t.Fatalf("/readyz before drain: %d %q", code, body)
	}
	srv.closeSSESubscribers() // begin draining without stopping the listener
	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || !strings.HasPrefix(body, "draining") {
		t.Fatalf("/readyz during drain: %d %q", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz during drain: %d, liveness must stay 200", code)
	}
}

func TestEventsJobFilterStreamsOnlyThatJob(t *testing.T) {
	r := NewRegistry()
	r.WithLabels("job", "j1").Counter(MetricAttackDIPs, "engine", "sequential").Add(2)
	r.WithLabels("job", "j2").Counter(MetricAttackDIPs, "engine", "sequential").Add(9)
	bus := stream.NewBus()
	srv, err := ServeBus("127.0.0.1:0", r, bus)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	resp, dec := openEvents(t, ctx, base+"/events?job=j1")
	defer resp.Body.Close()

	hello := next(t, dec)
	if hello.Type != stream.TypeHello || hello.Job != "j1" || hello.Data["job"] != "j1" {
		t.Fatalf("filtered hello = %+v", hello)
	}
	snap := next(t, dec)
	if snap.Type != stream.TypeSnapshot || snap.Job != "j1" {
		t.Fatalf("filtered snapshot = %+v", snap)
	}
	for k := range snap.Data {
		if strings.Contains(k, "dynunlock_attack") && !strings.Contains(k, `job="j1"`) {
			t.Fatalf("filtered snapshot leaked foreign series %q", k)
		}
	}
	if _, ok := snap.Data[`dynunlock_attack_dips_total{engine="sequential",job="j1"}`]; !ok {
		t.Fatalf("filtered snapshot missing j1 series: %v", snap.Data)
	}

	// Interleave publishes from two job views plus an untagged one; only
	// j1's envelopes may arrive, with strictly increasing seq.
	j1, j2 := bus.WithJob("j1"), bus.WithJob("j2")
	j2.Publish(stream.TypeDIP, map[string]any{"iteration": 1})
	bus.Publish(stream.TypeDelta, map[string]any{"iterations": 0.0})
	j1.Publish(stream.TypeDIP, map[string]any{"iteration": 1})
	j1.Publish(stream.TypeResult, map[string]any{"scope": "experiment"})

	var seen []stream.Event
	for len(seen) < 2 {
		ev := next(t, dec)
		seen = append(seen, ev)
	}
	var lastSeq uint64
	for _, ev := range seen {
		if ev.Job != "j1" {
			t.Fatalf("filtered stream leaked job %q event %+v", ev.Job, ev)
		}
		if ev.Seq <= lastSeq {
			t.Fatalf("per-job seq not strictly increasing: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
	}
	if seen[0].Type != stream.TypeDIP || seen[1].Type != stream.TypeResult {
		t.Fatalf("filtered events = %v, %v", seen[0].Type, seen[1].Type)
	}
}

func TestEventsJobFilterDrainSnapshotIsScoped(t *testing.T) {
	r := NewRegistry()
	r.WithLabels("job", "j1").Counter(MetricAttackDIPs, "engine", "sequential").Add(4)
	r.WithLabels("job", "j2").Counter(MetricAttackDIPs, "engine", "sequential").Add(6)
	bus := stream.NewBus()
	srv, err := ServeBus("127.0.0.1:0", r, bus)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	resp, dec := openEvents(t, ctx, base+"/events?job=j1")
	defer resp.Body.Close()
	next(t, dec) // hello
	next(t, dec) // connect snapshot

	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Shutdown(2 * time.Second)
	}()
	final := next(t, dec)
	if final.Type != stream.TypeSnapshot || final.Job != "j1" {
		t.Fatalf("drain frame = %+v, want scoped snapshot", final)
	}
	v, ok := final.Data[`dynunlock_attack_dips_total{engine="sequential",job="j1"}`]
	if !ok || v.(float64) != 4 {
		t.Fatalf("drain snapshot totals = %v,%v want exactly j1's 4", v, ok)
	}
	for k := range final.Data {
		if strings.Contains(k, `job="j2"`) {
			t.Fatalf("drain snapshot leaked j2 series %q", k)
		}
	}
	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("after drain snapshot: %v, want EOF", err)
	}
	<-done
}

func TestSSEGapResendsFreshSnapshot(t *testing.T) {
	// The SSE half of the resume-ring wraparound guarantee: a client whose
	// Last-Event-ID predates the ring gets gap=true in hello AND a fresh
	// snapshot immediately after, so nothing is silently missing — the
	// snapshot re-establishes absolute totals.
	r := NewRegistry()
	ctr := r.Counter(MetricAttackDIPs, "engine", "sequential")
	bus := stream.NewBusSized(4, 4)
	srv, err := ServeBus("127.0.0.1:0", r, bus)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	anchor := bus.Subscribe(0) // keeps seq numbering live
	defer anchor.Close()
	for i := 0; i < 20; i++ {
		ctr.Inc()
		bus.Publish(stream.TypeDIP, map[string]any{"iteration": i})
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	resp, dec := openEvents(t, ctx, base+"/events?last-event-id=1")
	defer resp.Body.Close()
	hello := next(t, dec)
	if hello.Data["gap"] != true || hello.Data["resumed"] != false {
		t.Fatalf("hello after ring eviction = %v, want gap=true resumed=false", hello.Data)
	}
	snap := next(t, dec)
	if snap.Type != stream.TypeSnapshot {
		t.Fatalf("frame after gap hello = %q, want fresh snapshot", snap.Type)
	}
	if v := snap.Data[`dynunlock_attack_dips_total{engine="sequential"}`]; v.(float64) != 20 {
		t.Fatalf("fresh snapshot totals = %v, want absolute 20", v)
	}
	// The retained ring suffix still replays after the snapshot (oldest
	// surviving seq is 17 of 20 with ring capacity 4).
	ev := next(t, dec)
	if ev.Seq != 17 {
		t.Fatalf("first replayed event seq = %d, want 17", ev.Seq)
	}
}
