package metrics

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"

	"dynunlock/internal/svgchart"
)

// serveLive serves the self-contained live dashboard: a single HTML page
// (no external references) that subscribes to /events with EventSource
// and redraws the run's convergence curve, per-DIP solve-time timeline,
// and conflict/propagation rates in place as events arrive. The charts
// reproduce internal/report's inline-SVG visual language — same
// geometry, palette, and CSS, via internal/svgchart — so a live run
// looks like its eventual `runs report` page.
func (s *Server) serveLive(w http.ResponseWriter, _ *http.Request) {
	if s.bus == nil {
		http.Error(w, "metrics: no event stream attached (started without ServeBus)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write([]byte(livePage()))
}

var (
	livePageOnce sync.Once
	livePageHTML string
)

// livePage assembles the dashboard once: the svgchart CSS and geometry
// are spliced in from the shared chart package, and each chart container
// starts as a server-rendered empty chart so the page has the final
// layout before the first event lands.
func livePage() string {
	livePageOnce.Do(func() {
		geom, _ := json.Marshal(map[string]any{
			"w":       svgchart.Width,
			"h":       svgchart.Height,
			"ml":      svgchart.MarginLeft,
			"mr":      svgchart.MarginRight,
			"mt":      svgchart.MarginTop,
			"mb":      svgchart.MarginBottom,
			"palette": svgchart.Palette,
		})
		empty := func(caption, x, y string) string {
			return svgchart.LineChart(caption, x, y, nil)
		}
		r := strings.NewReplacer(
			"/*CSS*/", svgchart.CSS,
			"/*GEOM*/", string(geom),
			"<!--CONVERGENCE-->", empty("Seed-space convergence", "DIP iteration", "bits / rank"),
			"<!--SOLVETIME-->", empty("Per-DIP solve time", "DIP iteration", "solve ms"),
			"<!--RATES-->", empty("Solver rates", "seconds", "events/s"),
		)
		livePageHTML = r.Replace(liveTemplate)
	})
	return livePageHTML
}

// liveTemplate is the page skeleton. The script avoids backquotes and
// keeps to baseline JS so the raw-string literal stays readable; all
// dynamic markup goes through textContent or numeric interpolation, and
// series names come from the event schema, so no event data is ever
// injected as HTML.
const liveTemplate = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>DynUnlock live attack</title>
<style>
body{font-family:system-ui,sans-serif;margin:2em auto;max-width:72em;padding:0 1em;color:#1a1a1a}
h1{font-size:1.5em}
figure.chart{margin:.8em 0;display:inline-block}
figcaption{font-size:.85em;font-weight:600;margin-bottom:.2em}
/*CSS*/
.tiles{display:flex;flex-wrap:wrap;gap:.6em;margin:.8em 0}
.tile{border:1px solid #ccc;border-radius:4px;padding:.4em .8em;min-width:7.5em;background:#fafafa}
.tile b{display:block;font-size:1.15em}
.tile span{font-size:.75em;color:#666}
#status{font-size:.9em;color:#666}
#status.done{color:#2ca02c;font-weight:600}
#status.err{color:#d62728;font-weight:600}
.note{color:#777;font-size:.85em}
</style>
</head>
<body>
<h1>DynUnlock live attack</h1>
<p id="status">connecting to /events&hellip;</p>
<div class="tiles">
<div class="tile"><b id="t-iters">-</b><span>DIP iterations</span></div>
<div class="tile"><b id="t-conf">-</b><span>conflicts</span></div>
<div class="tile"><b id="t-confrate">-</b><span>conflicts/s</span></div>
<div class="tile"><b id="t-proprate">-</b><span>propagations/s</span></div>
<div class="tile"><b id="t-rank">-</b><span>rank / target</span></div>
<div class="tile"><b id="t-seeds">-</b><span>seeds remaining</span></div>
<div class="tile"><b id="t-eta">-</b><span>ETA</span></div>
<div class="tile"><b id="t-enc">-</b><span>encode vars / clauses</span></div>
<div class="tile"><b id="t-difficulty">-</b><span>DIP difficulty</span></div>
<div class="tile"><b id="t-lbd">-</b><span>mean LBD / restarts</span></div>
<div class="tile"><b id="t-xor">-</b><span>XOR prop share</span></div>
<div class="tile"><b id="t-drop">0</b><span>events dropped</span></div>
</div>
<div id="chart-convergence"><!--CONVERGENCE--></div>
<div id="chart-solvetime"><!--SOLVETIME--></div>
<div id="chart-rates"><!--RATES--></div>
<p class="note">Streaming from <a href="/events">/events</a>; scrape endpoints stay at
<a href="/metrics">/metrics</a> and <a href="/debug/vars">/debug/vars</a>.
Charts share internal/report's renderer, so this page previews the eventual run report.</p>
<script>
"use strict";
var G = /*GEOM*/;
var SVGNS = "http://www.w3.org/2000/svg";

function el(tag, attrs) {
  var e = document.createElementNS(SVGNS, tag);
  for (var k in attrs) e.setAttribute(k, attrs[k]);
  return e;
}
function ticks(lo, hi, n) {
  if (hi <= lo) hi = lo + 1;
  var step = (hi - lo) / n, out = [];
  for (var i = 0; i <= n; i++) out.push(lo + step * i);
  return out;
}
function fmtTick(v) {
  var s = v.toFixed(2).replace(/0+$/, "").replace(/\.$/, "");
  return s === "" ? "0" : s;
}
function fmtCount(v) {
  if (v >= 1e9) return (v / 1e9).toFixed(1) + "G";
  if (v >= 1e6) return (v / 1e6).toFixed(1) + "M";
  if (v >= 1e3) return (v / 1e3).toFixed(1) + "k";
  return Math.round(v).toString();
}

// drawChart mirrors svgchart.LineChart: same geometry, palette, and
// class names, so the live charts render exactly like the static report.
function drawChart(holderId, caption, xLabel, yLabel, series) {
  var pts = 0, first = true, xmin = 0, xmax = 1, ymin = 0, ymax = 1;
  series.forEach(function (s) {
    for (var i = 0; i < s.x.length; i++) {
      if (first) { xmin = xmax = s.x[i]; ymin = ymax = s.y[i]; first = false; }
      xmin = Math.min(xmin, s.x[i]); xmax = Math.max(xmax, s.x[i]);
      ymin = Math.min(ymin, s.y[i]); ymax = Math.max(ymax, s.y[i]);
      pts++;
    }
  });
  var fig = document.createElement("figure");
  fig.className = "chart";
  var cap = document.createElement("figcaption");
  cap.textContent = caption;
  fig.appendChild(cap);
  var svg = el("svg", { width: G.w, height: G.h, viewBox: "0 0 " + G.w + " " + G.h, role: "img" });
  fig.appendChild(svg);
  if (pts === 0) {
    var t = el("text", { x: G.w / 2, y: G.h / 2, "class": "empty" });
    t.textContent = "no data";
    svg.appendChild(t);
  } else {
    if (ymin > 0) ymin = 0;
    if (ymax === ymin) ymax = ymin + 1;
    if (xmax === xmin) xmax = xmin + 1;
    var plotW = G.w - G.ml - G.mr, plotH = G.h - G.mt - G.mb;
    var px = function (x) { return G.ml + (x - xmin) / (xmax - xmin) * plotW; };
    var py = function (y) { return G.mt + (1 - (y - ymin) / (ymax - ymin)) * plotH; };
    ticks(ymin, ymax, 4).forEach(function (ty) {
      var y = py(ty);
      svg.appendChild(el("line", { "class": "grid", x1: G.ml, y1: y, x2: G.w - G.mr, y2: y }));
      var lbl = el("text", { "class": "tick", x: G.ml - 5, y: y + 3.5, "text-anchor": "end" });
      lbl.textContent = fmtTick(ty);
      svg.appendChild(lbl);
    });
    ticks(xmin, xmax, 6).forEach(function (tx) {
      var lbl = el("text", { "class": "tick", x: px(tx), y: G.h - G.mb + 14, "text-anchor": "middle" });
      lbl.textContent = fmtTick(tx);
      svg.appendChild(lbl);
    });
    svg.appendChild(el("line", { "class": "axis", x1: G.ml, y1: G.mt, x2: G.ml, y2: G.h - G.mb }));
    svg.appendChild(el("line", { "class": "axis", x1: G.ml, y1: G.h - G.mb, x2: G.w - G.mr, y2: G.h - G.mb }));
    var xl = el("text", { "class": "label", x: G.ml + plotW / 2, y: G.h - 4, "text-anchor": "middle" });
    xl.textContent = xLabel;
    svg.appendChild(xl);
    var ymid = G.mt + plotH / 2;
    var yl = el("text", { "class": "label", x: 12, y: ymid, "text-anchor": "middle", transform: "rotate(-90 12 " + ymid + ")" });
    yl.textContent = yLabel;
    svg.appendChild(yl);
    series.forEach(function (s, si) {
      var color = G.palette[si % G.palette.length];
      if (s.x.length === 1) {
        svg.appendChild(el("circle", { cx: px(s.x[0]), cy: py(s.y[0]), r: 2.5, fill: color }));
        return;
      }
      var coords = [];
      for (var i = 0; i < s.x.length; i++) coords.push(px(s.x[i]).toFixed(2) + "," + py(s.y[i]).toFixed(2));
      var attrs = { "class": "line", points: coords.join(" "), stroke: color };
      if (s.dashed) attrs["stroke-dasharray"] = "5 3";
      svg.appendChild(el("polyline", attrs));
    });
    var lx = G.ml;
    series.forEach(function (s, si) {
      var color = G.palette[si % G.palette.length];
      svg.appendChild(el("line", { x1: lx, y1: G.mt - 14, x2: lx + 14, y2: G.mt - 14, stroke: color, "stroke-width": 2 }));
      var lbl = el("text", { "class": "tick", x: lx + 18, y: G.mt - 10 });
      lbl.textContent = s.name;
      svg.appendChild(lbl);
      lx += 22 + 7 * s.name.length;
    });
  }
  var holder = document.getElementById(holderId);
  holder.replaceChildren(fig);
}

function sumFamily(data, name) {
  var sum = 0, found = false;
  for (var k in data) {
    if (k === name || k.indexOf(name + "{") === 0) {
      var v = data[k];
      if (typeof v === "number") { sum += v; found = true; }
    }
  }
  return found ? sum : null;
}
function setTile(id, text) { document.getElementById(id).textContent = text; }

var conv = { dips: [], rank: [], target: [], seeds: [] };
var solve = { x: [], ms: [], n: 0 };
var rates = { t: [], conf: [], prop: [], t0: null };
var dropped = 0;

function redraw() {
  var cs = [];
  if (conv.dips.length) {
    cs.push({ name: "rank", x: conv.dips, y: conv.rank });
    cs.push({ name: "rank target", x: conv.dips, y: conv.target, dashed: true });
    cs.push({ name: "seeds log2", x: conv.dips, y: conv.seeds });
  }
  drawChart("chart-convergence", "Seed-space convergence", "DIP iteration", "bits / rank", cs);
  var ss = solve.x.length ? [{ name: "solve ms", x: solve.x, y: solve.ms }] : [];
  drawChart("chart-solvetime", "Per-DIP solve time", "DIP iteration", "solve ms", ss);
  var rs = [];
  if (rates.t.length) {
    rs.push({ name: "conflicts/s", x: rates.t, y: rates.conf });
    rs.push({ name: "propagations/s", x: rates.t, y: rates.prop });
  }
  drawChart("chart-rates", "Solver rates", "seconds", "events/s", rs);
}

function applySnapshot(data) {
  var iters = sumFamily(data, "dynunlock_attack_dips_total");
  if (iters !== null) setTile("t-iters", fmtCount(iters));
  var conf = sumFamily(data, "dynunlock_sat_conflicts_total");
  if (conf !== null) setTile("t-conf", fmtCount(conf));
  var ev = sumFamily(data, "dynunlock_encode_vars_total");
  var ec = sumFamily(data, "dynunlock_encode_clauses_total");
  if (ev !== null || ec !== null) setTile("t-enc", fmtCount(ev || 0) + " / " + fmtCount(ec || 0));
}

function applyDelta(d) {
  if (d.iterations !== undefined) setTile("t-iters", fmtCount(d.iterations));
  if (d.conflicts !== undefined) setTile("t-conf", fmtCount(d.conflicts));
  if (d.conflicts_per_s !== undefined) setTile("t-confrate", fmtCount(d.conflicts_per_s));
  if (d.props_per_s !== undefined) setTile("t-proprate", fmtCount(d.props_per_s));
  if (d.rank !== undefined) setTile("t-rank", d.rank + " / " + (d.rank_target || "?"));
  if (d.seeds_log2 !== undefined) setTile("t-seeds", "2^" + d.seeds_log2);
  if (d.eta_s !== undefined) setTile("t-eta", Math.round(d.eta_s) + "s");
  if (d.encode_vars !== undefined || d.encode_clauses !== undefined)
    setTile("t-enc", fmtCount(d.encode_vars || 0) + " / " + fmtCount(d.encode_clauses || 0));
  var now = Date.now() / 1000;
  if (rates.t0 === null) rates.t0 = now;
  rates.t.push(now - rates.t0);
  rates.conf.push(d.conflicts_per_s || 0);
  rates.prop.push(d.props_per_s || 0);
}

function applyInsight(d) {
  if (d.rank === undefined) return;
  conv.dips.push(d.dips !== undefined ? d.dips : conv.dips.length + 1);
  conv.rank.push(d.rank);
  conv.target.push(d.rank_target !== undefined ? d.rank_target : d.rank);
  conv.seeds.push(d.seeds_log2 !== undefined ? d.seeds_log2 : 0);
  setTile("t-rank", d.rank + " / " + (d.rank_target !== undefined ? d.rank_target : "?"));
  if (d.seeds_log2 !== undefined) setTile("t-seeds", "2^" + d.seeds_log2);
  if (d.eta_ms !== undefined) setTile("t-eta", Math.round(d.eta_ms / 1000) + "s");
}

function applyDIP(d) {
  solve.n++;
  solve.x.push(solve.n);
  solve.ms.push(d.solve_ms || 0);
  if (d.iteration !== undefined) setTile("t-iters", fmtCount(d.iteration));
}

// applyStage renders the anatomy breakdown published at each DIP boundary
// (see internal/anatomy): the iteration's difficulty score, the sampled
// mean learnt-clause LBD with the trial's restart count, and the XOR-layer
// propagation share.
function applyStage(d) {
  if (d.difficulty !== undefined) setTile("t-difficulty", fmtCount(d.difficulty));
  if (d.lbd_mean !== undefined)
    setTile("t-lbd", d.lbd_mean.toFixed(1) + " / " + fmtCount(d.restarts || 0));
  if (d.xor_share !== undefined) setTile("t-xor", (d.xor_share * 100).toFixed(1) + "%");
}

var status = document.getElementById("status");
// /live?job=<id> scopes the dashboard to one daemon job by passing the
// query through to the SSE endpoint's ?job= filter.
var es = new EventSource("/events" + location.search);
var pending = false;
function scheduleRedraw() {
  if (pending) return;
  pending = true;
  window.requestAnimationFrame(function () { pending = false; redraw(); });
}
function on(type, fn) {
  es.addEventListener(type, function (msg) {
    var ev;
    try { ev = JSON.parse(msg.data); } catch (e) { return; }
    fn(ev.data || {});
    scheduleRedraw();
  });
}
on("hello", function (d) {
  status.textContent = "live - streaming (proto " + d.proto + ", seq " + d.last_seq + (d.gap ? ", resume gap" : "") + ")";
});
on("snapshot", applySnapshot);
on("delta", applyDelta);
on("insight", applyInsight);
on("dip", applyDIP);
on("stage", applyStage);
on("span", function () {});
on("result", function (d) {
  if (d.scope === "experiment") {
    status.textContent = "finished: " + (d.succeeded ? "key recovered" : "not broken") +
      (d.stop_reason ? " (stopped: " + d.stop_reason + ")" : "");
    status.className = "done";
    es.close();
  }
});
es.onerror = function () {
  if (status.className !== "done") {
    status.textContent = "stream disconnected (run over or server gone); refresh to reconnect";
    status.className = "err";
  }
};
</script>
</body>
</html>
`
