// Package metrics is the live-telemetry layer of the attack stack: a
// dependency-free, concurrency-safe registry of named counters, gauges,
// and fixed-bucket histograms, exported over HTTP (server.go) in
// Prometheus text exposition and expvar JSON formats, and rendered as a
// periodic one-line progress snapshot (progress.go).
//
// The design mirrors internal/trace: the registry rides on
// context.Context (With / From / WithLabels), every handle and instrument
// is nil-safe, and the disabled path — no registry on the context — costs
// one pointer check per call site and allocates nothing, so an
// uninstrumented run reproduces the unmonitored code paths bit for bit.
// Unlike trace spans, which report a stage after it ends, instruments are
// updated from inside the hot loops (atomic operations only) so an HTTP
// scrape observes a run while it is in flight.
//
// Metric naming follows Prometheus conventions and is documented in
// DESIGN.md §3e: dynunlock_sat_* (solver), dynunlock_attack_* (DIP loop),
// dynunlock_portfolio_* (race wins), dynunlock_oracle_* (tester time),
// dynunlock_sweep_* (condition sweeps), dynunlock_process_* (runtime).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Canonical metric names published by the instrumented attack stack.
// Shared between the publishing layers (sat hooks, satattack, core, bench)
// and the consumers (progress reporter, tests, CI scrape assertions).
const (
	// Solver series (label: instance; plus any context base labels).
	MetricSatDecisions    = "dynunlock_sat_decisions_total"
	MetricSatConflicts    = "dynunlock_sat_conflicts_total"
	MetricSatPropagations = "dynunlock_sat_propagations_total"
	MetricSatRestarts     = "dynunlock_sat_restarts_total"
	MetricSatLearnt       = "dynunlock_sat_learnt_total"
	MetricSatRemoved      = "dynunlock_sat_removed_total"
	MetricSatLearntDB     = "dynunlock_sat_learnt_db_size"
	MetricSatLearntLBD    = "dynunlock_sat_learnt_lbd"
	// GF(2) layer: literals implied by unit XOR rows and conflicts raised
	// by violated rows (zero on pure-CNF instances).
	MetricSatXorPropagations = "dynunlock_sat_xor_propagations_total"
	MetricSatXorConflicts    = "dynunlock_sat_xor_conflicts_total"
	// Inprocessing layer (Solver.Simplify, zero unless enabled): clauses
	// removed as satisfied at the top level and falsified literals
	// strengthened out of surviving clauses.
	MetricSatSimplifyRemoved      = "dynunlock_sat_simplify_removed_total"
	MetricSatSimplifyStrengthened = "dynunlock_sat_simplify_strengthened_total"

	// Attack series (label: engine = sequential | portfolio).
	MetricAttackDIPs        = "dynunlock_attack_dips_total"
	MetricAttackQueries     = "dynunlock_attack_oracle_queries_total"
	MetricAttackIterations  = "dynunlock_attack_iterations"
	MetricAttackDIPSolveSec = "dynunlock_attack_dip_solve_seconds"
	// Encoder series (label: engine): CNF growth emitted by circuit-copy
	// encoding — the initial two key copies plus each DIP-constrained
	// copy. Clause counts include native XOR rows.
	MetricEncodeVars    = "dynunlock_encode_vars_total"
	MetricEncodeClauses = "dynunlock_encode_clauses_total"

	// Portfolio series (label: instance).
	MetricPortfolioWins = "dynunlock_portfolio_wins_total"

	// Oracle (tester-time) series.
	MetricOracleSessions = "dynunlock_oracle_sessions_total"
	MetricOracleCycles   = "dynunlock_oracle_scan_cycles_total"

	// Sweep series (label: status = ok | error on the items counter).
	MetricSweepInflight = "dynunlock_sweep_inflight"
	MetricSweepItems    = "dynunlock_sweep_items_total"

	// Insight (seed-space progress) series, published by internal/insight:
	// the certified GF(2) constraint rank, its analytic ceiling
	// rank([A;B]), the log2 of the surviving seed space, and the DIP-rate
	// ETA until the rank ceiling (absent until the first rank gain).
	MetricInsightRank       = "dynunlock_insight_rank"
	MetricInsightRankTarget = "dynunlock_insight_rank_target"
	MetricInsightBits       = "dynunlock_insight_bits_learned_total"
	MetricInsightSeedsLog2  = "dynunlock_insight_seeds_remaining_log2"
	MetricInsightETA        = "dynunlock_insight_eta_seconds"

	// Anatomy series (internal/anatomy live attribution, published once
	// per DIP iteration): cumulative DIP-loop solve wall time, mean
	// sampled learnt-clause LBD, restart count, the last iteration's
	// difficulty score, and the XOR-layer propagation share.
	MetricAnatomySolveSeconds = "dynunlock_anatomy_solve_seconds_total"
	MetricAnatomyLBDMean      = "dynunlock_anatomy_lbd_mean"
	MetricAnatomyRestarts     = "dynunlock_anatomy_restarts"
	MetricAnatomyDifficulty   = "dynunlock_anatomy_dip_difficulty"
	MetricAnatomyXorShare     = "dynunlock_anatomy_xor_share"

	// Process series (updated by the HTTP server on scrape).
	MetricProcessRSS  = "dynunlock_process_resident_bytes"
	MetricGoroutines  = "dynunlock_process_goroutines"
	MetricProcessHeap = "dynunlock_process_heap_bytes"
	// Liveness signals for long-running services (dynunlockd): seconds
	// since the metrics server started, and the goroutine count under its
	// conventional short name (MetricGoroutines predates the daemon and
	// keeps its dynunlock_process_ prefix; both are refreshed on scrape).
	MetricProcessUptime  = "dynunlock_process_uptime_seconds"
	MetricGoroutinesBare = "dynunlock_goroutines"

	// Build self-description: a constant-1 gauge whose labels identify
	// the binary (go version, flight-bundle format version, default
	// encode/solve flag values), so scrapes and event streams carry the
	// provenance of the process that produced them.
	MetricBuildInfo = "dynunlock_build_info"
)

// Kind classifies a metric family.
type Kind uint8

// Metric family kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String renders the kind in Prometheus TYPE vocabulary.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing uint64. All methods are nil-safe
// and lock-free; the nil counter (from a disabled registry or handle) is
// the no-op instrument.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on the nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that may go up and down, stored as atomic bits.
// All methods are nil-safe; Add uses a CAS loop.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta (negative deltas decrease it).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value (0 on the nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution: observation counts per bucket
// (upper-bound inclusive, with an implicit +Inf bucket), a running sum,
// and a total count. Observe is lock-free; all methods are nil-safe.
type Histogram struct {
	bounds  []float64 // strictly increasing upper bounds, +Inf implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds:  bounds,
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the fixed buckets
// by linear interpolation within the bucket containing the target rank —
// the same estimate Prometheus's histogram_quantile computes. Returns 0
// with no observations; ranks landing in the +Inf overflow bucket return
// the last finite bound (the estimate cannot exceed what the buckets
// resolve). Nil-safe.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	counts := make([]uint64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
	}
	return quantileFromBuckets(h.bounds, counts, q)
}

// quantileFromBuckets interpolates a quantile over per-bucket (non-
// cumulative) counts.
func quantileFromBuckets(bounds []float64, counts []uint64, q float64) float64 {
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 || len(bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if cum+float64(c) >= rank {
			if i >= len(bounds) {
				return bounds[len(bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			frac := (rank - cum) / float64(c)
			return lo + frac*(bounds[i]-lo)
		}
		cum += float64(c)
	}
	return bounds[len(bounds)-1]
}

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start and growing by factor (e.g. ExpBuckets(0.001, 2, 14) spans 1ms to
// ~8s). Suitable for solve-time histograms.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("metrics: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// LinearBuckets returns n linearly spaced bucket bounds.
func LinearBuckets(start, width float64, n int) []float64 {
	if n < 1 {
		panic("metrics: LinearBuckets needs n >= 1")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start
		start += width
	}
	return out
}

// child is one labeled instrument of a family.
type child struct {
	labels []string // sorted "k=v" rendering source: alternating key, value
	key    string   // canonical serialized label set
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
}

// family is all children sharing one metric name.
type family struct {
	name   string
	help   string
	kind   Kind
	bounds []float64 // KindHistogram only

	mu       sync.Mutex
	children map[string]*child
}

func (f *family) child(labels []string) *child {
	key := labelKey(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := &child{labels: labels, key: key}
	switch f.kind {
	case KindCounter:
		c.ctr = &Counter{}
	case KindGauge:
		c.gauge = &Gauge{}
	case KindHistogram:
		c.hist = newHistogram(f.bounds)
	}
	f.children[key] = c
	return c
}

// sortedChildren returns the children ordered by label key (deterministic
// exposition order).
func (f *family) sortedChildren() []*child {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*child, 0, len(f.children))
	for _, c := range f.children {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// Registry holds metric families by name. The zero value is not usable;
// call NewRegistry. A nil *Registry is the disabled registry: every
// instrument constructor returns the nil no-op instrument.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func (r *Registry) family(name string, kind Kind, bounds []float64) *family {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		if f, ok = r.families[name]; !ok {
			f = &family{name: name, kind: kind, bounds: bounds, children: make(map[string]*child)}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != kind {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.kind, kind))
	}
	if kind == KindHistogram && !equalBounds(f.bounds, bounds) {
		panic(fmt.Sprintf("metrics: %s registered with different buckets", name))
	}
	return f
}

// Counter returns the counter for name and the given label pairs
// ("key", "value", ...), creating it on first use. Nil-safe: a nil
// registry returns the nil counter.
func (r *Registry) Counter(name string, labelPairs ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.family(name, KindCounter, nil).child(normalizePairs(labelPairs)).ctr
}

// Gauge returns the gauge for name and label pairs, creating it on first
// use. Nil-safe.
func (r *Registry) Gauge(name string, labelPairs ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.family(name, KindGauge, nil).child(normalizePairs(labelPairs)).gauge
}

// Histogram returns the histogram for name and label pairs, creating it
// with the given bucket bounds on first use. Re-registering a name with
// different bounds panics. Nil-safe.
func (r *Registry) Histogram(name string, bounds []float64, labelPairs ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.family(name, KindHistogram, append([]float64(nil), bounds...)).child(normalizePairs(labelPairs)).hist
}

// SetBuildInfo publishes the MetricBuildInfo gauge: constant 1 with the
// given label pairs describing the binary (conventionally goversion,
// format, and the default native_xor/aig/simplify flag values — the CLIs
// read them off their flag definitions so the gauge tracks the build's
// defaults, not a particular invocation). Nil-safe.
func (r *Registry) SetBuildInfo(labelPairs ...string) {
	if r == nil {
		return
	}
	r.Gauge(MetricBuildInfo, labelPairs...).Set(1)
	r.SetHelp(MetricBuildInfo, "Build self-description; the labels identify the binary.")
}

// SetHelp attaches a Prometheus HELP string to a family (created lazily as
// a counter placeholder if the family does not exist yet is avoided: help
// on an unknown name is retained only once the family is registered, so
// call SetHelp after the first instrument). Nil-safe.
func (r *Registry) SetHelp(name, help string) {
	if r == nil {
		return
	}
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if ok {
		f.mu.Lock()
		f.help = help
		f.mu.Unlock()
	}
}

// Sum returns the sum of a family's values across all labeled children —
// counters sum their counts, gauges their values, histograms their
// observation counts — and whether the family exists. Nil-safe. The
// progress reporter uses it to collapse per-instance series into totals.
func (r *Registry) Sum(name string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok {
		return 0, false
	}
	var sum float64
	for _, c := range f.sortedChildren() {
		switch f.kind {
		case KindCounter:
			sum += float64(c.ctr.Value())
		case KindGauge:
			sum += c.gauge.Value()
		case KindHistogram:
			sum += float64(c.hist.Count())
		}
	}
	return sum, true
}

// SumLabeled is Sum restricted to children carrying every given label
// pair — what a per-job progress sampler totals so concurrent jobs in
// one registry do not bleed into each other's deltas. Nil-safe.
func (r *Registry) SumLabeled(name string, labelPairs ...string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	want := normalizePairs(labelPairs)
	if len(want) == 0 {
		return r.Sum(name)
	}
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok {
		return 0, false
	}
	var sum float64
	for _, c := range f.sortedChildren() {
		if !labelsContain(c.labels, want) {
			continue
		}
		switch f.kind {
		case KindCounter:
			sum += float64(c.ctr.Value())
		case KindGauge:
			sum += c.gauge.Value()
		case KindHistogram:
			sum += float64(c.hist.Count())
		}
	}
	return sum, true
}

// QuantileOfLabeled is QuantileOf restricted to children carrying every
// given label pair. Nil-safe.
func (r *Registry) QuantileOfLabeled(name string, q float64, labelPairs ...string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	want := normalizePairs(labelPairs)
	if len(want) == 0 {
		return r.QuantileOf(name, q)
	}
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok || f.kind != KindHistogram {
		return 0, false
	}
	counts := make([]uint64, len(f.bounds)+1)
	for _, c := range f.sortedChildren() {
		if !labelsContain(c.labels, want) {
			continue
		}
		for i := range c.hist.buckets {
			counts[i] += c.hist.buckets[i].Load()
		}
	}
	return quantileFromBuckets(f.bounds, counts, q), true
}

// QuantileOf estimates the q-quantile of a histogram family, merging the
// per-bucket counts of every labeled child (identical bounds by
// construction). ok is false when the family is absent or not a
// histogram. Nil-safe. The progress reporter uses it for the latency
// percentile fields.
func (r *Registry) QuantileOf(name string, q float64) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok || f.kind != KindHistogram {
		return 0, false
	}
	counts := make([]uint64, len(f.bounds)+1)
	for _, c := range f.sortedChildren() {
		for i := range c.hist.buckets {
			counts[i] += c.hist.buckets[i].Load()
		}
	}
	return quantileFromBuckets(f.bounds, counts, q), true
}

// Snapshot returns every series as a flat map from "name{labels}" to a
// JSON-friendly value: float64 for counters and gauges, a
// {count, sum, buckets, p50, p95, p99} object for histograms (the
// quantiles are fixed-bucket interpolation estimates; the Prometheus
// exposition stays raw buckets). The expvar endpoint and tests consume
// this.
func (r *Registry) Snapshot() map[string]any {
	return r.snapshotWhere(nil)
}

// SnapshotLabeled returns the Snapshot restricted to series carrying
// every given label pair exactly — the per-job view: the daemon writes a
// job's bundle metrics.json and its filtered SSE snapshots from
// SnapshotLabeled("job", id). Nil-safe.
func (r *Registry) SnapshotLabeled(labelPairs ...string) map[string]any {
	if r == nil {
		return nil
	}
	want := normalizePairs(labelPairs)
	if len(want) == 0 {
		return r.snapshotWhere(nil)
	}
	return r.snapshotWhere(func(c *child) bool { return labelsContain(c.labels, want) })
}

// snapshotWhere builds the snapshot map over children accepted by match
// (nil matches all).
func (r *Registry) snapshotWhere(match func(*child) bool) map[string]any {
	if r == nil {
		return nil
	}
	out := make(map[string]any)
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	for _, f := range fams {
		for _, c := range f.sortedChildren() {
			if match != nil && !match(c) {
				continue
			}
			key := f.name
			if c.key != "" {
				key += "{" + c.key + "}"
			}
			switch f.kind {
			case KindCounter:
				out[key] = float64(c.ctr.Value())
			case KindGauge:
				out[key] = c.gauge.Value()
			case KindHistogram:
				buckets := make(map[string]uint64, len(f.bounds)+1)
				cum := uint64(0)
				for i, b := range f.bounds {
					cum += c.hist.buckets[i].Load()
					buckets[formatFloat(b)] = cum
				}
				cum += c.hist.buckets[len(f.bounds)].Load()
				buckets["+Inf"] = cum
				out[key] = map[string]any{
					"count":   c.hist.Count(),
					"sum":     c.hist.Sum(),
					"buckets": buckets,
					"p50":     c.hist.Quantile(0.50),
					"p95":     c.hist.Quantile(0.95),
					"p99":     c.hist.Quantile(0.99),
				}
			}
		}
	}
	return out
}

// normalizePairs validates alternating key/value label pairs and returns
// them sorted by key.
func normalizePairs(pairs []string) []string {
	if len(pairs) == 0 {
		return nil
	}
	if len(pairs)%2 != 0 {
		panic("metrics: odd number of label pair elements")
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		kvs = append(kvs, kv{pairs[i], pairs[i+1]})
	}
	sort.SliceStable(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	out := make([]string, 0, len(pairs))
	for _, p := range kvs {
		out = append(out, p.k, p.v)
	}
	return out
}

// labelKey renders sorted pairs as the canonical `k="v",k2="v2"` string
// used both as the child map key and in the Prometheus exposition.
func labelKey(pairs []string) string {
	if len(pairs) == 0 {
		return ""
	}
	var sb strings.Builder
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(pairs[i])
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(pairs[i+1]))
		sb.WriteByte('"')
	}
	return sb.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// mergePairs concatenates base labels with call-site labels (both
// alternating key/value); call-site values win on duplicate keys.
func mergePairs(base, extra []string) []string {
	if len(base) == 0 {
		return extra
	}
	if len(extra) == 0 {
		return base
	}
	out := make([]string, 0, len(base)+len(extra))
	for i := 0; i+1 < len(base); i += 2 {
		k := base[i]
		dup := false
		for j := 0; j+1 < len(extra); j += 2 {
			if extra[j] == k {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, k, base[i+1])
		}
	}
	return append(out, extra...)
}

// labelsContain reports whether the sorted alternating label list
// carries every (key, value) pair of want exactly.
func labelsContain(labels, want []string) bool {
	for i := 0; i+1 < len(want); i += 2 {
		found := false
		for j := 0; j+1 < len(labels); j += 2 {
			if labels[j] == want[i] {
				found = labels[j+1] == want[i+1]
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func equalBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
