package metrics

import (
	"context"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g")
	g.Set(3)
	g.Add(-1.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	h := r.Histogram("h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("hist count = %d, want 4", h.Count())
	}
	if h.Sum() != 105 {
		t.Fatalf("hist sum = %v, want 105", h.Sum())
	}
}

func TestSameNameReturnsSameInstrument(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "instance", "0")
	b := r.Counter("x_total", "instance", "0")
	if a != b {
		t.Fatal("same name+labels must return the same counter")
	}
	other := r.Counter("x_total", "instance", "1")
	if a == other {
		t.Fatal("different labels must return distinct children")
	}
	// Label order must not matter.
	p := r.Counter("y_total", "a", "1", "b", "2")
	q := r.Counter("y_total", "b", "2", "a", "1")
	if p != q {
		t.Fatal("label order must not create distinct children")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total")
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on kind mismatch")
		}
	}()
	r.Gauge("z_total")
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("nope")
	c.Inc() // must not panic
	g := r.Gauge("nope")
	g.Set(1)
	h := r.Histogram("nope", []float64{1})
	h.Observe(1)
	if v, ok := r.Sum("nope"); ok || v != 0 {
		t.Fatal("nil registry Sum must report absence")
	}
	var hd *Handle
	hd.Counter("nope").Inc()
	if hd.Registry() != nil {
		t.Fatal("nil handle registry must be nil")
	}
	if From(context.Background()) != nil {
		t.Fatal("background context must carry no handle")
	}
}

func TestContextHandleAndLabels(t *testing.T) {
	r := NewRegistry()
	ctx := With(context.Background(), r)
	ctx = WithLabels(ctx, "benchmark", "s5378")
	h := From(ctx)
	if h == nil {
		t.Fatal("handle missing from context")
	}
	h.Counter("tagged_total", "instance", "0").Add(7)
	snap := r.Snapshot()
	if v, ok := snap[`tagged_total{benchmark="s5378",instance="0"}`]; !ok || v.(float64) != 7 {
		t.Fatalf("snapshot missing merged-label series: %v", snap)
	}
	// WithLabels without a registry is a no-op.
	plain := WithLabels(context.Background(), "a", "b")
	if From(plain) != nil {
		t.Fatal("WithLabels must not install a handle on its own")
	}
}

func TestSumAcrossChildren(t *testing.T) {
	r := NewRegistry()
	r.Counter("s_total", "instance", "0").Add(3)
	r.Counter("s_total", "instance", "1").Add(4)
	if v, ok := r.Sum("s_total"); !ok || v != 7 {
		t.Fatalf("Sum = %v,%v want 7,true", v, ok)
	}
}

// promLine matches one non-comment Prometheus text exposition line.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_+][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? [-+]?([0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?|Inf|NaN)$`)

// parseProm validates the exposition text line by line and returns the
// set of series names seen.
func parseProm(t *testing.T, text string) map[string]bool {
	t.Helper()
	names := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("line does not parse as Prometheus exposition: %q", line)
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		names[name] = true
	}
	return names
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter(MetricSatConflicts, "instance", "0").Add(42)
	r.SetHelp(MetricSatConflicts, "total CDCL conflicts")
	r.Gauge(MetricSatLearntDB, "instance", "0").Set(17)
	hist := r.Histogram(MetricAttackDIPSolveSec, ExpBuckets(0.001, 2, 4))
	hist.Observe(0.0005)
	hist.Observe(0.003)
	hist.Observe(9)
	r.Counter("odd_label_total", "msg", "a\"b\\c\nd").Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	names := parseProm(t, out)
	for _, want := range []string{
		MetricSatConflicts,
		MetricSatLearntDB,
		MetricAttackDIPSolveSec + "_bucket",
		MetricAttackDIPSolveSec + "_sum",
		MetricAttackDIPSolveSec + "_count",
	} {
		if !names[want] {
			t.Errorf("exposition missing series %s:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "# TYPE "+MetricAttackDIPSolveSec+" histogram") {
		t.Error("missing histogram TYPE header")
	}
	if !strings.Contains(out, "# HELP "+MetricSatConflicts+" total CDCL conflicts") {
		t.Error("missing HELP header")
	}
	if !strings.Contains(out, MetricSatConflicts+`{instance="0"} 42`) {
		t.Errorf("missing counter sample:\n%s", out)
	}
	// Cumulative buckets: 0.0005 <= 0.001; 0.003 <= 0.004; 9 -> +Inf.
	if !strings.Contains(out, `le="0.001"} 1`) || !strings.Contains(out, `le="+Inf"} 3`) {
		t.Errorf("bucket cumulation wrong:\n%s", out)
	}
	if !strings.Contains(out, MetricAttackDIPSolveSec+"_count 3") {
		t.Errorf("histogram count wrong:\n%s", out)
	}
}

func TestConcurrentInstrumentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers, perWorker = 8, 1000
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			inst := strconv.Itoa(w % 2)
			c := r.Counter("conc_total", "instance", inst)
			g := r.Gauge("conc_gauge")
			h := r.Histogram("conc_hist", []float64{1, 10, 100})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 150))
				// Concurrent re-lookup races the family maps on purpose.
				r.Counter("conc_total", "instance", inst)
			}
		}()
	}
	wg.Wait()
	if v, _ := r.Sum("conc_total"); v != workers*perWorker {
		t.Fatalf("counter sum = %v, want %d", v, workers*perWorker)
	}
	if g := r.Gauge("conc_gauge").Value(); g != workers*perWorker {
		t.Fatalf("gauge = %v, want %d", g, workers*perWorker)
	}
	if c := r.Histogram("conc_hist", []float64{1, 10, 100}).Count(); c != workers*perWorker {
		t.Fatalf("hist count = %d, want %d", c, workers*perWorker)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	parseProm(t, sb.String())
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.001, 2, 4)
	want := []float64{0.001, 0.002, 0.004, 0.008}
	if fmt.Sprint(b) != fmt.Sprint(want) {
		t.Fatalf("ExpBuckets = %v, want %v", b, want)
	}
	l := LinearBuckets(1, 2, 3)
	if fmt.Sprint(l) != fmt.Sprint([]float64{1, 3, 5}) {
		t.Fatalf("LinearBuckets = %v", l)
	}
}
