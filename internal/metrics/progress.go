package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"dynunlock/internal/stream"
	"dynunlock/internal/trace"
)

// DefaultProgressInterval is the snapshot cadence selected by a bare
// -progress flag.
const DefaultProgressInterval = 2 * time.Second

// Progress periodically renders a one-line snapshot of the registry —
// DIP iterations, conflict and propagation rates, learnt-clause DB size,
// oracle scan cycles, RSS — to a writer (normally stderr) and emits the
// same snapshot as a "snapshot" trace event, so a JSONL trace artifact
// captures both stage spans and a time series of the run.
type Progress struct {
	reg      *Registry
	w        io.Writer
	tr       *trace.Tracer
	interval time.Duration
	jsonMode bool
	bus      *stream.Bus
	scope    []string // label pairs restricting the sums (per-job sampler)

	stop     chan struct{}
	done     chan struct{}
	mu       sync.Mutex
	started  bool
	lastT    time.Time
	lastConf float64
	lastProp float64
}

// NewProgress builds a reporter over reg, emitting every interval to w
// (nil w discards the text line) and to tr (the nil tracer discards the
// snapshot events). Call Start to begin and Stop to end; Stop emits one
// final snapshot so short runs still record at least one sample.
func NewProgress(reg *Registry, interval time.Duration, w io.Writer, tr *trace.Tracer) *Progress {
	if interval <= 0 {
		interval = DefaultProgressInterval
	}
	if w == nil {
		w = io.Discard
	}
	return &Progress{
		reg:      reg,
		w:        w,
		tr:       tr,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// SetJSON switches the text output from the human "progress:" line to
// one stream-schema "delta" event per line (the JSON envelope of
// stream.Event, parseable by stream.ParseEvent), so headless logs and
// the SSE feed share one parser. Call before Start. Nil-safe.
func (p *Progress) SetJSON(on bool) {
	if p == nil {
		return
	}
	p.jsonMode = on
}

// SetScope restricts every sum and quantile behind the snapshot to
// series carrying the given label pairs (Registry.SumLabeled) — a
// per-job sampler in the daemon scopes to ("job", id) so concurrent
// jobs sharing one registry do not bleed into each other's delta
// events. Call before Start. Nil-safe.
func (p *Progress) SetScope(labelPairs ...string) {
	if p == nil {
		return
	}
	p.scope = labelPairs
}

// AttachStream publishes each snapshot to b as a "delta" stream event in
// addition to the text line and trace event; the periodic Progress
// sample is the feed's only delta source (the trace adapter deliberately
// drops "snapshot" trace events to avoid double delivery). A nil bus is
// a no-op. Call before Start. Nil-safe.
func (p *Progress) AttachStream(b *stream.Bus) {
	if p == nil {
		return
	}
	p.bus = b
}

// Start launches the reporting goroutine. Nil-safe; starting twice is a
// no-op.
func (p *Progress) Start() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.started {
		p.mu.Unlock()
		return
	}
	p.started = true
	p.lastT = time.Now()
	p.mu.Unlock()
	go p.run()
}

// Stop halts the reporter, emitting one final snapshot. Nil-safe;
// stopping an unstarted or already-stopped reporter is a no-op.
func (p *Progress) Stop() {
	if p == nil {
		return
	}
	p.mu.Lock()
	started := p.started
	p.started = false
	p.mu.Unlock()
	if !started {
		return
	}
	close(p.stop)
	<-p.done
}

func (p *Progress) run() {
	defer close(p.done)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.emit()
		case <-p.stop:
			p.emit()
			return
		}
	}
}

// sum totals one family within the reporter's label scope.
func (p *Progress) sum(name string) (float64, bool) {
	if len(p.scope) > 0 {
		return p.reg.SumLabeled(name, p.scope...)
	}
	return p.reg.Sum(name)
}

// quantile estimates one quantile within the reporter's label scope.
func (p *Progress) quantile(name string, q float64) (float64, bool) {
	if len(p.scope) > 0 {
		return p.reg.QuantileOfLabeled(name, q, p.scope...)
	}
	return p.reg.QuantileOf(name, q)
}

// emit renders one snapshot line and trace event.
func (p *Progress) emit() {
	now := time.Now()
	sum := func(name string) float64 { v, _ := p.sum(name); return v }
	iters := sum(MetricAttackDIPs)
	conflicts := sum(MetricSatConflicts)
	props := sum(MetricSatPropagations)
	learntDB := sum(MetricSatLearntDB)
	cycles := sum(MetricOracleCycles)
	rss, rssOK := ReadRSS()

	p.mu.Lock()
	dt := now.Sub(p.lastT).Seconds()
	var confRate, propRate float64
	if dt > 0 {
		confRate = (conflicts - p.lastConf) / dt
		propRate = (props - p.lastProp) / dt
	}
	p.lastT, p.lastConf, p.lastProp = now, conflicts, props
	p.mu.Unlock()

	line := fmt.Sprintf("progress: iters=%.0f conflicts=%s (%s/s) props=%s (%s/s) learnt=%.0f cycles=%s",
		iters, humanCount(conflicts), humanCount(confRate),
		humanCount(props), humanCount(propRate),
		learntDB, humanCount(cycles))
	fields := map[string]any{
		"iterations":      iters,
		"conflicts":       conflicts,
		"conflicts_per_s": confRate,
		"propagations":    props,
		"props_per_s":     propRate,
		"learnt_db":       learntDB,
		"oracle_cycles":   cycles,
	}
	if rssOK {
		line += " rss=" + humanBytes(rss)
		fields["rss_bytes"] = rss
	}
	// Per-DIP SAT-call latency percentiles, estimated from the fixed
	// histogram buckets (Registry.QuantileOf); present once a DIP-loop
	// solve has been observed.
	if n, ok := p.sum(MetricAttackDIPSolveSec); ok && n > 0 {
		p50, _ := p.quantile(MetricAttackDIPSolveSec, 0.50)
		p95, _ := p.quantile(MetricAttackDIPSolveSec, 0.95)
		p99, _ := p.quantile(MetricAttackDIPSolveSec, 0.99)
		line += fmt.Sprintf(" solve_p50=%s p95=%s p99=%s",
			time.Duration(p50*float64(time.Second)).Round(time.Microsecond),
			time.Duration(p95*float64(time.Second)).Round(time.Microsecond),
			time.Duration(p99*float64(time.Second)).Round(time.Microsecond))
		fields["solve_p50_s"] = p50
		fields["solve_p95_s"] = p95
		fields["solve_p99_s"] = p99
	}
	// Encode accounting (fields only: the text line predates these series
	// and stays stable for log scrapers; `runs watch` renders them).
	if ev, ok := p.sum(MetricEncodeVars); ok {
		fields["encode_vars"] = ev
	}
	if ec, ok := p.sum(MetricEncodeClauses); ok {
		fields["encode_clauses"] = ec
	}
	// Seed-space progress, when an insight tracker publishes it: the
	// certified rank over its analytic ceiling, the surviving seed-space
	// exponent, and the DIP-rate ETA (absent until the first rank gain).
	if rank, ok := p.sum(MetricInsightRank); ok {
		target, _ := p.sum(MetricInsightRankTarget)
		line += fmt.Sprintf(" rank=%.0f/%.0f", rank, target)
		fields["rank"] = rank
		fields["rank_target"] = target
		if seeds, ok := p.sum(MetricInsightSeedsLog2); ok {
			line += fmt.Sprintf(" seeds=2^%.0f", seeds)
			fields["seeds_log2"] = seeds
		}
		if eta, ok := p.sum(MetricInsightETA); ok && rank < target {
			line += " eta=" + time.Duration(eta*float64(time.Second)).Round(time.Second).String()
			fields["eta_s"] = eta
		}
	}
	if p.jsonMode {
		ev := stream.Event{Type: stream.TypeDelta, Time: now, Data: fields}
		if b, err := json.Marshal(ev); err == nil {
			b = append(b, '\n')
			p.w.Write(b)
		}
	} else {
		fmt.Fprintln(p.w, line)
	}
	// The bus publish assigns a live sequence number when subscribers are
	// attached; Publish is nil-safe and drops the event otherwise. The
	// fields map is shared by the line, the bus, and the trace event —
	// none of them mutate it.
	p.bus.Publish(stream.TypeDelta, fields)
	p.tr.Emit(trace.Event{Type: "snapshot", Fields: fields})
}

// humanCount renders a count compactly (1234 -> "1.2k").
func humanCount(v float64) string {
	switch {
	case v >= 1e9:
		return strconv.FormatFloat(v/1e9, 'f', 1, 64) + "G"
	case v >= 1e6:
		return strconv.FormatFloat(v/1e6, 'f', 1, 64) + "M"
	case v >= 1e3:
		return strconv.FormatFloat(v/1e3, 'f', 1, 64) + "k"
	default:
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
}

// humanBytes renders a byte count in binary units.
func humanBytes(v uint64) string {
	switch {
	case v >= 1<<30:
		return strconv.FormatFloat(float64(v)/(1<<30), 'f', 1, 64) + "GiB"
	case v >= 1<<20:
		return strconv.FormatFloat(float64(v)/(1<<20), 'f', 1, 64) + "MiB"
	case v >= 1<<10:
		return strconv.FormatFloat(float64(v)/(1<<10), 'f', 1, 64) + "KiB"
	default:
		return strconv.FormatUint(v, 10) + "B"
	}
}

// ReadRSS returns the process resident set size in bytes, read from
// /proc/self/statm. ok is false when RSS sampling is unavailable —
// non-Linux platforms, restricted procfs, or malformed statm content —
// and callers omit the value rather than publishing a misleading one.
func ReadRSS() (rss uint64, ok bool) {
	return readRSSFrom("/proc/self/statm")
}

// readRSSFrom parses a statm-format file: whitespace-separated fields
// with resident pages second. Split out from ReadRSS so the degraded
// paths are unit-testable without faking a platform.
func readRSSFrom(path string) (rss uint64, ok bool) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, false
	}
	fields := strings.Fields(string(b))
	if len(fields) < 2 {
		return 0, false
	}
	pages, err := strconv.ParseUint(fields[1], 10, 64)
	if err != nil {
		return 0, false
	}
	return pages * uint64(os.Getpagesize()), true
}

// ProgressFlag is a flag.Value for -progress[=mode]: a bare -progress
// selects DefaultProgressInterval; -progress=5s selects 5 seconds;
// -progress=json emits one stream-schema delta event per line instead of
// the human text (optionally -progress=json,500ms for a custom cadence);
// -progress=false disables. The zero value means "not requested".
type ProgressFlag struct {
	Interval time.Duration
	// JSON selects the machine-readable delta-per-line mode (Progress.SetJSON).
	JSON bool
}

// String implements flag.Value.
func (f *ProgressFlag) String() string {
	if f == nil || f.Interval <= 0 {
		return ""
	}
	if f.JSON {
		return "json," + f.Interval.String()
	}
	return f.Interval.String()
}

// Set implements flag.Value.
func (f *ProgressFlag) Set(s string) error {
	switch s {
	case "", "true":
		f.Interval = DefaultProgressInterval
		return nil
	case "false":
		f.Interval = 0
		f.JSON = false
		return nil
	case "json":
		f.Interval = DefaultProgressInterval
		f.JSON = true
		return nil
	}
	if rest, ok := strings.CutPrefix(s, "json,"); ok {
		d, err := time.ParseDuration(rest)
		if err != nil {
			return fmt.Errorf("-progress=json,INTERVAL wants a duration (e.g. json,500ms): %w", err)
		}
		if d <= 0 {
			return fmt.Errorf("-progress interval must be positive")
		}
		f.Interval = d
		f.JSON = true
		return nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("-progress wants a duration (e.g. 5s) or json[,INTERVAL]: %w", err)
	}
	if d <= 0 {
		return fmt.Errorf("-progress interval must be positive")
	}
	f.Interval = d
	return nil
}

// IsBoolFlag marks the flag as usable without a value (flag package
// contract for -progress with no argument).
func (f *ProgressFlag) IsBoolFlag() bool { return true }
