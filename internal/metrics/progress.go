package metrics

import (
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"dynunlock/internal/trace"
)

// DefaultProgressInterval is the snapshot cadence selected by a bare
// -progress flag.
const DefaultProgressInterval = 2 * time.Second

// Progress periodically renders a one-line snapshot of the registry —
// DIP iterations, conflict and propagation rates, learnt-clause DB size,
// oracle scan cycles, RSS — to a writer (normally stderr) and emits the
// same snapshot as a "snapshot" trace event, so a JSONL trace artifact
// captures both stage spans and a time series of the run.
type Progress struct {
	reg      *Registry
	w        io.Writer
	tr       *trace.Tracer
	interval time.Duration

	stop     chan struct{}
	done     chan struct{}
	mu       sync.Mutex
	started  bool
	lastT    time.Time
	lastConf float64
	lastProp float64
}

// NewProgress builds a reporter over reg, emitting every interval to w
// (nil w discards the text line) and to tr (the nil tracer discards the
// snapshot events). Call Start to begin and Stop to end; Stop emits one
// final snapshot so short runs still record at least one sample.
func NewProgress(reg *Registry, interval time.Duration, w io.Writer, tr *trace.Tracer) *Progress {
	if interval <= 0 {
		interval = DefaultProgressInterval
	}
	if w == nil {
		w = io.Discard
	}
	return &Progress{
		reg:      reg,
		w:        w,
		tr:       tr,
		interval: interval,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the reporting goroutine. Nil-safe; starting twice is a
// no-op.
func (p *Progress) Start() {
	if p == nil {
		return
	}
	p.mu.Lock()
	if p.started {
		p.mu.Unlock()
		return
	}
	p.started = true
	p.lastT = time.Now()
	p.mu.Unlock()
	go p.run()
}

// Stop halts the reporter, emitting one final snapshot. Nil-safe;
// stopping an unstarted or already-stopped reporter is a no-op.
func (p *Progress) Stop() {
	if p == nil {
		return
	}
	p.mu.Lock()
	started := p.started
	p.started = false
	p.mu.Unlock()
	if !started {
		return
	}
	close(p.stop)
	<-p.done
}

func (p *Progress) run() {
	defer close(p.done)
	t := time.NewTicker(p.interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.emit()
		case <-p.stop:
			p.emit()
			return
		}
	}
}

// emit renders one snapshot line and trace event.
func (p *Progress) emit() {
	now := time.Now()
	sum := func(name string) float64 { v, _ := p.reg.Sum(name); return v }
	iters := sum(MetricAttackDIPs)
	conflicts := sum(MetricSatConflicts)
	props := sum(MetricSatPropagations)
	learntDB := sum(MetricSatLearntDB)
	cycles := sum(MetricOracleCycles)
	rss := ReadRSS()

	p.mu.Lock()
	dt := now.Sub(p.lastT).Seconds()
	var confRate, propRate float64
	if dt > 0 {
		confRate = (conflicts - p.lastConf) / dt
		propRate = (props - p.lastProp) / dt
	}
	p.lastT, p.lastConf, p.lastProp = now, conflicts, props
	p.mu.Unlock()

	fmt.Fprintf(p.w, "progress: iters=%.0f conflicts=%s (%s/s) props=%s (%s/s) learnt=%.0f cycles=%s rss=%s\n",
		iters, humanCount(conflicts), humanCount(confRate),
		humanCount(props), humanCount(propRate),
		learntDB, humanCount(cycles), humanBytes(rss))
	p.tr.Emit(trace.Event{Type: "snapshot", Fields: map[string]any{
		"iterations":      iters,
		"conflicts":       conflicts,
		"conflicts_per_s": confRate,
		"propagations":    props,
		"props_per_s":     propRate,
		"learnt_db":       learntDB,
		"oracle_cycles":   cycles,
		"rss_bytes":       rss,
	}})
}

// humanCount renders a count compactly (1234 -> "1.2k").
func humanCount(v float64) string {
	switch {
	case v >= 1e9:
		return strconv.FormatFloat(v/1e9, 'f', 1, 64) + "G"
	case v >= 1e6:
		return strconv.FormatFloat(v/1e6, 'f', 1, 64) + "M"
	case v >= 1e3:
		return strconv.FormatFloat(v/1e3, 'f', 1, 64) + "k"
	default:
		return strconv.FormatFloat(v, 'f', 0, 64)
	}
}

// humanBytes renders a byte count in binary units.
func humanBytes(v uint64) string {
	switch {
	case v >= 1<<30:
		return strconv.FormatFloat(float64(v)/(1<<30), 'f', 1, 64) + "GiB"
	case v >= 1<<20:
		return strconv.FormatFloat(float64(v)/(1<<20), 'f', 1, 64) + "MiB"
	case v >= 1<<10:
		return strconv.FormatFloat(float64(v)/(1<<10), 'f', 1, 64) + "KiB"
	default:
		return strconv.FormatUint(v, 10) + "B"
	}
}

// ReadRSS returns the process resident set size in bytes, read from
// /proc/self/statm where available (Linux) and falling back to the Go
// runtime's OS-reserved memory elsewhere.
func ReadRSS() uint64 {
	if b, err := os.ReadFile("/proc/self/statm"); err == nil {
		fields := strings.Fields(string(b))
		if len(fields) >= 2 {
			if pages, err := strconv.ParseUint(fields[1], 10, 64); err == nil {
				return pages * uint64(os.Getpagesize())
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Sys
}

// ProgressFlag is a flag.Value for -progress[=interval]: a bare -progress
// selects DefaultProgressInterval; -progress=5s selects 5 seconds;
// -progress=false disables. The zero value means "not requested".
type ProgressFlag struct {
	Interval time.Duration
}

// String implements flag.Value.
func (f *ProgressFlag) String() string {
	if f == nil || f.Interval <= 0 {
		return ""
	}
	return f.Interval.String()
}

// Set implements flag.Value.
func (f *ProgressFlag) Set(s string) error {
	switch s {
	case "", "true":
		f.Interval = DefaultProgressInterval
		return nil
	case "false":
		f.Interval = 0
		return nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("-progress wants a duration (e.g. 5s): %w", err)
	}
	if d <= 0 {
		return fmt.Errorf("-progress interval must be positive")
	}
	f.Interval = d
	return nil
}

// IsBoolFlag marks the flag as usable without a value (flag package
// contract for -progress with no argument).
func (f *ProgressFlag) IsBoolFlag() bool { return true }
