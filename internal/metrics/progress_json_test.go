package metrics

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"dynunlock/internal/stream"
)

// TestProgressJSONModeEmitsStreamDeltas pins the -progress=json satellite:
// each output line is the JSON envelope of a stream "delta" event, so
// headless logs and the SSE feed share one parser.
func TestProgressJSONModeEmitsStreamDeltas(t *testing.T) {
	r := NewRegistry()
	r.Counter(MetricAttackDIPs, "engine", "sequential").Add(12)
	r.Counter(MetricSatConflicts, "engine", "sequential").Add(345)
	r.Counter(MetricEncodeVars, "engine", "sequential").Add(1000)
	r.Counter(MetricEncodeClauses, "engine", "sequential").Add(4000)

	var buf bytes.Buffer
	p := NewProgress(r, time.Hour, &buf, nil)
	p.SetJSON(true)
	p.Start()
	p.Stop() // one final emit

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("want exactly one JSON line, got %d:\n%s", len(lines), buf.String())
	}
	ev, err := stream.ParseEvent([]byte(lines[0]))
	if err != nil {
		t.Fatalf("line does not parse as a stream event: %v\n%s", err, lines[0])
	}
	if ev.Type != stream.TypeDelta {
		t.Fatalf("line type = %q, want %q", ev.Type, stream.TypeDelta)
	}
	if ev.Seq != 0 {
		t.Errorf("stderr delta carries seq %d; only bus events are numbered", ev.Seq)
	}
	for field, want := range map[string]float64{
		"iterations":     12,
		"conflicts":      345,
		"encode_vars":    1000,
		"encode_clauses": 4000,
	} {
		if v, ok := ev.Data[field].(float64); !ok || v != want {
			t.Errorf("delta %s = %v, want %v", field, ev.Data[field], want)
		}
	}
	if strings.Contains(lines[0], "progress:") {
		t.Error("JSON mode still emits the human line")
	}
}

// TestProgressAttachStreamPublishesDeltas verifies the bus path: with a
// subscriber attached, each emit publishes one numbered delta event.
func TestProgressAttachStreamPublishesDeltas(t *testing.T) {
	r := NewRegistry()
	r.Counter(MetricAttackDIPs, "engine", "sequential").Add(3)
	bus := stream.NewBus()
	sub := bus.Subscribe(0)
	defer sub.Close()

	p := NewProgress(r, time.Hour, io.Discard, nil)
	p.AttachStream(bus)
	p.Start()
	p.Stop()

	ev, ok, _ := sub.Next(nil, 0)
	if !ok {
		t.Fatal("no delta published to the bus")
	}
	if ev.Type != stream.TypeDelta || ev.Seq != 1 {
		t.Fatalf("bus event = %+v, want delta seq 1", ev)
	}
	if v, _ := ev.Data["iterations"].(float64); v != 3 {
		t.Errorf("delta iterations = %v, want 3", ev.Data["iterations"])
	}
}

func TestProgressFlagJSONModes(t *testing.T) {
	var f ProgressFlag
	if err := f.Set("json"); err != nil {
		t.Fatal(err)
	}
	if !f.JSON || f.Interval != DefaultProgressInterval {
		t.Errorf("Set(json) = %+v", f)
	}
	if got := f.String(); got != "json,"+DefaultProgressInterval.String() {
		t.Errorf("String() = %q", got)
	}

	f = ProgressFlag{}
	if err := f.Set("json,250ms"); err != nil {
		t.Fatal(err)
	}
	if !f.JSON || f.Interval != 250*time.Millisecond {
		t.Errorf("Set(json,250ms) = %+v", f)
	}

	for _, bad := range []string{"json,", "json,nope", "json,-1s", "jsonx"} {
		f = ProgressFlag{}
		if err := f.Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}

	f = ProgressFlag{}
	if err := f.Set("json"); err != nil {
		t.Fatal(err)
	}
	if err := f.Set("false"); err != nil {
		t.Fatal(err)
	}
	if f.JSON || f.Interval != 0 {
		t.Errorf("Set(false) did not clear JSON mode: %+v", f)
	}
}
