package metrics

import (
	"bytes"
	"flag"
	"strings"
	"testing"
	"time"

	"dynunlock/internal/trace"
)

func TestProgressEmitsLineAndSnapshotEvent(t *testing.T) {
	r := NewRegistry()
	r.Counter(MetricAttackDIPs).Add(3)
	r.Counter(MetricSatConflicts).Add(1000)
	r.Counter(MetricSatPropagations).Add(50000)
	r.Gauge(MetricSatLearntDB).Set(77)
	r.Counter(MetricOracleCycles).Add(4242)

	var buf bytes.Buffer
	col := trace.NewCollector()
	p := NewProgress(r, time.Hour, &buf, trace.New(col))
	p.Start()
	p.Stop() // Stop emits a final snapshot even before the first tick.
	p.Stop() // idempotent

	line := buf.String()
	for _, want := range []string{"progress:", "iters=3", "conflicts=1.0k", "learnt=77", "cycles=4.2k", "rss="} {
		if !strings.Contains(line, want) {
			t.Errorf("progress line missing %q: %q", want, line)
		}
	}
	evs := col.Events()
	if len(evs) != 1 || evs[0].Type != "snapshot" {
		t.Fatalf("want one snapshot event, got %+v", evs)
	}
	f := evs[0].Fields
	if f["iterations"].(float64) != 3 || f["conflicts"].(float64) != 1000 {
		t.Fatalf("snapshot fields wrong: %v", f)
	}
	if f["rss_bytes"].(uint64) == 0 {
		t.Fatal("snapshot must sample RSS")
	}
}

func TestProgressTicks(t *testing.T) {
	r := NewRegistry()
	var buf bytes.Buffer
	p := NewProgress(r, 10*time.Millisecond, &buf, nil)
	p.Start()
	time.Sleep(35 * time.Millisecond)
	p.Stop()
	if n := strings.Count(buf.String(), "progress:"); n < 2 {
		t.Fatalf("want >= 2 ticks, got %d: %q", n, buf.String())
	}
}

func TestProgressNilSafety(t *testing.T) {
	var p *Progress
	p.Start()
	p.Stop()
	// A reporter over a nil registry and nil tracer still runs.
	q := NewProgress(nil, time.Hour, nil, nil)
	q.Start()
	q.Stop()
}

func TestProgressFlag(t *testing.T) {
	var f ProgressFlag
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.Var(&f, "progress", "")
	if err := fs.Parse([]string{"-progress"}); err != nil {
		t.Fatal(err)
	}
	if f.Interval != DefaultProgressInterval {
		t.Fatalf("bare -progress interval = %v", f.Interval)
	}
	f = ProgressFlag{}
	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	fs.Var(&f, "progress", "")
	if err := fs.Parse([]string{"-progress=250ms"}); err != nil {
		t.Fatal(err)
	}
	if f.Interval != 250*time.Millisecond {
		t.Fatalf("-progress=250ms interval = %v", f.Interval)
	}
	if err := f.Set("nonsense"); err == nil {
		t.Fatal("want error for bad duration")
	}
	if !f.IsBoolFlag() {
		t.Fatal("must be a bool flag")
	}
}

func TestReadRSS(t *testing.T) {
	if ReadRSS() == 0 {
		t.Fatal("RSS must be nonzero")
	}
}

func TestHumanFormats(t *testing.T) {
	if got := humanCount(1234567); got != "1.2M" {
		t.Fatalf("humanCount = %q", got)
	}
	if got := humanBytes(3 << 20); got != "3.0MiB" {
		t.Fatalf("humanBytes = %q", got)
	}
}
