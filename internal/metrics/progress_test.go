package metrics

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dynunlock/internal/trace"
)

func TestProgressEmitsLineAndSnapshotEvent(t *testing.T) {
	r := NewRegistry()
	r.Counter(MetricAttackDIPs).Add(3)
	r.Counter(MetricSatConflicts).Add(1000)
	r.Counter(MetricSatPropagations).Add(50000)
	r.Gauge(MetricSatLearntDB).Set(77)
	r.Counter(MetricOracleCycles).Add(4242)

	var buf bytes.Buffer
	col := trace.NewCollector()
	p := NewProgress(r, time.Hour, &buf, trace.New(col))
	p.Start()
	p.Stop() // Stop emits a final snapshot even before the first tick.
	p.Stop() // idempotent

	line := buf.String()
	for _, want := range []string{"progress:", "iters=3", "conflicts=1.0k", "learnt=77", "cycles=4.2k", "rss="} {
		if !strings.Contains(line, want) {
			t.Errorf("progress line missing %q: %q", want, line)
		}
	}
	evs := col.Events()
	if len(evs) != 1 || evs[0].Type != "snapshot" {
		t.Fatalf("want one snapshot event, got %+v", evs)
	}
	f := evs[0].Fields
	if f["iterations"].(float64) != 3 || f["conflicts"].(float64) != 1000 {
		t.Fatalf("snapshot fields wrong: %v", f)
	}
	if f["rss_bytes"].(uint64) == 0 {
		t.Fatal("snapshot must sample RSS")
	}
}

func TestProgressTicks(t *testing.T) {
	r := NewRegistry()
	var buf bytes.Buffer
	p := NewProgress(r, 10*time.Millisecond, &buf, nil)
	p.Start()
	time.Sleep(35 * time.Millisecond)
	p.Stop()
	if n := strings.Count(buf.String(), "progress:"); n < 2 {
		t.Fatalf("want >= 2 ticks, got %d: %q", n, buf.String())
	}
}

func TestProgressNilSafety(t *testing.T) {
	var p *Progress
	p.Start()
	p.Stop()
	// A reporter over a nil registry and nil tracer still runs.
	q := NewProgress(nil, time.Hour, nil, nil)
	q.Start()
	q.Stop()
}

func TestProgressFlag(t *testing.T) {
	var f ProgressFlag
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.Var(&f, "progress", "")
	if err := fs.Parse([]string{"-progress"}); err != nil {
		t.Fatal(err)
	}
	if f.Interval != DefaultProgressInterval {
		t.Fatalf("bare -progress interval = %v", f.Interval)
	}
	f = ProgressFlag{}
	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	fs.Var(&f, "progress", "")
	if err := fs.Parse([]string{"-progress=250ms"}); err != nil {
		t.Fatal(err)
	}
	if f.Interval != 250*time.Millisecond {
		t.Fatalf("-progress=250ms interval = %v", f.Interval)
	}
	if err := f.Set("nonsense"); err == nil {
		t.Fatal("want error for bad duration")
	}
	if !f.IsBoolFlag() {
		t.Fatal("must be a bool flag")
	}
}

func TestReadRSS(t *testing.T) {
	// On Linux procfs is available; elsewhere the call must report
	// unavailability rather than a zero value.
	if rss, ok := ReadRSS(); ok && rss == 0 {
		t.Fatal("available RSS must be nonzero")
	}
}

func TestReadRSSFromDegradesGracefully(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	// Missing file: the non-Linux / restricted-procfs case.
	if _, ok := readRSSFrom(filepath.Join(dir, "absent")); ok {
		t.Fatal("missing statm must report unavailable")
	}
	// Truncated and malformed content must not be mistaken for data.
	if _, ok := readRSSFrom(write("short", "12345")); ok {
		t.Fatal("one-field statm must report unavailable")
	}
	if _, ok := readRSSFrom(write("garbled", "12345 notanumber 7")); ok {
		t.Fatal("non-numeric resident field must report unavailable")
	}
	// Well-formed content converts pages to bytes.
	rss, ok := readRSSFrom(write("good", "9999 123 45"))
	if !ok || rss != 123*uint64(os.Getpagesize()) {
		t.Fatalf("readRSSFrom = %d, %v; want %d pages in bytes", rss, ok, 123)
	}
}

// TestProgressOmitsRSSWhenUnavailable pins the degraded rendering: no
// "rss=" token in the line and no rss_bytes snapshot field. The emit
// path is exercised indirectly by rendering with a registry only — the
// rss presence branch is driven by ReadRSS, so this asserts both
// renderings stay consistent with its availability report.
func TestProgressOmitsRSSWhenUnavailable(t *testing.T) {
	r := NewRegistry()
	var buf bytes.Buffer
	col := trace.NewCollector()
	p := NewProgress(r, time.Hour, &buf, trace.New(col))
	p.Start()
	p.Stop()
	_, avail := ReadRSS()
	gotLine := strings.Contains(buf.String(), "rss=")
	_, gotField := col.Events()[0].Fields["rss_bytes"]
	if gotLine != avail || gotField != avail {
		t.Fatalf("rss availability %v but line-has-rss=%v field-has-rss=%v",
			avail, gotLine, gotField)
	}
}

// TestProgressRendersInsightGauges pins the extended line: rank, seed
// space, and ETA appear once the insight gauges exist and stay absent
// otherwise (the plain registry case is covered above — those lines
// contain no "rank=").
func TestProgressRendersInsightGauges(t *testing.T) {
	r := NewRegistry()
	r.Gauge(MetricInsightRank).Set(5)
	r.Gauge(MetricInsightRankTarget).Set(12)
	r.Gauge(MetricInsightSeedsLog2).Set(123)
	r.Gauge(MetricInsightETA).Set(90)
	var buf bytes.Buffer
	col := trace.NewCollector()
	p := NewProgress(r, time.Hour, &buf, trace.New(col))
	p.Start()
	p.Stop()
	line := buf.String()
	for _, want := range []string{"rank=5/12", "seeds=2^123", "eta=1m30s"} {
		if !strings.Contains(line, want) {
			t.Errorf("progress line missing %q: %q", want, line)
		}
	}
	f := col.Events()[0].Fields
	if f["rank"].(float64) != 5 || f["seeds_log2"].(float64) != 123 || f["eta_s"].(float64) != 90 {
		t.Fatalf("snapshot insight fields wrong: %v", f)
	}
	// At target rank the ETA token disappears (the run is rank-complete).
	r.Gauge(MetricInsightRank).Set(12)
	buf.Reset()
	q := NewProgress(r, time.Hour, &buf, nil)
	q.Start()
	q.Stop()
	if strings.Contains(buf.String(), "eta=") {
		t.Fatalf("eta must vanish at target rank: %q", buf.String())
	}
}

func TestHumanFormats(t *testing.T) {
	if got := humanCount(1234567); got != "1.2M" {
		t.Fatalf("humanCount = %q", got)
	}
	if got := humanBytes(3 << 20); got != "3.0MiB" {
		t.Fatalf("humanBytes = %q", got)
	}
}
