package metrics

import (
	"bufio"
	"io"
	"net/http"
	"sort"
	"strconv"
)

// WritePrometheus writes every family in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, children sorted by
// label set, `# HELP`/`# TYPE` headers, cumulative `_bucket`/`_sum`/
// `_count` series for histograms. Values are a point-in-time atomic read
// per series; a scrape during a run observes the live counters.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make(map[string]*family, len(names))
	for _, n := range names {
		fams[n] = r.families[n]
	}
	r.mu.RUnlock()
	sort.Strings(names)

	for _, name := range names {
		f := fams[name]
		f.mu.Lock()
		help := f.help
		f.mu.Unlock()
		if help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(name)
			bw.WriteByte(' ')
			bw.WriteString(help)
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(name)
		bw.WriteByte(' ')
		bw.WriteString(f.kind.String())
		bw.WriteByte('\n')
		for _, c := range f.sortedChildren() {
			switch f.kind {
			case KindCounter:
				writeSeries(bw, name, c.key, "", strconv.FormatUint(c.ctr.Value(), 10))
			case KindGauge:
				writeSeries(bw, name, c.key, "", formatFloat(c.gauge.Value()))
			case KindHistogram:
				cum := uint64(0)
				for i, bound := range f.bounds {
					cum += c.hist.buckets[i].Load()
					writeSeries(bw, name+"_bucket", c.key, `le="`+formatFloat(bound)+`"`,
						strconv.FormatUint(cum, 10))
				}
				cum += c.hist.buckets[len(f.bounds)].Load()
				writeSeries(bw, name+"_bucket", c.key, `le="+Inf"`, strconv.FormatUint(cum, 10))
				writeSeries(bw, name+"_sum", c.key, "", formatFloat(c.hist.Sum()))
				writeSeries(bw, name+"_count", c.key, "", strconv.FormatUint(c.hist.Count(), 10))
			}
		}
	}
	return bw.Flush()
}

// writeSeries writes one `name{labels,extra} value` line; labels and
// extra may each be empty.
func writeSeries(bw *bufio.Writer, name, labels, extra, value string) {
	bw.WriteString(name)
	if labels != "" || extra != "" {
		bw.WriteByte('{')
		bw.WriteString(labels)
		if labels != "" && extra != "" {
			bw.WriteByte(',')
		}
		bw.WriteString(extra)
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(value)
	bw.WriteByte('\n')
}

// formatFloat renders a float at full precision in Go's shortest 'g'
// form: small integral values stay plain ("3"), very large or small
// magnitudes use exponent notation ("9.9e+07"), both of which the
// Prometheus text format accepts.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// PrometheusHandler serves the registry in text exposition format.
func PrometheusHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
