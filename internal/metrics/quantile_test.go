package metrics

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"dynunlock/internal/trace"
)

// TestQuantileFromBuckets pins the interpolation on hand-checkable counts:
// linear within the bucket holding the target rank, overflow clamped to
// the last finite bound, degenerate inputs returning 0.
func TestQuantileFromBuckets(t *testing.T) {
	bounds := []float64{1, 2, 4}
	cases := []struct {
		name   string
		counts []uint64
		q      float64
		want   float64
	}{
		{"median at first bucket edge", []uint64{2, 2, 0, 0}, 0.50, 1.0},
		{"interpolates inside second bucket", []uint64{2, 2, 0, 0}, 0.75, 1.5},
		{"first bucket interpolates from zero", []uint64{4, 0, 0, 0}, 0.50, 0.5},
		{"overflow clamps to last finite bound", []uint64{0, 0, 0, 4}, 0.99, 4.0},
		{"q clamped above", []uint64{2, 2, 0, 0}, 1.5, 2.0},
		{"q clamped below", []uint64{2, 2, 0, 0}, -1, 0.0},
		{"no observations", []uint64{0, 0, 0, 0}, 0.5, 0},
	}
	for _, c := range cases {
		if got := quantileFromBuckets(bounds, c.counts, c.q); got != c.want {
			t.Errorf("%s: quantile(%v) = %v, want %v", c.name, c.q, got, c.want)
		}
	}
	if got := quantileFromBuckets(nil, nil, 0.5); got != 0 {
		t.Errorf("empty bounds: got %v, want 0", got)
	}
}

// TestHistogramQuantile exercises the live-histogram path end to end,
// including nil-safety.
func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", []float64{0.001, 0.01, 0.1, 1})
	for i := 0; i < 9; i++ {
		h.Observe(0.005) // second bucket (0.001, 0.01]
	}
	h.Observe(0.5) // fourth bucket (0.1, 1]
	p50 := h.Quantile(0.50)
	if p50 <= 0.001 || p50 > 0.01 {
		t.Errorf("p50 = %v, want inside the (0.001, 0.01] bucket", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 <= 0.1 || p99 > 1 {
		t.Errorf("p99 = %v, want inside the (0.1, 1] bucket", p99)
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram quantile = %v, want 0", got)
	}
}

// TestQuantileOfMergesLabeledChildren checks the family-level estimate
// merges per-bucket counts across labeled children before interpolating.
func TestQuantileOfMergesLabeledChildren(t *testing.T) {
	r := NewRegistry()
	bounds := []float64{1, 2, 4}
	a := r.Histogram("fam_seconds", bounds, "engine", "sequential")
	b := r.Histogram("fam_seconds", bounds, "engine", "portfolio")
	// Child a: 2 samples in (0,1]; child b: 2 samples in (1,2]. Merged
	// median sits at the first bucket's upper edge.
	a.Observe(0.5)
	a.Observe(0.5)
	b.Observe(1.5)
	b.Observe(1.5)
	got, ok := r.QuantileOf("fam_seconds", 0.5)
	if !ok || got != 1.0 {
		t.Errorf("merged p50 = %v ok=%v, want 1.0", got, ok)
	}
	if _, ok := r.QuantileOf("absent", 0.5); ok {
		t.Error("QuantileOf on an absent family reported ok")
	}
	r.Counter("a_counter").Add(1)
	if _, ok := r.QuantileOf("a_counter", 0.5); ok {
		t.Error("QuantileOf on a counter family reported ok")
	}
}

// TestSnapshotCarriesPercentiles checks /debug/vars' histogram objects
// include the estimated p50/p95/p99 alongside the raw buckets.
func TestSnapshotCarriesPercentiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("snap_seconds", []float64{1, 2, 4})
	h.Observe(1.5)
	snap := r.Snapshot()
	obj, ok := snap["snap_seconds"].(map[string]any)
	if !ok {
		t.Fatalf("snapshot has no histogram object: %+v", snap)
	}
	for _, k := range []string{"p50", "p95", "p99"} {
		v, ok := obj[k].(float64)
		if !ok {
			t.Errorf("snapshot histogram missing %s: %+v", k, obj)
			continue
		}
		if v <= 1 || v > 2 {
			t.Errorf("%s = %v, want inside the (1, 2] bucket", k, v)
		}
	}
}

// TestProgressLineSolvePercentiles checks the -progress line (and its
// snapshot event) gains the DIP solve-latency percentiles once a solve has
// been observed, and omits them before.
func TestProgressLineSolvePercentiles(t *testing.T) {
	r := NewRegistry()
	var buf bytes.Buffer
	col := trace.NewCollector()
	p := NewProgress(r, time.Hour, &buf, trace.New(col))
	p.Start()
	p.Stop()
	if strings.Contains(buf.String(), "solve_p50=") {
		t.Errorf("percentiles shown before any solve: %q", buf.String())
	}

	h := r.Histogram(MetricAttackDIPSolveSec, ExpBuckets(0.001, 2, 17), "engine", "sequential")
	for i := 0; i < 10; i++ {
		h.Observe(0.003)
	}
	buf.Reset()
	p2 := NewProgress(r, time.Hour, &buf, trace.New(col))
	p2.Start()
	p2.Stop()
	line := buf.String()
	for _, want := range []string{"solve_p50=", "p95=", "p99="} {
		if !strings.Contains(line, want) {
			t.Errorf("progress line missing %q: %q", want, line)
		}
	}
	evs := col.Events()
	f := evs[len(evs)-1].Fields
	p50, ok := f["solve_p50_s"].(float64)
	if !ok || p50 <= 0.002 || p50 > 0.004 {
		t.Errorf("snapshot solve_p50_s = %v (ok=%v), want ~0.003 (inside its bucket)", f["solve_p50_s"], ok)
	}
	if _, ok := f["solve_p99_s"].(float64); !ok {
		t.Errorf("snapshot missing solve_p99_s: %+v", f)
	}
}
