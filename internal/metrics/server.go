package metrics

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"sync"
	"time"

	"dynunlock/internal/stream"
)

// Server exposes a registry over HTTP on its own mux (never the default
// mux, so tests and embedding processes can run several servers):
//
//	/metrics       Prometheus text exposition (PrometheusHandler)
//	/debug/vars    expvar-style JSON: {"cmdline", "memstats", "dynunlock"}
//	/debug/pprof/  the standard net/http/pprof profile endpoints
//	/events        live SSE event feed (ServeBus only; see sse.go)
//	/live          in-browser live dashboard (ServeBus only; see live.go)
//
// Each scrape of /metrics or /debug/vars first refreshes the process
// gauges (RSS, heap, goroutines) so they are sampled lazily instead of by
// a background poller.
type Server struct {
	reg   *Registry
	bus   *stream.Bus
	ln    net.Listener
	srv   *http.Server
	mux   *http.ServeMux
	start time.Time
	// handlerDelay, when non-zero, sleeps each request handler before it
	// writes — a test hook for exercising Shutdown's in-flight draining.
	handlerDelay time.Duration
	// keepAlive is the idle interval between SSE keep-alive comments
	// (defaultKeepAlive when zero); tests shrink it.
	keepAlive time.Duration

	// SSE subscribers live here so Shutdown can flush and close them: the
	// http.Server drain alone would wait forever on an open event stream.
	sseMu    sync.Mutex
	sseSubs  map[*stream.Subscriber]struct{}
	draining bool
}

// Serve starts an HTTP server on addr (e.g. ":9090", "127.0.0.1:0") and
// returns once the listener is bound; requests are served on a background
// goroutine until Close. Serve is ServeBus without an event stream:
// /events and /live respond 404.
func Serve(addr string, r *Registry) (*Server, error) {
	return ServeBus(addr, r, nil)
}

// ServeBus is Serve with a live event bus attached: /events streams the
// bus over SSE (with Last-Event-ID resume) and /live serves the
// self-contained dashboard. A nil bus degrades to plain Serve.
func ServeBus(addr string, r *Registry, bus *stream.Bus) (*Server, error) {
	if r == nil {
		return nil, fmt.Errorf("metrics: nil registry")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	s := &Server{reg: r, bus: bus, ln: ln, start: time.Now(), sseSubs: make(map[*stream.Subscriber]struct{})}

	mux := http.NewServeMux()
	mux.Handle("/metrics", http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if s.handlerDelay > 0 {
			time.Sleep(s.handlerDelay)
		}
		s.refreshProcessGauges()
		PrometheusHandler(r).ServeHTTP(w, req)
	}))
	mux.HandleFunc("/debug/vars", s.serveVars)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/events", s.serveEvents)
	mux.HandleFunc("/live", s.serveLive)
	mux.HandleFunc("/healthz", s.serveHealthz)
	mux.HandleFunc("/readyz", s.serveReadyz)

	s.mux = mux
	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.srv.Serve(ln)
	return s, nil
}

// Handle registers an additional handler on the server's mux —
// embedding services (dynunlockd's /jobs API) extend the telemetry
// server instead of binding a second port. Registering a pattern the
// server already serves panics, like http.ServeMux.
func (s *Server) Handle(pattern string, h http.Handler) {
	s.mux.Handle(pattern, h)
}

// serveHealthz is process liveness: 200 as long as the server answers.
func (s *Server) serveHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "ok uptime=%s\n", time.Since(s.start).Round(time.Second))
}

// serveReadyz is admission readiness: 503 once draining has begun (the
// SIGTERM window in which load balancers must stop routing new work),
// 200 otherwise. Embedding daemons layer their own readiness on top via
// SetNotReady-style wrappers if needed; the drain flag is the built-in
// signal.
func (s *Server) serveReadyz(w http.ResponseWriter, _ *http.Request) {
	s.sseMu.Lock()
	draining := s.draining
	s.sseMu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// SetDraining marks the server not-ready ahead of Shutdown: /readyz
// flips to 503 and new /events subscriptions are refused, while already
// attached SSE streams keep flowing until Shutdown flushes and closes
// them. Embedding daemons call this at the top of their drain sequence
// so load balancers stop routing work before in-flight jobs finish.
func (s *Server) SetDraining() {
	s.sseMu.Lock()
	s.draining = true
	s.sseMu.Unlock()
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the server down immediately, aborting in-flight scrapes
// and event streams. Prefer Shutdown on clean exits so a scrape racing
// process exit still gets its response.
func (s *Server) Close() error {
	s.closeSSESubscribers()
	return s.srv.Close()
}

// Shutdown drains the server gracefully: active SSE subscribers are
// flushed and closed (each stream delivers its buffered events plus one
// final snapshot frame before ending — see serveEvents), the listener
// stops accepting new connections, and in-flight requests get up to
// timeout to complete before the remaining connections are closed. A
// non-positive timeout means immediate Close. Returns nil when every
// request drained in time; context.DeadlineExceeded when the timeout cut
// connections off.
func (s *Server) Shutdown(timeout time.Duration) error {
	if timeout <= 0 {
		return s.Close()
	}
	// An open event stream never finishes on its own, so the plain
	// http.Server drain would always hit the timeout with a subscriber
	// attached; closing the subscribers first lets their handlers finish
	// cleanly inside the drain window.
	s.closeSSESubscribers()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		// Shutdown leaves the hung connections open; close them so the
		// process can exit.
		s.srv.Close()
	}
	return err
}

// closeSSESubscribers detaches every live SSE subscriber and marks the
// server draining so new /events connections are refused.
func (s *Server) closeSSESubscribers() {
	s.sseMu.Lock()
	s.draining = true
	subs := make([]*stream.Subscriber, 0, len(s.sseSubs))
	for sub := range s.sseSubs {
		subs = append(subs, sub)
	}
	s.sseMu.Unlock()
	for _, sub := range subs {
		sub.Close()
	}
}

// trackSSE registers a live subscriber for drain; it reports false (and
// the caller refuses the connection) once draining has begun.
func (s *Server) trackSSE(sub *stream.Subscriber) bool {
	s.sseMu.Lock()
	defer s.sseMu.Unlock()
	if s.draining {
		return false
	}
	s.sseSubs[sub] = struct{}{}
	return true
}

func (s *Server) untrackSSE(sub *stream.Subscriber) {
	s.sseMu.Lock()
	delete(s.sseSubs, sub)
	s.sseMu.Unlock()
}

// refreshProcessGauges samples process-level runtime state into the
// registry so scrapes always carry fresh values.
func (s *Server) refreshProcessGauges() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.reg.Gauge(MetricProcessHeap).Set(float64(ms.HeapAlloc))
	s.reg.Gauge(MetricGoroutines).Set(float64(runtime.NumGoroutine()))
	s.reg.Gauge(MetricGoroutinesBare).Set(float64(runtime.NumGoroutine()))
	s.reg.Gauge(MetricProcessUptime).Set(time.Since(s.start).Seconds())
	if rss, ok := ReadRSS(); ok {
		s.reg.Gauge(MetricProcessRSS).Set(float64(rss))
	}
}

// serveVars renders the expvar-compatible JSON document. It mirrors the
// stdlib expvar handler's layout (cmdline, memstats) and adds the
// registry snapshot under "dynunlock", but serves from this server's own
// registry instead of the process-global expvar map, so multiple
// registries never collide.
func (s *Server) serveVars(w http.ResponseWriter, _ *http.Request) {
	s.refreshProcessGauges()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	doc := map[string]any{
		"cmdline":   os.Args,
		"memstats":  ms,
		"dynunlock": s.reg.Snapshot(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc)
}
