package metrics

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestServerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter(MetricAttackDIPs, "engine", "sequential").Add(9)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// /metrics parses and carries the registered and process series.
	text := string(get(t, base+"/metrics"))
	names := parseProm(t, text)
	for _, want := range []string{MetricAttackDIPs, MetricProcessRSS, MetricGoroutines} {
		if !names[want] {
			t.Errorf("/metrics missing %s:\n%s", want, text)
		}
	}
	if !strings.Contains(text, MetricAttackDIPs+`{engine="sequential"} 9`) {
		t.Errorf("/metrics sample wrong:\n%s", text)
	}

	// /debug/vars is JSON with cmdline, memstats, and the snapshot.
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(get(t, base+"/debug/vars"), &doc); err != nil {
		t.Fatalf("/debug/vars does not parse: %v", err)
	}
	for _, key := range []string{"cmdline", "memstats", "dynunlock"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("/debug/vars missing %q", key)
		}
	}
	var snap map[string]any
	if err := json.Unmarshal(doc["dynunlock"], &snap); err != nil {
		t.Fatal(err)
	}
	if v, ok := snap[MetricAttackDIPs+`{engine="sequential"}`]; !ok || v.(float64) != 9 {
		t.Errorf("snapshot series wrong: %v", snap)
	}

	// /debug/pprof/ serves the index.
	if body := string(get(t, base+"/debug/pprof/")); !strings.Contains(body, "goroutine") {
		t.Error("/debug/pprof/ index missing profiles")
	}

	// A second scrape while counters moved observes the new value (the
	// live-update property CI asserts end to end).
	r.Counter(MetricAttackDIPs, "engine", "sequential").Add(1)
	if text := string(get(t, base+"/metrics")); !strings.Contains(text, `{engine="sequential"} 10`) {
		t.Errorf("scrape did not observe live update:\n%s", text)
	}
}
