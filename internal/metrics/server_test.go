package metrics

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestServerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter(MetricAttackDIPs, "engine", "sequential").Add(9)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// /metrics parses and carries the registered and process series.
	text := string(get(t, base+"/metrics"))
	names := parseProm(t, text)
	for _, want := range []string{MetricAttackDIPs, MetricProcessRSS, MetricGoroutines} {
		if !names[want] {
			t.Errorf("/metrics missing %s:\n%s", want, text)
		}
	}
	if !strings.Contains(text, MetricAttackDIPs+`{engine="sequential"} 9`) {
		t.Errorf("/metrics sample wrong:\n%s", text)
	}

	// /debug/vars is JSON with cmdline, memstats, and the snapshot.
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(get(t, base+"/debug/vars"), &doc); err != nil {
		t.Fatalf("/debug/vars does not parse: %v", err)
	}
	for _, key := range []string{"cmdline", "memstats", "dynunlock"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("/debug/vars missing %q", key)
		}
	}
	var snap map[string]any
	if err := json.Unmarshal(doc["dynunlock"], &snap); err != nil {
		t.Fatal(err)
	}
	if v, ok := snap[MetricAttackDIPs+`{engine="sequential"}`]; !ok || v.(float64) != 9 {
		t.Errorf("snapshot series wrong: %v", snap)
	}

	// /debug/pprof/ serves the index.
	if body := string(get(t, base+"/debug/pprof/")); !strings.Contains(body, "goroutine") {
		t.Error("/debug/pprof/ index missing profiles")
	}

	// A second scrape while counters moved observes the new value (the
	// live-update property CI asserts end to end).
	r.Counter(MetricAttackDIPs, "engine", "sequential").Add(1)
	if text := string(get(t, base+"/metrics")); !strings.Contains(text, `{engine="sequential"} 10`) {
		t.Errorf("scrape did not observe live update:\n%s", text)
	}
}

func TestShutdownDrainsInflightScrape(t *testing.T) {
	r := NewRegistry()
	r.Counter(MetricAttackDIPs, "engine", "sequential").Add(3)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	srv.handlerDelay = 200 * time.Millisecond
	base := "http://" + srv.Addr()

	// Put a slow scrape in flight, then shut down while it is sleeping.
	type scrape struct {
		body string
		err  error
	}
	ch := make(chan scrape, 1)
	go func() {
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			ch <- scrape{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		ch <- scrape{body: string(b), err: err}
	}()
	time.Sleep(50 * time.Millisecond) // let the request reach the handler

	if err := srv.Shutdown(2 * time.Second); err != nil {
		t.Fatalf("Shutdown did not drain cleanly: %v", err)
	}

	// The in-flight scrape completed with a full response body.
	got := <-ch
	if got.err != nil {
		t.Fatalf("in-flight scrape aborted by shutdown: %v", got.err)
	}
	if !strings.Contains(got.body, MetricAttackDIPs+`{engine="sequential"} 3`) {
		t.Errorf("drained scrape body incomplete:\n%s", got.body)
	}

	// New connections are refused after shutdown.
	if _, err := http.Get(base + "/metrics"); err == nil {
		t.Error("server still accepting connections after Shutdown")
	}
}

func TestShutdownTimeoutCutsHungRequests(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	srv.handlerDelay = 5 * time.Second
	ch := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + srv.Addr() + "/metrics")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		ch <- err
	}()
	time.Sleep(50 * time.Millisecond)

	start := time.Now()
	err = srv.Shutdown(100 * time.Millisecond)
	if err == nil {
		t.Fatal("Shutdown returned nil despite a hung request")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown error = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Shutdown took %v, should give up at the timeout", elapsed)
	}
	<-ch // the hung request errors once its connection is closed
}
