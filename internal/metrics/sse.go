package metrics

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"dynunlock/internal/stream"
)

// defaultKeepAlive is the idle interval between SSE comment frames; it
// keeps proxies from reaping quiet connections between delta samples.
const defaultKeepAlive = 15 * time.Second

// serveEvents streams the bus over Server-Sent Events. Frame order per
// connection:
//
//  1. "hello"    — synthesized (no id line): proto version, the bus's
//     last sequence number, and resume/gap status.
//  2. "snapshot" — synthesized: the full registry state at attach, so a
//     client starts from absolute totals before applying deltas.
//  3. bus events — each framed with its sequence number as the SSE id,
//     so a reconnecting client resumes via Last-Event-ID.
//  4. on graceful drain (Server.Shutdown): buffered events flush, then
//     one final synthesized "snapshot" carries the terminal totals
//     (equal to sat.Stats — the PR3 flush guarantee), then the stream
//     ends with a closing comment reporting the exact dropped count.
//
// Idle periods are bridged with ": keep-alive" comments. Slow clients
// never block the attack: the subscriber's ring drops oldest.
//
// ?job=<id> narrows the stream to one daemon job: only envelopes tagged
// with that job id are forwarded (sequence numbers keep their global
// values, still strictly increasing within the filtered view), and both
// the connect and drain snapshots are restricted to series carrying the
// job label — so a filtered stream's final snapshot totals are exactly
// that job's metrics, matching its bundle's result.json.
func (s *Server) serveEvents(w http.ResponseWriter, req *http.Request) {
	if s.bus == nil {
		http.Error(w, "metrics: no event stream attached (started without ServeBus)", http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "metrics: streaming unsupported", http.StatusInternalServerError)
		return
	}
	job := req.URL.Query().Get("job")
	var last uint64
	if v := req.Header.Get("Last-Event-ID"); v != "" {
		last, _ = strconv.ParseUint(v, 10, 64)
	} else if v := req.URL.Query().Get("last-event-id"); v != "" {
		// EventSource cannot set the header on a fresh URL; curl-style
		// clients may prefer a query parameter.
		last, _ = strconv.ParseUint(v, 10, 64)
	}
	sub := s.bus.Subscribe(last)
	if !s.trackSSE(sub) {
		sub.Close()
		http.Error(w, "metrics: server draining", http.StatusServiceUnavailable)
		return
	}
	defer s.untrackSSE(sub)
	defer sub.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream; charset=utf-8")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	helloData := map[string]any{
		"proto":    stream.Proto,
		"last_seq": s.bus.LastSeq(),
		"resumed":  last > 0 && !sub.Gap(),
		"gap":      sub.Gap(),
	}
	if job != "" {
		helloData["job"] = job
	}
	hello := stream.Event{Type: stream.TypeHello, Job: job, Time: time.Now(), Data: helloData}
	if stream.WriteEvent(w, hello) != nil {
		return
	}
	if stream.WriteEvent(w, s.snapshotEvent(job)) != nil {
		return
	}
	fl.Flush()

	ka := s.keepAlive
	if ka <= 0 {
		ka = defaultKeepAlive
	}
	for {
		ev, ok, timedOut := sub.Next(req.Context(), ka)
		if timedOut {
			if stream.WriteComment(w, "keep-alive") != nil {
				return
			}
			fl.Flush()
			continue
		}
		if !ok {
			if req.Context().Err() == nil {
				// Graceful drain: the buffered events have all been
				// delivered; end on the terminal totals.
				stream.WriteEvent(w, s.snapshotEvent(job))
				stream.WriteComment(w, fmt.Sprintf("stream closed dropped=%d", sub.Dropped()))
				fl.Flush()
			}
			return
		}
		if job != "" && ev.Job != job {
			continue
		}
		if stream.WriteEvent(w, ev) != nil {
			return
		}
		fl.Flush()
	}
}

// snapshotEvent builds a synthesized registry snapshot (Seq 0: it is
// per-connection state, not part of the bus ordering). A non-empty job
// restricts it to series labeled job="<id>".
func (s *Server) snapshotEvent(job string) stream.Event {
	s.refreshProcessGauges()
	var snap map[string]any
	if job != "" {
		snap = s.reg.SnapshotLabeled("job", job)
	} else {
		snap = s.reg.Snapshot()
	}
	data := make(map[string]any, len(snap))
	for k, v := range snap {
		data[k] = v
	}
	return stream.Event{Type: stream.TypeSnapshot, Job: job, Time: time.Now(), Data: data}
}
