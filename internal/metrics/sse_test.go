package metrics

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"dynunlock/internal/stream"
)

// openEvents connects to /events and returns the response plus a stream
// decoder over the body. The caller owns resp.Body.
func openEvents(t *testing.T, ctx context.Context, url string) (*http.Response, *stream.Decoder) {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		resp.Body.Close()
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	return resp, stream.NewDecoder(resp.Body)
}

// next reads one event, failing the test on decode errors.
func next(t *testing.T, d *stream.Decoder) stream.Event {
	t.Helper()
	ev, err := d.Next()
	if err != nil {
		t.Fatalf("decoder: %v", err)
	}
	return ev
}

func TestEventsEndpointStreamsAndResumes(t *testing.T) {
	r := NewRegistry()
	r.Counter(MetricAttackDIPs, "engine", "sequential").Add(7)
	bus := stream.NewBus()
	srv, err := ServeBus("127.0.0.1:0", r, bus)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	ctx, cancel := context.WithCancel(context.Background())
	resp, dec := openEvents(t, ctx, base+"/events")
	defer resp.Body.Close()

	// Frame 1: hello (synthesized, no sequence number).
	hello := next(t, dec)
	if hello.Type != stream.TypeHello || hello.Seq != 0 {
		t.Fatalf("first frame = %+v, want hello with seq 0", hello)
	}
	if p, ok := hello.Data["proto"].(float64); !ok || int(p) != stream.Proto {
		t.Errorf("hello proto = %v, want %d", hello.Data["proto"], stream.Proto)
	}
	if resumed, _ := hello.Data["resumed"].(bool); resumed {
		t.Error("fresh connection claims resumed=true")
	}

	// Frame 2: full registry snapshot so clients start from absolute totals.
	snap := next(t, dec)
	if snap.Type != stream.TypeSnapshot || snap.Seq != 0 {
		t.Fatalf("second frame = %+v, want snapshot with seq 0", snap)
	}
	if v, ok := snap.Data[MetricAttackDIPs+`{engine="sequential"}`].(float64); !ok || v != 7 {
		t.Errorf("snapshot missing attack counter: %v", snap.Data)
	}

	// Live publishes arrive in order, numbered.
	for i := 1; i <= 5; i++ {
		bus.Publish(stream.TypeDelta, map[string]any{"iterations": float64(i)})
	}
	for i := 1; i <= 5; i++ {
		ev := next(t, dec)
		if ev.Type != stream.TypeDelta || ev.Seq != uint64(i) {
			t.Fatalf("event %d = %+v, want delta seq %d", i, ev, i)
		}
	}
	cancel()
	resp.Body.Close()

	// Reconnect with Last-Event-ID: only events after it replay.
	req, _ := http.NewRequest(http.MethodGet, base+"/events", nil)
	req.Header.Set("Last-Event-ID", "3")
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	dec2 := stream.NewDecoder(resp2.Body)
	hello2 := next(t, dec2)
	if hello2.Type != stream.TypeHello {
		t.Fatalf("resume first frame = %+v", hello2)
	}
	if resumed, _ := hello2.Data["resumed"].(bool); !resumed {
		t.Errorf("resume hello = %v, want resumed=true", hello2.Data)
	}
	if ls, _ := hello2.Data["last_seq"].(float64); ls != 5 {
		t.Errorf("resume hello last_seq = %v, want 5", hello2.Data["last_seq"])
	}
	if ev := next(t, dec2); ev.Type != stream.TypeSnapshot {
		t.Fatalf("resume second frame = %+v, want snapshot", ev)
	}
	for want := uint64(4); want <= 5; want++ {
		ev := next(t, dec2)
		if ev.Seq != want {
			t.Fatalf("resumed event seq = %d, want %d", ev.Seq, want)
		}
	}
}

func TestEventsQueryParamResume(t *testing.T) {
	r := NewRegistry()
	bus := stream.NewBus()
	srv, err := ServeBus("127.0.0.1:0", r, bus)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// Seed the ring: sequence numbers only advance with a subscriber
	// attached, so hold one open while publishing.
	ctx, cancel := context.WithCancel(context.Background())
	resp, dec := openEvents(t, ctx, base+"/events")
	next(t, dec) // hello
	next(t, dec) // snapshot
	for i := 0; i < 3; i++ {
		bus.Publish(stream.TypeDelta, map[string]any{"i": float64(i)})
	}
	next(t, dec)
	next(t, dec)
	next(t, dec)
	cancel()
	resp.Body.Close()

	resp2, dec2 := openEvents(t, context.Background(), base+"/events?last-event-id=2")
	defer resp2.Body.Close()
	next(t, dec2) // hello
	next(t, dec2) // snapshot
	if ev := next(t, dec2); ev.Seq != 3 {
		t.Fatalf("query-param resume replayed seq %d, want 3", ev.Seq)
	}
}

func TestShutdownDrainsLiveSSESubscriber(t *testing.T) {
	r := NewRegistry()
	r.Counter(MetricSatConflicts, "engine", "sequential").Add(41)
	bus := stream.NewBus()
	srv, err := ServeBus("127.0.0.1:0", r, bus)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.Addr()

	resp, dec := openEvents(t, context.Background(), base+"/events")
	defer resp.Body.Close()
	next(t, dec) // hello
	next(t, dec) // snapshot

	bus.Publish(stream.TypeDelta, map[string]any{"conflicts": float64(41)})
	if ev := next(t, dec); ev.Type != stream.TypeDelta {
		t.Fatalf("pre-drain event = %+v", ev)
	}

	// The counter moves just before shutdown; the final snapshot must
	// carry the terminal total (the result.json equality CI asserts).
	r.Counter(MetricSatConflicts, "engine", "sequential").Add(1)

	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(2 * time.Second) }()

	// The stream ends with one final snapshot, then clean EOF.
	fin := next(t, dec)
	if fin.Type != stream.TypeSnapshot {
		t.Fatalf("drain frame = %+v, want final snapshot", fin)
	}
	if v, _ := fin.Data[MetricSatConflicts+`{engine="sequential"}`].(float64); v != 42 {
		t.Errorf("final snapshot conflicts = %v, want 42", v)
	}
	if _, err := dec.Next(); err != io.EOF {
		t.Fatalf("after final snapshot: %v, want io.EOF", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Shutdown with a live SSE subscriber = %v, want nil", err)
	}
}

func TestEventsRefusedWhileDraining(t *testing.T) {
	srv, err := ServeBus("127.0.0.1:0", NewRegistry(), stream.NewBus())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.closeSSESubscribers() // mark draining without stopping the listener
	resp, err := http.Get("http://" + srv.Addr() + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /events status = %s, want 503", resp.Status)
	}
}

func TestEventsAndLive404WithoutBus(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/events", "/live"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s without bus status = %s, want 404", path, resp.Status)
		}
	}
}

func TestEventsKeepAliveComment(t *testing.T) {
	srv, err := ServeBus("127.0.0.1:0", NewRegistry(), stream.NewBus())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.keepAlive = 20 * time.Millisecond

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+srv.Addr()+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	br := bufio.NewReader(resp.Body)
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("stream ended before a keep-alive comment: %v", err)
		}
		if strings.HasPrefix(line, ": keep-alive") {
			return
		}
	}
}

func TestLiveDashboardServed(t *testing.T) {
	srv, err := ServeBus("127.0.0.1:0", NewRegistry(), stream.NewBus())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	body := string(get(t, "http://"+srv.Addr()+"/live"))
	for _, want := range []string{
		"<!DOCTYPE html>",
		"EventSource", // live feed wiring
		"svg .grid",   // spliced svgchart.CSS
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/live missing %q", want)
		}
	}
	if strings.Contains(body, "/*CSS*/") || strings.Contains(body, "/*GEOM*/") {
		t.Error("/live left template placeholders unspliced")
	}
	// Self-contained: no external scripts, stylesheets, or fetches. The
	// only URL allowed is the SVG XML namespace constant.
	if strings.Contains(body, "<script src=") || strings.Contains(body, "<link ") ||
		strings.Contains(body, "https://") ||
		strings.Count(body, "http://") != strings.Count(body, "http://www.w3.org/2000/svg") {
		t.Error("/live must be self-contained: external reference found")
	}
}

func TestBuildInfoExposition(t *testing.T) {
	r := NewRegistry()
	r.SetBuildInfo("goversion", "go1.22.0", "format", "3", "native_xor", "true")
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	text := string(get(t, base+"/metrics"))
	if !strings.Contains(text, MetricBuildInfo+`{format="3",goversion="go1.22.0",native_xor="true"} 1`) {
		t.Errorf("/metrics missing build_info sample:\n%s", text)
	}
	if !strings.Contains(text, "# HELP "+MetricBuildInfo) {
		t.Errorf("/metrics missing build_info HELP:\n%s", text)
	}

	var doc map[string]json.RawMessage
	if err := json.Unmarshal(get(t, base+"/debug/vars"), &doc); err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal(doc["dynunlock"], &snap); err != nil {
		t.Fatal(err)
	}
	if v, ok := snap[MetricBuildInfo+`{format="3",goversion="go1.22.0",native_xor="true"}`]; !ok || v.(float64) != 1 {
		t.Errorf("/debug/vars missing build_info: %v", snap)
	}
}
