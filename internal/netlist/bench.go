package netlist

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ParseBench reads an ISCAS-89 ".bench" netlist. Supported statements:
//
//	INPUT(name)          OUTPUT(name)
//	name = GATE(a, b, …) with GATE ∈ {AND, NAND, OR, NOR, XOR, XNOR,
//	                                   NOT, BUF, BUFF, MUX, DFF}
//	name = gnd / vcc     (constants, a common extension)
//	# comment
//
// Forward references are allowed, as in the published benchmark files.
func ParseBench(r io.Reader, name string) (*Netlist, error) {
	n := New(name)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	var outputs []string
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		switch {
		case hasPrefixFold(line, "INPUT"):
			arg, err := parseParen(line, "INPUT")
			if err != nil {
				return nil, fmt.Errorf("bench:%d: %w", lineNo, err)
			}
			if _, err := n.AddInput(arg); err != nil {
				return nil, fmt.Errorf("bench:%d: %w", lineNo, err)
			}
		case hasPrefixFold(line, "OUTPUT"):
			arg, err := parseParen(line, "OUTPUT")
			if err != nil {
				return nil, fmt.Errorf("bench:%d: %w", lineNo, err)
			}
			outputs = append(outputs, arg)
		default:
			eq := strings.IndexByte(line, '=')
			if eq < 0 {
				return nil, fmt.Errorf("bench:%d: unrecognized statement %q", lineNo, line)
			}
			lhs := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			if lhs == "" {
				return nil, fmt.Errorf("bench:%d: empty signal name", lineNo)
			}
			if err := parseRHS(n, lhs, rhs); err != nil {
				return nil, fmt.Errorf("bench:%d: %w", lineNo, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("bench: read: %w", err)
	}
	for _, o := range outputs {
		n.MarkOutput(n.Ref(o))
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

func hasPrefixFold(s, prefix string) bool {
	return len(s) >= len(prefix) && strings.EqualFold(s[:len(prefix)], prefix) &&
		(len(s) == len(prefix) || s[len(prefix)] == '(' || s[len(prefix)] == ' ')
}

func parseParen(line, keyword string) (string, error) {
	rest := strings.TrimSpace(line[len(keyword):])
	if !strings.HasPrefix(rest, "(") || !strings.HasSuffix(rest, ")") {
		return "", fmt.Errorf("malformed %s statement %q", keyword, line)
	}
	arg := strings.TrimSpace(rest[1 : len(rest)-1])
	if arg == "" {
		return "", fmt.Errorf("empty %s argument", keyword)
	}
	return arg, nil
}

var benchGate = map[string]GateType{
	"AND": And, "NAND": Nand, "OR": Or, "NOR": Nor, "XOR": Xor,
	"XNOR": Xnor, "NOT": Not, "BUF": Buf, "BUFF": Buf, "MUX": Mux,
	"DFF": DFF,
}

func parseRHS(n *Netlist, lhs, rhs string) error {
	switch strings.ToLower(rhs) {
	case "gnd":
		_, err := n.AddConst(lhs, false)
		return err
	case "vcc":
		_, err := n.AddConst(lhs, true)
		return err
	}
	open := strings.IndexByte(rhs, '(')
	if open < 0 || !strings.HasSuffix(rhs, ")") {
		return fmt.Errorf("malformed gate expression %q", rhs)
	}
	op := strings.ToUpper(strings.TrimSpace(rhs[:open]))
	t, ok := benchGate[op]
	if !ok {
		return fmt.Errorf("unknown gate type %q", op)
	}
	var fanin []SignalID
	for _, a := range strings.Split(rhs[open+1:len(rhs)-1], ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			return fmt.Errorf("empty fanin in %q", rhs)
		}
		fanin = append(fanin, n.Ref(a))
	}
	if t == DFF {
		if len(fanin) != 1 {
			return fmt.Errorf("DFF takes exactly one fanin, got %d", len(fanin))
		}
		// define directly so forward references resolve
		_, err := n.define(lhs, Gate{Type: DFF, Fanin: fanin})
		return err
	}
	if err := checkArity(t, len(fanin)); err != nil {
		return err
	}
	_, err := n.define(lhs, Gate{Type: t, Fanin: fanin})
	return err
}

// WriteBench writes the netlist in ".bench" format. Signals are emitted in
// definition order, which is always a legal bench ordering because the
// format permits forward references.
func (n *Netlist) WriteBench(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", n.Name)
	st := n.Stats()
	fmt.Fprintf(bw, "# %d inputs, %d outputs, %d D-type flipflops, %d gates\n",
		st.PIs, st.POs, st.DFFs, st.Gates)
	for _, pi := range n.pis {
		fmt.Fprintf(bw, "INPUT(%s)\n", n.names[pi])
	}
	for _, po := range n.pos {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", n.names[po])
	}
	for id, g := range n.gates {
		switch g.Type {
		case Input:
			continue
		case Const0:
			fmt.Fprintf(bw, "%s = gnd\n", n.names[id])
		case Const1:
			fmt.Fprintf(bw, "%s = vcc\n", n.names[id])
		default:
			args := make([]string, len(g.Fanin))
			for i, f := range g.Fanin {
				args[i] = n.names[f]
			}
			op := g.Type.String()
			fmt.Fprintf(bw, "%s = %s(%s)\n", n.names[id], op, strings.Join(args, ", "))
		}
	}
	return bw.Flush()
}

// Clone returns a deep copy of the netlist.
func (n *Netlist) Clone() *Netlist {
	c := &Netlist{
		Name:   n.Name,
		names:  append([]string(nil), n.names...),
		byName: make(map[string]SignalID, len(n.byName)),
		gates:  make([]Gate, len(n.gates)),
		pis:    append([]SignalID(nil), n.pis...),
		pos:    append([]SignalID(nil), n.pos...),
		dffs:   append([]SignalID(nil), n.dffs...),
	}
	for k, v := range n.byName {
		c.byName[k] = v
	}
	for i, g := range n.gates {
		c.gates[i] = Gate{Type: g.Type, Fanin: append([]SignalID(nil), g.Fanin...)}
	}
	return c
}

// CombView presents a sequential netlist as a pure combinational function
// for simulation, encoding, and attack modeling:
//
//	inputs:  primary inputs, then DFF present-state (Q) signals
//	outputs: primary outputs, then DFF next-state (D) signals
type CombView struct {
	N *Netlist
	// Inputs lists PI signals followed by DFF Q signals.
	Inputs []SignalID
	// Outputs lists PO signals followed by DFF D signals.
	Outputs []SignalID
	// NumPI and NumPO give the split points within Inputs/Outputs.
	NumPI, NumPO int
	// Order is a topological order of the combinational gates.
	Order []SignalID
}

// NewCombView builds the combinational view of n. n must validate.
func NewCombView(n *Netlist) (*CombView, error) {
	order, err := n.Levelize()
	if err != nil {
		return nil, err
	}
	v := &CombView{N: n, NumPI: len(n.pis), NumPO: len(n.pos), Order: order}
	v.Inputs = append(append([]SignalID(nil), n.pis...), n.dffs...)
	v.Outputs = append([]SignalID(nil), n.pos...)
	for _, q := range n.dffs {
		v.Outputs = append(v.Outputs, n.gates[q].Fanin[0])
	}
	return v, nil
}

// InputIndex returns a map from source signal to its position in Inputs.
func (v *CombView) InputIndex() map[SignalID]int {
	m := make(map[SignalID]int, len(v.Inputs))
	for i, s := range v.Inputs {
		m[s] = i
	}
	return m
}

// SortedSignalIDs returns all signal ids sorted by name, for deterministic
// iteration.
func (n *Netlist) SortedSignalIDs() []SignalID {
	ids := make([]SignalID, len(n.gates))
	for i := range ids {
		ids[i] = SignalID(i)
	}
	sort.Slice(ids, func(a, b int) bool { return n.names[ids[a]] < n.names[ids[b]] })
	return ids
}
