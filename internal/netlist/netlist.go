// Package netlist provides a gate-level representation of combinational and
// sequential circuits, an ISCAS-89 ".bench" reader/writer, structural
// validation, and levelization for simulation and CNF encoding.
//
// A Netlist holds a set of named signals. Each signal is either a primary
// input, a constant, the output of a combinational gate, or the output of a
// D flip-flop (whose single fanin is the D input, i.e. the next-state
// function). Primary outputs are markers on existing signals.
//
// The sequential interpretation follows standard scan-design practice: the
// combinational core computes next-state (DFF D inputs) and primary outputs
// from primary inputs and present state (DFF Q outputs).
package netlist

import (
	"fmt"
	"sort"
)

// GateType enumerates signal kinds.
type GateType uint8

// Signal kinds. Input and DFF signals are sequential-view sources; the rest
// are combinational.
const (
	Input GateType = iota
	Const0
	Const1
	Buf
	Not
	And
	Nand
	Or
	Nor
	Xor
	Xnor
	Mux // Fanin: (sel, d0, d1); output = d1 if sel else d0
	DFF // Fanin: (D)
	numGateTypes
)

var gateNames = [...]string{
	Input: "INPUT", Const0: "CONST0", Const1: "CONST1", Buf: "BUFF",
	Not: "NOT", And: "AND", Nand: "NAND", Or: "OR", Nor: "NOR",
	Xor: "XOR", Xnor: "XNOR", Mux: "MUX", DFF: "DFF",
}

// String returns the ISCAS-style name of the gate type.
func (g GateType) String() string {
	if int(g) < len(gateNames) {
		return gateNames[g]
	}
	return fmt.Sprintf("GateType(%d)", int(g))
}

// SignalID identifies a signal within one Netlist.
type SignalID int32

// Gate is the definition of one signal.
type Gate struct {
	Type  GateType
	Fanin []SignalID
}

// Netlist is a mutable gate-level circuit.
type Netlist struct {
	Name string

	names  []string
	byName map[string]SignalID
	gates  []Gate

	pis  []SignalID
	pos  []SignalID
	dffs []SignalID
}

// New returns an empty netlist with the given name.
func New(name string) *Netlist {
	return &Netlist{Name: name, byName: make(map[string]SignalID)}
}

// NumSignals returns the number of signals defined so far.
func (n *Netlist) NumSignals() int { return len(n.gates) }

// SignalName returns the name of signal id.
func (n *Netlist) SignalName(id SignalID) string { return n.names[id] }

// Lookup returns the signal with the given name.
func (n *Netlist) Lookup(name string) (SignalID, bool) {
	id, ok := n.byName[name]
	return id, ok
}

// Gate returns the definition of signal id. The fanin slice must not be
// mutated by callers.
func (n *Netlist) Gate(id SignalID) Gate { return n.gates[id] }

// Type returns the gate type of signal id.
func (n *Netlist) Type(id SignalID) GateType { return n.gates[id].Type }

// Fanin returns the fanin list of signal id (aliases internal storage).
func (n *Netlist) Fanin(id SignalID) []SignalID { return n.gates[id].Fanin }

// PIs returns the primary inputs in declaration order (aliases storage).
func (n *Netlist) PIs() []SignalID { return n.pis }

// POs returns the primary outputs in declaration order (aliases storage).
func (n *Netlist) POs() []SignalID { return n.pos }

// DFFs returns the flip-flop output signals in declaration order.
func (n *Netlist) DFFs() []SignalID { return n.dffs }

func (n *Netlist) define(name string, g Gate) (SignalID, error) {
	if name == "" {
		name = fmt.Sprintf("n%d", len(n.gates))
	}
	if prev, ok := n.byName[name]; ok {
		if n.gates[prev].Type != pendingType {
			return 0, fmt.Errorf("netlist: signal %q defined twice", name)
		}
		// Resolve a forward reference created by Ref.
		n.gates[prev] = g
		n.registerKind(prev, g.Type)
		return prev, nil
	}
	id := SignalID(len(n.gates))
	n.names = append(n.names, name)
	n.byName[name] = id
	n.gates = append(n.gates, g)
	n.registerKind(id, g.Type)
	return id, nil
}

func (n *Netlist) registerKind(id SignalID, t GateType) {
	switch t {
	case Input:
		n.pis = append(n.pis, id)
	case DFF:
		n.dffs = append(n.dffs, id)
	}
}

// pendingType marks a signal referenced before its definition.
const pendingType = numGateTypes

// Ref returns the ID for name, creating an undefined placeholder if needed.
// All placeholders must be resolved by later definitions; Validate reports
// any that are not.
func (n *Netlist) Ref(name string) SignalID {
	if id, ok := n.byName[name]; ok {
		return id
	}
	id := SignalID(len(n.gates))
	n.names = append(n.names, name)
	n.byName[name] = id
	n.gates = append(n.gates, Gate{Type: pendingType})
	return id
}

// AddInput declares a primary input. Empty name auto-generates one.
func (n *Netlist) AddInput(name string) (SignalID, error) {
	return n.define(name, Gate{Type: Input})
}

// AddConst declares a constant signal.
func (n *Netlist) AddConst(name string, value bool) (SignalID, error) {
	t := Const0
	if value {
		t = Const1
	}
	return n.define(name, Gate{Type: t})
}

// AddGate declares a combinational gate. Fanin arity is checked.
func (n *Netlist) AddGate(name string, t GateType, fanin ...SignalID) (SignalID, error) {
	if err := checkArity(t, len(fanin)); err != nil {
		return 0, fmt.Errorf("netlist: gate %q: %w", name, err)
	}
	for _, f := range fanin {
		if int(f) < 0 || int(f) >= len(n.gates) {
			return 0, fmt.Errorf("netlist: gate %q: fanin id %d undefined", name, f)
		}
	}
	return n.define(name, Gate{Type: t, Fanin: append([]SignalID(nil), fanin...)})
}

// AddDFF declares a flip-flop whose Q output is the new signal and whose D
// input is d.
func (n *Netlist) AddDFF(name string, d SignalID) (SignalID, error) {
	if int(d) < 0 || int(d) >= len(n.gates) {
		return 0, fmt.Errorf("netlist: dff %q: fanin id %d undefined", name, d)
	}
	return n.define(name, Gate{Type: DFF, Fanin: []SignalID{d}})
}

// MarkOutput declares signal id as a primary output.
func (n *Netlist) MarkOutput(id SignalID) {
	n.pos = append(n.pos, id)
}

func checkArity(t GateType, k int) error {
	switch t {
	case Buf, Not:
		if k != 1 {
			return fmt.Errorf("%s needs 1 fanin, got %d", t, k)
		}
	case And, Nand, Or, Nor, Xor, Xnor:
		if k < 2 {
			return fmt.Errorf("%s needs >=2 fanins, got %d", t, k)
		}
	case Mux:
		if k != 3 {
			return fmt.Errorf("MUX needs 3 fanins, got %d", k)
		}
	case Input, Const0, Const1:
		if k != 0 {
			return fmt.Errorf("%s takes no fanin, got %d", t, k)
		}
	case DFF:
		if k != 1 {
			return fmt.Errorf("DFF needs 1 fanin, got %d", k)
		}
	default:
		return fmt.Errorf("unknown gate type %d", t)
	}
	return nil
}

// Validate checks that every referenced signal is defined, arities hold,
// outputs exist, and the combinational part is acyclic.
func (n *Netlist) Validate() error {
	for id, g := range n.gates {
		if g.Type == pendingType {
			return fmt.Errorf("netlist: signal %q referenced but never defined", n.names[id])
		}
		if err := checkArity(g.Type, len(g.Fanin)); err != nil {
			return fmt.Errorf("netlist: signal %q: %w", n.names[id], err)
		}
		for _, f := range g.Fanin {
			if int(f) < 0 || int(f) >= len(n.gates) {
				return fmt.Errorf("netlist: signal %q: fanin id %d out of range", n.names[id], f)
			}
		}
	}
	for _, po := range n.pos {
		if int(po) < 0 || int(po) >= len(n.gates) {
			return fmt.Errorf("netlist: output id %d out of range", po)
		}
	}
	if _, err := n.Levelize(); err != nil {
		return err
	}
	return nil
}

// Levelize returns a topological order of the combinational gates: every
// gate appears after all of its fanins, where Input, Const, and DFF signals
// count as sources (they are not included in the order). An error is
// returned if the combinational logic contains a cycle.
func (n *Netlist) Levelize() ([]SignalID, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]uint8, len(n.gates))
	order := make([]SignalID, 0, len(n.gates))

	// Iterative DFS to avoid stack overflow on deep circuits.
	type frame struct {
		id   SignalID
		next int
	}
	var stack []frame
	visit := func(root SignalID) error {
		if color[root] != white {
			return nil
		}
		stack = stack[:0]
		stack = append(stack, frame{id: root})
		color[root] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			g := n.gates[f.id]
			if f.next < len(g.Fanin) {
				child := g.Fanin[f.next]
				f.next++
				ct := n.gates[child].Type
				if ct == Input || ct == DFF || ct == Const0 || ct == Const1 {
					continue // source: not traversed
				}
				switch color[child] {
				case white:
					color[child] = gray
					stack = append(stack, frame{id: child})
				case gray:
					return fmt.Errorf("netlist: combinational cycle through %q", n.names[child])
				}
				continue
			}
			color[f.id] = black
			order = append(order, f.id)
			stack = stack[:len(stack)-1]
		}
		return nil
	}

	for id := range n.gates {
		t := n.gates[id].Type
		if t == Input || t == DFF || t == Const0 || t == Const1 {
			continue
		}
		if err := visit(SignalID(id)); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// Stats summarizes a netlist.
type Stats struct {
	Name    string
	PIs     int
	POs     int
	DFFs    int
	Gates   int // combinational gates (excluding consts)
	Signals int
}

// Stats computes summary statistics.
func (n *Netlist) Stats() Stats {
	s := Stats{Name: n.Name, PIs: len(n.pis), POs: len(n.pos), DFFs: len(n.dffs), Signals: len(n.gates)}
	for _, g := range n.gates {
		switch g.Type {
		case Input, DFF, Const0, Const1, pendingType:
		default:
			s.Gates++
		}
	}
	return s
}

// String renders stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("%s: %d PI, %d PO, %d DFF, %d gates", s.Name, s.PIs, s.POs, s.DFFs, s.Gates)
}

// SortedNames returns all signal names in a stable order (for deterministic
// output in writers and tests).
func (n *Netlist) SortedNames() []string {
	out := append([]string(nil), n.names...)
	sort.Strings(out)
	return out
}
