package netlist

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

// s27ish is a small sequential bench in the style of ISCAS-89 s27 (3 DFFs,
// 4 inputs, 1 output), with forward references as in the published files.
const s27ish = `
# s27-style test circuit
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
G17 = NOT(G11)
`

func parse(t *testing.T, src string) *Netlist {
	t.Helper()
	n, err := ParseBench(strings.NewReader(src), "test")
	if err != nil {
		t.Fatalf("ParseBench: %v", err)
	}
	return n
}

func TestParseBenchS27(t *testing.T) {
	n := parse(t, s27ish)
	st := n.Stats()
	if st.PIs != 4 || st.POs != 1 || st.DFFs != 3 || st.Gates != 10 {
		t.Fatalf("stats = %+v", st)
	}
	id, ok := n.Lookup("G8")
	if !ok {
		t.Fatal("G8 missing")
	}
	if n.Type(id) != And || len(n.Fanin(id)) != 2 {
		t.Fatalf("G8 = %v(%v)", n.Type(id), n.Fanin(id))
	}
}

func TestParseBenchErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"undefined signal", "INPUT(a)\nOUTPUT(z)\nz = AND(a, ghost)"},
		{"double definition", "INPUT(a)\na = NOT(a)"},
		{"bad gate", "INPUT(a)\nz = FROB(a)"},
		{"bad arity not", "INPUT(a)\nINPUT(b)\nz = NOT(a, b)"},
		{"bad arity and", "INPUT(a)\nz = AND(a)"},
		{"malformed", "INPUT a"},
		{"comb cycle", "INPUT(a)\nOUTPUT(x)\nx = AND(a, y)\ny = AND(a, x)"},
		{"dff arity", "INPUT(a)\nINPUT(b)\nq = DFF(a, b)"},
		{"empty fanin", "INPUT(a)\nz = AND(a,)"},
	}
	for _, tc := range cases {
		if _, err := ParseBench(strings.NewReader(tc.src), "t"); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func TestParseConstsAndComments(t *testing.T) {
	src := `
# header
INPUT(a)   # trailing comment
OUTPUT(z)
g = gnd
v = vcc
z = MUX(a, g, v)
`
	n := parse(t, src)
	id, _ := n.Lookup("g")
	if n.Type(id) != Const0 {
		t.Fatal("gnd not Const0")
	}
	id, _ = n.Lookup("v")
	if n.Type(id) != Const1 {
		t.Fatal("vcc not Const1")
	}
	id, _ = n.Lookup("z")
	if n.Type(id) != Mux {
		t.Fatal("z not MUX")
	}
}

func TestWriteBenchRoundTrip(t *testing.T) {
	n := parse(t, s27ish)
	var buf bytes.Buffer
	if err := n.WriteBench(&buf); err != nil {
		t.Fatal(err)
	}
	n2, err := ParseBench(&buf, "roundtrip")
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	s1, s2 := n.Stats(), n2.Stats()
	s1.Name, s2.Name = "", ""
	if s1 != s2 {
		t.Fatalf("stats changed: %+v vs %+v", s1, s2)
	}
	// Same gate definition for every signal name.
	for _, name := range n.SortedNames() {
		a, _ := n.Lookup(name)
		b, ok := n2.Lookup(name)
		if !ok {
			t.Fatalf("signal %q lost", name)
		}
		ga, gb := n.Gate(a), n2.Gate(b)
		if ga.Type != gb.Type || len(ga.Fanin) != len(gb.Fanin) {
			t.Fatalf("signal %q changed: %v vs %v", name, ga, gb)
		}
		for i := range ga.Fanin {
			if n.SignalName(ga.Fanin[i]) != n2.SignalName(gb.Fanin[i]) {
				t.Fatalf("signal %q fanin %d changed", name, i)
			}
		}
	}
}

func TestLevelizeOrder(t *testing.T) {
	n := parse(t, s27ish)
	order, err := n.Levelize()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[SignalID]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, id := range order {
		for _, f := range n.Fanin(id) {
			ft := n.Type(f)
			if ft == Input || ft == DFF || ft == Const0 || ft == Const1 {
				continue
			}
			if pos[f] >= pos[id] {
				t.Fatalf("%s not before %s", n.SignalName(f), n.SignalName(id))
			}
		}
	}
	if len(order) != n.Stats().Gates {
		t.Fatalf("order covers %d gates, want %d", len(order), n.Stats().Gates)
	}
}

func TestCombView(t *testing.T) {
	n := parse(t, s27ish)
	v, err := NewCombView(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Inputs) != 4+3 || len(v.Outputs) != 1+3 {
		t.Fatalf("view sizes %d/%d", len(v.Inputs), len(v.Outputs))
	}
	if v.NumPI != 4 || v.NumPO != 1 {
		t.Fatalf("splits %d/%d", v.NumPI, v.NumPO)
	}
	// DFF D inputs appear as outputs, in DFF order.
	for i, q := range n.DFFs() {
		if v.Outputs[v.NumPO+i] != n.Fanin(q)[0] {
			t.Fatal("next-state output mismatch")
		}
	}
	idx := v.InputIndex()
	for i, s := range v.Inputs {
		if idx[s] != i {
			t.Fatal("InputIndex wrong")
		}
	}
}

func TestBuilderAPI(t *testing.T) {
	n := New("built")
	a, _ := n.AddInput("a")
	b, _ := n.AddInput("b")
	x, err := n.AddGate("x", Xor, a, b)
	if err != nil {
		t.Fatal(err)
	}
	q, err := n.AddDFF("q", x)
	if err != nil {
		t.Fatal(err)
	}
	n.MarkOutput(q)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddGate("bad", And, a); err == nil {
		t.Fatal("arity error not caught")
	}
	if _, err := n.AddGate("bad2", And, a, SignalID(99)); err == nil {
		t.Fatal("undefined fanin not caught")
	}
	if _, err := n.AddInput("a"); err == nil {
		t.Fatal("redefinition not caught")
	}
}

func TestValidateCatchesUnresolvedRef(t *testing.T) {
	n := New("dangling")
	a, _ := n.AddInput("a")
	_ = a
	n.MarkOutput(n.Ref("ghost"))
	if err := n.Validate(); err == nil {
		t.Fatal("unresolved Ref must fail Validate")
	}
}

func TestCloneIndependence(t *testing.T) {
	n := parse(t, s27ish)
	c := n.Clone()
	if _, err := c.AddInput("extra"); err != nil {
		t.Fatal(err)
	}
	if _, ok := n.Lookup("extra"); ok {
		t.Fatal("clone aliases original")
	}
	if c.Stats().PIs != n.Stats().PIs+1 {
		t.Fatal("clone missing addition")
	}
}

func TestAutoNames(t *testing.T) {
	n := New("auto")
	a, _ := n.AddInput("")
	b, _ := n.AddInput("")
	if n.SignalName(a) == n.SignalName(b) {
		t.Fatal("auto names collide")
	}
	if _, err := n.AddGate("", And, a, b); err != nil {
		t.Fatal(err)
	}
}

func TestGateTypeString(t *testing.T) {
	if Nand.String() != "NAND" || Buf.String() != "BUFF" {
		t.Fatal("GateType.String wrong")
	}
}

// Property (testing/quick): generated names survive a write/parse round
// trip and stats are preserved for random small circuits.
func TestBenchRoundTripQuick(t *testing.T) {
	f := func(gateSeed uint16) bool {
		rng := int(gateSeed)
		n := New("q")
		a, _ := n.AddInput("a")
		b, _ := n.AddInput("b")
		sigs := []SignalID{a, b}
		types := []GateType{And, Or, Xor, Nand, Nor, Xnor}
		for i := 0; i < 3+rng%20; i++ {
			t := types[(rng+i)%len(types)]
			x := sigs[(rng+i)%len(sigs)]
			y := sigs[(rng+i*7)%len(sigs)]
			id, err := n.AddGate("", t, x, y)
			if err != nil {
				return false
			}
			sigs = append(sigs, id)
		}
		n.MarkOutput(sigs[len(sigs)-1])
		var buf bytes.Buffer
		if err := n.WriteBench(&buf); err != nil {
			return false
		}
		n2, err := ParseBench(&buf, "q")
		if err != nil {
			return false
		}
		s1, s2 := n.Stats(), n2.Stats()
		return s1.PIs == s2.PIs && s1.POs == s2.POs && s1.Gates == s2.Gates
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
