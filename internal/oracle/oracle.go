// Package oracle simulates the working chip the attacker owns: a scan-
// locked sequential circuit with the test authentication scheme of the
// paper's Fig. 2. The chip holds two secrets in tamper-proof memory — the
// scan-locking secret key SK and the PRNG seed — and exposes exactly what
// silicon exposes: reset, functional clocking, and scan test sessions.
//
// The scan session is simulated cycle by cycle (shift register moves,
// key gates XOR, LFSR steps), deliberately *not* reusing the closed-form
// mask algebra of internal/scan. Property tests in internal/core assert
// the attacker's combinational model reproduces this simulation bit for
// bit, which validates Algorithm 1.
package oracle

import (
	"crypto/subtle"
	"fmt"

	"dynunlock/internal/gf2"
	"dynunlock/internal/lfsr"
	"dynunlock/internal/lock"
	"dynunlock/internal/scan"
	"dynunlock/internal/sim"
)

// Stats counts attacker-visible interactions.
type Stats struct {
	Sessions uint64 // scan test sessions served
	Cycles   uint64 // total clock cycles consumed
	Resets   uint64
}

// Chip is a fabricated, functional, scan-locked IC.
type Chip struct {
	design *lock.Design
	seq    *sim.Seq

	secretSeed gf2.Vec // LFSR seed (dynamic) or static key register value
	authKey    []bool  // SK: the externally matched test key (Fig. 2)

	reg         lfsr.Register
	lfsrSteps   int
	flops       []bool
	globalCycle int
	patterns    int

	// linkBits[j] lists the key-register bits XORed on link j.
	linkBits [][]int

	Stats Stats

	// SessionHook, when non-nil, is called at the end of every scan session
	// with the clock cycles that session consumed. Attack layers install it
	// to account tester time (trace counters) without wrapping the chip.
	SessionHook func(cycles uint64)
}

// New fabricates a chip. secretSeed must have the design's key width; for
// dynamic policies it must be nonzero (the all-zero LFSR state is a fixed
// point and would degenerate the defense). authKey is the scan-locking
// secret key SK used by the test authentication comparator.
func New(d *lock.Design, secretSeed gf2.Vec, authKey []bool) (*Chip, error) {
	if secretSeed.Len() != d.Config.KeyBits {
		return nil, fmt.Errorf("oracle: seed width %d, want %d", secretSeed.Len(), d.Config.KeyBits)
	}
	if d.Config.Policy != scan.Static && secretSeed.IsZero() {
		return nil, fmt.Errorf("oracle: all-zero LFSR seed is degenerate")
	}
	if len(authKey) != d.Config.KeyBits {
		return nil, fmt.Errorf("oracle: auth key width %d, want %d", len(authKey), d.Config.KeyBits)
	}
	// The capture-cycle core runs on the AIG fast path when the view
	// compiles (bit-identical to the gate-level stepper; property tests in
	// internal/sim and internal/core pin that down).
	seq, err := sim.NewSeqAIG(d.View)
	if err != nil {
		seq = sim.NewSeq(d.View)
	}
	c := &Chip{
		design:     d,
		seq:        seq,
		secretSeed: secretSeed.Clone(),
		authKey:    append([]bool(nil), authKey...),
		flops:      make([]bool, d.Chain.Length),
		linkBits:   make([][]int, d.Chain.Length),
	}
	for _, g := range d.Chain.Gates {
		c.linkBits[g.Link] = append(c.linkBits[g.Link], g.KeyBit)
	}
	if d.Config.Policy != scan.Static {
		reg, err := d.NewRegister()
		if err != nil {
			return nil, err
		}
		c.reg = reg
	}
	c.Reset()
	c.Stats = Stats{}
	return c, nil
}

// Design returns the attacker-visible structural description.
func (c *Chip) Design() *lock.Design { return c.design }

// SetSessionHook installs h as the session hook and returns the hook that
// was installed before, so layered observers (trace accounting, the flight
// recorder) can chain and later restore it. Equivalent to assigning the
// SessionHook field directly; the method form is what satisfies the oracle
// interface consumed by the attack layers (core.Chip).
func (c *Chip) SetSessionHook(h func(cycles uint64)) (prev func(cycles uint64)) {
	prev = c.SessionHook
	c.SessionHook = h
	return prev
}

// Reset asserts the chip reset: flip-flops clear, the PRNG reloads the
// secret seed, and the pattern/cycle counters restart.
func (c *Chip) Reset() {
	for i := range c.flops {
		c.flops[i] = false
	}
	if c.reg != nil {
		c.reg.Seed(c.secretSeed)
	}
	c.lfsrSteps = 0
	c.globalCycle = 0
	c.patterns = 0
	c.Stats.Resets++
}

// keyRegister returns the key-register value effective at the current
// global cycle, honoring the update policy. The register is the LFSR state
// for dynamic policies and the static secret for Static.
func (c *Chip) keyRegister() []bool {
	if c.design.Config.Policy == scan.Static {
		return c.secretSeed.Bools()
	}
	target := c.design.Config.Policy.Steps(c.patterns, c.globalCycle, c.design.Config.Period)
	// The LFSR only runs forward; Reset is the only rewind.
	for ; c.lfsrSteps < target; c.lfsrSteps++ {
		c.reg.Step()
	}
	return c.reg.State().Bools()
}

// Session runs one scan test session: shift in scanIn (bit j destined for
// chain flop j), one capture with primary inputs pi, shift out. It returns
// the observed scan-out (scanOut[j] is the bit that corresponds to captured
// flop j) and the primary outputs sampled during capture.
//
// If testKey matches the secret SK, the key gates are driven by that static
// key for the whole session (the trusted-tester path of Fig. 2); otherwise
// the policy-driven dynamic key scrambles the scan data.
func (c *Chip) Session(testKey, scanIn, pi []bool) (scanOut, po []bool) {
	out, pos := c.SessionN(testKey, scanIn, [][]bool{pi})
	return out, pos[0]
}

// SessionN runs a session with len(pis) consecutive capture cycles (the
// paper's multi-capture extension): shift in, capture once per entry of
// pis, shift out the final state. It returns the observed scan-out and the
// primary outputs sampled at each capture.
func (c *Chip) SessionN(testKey, scanIn []bool, pis [][]bool) (scanOut []bool, pos [][]bool) {
	d := c.design
	n := d.Chain.Length
	if len(scanIn) != n {
		panic(fmt.Sprintf("oracle: scan-in length %d, want %d", len(scanIn), n))
	}
	if len(pis) < 1 {
		panic("oracle: need at least one capture")
	}
	for _, pi := range pis {
		if len(pi) != d.View.NumPI {
			panic(fmt.Sprintf("oracle: %d PIs, want %d", len(pi), d.View.NumPI))
		}
	}
	match := len(testKey) == len(c.authKey) && constantTimeEqual(testKey, c.authKey)
	cyclesBefore := c.Stats.Cycles

	key := func() []bool {
		if match {
			return c.authKey
		}
		return c.keyRegister()
	}

	// Shift-in: n edges.
	for t := 0; t < n; t++ {
		c.shiftEdge(scanIn[n-1-t], key())
		c.tick()
	}
	// Capture edges: key gates idle for scan data; the PRNG still clocks.
	c.seq.SetState(c.flops)
	for _, pi := range pis {
		pos = append(pos, c.seq.Step(pi))
		c.tick()
	}
	copy(c.flops, c.seq.State())
	// Shift-out: observe before each edge.
	scanOut = make([]bool, n)
	first := n + len(pis)
	for t := first; t < first+n; t++ {
		scanOut[first+n-1-t] = c.flops[n-1]
		c.shiftEdge(false, key())
		c.tick()
	}
	c.patterns++
	c.Stats.Sessions++
	if c.SessionHook != nil {
		c.SessionHook(c.Stats.Cycles - cyclesBefore)
	}
	return scanOut, pos
}

// shiftEdge moves the scan chain one position, applying key-gate XORs on
// every link, and feeds si into flop 0.
func (c *Chip) shiftEdge(si bool, key []bool) {
	n := c.design.Chain.Length
	for j := n - 1; j >= 1; j-- {
		v := c.flops[j-1]
		for _, bit := range c.linkBits[j] {
			if key[bit] {
				v = !v
			}
		}
		c.flops[j] = v
	}
	c.flops[0] = si
}

func (c *Chip) tick() {
	c.globalCycle++
	c.Stats.Cycles++
}

func constantTimeEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	var ba, bb []byte
	for i := range a {
		ba = append(ba, boolByte(a[i]))
		bb = append(bb, boolByte(b[i]))
	}
	return subtle.ConstantTimeCompare(ba, bb) == 1
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// FunctionalStep clocks the chip one cycle in functional mode (scan
// disabled): primary inputs applied, primary outputs sampled, state
// advances. Included for completeness of the chip model; the attack itself
// only needs Session.
func (c *Chip) FunctionalStep(pi []bool) (po []bool) {
	c.seq.SetState(c.flops)
	po = c.seq.Step(pi)
	copy(c.flops, c.seq.State())
	c.tick()
	return po
}

// SecretSeed exposes the programmed secret for experiment verification
// (checking that a recovered candidate set contains the truth). A real
// attacker has no such access.
func (c *Chip) SecretSeed() gf2.Vec { return c.secretSeed.Clone() }
