package oracle

import (
	"math/rand"
	"testing"

	"dynunlock/internal/bench"
	"dynunlock/internal/gf2"
	"dynunlock/internal/lfsr"
	"dynunlock/internal/lock"
	"dynunlock/internal/netlist"
	"dynunlock/internal/scan"
	"dynunlock/internal/sim"
)

func lockedDesign(t testing.TB, ffs, keyBits int, policy scan.Policy, placement int64) *lock.Design {
	t.Helper()
	n, err := bench.Generate(bench.GenConfig{Name: "t", PIs: 5, POs: 3, FFs: ffs, Gates: 8 * ffs, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	d, err := lock.Lock(n, lock.Config{KeyBits: keyBits, Policy: policy, PlacementSeed: placement})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func randBools(rng *rand.Rand, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = rng.Intn(2) == 1
	}
	return out
}

func randSeed(rng *rand.Rand, n int) gf2.Vec {
	v := gf2.NewVec(n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 1 {
			v.Set(i, true)
		}
	}
	if v.IsZero() {
		v.Set(rng.Intn(n), true)
	}
	return v
}

func TestNewChipValidation(t *testing.T) {
	d := lockedDesign(t, 8, 4, scan.PerCycle, 0)
	if _, err := New(d, gf2.NewVec(3), make([]bool, 4)); err == nil {
		t.Fatal("want seed width error")
	}
	if _, err := New(d, gf2.NewVec(4), make([]bool, 4)); err == nil {
		t.Fatal("want zero-seed error")
	}
	if _, err := New(d, gf2.Unit(4, 1), make([]bool, 3)); err == nil {
		t.Fatal("want auth key width error")
	}
	if _, err := New(d, gf2.Unit(4, 1), make([]bool, 4)); err != nil {
		t.Fatal(err)
	}
}

// With a matching test key the gates carry a known static key: a trusted
// tester can fully predict the scrambling. Verify against the closed-form
// static masks.
func TestSessionMatchingTestKey(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := lockedDesign(t, 10, 6, scan.PerCycle, 9)
	authKey := randBools(rng, 6)
	chip, err := New(d, randSeed(rng, 6), authKey)
	if err != nil {
		t.Fatal(err)
	}
	scanIn := randBools(rng, 10)
	pi := randBools(rng, 5)
	chip.Reset()
	scanOut, po := chip.Session(authKey, scanIn, pi)

	wantOut, wantPO := closedFormSession(t, d, scanIn, pi, func(cycle, bit int) bool {
		return authKey[bit] // static known key on every cycle
	})
	assertEq(t, scanOut, wantOut, "scanOut")
	assertEq(t, po, wantPO, "po")
}

// closedFormSession computes the expected session result using the scan
// package's mask terms and a caller-supplied key(cycle, bit) function —
// an independent derivation from the chip's cycle-by-cycle simulation.
func closedFormSession(t testing.TB, d *lock.Design, scanIn, pi []bool, key func(cycle, bit int) bool) (scanOut, po []bool) {
	t.Helper()
	n := d.Chain.Length
	aPrime := make([]bool, n)
	for j := 0; j < n; j++ {
		v := scanIn[j]
		for _, term := range d.Chain.InMaskTerms(j) {
			if key(term.Cycle, term.KeyBit) {
				v = !v
			}
		}
		aPrime[j] = v
	}
	seq := sim.NewSeq(d.View)
	seq.SetState(aPrime)
	po = seq.Step(pi)
	bPrime := seq.State()
	scanOut = make([]bool, n)
	for j := 0; j < n; j++ {
		v := bPrime[j]
		for _, term := range d.Chain.OutMaskTerms(j) {
			if key(term.Cycle, term.KeyBit) {
				v = !v
			}
		}
		scanOut[j] = v
	}
	return scanOut, po
}

func assertEq(t testing.TB, got, want []bool, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: bit %d differs", what, i)
		}
	}
}

// The core cross-check: the cycle-accurate chip must match the closed-form
// mask algebra (Algorithm 1's a-a' and b'-b relations) for every policy,
// seed, and placement.
func TestSessionMatchesClosedFormAllPolicies(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, policy := range []scan.Policy{scan.Static, scan.PerPattern, scan.PerCycle} {
		for trial := 0; trial < 6; trial++ {
			ffs := 6 + rng.Intn(20)
			keyBits := 3 + rng.Intn(10)
			d := lockedDesign(t, ffs, keyBits, policy, rng.Int63()+1)
			seed := randSeed(rng, keyBits)
			chip, err := New(d, seed, randBools(rng, keyBits))
			if err != nil {
				t.Fatal(err)
			}

			// Key schedule per cycle from a reference LFSR (session 0 after
			// reset, so patIdx = 0).
			var states []gf2.Vec
			if policy == scan.Static {
				states = []gf2.Vec{seed}
			} else {
				ref, err := lfsr.New(d.Config.Poly)
				if err != nil {
					t.Fatal(err)
				}
				ref.Seed(seed)
				for c := 0; c <= d.Chain.SessionCycles(); c++ {
					states = append(states, ref.State())
					ref.Step()
				}
			}
			key := func(cycle, bit int) bool {
				steps := policy.Steps(0, cycle, d.Config.Period)
				return states[steps].Get(bit)
			}

			scanIn := randBools(rng, ffs)
			pi := randBools(rng, 5)
			chip.Reset()
			// Any non-matching test key leaves the PRNG in control; with few
			// key bits a random guess can collide with SK, so force a miss.
			wrongKey := randBools(rng, keyBits)
			if constantTimeEqual(wrongKey, chip.authKey) {
				wrongKey[0] = !wrongKey[0]
			}
			scanOut, po := chip.Session(wrongKey, scanIn, pi)
			wantOut, wantPO := closedFormSession(t, d, scanIn, pi, key)
			assertEq(t, po, wantPO, "po")
			assertEq(t, scanOut, wantOut, "scanOut")
		}
	}
}

// Sessions must be reproducible across resets: the PRNG reloads the seed.
func TestResetReproducibility(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := lockedDesign(t, 12, 8, scan.PerCycle, 4)
	chip, err := New(d, randSeed(rng, 8), randBools(rng, 8))
	if err != nil {
		t.Fatal(err)
	}
	scanIn := randBools(rng, 12)
	pi := randBools(rng, 5)
	tk := randBools(rng, 8)
	chip.Reset()
	out1, po1 := chip.Session(tk, scanIn, pi)
	chip.Reset()
	out2, po2 := chip.Session(tk, scanIn, pi)
	assertEq(t, out1, out2, "scanOut")
	assertEq(t, po1, po2, "po")
}

// Without a reset, EFF-Dyn sessions continue the LFSR stream: the same
// query generally yields a different answer, which is exactly why the
// attack pulls the reset line between DIPs.
func TestNoResetChangesAnswer(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := lockedDesign(t, 12, 8, scan.PerCycle, 4)
	chip, err := New(d, randSeed(rng, 8), randBools(rng, 8))
	if err != nil {
		t.Fatal(err)
	}
	scanIn := randBools(rng, 12)
	pi := randBools(rng, 5)
	tk := randBools(rng, 8)
	chip.Reset()
	out1, _ := chip.Session(tk, scanIn, pi)
	out2, _ := chip.Session(tk, scanIn, pi)
	same := true
	for i := range out1 {
		if out1[i] != out2[i] {
			same = false
		}
	}
	if same {
		t.Log("warning: two consecutive sessions agreed; possible but unlikely")
	}
	// DOS policy with period 2: second pattern still uses the seed state,
	// third steps once.
	d2 := lockedDesign(t, 12, 8, scan.PerPattern, 4)
	d2.Config.Period = 2
	chip2, err := New(d2, gf2.Unit(8, 0), randBools(rng, 8))
	if err != nil {
		t.Fatal(err)
	}
	chip2.Reset()
	o1, _ := chip2.Session(tk, scanIn, pi)
	o2, _ := chip2.Session(tk, scanIn, pi)
	assertEq(t, o1, o2, "DOS patterns 0 and 1 (same key epoch)")
}

func TestUnobfuscatedChainIsTransparent(t *testing.T) {
	// A design whose key gates never fire (keyBits wide but zero gates)
	// must behave like a plain scan chain.
	n, err := bench.Generate(bench.GenConfig{Name: "t", PIs: 5, POs: 3, FFs: 9, Gates: 60, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	d, err := lock.Lock(n, lock.Config{KeyBits: 4, Policy: scan.PerCycle})
	if err != nil {
		t.Fatal(err)
	}
	d.Chain.Gates = nil
	rng := rand.New(rand.NewSource(5))
	chip, err := New(d, gf2.Unit(4, 2), randBools(rng, 4))
	if err != nil {
		t.Fatal(err)
	}
	scanIn := randBools(rng, 9)
	pi := randBools(rng, 5)
	chip.Reset()
	scanOut, po := chip.Session(randBools(rng, 4), scanIn, pi)

	seq := sim.NewSeq(d.View)
	seq.SetState(scanIn)
	wantPO := seq.Step(pi)
	assertEq(t, po, wantPO, "po")
	assertEq(t, scanOut, seq.State(), "scanOut")
}

func TestFunctionalStep(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := lockedDesign(t, 8, 4, scan.PerCycle, 2)
	chip, err := New(d, gf2.Unit(4, 0), randBools(rng, 4))
	if err != nil {
		t.Fatal(err)
	}
	pi := randBools(rng, 5)
	po := chip.FunctionalStep(pi)
	if len(po) != d.View.NumPO {
		t.Fatalf("po length %d", len(po))
	}
	seq := sim.NewSeq(d.View)
	want := seq.Step(pi)
	assertEq(t, po, want, "functional po from reset state")
}

func TestStatsAndPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := lockedDesign(t, 8, 4, scan.PerCycle, 2)
	chip, _ := New(d, gf2.Unit(4, 0), randBools(rng, 4))
	chip.Reset()
	chip.Session(randBools(rng, 4), randBools(rng, 8), randBools(rng, 5))
	if chip.Stats.Sessions != 1 || chip.Stats.Cycles == 0 || chip.Stats.Resets == 0 {
		t.Fatalf("stats %+v", chip.Stats)
	}
	if chip.Design() != d {
		t.Fatal("Design accessor broken")
	}
	if !chip.SecretSeed().Equal(gf2.Unit(4, 0)) {
		t.Fatal("SecretSeed wrong")
	}
	for _, fn := range []func(){
		func() { chip.Session(nil, randBools(rng, 7), randBools(rng, 5)) },
		func() { chip.Session(nil, randBools(rng, 8), randBools(rng, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("want panic")
				}
			}()
			fn()
		}()
	}
}

// TestSessionHookCycleAccounting pins the contract the metrics layer
// builds on: across single- and multi-capture sessions, the cycle counts
// delivered to SessionHook sum exactly to the Stats.Cycles delta — no
// cycle is double-counted or missed, resets included.
func TestSessionHookCycleAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const ffs, keyBits = 10, 6
	d := lockedDesign(t, ffs, keyBits, scan.PerCycle, 5)
	chip, err := New(d, randSeed(rng, keyBits), randBools(rng, keyBits))
	if err != nil {
		t.Fatal(err)
	}
	var hookSessions int
	var hookCycles uint64
	chip.SessionHook = func(cycles uint64) {
		if cycles == 0 {
			t.Error("hook delivered a zero-cycle session")
		}
		hookSessions++
		hookCycles += cycles
	}

	tk := randBools(rng, keyBits)
	before := chip.Stats
	// Mixed workload: plain sessions and multi-capture sessions of varying
	// depth, with resets in between (reset cycles are not session cycles).
	for i, captures := range []int{1, 2, 5, 1, 3} {
		if i%2 == 0 {
			chip.Reset()
		}
		cyclesBefore := chip.Stats.Cycles
		hookBefore := hookCycles
		if captures == 1 {
			chip.Session(tk, randBools(rng, ffs), randBools(rng, 5))
		} else {
			pis := make([][]bool, captures)
			for j := range pis {
				pis[j] = randBools(rng, 5)
			}
			chip.SessionN(tk, randBools(rng, ffs), pis)
		}
		// Per-session: the hook argument is exactly this session's delta.
		if got, want := hookCycles-hookBefore, chip.Stats.Cycles-cyclesBefore; got != want {
			t.Fatalf("session %d (captures=%d): hook reported %d cycles, Stats delta %d",
				i, captures, got, want)
		}
	}
	if hookSessions != 5 || chip.Stats.Sessions-before.Sessions != 5 {
		t.Fatalf("hook fired %d times, Stats sessions %d, want 5 each",
			hookSessions, chip.Stats.Sessions-before.Sessions)
	}
	if hookCycles != chip.Stats.Cycles-before.Cycles {
		t.Fatalf("hook total %d cycles, Stats delta %d", hookCycles, chip.Stats.Cycles-before.Cycles)
	}
	// Deeper sessions shift more cycles: a 5-capture session costs more
	// than a single-capture one, and the hook must reflect that.
	if hookCycles <= 5*uint64(ffs) {
		t.Fatalf("implausibly few cycles %d for %d scan flops", hookCycles, ffs)
	}
}

var _ = netlist.New // silence potential unused import in future edits
