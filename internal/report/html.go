package report

import (
	"fmt"
	"html"
	"io"
	"path/filepath"
	"sort"
	"strings"

	"dynunlock/internal/flight"
	"dynunlock/internal/insight"
	"dynunlock/internal/svgchart"
)

// HTMLOptions configures WriteHTML.
type HTMLOptions struct {
	// Title heads the report; empty selects a default.
	Title string
	// Ledger, when non-nil, adds the cross-run comparison table of
	// BENCH_attack.json rows (LedgerPath labels it).
	Ledger     *flight.BenchFile
	LedgerPath string
	// OutDir is the directory the HTML will live in; profile links are
	// rendered relative to it. Empty links bundle paths as given.
	OutDir string
}

// WriteHTML renders the bundles as one self-contained static HTML report:
// no scripts, no external stylesheets or images — every chart is an inline
// SVG. The output is deterministic for fixed inputs (no timestamps, stable
// ordering, fixed number formatting), so re-rendering the same bundles is
// byte-identical — a property CI uses to treat reports as build artifacts.
//
// Each bundle section carries a configuration summary, the per-trial
// outcome table, the rank/seed-space curve (re-derived offline by replaying
// the DIP transcript through the insight tracker), per-iteration solve-time
// and oracle-cycle timelines, solver hotspots, and links to any pprof
// captures recorded in the bundle (format version 2).
func WriteHTML(w io.Writer, bundles []*flight.Bundle, opts HTMLOptions) error {
	title := opts.Title
	if title == "" {
		title = fmt.Sprintf("DynUnlock run report (%d bundle(s))", len(bundles))
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>%s</title>
<style>
body{font-family:system-ui,sans-serif;margin:2em auto;max-width:72em;padding:0 1em;color:#1a1a1a}
h1{font-size:1.5em}h2{font-size:1.2em;border-bottom:1px solid #ccc;padding-bottom:.2em;margin-top:2em}
h3{font-size:1em;margin-bottom:.3em}
table{border-collapse:collapse;margin:.6em 0;font-size:.85em}
th,td{border:1px solid #ccc;padding:.25em .6em;text-align:right}
th{background:#f2f2f2}td:first-child,th:first-child{text-align:left}
figure.chart{margin:.8em 0;display:inline-block}
figcaption{font-size:.85em;font-weight:600;margin-bottom:.2em}
%s
.note{color:#777;font-size:.85em}
nav a{margin-right:1em}
</style>
</head>
<body>
`, html.EscapeString(title), svgchart.CSS)
	fmt.Fprintf(&b, "<h1>%s</h1>\n", html.EscapeString(title))

	// Navigation and cross-bundle overview.
	b.WriteString("<nav>")
	for i, bun := range bundles {
		fmt.Fprintf(&b, `<a href="#bundle-%d">%s</a>`, i, html.EscapeString(filepath.Base(bun.Dir)))
	}
	b.WriteString("</nav>\n")
	writeOverviewTable(&b, bundles)
	if opts.Ledger != nil {
		writeLedgerTable(&b, opts.Ledger, opts.LedgerPath, bundles)
	}

	for i, bun := range bundles {
		writeBundleSection(&b, i, bun, opts)
	}
	b.WriteString("</body>\n</html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// writeOverviewTable renders the cross-run comparison of the bundles being
// reported: one normalized ledger-shaped row per bundle.
func writeOverviewTable(b *strings.Builder, bundles []*flight.Bundle) {
	b.WriteString("<h2 id=\"overview\">Cross-run comparison</h2>\n")
	b.WriteString("<table><tr><th>Bundle</th><th>Benchmark</th><th>Config</th><th>Trials</th>" +
		"<th>Avg iterations</th><th>Avg queries</th><th>Avg candidates</th><th>Avg seconds</th>" +
		"<th>Conflicts</th><th>Propagations</th><th>Broken</th></tr>\n")
	for i, bun := range bundles {
		r := flight.BenchRowFrom(bun)
		fmt.Fprintf(b, `<tr><td><a href="#bundle-%d">%s</a></td><td>%s</td><td>%s</td><td>%d</td>`+
			"<td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%d</td><td>%d</td><td>%v</td></tr>\n",
			i, html.EscapeString(filepath.Base(bun.Dir)), html.EscapeString(r.Benchmark),
			html.EscapeString(benchConfigString(r)), r.Trials,
			trimFloat(r.AvgIterations), trimFloat(r.AvgQueries), trimFloat(r.AvgCandidates),
			trimFloat(r.AvgSeconds), r.TotalConflicts, r.TotalPropagations, r.Broken)
	}
	b.WriteString("</table>\n")
}

// writeLedgerTable renders the BENCH_attack.json rows, with a delta column
// against any reported bundle sharing the row's configuration.
func writeLedgerTable(b *strings.Builder, ledger *flight.BenchFile, path string, bundles []*flight.Bundle) {
	fmt.Fprintf(b, "<h2 id=\"ledger\">Benchmark ledger (%s)</h2>\n", html.EscapeString(path))
	b.WriteString("<table><tr><th>Recorded</th><th>Bundle</th><th>Benchmark</th><th>Config</th>" +
		"<th>Trials</th><th>Avg iterations</th><th>Avg seconds</th><th>Conflicts</th><th>Broken</th>" +
		"<th>Δ iters vs this report</th></tr>\n")
	for _, r := range ledger.Rows {
		delta := ""
		for _, bun := range bundles {
			cur := flight.BenchRowFrom(bun)
			if cur.Benchmark == r.Benchmark && cur.Scale == r.Scale && cur.KeyBits == r.KeyBits &&
				cur.Policy == r.Policy && cur.Mode == r.Mode && cur.Portfolio == r.Portfolio {
				delta = trimFloat(cur.AvgIterations - r.AvgIterations)
				break
			}
		}
		fmt.Fprintf(b, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%d</td><td>%s</td><td>%s</td><td>%d</td><td>%v</td><td>%s</td></tr>\n",
			html.EscapeString(r.RecordedAt), html.EscapeString(r.Bundle), html.EscapeString(r.Benchmark),
			html.EscapeString(benchConfigString(r)), r.Trials, trimFloat(r.AvgIterations),
			trimFloat(r.AvgSeconds), r.TotalConflicts, r.Broken, delta)
	}
	b.WriteString("</table>\n")
}

func benchConfigString(r flight.BenchRow) string {
	s := fmt.Sprintf("scale=%d k=%d %s %s pf=%d", r.Scale, r.KeyBits, r.Policy, r.Mode, r.Portfolio)
	if r.NativeXor {
		s += " xor"
	}
	if r.AIG {
		s += " aig"
	}
	if r.Simplify {
		s += " simplify"
	}
	if r.Analytic {
		s += " analytic"
	}
	return s
}

// writeBundleSection renders one bundle: summary, trial table, charts,
// hotspots, and profile links.
func writeBundleSection(b *strings.Builder, idx int, bun *flight.Bundle, opts HTMLOptions) {
	m := &bun.Manifest
	fmt.Fprintf(b, "<h2 id=\"bundle-%d\">%s</h2>\n", idx, html.EscapeString(filepath.Base(bun.Dir)))
	fmt.Fprintf(b, "<p class=\"note\">%s · recorded %s by %s · %s %s/%s · format v%d</p>\n",
		html.EscapeString(bun.Dir), html.EscapeString(m.CreatedAt), html.EscapeString(orDashHTML(m.Tool)),
		html.EscapeString(m.Fingerprint.GoVersion), html.EscapeString(m.Fingerprint.GOOS),
		html.EscapeString(m.Fingerprint.GOARCH), m.FormatVersion)
	fmt.Fprintf(b, "<p>%s scale=%d keybits=%d policy=%s mode=%s portfolio=%d seed=%d · %d session(s), %d DIP iteration(s)</p>\n",
		html.EscapeString(m.Benchmark), m.Scale, m.Lock.KeyBits, html.EscapeString(m.Lock.Policy),
		html.EscapeString(m.Mode), m.Portfolio, m.SeedBase, len(bun.Sessions), len(bun.DIPs))

	// Trial outcomes. Encode columns are zero on pre-v3 bundles.
	b.WriteString("<table><tr><th>Trial</th><th>Candidates</th><th>Iterations</th><th>Queries</th>" +
		"<th>Rank</th><th>Seconds</th><th>Conflicts</th><th>Enc vars</th><th>Enc clauses</th><th>Success</th></tr>\n")
	for _, t := range bun.Result.Trials {
		fmt.Fprintf(b, "<tr><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%v</td></tr>\n",
			t.Trial, len(t.SeedCandidates), t.Iterations, t.Queries, t.Rank,
			trimFloat(t.Seconds), t.Solver.Conflicts, t.EncodeVars, t.EncodeClauses, t.Success)
	}
	b.WriteString("</table>\n")

	writeRankChart(b, bun)
	writeSolveTimeChart(b, bun)
	writeCycleChart(b, bun)
	writeHotspots(b, bun)
	writeProfileLinks(b, bun, opts)
}

// writeRankChart replays the bundle's DIP transcript through the insight
// tracker (offline, no chip) and plots the certified rank climbing toward
// its analytic target while the surviving seed-space exponent falls.
func writeRankChart(b *strings.Builder, bun *flight.Bundle) {
	d, err := bun.Design()
	if err != nil {
		fmt.Fprintf(b, "<p class=\"note\">rank curve unavailable: %s</p>\n", html.EscapeString(err.Error()))
		return
	}
	trials := dipsByTrial(bun)
	var ss []series
	target := 0
	for _, tr := range trials {
		tk, err := insight.New(d, insight.Options{})
		if err != nil {
			fmt.Fprintf(b, "<p class=\"note\">rank curve unavailable: %s</p>\n", html.EscapeString(err.Error()))
			return
		}
		target = tk.TargetRank()
		for _, rec := range tr.dips {
			dip, errD := flight.ParseBits(rec.DIP)
			resp, errR := flight.ParseBits(rec.Response)
			if errD != nil || errR != nil {
				continue
			}
			tk.Observe(dip, resp)
		}
		rank := series{Name: fmt.Sprintf("trial %d rank", tr.trial)}
		seeds := series{Name: fmt.Sprintf("trial %d seeds", tr.trial), Dashed: true}
		rank.X, rank.Y = append(rank.X, 0), append(rank.Y, 0)
		seeds.X, seeds.Y = append(seeds.X, 0), append(seeds.Y, float64(d.Config.KeyBits))
		for _, p := range tk.History() {
			rank.X, rank.Y = append(rank.X, float64(p.DIP)), append(rank.Y, float64(p.Rank))
			seeds.X, seeds.Y = append(seeds.X, float64(p.DIP)), append(seeds.Y, float64(p.SeedsLog2))
		}
		ss = append(ss, rank, seeds)
	}
	if len(ss) > 0 {
		// Horizontal target-rank reference line spanning the widest trial.
		xmax := 1.0
		for _, s := range ss {
			if n := len(s.X); n > 0 {
				xmax = max2(xmax, s.X[n-1])
			}
		}
		ss = append(ss, series{Name: "rank target", Dashed: true,
			X: []float64{0, xmax}, Y: []float64{float64(target), float64(target)}})
	}
	b.WriteString(lineChart("Rank / seed-space curve (insight replay)", "DIP iteration", "bits", ss))
	b.WriteString("\n")
}

// writeSolveTimeChart plots each iteration's SAT solve wall time.
func writeSolveTimeChart(b *strings.Builder, bun *flight.Bundle) {
	var ss []series
	for _, tr := range dipsByTrial(bun) {
		s := series{Name: fmt.Sprintf("trial %d", tr.trial)}
		for _, rec := range tr.dips {
			s.X = append(s.X, float64(rec.Iteration))
			s.Y = append(s.Y, rec.SolveMS)
		}
		ss = append(ss, s)
	}
	b.WriteString(lineChart("Per-iteration solve time", "DIP iteration", "solve ms", ss))
	b.WriteString("\n")
}

// writeCycleChart plots the scan-cycle cost of every oracle session in
// issue order, one series per trial.
func writeCycleChart(b *strings.Builder, bun *flight.Bundle) {
	byTrial := map[int]*series{}
	var order []int
	for _, s := range bun.Sessions {
		ser := byTrial[s.Trial]
		if ser == nil {
			ser = &series{Name: fmt.Sprintf("trial %d", s.Trial)}
			byTrial[s.Trial] = ser
			order = append(order, s.Trial)
		}
		ser.X = append(ser.X, float64(s.Seq))
		ser.Y = append(ser.Y, float64(s.Cycles))
	}
	sort.Ints(order)
	var ss []series
	for _, t := range order {
		ss = append(ss, *byTrial[t])
	}
	b.WriteString(lineChart("Oracle scan cycles per session", "session (issue order)", "cycles", ss))
	b.WriteString("\n")
}

// writeHotspots renders per-iteration solver effort: the conflict delta
// chart and a table of the heaviest iterations (the DIP records snapshot
// cumulative counters, so consecutive differences localize the work).
func writeHotspots(b *strings.Builder, bun *flight.Bundle) {
	type spot struct {
		trial, iter int
		conf, prop  uint64
		solveMS     float64
	}
	var spots []spot
	var ss []series
	for _, tr := range dipsByTrial(bun) {
		s := series{Name: fmt.Sprintf("trial %d", tr.trial)}
		var prevC, prevP uint64
		for _, rec := range tr.dips {
			dc := rec.Solver.Conflicts - prevC
			dp := rec.Solver.Propagations - prevP
			prevC, prevP = rec.Solver.Conflicts, rec.Solver.Propagations
			spots = append(spots, spot{tr.trial, rec.Iteration, dc, dp, rec.SolveMS})
			s.X = append(s.X, float64(rec.Iteration))
			s.Y = append(s.Y, float64(dc))
		}
		ss = append(ss, s)
	}
	b.WriteString(lineChart("Solver conflicts per iteration", "DIP iteration", "conflicts Δ", ss))
	b.WriteString("\n")
	if len(spots) == 0 {
		return
	}
	sort.SliceStable(spots, func(i, j int) bool { return spots[i].conf > spots[j].conf })
	n := len(spots)
	if n > 5 {
		n = 5
	}
	fmt.Fprintf(b, "<h3>Solver hotspots (top %d of %d iterations by conflicts)</h3>\n", n, len(spots))
	b.WriteString("<table><tr><th>Trial</th><th>Iteration</th><th>Conflicts Δ</th><th>Propagations Δ</th><th>Solve ms</th></tr>\n")
	for _, s := range spots[:n] {
		fmt.Fprintf(b, "<tr><td>%d</td><td>%d</td><td>%d</td><td>%d</td><td>%s</td></tr>\n",
			s.trial, s.iter, s.conf, s.prop, trimFloat(s.solveMS))
	}
	b.WriteString("</table>\n")
}

// writeProfileLinks links any pprof captures stored in the bundle (format
// version 2 manifests).
func writeProfileLinks(b *strings.Builder, bun *flight.Bundle, opts HTMLOptions) {
	if len(bun.Manifest.Profiles) == 0 {
		return
	}
	b.WriteString("<h3>Profiles</h3>\n<p>")
	for i, p := range bun.Manifest.Profiles {
		target := filepath.Join(bun.Dir, p)
		if opts.OutDir != "" {
			if rel, err := filepath.Rel(opts.OutDir, target); err == nil {
				target = rel
			}
		}
		if i > 0 {
			b.WriteString(" · ")
		}
		fmt.Fprintf(b, `<a href="%s">%s</a>`, html.EscapeString(filepath.ToSlash(target)), html.EscapeString(p))
	}
	b.WriteString("</p>\n<p class=\"note\">inspect with: go tool pprof &lt;file&gt;</p>\n")
}

// trialDIPs groups one trial's DIP records in iteration order.
type trialDIPs struct {
	trial int
	dips  []flight.DIPRecord
}

// dipsByTrial splits the bundle's DIP transcript per trial, each sorted by
// iteration, trials in ascending order.
func dipsByTrial(bun *flight.Bundle) []trialDIPs {
	byTrial := map[int][]flight.DIPRecord{}
	for _, d := range bun.DIPs {
		byTrial[d.Trial] = append(byTrial[d.Trial], d)
	}
	trials := make([]int, 0, len(byTrial))
	for t := range byTrial {
		trials = append(trials, t)
	}
	sort.Ints(trials)
	out := make([]trialDIPs, 0, len(trials))
	for _, t := range trials {
		dips := byTrial[t]
		sort.SliceStable(dips, func(i, j int) bool { return dips[i].Iteration < dips[j].Iteration })
		out = append(out, trialDIPs{trial: t, dips: dips})
	}
	return out
}

func orDashHTML(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
