package report

import (
	"bytes"
	"strings"
	"testing"
	"unicode/utf8"

	"dynunlock/internal/flight"
)

const committedBundle = "../../bench/bundles/table2_parallel1/table2_s5378"

func openCommitted(t *testing.T, dir string) *flight.Bundle {
	t.Helper()
	b, err := flight.Open(dir)
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	return b
}

func TestWriteHTMLSelfContainedAndDeterministic(t *testing.T) {
	b := openCommitted(t, committedBundle)
	ledger, err := flight.ReadBenchFile("../../BENCH_attack.json")
	if err != nil {
		t.Fatalf("read ledger: %v", err)
	}
	opts := HTMLOptions{Ledger: ledger, LedgerPath: "BENCH_attack.json"}
	var r1, r2 bytes.Buffer
	if err := WriteHTML(&r1, []*flight.Bundle{b}, opts); err != nil {
		t.Fatal(err)
	}
	if err := WriteHTML(&r2, []*flight.Bundle{b}, opts); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r1.Bytes(), r2.Bytes()) {
		t.Fatal("report must render byte-identically for the same inputs")
	}
	out := r1.String()
	if !utf8.ValidString(out) {
		t.Fatal("report must be valid UTF-8")
	}
	for _, want := range []string{
		"<!DOCTYPE html>",
		"<svg", "</svg>",
		"Rank / seed-space curve",
		"Per-iteration solve time",
		"Oracle scan cycles per session",
		"Solver conflicts per iteration",
		"Cross-run comparison",
		"Benchmark ledger (BENCH_attack.json)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Self-contained: no external scripts, stylesheets, or images.
	for _, forbid := range []string{"<script", "<link", "<img", "src=\"http", "href=\"http"} {
		if strings.Contains(out, forbid) {
			t.Errorf("report must be self-contained; found %q", forbid)
		}
	}
	// The insight replay must produce a populated rank chart, not the
	// empty-data placeholder.
	rankSection := out[strings.Index(out, "Rank / seed-space curve"):]
	rankSVG := rankSection[:strings.Index(rankSection, "</svg>")]
	if !strings.Contains(rankSVG, "<polyline") {
		t.Error("rank chart has no polylines — insight replay produced no points")
	}
	if strings.Contains(rankSVG, "no data") {
		t.Error("rank chart rendered the empty placeholder")
	}
}

func TestWriteHTMLOneSectionPerBundle(t *testing.T) {
	bundles := []*flight.Bundle{
		openCommitted(t, "../../bench/bundles/table2_parallel1/table2_s5378"),
		openCommitted(t, "../../bench/bundles/table2_parallel1/table2_b20"),
	}
	var buf bytes.Buffer
	if err := WriteHTML(&buf, bundles, HTMLOptions{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{`id="bundle-0"`, `id="bundle-1"`} {
		if strings.Count(out, id) != 1 {
			t.Errorf("want exactly one %s section", id)
		}
	}
	// Overview table: one linked row per bundle.
	if got := strings.Count(out, `<td><a href="#bundle-`); got != len(bundles) {
		t.Errorf("overview rows = %d, want %d", got, len(bundles))
	}
}

func TestWriteHTMLProfileLinks(t *testing.T) {
	b := openCommitted(t, committedBundle)
	var without bytes.Buffer
	if err := WriteHTML(&without, []*flight.Bundle{b}, HTMLOptions{}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(without.String(), "<h3>Profiles</h3>") {
		t.Fatal("v1 bundle must not render profile links")
	}
	b.Manifest.Profiles = []string{"cpu.pprof", "heap.pprof"}
	var with bytes.Buffer
	if err := WriteHTML(&with, []*flight.Bundle{b}, HTMLOptions{}); err != nil {
		t.Fatal(err)
	}
	out := with.String()
	if !strings.Contains(out, "<h3>Profiles</h3>") ||
		!strings.Contains(out, "cpu.pprof") || !strings.Contains(out, "heap.pprof") {
		t.Fatalf("profile links missing: %q", out[len(out)-600:])
	}
}

func TestLineChartEmptySeries(t *testing.T) {
	svg := lineChart("empty", "x", "y", nil)
	if !strings.Contains(svg, "no data") {
		t.Fatalf("empty chart must render a placeholder: %s", svg)
	}
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Fatal("placeholder must still be a complete SVG element")
	}
}
