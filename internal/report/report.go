// Package report renders experiment results as aligned text tables in the
// style of the paper's Tables I–III.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) error {
	width := make([]int, len(t.headers))
	for i, h := range t.headers {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", width[i]-len(c)))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.headers)
	total := 0
	for _, wd := range width {
		total += wd + 2
	}
	sb.WriteString(strings.Repeat("-", total-2))
	sb.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// String renders to a string.
func (t *Table) String() string {
	var sb strings.Builder
	if err := t.Render(&sb); err != nil {
		return err.Error()
	}
	return sb.String()
}
