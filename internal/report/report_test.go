package report

import (
	"strings"
	"testing"
	"time"

	"dynunlock/internal/trace"
)

func TestTableRender(t *testing.T) {
	tb := New("Table II", "Benchmark", "# Key bits", "# Seed candidates", "Time (s)")
	tb.AddRow("s5378", 128, 16, 41.0)
	tb.AddRow("s13207", 128, 128, 26.5)
	out := tb.String()
	if !strings.Contains(out, "Table II") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[3], "s5378") || !strings.Contains(lines[3], "41") {
		t.Fatalf("row formatting: %q", lines[3])
	}
	if strings.Contains(lines[3], "41.00") {
		t.Fatal("trailing zeros not trimmed")
	}
	if !strings.Contains(lines[4], "26.5") {
		t.Fatalf("float kept: %q", lines[4])
	}
	// Columns aligned: the header column start of col 2 equals row col 2.
	hIdx := strings.Index(lines[1], "# Key bits")
	rIdx := strings.Index(lines[3], "128")
	if hIdx != rIdx {
		t.Fatalf("column misaligned: header at %d, row at %d\n%s", hIdx, rIdx, out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := New("", "A", "B")
	tb.AddRow(1, 2)
	if strings.HasPrefix(tb.String(), "\n") {
		t.Fatal("stray blank title line")
	}
}

func TestStageTableAggregates(t *testing.T) {
	spans := []trace.SpanRecord{
		{Name: "encode", Duration: 2 * time.Millisecond, Counters: map[string]uint64{"clauses": 100}},
		{Name: "dip_loop", Duration: 5 * time.Millisecond, Counters: map[string]uint64{"dips": 3, "conflicts": 40}},
		{Name: "encode", Duration: 3 * time.Millisecond, Counters: map[string]uint64{"clauses": 50}},
		{Name: "verify", Duration: time.Millisecond, Counters: nil},
	}
	out := StageTable("Stages", spans).String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// First-seen order: encode, dip_loop, verify — after title + header + rule.
	if !strings.HasPrefix(lines[3], "encode") || !strings.HasPrefix(lines[4], "dip_loop") || !strings.HasPrefix(lines[5], "verify") {
		t.Fatalf("row order wrong:\n%s", out)
	}
	// The aggregated clause count lands in the Clauses column, not the
	// generic counter string.
	if !strings.Contains(lines[3], "150") || strings.Contains(lines[3], "clauses=") {
		t.Fatalf("encode row not aggregated into the Clauses column:\n%s", out)
	}
	if !strings.Contains(lines[4], "conflicts=40 dips=3") {
		t.Fatalf("counters not sorted by key:\n%s", out)
	}
	if !strings.Contains(lines[5], "-") {
		t.Fatalf("empty counters not dashed:\n%s", out)
	}
}

func TestStageTableFoldsUnknownIntoOther(t *testing.T) {
	spans := []trace.SpanRecord{
		{Name: "warmup", Duration: time.Millisecond, Counters: map[string]uint64{"items": 2}},
		{Name: "encode", Duration: 2 * time.Millisecond},
		{Name: "custom_pass", Duration: 3 * time.Millisecond, Counters: map[string]uint64{"items": 5}},
		{Name: "verify", Duration: time.Millisecond},
	}
	out := StageTable("Stages", spans).String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Known stages keep first-seen order; unknown names merge into one
	// trailing "other" row instead of being listed (or lost) individually.
	if !strings.HasPrefix(lines[3], "encode") || !strings.HasPrefix(lines[4], "verify") {
		t.Fatalf("known stage order wrong:\n%s", out)
	}
	if !strings.HasPrefix(lines[5], "other") {
		t.Fatalf("missing trailing other row:\n%s", out)
	}
	if strings.Contains(out, "warmup") || strings.Contains(out, "custom_pass") {
		t.Fatalf("unknown span names leaked as rows:\n%s", out)
	}
	// Both unknown spans aggregate: 2 calls, 4ms, items=7.
	if !strings.Contains(lines[5], "2") || !strings.Contains(lines[5], "4") || !strings.Contains(lines[5], "items=7") {
		t.Fatalf("other row not aggregated:\n%s", out)
	}
	// A trace of only known stages has no other row.
	if out := StageTable("S", spans[1:2]).String(); strings.Contains(out, "other") {
		t.Fatalf("spurious other row:\n%s", out)
	}
}
