package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := New("Table II", "Benchmark", "# Key bits", "# Seed candidates", "Time (s)")
	tb.AddRow("s5378", 128, 16, 41.0)
	tb.AddRow("s13207", 128, 128, 26.5)
	out := tb.String()
	if !strings.Contains(out, "Table II") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[3], "s5378") || !strings.Contains(lines[3], "41") {
		t.Fatalf("row formatting: %q", lines[3])
	}
	if strings.Contains(lines[3], "41.00") {
		t.Fatal("trailing zeros not trimmed")
	}
	if !strings.Contains(lines[4], "26.5") {
		t.Fatalf("float kept: %q", lines[4])
	}
	// Columns aligned: the header column start of col 2 equals row col 2.
	hIdx := strings.Index(lines[1], "# Key bits")
	rIdx := strings.Index(lines[3], "128")
	if hIdx != rIdx {
		t.Fatalf("column misaligned: header at %d, row at %d\n%s", hIdx, rIdx, out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := New("", "A", "B")
	tb.AddRow(1, 2)
	if strings.HasPrefix(tb.String(), "\n") {
		t.Fatal("stray blank title line")
	}
}
