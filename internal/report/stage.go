package report

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dynunlock/internal/trace"
)

// FigStages lists the span names of the paper's Fig. 3 attack stages, in
// pipeline order. StageTable keys on this set: these names get their own
// rows, anything else folds into "other".
var FigStages = []string{"unroll", "encode", "dip_loop", "extract", "enumerate", "refine", "verify"}

// StageTable aggregates trace span records into a per-stage timing table:
// one row per distinct Fig. 3 stage name in first-seen order, summing
// durations and counters across repeated spans (e.g. one span per trial).
// Spans with names outside FigStages — custom instrumentation, future
// stages — are not dropped: they aggregate into a trailing "other" row so
// the table always accounts for every span it was given. This is how the
// CLIs turn a trace collector into the Fig. 3 stage breakdown.
func StageTable(title string, spans []trace.SpanRecord) *Table {
	type agg struct {
		calls    int
		total    time.Duration
		counters map[string]uint64
	}
	known := map[string]bool{}
	for _, name := range FigStages {
		known[name] = true
	}
	order := []string{}
	byName := map[string]*agg{}
	for _, sp := range spans {
		name := sp.Name
		if !known[name] {
			name = "other"
		}
		a, ok := byName[name]
		if !ok {
			a = &agg{counters: map[string]uint64{}}
			byName[name] = a
			if name != "other" {
				order = append(order, name)
			}
		}
		a.calls++
		a.total += sp.Duration
		for k, v := range sp.Counters {
			a.counters[k] += v
		}
	}
	if _, ok := byName["other"]; ok {
		order = append(order, "other")
	}
	tb := New(title, "Stage", "Calls", "Time (ms)", "Vars", "Clauses", "Counters")
	for _, name := range order {
		a := byName[name]
		// Plain ASCII milliseconds: duration strings mix µ (multibyte) into
		// the byte-width column alignment.
		tb.AddRow(name, a.calls, float64(a.total)/float64(time.Millisecond),
			encodeCell(a.counters, "vars", "encode_vars"),
			encodeCell(a.counters, "clauses", "encode_clauses"),
			counterString(a.counters))
	}
	return tb
}

// encodeCell extracts the encode-size column for a stage: the initial
// encoder emits "vars"/"clauses", the DIP loop accumulates the per-DIP
// growth as "encode_vars"/"encode_clauses". The matched key is consumed so
// the generic counter string does not repeat it; stages without either key
// render "-".
func encodeCell(c map[string]uint64, keys ...string) string {
	for _, k := range keys {
		if v, ok := c[k]; ok {
			delete(c, k)
			return fmt.Sprintf("%d", v)
		}
	}
	return "-"
}

// counterString renders counters deterministically as "k=v k=v" in key
// order; empty counters render as "-" so columns stay aligned.
func counterString(c map[string]uint64) string {
	if len(c) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, c[k])
	}
	return strings.Join(parts, " ")
}
