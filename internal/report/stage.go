package report

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"dynunlock/internal/trace"
)

// StageTable aggregates trace span records into a per-stage timing table:
// one row per distinct span name in first-seen order, summing durations and
// counters across repeated spans (e.g. one span per trial). This is how the
// CLIs turn a trace collector into the Fig. 3 stage breakdown.
func StageTable(title string, spans []trace.SpanRecord) *Table {
	type agg struct {
		calls    int
		total    time.Duration
		counters map[string]uint64
	}
	order := []string{}
	byName := map[string]*agg{}
	for _, sp := range spans {
		a, ok := byName[sp.Name]
		if !ok {
			a = &agg{counters: map[string]uint64{}}
			byName[sp.Name] = a
			order = append(order, sp.Name)
		}
		a.calls++
		a.total += sp.Duration
		for k, v := range sp.Counters {
			a.counters[k] += v
		}
	}
	tb := New(title, "Stage", "Calls", "Time (ms)", "Counters")
	for _, name := range order {
		a := byName[name]
		// Plain ASCII milliseconds: duration strings mix µ (multibyte) into
		// the byte-width column alignment.
		tb.AddRow(name, a.calls, float64(a.total)/float64(time.Millisecond), counterString(a.counters))
	}
	return tb
}

// counterString renders counters deterministically as "k=v k=v" in key
// order; empty counters render as "-" so columns stay aligned.
func counterString(c map[string]uint64) string {
	if len(c) == 0 {
		return "-"
	}
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, c[k])
	}
	return strings.Join(parts, " ")
}
