package report

import "dynunlock/internal/svgchart"

// Chart rendering lives in internal/svgchart (extracted so the /live
// dashboard in internal/metrics shares the report's visual language
// without an import cycle). These aliases keep the report-internal call
// sites unchanged; the rendered markup is byte-identical to the
// pre-extraction output, which html_test.go's determinism check pins.

// series is one polyline (or bar group) on a chart, in data coordinates.
type series = svgchart.Series

// lineChart renders the series as one inline SVG element.
func lineChart(caption, xLabel, yLabel string, ss []series) string {
	return svgchart.LineChart(caption, xLabel, yLabel, ss)
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
