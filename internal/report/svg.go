package report

import (
	"fmt"
	"html"
	"strings"
)

// Inline-SVG chart rendering for the HTML run report. The output is fully
// self-contained (no scripts, no external references) and deterministic:
// coordinates are formatted with fixed precision and series render in the
// order given, so identical inputs produce byte-identical markup.

// chartPalette cycles per-series stroke colors (a colorblind-tolerant
// ten-hue palette).
var chartPalette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd",
	"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

// series is one polyline (or bar group) on a chart, in data coordinates.
type series struct {
	Name   string
	X, Y   []float64
	Dashed bool
}

// chart geometry (pixels). One fixed size keeps every chart in the report
// aligned and the markup reproducible.
const (
	chartW  = 660
	chartH  = 230
	chartML = 52 // left margin: y tick labels
	chartMR = 12
	chartMT = 26 // top margin: legend row
	chartMB = 34 // bottom margin: x tick labels + axis label
)

// maxLegendEntries bounds the legend row; charts with more series state the
// overflow explicitly instead of dropping it silently.
const maxLegendEntries = 8

// svgNum formats a pixel coordinate with fixed precision (determinism).
func svgNum(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimRight(s, ".")
}

// niceTicks returns up to n+1 evenly spaced tick values covering [lo, hi].
func niceTicks(lo, hi float64, n int) []float64 {
	if hi <= lo {
		hi = lo + 1
	}
	step := (hi - lo) / float64(n)
	out := make([]float64, 0, n+1)
	for i := 0; i <= n; i++ {
		out = append(out, lo+step*float64(i))
	}
	return out
}

// lineChart renders the series as one inline SVG element. yLabel names the
// vertical axis; xLabel the horizontal. An empty chart (no points at all)
// renders a placeholder message instead of axes.
func lineChart(caption, xLabel, yLabel string, ss []series) string {
	var pts int
	xmin, xmax := 0.0, 1.0
	ymin, ymax := 0.0, 1.0
	first := true
	for _, s := range ss {
		for i := range s.X {
			if first {
				xmin, xmax = s.X[i], s.X[i]
				ymin, ymax = s.Y[i], s.Y[i]
				first = false
			}
			xmin, xmax = min2(xmin, s.X[i]), max2(xmax, s.X[i])
			ymin, ymax = min2(ymin, s.Y[i]), max2(ymax, s.Y[i])
			pts++
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<figure class="chart"><figcaption>%s</figcaption>`, html.EscapeString(caption))
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" role="img">`,
		chartW, chartH, chartW, chartH)
	if pts == 0 {
		fmt.Fprintf(&b, `<text x="%d" y="%d" class="empty">no data</text>`, chartW/2, chartH/2)
		b.WriteString(`</svg></figure>`)
		return b.String()
	}
	// Counts and bit measures read best anchored at zero.
	if ymin > 0 {
		ymin = 0
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	plotW := float64(chartW - chartML - chartMR)
	plotH := float64(chartH - chartMT - chartMB)
	px := func(x float64) float64 { return float64(chartML) + (x-xmin)/(xmax-xmin)*plotW }
	py := func(y float64) float64 { return float64(chartMT) + (1-(y-ymin)/(ymax-ymin))*plotH }

	// Gridlines and tick labels.
	for _, ty := range niceTicks(ymin, ymax, 4) {
		y := py(ty)
		fmt.Fprintf(&b, `<line class="grid" x1="%d" y1="%s" x2="%d" y2="%s"/>`,
			chartML, svgNum(y), chartW-chartMR, svgNum(y))
		fmt.Fprintf(&b, `<text class="tick" x="%d" y="%s" text-anchor="end">%s</text>`,
			chartML-5, svgNum(y+3.5), html.EscapeString(trimFloat(ty)))
	}
	for _, tx := range niceTicks(xmin, xmax, 6) {
		x := px(tx)
		fmt.Fprintf(&b, `<text class="tick" x="%s" y="%d" text-anchor="middle">%s</text>`,
			svgNum(x), chartH-chartMB+14, html.EscapeString(trimFloat(tx)))
	}
	// Axes.
	fmt.Fprintf(&b, `<line class="axis" x1="%d" y1="%d" x2="%d" y2="%d"/>`,
		chartML, chartMT, chartML, chartH-chartMB)
	fmt.Fprintf(&b, `<line class="axis" x1="%d" y1="%d" x2="%d" y2="%d"/>`,
		chartML, chartH-chartMB, chartW-chartMR, chartH-chartMB)
	fmt.Fprintf(&b, `<text class="label" x="%d" y="%d" text-anchor="middle">%s</text>`,
		chartML+int(plotW/2), chartH-4, html.EscapeString(xLabel))
	fmt.Fprintf(&b, `<text class="label" x="12" y="%d" text-anchor="middle" transform="rotate(-90 12 %d)">%s</text>`,
		chartMT+int(plotH/2), chartMT+int(plotH/2), html.EscapeString(yLabel))

	// Series polylines (single points render as a circle marker).
	for si, s := range ss {
		color := chartPalette[si%len(chartPalette)]
		dash := ""
		if s.Dashed {
			dash = ` stroke-dasharray="5 3"`
		}
		if len(s.X) == 1 {
			fmt.Fprintf(&b, `<circle cx="%s" cy="%s" r="2.5" fill="%s"/>`,
				svgNum(px(s.X[0])), svgNum(py(s.Y[0])), color)
			continue
		}
		coords := make([]string, len(s.X))
		for i := range s.X {
			coords[i] = svgNum(px(s.X[i])) + "," + svgNum(py(s.Y[i]))
		}
		fmt.Fprintf(&b, `<polyline class="line" points="%s" stroke="%s"%s/>`,
			strings.Join(coords, " "), color, dash)
	}
	// Legend row along the top margin.
	lx := chartML
	for si, s := range ss {
		if si == maxLegendEntries {
			fmt.Fprintf(&b, `<text class="tick" x="%d" y="%d">+%d more</text>`,
				lx, chartMT-10, len(ss)-maxLegendEntries)
			break
		}
		color := chartPalette[si%len(chartPalette)]
		fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`,
			lx, chartMT-14, lx+14, chartMT-14, color)
		fmt.Fprintf(&b, `<text class="tick" x="%d" y="%d">%s</text>`,
			lx+18, chartMT-10, html.EscapeString(s.Name))
		lx += 22 + 7*len(s.Name)
	}
	b.WriteString(`</svg></figure>`)
	return b.String()
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
