package sat

// RestartPolicy selects the solver's restart strategy. Different policies
// explore the search space in different orders, which is the point of a
// portfolio: on the same formula one instance's strategy often terminates
// far earlier than another's.
type RestartPolicy uint8

const (
	// RestartHybrid is the default: Luby-sequence conflict budgets plus the
	// Glucose condition (restart early when recent learnt-clause LBDs are
	// much worse than the long-run average, suppressed near a model).
	RestartHybrid RestartPolicy = iota
	// RestartLuby uses pure Luby-sequence budgets with no LBD condition.
	RestartLuby
	// RestartGeometric grows the conflict budget geometrically from a small
	// base, restarting rarely in long runs.
	RestartGeometric
)

// PhaseInit selects how decision polarities are initialized. Phase saving
// still takes over after the first assignment; the initial phase only
// biases the first descent.
type PhaseInit uint8

const (
	// PhaseFalse branches false first (MiniSat default; current behavior).
	PhaseFalse PhaseInit = iota
	// PhaseTrue branches true first.
	PhaseTrue
	// PhaseRandom draws each variable's initial phase from the config RNG.
	PhaseRandom
)

// Config diversifies a solver instance. The zero value reproduces New()
// exactly, bit for bit: portfolio instance 0 always runs the zero config so
// a portfolio of one is the sequential solver.
type Config struct {
	// RandomSeed seeds the instance RNG. Non-zero also enables occasional
	// random decisions (about 1 in 128), which decorrelates otherwise
	// identical instances. Zero disables all randomness.
	RandomSeed int64
	// VarDecay is the VSIDS activity decay factor; 0 selects 0.95.
	VarDecay float64
	// RestartPolicy selects the restart strategy.
	RestartPolicy RestartPolicy
	// PhaseInit selects initial decision polarities.
	PhaseInit PhaseInit
}

// NewWithConfig returns an empty solver diversified by cfg.
func NewWithConfig(cfg Config) *Solver {
	s := New()
	s.cfg = cfg
	if cfg.VarDecay > 0 {
		s.varDecay = cfg.VarDecay
	}
	if cfg.RandomSeed != 0 {
		s.rngState = uint64(cfg.RandomSeed)
		s.rnd() // discard the first output, which correlates with the seed
	}
	return s
}

// Diversify returns the portfolio configuration for instance i. Instance 0
// is always the zero config (the sequential solver); higher indices cycle
// through decay, restart, and phase variations with distinct RNG seeds.
func Diversify(i int) Config {
	if i <= 0 {
		return Config{}
	}
	decays := [...]float64{0.85, 0.99, 0.75, 0.92, 0.80, 0.97, 0.65}
	policies := [...]RestartPolicy{RestartLuby, RestartGeometric, RestartHybrid}
	phases := [...]PhaseInit{PhaseTrue, PhaseRandom, PhaseFalse}
	return Config{
		RandomSeed:    int64(i)*0x9e3779b97f4a7c + int64(i) + 1,
		VarDecay:      decays[(i-1)%len(decays)],
		RestartPolicy: policies[(i-1)%len(policies)],
		PhaseInit:     phases[(i-1)%len(phases)],
	}
}

// rnd advances the instance RNG (splitmix64; deterministic per seed, no
// shared state between instances).
func (s *Solver) rnd() uint64 {
	s.rngState += 0x9e3779b97f4a7c15
	z := s.rngState
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Interrupt asks the solver to stop as soon as possible; the in-flight
// Solve returns Unknown. Safe to call from any goroutine while Solve runs
// on another — this is how a portfolio cancels the losers of a race.
func (s *Solver) Interrupt() { s.interrupt.Store(true) }

// Interrupted reports whether an interrupt is pending.
func (s *Solver) Interrupted() bool { return s.interrupt.Load() }

// ClearInterrupt re-arms the solver after an interrupt so the next Solve
// call runs normally.
func (s *Solver) ClearInterrupt() { s.interrupt.Store(false) }
