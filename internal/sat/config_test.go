package sat

import (
	"math/rand"
	"testing"
	"time"

	"dynunlock/internal/cnf"
)

// addPigeonhole encodes PHP(n+1, n) — n+1 pigeons, n holes, UNSAT.
func addPigeonhole(s *Solver, n int) {
	p := make([][]int, n+1)
	for i := range p {
		p[i] = make([]int, n)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i <= n; i++ {
		c := make([]cnf.Lit, n)
		for j := 0; j < n; j++ {
			c[j] = lit(p[i][j], false)
		}
		s.AddClause(c...)
	}
	for j := 0; j < n; j++ {
		for i1 := 0; i1 <= n; i1++ {
			for i2 := i1 + 1; i2 <= n; i2++ {
				s.AddClause(lit(p[i1][j], true), lit(p[i2][j], true))
			}
		}
	}
}

// randomFormula builds a random 3-SAT formula with the given generator.
func randomFormula(rng *rand.Rand, nVars, nClauses int) *cnf.Formula {
	var f cnf.Formula
	f.NumVars = nVars
	for i := 0; i < nClauses; i++ {
		var c []cnf.Lit
		for k := 0; k < 3; k++ {
			c = append(c, lit(rng.Intn(nVars), rng.Intn(2) == 0))
		}
		f.Add(c...)
	}
	return &f
}

// The zero config must reproduce New() exactly: same statuses, same models,
// same counter trajectories. Portfolio instance 0 relies on this for the
// "-parallel 1 is bit-identical to sequential" guarantee.
func TestZeroConfigMatchesNew(t *testing.T) {
	a, b := New(), NewWithConfig(Config{})
	addPigeonhole(a, 5)
	addPigeonhole(b, 5)
	if sa, sb := a.Solve(), b.Solve(); sa != sb {
		t.Fatalf("status %v vs %v", sa, sb)
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats diverged: %+v vs %+v", a.Stats, b.Stats)
	}
	rng := rand.New(rand.NewSource(7))
	f := randomFormula(rng, 40, 160)
	a2, b2 := New(), NewWithConfig(Config{})
	a2.AddFormula(f)
	b2.AddFormula(f)
	if sa, sb := a2.Solve(), b2.Solve(); sa != sb {
		t.Fatalf("status %v vs %v", sa, sb)
	}
	if a2.Stats != b2.Stats {
		t.Fatalf("stats diverged on random formula: %+v vs %+v", a2.Stats, b2.Stats)
	}
}

// Every diversified configuration must stay sound and complete.
func TestDiversifiedConfigsCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		nVars := 3 + rng.Intn(9)
		f := randomFormula(rng, nVars, 2+rng.Intn(5*nVars))
		want := false
		assign := make([]bool, nVars)
		for m := 0; m < 1<<uint(nVars); m++ {
			for v := 0; v < nVars; v++ {
				assign[v] = m>>uint(v)&1 == 1
			}
			if f.Eval(assign) {
				want = true
				break
			}
		}
		for inst := 0; inst < 6; inst++ {
			s := NewWithConfig(Diversify(inst))
			s.AddFormula(f)
			got := s.Solve()
			if want && got != Sat {
				t.Fatalf("trial %d inst %d: want SAT, got %v", trial, inst, got)
			}
			if !want && got != Unsat {
				t.Fatalf("trial %d inst %d: want UNSAT, got %v", trial, inst, got)
			}
			if got == Sat && !f.Eval(s.Model()[:f.NumVars]) {
				t.Fatalf("trial %d inst %d: bad model", trial, inst)
			}
		}
	}
	// UNSAT must also hold under every restart/phase combination.
	for inst := 0; inst < 6; inst++ {
		s := NewWithConfig(Diversify(inst))
		addPigeonhole(s, 5)
		if st := s.Solve(); st != Unsat {
			t.Fatalf("inst %d: PHP = %v, want UNSAT", inst, st)
		}
	}
}

func TestDiversifyInstanceZeroIsSequential(t *testing.T) {
	if Diversify(0) != (Config{}) {
		t.Fatalf("Diversify(0) = %+v, want zero config", Diversify(0))
	}
	seen := map[int64]bool{}
	for i := 1; i < 16; i++ {
		c := Diversify(i)
		if c.RandomSeed == 0 {
			t.Fatalf("Diversify(%d) has zero seed", i)
		}
		if seen[c.RandomSeed] {
			t.Fatalf("Diversify(%d) reuses a seed", i)
		}
		seen[c.RandomSeed] = true
		if c != Diversify(i) {
			t.Fatalf("Diversify(%d) not deterministic", i)
		}
	}
}

func TestInterruptPending(t *testing.T) {
	s := New()
	addPigeonhole(s, 4)
	s.Interrupt()
	if !s.Interrupted() {
		t.Fatal("Interrupted() = false after Interrupt()")
	}
	if st := s.Solve(); st != Unknown {
		t.Fatalf("interrupted Solve = %v, want UNKNOWN", st)
	}
	s.ClearInterrupt()
	if s.Interrupted() {
		t.Fatal("Interrupted() = true after ClearInterrupt()")
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("resumed Solve = %v, want UNSAT", st)
	}
}

// Interrupting a running Solve from another goroutine must make it return
// Unknown promptly, leaving the solver reusable.
func TestInterruptConcurrent(t *testing.T) {
	s := New()
	addPigeonhole(s, 11) // far beyond what CDCL finishes in milliseconds
	done := make(chan Status, 1)
	go func() { done <- s.Solve() }()
	time.Sleep(20 * time.Millisecond)
	s.Interrupt()
	select {
	case st := <-done:
		if st != Unknown {
			t.Fatalf("Solve = %v, want UNKNOWN after interrupt", st)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Solve did not return after Interrupt")
	}
	// The solver must remain consistent: it can keep searching the same hard
	// instance afterwards. Proving PHP(12,11) UNSAT outright is far beyond a
	// plain CDCL solver, so bound the check with a conflict budget — any
	// clean return (including budget-exhausted Unknown) demonstrates the
	// interrupted state was fully unwound.
	s.ClearInterrupt()
	before := s.Stats.Conflicts
	s.ConflictBudget = int64(before) + 2000
	v := s.NewVar()
	s.AddClause(lit(v, false))
	if st := s.Solve(lit(v, false)); st == Sat {
		t.Fatal("post-interrupt Solve = SAT on an UNSAT instance")
	}
	if s.Stats.Conflicts <= before {
		t.Fatal("post-interrupt Solve did not resume searching")
	}
}
