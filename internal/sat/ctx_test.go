package sat

import (
	"context"
	"testing"
	"time"

	"dynunlock/internal/cnf"
)

// pigeonhole encodes PHP(n+1, n) — n+1 pigeons into n holes — a classic
// UNSAT family with exponential resolution proofs: large enough n runs far
// longer than any test timeout, which makes it the cancellation workload.
func pigeonhole(s *Solver, n int) {
	p := make([][]int, n+1)
	for i := range p {
		p[i] = make([]int, n)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i <= n; i++ {
		c := make([]cnf.Lit, n)
		for j := 0; j < n; j++ {
			c[j] = lit(p[i][j], false)
		}
		s.AddClause(c...)
	}
	for j := 0; j < n; j++ {
		for i1 := 0; i1 <= n; i1++ {
			for i2 := i1 + 1; i2 <= n; i2++ {
				s.AddClause(lit(p[i1][j], true), lit(p[i2][j], true))
			}
		}
	}
}

func TestSolveCtxBackgroundMatchesSolve(t *testing.T) {
	build := func() *Solver {
		s := New()
		pigeonhole(s, 5)
		return s
	}
	a, b := build(), build()
	stA := a.Solve()
	stB := b.SolveCtx(context.Background())
	if stA != stB {
		t.Fatalf("Solve=%v SolveCtx=%v", stA, stB)
	}
	if a.Stats != b.Stats {
		t.Fatalf("stats diverge: %+v vs %+v", a.Stats, b.Stats)
	}
}

func TestSolveCtxCancelMidSolve(t *testing.T) {
	s := New()
	pigeonhole(s, 10)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	st := s.SolveCtx(ctx)
	if st != Unknown {
		t.Fatalf("cancelled solve returned %v", st)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("cancellation took %v", el)
	}
	if s.Interrupted() {
		t.Fatal("interrupt not re-armed after ctx cancellation")
	}
	if !s.Okay() {
		t.Fatal("solver inconsistent after cancellation")
	}
	// The solver must remain usable: a budgeted re-solve runs normally.
	before := s.Stats.Conflicts
	s.ConflictBudget = int64(before) + 50
	if st := s.SolveCtx(context.Background()); st != Unknown {
		t.Fatalf("budgeted re-solve returned %v", st)
	}
	if s.Stats.Conflicts <= before {
		t.Fatal("re-solve did no work")
	}
}

func TestSolveCtxDeadline(t *testing.T) {
	s := New()
	pigeonhole(s, 10)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if st := s.SolveCtx(ctx); st != Unknown {
		t.Fatalf("deadline solve returned %v", st)
	}
	if ctx.Err() != context.DeadlineExceeded {
		t.Fatalf("ctx err = %v", ctx.Err())
	}
}

func TestSolveCtxPreCancelled(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(lit(a, false), lit(b, false))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if st := s.SolveCtx(ctx); st != Unknown {
		t.Fatalf("pre-cancelled solve returned %v", st)
	}
	// Fresh context: the same solver completes the solve.
	if st := s.SolveCtx(context.Background()); st != Sat {
		t.Fatal("solver unusable after pre-cancelled call")
	}
}

func TestPropagationBudget(t *testing.T) {
	s := New()
	pigeonhole(s, 8)
	s.PropagationBudget = 10
	if st := s.Solve(); st != Unknown {
		t.Fatalf("want Unknown under propagation budget, got %v", st)
	}
	if !s.BudgetExhausted() {
		t.Fatal("BudgetExhausted must report the spent budget")
	}
	s.PropagationBudget = 0
	if s.BudgetExhausted() {
		t.Fatal("cleared budget still reported exhausted")
	}
}
