package sat

import (
	"strings"
	"testing"

	"dynunlock/internal/cnf"
)

// Classic small DIMACS instances exercised through the cnf loader.
func TestDimacsInstances(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want Status
	}{
		{
			name: "simple sat",
			src: `c trivial
p cnf 3 3
1 2 0
-1 3 0
-2 -3 0
`,
			want: Sat,
		},
		{
			name: "unsat chain",
			src: `p cnf 2 4
1 2 0
1 -2 0
-1 2 0
-1 -2 0
`,
			want: Unsat,
		},
		{
			name: "aim-style implication ladder",
			src: `p cnf 6 9
1 0
-1 2 0
-2 3 0
-3 4 0
-4 5 0
-5 6 0
-6 -1 0
2 4 6 0
-2 -4 0
`,
			want: Unsat,
		},
	}
	for _, tc := range cases {
		f, err := cnf.ParseDimacs(strings.NewReader(tc.src))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		s := New()
		s.AddFormula(f)
		if got := s.Solve(); got != tc.want {
			t.Errorf("%s: got %v want %v", tc.name, got, tc.want)
		}
		if tc.want == Sat && !f.Eval(s.Model()[:f.NumVars]) {
			t.Errorf("%s: model invalid", tc.name)
		}
	}
}

// Incremental reuse across many Solve calls with interleaved clause adds.
func TestIncrementalManyRounds(t *testing.T) {
	s := New()
	n := 30
	vars := make([]int, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	// Chain of implications x0 -> x1 -> ... -> x29.
	for i := 0; i+1 < n; i++ {
		s.AddClause(cnf.MkLit(vars[i], true), cnf.MkLit(vars[i+1], false))
	}
	for round := 0; round < n-1; round++ {
		if s.Solve(cnf.MkLit(vars[0], false)) != Sat {
			t.Fatalf("round %d: UNSAT", round)
		}
		for i := 0; i < n; i++ {
			if !s.Value(vars[i]) {
				t.Fatalf("round %d: implication chain broken at %d", round, i)
			}
		}
		// Progressively forbid suffix variables unless x0 is false.
		s.AddClause(cnf.MkLit(vars[0], true), cnf.MkLit(vars[n-1], false))
	}
	// Finally force the contradiction.
	s.AddClause(cnf.MkLit(vars[n-1], true))
	if s.Solve(cnf.MkLit(vars[0], false)) != Unsat {
		t.Fatal("want UNSAT under assumption")
	}
	if s.Solve() != Sat {
		t.Fatal("solver must remain usable")
	}
}
