package sat

// varHeap is an indexed max-heap of variables ordered by activity. It
// supports decrease/increase-key via the position index, as required by
// VSIDS branching.
type varHeap struct {
	act     *[]float64 // shared activity array, indexed by variable
	heap    []int      // heap of variables
	indices []int      // variable -> position in heap, -1 if absent
}

func newVarHeap(act *[]float64) *varHeap {
	return &varHeap{act: act}
}

func (h *varHeap) less(a, b int) bool { return (*h.act)[a] > (*h.act)[b] }

func (h *varHeap) grow(v int) {
	for len(h.indices) <= v {
		h.indices = append(h.indices, -1)
	}
}

func (h *varHeap) contains(v int) bool {
	return v < len(h.indices) && h.indices[v] >= 0
}

func (h *varHeap) empty() bool { return len(h.heap) == 0 }

func (h *varHeap) insert(v int) {
	h.grow(v)
	if h.indices[v] >= 0 {
		return
	}
	h.indices[v] = len(h.heap)
	h.heap = append(h.heap, v)
	h.percolateUp(h.indices[v])
}

func (h *varHeap) removeMax() int {
	v := h.heap[0]
	last := h.heap[len(h.heap)-1]
	h.heap[0] = last
	h.indices[last] = 0
	h.indices[v] = -1
	h.heap = h.heap[:len(h.heap)-1]
	if len(h.heap) > 1 {
		h.percolateDown(0)
	}
	return v
}

// decrease notifies the heap that v's activity increased (so it may need to
// move up; the name follows the MiniSat convention of a min-heap on
// negated activity).
func (h *varHeap) bump(v int) {
	if h.contains(v) {
		h.percolateUp(h.indices[v])
	}
}

func (h *varHeap) percolateUp(i int) {
	v := h.heap[i]
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(v, h.heap[p]) {
			break
		}
		h.heap[i] = h.heap[p]
		h.indices[h.heap[p]] = i
		i = p
	}
	h.heap[i] = v
	h.indices[v] = i
}

func (h *varHeap) percolateDown(i int) {
	v := h.heap[i]
	n := len(h.heap)
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		child := l
		if r < n && h.less(h.heap[r], h.heap[l]) {
			child = r
		}
		if !h.less(h.heap[child], v) {
			break
		}
		h.heap[i] = h.heap[child]
		h.indices[h.heap[child]] = i
		i = child
	}
	h.heap[i] = v
	h.indices[v] = i
}
