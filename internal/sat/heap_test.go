package sat

import (
	"math/rand"
	"testing"
)

func TestVarHeapOrdering(t *testing.T) {
	act := make([]float64, 50)
	h := newVarHeap(&act)
	rng := rand.New(rand.NewSource(1))
	for v := 0; v < 50; v++ {
		act[v] = rng.Float64()
		h.insert(v)
	}
	prev := 2.0
	seen := map[int]bool{}
	for !h.empty() {
		v := h.removeMax()
		if seen[v] {
			t.Fatal("duplicate pop")
		}
		seen[v] = true
		if act[v] > prev {
			t.Fatalf("heap order violated: %f after %f", act[v], prev)
		}
		prev = act[v]
	}
	if len(seen) != 50 {
		t.Fatalf("popped %d", len(seen))
	}
}

func TestVarHeapBump(t *testing.T) {
	act := make([]float64, 10)
	h := newVarHeap(&act)
	for v := 0; v < 10; v++ {
		act[v] = float64(v)
		h.insert(v)
	}
	act[0] = 100
	h.bump(0)
	if got := h.removeMax(); got != 0 {
		t.Fatalf("bumped var not max: got %d", got)
	}
}

func TestVarHeapReinsert(t *testing.T) {
	act := make([]float64, 4)
	h := newVarHeap(&act)
	for v := 0; v < 4; v++ {
		h.insert(v)
	}
	v := h.removeMax()
	if h.contains(v) {
		t.Fatal("popped var still contained")
	}
	h.insert(v)
	if !h.contains(v) {
		t.Fatal("reinsert failed")
	}
	h.insert(v) // duplicate insert is a no-op
	count := 0
	for !h.empty() {
		h.removeMax()
		count++
	}
	if count != 4 {
		t.Fatalf("popped %d, want 4", count)
	}
}
