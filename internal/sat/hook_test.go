package sat

import "testing"

func TestHookSampleTotalsMatchStats(t *testing.T) {
	s := New()
	addPigeonhole(s, 7)
	var got Stats
	var samples int
	var lbdObs int
	s.SetHook(&Hook{
		Every:       64,
		LearntEvery: 4,
		OnSample: func(d Stats, learntDB int) {
			samples++
			got.Decisions += d.Decisions
			got.Propagations += d.Propagations
			got.Conflicts += d.Conflicts
			got.Restarts += d.Restarts
			got.Learnt += d.Learnt
			got.Removed += d.Removed
			if learntDB < 0 {
				t.Errorf("negative learnt DB size %d", learntDB)
			}
		},
		OnLearnt: func(lbd int32, size int) {
			lbdObs++
			if lbd < 1 || size < 1 {
				t.Errorf("implausible learnt sample: lbd=%d size=%d", lbd, size)
			}
		},
	})
	if st := s.Solve(); st != Unsat {
		t.Fatalf("PHP = %v, want UNSAT", st)
	}
	// The end-of-Solve flush makes the sampled deltas sum to the exact
	// totals — this is what lets published counters converge.
	if got != s.Stats {
		t.Fatalf("summed hook deltas = %+v, want %+v", got, s.Stats)
	}
	if samples < 2 {
		t.Fatalf("want multiple samples, got %d (conflicts=%d)", samples, s.Stats.Conflicts)
	}
	if lbdObs == 0 {
		t.Fatal("want sampled learnt-clause observations")
	}
}

func TestHookTotalsAcrossIncrementalSolves(t *testing.T) {
	s := New()
	addPigeonhole(s, 6)
	var got Stats
	s.SetHook(&Hook{OnSample: func(d Stats, _ int) {
		got.Conflicts += d.Conflicts
		got.Decisions += d.Decisions
	}})
	// Solve twice (second call returns instantly from the cached UNSAT
	// state); totals must still line up at every boundary.
	s.Solve()
	s.Solve()
	if got.Conflicts != s.Stats.Conflicts || got.Decisions != s.Stats.Decisions {
		t.Fatalf("hook totals %+v diverge from Stats %+v", got, s.Stats)
	}
}

// TestHookDoesNotPerturbSearch is the bit-identical guarantee behind the
// metrics layer: the hook observes, never steers.
func TestHookDoesNotPerturbSearch(t *testing.T) {
	run := func(withHook bool) Stats {
		s := New()
		addPigeonhole(s, 7)
		if withHook {
			s.SetHook(&Hook{
				Every:       32,
				LearntEvery: 8,
				OnSample:    func(Stats, int) {},
				OnLearnt:    func(int32, int) {},
			})
		}
		if st := s.Solve(); st != Unsat {
			t.Fatalf("PHP = %v, want UNSAT", st)
		}
		return s.Stats
	}
	if plain, hooked := run(false), run(true); plain != hooked {
		t.Fatalf("hook perturbed the search: %+v vs %+v", plain, hooked)
	}
}

func TestSetHookNilRemoves(t *testing.T) {
	s := New()
	addPigeonhole(s, 5)
	fired := false
	s.SetHook(&Hook{OnSample: func(Stats, int) { fired = true }})
	s.SetHook(nil)
	s.Solve()
	if fired {
		t.Fatal("removed hook must not fire")
	}
}
