package sat

import "testing"

func TestHookSampleTotalsMatchStats(t *testing.T) {
	s := New()
	addPigeonhole(s, 7)
	var got Stats
	var samples int
	var lbdObs int
	s.SetHook(&Hook{
		Every:       64,
		LearntEvery: 4,
		OnSample: func(d Stats, learntDB int) {
			samples++
			got.Decisions += d.Decisions
			got.Propagations += d.Propagations
			got.Conflicts += d.Conflicts
			got.Restarts += d.Restarts
			got.Learnt += d.Learnt
			got.Removed += d.Removed
			if learntDB < 0 {
				t.Errorf("negative learnt DB size %d", learntDB)
			}
		},
		OnLearnt: func(lbd int32, size int) {
			lbdObs++
			if lbd < 1 || size < 1 {
				t.Errorf("implausible learnt sample: lbd=%d size=%d", lbd, size)
			}
		},
	})
	if st := s.Solve(); st != Unsat {
		t.Fatalf("PHP = %v, want UNSAT", st)
	}
	// The end-of-Solve flush makes the sampled deltas sum to the exact
	// totals — this is what lets published counters converge.
	if got != s.Stats {
		t.Fatalf("summed hook deltas = %+v, want %+v", got, s.Stats)
	}
	if samples < 2 {
		t.Fatalf("want multiple samples, got %d (conflicts=%d)", samples, s.Stats.Conflicts)
	}
	if lbdObs == 0 {
		t.Fatal("want sampled learnt-clause observations")
	}
}

func TestHookTotalsAcrossIncrementalSolves(t *testing.T) {
	s := New()
	addPigeonhole(s, 6)
	var got Stats
	s.SetHook(&Hook{OnSample: func(d Stats, _ int) {
		got.Conflicts += d.Conflicts
		got.Decisions += d.Decisions
	}})
	// Solve twice (second call returns instantly from the cached UNSAT
	// state); totals must still line up at every boundary.
	s.Solve()
	s.Solve()
	if got.Conflicts != s.Stats.Conflicts || got.Decisions != s.Stats.Decisions {
		t.Fatalf("hook totals %+v diverge from Stats %+v", got, s.Stats)
	}
}

// TestHookLearntSamplingAccounting pins the OnLearnt sampling contract:
// with LearntEvery=1 every learnt clause is observed, so the sample count
// equals Stats.Learnt plus the unit-clause conflicts (which learn a
// single literal rather than a stored clause), and every sampled LBD is
// bounded by its clause size. With a sparser interval the count shrinks
// to the sampled fraction, never exceeding the dense count.
func TestHookLearntSamplingAccounting(t *testing.T) {
	run := func(every uint64) (obs int, sumSize int, st Stats) {
		s := New()
		addPigeonhole(s, 7)
		s.SetHook(&Hook{
			LearntEvery: every,
			OnLearnt: func(lbd int32, size int) {
				obs++
				sumSize += size
				if lbd < 1 || size < 1 {
					t.Errorf("implausible learnt sample: lbd=%d size=%d", lbd, size)
				}
				if int(lbd) > size {
					t.Errorf("lbd %d exceeds clause size %d", lbd, size)
				}
			},
		})
		if got := s.Solve(); got != Unsat {
			t.Fatalf("PHP = %v, want UNSAT", got)
		}
		return obs, sumSize, s.Stats
	}

	dense, denseSize, st := run(1)
	// Every conflict is sampled at interval 1, except the terminal level-0
	// conflict that proves UNSAT before anything is learnt; Stats.Learnt
	// counts only stored (≥2-literal) clauses, so dense ≥ learnt.
	if uint64(dense) != st.Conflicts-1 {
		t.Fatalf("dense OnLearnt observations = %d, want every learning conflict (%d)", dense, st.Conflicts-1)
	}
	if uint64(dense) < st.Learnt {
		t.Fatalf("dense observations %d < Stats.Learnt %d", dense, st.Learnt)
	}
	if denseSize < dense {
		t.Fatalf("summed sizes %d < observations %d (sizes are ≥1)", denseSize, dense)
	}
	sparse, _, _ := run(64)
	if sparse == 0 || sparse >= dense {
		t.Fatalf("sparse sampling (every=64) observed %d, want in (0, %d)", sparse, dense)
	}
}

func TestHookRestartTotalsMatchStats(t *testing.T) {
	s := New()
	addPigeonhole(s, 7)
	var restarts uint64
	var segConflicts uint64
	s.SetHook(&Hook{OnRestart: func(conflicts uint64) {
		restarts++
		segConflicts += conflicts
	}})
	if st := s.Solve(); st != Unsat {
		t.Fatalf("PHP = %v, want UNSAT", st)
	}
	if restarts != s.Stats.Restarts {
		t.Fatalf("OnRestart fired %d times, Stats.Restarts = %d", restarts, s.Stats.Restarts)
	}
	if s.Stats.Restarts == 0 {
		t.Fatal("want at least one restart on PHP-7")
	}
	// Per-segment conflict counts never exceed the total.
	if segConflicts > s.Stats.Conflicts {
		t.Fatalf("restart segments report %d conflicts, total is %d", segConflicts, s.Stats.Conflicts)
	}
}

// TestHookDoesNotPerturbSearch is the bit-identical guarantee behind the
// metrics layer: the hook observes, never steers.
func TestHookDoesNotPerturbSearch(t *testing.T) {
	run := func(withHook bool) Stats {
		s := New()
		addPigeonhole(s, 7)
		if withHook {
			s.SetHook(&Hook{
				Every:       32,
				LearntEvery: 8,
				OnSample:    func(Stats, int) {},
				OnLearnt:    func(int32, int) {},
				OnRestart:   func(uint64) {},
			})
		}
		if st := s.Solve(); st != Unsat {
			t.Fatalf("PHP = %v, want UNSAT", st)
		}
		return s.Stats
	}
	if plain, hooked := run(false), run(true); plain != hooked {
		t.Fatalf("hook perturbed the search: %+v vs %+v", plain, hooked)
	}
}

func TestSetHookNilRemoves(t *testing.T) {
	s := New()
	addPigeonhole(s, 5)
	fired := false
	s.SetHook(&Hook{OnSample: func(Stats, int) { fired = true }})
	s.SetHook(nil)
	s.Solve()
	if fired {
		t.Fatal("removed hook must not fire")
	}
}
