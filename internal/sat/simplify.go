package sat

// Simplify performs level-0 inprocessing: after completing top-level unit
// propagation it removes every clause satisfied by the level-0 trail,
// strengthens the remainder by deleting their falsified literals, and
// compacts the watcher lists of the removed clauses. Both the problem and
// learnt databases are processed. XOR rows are left untouched — they
// self-reduce against assigned variables during propagation and carry
// their own watch scheme.
//
// The attack loop calls this between DIPs: each oracle response is
// asserted as units, whose consequences permanently satisfy or shorten a
// swath of the clauses added for earlier circuit copies. Removing them
// here keeps propagation from revisiting dead clauses on every later
// solve.
//
// Simplify is an equivalence-preserving transformation, so search results
// (and candidate sets) are unchanged; only the traversal cost drops. It
// returns false if the formula is already unsatisfiable at the top level.
func (s *Solver) Simplify() bool {
	if !s.ok {
		return false
	}
	s.cancelUntil(0)
	if s.propagate() != nil {
		s.ok = false
		return false
	}
	s.Stats.SimplifyCalls++
	s.clauses = s.cleanDB(s.clauses)
	s.learnts = s.cleanDB(s.learnts)
	// Counters changed outside a Solve call: deliver them to the telemetry
	// hook now rather than at the next solve boundary.
	s.flushHook()
	return true
}

// cleanDB drops satisfied clauses from cs and strengthens survivors,
// preserving order. After complete level-0 propagation a non-satisfied
// clause cannot have an assigned watched literal (it would have been unit),
// so strengthening only ever trims positions >= 2 and the watch lists of
// survivors stay valid as-is.
func (s *Solver) cleanDB(cs []*clause) []*clause {
	kept := cs[:0]
	for _, c := range cs {
		satisfied := false
		for _, l := range c.lits {
			if s.value(l) == lTrue {
				satisfied = true
				break
			}
		}
		if satisfied {
			if s.locked(c) {
				// The clause is the stored reason of a level-0 literal.
				// Level-0 assignments are permanent and never re-examined
				// by conflict analysis, so the pointer can be dropped
				// rather than dangled.
				s.reason[c.lits[0].Var()] = nil
			}
			s.detach(c)
			s.Stats.SimplifyRemoved++
			continue
		}
		n := 2
		for k := 2; k < len(c.lits); k++ {
			if s.value(c.lits[k]) == lFalse {
				s.Stats.SimplifyStrengthened++
				continue
			}
			c.lits[n] = c.lits[k]
			n++
		}
		c.lits = c.lits[:n]
		kept = append(kept, c)
	}
	// Zero the tail so removed clauses are collectable.
	for i := len(kept); i < len(cs); i++ {
		cs[i] = nil
	}
	return kept
}
