package sat

import (
	"math/rand"
	"testing"

	"dynunlock/internal/cnf"
)

func mk(v int, neg bool) cnf.Lit { return cnf.MkLit(v, neg) }

func TestSimplifyRemovesSatisfied(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(mk(a, false), mk(b, false), mk(c, false))
	s.AddClause(mk(a, true), mk(b, false))
	if got := s.NumClauses(); got != 2 {
		t.Fatalf("setup: %d clauses", got)
	}
	s.AddClause(mk(a, false)) // unit: a = true
	if !s.Simplify() {
		t.Fatal("Simplify reported UNSAT")
	}
	// Clause 1 is satisfied by a directly; clause 2 propagates to b = true
	// at the top level and is then satisfied as well, so both disappear.
	if got := s.NumClauses(); got != 0 {
		t.Fatalf("after simplify: %d clauses, want 0", got)
	}
	if s.Stats.SimplifyRemoved != 2 {
		t.Fatalf("SimplifyRemoved = %d", s.Stats.SimplifyRemoved)
	}
	if s.Solve() != Sat {
		t.Fatal("formula must stay satisfiable")
	}
	if !s.Value(b) {
		t.Fatal("propagated unit lost")
	}
}

func TestSimplifyStrengthens(t *testing.T) {
	s := New()
	a, b, c, d := s.NewVar(), s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(mk(b, false), mk(c, false), mk(a, false), mk(d, false))
	s.AddClause(mk(a, true)) // a = false: the 4-clause loses a tail literal
	if !s.Simplify() {
		t.Fatal("Simplify reported UNSAT")
	}
	if s.Stats.SimplifyStrengthened == 0 {
		t.Fatal("no literal strengthened")
	}
	if s.Solve() != Sat {
		t.Fatal("formula must stay satisfiable")
	}
}

func TestSimplifyDetectsUnsat(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(mk(a, false))
	if ok := s.AddClause(mk(a, true)); ok {
		t.Fatal("contradictory unit accepted")
	}
	if s.Simplify() {
		t.Fatal("Simplify must report UNSAT")
	}
}

// Simplify must never change solve outcomes or models on random instances,
// including across incremental clause additions and assumption solving.
func TestSimplifyPreservesEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		n := 8 + rng.Intn(12)
		var lits [][]cnf.Lit
		nc := 3*n/2 + rng.Intn(2*n)
		for i := 0; i < nc; i++ {
			w := 1 + rng.Intn(4)
			cl := make([]cnf.Lit, w)
			for j := range cl {
				cl[j] = mk(rng.Intn(n), rng.Intn(2) == 1)
			}
			lits = append(lits, cl)
		}
		plain, simp := New(), New()
		for v := 0; v < n; v++ {
			plain.NewVar()
			simp.NewVar()
		}
		okP, okS := true, true
		for i, cl := range lits {
			okP = plain.AddClause(cl...)
			okS = simp.AddClause(cl...)
			if i%5 == 4 {
				okS = simp.Simplify() && okS
			}
			if okP != okS {
				t.Fatalf("trial %d: ok divergence after clause %d: %v vs %v", trial, i, okP, okS)
			}
			if !okP {
				break
			}
		}
		if !okP {
			continue
		}
		simp.Simplify()
		assume := []cnf.Lit{mk(rng.Intn(n), rng.Intn(2) == 1)}
		rp, rs := plain.Solve(assume...), simp.Solve(assume...)
		if rp != rs {
			t.Fatalf("trial %d: solve divergence %v vs %v", trial, rp, rs)
		}
		rp, rs = plain.Solve(), simp.Solve()
		if rp != rs {
			t.Fatalf("trial %d: unassumed solve divergence %v vs %v", trial, rp, rs)
		}
	}
}

// Inprocessing between solves of a running instance: solve, assert units,
// simplify, solve again; the final status must match a fresh solver fed
// the same clauses.
func TestSimplifyIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 40; trial++ {
		n := 10 + rng.Intn(10)
		s := New()
		ref := New()
		for v := 0; v < n; v++ {
			s.NewVar()
			ref.NewVar()
		}
		addRandom := func(k int) [][]cnf.Lit {
			var added [][]cnf.Lit
			for i := 0; i < k; i++ {
				w := 2 + rng.Intn(3)
				cl := make([]cnf.Lit, w)
				for j := range cl {
					cl[j] = mk(rng.Intn(n), rng.Intn(2) == 1)
				}
				added = append(added, cl)
			}
			return added
		}
		alive := true
		for round := 0; round < 4 && alive; round++ {
			for _, cl := range addRandom(n / 2) {
				a := s.AddClause(cl...)
				b := ref.AddClause(cl...)
				if a != b {
					t.Fatalf("trial %d: AddClause divergence", trial)
				}
				alive = a
			}
			if !alive {
				break
			}
			if !s.Simplify() {
				if ref.Solve() != Unsat {
					t.Fatalf("trial %d: Simplify UNSAT but reference satisfiable", trial)
				}
				alive = false
				break
			}
			got, want := s.Solve(), ref.Solve()
			if got != want {
				t.Fatalf("trial %d round %d: %v vs %v", trial, round, got, want)
			}
			if got == Unsat {
				alive = false
			}
		}
	}
}
