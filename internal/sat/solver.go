// Package sat implements a conflict-driven clause-learning (CDCL) SAT
// solver in the MiniSat lineage: two-watched-literal propagation, VSIDS
// branching with phase saving, first-UIP conflict analysis with clause
// minimization, Luby restarts, and LBD-guided learnt-clause database
// reduction. It supports incremental solving under assumptions, which the
// oracle-guided SAT attack uses to add distinguishing-input constraints
// between calls.
//
// The solver exists because the reproduction environment provides no
// importable SAT solver; the paper used lingeling. Iteration and candidate
// counts of the attack are solver-independent; only wall-clock scale
// differs.
package sat

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"sort"
	"sync/atomic"

	"dynunlock/internal/cnf"
)

// Status is the result of a Solve call.
type Status int8

// Solve outcomes.
const (
	Unknown Status = iota // budget exhausted
	Sat
	Unsat
)

// String renders the status.
func (s Status) String() string {
	switch s {
	case Sat:
		return "SAT"
	case Unsat:
		return "UNSAT"
	default:
		return "UNKNOWN"
	}
}

type lbool int8

const (
	lUndef lbool = 0
	lTrue  lbool = 1
	lFalse lbool = -1
)

type clause struct {
	lits   []cnf.Lit
	act    float64
	lbd    int32
	learnt bool
}

type watcher struct {
	c       *clause
	blocker cnf.Lit
}

// Stats accumulates solver counters across Solve calls.
type Stats struct {
	Decisions    uint64
	Propagations uint64
	Conflicts    uint64
	Restarts     uint64
	Learnt       uint64
	Removed      uint64
	// XorPropagations counts literals implied by unit XOR rows;
	// XorConflicts counts conflicts raised by violated XOR rows. Both are
	// zero on pure-CNF instances.
	XorPropagations uint64
	XorConflicts    uint64
	// SimplifyCalls counts Solver.Simplify invocations; SimplifyRemoved
	// counts clauses removed as satisfied at the top level;
	// SimplifyStrengthened counts falsified literals deleted from
	// surviving clauses. All are zero unless the caller opts into
	// inprocessing.
	SimplifyCalls        uint64
	SimplifyRemoved      uint64
	SimplifyStrengthened uint64
}

// Solver is an incremental CDCL SAT solver. The zero value is not usable;
// call New.
type Solver struct {
	ok      bool
	clauses []*clause
	learnts []*clause

	watches  [][]watcher // indexed by cnf.Lit
	assigns  []lbool     // indexed by variable
	polarity []bool      // saved phase, true = last assigned false
	activity []float64
	level    []int32
	reason   []*clause
	seen     []byte

	// XOR layer (xor.go): stored parity rows in their original sparse form
	// (what search propagates over), the echelon-reduced shadow system used
	// only inside AddXor for dependence/inconsistency detection with its
	// pivot-variable index, per-variable row watch lists, and per-variable
	// lazy reasons (xorRows index + 1; 0 = not XOR-implied).
	xorRows  []*xorRow
	xorEch   []xorEchRow
	xorPivot map[int32]int32 // pivot variable → xorEch index
	xwatches [][]int32       // indexed by variable
	reasonX  []int32         // indexed by variable

	order    *varHeap
	varInc   float64
	varDecay float64

	claInc   float64
	claDecay float64

	trail    []cnf.Lit
	trailLim []int
	qhead    int

	maxLearnts   float64
	learntGrowth float64

	// Glucose-style restart state: exponential moving averages of learnt-
	// clause LBD (fast/slow) and of trail size at conflicts.
	lbdFast, lbdSlow float64
	trailAvg         float64

	model    []bool
	conflict []cnf.Lit // final conflict clause over assumptions

	// ConflictBudget, when positive, bounds the total number of conflicts a
	// Solve call may spend before returning Unknown.
	ConflictBudget int64

	// PropagationBudget, when positive, bounds the total number of unit
	// propagations a Solve call may spend before returning Unknown. It is a
	// finer-grained work bound than ConflictBudget: propagation count grows
	// even on conflict-free descents, so it also caps easy-but-huge
	// instances.
	PropagationBudget int64

	cfg       Config
	rngState  uint64
	interrupt atomic.Bool

	hook     *Hook
	hookMark Stats

	Stats Stats
}

// Hook receives sampled telemetry from the search loop for live metrics.
// It is strictly observational: callbacks see counter snapshots and may
// not touch the solver. With no hook installed the search loop pays one
// nil check per conflict; with one installed, callbacks fire only every
// Every conflicts (plus once per Solve return), keeping the overhead far
// below the cost of the conflicts themselves.
type Hook struct {
	// Every is the conflict sampling interval for OnSample (0 = 256).
	Every uint64
	// LearntEvery is the conflict sampling interval for OnLearnt (0 = 16).
	LearntEvery uint64
	// OnSample receives the counter growth since the previous sample and
	// the current learnt-clause DB size. Also called at the end of every
	// Solve, so totals converge exactly at solve boundaries.
	OnSample func(delta Stats, learntDB int)
	// OnLearnt receives the LBD and literal count of sampled learnt
	// clauses (an LBD histogram source).
	OnLearnt func(lbd int32, size int)
	// OnRestart fires on every search restart with the conflict count spent
	// in the restarted search segment. Restarts are orders of magnitude
	// rarer than conflicts, so this callback is unsampled.
	OnRestart func(conflicts uint64)
}

// SetHook installs (or, with nil, removes) the telemetry hook. The hook
// never alters solver behavior: search trajectories with and without a
// hook are bit-identical.
func (s *Solver) SetHook(h *Hook) {
	s.hook = h
	s.hookMark = s.Stats
}

// hookConflict fires the sampled hook callbacks after a conflict has been
// recorded. Kept out of the search loop body so the no-hook path stays a
// single branch.
func (s *Solver) hookConflict(lbd int32, size int) {
	h := s.hook
	if h.OnLearnt != nil {
		every := h.LearntEvery
		if every == 0 {
			every = 16
		}
		if s.Stats.Conflicts%every == 0 {
			h.OnLearnt(lbd, size)
		}
	}
	if h.OnSample != nil {
		every := h.Every
		if every == 0 {
			every = 256
		}
		if s.Stats.Conflicts%every == 0 {
			s.flushHook()
		}
	}
}

// flushHook delivers the counter growth since the previous sample.
func (s *Solver) flushHook() {
	h := s.hook
	if h == nil || h.OnSample == nil {
		return
	}
	d := Stats{
		Decisions:       s.Stats.Decisions - s.hookMark.Decisions,
		Propagations:    s.Stats.Propagations - s.hookMark.Propagations,
		Conflicts:       s.Stats.Conflicts - s.hookMark.Conflicts,
		Restarts:        s.Stats.Restarts - s.hookMark.Restarts,
		Learnt:          s.Stats.Learnt - s.hookMark.Learnt,
		Removed:         s.Stats.Removed - s.hookMark.Removed,
		XorPropagations: s.Stats.XorPropagations - s.hookMark.XorPropagations,
		XorConflicts:    s.Stats.XorConflicts - s.hookMark.XorConflicts,

		SimplifyCalls:        s.Stats.SimplifyCalls - s.hookMark.SimplifyCalls,
		SimplifyRemoved:      s.Stats.SimplifyRemoved - s.hookMark.SimplifyRemoved,
		SimplifyStrengthened: s.Stats.SimplifyStrengthened - s.hookMark.SimplifyStrengthened,
	}
	s.hookMark = s.Stats
	h.OnSample(d, len(s.learnts))
}

// New returns an empty solver.
func New() *Solver {
	s := &Solver{
		ok:           true,
		varInc:       1.0,
		varDecay:     0.95,
		claInc:       1.0,
		claDecay:     0.999,
		learntGrowth: 1.1,
	}
	s.order = newVarHeap(&s.activity)
	return s
}

// NewVar allocates a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assigns)
	s.assigns = append(s.assigns, lUndef)
	phase := true // branch false first (MiniSat convention)
	switch s.cfg.PhaseInit {
	case PhaseTrue:
		phase = false
	case PhaseRandom:
		phase = s.rnd()&1 == 1
	}
	s.polarity = append(s.polarity, phase)
	s.activity = append(s.activity, 0)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.reasonX = append(s.reasonX, 0)
	s.seen = append(s.seen, 0)
	s.watches = append(s.watches, nil, nil)
	s.xwatches = append(s.xwatches, nil)
	s.order.insert(v)
	return v
}

// NumVars returns the number of variables allocated.
func (s *Solver) NumVars() int { return len(s.assigns) }

// ensureVars allocates variables up to and including v.
func (s *Solver) ensureVars(v int) {
	for len(s.assigns) <= v {
		s.NewVar()
	}
}

func (s *Solver) value(l cnf.Lit) lbool {
	v := s.assigns[l.Var()]
	if l.Sign() {
		return -v
	}
	return v
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// AddClause adds a problem clause. It returns false if the solver is
// already in an unsatisfiable state at the top level. Clauses may be added
// between Solve calls (incremental use).
func (s *Solver) AddClause(lits ...cnf.Lit) bool {
	if !s.ok {
		return false
	}
	s.cancelUntil(0)
	// Normalize: sort, dedupe, drop false-at-top-level literals, detect
	// tautologies and satisfied clauses.
	ls := make([]cnf.Lit, len(lits))
	copy(ls, lits)
	for _, l := range ls {
		s.ensureVars(l.Var())
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	out := ls[:0]
	var prev cnf.Lit = -1
	for _, l := range ls {
		switch {
		case s.value(l) == lTrue || l == prev.Not() && prev != -1:
			return true // satisfied or tautological
		case s.value(l) == lFalse || l == prev:
			continue // false at level 0, or duplicate
		}
		out = append(out, l)
		prev = l
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		if s.propagate() != nil {
			s.ok = false
			return false
		}
		return true
	}
	c := &clause{lits: append([]cnf.Lit(nil), out...)}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

// AddFormula adds every clause and XOR constraint of f, allocating
// variables as needed.
func (s *Solver) AddFormula(f *cnf.Formula) bool {
	s.ensureVars(f.NumVars - 1)
	for _, c := range f.Clauses {
		if !s.AddClause(c...) {
			return false
		}
	}
	for _, x := range f.Xors {
		if !s.AddXor(x, true) {
			return false
		}
	}
	return s.ok
}

func (s *Solver) attach(c *clause) {
	w0, w1 := c.lits[0], c.lits[1]
	s.watches[w0.Not()] = append(s.watches[w0.Not()], watcher{c, w1})
	s.watches[w1.Not()] = append(s.watches[w1.Not()], watcher{c, w0})
}

func (s *Solver) detach(c *clause) {
	for _, w := range []cnf.Lit{c.lits[0].Not(), c.lits[1].Not()} {
		ws := s.watches[w]
		for i := range ws {
			if ws[i].c == c {
				ws[i] = ws[len(ws)-1]
				s.watches[w] = ws[:len(ws)-1]
				break
			}
		}
	}
}

func (s *Solver) uncheckedEnqueue(p cnf.Lit, from *clause) {
	v := p.Var()
	if p.Sign() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, p)
}

// propagate performs unit propagation; it returns the conflicting clause or
// nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Stats.Propagations++
		// Parity rows first: XOR conflicts surface on a shorter trail,
		// before this literal's CNF consequences pile further assignments
		// onto the current level, which keeps the learnt clauses from the
		// parity-heavy lock logic tight.
		if len(s.xorRows) > 0 {
			if confl := s.propagateXor(p); confl != nil {
				s.qhead = len(s.trail)
				return confl
			}
		}
		ws := s.watches[p]
		falseLit := p.Not()
		n := 0
	nextWatcher:
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.value(w.blocker) == lTrue {
				ws[n] = w
				n++
				continue
			}
			c := w.c
			lits := c.lits
			if lits[0] == falseLit {
				lits[0], lits[1] = lits[1], lits[0]
			}
			first := lits[0]
			if first != w.blocker && s.value(first) == lTrue {
				ws[n] = watcher{c, first}
				n++
				continue
			}
			for k := 2; k < len(lits); k++ {
				if s.value(lits[k]) != lFalse {
					lits[1], lits[k] = lits[k], lits[1]
					nw := lits[1].Not()
					s.watches[nw] = append(s.watches[nw], watcher{c, first})
					continue nextWatcher
				}
			}
			// No new watch: clause is unit or conflicting.
			ws[n] = watcher{c, first}
			n++
			if s.value(first) == lFalse {
				// Conflict: copy remaining watchers and bail.
				for i++; i < len(ws); i++ {
					ws[n] = ws[i]
					n++
				}
				s.watches[p] = ws[:n]
				s.qhead = len(s.trail)
				return c
			}
			s.uncheckedEnqueue(first, c)
		}
		s.watches[p] = ws[:n]
	}
	return nil
}

func (s *Solver) cancelUntil(lvl int) {
	if s.decisionLevel() <= lvl {
		return
	}
	for i := len(s.trail) - 1; i >= s.trailLim[lvl]; i-- {
		p := s.trail[i]
		v := p.Var()
		s.assigns[v] = lUndef
		s.polarity[v] = p.Sign()
		s.reason[v] = nil
		s.reasonX[v] = 0
		s.order.insert(v)
	}
	s.trail = s.trail[:s.trailLim[lvl]]
	s.qhead = len(s.trail)
	s.trailLim = s.trailLim[:lvl]
}

func (s *Solver) varBump(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.bump(v)
}

func (s *Solver) claBump(c *clause) {
	c.act += s.claInc
	if c.act > 1e20 {
		for _, l := range s.learnts {
			l.act *= 1e-20
		}
		s.claInc *= 1e-20
	}
}

// analyze performs first-UIP conflict analysis, returning the learnt clause
// (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]cnf.Lit, int) {
	learnt := []cnf.Lit{0} // placeholder for asserting literal
	pathC := 0
	var p cnf.Lit = -1
	index := len(s.trail) - 1
	for {
		lits := confl.lits
		start := 0
		if p != -1 {
			start = 1
		}
		if confl.learnt {
			s.claBump(confl)
		}
		for _, q := range lits[start:] {
			v := q.Var()
			if s.seen[v] == 0 && s.level[v] > 0 {
				s.varBump(v)
				s.seen[v] = 1
				if int(s.level[v]) >= s.decisionLevel() {
					pathC++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		for s.seen[s.trail[index].Var()] == 0 {
			index--
		}
		p = s.trail[index]
		index--
		confl = s.reasonFor(p.Var())
		s.seen[p.Var()] = 0
		pathC--
		if pathC == 0 {
			break
		}
	}
	learnt[0] = p.Not()

	// Clause minimization (local): drop literals implied by the rest.
	toClear := make([]int, 0, len(learnt))
	for _, l := range learnt {
		toClear = append(toClear, l.Var())
	}
	j := 1
	for i := 1; i < len(learnt); i++ {
		v := learnt[i].Var()
		r := s.reasonFor(v)
		if r == nil {
			learnt[j] = learnt[i]
			j++
			continue
		}
		redundant := true
		for _, q := range r.lits[1:] {
			if s.seen[q.Var()] == 0 && s.level[q.Var()] > 0 {
				redundant = false
				break
			}
		}
		if !redundant {
			learnt[j] = learnt[i]
			j++
		}
	}
	learnt = learnt[:j]
	for _, v := range toClear {
		s.seen[v] = 0
	}

	// Backtrack level: highest level among the non-asserting literals.
	btLevel := 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		btLevel = int(s.level[learnt[1].Var()])
	}
	return learnt, btLevel
}

// analyzeFinal computes the subset of assumptions responsible for falsifying
// p, stored in s.conflict.
func (s *Solver) analyzeFinal(p cnf.Lit) {
	s.conflict = s.conflict[:0]
	s.conflict = append(s.conflict, p)
	if s.decisionLevel() == 0 {
		return
	}
	s.seen[p.Var()] = 1
	for i := len(s.trail) - 1; i >= s.trailLim[0]; i-- {
		v := s.trail[i].Var()
		if s.seen[v] == 0 {
			continue
		}
		if r := s.reasonFor(v); r == nil {
			s.conflict = append(s.conflict, s.trail[i].Not())
		} else {
			for _, q := range r.lits[1:] {
				if s.level[q.Var()] > 0 {
					s.seen[q.Var()] = 1
				}
			}
		}
		s.seen[v] = 0
	}
	s.seen[p.Var()] = 0
}

func (s *Solver) lbd(lits []cnf.Lit) int32 {
	levels := map[int32]struct{}{}
	for _, l := range lits {
		levels[s.level[l.Var()]] = struct{}{}
	}
	return int32(len(levels))
}

func (s *Solver) reduceDB() {
	sort.Slice(s.learnts, func(i, j int) bool {
		a, b := s.learnts[i], s.learnts[j]
		if (a.lbd <= 2) != (b.lbd <= 2) {
			return a.lbd <= 2
		}
		if (len(a.lits) == 2) != (len(b.lits) == 2) {
			return len(a.lits) == 2
		}
		return a.act > b.act
	})
	keep := s.learnts[:0]
	limit := len(s.learnts) / 2
	for i, c := range s.learnts {
		// Glue and binary clauses sort to the front and survive while the
		// budget allows; beyond the halfway point only clauses that are
		// the reason for a current assignment are exempt. (A blanket
		// exemption for low-LBD clauses would let XOR-heavy instances,
		// whose learnt clauses are mostly glue, defeat the reduction and
		// thrash this routine.)
		if i < limit || s.locked(c) {
			keep = append(keep, c)
		} else {
			s.detach(c)
			s.Stats.Removed++
		}
	}
	s.learnts = keep
	// If locked clauses alone exceed the budget, grow it to avoid calling
	// reduceDB on every decision.
	if float64(len(s.learnts)) >= s.maxLearnts {
		s.maxLearnts = float64(len(s.learnts)) * 1.5
	}
}

func (s *Solver) locked(c *clause) bool {
	return s.value(c.lits[0]) == lTrue && s.reason[c.lits[0].Var()] == c
}

// pickBranchVar returns the unassigned variable with the highest activity.
func (s *Solver) pickBranchVar() int {
	for !s.order.empty() {
		v := s.order.removeMax()
		if s.assigns[v] == lUndef {
			return v
		}
	}
	return -1
}

// luby returns the Luby sequence value for index i (1-based) with unit y.
func luby(y float64, i int) float64 {
	size, seq := 1, 0
	for size < i+1 {
		seq++
		size = 2*size + 1
	}
	for size-1 != i {
		size = (size - 1) / 2
		seq--
		i = i % size
	}
	p := 1.0
	for k := 0; k < seq; k++ {
		p *= y
	}
	return p
}

// search runs CDCL until a result or until a restart is due: either the
// Luby budget nofConflicts is exhausted or the Glucose condition fires
// (recent learnt-clause LBDs much worse than the long-run average,
// suppressed while the trail is unusually deep, i.e. the solver appears
// close to a model).
func (s *Solver) search(nofConflicts int64, assumptions []cnf.Lit) Status {
	conflictC := int64(0)
	for {
		if s.interrupt.Load() {
			s.cancelUntil(0)
			return Unknown
		}
		confl := s.propagate()
		if confl != nil {
			s.Stats.Conflicts++
			conflictC++
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			learnt, btLevel := s.analyze(confl)
			s.cancelUntil(btLevel)
			var lbd int32 = 1
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				c := &clause{lits: append([]cnf.Lit(nil), learnt...), learnt: true}
				c.lbd = s.lbd(c.lits)
				lbd = c.lbd
				s.learnts = append(s.learnts, c)
				s.attach(c)
				s.claBump(c)
				s.uncheckedEnqueue(learnt[0], c)
				s.Stats.Learnt++
			}
			// Exponential moving averages for the restart policy.
			s.lbdFast += (float64(lbd) - s.lbdFast) / 32
			s.lbdSlow += (float64(lbd) - s.lbdSlow) / 4096
			s.trailAvg += (float64(len(s.trail)) - s.trailAvg) / 4096
			s.varInc /= s.varDecay
			s.claInc /= s.claDecay
			if s.hook != nil {
				s.hookConflict(lbd, len(learnt))
			}
			continue
		}

		// No conflict.
		restart := nofConflicts >= 0 && conflictC >= nofConflicts
		if !restart && s.cfg.RestartPolicy == RestartHybrid &&
			conflictC >= 64 && s.Stats.Conflicts > 4096 &&
			s.lbdFast > 1.25*s.lbdSlow &&
			float64(len(s.trail)) < 1.4*s.trailAvg {
			restart = true
		}
		if restart {
			s.cancelUntil(0)
			s.Stats.Restarts++
			if s.hook != nil && s.hook.OnRestart != nil {
				s.hook.OnRestart(uint64(conflictC))
			}
			return Unknown
		}
		if s.budgetExhausted() {
			s.cancelUntil(0)
			return Unknown
		}
		if float64(len(s.learnts)) >= s.maxLearnts {
			s.reduceDB()
		}

		// Assumptions first, then VSIDS decision.
		var next cnf.Lit = -1
		for s.decisionLevel() < len(assumptions) {
			p := assumptions[s.decisionLevel()]
			switch s.value(p) {
			case lTrue:
				s.trailLim = append(s.trailLim, len(s.trail)) // dummy level
			case lFalse:
				s.analyzeFinal(p.Not())
				return Unsat
			default:
				next = p
			}
			if next != -1 {
				break
			}
		}
		if next == -1 {
			v := -1
			// Occasional random decisions decorrelate portfolio instances
			// that would otherwise follow identical VSIDS trajectories.
			if s.cfg.RandomSeed != 0 && s.rnd()&127 == 0 && len(s.assigns) > 0 {
				if r := int(s.rnd() % uint64(len(s.assigns))); s.assigns[r] == lUndef {
					v = r
				}
			}
			if v == -1 {
				v = s.pickBranchVar()
			}
			if v == -1 {
				// All variables assigned: model found.
				s.model = make([]bool, len(s.assigns))
				for i, a := range s.assigns {
					s.model[i] = a == lTrue
				}
				return Sat
			}
			s.Stats.Decisions++
			next = cnf.MkLit(v, s.polarity[v])
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(next, nil)
	}
}

// Solve determines satisfiability under the given assumptions. With no
// assumptions the result is a definitive Sat/Unsat unless ConflictBudget is
// exceeded (Unknown). After Sat, Model/Value are valid; after Unsat under
// assumptions, Conflict returns the failing assumption subset.
func (s *Solver) Solve(assumptions ...cnf.Lit) Status {
	if !s.ok {
		return Unsat
	}
	for _, a := range assumptions {
		s.ensureVars(a.Var())
	}
	s.conflict = s.conflict[:0]
	s.model = nil
	s.maxLearnts = float64(len(s.clauses)) / 3
	if s.maxLearnts < 1000 {
		s.maxLearnts = 1000
	}
	status := Unknown
	for restarts := 0; status == Unknown; restarts++ {
		if s.interrupt.Load() {
			break
		}
		if s.budgetExhausted() {
			break
		}
		var base float64
		switch s.cfg.RestartPolicy {
		case RestartGeometric:
			base = 100
			for i := 0; i < restarts; i++ {
				base *= 1.5
			}
		default: // RestartHybrid, RestartLuby
			base = luby(2, restarts) * 100
		}
		status = s.search(int64(base), assumptions)
		s.maxLearnts *= s.learntGrowth
	}
	s.cancelUntil(0)
	if s.hook != nil {
		// Flush the residual sample so published totals match Stats exactly
		// at every solve boundary, however short the solve.
		s.flushHook()
	}
	return status
}

// budgetExhausted reports whether a configured conflict or propagation
// budget has been spent.
func (s *Solver) budgetExhausted() bool {
	if s.ConflictBudget > 0 && int64(s.Stats.Conflicts) >= s.ConflictBudget {
		return true
	}
	if s.PropagationBudget > 0 && int64(s.Stats.Propagations) >= s.PropagationBudget {
		return true
	}
	return false
}

// BudgetExhausted reports whether the last Unknown result was caused by a
// conflict or propagation budget rather than an interrupt. Callers that
// mix budgets with cancellation use it to attribute the stop.
func (s *Solver) BudgetExhausted() bool { return s.budgetExhausted() }

// SolveCtx is Solve with context-scoped cancellation, built on the same
// atomic interrupt flag a portfolio race uses: a watcher goroutine
// observes ctx.Done and interrupts the in-flight search, which then
// returns Unknown. The watcher is joined before SolveCtx returns and the
// interrupt is re-armed when the context was the cause, so the solver
// stays reusable for later Solve/SolveCtx calls.
//
// A context that can never be cancelled (ctx.Done() == nil, e.g.
// context.Background()) takes the plain Solve path with no goroutine and
// no extra synchronization — bit-for-bit the sequential behavior.
func (s *Solver) SolveCtx(ctx context.Context, assumptions ...cnf.Lit) Status {
	if ctx == nil || ctx.Done() == nil {
		return s.Solve(assumptions...)
	}
	if ctx.Err() != nil {
		return Unknown
	}
	quit := make(chan struct{})
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		select {
		case <-ctx.Done():
			s.Interrupt()
		case <-quit:
		}
	}()
	st := s.Solve(assumptions...)
	close(quit)
	<-watcherDone
	if st == Unknown && ctx.Err() != nil {
		// The interrupt belongs to this call's context; clear it so the
		// solver is not poisoned for subsequent calls.
		s.ClearInterrupt()
	}
	return st
}

// Model returns the satisfying assignment from the last Sat result,
// indexed by variable. The slice is owned by the solver.
func (s *Solver) Model() []bool {
	if s.model == nil {
		panic("sat: Model called without a SAT result")
	}
	return s.model
}

// Value returns variable v's value in the last model.
func (s *Solver) Value(v int) bool {
	if s.model == nil {
		panic("sat: Value called without a SAT result")
	}
	if v >= len(s.model) {
		return false
	}
	return s.model[v]
}

// Conflict returns the failed assumption literals (negated) from the last
// assumption-UNSAT result.
func (s *Solver) Conflict() []cnf.Lit { return s.conflict }

// Okay reports whether the solver is still consistent at the top level.
func (s *Solver) Okay() bool { return s.ok }

// NumClauses returns the number of problem clauses currently attached.
func (s *Solver) NumClauses() int { return len(s.clauses) }

// String summarizes solver state.
func (s *Solver) String() string {
	return fmt.Sprintf("sat.Solver{vars: %d, clauses: %d, learnts: %d, conflicts: %d}",
		s.NumVars(), len(s.clauses), len(s.learnts), s.Stats.Conflicts)
}

// BumpActivity raises a variable's VSIDS activity, biasing the branching
// order toward it. Attack drivers use this to make the solver resolve key
// variables first, which shortens miter searches.
func (s *Solver) BumpActivity(v int, amount float64) {
	s.ensureVars(v)
	s.activity[v] += amount * s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.bump(v)
}

// WriteDimacs dumps the current problem — top-level unit assignments,
// problem clauses (learnt clauses excluded), and XOR rows as cryptominisat
// "x ..." lines — in DIMACS CNF format. The paper's methodology dumps the
// CNF after each attack iteration to inspect recovered seed bits; satattack
// exposes this through its DumpCNF option. XOR rows are emitted after
// echelon reduction, which together with the unit lines is equivalent to
// the constraints as added.
func (s *Solver) WriteDimacs(w io.Writer) error {
	bw := bufio.NewWriter(w)
	units := 0
	if len(s.trailLim) == 0 {
		units = len(s.trail)
	} else {
		units = s.trailLim[0]
	}
	if !s.ok {
		fmt.Fprintf(bw, "p cnf %d 1\n0\n", s.NumVars())
		return bw.Flush()
	}
	fmt.Fprintf(bw, "p cnf %d %d\n", s.NumVars(), len(s.clauses)+units+len(s.xorRows))
	for i := 0; i < units; i++ {
		fmt.Fprintf(bw, "%d 0\n", s.trail[i].Dimacs())
	}
	for _, c := range s.clauses {
		for _, l := range c.lits {
			fmt.Fprintf(bw, "%d ", l.Dimacs())
		}
		fmt.Fprintln(bw, 0)
	}
	for _, row := range s.xorRows {
		// The XOR of the listed literals must be true: a false rhs is
		// folded into the first literal's sign.
		bw.WriteString("x")
		for i, v := range row.vars {
			fmt.Fprintf(bw, " %d", cnf.MkLit(int(v), i == 0 && !row.rhs).Dimacs())
		}
		fmt.Fprintln(bw, " 0")
	}
	return bw.Flush()
}
