package sat

import (
	"math/rand"
	"testing"

	"dynunlock/internal/cnf"
)

func lit(v int, neg bool) cnf.Lit { return cnf.MkLit(v, neg) }

func TestTrivialSat(t *testing.T) {
	s := New()
	v := s.NewVar()
	if !s.AddClause(lit(v, false)) {
		t.Fatal("AddClause failed")
	}
	if st := s.Solve(); st != Sat {
		t.Fatalf("status %v", st)
	}
	if !s.Value(v) {
		t.Fatal("model wrong")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New()
	v := s.NewVar()
	s.AddClause(lit(v, false))
	if s.AddClause(lit(v, true)) {
		t.Fatal("expected top-level conflict")
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("status %v", st)
	}
}

func TestEmptyClauseUnsat(t *testing.T) {
	s := New()
	if s.AddClause() {
		t.Fatal("empty clause must fail")
	}
	if s.Solve() != Unsat {
		t.Fatal("want UNSAT")
	}
}

func TestTautologyIgnored(t *testing.T) {
	s := New()
	v := s.NewVar()
	w := s.NewVar()
	if !s.AddClause(lit(v, false), lit(v, true)) {
		t.Fatal("tautology must be accepted")
	}
	s.AddClause(lit(w, false))
	if s.Solve() != Sat {
		t.Fatal("want SAT")
	}
}

func TestDuplicateLiterals(t *testing.T) {
	s := New()
	v := s.NewVar()
	w := s.NewVar()
	if !s.AddClause(lit(v, true), lit(v, true), lit(w, false)) {
		t.Fatal("add failed")
	}
	s.AddClause(lit(v, false))
	if s.Solve() != Sat {
		t.Fatal("want SAT")
	}
	if !s.Value(v) || !s.Value(w) {
		t.Fatal("model wrong")
	}
}

// XOR chain: x0 ^ x1 ^ ... ^ xn = 1 encoded clause-wise, with a unit fixing
// each xi except one; exercises long implication chains.
func TestXorChainPropagation(t *testing.T) {
	s := New()
	n := 50
	vars := make([]int, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	// y_i = y_{i-1} XOR x_i with y_0 = x_0; y vars interleaved.
	prev := vars[0]
	for i := 1; i < n; i++ {
		y := s.NewVar()
		addXor(s, y, prev, vars[i])
		prev = y
	}
	s.AddClause(lit(prev, false)) // parity must be 1
	for i := 0; i < n-1; i++ {
		s.AddClause(lit(vars[i], i%2 == 0))
	}
	if s.Solve() != Sat {
		t.Fatal("want SAT")
	}
	parity := false
	for i := 0; i < n; i++ {
		if s.Value(vars[i]) {
			parity = !parity
		}
	}
	if !parity {
		t.Fatal("parity constraint violated")
	}
}

// addXor encodes z = a XOR b.
func addXor(s *Solver, z, a, b int) {
	s.AddClause(lit(z, true), lit(a, false), lit(b, false))
	s.AddClause(lit(z, true), lit(a, true), lit(b, true))
	s.AddClause(lit(z, false), lit(a, false), lit(b, true))
	s.AddClause(lit(z, false), lit(a, true), lit(b, false))
}

// Pigeonhole PHP(n+1, n) is UNSAT and requires real conflict analysis.
func TestPigeonholeUnsat(t *testing.T) {
	for _, n := range []int{3, 4, 5, 6} {
		s := New()
		// p[i][j]: pigeon i in hole j.
		p := make([][]int, n+1)
		for i := range p {
			p[i] = make([]int, n)
			for j := range p[i] {
				p[i][j] = s.NewVar()
			}
		}
		for i := 0; i <= n; i++ {
			c := make([]cnf.Lit, n)
			for j := 0; j < n; j++ {
				c[j] = lit(p[i][j], false)
			}
			s.AddClause(c...)
		}
		for j := 0; j < n; j++ {
			for i1 := 0; i1 <= n; i1++ {
				for i2 := i1 + 1; i2 <= n; i2++ {
					s.AddClause(lit(p[i1][j], true), lit(p[i2][j], true))
				}
			}
		}
		if st := s.Solve(); st != Unsat {
			t.Fatalf("PHP(%d,%d) = %v, want UNSAT", n+1, n, st)
		}
	}
}

// Random 3-SAT instances checked against exhaustive enumeration.
func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		nVars := 3 + rng.Intn(10)
		nClauses := 2 + rng.Intn(5*nVars)
		var f cnf.Formula
		f.NumVars = nVars
		for i := 0; i < nClauses; i++ {
			var c []cnf.Lit
			for k := 0; k < 3; k++ {
				c = append(c, lit(rng.Intn(nVars), rng.Intn(2) == 0))
			}
			f.Add(c...)
		}
		want := false
		assign := make([]bool, nVars)
		for m := 0; m < 1<<uint(nVars); m++ {
			for v := 0; v < nVars; v++ {
				assign[v] = m>>uint(v)&1 == 1
			}
			if f.Eval(assign) {
				want = true
				break
			}
		}
		s := New()
		s.AddFormula(&f)
		got := s.Solve()
		if want && got != Sat {
			t.Fatalf("trial %d: want SAT, got %v", trial, got)
		}
		if !want && got != Unsat {
			t.Fatalf("trial %d: want UNSAT, got %v", trial, got)
		}
		if got == Sat {
			model := s.Model()
			if !f.Eval(model[:nVars]) {
				t.Fatalf("trial %d: model does not satisfy formula", trial)
			}
		}
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	// a -> b, b -> c
	s.AddClause(lit(a, true), lit(b, false))
	s.AddClause(lit(b, true), lit(c, false))
	if s.Solve(lit(a, false)) != Sat {
		t.Fatal("want SAT under a")
	}
	if !s.Value(b) || !s.Value(c) {
		t.Fatal("implications not propagated")
	}
	// Now force ¬c and assume a: UNSAT under assumptions, but solver stays usable.
	s.AddClause(lit(c, true))
	if s.Solve(lit(a, false)) != Unsat {
		t.Fatal("want UNSAT under a")
	}
	if len(s.Conflict()) == 0 {
		t.Fatal("want non-empty assumption conflict")
	}
	if s.Solve() != Sat {
		t.Fatal("want SAT without assumptions")
	}
	if s.Value(a) {
		t.Fatal("a must be false")
	}
}

func TestConflictingAssumptions(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.NewVar()
	if s.Solve(lit(a, false), lit(a, true)) != Unsat {
		t.Fatal("contradictory assumptions must be UNSAT")
	}
	if s.Solve() != Sat {
		t.Fatal("solver must remain usable")
	}
}

func TestIncrementalBlocking(t *testing.T) {
	// Enumerate all 8 models of 3 free variables via blocking clauses.
	s := New()
	vars := []int{s.NewVar(), s.NewVar(), s.NewVar()}
	count := 0
	for s.Solve() == Sat {
		count++
		if count > 8 {
			t.Fatal("too many models")
		}
		block := make([]cnf.Lit, len(vars))
		for i, v := range vars {
			block[i] = lit(v, s.Value(v))
		}
		s.AddClause(block...)
	}
	if count != 8 {
		t.Fatalf("enumerated %d models, want 8", count)
	}
}

func TestConflictBudget(t *testing.T) {
	// A hard UNSAT instance with a tiny budget must return Unknown.
	s := New()
	n := 8
	p := make([][]int, n+1)
	for i := range p {
		p[i] = make([]int, n)
		for j := range p[i] {
			p[i][j] = s.NewVar()
		}
	}
	for i := 0; i <= n; i++ {
		c := make([]cnf.Lit, n)
		for j := 0; j < n; j++ {
			c[j] = lit(p[i][j], false)
		}
		s.AddClause(c...)
	}
	for j := 0; j < n; j++ {
		for i1 := 0; i1 <= n; i1++ {
			for i2 := i1 + 1; i2 <= n; i2++ {
				s.AddClause(lit(p[i1][j], true), lit(p[i2][j], true))
			}
		}
	}
	s.ConflictBudget = 10
	if st := s.Solve(); st != Unknown {
		t.Fatalf("want Unknown under budget, got %v", st)
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddClause(lit(a, false), lit(b, false))
	s.AddClause(lit(a, true), lit(b, false))
	s.Solve()
	if s.Stats.Propagations == 0 && s.Stats.Decisions == 0 {
		t.Fatal("stats not recorded")
	}
	if s.String() == "" {
		t.Fatal("String empty")
	}
}

func TestStatusString(t *testing.T) {
	if Sat.String() != "SAT" || Unsat.String() != "UNSAT" || Unknown.String() != "UNKNOWN" {
		t.Fatal("Status.String wrong")
	}
}

func TestModelWithoutSolvePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	New().Model()
}

// Larger randomized stress: satisfiable instances built from a hidden
// solution must always come back SAT with a genuine model.
func TestPlantedSolutions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		nVars := 50 + rng.Intn(100)
		hidden := make([]bool, nVars)
		for i := range hidden {
			hidden[i] = rng.Intn(2) == 0
		}
		var f cnf.Formula
		f.NumVars = nVars
		for i := 0; i < nVars*4; i++ {
			var c []cnf.Lit
			ok := false
			for k := 0; k < 3; k++ {
				v := rng.Intn(nVars)
				neg := rng.Intn(2) == 0
				if hidden[v] != neg {
					ok = true
				}
				c = append(c, lit(v, neg))
			}
			if !ok {
				// Flip one literal to satisfy the hidden assignment.
				v := c[0].Var()
				c[0] = lit(v, !hidden[v])
			}
			f.Add(c...)
		}
		s := New()
		s.AddFormula(&f)
		if s.Solve() != Sat {
			t.Fatalf("trial %d: planted instance reported UNSAT", trial)
		}
		if !f.Eval(s.Model()[:nVars]) {
			t.Fatalf("trial %d: bad model", trial)
		}
	}
}

func BenchmarkSolveRandom3SAT(b *testing.B) {
	rng := rand.New(rand.NewSource(99))
	var f cnf.Formula
	nVars := 120
	f.NumVars = nVars
	for i := 0; i < int(4.0*float64(nVars)); i++ {
		var c []cnf.Lit
		for k := 0; k < 3; k++ {
			c = append(c, lit(rng.Intn(nVars), rng.Intn(2) == 0))
		}
		f.Add(c...)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		s.AddFormula(&f)
		s.Solve()
	}
}
