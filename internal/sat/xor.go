// XOR layer: native GF(2) parity constraints beside the CNF watch-list
// engine, in the cryptominisat style. Each constraint is a row
// "XOR(vars) = rhs". AddXor reduces a scratch copy of every new row against
// a top-level echelon (pivot = smallest variable) with level-0 assignments
// folded out, so injecting linearly dependent rows — the common case when
// the insight tracker streams certified constraints after every DIP —
// costs no storage and immediately detects inconsistency or a forced
// assignment. Independent rows are stored in their ORIGINAL sparse form:
// circuit parity rows chain through shared low-index variables, and
// eliminating those pivots would densify the stored system, turning every
// implication reason into a near-full-width clause and poisoning conflict
// analysis. The echelon is Gaussian bookkeeping only; the sparse originals
// are what search propagates over. During search each row watches two of
// its variables; when a watched variable is assigned the row is scanned in
// full: with one unassigned variable left the forced value is enqueued
// (reason materialized lazily, see reasonFor), with none left and wrong
// parity a conflict clause is synthesized for the standard first-UIP
// analysis. The full scan — rather than minimal watch movement — keeps
// propagation complete when both watches of a row are assigned within one
// propagation batch.
package sat

import (
	"sort"

	"dynunlock/internal/cnf"
)

// xorRow is one parity constraint XOR(vars) = rhs. vars are distinct and
// sorted ascending; rows are immutable once stored (reason indices into
// xorRows stay valid for the solver's lifetime).
type xorRow struct {
	vars  []int32
	rhs   bool
	watch [2]int32 // the two watched variables, always distinct row members
}

// xorEchRow is one row of the AddXor-time echelon: the same constraint
// shape as xorRow but never watched or used as a reason — it exists only
// so new rows can be tested for linear dependence and inconsistency
// without densifying the rows search propagates over.
type xorEchRow struct {
	vars []int32
	rhs  bool
}

// AddXor adds the parity constraint "XOR of the literal values = rhs".
// Negated literals fold their sign into rhs, duplicate variables cancel,
// and level-0 assignments fold into rhs (they never backtrack). A scratch
// copy is then Gauss-reduced against the echelon: a dependent row stores
// nothing, an inconsistent one fails the solver, a unit remainder enqueues
// its forced literal. Independent rows extend the echelon with their
// reduced form but are stored and watched in their original sparse form —
// reduction would chain circuit rows together into dense rows whose
// implications carry near-full-width reasons, wrecking conflict analysis.
// Like AddClause it returns false when the solver becomes (or already is)
// inconsistent at the top level.
func (s *Solver) AddXor(lits []cnf.Lit, rhs bool) bool {
	if !s.ok {
		return false
	}
	s.cancelUntil(0)
	vars := make([]int32, 0, len(lits))
	for _, l := range lits {
		s.ensureVars(l.Var())
		if l.Sign() {
			rhs = !rhs
		}
		vars = append(vars, int32(l.Var()))
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	// Cancel duplicate pairs: v ⊕ v = 0.
	out := vars[:0]
	for i := 0; i < len(vars); {
		if i+1 < len(vars) && vars[i] == vars[i+1] {
			i += 2
			continue
		}
		out = append(out, vars[i])
		i++
	}
	vars = out
	vars, rhs = s.xorFoldAssigned(vars, rhs)
	if len(vars) <= 1 {
		return s.xorFinishSmall(vars, rhs)
	}

	// Gauss-reduce a scratch copy against the echelon to fixpoint: fold
	// any level-0 assignments the merge reintroduced, then cancel the
	// LARGEST variable against the echelon row with the same pivot. Each
	// pivot step strictly lowers the largest variable, so this terminates.
	// Pivoting on the largest variable makes the reduction run in
	// definition order — encoders allocate a gate's output after its
	// inputs — so reducing a row substitutes already-defined XOR outputs
	// by their transitive supports instead of chaining unrelated rows
	// together through shared inputs. For the unrolled keystream generator
	// the fixpoint expresses every cycle's parity bit directly over the
	// seed variables.
	rv := append([]int32(nil), vars...)
	rrhs := rhs
	for {
		rv, rrhs = s.xorFoldAssigned(rv, rrhs)
		if len(rv) == 0 {
			break
		}
		ei, ok := s.xorPivot[rv[len(rv)-1]]
		if !ok {
			break
		}
		ech := s.xorEch[ei]
		if ech.rhs {
			rrhs = !rrhs
		}
		rv = xorMerge(rv, ech.vars)
	}
	if len(rv) <= 1 {
		// Linearly dependent modulo a possible forced literal: the stored
		// system plus that assignment already implies the new row, so it
		// stores nothing.
		return s.xorFinishSmall(rv, rrhs)
	}
	if s.xorPivot == nil {
		s.xorPivot = make(map[int32]int32)
	}
	s.xorPivot[rv[len(rv)-1]] = int32(len(s.xorEch))
	s.xorEch = append(s.xorEch, xorEchRow{vars: rv, rhs: rrhs})

	s.xorStore(vars, rhs)
	return true
}

// xorStore attaches a normalized row (≥2 distinct sorted unassigned
// variables) to the watch lists.
func (s *Solver) xorStore(vars []int32, rhs bool) {
	row := &xorRow{vars: vars, rhs: rhs, watch: [2]int32{vars[0], vars[1]}}
	ri := int32(len(s.xorRows))
	s.xorRows = append(s.xorRows, row)
	s.xwatches[vars[0]] = append(s.xwatches[vars[0]], ri)
	s.xwatches[vars[1]] = append(s.xwatches[vars[1]], ri)
}

// xorFoldAssigned drops level-0 assigned variables from a row, folding
// their values into rhs. Must be called at decision level 0.
func (s *Solver) xorFoldAssigned(vars []int32, rhs bool) ([]int32, bool) {
	n := 0
	for _, v := range vars {
		switch s.assigns[v] {
		case lTrue:
			rhs = !rhs
		case lFalse:
			// drop
		default:
			vars[n] = v
			n++
		}
	}
	return vars[:n], rhs
}

// xorFinishSmall resolves a row reduced to ≤1 variables: empty rows are
// tautological or inconsistent, unit rows force their variable at level 0.
func (s *Solver) xorFinishSmall(vars []int32, rhs bool) bool {
	if len(vars) == 0 {
		if rhs {
			s.ok = false
			return false
		}
		return true
	}
	s.uncheckedEnqueue(cnf.MkLit(int(vars[0]), !rhs), nil)
	if s.propagate() != nil {
		s.ok = false
		return false
	}
	return true
}

// xorMerge returns the symmetric difference of two sorted variable lists
// (the GF(2) sum of the two rows).
func xorMerge(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// NumXors returns the number of parity rows currently stored and watched
// (linearly dependent additions store nothing).
func (s *Solver) NumXors() int { return len(s.xorRows) }

// propagateXor scans every XOR row watching the just-assigned variable of
// p. Unit rows enqueue their forced literal; a violated row returns a
// synthesized conflict clause (all literals false under the current
// assignment, including at least one at the current decision level — the
// trigger variable itself).
func (s *Solver) propagateXor(p cnf.Lit) *clause {
	v := int32(p.Var())
	ws := s.xwatches[v]
	n := 0
	for i := 0; i < len(ws); i++ {
		ri := ws[i]
		row := s.xorRows[ri]
		parity := row.rhs
		var unassigned int32 = -1
		count := 0
		for _, u := range row.vars {
			switch s.assigns[u] {
			case lUndef:
				count++
				unassigned = u
			case lTrue:
				parity = !parity
			}
		}
		switch {
		case count == 0:
			// parity is rhs ⊕ sum(values): true means the row is violated.
			if parity {
				s.Stats.XorConflicts++
				for ; i < len(ws); i++ {
					ws[n] = ws[i]
					n++
				}
				s.xwatches[v] = ws[:n]
				return s.xorConflictClause(row)
			}
			ws[n] = ri
			n++
		case count == 1:
			// The remaining variable must restore the parity.
			s.Stats.XorPropagations++
			s.reasonX[unassigned] = ri + 1
			s.uncheckedEnqueue(cnf.MkLit(int(unassigned), !parity), nil)
			ws[n] = ri
			n++
		default:
			// ≥2 unassigned: move this watch onto an unassigned variable so
			// the next relevant assignment re-triggers the scan.
			moved := false
			if row.watch[0] == v || row.watch[1] == v {
				slot := 0
				if row.watch[1] == v {
					slot = 1
				}
				other := row.watch[1-slot]
				for _, u := range row.vars {
					if u != other && s.assigns[u] == lUndef {
						row.watch[slot] = u
						s.xwatches[u] = append(s.xwatches[u], ri)
						moved = true
						break
					}
				}
			}
			if !moved {
				ws[n] = ri
				n++
			}
		}
	}
	s.xwatches[v] = ws[:n]
	return nil
}

// xorConflictClause materializes a violated row as a clause: one literal
// per row variable, each false under the current assignment.
func (s *Solver) xorConflictClause(row *xorRow) *clause {
	lits := make([]cnf.Lit, 0, len(row.vars))
	for _, u := range row.vars {
		lits = append(lits, cnf.MkLit(int(u), s.assigns[u] == lTrue))
	}
	return &clause{lits: lits}
}

// xorReasonClause materializes the reason for an XOR-implied variable v:
// the implied literal (true under the current assignment) first, then the
// falsified antecedent literals — the shape analyze, minimization, and
// analyzeFinal expect from CNF reasons. Synthesized reasons never enter
// the clause database, so reduceDB and locked() are unaffected.
func (s *Solver) xorReasonClause(v int, row *xorRow) *clause {
	lits := make([]cnf.Lit, 0, len(row.vars))
	lits = append(lits, cnf.MkLit(v, s.assigns[v] == lFalse))
	for _, u := range row.vars {
		if int(u) == v {
			continue
		}
		lits = append(lits, cnf.MkLit(int(u), s.assigns[u] == lTrue))
	}
	return &clause{lits: lits}
}

// reasonFor returns the reason clause of an assigned variable: the stored
// CNF reason, a lazily materialized XOR reason, or nil for decisions and
// top-level facts.
func (s *Solver) reasonFor(v int) *clause {
	if r := s.reason[v]; r != nil {
		return r
	}
	if ri := s.reasonX[v]; ri != 0 {
		return s.xorReasonClause(v, s.xorRows[ri-1])
	}
	return nil
}
