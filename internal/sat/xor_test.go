package sat

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"dynunlock/internal/cnf"
)

// tseitinXor expands "XOR of lits = rhs" into direct parity clauses — one
// clause forbidding each literal-value assignment with the wrong parity —
// the reference semantics the native layer must match.
func tseitinXor(s *Solver, lits []cnf.Lit, rhs bool) bool {
	k := len(lits)
	if k == 0 {
		if rhs {
			return s.AddClause()
		}
		return true
	}
	ok := true
	for mask := 0; mask < 1<<k; mask++ {
		sum := false
		for i := range lits {
			if mask>>i&1 == 1 {
				sum = !sum
			}
		}
		if sum == rhs {
			continue // this assignment of literal values satisfies the constraint
		}
		// Forbid the violating assignment: include, per literal, the form
		// that is false when the literal takes the mask value.
		clause := make([]cnf.Lit, k)
		for i, l := range lits {
			if mask>>i&1 == 1 {
				clause[i] = l.Not()
			} else {
				clause[i] = l
			}
		}
		if !s.AddClause(clause...) {
			ok = false
		}
	}
	return ok
}

type xorSystem struct {
	nVars   int
	xors    [][]cnf.Lit
	rhs     []bool
	clauses [][]cnf.Lit
}

func randomXorSystem(rng *rand.Rand) *xorSystem {
	sys := &xorSystem{nVars: 3 + rng.Intn(10)}
	nx := 1 + rng.Intn(2*sys.nVars)
	for i := 0; i < nx; i++ {
		k := 1 + rng.Intn(4)
		row := make([]cnf.Lit, k)
		for j := range row {
			row[j] = cnf.MkLit(rng.Intn(sys.nVars), rng.Intn(2) == 1)
		}
		sys.xors = append(sys.xors, row)
		sys.rhs = append(sys.rhs, rng.Intn(2) == 1)
	}
	// A few ordinary clauses so the CDCL and GF(2) layers interact.
	nc := rng.Intn(sys.nVars)
	for i := 0; i < nc; i++ {
		k := 1 + rng.Intn(3)
		c := make([]cnf.Lit, k)
		for j := range c {
			c[j] = cnf.MkLit(rng.Intn(sys.nVars), rng.Intn(2) == 1)
		}
		sys.clauses = append(sys.clauses, c)
	}
	return sys
}

func (sys *xorSystem) check(t *testing.T, model []bool) {
	t.Helper()
	for i, row := range sys.xors {
		sum := false
		for _, l := range row {
			if model[l.Var()] != l.Sign() {
				sum = !sum
			}
		}
		if sum != sys.rhs[i] {
			t.Fatalf("model violates xor row %d", i)
		}
	}
	for i, c := range sys.clauses {
		sat := false
		for _, l := range c {
			if model[l.Var()] != l.Sign() {
				sat = true
			}
		}
		if !sat {
			t.Fatalf("model violates clause %d", i)
		}
	}
}

// TestAddXorMatchesTseitin is the differential fuzz pin: on random mixed
// CNF-XOR systems the native Gaussian layer and the clause-expanded
// equivalent must agree on SAT/UNSAT, and every SAT model must satisfy the
// original constraints.
func TestAddXorMatchesTseitin(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 500; trial++ {
		sys := randomXorSystem(rng)
		native, ref := New(), New()
		nativeOK, refOK := true, true
		for v := 0; v < sys.nVars; v++ {
			native.NewVar()
			ref.NewVar()
		}
		for _, c := range sys.clauses {
			if !native.AddClause(c...) {
				nativeOK = false
			}
			if !ref.AddClause(c...) {
				refOK = false
			}
		}
		for i, row := range sys.xors {
			if !native.AddXor(row, sys.rhs[i]) {
				nativeOK = false
			}
			if !tseitinXor(ref, row, sys.rhs[i]) {
				refOK = false
			}
		}
		stNative, stRef := Unsat, Unsat
		if nativeOK {
			stNative = native.Solve()
		}
		if refOK {
			stRef = ref.Solve()
		}
		if stNative != stRef {
			t.Fatalf("trial %d: native %v, tseitin %v", trial, stNative, stRef)
		}
		if stNative == Sat {
			sys.check(t, native.Model())
			sys.check(t, ref.Model())
		}
	}
}

// TestAddXorIncremental interleaves XOR additions with Solve calls the way
// the attack loop does: constraints accumulate, and the status sequence
// must match the clause-expanded reference at every step.
func TestAddXorIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 100; trial++ {
		sys := randomXorSystem(rng)
		native, ref := New(), New()
		for v := 0; v < sys.nVars; v++ {
			native.NewVar()
			ref.NewVar()
		}
		nativeOK, refOK := true, true
		for i, row := range sys.xors {
			if !native.AddXor(row, sys.rhs[i]) {
				nativeOK = false
			}
			if !tseitinXor(ref, row, sys.rhs[i]) {
				refOK = false
			}
			stNative, stRef := Unsat, Unsat
			if nativeOK {
				stNative = native.Solve()
			}
			if refOK {
				stRef = ref.Solve()
			}
			if stNative != stRef {
				t.Fatalf("trial %d step %d: native %v, tseitin %v", trial, i, stNative, stRef)
			}
		}
	}
}

// TestAddXorUnderAssumptions checks the GF(2) layer against assumption
// literals: x0 ⊕ x1 = 1 under assumption x0 forces x1 false.
func TestAddXorUnderAssumptions(t *testing.T) {
	s := New()
	v0, v1 := s.NewVar(), s.NewVar()
	if !s.AddXor([]cnf.Lit{lit(v0, false), lit(v1, false)}, true) {
		t.Fatal("AddXor failed")
	}
	if st := s.Solve(lit(v0, false)); st != Sat {
		t.Fatalf("status %v", st)
	}
	if !s.Value(v0) || s.Value(v1) {
		t.Fatalf("model v0=%v v1=%v, want true,false", s.Value(v0), s.Value(v1))
	}
	if st := s.Solve(lit(v0, false), lit(v1, false)); st != Unsat {
		t.Fatalf("status %v, want UNSAT", st)
	}
}

// TestAddXorEchelon pins the top-level Gaussian reduction: dependent rows
// store nothing, and a dependent row with conflicting parity makes the
// solver UNSAT without any search.
func TestAddXorEchelon(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	la, lb, lc := lit(a, false), lit(b, false), lit(c, false)
	s.AddXor([]cnf.Lit{la, lb}, true)
	s.AddXor([]cnf.Lit{lb, lc}, true)
	if got := s.NumXors(); got != 2 {
		t.Fatalf("NumXors = %d, want 2", got)
	}
	// a⊕c = 0 is the sum of the first two rows: dependent, consistent.
	if !s.AddXor([]cnf.Lit{la, lc}, false) {
		t.Fatal("dependent consistent row rejected")
	}
	if got := s.NumXors(); got != 2 {
		t.Fatalf("NumXors = %d after dependent row, want 2", got)
	}
	// a⊕c = 1 contradicts the system.
	if s.AddXor([]cnf.Lit{la, lc}, true) {
		t.Fatal("inconsistent row accepted")
	}
	if st := s.Solve(); st != Unsat {
		t.Fatalf("status %v, want UNSAT", st)
	}
}

// TestXorStatsCount checks that XOR propagation work is visible in Stats.
func TestXorStatsCount(t *testing.T) {
	s := New()
	a, b := s.NewVar(), s.NewVar()
	s.AddXor([]cnf.Lit{lit(a, false), lit(b, false)}, true)
	s.AddClause(lit(a, false))
	if st := s.Solve(); st != Sat {
		t.Fatalf("status %v", st)
	}
	if s.Stats.XorPropagations == 0 {
		t.Fatal("expected XorPropagations > 0")
	}
	if s.Value(b) {
		t.Fatal("b should be forced false")
	}
}

// TestWriteDimacsXor pins the cryptominisat "x ..." emission and that the
// dump round-trips through cnf.ParseDimacs with the same satisfiability.
func TestWriteDimacsXor(t *testing.T) {
	s := New()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	s.AddXor([]cnf.Lit{lit(a, false), lit(b, false), lit(c, false)}, false)
	s.AddClause(lit(a, false), lit(b, false))
	var buf bytes.Buffer
	if err := s.WriteDimacs(&buf); err != nil {
		t.Fatal(err)
	}
	dump := buf.String()
	if !strings.Contains(dump, "x ") {
		t.Fatalf("dump has no xor line:\n%s", dump)
	}
	f, err := cnf.ParseDimacs(strings.NewReader(dump))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Xors) != 1 {
		t.Fatalf("parsed %d xor clauses, want 1", len(f.Xors))
	}
	s2 := New()
	if !s2.AddFormula(f) {
		t.Fatal("AddFormula failed")
	}
	if st := s2.Solve(); st != Sat {
		t.Fatalf("round-trip status %v", st)
	}
	if !f.Eval(s2.Model()[:f.NumVars]) {
		t.Fatal("round-trip model does not satisfy parsed formula")
	}
}
