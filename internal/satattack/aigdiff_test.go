package satattack

import (
	"math/rand"
	"sort"
	"testing"

	"dynunlock/internal/netlist"
	"dynunlock/internal/sim"
)

// candidateSet renders a result's enumerated keys as a sorted string set so
// runs that enumerate in different orders still compare equal.
func candidateSet(t *testing.T, res *Result) []string {
	t.Helper()
	if !res.Converged {
		t.Fatal("attack did not converge")
	}
	if !res.CandidatesExact {
		t.Fatal("enumeration hit the limit; differential comparison needs the full class")
	}
	out := make([]string, len(res.Candidates))
	for i, c := range res.Candidates {
		b := make([]byte, len(c))
		for j, bit := range c {
			if bit {
				b[j] = '1'
			} else {
				b[j] = '0'
			}
		}
		out[i] = string(b)
	}
	sort.Strings(out)
	return out
}

func eqSets(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// The AIG encode path and level-0 inprocessing change how the CNF is built
// and maintained, never which keys survive: at miter-UNSAT convergence the
// consistent-key set is exactly the correct key's functional equivalence
// class, which is a property of the circuit, not the encoding. This
// differential fuzz pins that down: every encode variant must enumerate the
// identical candidate set as the direct zero-options path.
func TestAIGCandidatesMatchDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	variants := []struct {
		name string
		opts Options
	}{
		{"aig", Options{AIG: true}},
		{"simplify", Options{Simplify: true}},
		{"aig+simplify", Options{AIG: true, Simplify: true}},
		{"xor+aig+simplify", Options{NativeXor: true, AIG: true, Simplify: true}},
	}
	for trial := 0; trial < 10; trial++ {
		nIn := 4 + rng.Intn(4)
		nKeys := 4 + rng.Intn(4)
		orig, locked, _ := lockedPair(rng, nIn, 30+rng.Intn(50), nKeys)
		l := NewLocked(locked, func(i int, s netlist.SignalID) bool {
			return len(locked.N.SignalName(s)) > 0 && locked.N.SignalName(s)[0] == 'k'
		})
		limit := 1 << uint(nKeys)
		base, err := Run(l, &simOracle{c: sim.NewComb(orig)}, Options{EnumerateLimit: limit})
		if err != nil {
			t.Fatalf("trial %d direct: %v", trial, err)
		}
		want := candidateSet(t, base)
		for _, v := range variants {
			opts := v.opts
			opts.EnumerateLimit = limit
			res, err := Run(l, &simOracle{c: sim.NewComb(orig)}, opts)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, v.name, err)
			}
			got := candidateSet(t, res)
			if !eqSets(want, got) {
				t.Fatalf("trial %d %s: candidate set diverged from direct\n direct: %v\n %s: %v",
					trial, v.name, want, v.name, got)
			}
			if opts.AIG && res.EncodeClauses == 0 {
				t.Fatalf("trial %d %s: encode clause accounting missing", trial, v.name)
			}
		}
	}
}

// Same invariant through the portfolio engine: racing diversified instances
// over the AIG encode path must land on the direct sequential class.
func TestAIGPortfolioCandidatesMatchDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 4; trial++ {
		nIn := 4 + rng.Intn(3)
		nKeys := 4 + rng.Intn(3)
		orig, locked, _ := lockedPair(rng, nIn, 30+rng.Intn(40), nKeys)
		l := NewLocked(locked, func(i int, s netlist.SignalID) bool {
			return len(locked.N.SignalName(s)) > 0 && locked.N.SignalName(s)[0] == 'k'
		})
		limit := 1 << uint(nKeys)
		base, err := Run(l, &simOracle{c: sim.NewComb(orig)}, Options{EnumerateLimit: limit})
		if err != nil {
			t.Fatalf("trial %d direct: %v", trial, err)
		}
		want := candidateSet(t, base)
		for _, pf := range []int{2, 3} {
			res, err := Run(l, &simOracle{c: sim.NewComb(orig)},
				Options{Portfolio: pf, AIG: true, Simplify: true, EnumerateLimit: limit})
			if err != nil {
				t.Fatalf("trial %d pf=%d: %v", trial, pf, err)
			}
			got := candidateSet(t, res)
			if !eqSets(want, got) {
				t.Fatalf("trial %d pf=%d: candidate set diverged from direct\n direct: %v\n portfolio: %v",
					trial, pf, want, got)
			}
		}
	}
}

// The simplify counters must actually move when inprocessing runs on a
// multi-DIP attack, and stay zero when it is off — otherwise the manifest
// provenance field would be meaningless.
func TestSimplifyCountersAccount(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	var sawCalls bool
	for trial := 0; trial < 6 && !sawCalls; trial++ {
		orig, locked, _ := lockedPair(rng, 6, 60, 6)
		l := NewLocked(locked, func(i int, s netlist.SignalID) bool {
			return len(locked.N.SignalName(s)) > 0 && locked.N.SignalName(s)[0] == 'k'
		})
		res, err := Run(l, &simOracle{c: sim.NewComb(orig)}, Options{Simplify: true, EnumerateLimit: 64})
		if err != nil {
			t.Fatal(err)
		}
		if res.Iterations > 0 {
			if res.SolverStats.SimplifyCalls == 0 {
				t.Fatalf("trial %d: %d DIPs but no simplify calls recorded", trial, res.Iterations)
			}
			sawCalls = true
		}
		off, err := Run(l, &simOracle{c: sim.NewComb(orig)}, Options{EnumerateLimit: 64})
		if err != nil {
			t.Fatal(err)
		}
		if off.SolverStats.SimplifyCalls != 0 {
			t.Fatalf("trial %d: simplify counters nonzero with Simplify off", trial)
		}
	}
	if !sawCalls {
		t.Skip("no trial needed a DIP; simplify never had a chance to run")
	}
}
