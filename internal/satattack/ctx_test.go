package satattack

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"dynunlock/internal/netlist"
	"dynunlock/internal/sim"
	"dynunlock/internal/trace"
)

// testLocked builds the deterministic locked/original pair used by the
// cancellation tests: large enough for a few DIP iterations, small enough
// to finish instantly when unbounded.
func testLocked(t *testing.T) (*Locked, *simOracle) {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	orig, locked, _ := lockedPair(rng, 6, 40, 5)
	l := NewLocked(locked, func(i int, s netlist.SignalID) bool {
		return locked.N.SignalName(s)[0] == 'k'
	})
	return l, &simOracle{c: sim.NewComb(orig)}
}

// cancellingOracle answers like the wrapped oracle and cancels the context
// after a fixed number of queries — a deterministic mid-DIP-loop
// cancellation, with no timing involved.
type cancellingOracle struct {
	inner  Oracle
	after  int
	cancel context.CancelFunc
	n      int
}

func (o *cancellingOracle) Query(in []bool) []bool {
	o.n++
	if o.n == o.after {
		o.cancel()
	}
	return o.inner.Query(in)
}

func TestRunCtxCancelMidDIPLoop(t *testing.T) {
	for _, pf := range []int{1, 2, 4} {
		l, oracle := testLocked(t)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		co := &cancellingOracle{inner: oracle, after: 1, cancel: cancel}
		res, err := RunCtx(ctx, l, co, Options{Portfolio: pf, EnumerateLimit: 64})
		if err != nil {
			t.Fatalf("portfolio %d: %v", pf, err)
		}
		if !res.Stopped || res.StopReason != StopCancelled {
			t.Fatalf("portfolio %d: stopped=%v reason=%q", pf, res.Stopped, res.StopReason)
		}
		if res.Converged || res.Key != nil {
			t.Fatalf("portfolio %d: cancelled run must not report a key", pf)
		}
		if res.Iterations < 1 || res.Queries != res.Iterations {
			t.Fatalf("portfolio %d: iterations=%d queries=%d", pf, res.Iterations, res.Queries)
		}
		if len(res.InstanceStats) != pf || len(res.InstanceWins) != pf {
			t.Fatalf("portfolio %d: instance slices %d/%d", pf,
				len(res.InstanceStats), len(res.InstanceWins))
		}
		// A fresh context completes the same attack: nothing was corrupted.
		full, err := RunCtx(context.Background(), l, oracle, Options{Portfolio: pf, EnumerateLimit: 64})
		if err != nil {
			t.Fatalf("portfolio %d rerun: %v", pf, err)
		}
		if !full.Converged || !full.CandidatesExact {
			t.Fatalf("portfolio %d rerun: converged=%v exact=%v", pf, full.Converged, full.CandidatesExact)
		}
	}
}

func TestRunCtxDeadline(t *testing.T) {
	l, oracle := testLocked(t)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	slow := OracleFunc(func(in []bool) []bool {
		time.Sleep(40 * time.Millisecond) // outlive the deadline inside the loop
		return oracle.Query(in)
	})
	start := time.Now()
	res, err := RunCtx(ctx, l, slow, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped || res.StopReason != StopDeadline {
		t.Fatalf("stopped=%v reason=%q", res.Stopped, res.StopReason)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("deadline stop took %v", el)
	}
}

func TestRunCtxPreCancelled(t *testing.T) {
	for _, pf := range []int{1, 2} {
		l, oracle := testLocked(t)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		res, err := RunCtx(ctx, l, oracle, Options{Portfolio: pf})
		if err != nil {
			t.Fatalf("portfolio %d: %v", pf, err)
		}
		if !res.Stopped || res.StopReason != StopCancelled || res.Iterations != 0 {
			t.Fatalf("portfolio %d: stopped=%v reason=%q iters=%d",
				pf, res.Stopped, res.StopReason, res.Iterations)
		}
	}
}

func TestRunCtxConflictBudget(t *testing.T) {
	for _, pf := range []int{1, 2, 4} {
		l, oracle := testLocked(t)
		res, err := RunCtx(context.Background(), l, oracle, Options{
			Portfolio:      pf,
			ConflictBudget: 1,
		})
		if err != nil {
			t.Fatalf("portfolio %d: %v", pf, err)
		}
		// The convergence proof (miter UNSAT) cannot complete within one
		// conflict on this circuit, so the budget must fire somewhere.
		if !res.Stopped || res.StopReason != StopBudget {
			t.Fatalf("portfolio %d: stopped=%v reason=%q conflicts=%d",
				pf, res.Stopped, res.StopReason, res.SolverStats.Conflicts)
		}
	}
}

func TestRunCtxMaxIterationsStillExtracts(t *testing.T) {
	l, oracle := testLocked(t)
	res, err := RunCtx(context.Background(), l, oracle, Options{MaxIterations: 1, EnumerateLimit: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped || res.StopReason != StopIterations {
		t.Fatalf("stopped=%v reason=%q", res.Stopped, res.StopReason)
	}
	if res.Key == nil || len(res.Candidates) == 0 {
		t.Fatal("iteration-bounded run must still extract and enumerate")
	}
	if res.Converged {
		t.Fatal("one iteration cannot have converged on this circuit")
	}
}

// Background context with no sink must reproduce Run bit for bit — the
// acceptance criterion for the refactor.
func TestRunCtxBackgroundMatchesRun(t *testing.T) {
	l1, o1 := testLocked(t)
	l2, o2 := testLocked(t)
	a, err := Run(l1, o1, Options{EnumerateLimit: 64})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCtx(context.Background(), l2, o2, Options{EnumerateLimit: 64})
	if err != nil {
		t.Fatal(err)
	}
	if a.Iterations != b.Iterations || a.Queries != b.Queries {
		t.Fatalf("iterations %d/%d queries %d/%d", a.Iterations, b.Iterations, a.Queries, b.Queries)
	}
	if a.SolverStats != b.SolverStats {
		t.Fatalf("stats diverge:\n%+v\n%+v", a.SolverStats, b.SolverStats)
	}
	if len(a.Candidates) != len(b.Candidates) {
		t.Fatalf("candidates %d/%d", len(a.Candidates), len(b.Candidates))
	}
	for i := range a.Candidates {
		for j := range a.Candidates[i] {
			if a.Candidates[i][j] != b.Candidates[i][j] {
				t.Fatalf("candidate %d bit %d differs", i, j)
			}
		}
	}
}

// A trace sink must observe one span per engine stage with solver counters,
// for both the sequential and the portfolio engine.
func TestRunCtxTraceSpans(t *testing.T) {
	for _, pf := range []int{1, 2} {
		l, oracle := testLocked(t)
		c := trace.NewCollector()
		ctx := trace.With(context.Background(), c)
		res, err := RunCtx(ctx, l, oracle, Options{Portfolio: pf, EnumerateLimit: 64})
		if err != nil {
			t.Fatalf("portfolio %d: %v", pf, err)
		}
		spans := map[string]trace.SpanRecord{}
		for _, sp := range c.Spans() {
			spans[sp.Name] = sp
		}
		for _, name := range []string{"encode", "dip_loop", "extract", "enumerate"} {
			if _, ok := spans[name]; !ok {
				t.Fatalf("portfolio %d: missing span %q (have %v)", pf, name, c.Spans())
			}
		}
		if spans["encode"].Counters["clauses"] == 0 {
			t.Fatalf("portfolio %d: encode span has no clause counter", pf)
		}
		if spans["dip_loop"].Counters["dips"] != uint64(res.Iterations) {
			t.Fatalf("portfolio %d: dip counter %d != iterations %d",
				pf, spans["dip_loop"].Counters["dips"], res.Iterations)
		}
		if spans["enumerate"].Counters["candidates"] != uint64(len(res.Candidates)) {
			t.Fatalf("portfolio %d: candidates counter mismatch", pf)
		}
	}
}
