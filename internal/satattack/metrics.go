package satattack

import (
	"strconv"
	"time"

	"dynunlock/internal/metrics"
	"dynunlock/internal/sat"
)

// dipSolveBuckets spans 1ms to ~65s exponentially — the observed range of
// per-DIP SAT-call latencies from scaled quick runs to paper-scale
// circuits.
var dipSolveBuckets = metrics.ExpBuckets(0.001, 2, 17)

// lbdBuckets covers learnt-clause LBD: glue clauses (<=2) up to the long
// tail XOR-heavy instances produce.
var lbdBuckets = []float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}

// attackMetrics bundles the live instruments of one attack run. The nil
// pointer is the disabled state: every method is a no-op and the hot loop
// performs no timing work, keeping the unmonitored path allocation-free.
type attackMetrics struct {
	dips       *metrics.Counter
	queries    *metrics.Counter
	iterations *metrics.Gauge
	dipSolve   *metrics.Histogram
	encVars    *metrics.Counter
	encClauses *metrics.Counter
}

// newAttackMetrics creates the attack-level series tagged with the engine
// kind ("sequential" or "portfolio"); a nil handle returns nil.
func newAttackMetrics(h *metrics.Handle, engine string) *attackMetrics {
	if h == nil {
		return nil
	}
	return &attackMetrics{
		dips:       h.Counter(metrics.MetricAttackDIPs, "engine", engine),
		queries:    h.Counter(metrics.MetricAttackQueries, "engine", engine),
		iterations: h.Gauge(metrics.MetricAttackIterations, "engine", engine),
		dipSolve:   h.Histogram(metrics.MetricAttackDIPSolveSec, dipSolveBuckets, "engine", engine),
		encVars:    h.Counter(metrics.MetricEncodeVars, "engine", engine),
		encClauses: h.Counter(metrics.MetricEncodeClauses, "engine", engine),
	}
}

// observeEncode records the CNF growth of one encoding step: the initial
// miter construction or one DIP-constrained circuit-copy pair.
func (m *attackMetrics) observeEncode(vars, clauses uint64) {
	if m == nil {
		return
	}
	m.encVars.Add(vars)
	m.encClauses.Add(clauses)
}

// observeSolve records one DIP-loop SAT call's wall-clock latency.
func (m *attackMetrics) observeSolve(elapsed time.Duration) {
	if m == nil {
		return
	}
	m.dipSolve.Observe(elapsed.Seconds())
}

// observeDIP records a completed iteration: one DIP found, one oracle
// query issued.
func (m *attackMetrics) observeDIP(iterations int) {
	if m == nil {
		return
	}
	m.dips.Inc()
	m.queries.Inc()
	m.iterations.Set(float64(iterations))
}

// installSolverMetrics attaches a sampled sat.Hook publishing the
// instance's counters, learnt-DB gauge, and LBD histogram, and feeding
// the search observer (anatomy capture) when one is installed. With a nil
// handle and nil observer no hook is installed, so the solver keeps its
// zero-overhead search loop.
func installSolverMetrics(h *metrics.Handle, obs SearchObserver, s *sat.Solver, instance int) {
	if h == nil && obs == nil {
		return
	}
	hook := &sat.Hook{}
	if h != nil {
		inst := strconv.Itoa(instance)
		dec := h.Counter(metrics.MetricSatDecisions, "instance", inst)
		confl := h.Counter(metrics.MetricSatConflicts, "instance", inst)
		prop := h.Counter(metrics.MetricSatPropagations, "instance", inst)
		rest := h.Counter(metrics.MetricSatRestarts, "instance", inst)
		learnt := h.Counter(metrics.MetricSatLearnt, "instance", inst)
		removed := h.Counter(metrics.MetricSatRemoved, "instance", inst)
		xorProp := h.Counter(metrics.MetricSatXorPropagations, "instance", inst)
		xorConfl := h.Counter(metrics.MetricSatXorConflicts, "instance", inst)
		simpRemoved := h.Counter(metrics.MetricSatSimplifyRemoved, "instance", inst)
		simpStrength := h.Counter(metrics.MetricSatSimplifyStrengthened, "instance", inst)
		db := h.Gauge(metrics.MetricSatLearntDB, "instance", inst)
		lbd := h.Histogram(metrics.MetricSatLearntLBD, lbdBuckets, "instance", inst)
		hook.OnSample = func(d sat.Stats, learntDB int) {
			dec.Add(d.Decisions)
			confl.Add(d.Conflicts)
			prop.Add(d.Propagations)
			rest.Add(d.Restarts)
			learnt.Add(d.Learnt)
			removed.Add(d.Removed)
			xorProp.Add(d.XorPropagations)
			xorConfl.Add(d.XorConflicts)
			simpRemoved.Add(d.SimplifyRemoved)
			simpStrength.Add(d.SimplifyStrengthened)
			db.Set(float64(learntDB))
		}
		hook.OnLearnt = func(l int32, size int) {
			lbd.Observe(float64(l))
		}
	}
	if obs != nil {
		// One hook per solver: compose the metrics publication (when live)
		// with the observer's capture in a single callback set.
		prevLearnt := hook.OnLearnt
		hook.OnLearnt = func(l int32, size int) {
			if prevLearnt != nil {
				prevLearnt(l, size)
			}
			obs.SearchLearnt(instance, l, size)
		}
		hook.OnRestart = func(conflicts uint64) {
			obs.SearchRestart(instance, conflicts)
		}
	}
	s.SetHook(hook)
}
