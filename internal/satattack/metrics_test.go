package satattack

import (
	"context"
	"math/rand"
	"testing"

	"dynunlock/internal/metrics"
	"dynunlock/internal/netlist"
	"dynunlock/internal/sim"
)

func metricsFixture(t *testing.T) (*Locked, Oracle) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	orig, locked, _ := lockedPair(rng, 5, 40, 5)
	l := NewLocked(locked, func(i int, s netlist.SignalID) bool {
		return len(locked.N.SignalName(s)) > 0 && locked.N.SignalName(s)[0] == 'k'
	})
	return l, &simOracle{c: sim.NewComb(orig)}
}

func sumOf(r *metrics.Registry, name string) float64 {
	v, _ := r.Sum(name)
	return v
}

func TestSequentialMetricsSeries(t *testing.T) {
	l, o := metricsFixture(t)
	r := metrics.NewRegistry()
	ctx := metrics.With(context.Background(), r)
	res, err := RunCtx(ctx, l, o, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if got := sumOf(r, metrics.MetricAttackDIPs); got != float64(res.Iterations) {
		t.Errorf("dips counter = %v, want %d", got, res.Iterations)
	}
	if got := sumOf(r, metrics.MetricAttackQueries); got != float64(res.Queries) {
		t.Errorf("queries counter = %v, want %d", got, res.Queries)
	}
	// The end-of-Solve hook flush makes the published solver counters equal
	// the engine's own totals exactly, not approximately.
	if got := sumOf(r, metrics.MetricSatConflicts); got != float64(res.SolverStats.Conflicts) {
		t.Errorf("conflicts counter = %v, want %d", got, res.SolverStats.Conflicts)
	}
	if got := sumOf(r, metrics.MetricSatPropagations); got != float64(res.SolverStats.Propagations) {
		t.Errorf("propagations counter = %v, want %d", got, res.SolverStats.Propagations)
	}
	if res.Iterations > 0 && sumOf(r, metrics.MetricAttackDIPSolveSec) != float64(res.Iterations+1) {
		// One solve per DIP plus the final UNSAT call.
		t.Errorf("dip solve histogram count = %v, want %d",
			sumOf(r, metrics.MetricAttackDIPSolveSec), res.Iterations+1)
	}
}

func TestPortfolioMetricsSeries(t *testing.T) {
	l, o := metricsFixture(t)
	r := metrics.NewRegistry()
	ctx := metrics.With(context.Background(), r)
	res, err := RunCtx(ctx, l, o, Options{Portfolio: 3, EnumerateLimit: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if got := sumOf(r, metrics.MetricAttackDIPs); got != float64(res.Iterations) {
		t.Errorf("dips counter = %v, want %d", got, res.Iterations)
	}
	var wins int
	for _, w := range res.InstanceWins {
		wins += w
	}
	if got := sumOf(r, metrics.MetricPortfolioWins); got != float64(wins) {
		t.Errorf("portfolio wins counter = %v, want %d", got, wins)
	}
	if got := sumOf(r, metrics.MetricSatConflicts); got != float64(res.SolverStats.Conflicts) {
		t.Errorf("conflicts counter = %v, want %d (summed across instances)",
			got, res.SolverStats.Conflicts)
	}
}

// TestMetricsDoNotPerturbAttack is the attack-level face of the
// bit-identical guarantee: with and without a registry, the sequential
// engine takes the same path.
func TestMetricsDoNotPerturbAttack(t *testing.T) {
	run := func(ctx context.Context) *Result {
		l, o := metricsFixture(t)
		res, err := RunCtx(ctx, l, o, Options{EnumerateLimit: 4})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(context.Background())
	metered := run(metrics.With(context.Background(), metrics.NewRegistry()))
	if plain.SolverStats != metered.SolverStats {
		t.Fatalf("metrics perturbed the solver: %+v vs %+v", plain.SolverStats, metered.SolverStats)
	}
	if plain.Iterations != metered.Iterations || len(plain.Candidates) != len(metered.Candidates) {
		t.Fatalf("metrics perturbed the attack: %d/%d iters, %d/%d candidates",
			plain.Iterations, metered.Iterations, len(plain.Candidates), len(metered.Candidates))
	}
}
