// Portfolio SAT attack: every SAT call of the DIP loop and of candidate
// enumeration is raced across N diversified solver/encoder instances. The
// race is context-scoped: each race derives a child context, the first
// instance to return a definitive answer wins and cancels the child, and
// the losers' ctx watchers interrupt their searches — so cancelling the
// parent context (deadline, cmd-line -timeout, caller cancellation) tears
// the whole race down through the same mechanism. The winning
// distinguishing input and oracle response — or blocking clause — are
// replayed into every instance, so all clause databases stay logically
// equivalent and any instance can win the next race.
//
// Diversification (sat.Diversify) varies the VSIDS decay, restart policy,
// initial phases, and random-decision seed per instance; instance 0 always
// runs the zero config, i.e. the sequential solver. SAT-call latency, not
// iteration count, dominates dynamic-scan attacks (ScanSAT, GF-Flush), so
// racing the solve is where the wall-clock parallelism is.
//
// Determinism: the *set* of enumerated keys is the full equivalence class
// of the oracle constraints, which is independent of which instance wins
// which race; only the DIP order, iteration count, and per-instance stats
// vary between runs. Tests assert candidate-set equality across portfolio
// sizes 1, 2, and 4.
package satattack

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"time"

	"dynunlock/internal/aig"
	"dynunlock/internal/cnf"
	"dynunlock/internal/encode"
	"dynunlock/internal/metrics"
	"dynunlock/internal/sat"
	"dynunlock/internal/trace"
)

// pfInstance is one diversified solver with its own encoding of the locked
// circuit. Encoding is deterministic, so variable numbering is identical
// across instances and models transfer between them as plain bit vectors.
type pfInstance struct {
	s     *sat.Solver
	e     *encode.Encoder
	x     []cnf.Lit
	k1    []cnf.Lit
	k2    []cnf.Lit
	miter cnf.Lit
}

type portfolio struct {
	l     *Locked
	insts []*pfInstance
	wins  []int
	// winCtr mirrors wins as live per-instance counters; entries are nil
	// (no-op) when metrics are disabled.
	winCtr []*metrics.Counter
	// aig, when non-nil, is the compacted arena every instance's copies
	// are encoded from (Options.AIG). The graph is read-only after
	// construction, so all instances share one.
	aig *aig.Graph
	// simplify arms per-instance level-0 inprocessing between DIPs.
	simplify bool
}

// encodeCopy instantiates one circuit copy on instance in, through the
// shared AIG when armed and the direct netlist walk otherwise.
func (p *portfolio) encodeCopy(in *pfInstance, lits []cnf.Lit) []cnf.Lit {
	if p.aig != nil {
		return in.e.EncodeAIG(p.aig, lits)
	}
	return in.e.EncodeComb(p.l.View, lits)
}

// emitted snapshots instance 0's problem size (variables; clauses plus
// native XOR rows) for encode-growth accounting.
func (p *portfolio) emitted() (uint64, uint64) {
	s := p.insts[0].s
	return uint64(s.NumVars()), uint64(s.NumClauses() + s.NumXors())
}

func newPortfolio(l *Locked, opts Options, mh *metrics.Handle) (*portfolio, error) {
	n := opts.Portfolio
	p := &portfolio{l: l, wins: make([]int, n), simplify: opts.Simplify}
	if opts.AIG {
		g, err := aig.FromCombView(l.View)
		if err != nil {
			return nil, err
		}
		p.aig = g
	}
	for i := 0; i < n; i++ {
		s := sat.NewWithConfig(sat.Diversify(i))
		s.ConflictBudget = opts.ConflictBudget
		installSolverMetrics(mh, opts.Search, s, i)
		p.winCtr = append(p.winCtr, mh.Counter(metrics.MetricPortfolioWins, "instance", strconv.Itoa(i)))
		e := encode.NewWithConfig(s, encode.Config{NativeXor: opts.NativeXor})
		in := &pfInstance{
			s:  s,
			e:  e,
			x:  e.FreshVec(len(l.InIdx)),
			k1: e.FreshVec(len(l.KeyIdx)),
			k2: e.FreshVec(len(l.KeyIdx)),
		}
		y1 := p.encodeCopy(in, l.assemble(e, in.x, in.k1))
		y2 := p.encodeCopy(in, l.assemble(e, in.x, in.k2))
		in.miter = e.Miter(y1, y2)
		for _, ks := range [][]cnf.Lit{in.k1, in.k2} {
			for _, kl := range ks {
				s.BumpActivity(kl.Var(), 1)
			}
		}
		p.insts = append(p.insts, in)
	}
	return p, nil
}

// race runs one SAT call on every instance concurrently and returns the
// index and status of the first definitive (Sat/Unsat) finisher, after
// cancelling and draining the rest. Every instance solves under a child
// context of ctx: the winner cancels it to stop the losers, and a parent
// cancellation or deadline stops the whole race the same way. If every
// instance returns Unknown (parent cancelled, or conflict budget
// exhausted) the winner index is -1.
func (p *portfolio) race(ctx context.Context, withMiter bool) (int, sat.Status) {
	type outcome struct {
		idx int
		st  sat.Status
	}
	raceCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	ch := make(chan outcome, len(p.insts))
	for i, in := range p.insts {
		in.s.ClearInterrupt()
		go func(i int, in *pfInstance) {
			var st sat.Status
			if withMiter {
				st = in.s.SolveCtx(raceCtx, in.miter)
			} else {
				st = in.s.SolveCtx(raceCtx)
			}
			ch <- outcome{i, st}
		}(i, in)
	}
	winner, st := -1, sat.Unknown
	for range p.insts {
		o := <-ch
		if winner == -1 && o.st != sat.Unknown {
			winner, st = o.idx, o.st
			cancel() // losers stop via their ctx watchers
		}
	}
	for _, in := range p.insts {
		in.s.ClearInterrupt()
	}
	if winner >= 0 {
		p.wins[winner]++
		p.winCtr[winner].Inc()
	}
	return winner, st
}

// replayDIP asserts the oracle's response for a distinguishing input on
// both key copies of every instance — the same constraint the sequential
// engine adds, issued N times. It returns instance 0's problem-size
// growth (encoding is deterministic, so every instance grows alike).
func (p *portfolio) replayDIP(dip, resp []bool) (dVars, dClauses uint64) {
	ev0, ec0 := p.emitted()
	for _, in := range p.insts {
		cx := in.e.ConstVec(dip)
		in.e.AssertEqualConst(p.encodeCopy(in, p.l.assemble(in.e, cx, in.k1)), resp)
		in.e.AssertEqualConst(p.encodeCopy(in, p.l.assemble(in.e, cx, in.k2)), resp)
	}
	ev1, ec1 := p.emitted()
	return ev1 - ev0, ec1 - ec0
}

// block adds a blocking clause for key k to every instance. It reports
// false when some instance proves the remaining space empty at top level.
func (p *portfolio) block(k []bool) bool {
	ok := true
	for _, in := range p.insts {
		clause := make([]cnf.Lit, len(in.k1))
		for i, l := range in.k1 {
			if k[i] {
				clause[i] = l.Not()
			} else {
				clause[i] = l
			}
		}
		if !in.s.AddClause(clause...) {
			ok = false
		}
	}
	return ok
}

// statsSum returns the element-wise sum of every instance's solver
// counters: total work across the portfolio, not critical-path work.
func (p *portfolio) statsSum() sat.Stats {
	var sum sat.Stats
	for _, in := range p.insts {
		sum.Decisions += in.s.Stats.Decisions
		sum.Propagations += in.s.Stats.Propagations
		sum.Conflicts += in.s.Stats.Conflicts
		sum.Restarts += in.s.Stats.Restarts
		sum.Learnt += in.s.Stats.Learnt
		sum.Removed += in.s.Stats.Removed
		sum.XorPropagations += in.s.Stats.XorPropagations
		sum.XorConflicts += in.s.Stats.XorConflicts
		sum.SimplifyCalls += in.s.Stats.SimplifyCalls
		sum.SimplifyRemoved += in.s.Stats.SimplifyRemoved
		sum.SimplifyStrengthened += in.s.Stats.SimplifyStrengthened
	}
	return sum
}

// runPortfolio is the portfolio counterpart of RunCtx: same stage spans,
// same typed partial results, with every SAT call raced across instances.
func runPortfolio(ctx context.Context, l *Locked, o Oracle, opts Options) (*Result, error) {
	tr := trace.From(ctx)
	mh := metrics.From(ctx)
	am := newAttackMetrics(mh, "portfolio")
	start := time.Now()

	enc := tr.Start("encode")
	p, err := newPortfolio(l, opts, mh)
	if err != nil {
		enc.End()
		return nil, err
	}
	enc.Add("instances", uint64(len(p.insts)))
	enc.Add("vars", uint64(p.insts[0].s.NumVars()))
	enc.Add("clauses", uint64(p.insts[0].s.NumClauses()))
	if p.aig != nil {
		enc.Add("aig_nodes", uint64(p.aig.NumNodes()))
	}
	enc.End()

	res := &Result{}
	res.EncodeVars, res.EncodeClauses = p.emitted()
	am.observeEncode(res.EncodeVars, res.EncodeClauses)
	finish := func(reason StopReason) *Result {
		if reason != StopNone {
			res.Stopped = true
			res.StopReason = reason
		}
		res.SolverStats = p.statsSum()
		for _, in := range p.insts {
			res.InstanceStats = append(res.InstanceStats, in.s.Stats)
		}
		res.InstanceWins = append([]int(nil), p.wins...)
		res.Elapsed = time.Since(start)
		return res
	}

	loop := tr.Start("dip_loop")
	loopMark := p.statsSum()
	var loopEncV, loopEncC uint64
	endLoop := func() {
		addStatsDelta(loop, loopMark, p.statsSum())
		loop.Add("dips", uint64(res.Iterations))
		loop.Add("oracle_queries", uint64(res.Queries))
		loop.Add("encode_vars", loopEncV)
		loop.Add("encode_clauses", loopEncC)
		loop.End()
	}
	stop := StopNone
	insCursor := 0
dipLoop:
	for {
		if err := ctx.Err(); err != nil {
			stop = ctxStopReason(ctx)
			break
		}
		if opts.MaxIterations > 0 && res.Iterations >= opts.MaxIterations {
			stop = StopIterations
			break
		}
		var solveT0, solveT1 time.Time
		if am != nil || opts.OnDIP != nil {
			solveT0 = time.Now()
		}
		winner, st := p.race(ctx, true)
		if am != nil || opts.OnDIP != nil {
			solveT1 = time.Now()
		}
		if am != nil {
			am.observeSolve(solveT1.Sub(solveT0))
		}
		switch st {
		case sat.Unsat:
			res.Converged = true
			break dipLoop
		case sat.Unknown:
			stop = ctxStopReason(ctx)
			break dipLoop
		case sat.Sat:
			w := p.insts[winner]
			dip := w.e.ModelBits(w.x)
			resp := o.Query(dip)
			res.Queries++
			res.Iterations++
			if len(resp) != len(l.View.Outputs) {
				endLoop()
				return nil, fmt.Errorf("satattack: oracle returned %d outputs, want %d", len(resp), len(l.View.Outputs))
			}
			am.observeDIP(res.Iterations)
			if opts.OnDIP != nil {
				opts.OnDIP(res.Iterations, dip, resp, p.statsSum(), solveT1.Sub(solveT0))
			}
			dv, dc := p.replayDIP(dip, resp)
			res.EncodeVars += dv
			res.EncodeClauses += dc
			loopEncV += dv
			loopEncC += dc
			am.observeEncode(dv, dc)
			if opts.Insight != nil {
				// Replay the certified rows into every instance so all
				// clause databases stay logically equivalent and any
				// instance can win the next race.
				var cs []KeyConstraint
				cs, insCursor = opts.Insight.ConstraintsSince(insCursor)
				for _, in := range p.insts {
					injectInsight(in.s, in.k1, in.k2, cs)
				}
				if key, ok := opts.Insight.SolveKey(); ok && len(key) == len(l.KeyIdx) {
					res.Key = append([]bool(nil), key...)
					res.Analytic = true
					res.Converged = true
					break dipLoop
				}
			}
			if p.simplify {
				// Per-instance level-0 inprocessing: clause databases differ
				// (learnts diverge between instances) but each rewrite is
				// equivalence-preserving, so the race stays fair.
				for _, in := range p.insts {
					in.s.Simplify()
				}
			}
			tr.Progressf("iter %d: dip=%s inst=%d clauses=%d",
				res.Iterations, bitString(dip), winner, w.s.NumClauses())
			if opts.Log != nil {
				fmt.Fprintf(opts.Log, "iter %d: dip=%s inst=%d clauses=%d\n",
					res.Iterations, bitString(dip), winner, w.s.NumClauses())
			}
			if opts.DumpCNF != nil {
				opts.DumpCNF(res.Iterations, w.s.WriteDimacs)
			}
		}
	}
	endLoop()
	if stop != StopNone && stop != StopIterations {
		return finish(stop), nil
	}
	if res.Analytic {
		// Rank-k short-circuit (see the sequential engine): the key is
		// unique, so extraction and enumeration races are skipped.
		if opts.EnumerateLimit > 0 {
			res.Candidates = [][]bool{append([]bool(nil), res.Key...)}
			res.CandidatesExact = true
		}
		return finish(stop), nil
	}

	// Key extraction.
	ext := tr.Start("extract")
	extMark := p.statsSum()
	winner, st := p.race(ctx, false)
	addStatsDelta(ext, extMark, p.statsSum())
	ext.End()
	switch st {
	case sat.Unsat:
		return nil, ErrUnsat
	case sat.Unknown:
		return finish(ctxStopReason(ctx)), nil
	}
	w := p.insts[winner]
	res.Key = w.e.ModelBits(w.k1)

	if opts.EnumerateLimit > 0 {
		enumSp := tr.Start("enumerate")
		enumMark := p.statsSum()
		res.Candidates = [][]bool{append([]bool(nil), res.Key...)}
		res.CandidatesExact = false
		if p.block(res.Key) {
		enumLoop:
			for len(res.Candidates) < opts.EnumerateLimit {
				winner, st := p.race(ctx, false)
				switch {
				case st == sat.Unknown:
					stop = ctxStopReason(ctx)
					break enumLoop
				case st != sat.Sat:
					res.CandidatesExact = st == sat.Unsat
					break enumLoop
				}
				w := p.insts[winner]
				k := w.e.ModelBits(w.k1)
				res.Candidates = append(res.Candidates, k)
				if !p.block(k) {
					res.CandidatesExact = true
					break
				}
			}
			if stop == StopNone && len(res.Candidates) == opts.EnumerateLimit && !res.CandidatesExact {
				// Limit reached; check whether anything remains.
				_, st := p.race(ctx, false)
				if st == sat.Unknown {
					stop = ctxStopReason(ctx)
				} else {
					res.CandidatesExact = st == sat.Unsat
				}
			}
		} else {
			res.CandidatesExact = true
		}
		// Race winners enumerate keys in solver-dependent order; report the
		// class in a canonical order so portfolio size never changes output.
		sortKeys(res.Candidates)
		addStatsDelta(enumSp, enumMark, p.statsSum())
		enumSp.Add("candidates", uint64(len(res.Candidates)))
		enumSp.End()
	}
	return finish(stop), nil
}

// sortKeys orders bit vectors lexicographically (false < true).
func sortKeys(keys [][]bool) {
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		for k := range a {
			if a[k] != b[k] {
				return b[k]
			}
		}
		return false
	})
}
