// Portfolio SAT attack: every SAT call of the DIP loop and of candidate
// enumeration is raced across N diversified solver/encoder instances. The
// first instance to return a definitive answer wins the race; the losers
// are interrupted (sat.Interrupt) and the winning distinguishing input and
// oracle response — or blocking clause — are replayed into every instance,
// so all clause databases stay logically equivalent and any instance can
// win the next race.
//
// Diversification (sat.Diversify) varies the VSIDS decay, restart policy,
// initial phases, and random-decision seed per instance; instance 0 always
// runs the zero config, i.e. the sequential solver. SAT-call latency, not
// iteration count, dominates dynamic-scan attacks (ScanSAT, GF-Flush), so
// racing the solve is where the wall-clock parallelism is.
//
// Determinism: the *set* of enumerated keys is the full equivalence class
// of the oracle constraints, which is independent of which instance wins
// which race; only the DIP order, iteration count, and per-instance stats
// vary between runs. Tests assert candidate-set equality across portfolio
// sizes 1, 2, and 4.
package satattack

import (
	"fmt"
	"sort"
	"time"

	"dynunlock/internal/cnf"
	"dynunlock/internal/encode"
	"dynunlock/internal/sat"
)

// pfInstance is one diversified solver with its own encoding of the locked
// circuit. Encoding is deterministic, so variable numbering is identical
// across instances and models transfer between them as plain bit vectors.
type pfInstance struct {
	s     *sat.Solver
	e     *encode.Encoder
	x     []cnf.Lit
	k1    []cnf.Lit
	k2    []cnf.Lit
	miter cnf.Lit
}

type portfolio struct {
	l     *Locked
	insts []*pfInstance
	wins  []int
}

func newPortfolio(l *Locked, n int, budget int64) *portfolio {
	p := &portfolio{l: l, wins: make([]int, n)}
	for i := 0; i < n; i++ {
		s := sat.NewWithConfig(sat.Diversify(i))
		s.ConflictBudget = budget
		e := encode.New(s)
		in := &pfInstance{
			s:  s,
			e:  e,
			x:  e.FreshVec(len(l.InIdx)),
			k1: e.FreshVec(len(l.KeyIdx)),
			k2: e.FreshVec(len(l.KeyIdx)),
		}
		y1 := e.EncodeComb(l.View, l.assemble(e, in.x, in.k1))
		y2 := e.EncodeComb(l.View, l.assemble(e, in.x, in.k2))
		in.miter = e.Miter(y1, y2)
		for _, ks := range [][]cnf.Lit{in.k1, in.k2} {
			for _, kl := range ks {
				s.BumpActivity(kl.Var(), 1)
			}
		}
		p.insts = append(p.insts, in)
	}
	return p
}

// race runs one SAT call on every instance concurrently and returns the
// index and status of the first definitive (Sat/Unsat) finisher, after
// interrupting and draining the rest. If every instance returns Unknown
// (conflict budget exhausted) the winner index is -1.
func (p *portfolio) race(withMiter bool) (int, sat.Status) {
	type outcome struct {
		idx int
		st  sat.Status
	}
	ch := make(chan outcome, len(p.insts))
	for i, in := range p.insts {
		in.s.ClearInterrupt()
		go func(i int, in *pfInstance) {
			var st sat.Status
			if withMiter {
				st = in.s.Solve(in.miter)
			} else {
				st = in.s.Solve()
			}
			ch <- outcome{i, st}
		}(i, in)
	}
	winner, st := -1, sat.Unknown
	for range p.insts {
		o := <-ch
		if winner == -1 && o.st != sat.Unknown {
			winner, st = o.idx, o.st
			for j, other := range p.insts {
				if j != o.idx {
					other.s.Interrupt()
				}
			}
		}
	}
	for _, in := range p.insts {
		in.s.ClearInterrupt()
	}
	if winner >= 0 {
		p.wins[winner]++
	}
	return winner, st
}

// replayDIP asserts the oracle's response for a distinguishing input on
// both key copies of every instance — the same constraint the sequential
// engine adds, issued N times.
func (p *portfolio) replayDIP(dip, resp []bool) {
	for _, in := range p.insts {
		cx := in.e.ConstVec(dip)
		in.e.AssertEqualConst(in.e.EncodeComb(p.l.View, p.l.assemble(in.e, cx, in.k1)), resp)
		in.e.AssertEqualConst(in.e.EncodeComb(p.l.View, p.l.assemble(in.e, cx, in.k2)), resp)
	}
}

// block adds a blocking clause for key k to every instance. It reports
// false when some instance proves the remaining space empty at top level.
func (p *portfolio) block(k []bool) bool {
	ok := true
	for _, in := range p.insts {
		clause := make([]cnf.Lit, len(in.k1))
		for i, l := range in.k1 {
			if k[i] {
				clause[i] = l.Not()
			} else {
				clause[i] = l
			}
		}
		if !in.s.AddClause(clause...) {
			ok = false
		}
	}
	return ok
}

// runPortfolio is the portfolio counterpart of Run.
func runPortfolio(l *Locked, o Oracle, opts Options) (*Result, error) {
	start := time.Now()
	p := newPortfolio(l, opts.Portfolio, opts.ConflictBudget)
	res := &Result{}

	for {
		if opts.MaxIterations > 0 && res.Iterations >= opts.MaxIterations {
			break
		}
		winner, st := p.race(true)
		switch st {
		case sat.Unsat:
			res.Converged = true
		case sat.Unknown:
			return nil, ErrBudget
		case sat.Sat:
			w := p.insts[winner]
			dip := w.e.ModelBits(w.x)
			resp := o.Query(dip)
			res.Queries++
			res.Iterations++
			if len(resp) != len(l.View.Outputs) {
				return nil, fmt.Errorf("satattack: oracle returned %d outputs, want %d", len(resp), len(l.View.Outputs))
			}
			p.replayDIP(dip, resp)
			if opts.Log != nil {
				fmt.Fprintf(opts.Log, "iter %d: dip=%s inst=%d clauses=%d\n",
					res.Iterations, bitString(dip), winner, w.s.NumClauses())
			}
			if opts.DumpCNF != nil {
				opts.DumpCNF(res.Iterations, w.s.WriteDimacs)
			}
			continue
		}
		break
	}

	// Key extraction.
	winner, st := p.race(false)
	switch st {
	case sat.Unsat:
		return nil, ErrUnsat
	case sat.Unknown:
		return nil, ErrBudget
	}
	w := p.insts[winner]
	res.Key = w.e.ModelBits(w.k1)

	if opts.EnumerateLimit > 0 {
		res.Candidates = [][]bool{append([]bool(nil), res.Key...)}
		res.CandidatesExact = false
		if p.block(res.Key) {
			for len(res.Candidates) < opts.EnumerateLimit {
				winner, st := p.race(false)
				if st != sat.Sat {
					res.CandidatesExact = st == sat.Unsat
					break
				}
				w := p.insts[winner]
				k := w.e.ModelBits(w.k1)
				res.Candidates = append(res.Candidates, k)
				if !p.block(k) {
					res.CandidatesExact = true
					break
				}
			}
			if len(res.Candidates) == opts.EnumerateLimit && !res.CandidatesExact {
				// Limit reached; check whether anything remains.
				_, st := p.race(false)
				res.CandidatesExact = st == sat.Unsat
			}
		} else {
			res.CandidatesExact = true
		}
		// Race winners enumerate keys in solver-dependent order; report the
		// class in a canonical order so portfolio size never changes output.
		sortKeys(res.Candidates)
	}

	for _, in := range p.insts {
		res.InstanceStats = append(res.InstanceStats, in.s.Stats)
		res.SolverStats.Decisions += in.s.Stats.Decisions
		res.SolverStats.Propagations += in.s.Stats.Propagations
		res.SolverStats.Conflicts += in.s.Stats.Conflicts
		res.SolverStats.Restarts += in.s.Stats.Restarts
		res.SolverStats.Learnt += in.s.Stats.Learnt
		res.SolverStats.Removed += in.s.Stats.Removed
	}
	res.InstanceWins = append([]int(nil), p.wins...)
	res.Elapsed = time.Since(start)
	return res, nil
}

// sortKeys orders bit vectors lexicographically (false < true).
func sortKeys(keys [][]bool) {
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		for k := range a {
			if a[k] != b[k] {
				return b[k]
			}
		}
		return false
	})
}
