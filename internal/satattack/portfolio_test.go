package satattack

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"dynunlock/internal/netlist"
	"dynunlock/internal/sim"
)

func keySet(cands [][]bool) []string {
	out := make([]string, len(cands))
	for i, c := range cands {
		var b strings.Builder
		for _, bit := range c {
			if bit {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		out[i] = b.String()
	}
	sort.Strings(out)
	return out
}

// Portfolio sizes 1, 2, and 4 must recover the same candidate equivalence
// class and convergence status: which instance wins a race changes the DIP
// order, never the answer.
func TestPortfolioDeterministicCandidates(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 4; trial++ {
		orig, locked, _ := lockedPair(rng, 5+rng.Intn(3), 40+rng.Intn(30), 5)
		l := NewLocked(locked, func(i int, s netlist.SignalID) bool {
			return len(locked.N.SignalName(s)) > 0 && locked.N.SignalName(s)[0] == 'k'
		})
		var ref []string
		var refConverged bool
		for _, n := range []int{1, 2, 4} {
			oracle := &simOracle{c: sim.NewComb(orig)}
			res, err := Run(l, oracle, Options{Portfolio: n, EnumerateLimit: 64})
			if err != nil {
				t.Fatalf("trial %d portfolio %d: %v", trial, n, err)
			}
			if !res.CandidatesExact {
				t.Fatalf("trial %d portfolio %d: enumeration not exact", trial, n)
			}
			if len(res.InstanceStats) != n || len(res.InstanceWins) != n {
				t.Fatalf("trial %d portfolio %d: instance metrics %d/%d",
					trial, n, len(res.InstanceStats), len(res.InstanceWins))
			}
			wins := 0
			for _, w := range res.InstanceWins {
				wins += w
			}
			if wins == 0 {
				t.Fatalf("trial %d portfolio %d: no races won", trial, n)
			}
			got := keySet(res.Candidates)
			if n == 1 {
				ref, refConverged = got, res.Converged
				continue
			}
			if res.Converged != refConverged {
				t.Fatalf("trial %d portfolio %d: converged=%v, want %v", trial, n, res.Converged, refConverged)
			}
			if len(got) != len(ref) {
				t.Fatalf("trial %d portfolio %d: %d candidates, want %d", trial, n, len(got), len(ref))
			}
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("trial %d portfolio %d: candidate set differs at %d: %s vs %s",
						trial, n, i, got[i], ref[i])
				}
			}
		}
	}
}

// Each portfolio candidate must actually unlock the circuit.
func TestPortfolioKeysCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	orig, locked, _ := lockedPair(rng, 6, 50, 5)
	l := NewLocked(locked, func(i int, s netlist.SignalID) bool {
		return len(locked.N.SignalName(s)) > 0 && locked.N.SignalName(s)[0] == 'k'
	})
	oracle := &simOracle{c: sim.NewComb(orig)}
	res, err := Run(l, oracle, Options{Portfolio: 3, EnumerateLimit: 32})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("portfolio attack did not converge")
	}
	for _, k := range res.Candidates {
		checkEquivalent(t, orig, locked, l, k)
	}
}

// MaxIterations must bound the portfolio DIP loop exactly as it bounds the
// sequential one.
func TestPortfolioMaxIterations(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	orig, locked, _ := lockedPair(rng, 6, 40, 5)
	l := NewLocked(locked, func(i int, s netlist.SignalID) bool {
		return locked.N.SignalName(s)[0] == 'k'
	})
	res, err := Run(l, &simOracle{c: sim.NewComb(orig)}, Options{Portfolio: 2, MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 1 {
		t.Fatalf("iterations = %d, want <= 1", res.Iterations)
	}
}
