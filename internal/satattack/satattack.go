// Package satattack implements the oracle-guided SAT attack of Subramanyan
// et al. (HOST 2015) on combinational locked circuits.
//
// The attack maintains two copies of the locked circuit with shared inputs
// X and independent keys K1, K2, plus a miter forcing their outputs to
// differ. Each SAT call yields a distinguishing input pattern (DIP); the
// oracle's response for that DIP is asserted on both key copies, pruning
// every key that disagrees with the oracle. When the miter goes UNSAT, any
// key satisfying the accumulated I/O constraints is functionally correct
// on all inputs.
//
// DynUnlock (internal/core) feeds this engine a combinational model of a
// dynamically scan-locked circuit whose key inputs are the LFSR seed bits.
package satattack

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"

	"dynunlock/internal/aig"
	"dynunlock/internal/cnf"
	"dynunlock/internal/encode"
	"dynunlock/internal/metrics"
	"dynunlock/internal/netlist"
	"dynunlock/internal/sat"
	"dynunlock/internal/trace"
)

// Locked is a combinational locked circuit: a view whose inputs are split
// into attacker-controlled inputs and key inputs.
type Locked struct {
	View *netlist.CombView
	// KeyIdx indexes View.Inputs entries that are key inputs.
	KeyIdx []int
	// InIdx indexes the remaining, attacker-controlled inputs.
	InIdx []int
}

// NewLocked splits view inputs by a key predicate.
func NewLocked(view *netlist.CombView, isKey func(i int, sig netlist.SignalID) bool) *Locked {
	l := &Locked{View: view}
	for i, s := range view.Inputs {
		if isKey(i, s) {
			l.KeyIdx = append(l.KeyIdx, i)
		} else {
			l.InIdx = append(l.InIdx, i)
		}
	}
	return l
}

// Validate checks index consistency.
func (l *Locked) Validate() error {
	if l.View == nil {
		return errors.New("satattack: nil view")
	}
	seen := make(map[int]bool)
	for _, idx := range [][]int{l.KeyIdx, l.InIdx} {
		for _, i := range idx {
			if i < 0 || i >= len(l.View.Inputs) {
				return fmt.Errorf("satattack: input index %d out of range", i)
			}
			if seen[i] {
				return fmt.Errorf("satattack: input index %d appears twice", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != len(l.View.Inputs) {
		return fmt.Errorf("satattack: %d of %d inputs classified", len(seen), len(l.View.Inputs))
	}
	if len(l.KeyIdx) == 0 {
		return errors.New("satattack: no key inputs")
	}
	return nil
}

// Oracle answers I/O queries on the activated (correctly keyed) circuit.
// The input vector is ordered like Locked.InIdx; the response is ordered
// like View.Outputs.
type Oracle interface {
	Query(in []bool) []bool
}

// OracleFunc adapts a function to the Oracle interface.
type OracleFunc func(in []bool) []bool

// Query implements Oracle.
func (f OracleFunc) Query(in []bool) []bool { return f(in) }

// Options tunes the attack.
type Options struct {
	// Portfolio is the number of diversified solver/encoder instances that
	// race each SAT call (see Portfolio in portfolio.go). Values <= 1 run
	// the sequential engine, whose behavior is bit-identical to the
	// pre-portfolio implementation.
	Portfolio int
	// MaxIterations bounds the DIP loop; 0 means unlimited.
	MaxIterations int
	// EnumerateLimit bounds post-convergence key-candidate enumeration:
	// 0 extracts a single key, n > 0 enumerates up to n candidates.
	EnumerateLimit int
	// ConflictBudget bounds total solver conflicts (0 = unlimited).
	ConflictBudget int64
	// Log, when non-nil, receives per-iteration progress lines.
	Log io.Writer
	// DumpCNF, when non-nil, is called after every iteration with the
	// iteration number and a writer-producing function; the paper's
	// methodology dumps the accumulated CNF after each iteration to
	// inspect which seed bits have been pinned. Pass a func that opens a
	// per-iteration file and writes the solver's DIMACS dump into it.
	DumpCNF func(iteration int, dump func(w io.Writer) error)
	// OnDIP, when non-nil, observes every completed DIP iteration: the
	// iteration number (1-based), the distinguishing input, the oracle's
	// response, a snapshot of the solver counters after the iteration
	// (summed over portfolio instances), and the wall time of the SAT call
	// that produced the DIP. The flight recorder (internal/flight) uses it
	// to persist dips.jsonl. The dip and resp slices are only valid for the
	// duration of the call. nil leaves the hot loop free of timestamps and
	// allocations, preserving the bit-identical unobserved path.
	OnDIP DIPObserver
	// NativeXor encodes XOR gates as native GF(2) solver rows instead of
	// Tseitin clauses (encode.Config.NativeXor). Off by default so recorded
	// bundles replay bit-identically; the CLIs enable it.
	NativeXor bool
	// AIG routes every circuit copy through the two-stage pipeline: the
	// locked view is compiled once into an arena AIG (structural hashing,
	// constant folding, cone-of-influence restriction; internal/aig) and
	// each copy — the two fresh-key copies and every DIP-constrained copy —
	// replays the compacted arena via encode.EncodeAIG, collapsing under
	// its constant inputs before any clause is emitted. Off by default for
	// bundle replay compatibility (the NativeXor precedent); the CLIs
	// enable it.
	AIG bool
	// Simplify runs level-0 solver inprocessing (sat.Solver.Simplify)
	// after each DIP's constraints are asserted: clauses satisfied by the
	// accumulated top-level units are removed and the rest strengthened.
	// Equivalence-preserving, so candidate sets are unchanged. Off by
	// default; the CLIs enable it.
	Simplify bool
	// Search, when non-nil, taps the sampled solver search telemetry that
	// the metrics hook sees — learnt-clause LBD observations and restarts —
	// per solver instance. The anatomy capture layer (internal/anatomy)
	// implements it to build per-DIP LBD histograms and restart telemetry.
	// It is strictly observational and composes with the metrics hook; nil
	// keeps the no-telemetry solver path hook-free.
	Search SearchObserver
	// Insight, when non-nil, closes the insight→solver feedback loop:
	// after each DIP the freshly certified key constraints are injected
	// into the solver(s) as XOR rows, and once the source determines the
	// key completely the attack short-circuits analytically — the DIP loop
	// stops, the derived key becomes the single exact candidate, and no
	// further SAT calls are issued (Result.Analytic). The source must only
	// certify linear consequences of the oracle responses already asserted,
	// which keeps the candidate set identical to the plain attack's.
	Insight InsightSource
}

// KeyConstraint is one certified GF(2) constraint over the attack's key
// bits: the XOR of the key bits at Idx equals RHS.
type KeyConstraint struct {
	Idx []int
	RHS bool
}

// InsightSource streams certified linear key constraints into the attack
// (see Options.Insight). The internal/insight tracker implements it for
// seed-keyed attacks; internal/core wraps it for mask-keyed (linear-mode)
// attacks.
type InsightSource interface {
	// ConstraintsSince returns the constraints certified since the given
	// cursor (0 initially) and the new cursor to resume from. Constraint
	// indices address the attack's key vector.
	ConstraintsSince(from int) ([]KeyConstraint, int)
	// SolveKey returns the full key and true once the certified system
	// determines every key bit; (nil, false) while the key space is still
	// under-determined.
	SolveKey() ([]bool, bool)
}

// DIPObserver receives one callback per DIP iteration (see Options.OnDIP).
type DIPObserver func(iteration int, dip, resp []bool, stats sat.Stats, solveTime time.Duration)

// SearchObserver receives solver search telemetry per instance (see
// Options.Search): sampled learnt-clause LBD/size observations and every
// restart with its segment conflict count. Implementations must tolerate
// concurrent calls when the attack runs a portfolio.
type SearchObserver interface {
	SearchLearnt(instance int, lbd int32, size int)
	SearchRestart(instance int, conflicts uint64)
}

// ChainObservers composes DIP observers into one that invokes each in
// order (the flight recorder first, then the insight tracker, …). Nil
// entries are dropped; the result is nil when none remain, preserving
// the OnDIP == nil fast path.
func ChainObservers(obs ...DIPObserver) DIPObserver {
	live := obs[:0:0]
	for _, o := range obs {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return func(iteration int, dip, resp []bool, stats sat.Stats, solveTime time.Duration) {
		for _, o := range live {
			o(iteration, dip, resp, stats, solveTime)
		}
	}
}

// StopReason classifies why an attack stopped before completing.
type StopReason string

// Stop reasons. StopIterations leaves the accumulated constraints usable,
// so key extraction and enumeration still run; the other reasons abort the
// attack where it stands and the Result is partial.
const (
	StopNone       StopReason = ""
	StopDeadline   StopReason = "deadline"
	StopCancelled  StopReason = "cancelled"
	StopBudget     StopReason = "budget"
	StopIterations StopReason = "max-iterations"
)

// ctxStopReason maps a context error to its stop reason; a nil error means
// the solver's own budget was the cause.
func ctxStopReason(ctx context.Context) StopReason {
	switch ctx.Err() {
	case context.DeadlineExceeded:
		return StopDeadline
	case nil:
		return StopBudget
	default:
		return StopCancelled
	}
}

// Result reports the attack outcome.
type Result struct {
	// Key is one key consistent with every oracle response.
	Key []bool
	// Candidates lists all enumerated keys (including Key) when
	// Options.EnumerateLimit > 0.
	Candidates [][]bool
	// CandidatesExact is true when enumeration finished before the limit:
	// Candidates is then the complete equivalence class.
	CandidatesExact bool
	// Iterations is the number of DIPs used (SAT-attack iterations).
	Iterations int
	// Queries is the number of oracle queries issued.
	Queries int
	// Converged is true when the miter became UNSAT (proof of key
	// correctness on all inputs), false when an iteration bound stopped
	// the loop early.
	Converged bool
	// Analytic is true when the insight short-circuit ended the attack:
	// the certified GF(2) system reached full rank, the key was derived by
	// back-substitution, and the remaining SAT iterations (including
	// extraction and enumeration) were skipped.
	Analytic bool
	// Elapsed is the wall-clock attack time.
	Elapsed time.Duration
	// EncodeVars and EncodeClauses total the CNF growth emitted by circuit
	// encoding — the initial miter plus every DIP-constrained copy pair —
	// on one instance (instance 0 under a portfolio; encoding is
	// deterministic and identical across instances). Clause counts include
	// native XOR rows. These are the measured evidence for the AIG
	// pipeline's structural compaction.
	EncodeVars    uint64
	EncodeClauses uint64
	// SolverStats snapshots the SAT solver counters. Under a portfolio it
	// is the sum over all instances (total work, not critical-path work).
	SolverStats sat.Stats
	// InstanceStats holds per-instance solver counters: one entry for the
	// sequential engine, Options.Portfolio entries for a portfolio run.
	InstanceStats []sat.Stats
	// InstanceWins counts, per instance, the races that instance finished
	// first (every SAT call is one race; sequential runs win them all).
	InstanceWins []int
	// Stopped is true when a deadline, cancellation, or budget bounded the
	// attack before it finished; the Result is then partial (Key and
	// Candidates may be nil) but every counter is valid. StopIterations is
	// the exception: the DIP loop was bounded, yet extraction and
	// enumeration still ran on the accumulated constraints.
	Stopped bool
	// StopReason classifies the bound that fired when Stopped is true.
	StopReason StopReason
}

// ErrUnsat is returned when the accumulated constraints become
// unsatisfiable, which indicates an oracle inconsistent with the model.
var ErrUnsat = errors.New("satattack: constraints unsatisfiable; oracle does not match the locked model")

// Run executes the SAT attack with no cancellation: Run is RunCtx under
// context.Background().
func Run(l *Locked, o Oracle, opts Options) (*Result, error) {
	return RunCtx(context.Background(), l, o, opts)
}

// RunCtx executes the SAT attack. With Options.Portfolio > 1 the DIP loop
// and enumeration race diversified solver instances (see portfolio.go);
// otherwise the sequential engine below runs.
//
// Cancelling ctx — or exhausting its deadline, or the conflict budget —
// never returns an error: the attack stops at the next solver check point
// and returns the partial Result with Stopped set and StopReason naming
// the bound. A background context and no trace sink reproduce the
// unbounded sequential behavior bit for bit.
func RunCtx(ctx context.Context, l *Locked, o Oracle, opts Options) (*Result, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if opts.Portfolio > 1 {
		return runPortfolio(ctx, l, o, opts)
	}
	tr := trace.From(ctx)
	mh := metrics.From(ctx)
	am := newAttackMetrics(mh, "sequential")
	start := time.Now()

	enc := tr.Start("encode")
	s := sat.New()
	s.ConflictBudget = opts.ConflictBudget
	installSolverMetrics(mh, opts.Search, s, 0)
	e := encode.NewWithConfig(s, encode.Config{NativeXor: opts.NativeXor})

	// Stage one of the AIG pipeline: compile the locked view once into a
	// compacted arena shared by every circuit copy this attack emits.
	var g *aig.Graph
	if opts.AIG {
		var err error
		g, err = aig.FromCombView(l.View)
		if err != nil {
			return nil, err
		}
		enc.Add("aig_nodes", uint64(g.NumNodes()))
	}
	encodeCopy := func(in []cnf.Lit) []cnf.Lit {
		if g != nil {
			return e.EncodeAIG(g, in)
		}
		return e.EncodeComb(l.View, in)
	}
	emitted := func() (uint64, uint64) {
		return uint64(s.NumVars()), uint64(s.NumClauses() + s.NumXors())
	}

	x := e.FreshVec(len(l.InIdx))
	k1 := e.FreshVec(len(l.KeyIdx))
	k2 := e.FreshVec(len(l.KeyIdx))

	y1 := encodeCopy(l.assemble(e, x, k1))
	y2 := encodeCopy(l.assemble(e, x, k2))
	miter := e.Miter(y1, y2)

	// Branch on key variables first: the miter search closes fastest when
	// the candidate keys are fixed before the shared inputs.
	for _, ks := range [][]cnf.Lit{k1, k2} {
		for _, kl := range ks {
			s.BumpActivity(kl.Var(), 1)
		}
	}
	res := &Result{}
	res.EncodeVars, res.EncodeClauses = emitted()
	am.observeEncode(res.EncodeVars, res.EncodeClauses)
	enc.Add("vars", uint64(s.NumVars()))
	enc.Add("clauses", uint64(s.NumClauses()))
	enc.End()

	finish := func(reason StopReason, solves int) *Result {
		if reason != StopNone {
			res.Stopped = true
			res.StopReason = reason
		}
		res.SolverStats = s.Stats
		res.InstanceStats = []sat.Stats{s.Stats}
		res.InstanceWins = []int{solves}
		res.Elapsed = time.Since(start)
		return res
	}

	solves := 0
	loop := tr.Start("dip_loop")
	loopMark := s.Stats
	var loopEncV, loopEncC uint64
	endLoop := func() {
		addStatsDelta(loop, loopMark, s.Stats)
		loop.Add("dips", uint64(res.Iterations))
		loop.Add("oracle_queries", uint64(res.Queries))
		loop.Add("encode_vars", loopEncV)
		loop.Add("encode_clauses", loopEncC)
		loop.End()
	}
	stop := StopNone
	insCursor := 0
dipLoop:
	for {
		if err := ctx.Err(); err != nil {
			stop = ctxStopReason(ctx)
			break
		}
		if opts.MaxIterations > 0 && res.Iterations >= opts.MaxIterations {
			stop = StopIterations
			break
		}
		solves++
		// The timestamp is taken only when an observer is live so the
		// disabled path stays bit-identical and syscall-free.
		var solveT0, solveT1 time.Time
		if am != nil || opts.OnDIP != nil {
			solveT0 = time.Now()
		}
		st := s.SolveCtx(ctx, miter)
		if am != nil || opts.OnDIP != nil {
			solveT1 = time.Now()
		}
		if am != nil {
			am.observeSolve(solveT1.Sub(solveT0))
		}
		switch st {
		case sat.Unsat:
			res.Converged = true
			break dipLoop
		case sat.Unknown:
			stop = ctxStopReason(ctx)
			break dipLoop
		case sat.Sat:
			dip := e.ModelBits(x)
			resp := o.Query(dip)
			res.Queries++
			res.Iterations++
			if len(resp) != len(l.View.Outputs) {
				endLoop()
				return nil, fmt.Errorf("satattack: oracle returned %d outputs, want %d", len(resp), len(l.View.Outputs))
			}
			am.observeDIP(res.Iterations)
			if opts.OnDIP != nil {
				opts.OnDIP(res.Iterations, dip, resp, s.Stats, solveT1.Sub(solveT0))
			}
			cx := e.ConstVec(dip)
			ev0, ec0 := emitted()
			e.AssertEqualConst(encodeCopy(l.assemble(e, cx, k1)), resp)
			e.AssertEqualConst(encodeCopy(l.assemble(e, cx, k2)), resp)
			ev1, ec1 := emitted()
			res.EncodeVars += ev1 - ev0
			res.EncodeClauses += ec1 - ec0
			loopEncV += ev1 - ev0
			loopEncC += ec1 - ec0
			am.observeEncode(ev1-ev0, ec1-ec0)
			if opts.Insight != nil {
				// The OnDIP chain above let the insight source observe this
				// response; its new rows are linear consequences of the
				// constraints just asserted, so injecting them prunes no
				// candidate key.
				var cs []KeyConstraint
				cs, insCursor = opts.Insight.ConstraintsSince(insCursor)
				injectInsight(s, k1, k2, cs)
				if key, ok := opts.Insight.SolveKey(); ok && len(key) == len(k1) {
					res.Key = append([]bool(nil), key...)
					res.Analytic = true
					res.Converged = true
					break dipLoop
				}
			}
			if opts.Simplify {
				// Level-0 inprocessing between DIPs: the response units just
				// asserted satisfy or shorten clauses of earlier copies. An
				// UNSAT result here surfaces on the next solve.
				s.Simplify()
			}
			tr.Progressf("iter %d: dip=%s clauses=%d conflicts=%d",
				res.Iterations, bitString(dip), s.NumClauses(), s.Stats.Conflicts)
			if opts.Log != nil {
				fmt.Fprintf(opts.Log, "iter %d: dip=%s clauses=%d conflicts=%d\n",
					res.Iterations, bitString(dip), s.NumClauses(), s.Stats.Conflicts)
			}
			if opts.DumpCNF != nil {
				opts.DumpCNF(res.Iterations, s.WriteDimacs)
			}
		}
	}
	endLoop()
	if stop != StopNone && stop != StopIterations {
		return finish(stop, solves), nil
	}
	if res.Analytic {
		// Rank-k short-circuit: the certified system determines the key
		// uniquely, so the equivalence class is exactly {Key} and no
		// extraction or enumeration SAT calls are needed.
		if opts.EnumerateLimit > 0 {
			res.Candidates = [][]bool{append([]bool(nil), res.Key...)}
			res.CandidatesExact = true
		}
		return finish(stop, solves), nil
	}

	// Key extraction: any key consistent with all recorded I/O pairs.
	ext := tr.Start("extract")
	extMark := s.Stats
	solves++
	st := s.SolveCtx(ctx)
	addStatsDelta(ext, extMark, s.Stats)
	ext.End()
	switch st {
	case sat.Unsat:
		return nil, ErrUnsat
	case sat.Unknown:
		return finish(ctxStopReason(ctx), solves), nil
	}
	res.Key = e.ModelBits(k1)

	if opts.EnumerateLimit > 0 {
		enumSp := tr.Start("enumerate")
		enumMark := s.Stats
		var enumSolves int
		var enumStop StopReason
		res.Candidates, res.CandidatesExact, enumSolves, enumStop = enumerate(ctx, s, e, k1, res.Key, opts.EnumerateLimit)
		solves += enumSolves
		if enumStop != StopNone {
			stop = enumStop
		}
		addStatsDelta(enumSp, enumMark, s.Stats)
		enumSp.Add("candidates", uint64(len(res.Candidates)))
		enumSp.End()
	}
	return finish(stop, solves), nil
}

// addStatsDelta records the solver-counter growth between two snapshots on
// a span.
func addStatsDelta(sp *trace.Span, from, to sat.Stats) {
	sp.Add("conflicts", to.Conflicts-from.Conflicts)
	sp.Add("decisions", to.Decisions-from.Decisions)
	sp.Add("propagations", to.Propagations-from.Propagations)
	sp.Add("learnt", to.Learnt-from.Learnt)
	sp.Add("removed", to.Removed-from.Removed)
	sp.Add("restarts", to.Restarts-from.Restarts)
	sp.Add("xor_propagations", to.XorPropagations-from.XorPropagations)
	sp.Add("xor_conflicts", to.XorConflicts-from.XorConflicts)
	sp.Add("simplify_removed", to.SimplifyRemoved-from.SimplifyRemoved)
	sp.Add("simplify_strengthened", to.SimplifyStrengthened-from.SimplifyStrengthened)
}

// injectInsight adds certified key constraints to the solver as XOR rows
// over both key copies. Constraints with out-of-range indices are ignored
// (defensive: a well-formed source addresses only key bits). AddXor's
// echelon reduction absorbs rows the solver already knows for free.
func injectInsight(s *sat.Solver, k1, k2 []cnf.Lit, cs []KeyConstraint) {
	for _, c := range cs {
		for _, ks := range [][]cnf.Lit{k1, k2} {
			lits := make([]cnf.Lit, 0, len(c.Idx))
			ok := true
			for _, i := range c.Idx {
				if i < 0 || i >= len(ks) {
					ok = false
					break
				}
				lits = append(lits, ks[i])
			}
			if ok {
				s.AddXor(lits, c.RHS)
			}
		}
	}
}

// assemble builds the full view-input literal vector from attacker inputs
// and key literals.
func (l *Locked) assemble(e *encode.Encoder, in, key []cnf.Lit) []cnf.Lit {
	full := make([]cnf.Lit, len(l.View.Inputs))
	for i, idx := range l.InIdx {
		full[idx] = in[i]
	}
	for i, idx := range l.KeyIdx {
		full[idx] = key[i]
	}
	return full
}

// enumerate lists satisfying assignments of the key literals via blocking
// clauses, starting from first. It also returns the number of Solve calls
// it issued (for win accounting) and, when a context or budget bound cut
// the enumeration short, the stop reason (the candidate list is then a
// valid but possibly incomplete prefix, reported inexact).
func enumerate(ctx context.Context, s *sat.Solver, e *encode.Encoder, keyLits []cnf.Lit, first []bool, limit int) ([][]bool, bool, int, StopReason) {
	candidates := [][]bool{append([]bool(nil), first...)}
	solves := 0
	block := func(k []bool) bool {
		clause := make([]cnf.Lit, len(keyLits))
		for i, l := range keyLits {
			if k[i] {
				clause[i] = l.Not()
			} else {
				clause[i] = l
			}
		}
		return s.AddClause(clause...)
	}
	if !block(first) {
		return candidates, true, solves, StopNone
	}
	for len(candidates) < limit {
		solves++
		st := s.SolveCtx(ctx)
		if st == sat.Unknown {
			return candidates, false, solves, ctxStopReason(ctx)
		}
		if st != sat.Sat {
			return candidates, st == sat.Unsat, solves, StopNone
		}
		k := e.ModelBits(keyLits)
		candidates = append(candidates, k)
		if !block(k) {
			return candidates, true, solves, StopNone
		}
	}
	// Limit reached; check whether anything remains.
	solves++
	st := s.SolveCtx(ctx)
	if st == sat.Unknown {
		return candidates, false, solves, ctxStopReason(ctx)
	}
	return candidates, st == sat.Unsat, solves, StopNone
}

func bitString(bs []bool) string {
	out := make([]byte, len(bs))
	for i, b := range bs {
		if b {
			out[i] = '1'
		} else {
			out[i] = '0'
		}
	}
	if len(out) > 64 {
		return string(out[:61]) + "..."
	}
	return string(out)
}
