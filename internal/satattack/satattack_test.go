package satattack

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"

	"dynunlock/internal/cnf"
	"dynunlock/internal/netlist"
	"dynunlock/internal/sim"
)

// lockedPair builds a random combinational circuit and an XOR-locked
// version of it (EPIC-style logic locking): key gate i re-encodes an
// internal wire with key bit i; the correct key correctKey restores the
// original function.
func lockedPair(rng *rand.Rand, nIn, nGates, nKeys int) (orig, locked *netlist.CombView, correctKey []bool) {
	build := func(lockIt bool, key []bool) *netlist.CombView {
		n := netlist.New("c")
		var sigs []netlist.SignalID
		for i := 0; i < nIn; i++ {
			id, _ := n.AddInput("")
			sigs = append(sigs, id)
		}
		var keys []netlist.SignalID
		if lockIt {
			for i := 0; i < nKeys; i++ {
				id, _ := n.AddInput("k" + string(rune('0'+i)))
				keys = append(keys, id)
			}
		}
		gateRng := rand.New(rand.NewSource(12345)) // same structure both builds
		types := []netlist.GateType{netlist.And, netlist.Or, netlist.Xor, netlist.Nand, netlist.Nor}
		lockAt := map[int]int{} // gate index -> key index
		for i := 0; i < nKeys; i++ {
			lockAt[nGates*i/nKeys] = i
		}
		for i := 0; i < nGates; i++ {
			t := types[gateRng.Intn(len(types))]
			a := sigs[gateRng.Intn(len(sigs))]
			b := sigs[gateRng.Intn(len(sigs))]
			id, err := n.AddGate("", t, a, b)
			if err != nil {
				panic(err)
			}
			if ki, ok := lockAt[i]; ok {
				gt := netlist.Xor
				if key[ki] {
					gt = netlist.Xnor // correct key bit 1 must invert back
				}
				if lockIt {
					id, err = n.AddGate("", gt, id, keys[ki])
					if err != nil {
						panic(err)
					}
				} else if key[ki] {
					// Original circuit: the locked version XNORs with a key
					// whose correct value is 1, which is the identity; the
					// original needs no change either way.
					_ = gt
				}
			}
			sigs = append(sigs, id)
		}
		for i := 0; i < 3; i++ {
			n.MarkOutput(sigs[len(sigs)-1-i])
		}
		v, err := netlist.NewCombView(n)
		if err != nil {
			panic(err)
		}
		return v
	}
	correctKey = make([]bool, nKeys)
	for i := range correctKey {
		correctKey[i] = rng.Intn(2) == 1
	}
	orig = build(false, correctKey)
	locked = build(true, correctKey)
	return orig, locked, correctKey
}

// simOracle answers queries by simulating the original circuit.
type simOracle struct {
	c       *sim.Comb
	queries int
}

func (o *simOracle) Query(in []bool) []bool {
	o.queries++
	return o.c.EvalBits(in)
}

func TestAttackRecoversEquivalentKey(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 15; trial++ {
		nIn := 4 + rng.Intn(4)
		orig, locked, _ := lockedPair(rng, nIn, 30+rng.Intn(40), 4+rng.Intn(4))
		l := NewLocked(locked, func(i int, s netlist.SignalID) bool {
			return len(locked.N.SignalName(s)) > 0 && locked.N.SignalName(s)[0] == 'k'
		})
		oracle := &simOracle{c: sim.NewComb(orig)}
		res, err := Run(l, oracle, Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !res.Converged {
			t.Fatalf("trial %d: did not converge", trial)
		}
		// The recovered key must make the locked circuit equivalent to the
		// original on every input.
		checkEquivalent(t, orig, locked, l, res.Key)
		if res.Queries != res.Iterations {
			t.Fatalf("queries %d != iterations %d", res.Queries, res.Iterations)
		}
	}
}

func checkEquivalent(t *testing.T, orig, locked *netlist.CombView, l *Locked, key []bool) {
	t.Helper()
	so, sl := sim.NewComb(orig), sim.NewComb(locked)
	nIn := len(orig.Inputs)
	full := make([]bool, len(locked.Inputs))
	for i, idx := range l.KeyIdx {
		full[idx] = key[i]
	}
	rng := rand.New(rand.NewSource(99))
	patterns := 1 << uint(nIn)
	exhaustive := patterns <= 256
	if !exhaustive {
		patterns = 256
	}
	for p := 0; p < patterns; p++ {
		in := make([]bool, nIn)
		for i := range in {
			if exhaustive {
				in[i] = p>>uint(i)&1 == 1
			} else {
				in[i] = rng.Intn(2) == 1
			}
		}
		for i, idx := range l.InIdx {
			full[idx] = in[i]
		}
		want := so.EvalBits(in)
		got := sl.EvalBits(full)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("pattern %d output %d: locked(key)=%v orig=%v", p, i, got[i], want[i])
			}
		}
	}
}

// A key bit with no effect on the outputs doubles the candidate count.
func TestEnumerationCountsFreeKeyBits(t *testing.T) {
	n := netlist.New("free")
	a, _ := n.AddInput("a")
	k0, _ := n.AddInput("k0")
	k1, _ := n.AddInput("k1")
	x, _ := n.AddGate("x", netlist.Xor, a, k0)
	dead, _ := n.AddGate("dead", netlist.And, k1, k1) // never observed
	_ = dead
	n.MarkOutput(x)
	v, err := netlist.NewCombView(n)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLocked(v, func(i int, s netlist.SignalID) bool {
		name := v.N.SignalName(s)
		return name == "k0" || name == "k1"
	})
	// Oracle: correct k0 = 1, so output = !a.
	oracle := OracleFunc(func(in []bool) []bool { return []bool{!in[0]} })
	res, err := Run(l, oracle, Options{EnumerateLimit: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CandidatesExact {
		t.Fatal("enumeration must be exact under the limit")
	}
	if len(res.Candidates) != 2 {
		t.Fatalf("got %d candidates, want 2 (free k1)", len(res.Candidates))
	}
	for _, c := range res.Candidates {
		k0i := 0
		if l.View.N.SignalName(l.View.Inputs[l.KeyIdx[0]]) != "k0" {
			k0i = 1
		}
		if !c[k0i] {
			t.Fatalf("candidate %v has wrong k0", c)
		}
	}
}

func TestEnumerationLimit(t *testing.T) {
	// Two free key bits -> 4 candidates; limit 3 must report inexact.
	n := netlist.New("free2")
	a, _ := n.AddInput("a")
	n.AddInput("k0")
	n.AddInput("k1")
	buf, _ := n.AddGate("z", netlist.Buf, a)
	n.MarkOutput(buf)
	v, _ := netlist.NewCombView(n)
	l := NewLocked(v, func(i int, s netlist.SignalID) bool {
		name := v.N.SignalName(s)
		return name == "k0" || name == "k1"
	})
	oracle := OracleFunc(func(in []bool) []bool { return []bool{in[0]} })
	res, err := Run(l, oracle, Options{EnumerateLimit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 3 || res.CandidatesExact {
		t.Fatalf("got %d candidates exact=%v, want 3 inexact", len(res.Candidates), res.CandidatesExact)
	}
	res, err = Run(l, oracle, Options{EnumerateLimit: 64})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Candidates) != 4 || !res.CandidatesExact {
		t.Fatalf("got %d candidates exact=%v, want 4 exact", len(res.Candidates), res.CandidatesExact)
	}
}

func TestInconsistentOracle(t *testing.T) {
	// Oracle response that no key explains: z1 = a XOR k demands k=0 while
	// z2 = k demands k=1 in the same answer.
	n := netlist.New("inc")
	a, _ := n.AddInput("a")
	k, _ := n.AddInput("k")
	x, _ := n.AddGate("x", netlist.Xor, a, k)
	kb, _ := n.AddGate("kb", netlist.Buf, k)
	n.MarkOutput(x)
	n.MarkOutput(kb)
	v, _ := netlist.NewCombView(n)
	l := NewLocked(v, func(i int, s netlist.SignalID) bool { return v.N.SignalName(s) == "k" })
	oracle := OracleFunc(func(in []bool) []bool {
		return []bool{in[0], true} // z1 says k=0, z2 says k=1
	})
	_, err := Run(l, oracle, Options{})
	if err == nil {
		t.Fatal("want error from inconsistent oracle")
	}
}

func TestMaxIterations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	orig, locked, _ := lockedPair(rng, 6, 40, 5)
	l := NewLocked(locked, func(i int, s netlist.SignalID) bool {
		return locked.N.SignalName(s)[0] == 'k'
	})
	oracle := &simOracle{c: sim.NewComb(orig)}
	res, err := Run(l, oracle, Options{MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 1 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
}

func TestLogOutput(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	orig, locked, _ := lockedPair(rng, 5, 30, 3)
	l := NewLocked(locked, func(i int, s netlist.SignalID) bool {
		return locked.N.SignalName(s)[0] == 'k'
	})
	var buf bytes.Buffer
	if _, err := Run(l, &simOracle{c: sim.NewComb(orig)}, Options{Log: &buf}); err != nil {
		t.Fatal(err)
	}
	// A converging attack with zero iterations is possible (fully
	// symmetric keys), but with 3 key bits at least one DIP is typical.
	_ = buf
}

func TestLockedValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	_, locked, _ := lockedPair(rng, 4, 10, 2)
	good := NewLocked(locked, func(i int, s netlist.SignalID) bool {
		return locked.N.SignalName(s)[0] == 'k'
	})
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	noKeys := NewLocked(locked, func(i int, s netlist.SignalID) bool { return false })
	if err := noKeys.Validate(); err == nil {
		t.Fatal("want error for no key inputs")
	}
	dup := &Locked{View: locked, KeyIdx: []int{0, 0}, InIdx: nil}
	if err := dup.Validate(); err == nil {
		t.Fatal("want error for duplicate index")
	}
	oob := &Locked{View: locked, KeyIdx: []int{999}}
	if err := oob.Validate(); err == nil {
		t.Fatal("want error for out-of-range index")
	}
}

func TestDumpCNF(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	orig, locked, _ := lockedPair(rng, 5, 30, 3)
	l := NewLocked(locked, func(i int, s netlist.SignalID) bool {
		return locked.N.SignalName(s)[0] == 'k'
	})
	dumps := 0
	opts := Options{DumpCNF: func(iter int, dump func(w io.Writer) error) {
		var buf bytes.Buffer
		if err := dump(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(buf.String(), "p cnf ") {
			t.Fatalf("iteration %d: not DIMACS: %q", iter, buf.String()[:20])
		}
		// The dump must be a loadable formula.
		if _, err := cnf.ParseDimacs(&buf); err != nil {
			t.Fatal(err)
		}
		dumps++
	}}
	res, err := Run(l, &simOracle{c: sim.NewComb(orig)}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if dumps != res.Iterations {
		t.Fatalf("dumps %d != iterations %d", dumps, res.Iterations)
	}
}
