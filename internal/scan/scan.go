// Package scan defines the scan-chain geometry and cycle-accurate timing
// shared by the locked-chip simulation (internal/oracle) and the attacker's
// combinational model (internal/core).
//
// Conventions (matching Fig. 1 of the paper):
//
//   - The chain has flops 0 … n-1. Scan-in (SI) feeds flop 0; scan-out (SO)
//     reads flop n-1. Chain flop i is DFF i of the netlist.
//   - A key gate "after flop p" (1-indexed, p ∈ 1…n-1) sits on link p: the
//     wire from flop p-1 into flop p. The moving bit is XORed with one bit
//     of the key register as it crosses the link.
//   - A test session is: reset, n shift-in cycles (global cycles 0…n-1),
//     one capture cycle (cycle n), n shift-out cycles (cycles n+1…2n).
//     The shift edge at the end of cycle t applies the key value of cycle
//     t. The capture edge (cycle n) loads next-state; key gates do not
//     touch scan data then (SE is low and the gates sit on the scan path
//     only).
//   - The bit destined for chain flop j is presented at SI during cycle
//     n-1-j and crosses link ℓ (ℓ ≤ j) at cycle n-1-j+ℓ. The captured bit
//     of flop j is observed at SO during cycle 2n-j and crosses link ℓ
//     (ℓ > j) at cycle n+ℓ-j.
//
// The oracle simulates sessions cycle by cycle; the attacker's model uses
// the closed-form mask terms below. Property tests assert the two agree
// bit for bit, which is the correctness core of Algorithm 1.
package scan

import (
	"fmt"
	"sort"
)

// Policy selects how the key register evolves, covering the three defense
// families the paper discusses.
type Policy int8

// Key-update policies.
const (
	// Static: the key register holds the secret key and never changes
	// (EFF, Karmakar 2018 — broken by ScanSAT).
	Static Policy = iota
	// PerPattern: the key register is an LFSR stepping once every Period
	// test patterns (DOS, Wang 2017 — broken by dynamic ScanSAT/this work).
	PerPattern
	// PerCycle: the key register is an LFSR stepping every clock cycle
	// (EFF-Dyn, Karmakar 2019 — the paper's target).
	PerCycle
)

// String names the policy after the defense it models.
func (p Policy) String() string {
	switch p {
	case Static:
		return "static(EFF)"
	case PerPattern:
		return "per-pattern(DOS)"
	case PerCycle:
		return "per-cycle(EFF-Dyn)"
	default:
		return fmt.Sprintf("Policy(%d)", int8(p))
	}
}

// Steps returns how many LFSR steps separate the key value used at global
// cycle `cycle` of pattern `patIdx` from the session-start register value.
// Period is the per-pattern update period p (ignored unless PerPattern).
func (p Policy) Steps(patIdx, cycle, period int) int {
	switch p {
	case Static:
		return 0
	case PerPattern:
		if period <= 0 {
			period = 1
		}
		return patIdx / period
	case PerCycle:
		return cycle
	default:
		panic(fmt.Sprintf("scan: unknown policy %d", int8(p)))
	}
}

// KeyGate is one XOR gate on the scan path.
type KeyGate struct {
	Link   int // 1…n-1: on the wire from flop Link-1 into flop Link
	KeyBit int // which bit of the key register drives this gate
}

// Chain describes an obfuscated scan chain.
type Chain struct {
	Length int // number of scan flops n
	Gates  []KeyGate
}

// Validate checks gate positions and key-bit indices against the chain
// length and key width.
func (c *Chain) Validate(keyBits int) error {
	if c.Length < 2 {
		return fmt.Errorf("scan: chain length %d too short", c.Length)
	}
	for _, g := range c.Gates {
		if g.Link < 1 || g.Link >= c.Length {
			return fmt.Errorf("scan: key gate link %d out of range [1,%d)", g.Link, c.Length)
		}
		if g.KeyBit < 0 || g.KeyBit >= keyBits {
			return fmt.Errorf("scan: key bit %d out of range [0,%d)", g.KeyBit, keyBits)
		}
	}
	return nil
}

// SessionCycles returns the number of clock cycles in one test session
// (shift-in, capture, shift-out).
func (c *Chain) SessionCycles() int { return 2*c.Length + 1 }

// CaptureCycle returns the global cycle index of the capture edge.
func (c *Chain) CaptureCycle() int { return c.Length }

// Term is one XOR contribution to a scan bit: key register bit KeyBit, as
// valued at global cycle Cycle.
type Term struct {
	Cycle  int
	KeyBit int
}

// InMaskTerms returns the key terms XORed onto the bit destined for chain
// flop j during shift-in: every key gate at link ℓ ≤ j contributes its key
// bit at cycle n-1-j+ℓ.
func (c *Chain) InMaskTerms(j int) []Term {
	c.checkFlop(j)
	var out []Term
	for _, g := range c.Gates {
		if g.Link <= j {
			out = append(out, Term{Cycle: c.Length - 1 - j + g.Link, KeyBit: g.KeyBit})
		}
	}
	sortTerms(out)
	return out
}

// OutMaskTerms returns the key terms XORed onto the captured bit of chain
// flop j during shift-out: every key gate at link ℓ > j contributes its key
// bit at cycle n+ℓ-j.
func (c *Chain) OutMaskTerms(j int) []Term { return c.OutMaskTermsN(j, 1) }

// OutMaskTermsN is OutMaskTerms for a session with `captures` consecutive
// capture cycles (paper Sec. III-A's "new capture cycle" extension): each
// extra capture delays shift-out by one cycle, so every term cycle shifts
// by captures-1.
func (c *Chain) OutMaskTermsN(j, captures int) []Term {
	c.checkFlop(j)
	if captures < 1 {
		panic(fmt.Sprintf("scan: captures %d must be >= 1", captures))
	}
	var out []Term
	for _, g := range c.Gates {
		if g.Link > j {
			out = append(out, Term{Cycle: c.Length + captures - 1 + g.Link - j, KeyBit: g.KeyBit})
		}
	}
	sortTerms(out)
	return out
}

// SessionCyclesN returns the cycle count of a session with the given
// number of consecutive captures.
func (c *Chain) SessionCyclesN(captures int) int { return 2*c.Length + captures }

func (c *Chain) checkFlop(j int) {
	if j < 0 || j >= c.Length {
		panic(fmt.Sprintf("scan: flop %d out of range [0,%d)", j, c.Length))
	}
}

func sortTerms(ts []Term) {
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Cycle != ts[j].Cycle {
			return ts[i].Cycle < ts[j].Cycle
		}
		return ts[i].KeyBit < ts[j].KeyBit
	})
}

// SpreadGates places count key gates on distinct links spread evenly across
// the chain (wrapping key bits if count exceeds keyBits is the caller's
// choice; here gate i uses key bit i % keyBits). If count exceeds the
// number of links, links are reused with different key bits, which models
// stacked XOR gates on one wire.
func SpreadGates(length, count, keyBits int) []KeyGate {
	if length < 2 || count <= 0 || keyBits <= 0 {
		return nil
	}
	links := length - 1
	gates := make([]KeyGate, count)
	for i := 0; i < count; i++ {
		round := i / links
		// Spread within 1..links, then offset successive rounds.
		link := 1 + (i*links/count+round)%links
		if count <= links {
			link = 1 + i*links/count
		}
		gates[i] = KeyGate{Link: link, KeyBit: i % keyBits}
	}
	return gates
}
